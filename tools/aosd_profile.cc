/**
 * @file
 * aosd_profile: hierarchical cycle attribution for the OS primitives.
 *
 *   aosd_profile                          # text tree to stdout
 *   aosd_profile --json profile.json      # machine-readable document
 *   aosd_profile --folded profile.folded  # collapsed stacks for
 *                                         # flamegraph.pl / speedscope
 *   aosd_profile --reps 32                # repetitions per primitive
 *   aosd_profile --machines R2000,SPARC   # subset of Table 1
 *   aosd_profile --jobs 8                 # parallel profiling grid
 *
 * Every machine × primitive handler runs under the cycle-attribution
 * profiler; the tool self-checks that the attributed cycles equal the
 * charged cycles (sum-of-leaves == total) and exits non-zero naming
 * the offending pair if any cycle went unattributed.
 *
 * The document itself is built by study/profile_report.cc (schema
 * there); the output is byte-identical at any --jobs value.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "arch/machines.hh"
#include "cpu/decoded_program.hh"
#include "sim/parallel/parallel_runner.hh"
#include "study/profile_report.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--json path] [--folded path] [--reps N]\n"
        "          [--machines SLUG[,SLUG...]] [--jobs N]\n"
        "          [--no-predecode]\n"
        "  --json path      write profile.json\n"
        "  --folded path    write collapsed stacks (flamegraph input)\n"
        "  --reps N         repetitions per primitive (default 16)\n"
        "  --machines list  comma-separated machine slugs\n"
        "                   (default: the five Table 1 machines)\n"
        "  --jobs N         worker threads (default: all cores;\n"
        "                   1 = serial; output is identical either "
        "way)\n"
        "  --no-predecode   interpret handler programs per event\n"
        "                   (slow reference path; identical output)\n",
        argv0);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

void
printTree(const Json &node, const std::string &name, int depth,
          double parent_total)
{
    double total = node.at("total_cycles").asNumber();
    double share = parent_total > 0 ? 100.0 * total / parent_total
                                    : 100.0;
    std::printf("  %*s%-*s %12.0f cy %5.1f%%", 2 * depth, "",
                28 - 2 * depth, name.c_str(), total, share);
    if (node.at("count").asUint() > 0)
        std::printf("  n=%llu p50=%llu p90=%llu p99=%llu",
                    static_cast<unsigned long long>(
                        node.at("count").asUint()),
                    static_cast<unsigned long long>(
                        node.at("p50_cycles").asUint()),
                    static_cast<unsigned long long>(
                        node.at("p90_cycles").asUint()),
                    static_cast<unsigned long long>(
                        node.at("p99_cycles").asUint()));
    std::printf("\n");
    for (const auto &[child_name, child] :
         node.at("children").items())
        printTree(child, child_name, depth + 1, total);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string folded_path;
    unsigned reps = 16;
    unsigned jobs = ParallelRunner::defaultJobs();
    std::vector<MachineDesc> machines;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            json_path = value();
        } else if (arg == "--folded") {
            folded_path = value();
        } else if (arg == "--reps") {
            reps = static_cast<unsigned>(std::atoi(value()));
            if (reps == 0)
                reps = 1;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value()));
            if (jobs == 0)
                jobs = ParallelRunner::defaultJobs();
        } else if (arg == "--machines") {
            std::string list = value();
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string slug = list.substr(pos, comma - pos);
                if (!slug.empty())
                    machines.push_back(
                        makeMachine(machineFromSlug(slug)));
                pos = comma + 1;
            }
        } else if (arg == "--no-predecode") {
            setPredecodeEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (machines.empty())
        machines = table1Machines();

    ParallelRunner runner(jobs);
    std::vector<ProfiledPrimitiveRun> runs =
        profileAllPrimitives(machines, reps, runner);
    Json doc = buildProfileDoc(machines, runs, reps);

    bool text_out = json_path.empty() && folded_path.empty();
    int incomplete = 0;
    for (const ProfiledPrimitiveRun &run : runs) {
        if (!run.complete()) {
            ++incomplete;
            std::fprintf(
                stderr,
                "SELF-CHECK FAILED %s/%s: charged %llu cycles but "
                "attributed %llu\n",
                machineSlug(run.machine), primitiveSlug(run.primitive),
                static_cast<unsigned long long>(run.totalCycles),
                static_cast<unsigned long long>(run.attributedCycles));
        }
    }

    if (text_out) {
        std::size_t next = 0;
        for (const MachineDesc &m : machines) {
            for (Primitive p : allPrimitives) {
                const ProfiledPrimitiveRun &run = runs.at(next++);
                double per_call =
                    static_cast<double>(run.totalCycles) /
                    static_cast<double>(reps);
                std::printf("%s / %s: %.0f cycles/call (%.2f us), "
                            "attribution %s\n",
                            m.name.c_str(), primitiveSlug(p),
                            per_call,
                            m.clock.cyclesToMicros(
                                static_cast<Cycles>(per_call + 0.5)),
                            run.complete() ? "complete"
                                           : "INCOMPLETE");
                printTree(run.tree, "total", 0,
                          static_cast<double>(run.totalCycles));
                std::printf("\n");
            }
        }
    }

    if (!json_path.empty()) {
        if (!writeFile(json_path, doc.dump(1)))
            return 2;
        std::fprintf(stderr, "profile -> %s\n", json_path.c_str());
    }
    if (!folded_path.empty()) {
        if (!writeFile(folded_path, foldedStacks(runs)))
            return 2;
        std::fprintf(stderr, "folded stacks -> %s\n",
                     folded_path.c_str());
    }

    if (incomplete) {
        std::fprintf(stderr,
                     "%d machine/primitive pair(s) with unattributed "
                     "cycles\n",
                     incomplete);
        return 1;
    }
    return 0;
}
