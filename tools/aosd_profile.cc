/**
 * @file
 * aosd_profile: hierarchical cycle attribution for the OS primitives.
 *
 *   aosd_profile                          # text tree to stdout
 *   aosd_profile --json profile.json      # machine-readable document
 *   aosd_profile --folded profile.folded  # collapsed stacks for
 *                                         # flamegraph.pl / speedscope
 *   aosd_profile --reps 32                # repetitions per primitive
 *   aosd_profile --machines R2000,SPARC   # subset of Table 1
 *
 * Every machine × primitive handler runs under the cycle-attribution
 * profiler; the tool self-checks that the attributed cycles equal the
 * charged cycles (sum-of-leaves == total) and exits non-zero naming
 * the offending pair if any cycle went unattributed.
 *
 * profile.json schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "aosd_profile",
 *     "repetitions": R,
 *     "machines": {
 *       "<machine>": {
 *         "<primitive>": {
 *           "cycles_per_call": c, "us_per_call": us,
 *           "total_cycles": n, "attributed_cycles": n,
 *           "attribution_complete": true,
 *           "tree": { "self_cycles": ..., "total_cycles": ...,
 *                     "count": ..., "p50_cycles": ...,
 *                     "p90_cycles": ..., "p99_cycles": ...,
 *                     "children": { "<name>": { ... } } }
 *         }, ...
 *       }, ...
 *     },
 *     "table5_anatomy": {
 *       "<machine>": { "kernel_entry_exit_us": ..., "call_prep_us":
 *                      ..., "c_call_return_us": ..., "total_us": ... }
 *     }
 *   }
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "arch/machines.hh"
#include "cpu/profiled_primitives.hh"
#include "sim/json.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--json path] [--folded path] [--reps N]\n"
        "          [--machines SLUG[,SLUG...]]\n"
        "  --json path      write profile.json\n"
        "  --folded path    write collapsed stacks (flamegraph input)\n"
        "  --reps N         repetitions per primitive (default 16)\n"
        "  --machines list  comma-separated machine slugs\n"
        "                   (default: the five Table 1 machines)\n",
        argv0);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

void
printTree(const Json &node, const std::string &name, int depth,
          double parent_total)
{
    double total = node.at("total_cycles").asNumber();
    double share = parent_total > 0 ? 100.0 * total / parent_total
                                    : 100.0;
    std::printf("  %*s%-*s %12.0f cy %5.1f%%", 2 * depth, "",
                28 - 2 * depth, name.c_str(), total, share);
    if (node.at("count").asUint() > 0)
        std::printf("  n=%llu p50=%llu p90=%llu p99=%llu",
                    static_cast<unsigned long long>(
                        node.at("count").asUint()),
                    static_cast<unsigned long long>(
                        node.at("p50_cycles").asUint()),
                    static_cast<unsigned long long>(
                        node.at("p90_cycles").asUint()),
                    static_cast<unsigned long long>(
                        node.at("p99_cycles").asUint()));
    std::printf("\n");
    for (const auto &[child_name, child] :
         node.at("children").items())
        printTree(child, child_name, depth + 1, total);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string folded_path;
    unsigned reps = 16;
    std::vector<MachineDesc> machines;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            json_path = value();
        } else if (arg == "--folded") {
            folded_path = value();
        } else if (arg == "--reps") {
            reps = static_cast<unsigned>(std::atoi(value()));
            if (reps == 0)
                reps = 1;
        } else if (arg == "--machines") {
            std::string list = value();
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string slug = list.substr(pos, comma - pos);
                if (!slug.empty())
                    machines.push_back(
                        makeMachine(machineFromSlug(slug)));
                pos = comma + 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (machines.empty())
        machines = table1Machines();

    Json doc = Json::object();
    doc.set("schema_version", 1);
    doc.set("generator", "aosd_profile");
    doc.set("repetitions", static_cast<std::uint64_t>(reps));

    Json machines_json = Json::object();
    Json anatomy = Json::object();
    std::string folded;
    bool text_out = json_path.empty() && folded_path.empty();
    int incomplete = 0;

    for (const MachineDesc &m : machines) {
        Json machine_json = Json::object();
        for (Primitive p : allPrimitives) {
            ProfiledPrimitiveRun run = profilePrimitive(m, p, reps);
            double per_call = static_cast<double>(run.totalCycles) /
                              static_cast<double>(reps);

            Json prim = Json::object();
            prim.set("cycles_per_call", per_call);
            prim.set("us_per_call", m.clock.cyclesToMicros(
                                        static_cast<Cycles>(
                                            per_call + 0.5)));
            prim.set("total_cycles", run.totalCycles);
            prim.set("attributed_cycles", run.attributedCycles);
            prim.set("attribution_complete", run.complete());
            prim.set("tree", run.tree);
            machine_json.set(primitiveSlug(p), std::move(prim));
            folded += run.folded;

            if (!run.complete()) {
                ++incomplete;
                std::fprintf(
                    stderr,
                    "SELF-CHECK FAILED %s/%s: charged %llu cycles but "
                    "attributed %llu\n",
                    machineSlug(m.id), primitiveSlug(p),
                    static_cast<unsigned long long>(run.totalCycles),
                    static_cast<unsigned long long>(
                        run.attributedCycles));
            }

            if (p == Primitive::NullSyscall) {
                Json rows = Json::object();
                double total = 0;
                for (PhaseKind ph : {PhaseKind::KernelEntryExit,
                                     PhaseKind::CallPrep,
                                     PhaseKind::CCallReturn}) {
                    double us = m.clock.cyclesToMicros(
                                    run.phaseCycles(ph)) /
                                static_cast<double>(reps);
                    rows.set(std::string(phaseSlug(ph)) + "_us", us);
                    total += us;
                }
                rows.set("total_us", total);
                anatomy.set(machineSlug(m.id), std::move(rows));
            }

            if (text_out) {
                std::printf("%s / %s: %.0f cycles/call (%.2f us), "
                            "attribution %s\n",
                            m.name.c_str(), primitiveSlug(p),
                            per_call,
                            m.clock.cyclesToMicros(
                                static_cast<Cycles>(per_call + 0.5)),
                            run.complete() ? "complete"
                                           : "INCOMPLETE");
                printTree(run.tree, "total", 0,
                          static_cast<double>(run.totalCycles));
                std::printf("\n");
            }
        }
        machines_json.set(machineSlug(m.id), std::move(machine_json));
    }

    doc.set("machines", std::move(machines_json));
    doc.set("table5_anatomy", std::move(anatomy));

    if (!json_path.empty()) {
        if (!writeFile(json_path, doc.dump(1)))
            return 2;
        std::fprintf(stderr, "profile -> %s\n", json_path.c_str());
    }
    if (!folded_path.empty()) {
        if (!writeFile(folded_path, folded))
            return 2;
        std::fprintf(stderr, "folded stacks -> %s\n",
                     folded_path.c_str());
    }

    if (incomplete) {
        std::fprintf(stderr,
                     "%d machine/primitive pair(s) with unattributed "
                     "cycles\n",
                     incomplete);
        return 1;
    }
    return 0;
}
