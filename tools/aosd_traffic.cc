/**
 * @file
 * aosd_traffic: synthetic open/closed-loop load over the simulated
 * kernels — "how many clients until p99 collapses?"
 *
 *   aosd_traffic                         # text summary to stdout
 *   aosd_traffic --json traffic.json     # traffic.json v1 to a file
 *   aosd_traffic --mode closed --levels 1,4,16,64
 *                                        # closed loop, client sweep
 *   aosd_traffic --arrival bursty        # Markov-modulated arrivals
 *   aosd_traffic --machines r3000 --requests 250000
 *                                        # one machine, 250k requests
 *                                        # per load level (the 1M
 *                                        # sweep at 4 levels)
 *   aosd_traffic --jobs 8                # fan (machine × level) cells
 *                                        # — output byte-identical to
 *                                        # --jobs 1
 *
 * Requests are weighted mixes of the kernel's closed-form primitives,
 * queued FIFO at one simulated server per cell; latency/wait
 * percentiles come from the exact log2 histogram and every cell's
 * kernel window must reconcile (the --min-explained gate, default
 * 99.999%: the request classes use only exactly-priced primitives, so
 * anything less than 100% explained is a charging bug, not noise).
 * The kernel-window batch charger (sim/batch) is what makes
 * million-request sweeps affordable; --no-batch runs the same sweep
 * through the per-event loops and CI cmp-gates that the JSON is
 * byte-identical.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "arch/machines.hh"
#include "cpu/decoded_program.hh"
#include "sim/batch/batch.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/table.hh"
#include "workload/traffic.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--json [path]] [--mode open|closed]\n"
        "          [--arrival uniform|bursty|diurnal] [--requests N]\n"
        "          [--levels CSV] [--machines CSV] [--think F]\n"
        "          [--seed N] [--exemplars K] [--min-explained PCT]\n"
        "          [--jobs N] [--no-batch] [--no-predecode]\n"
        "  --json [path]  write traffic.json (stdout when no path)\n"
        "  --mode M       open: arrivals ignore completions (load =\n"
        "                 fraction of kernel capacity); closed: load =\n"
        "                 client population with think time\n"
        "  --arrival A    open-loop gap process (default uniform)\n"
        "  --requests N   requests per (machine x level) cell\n"
        "                 (default 100000)\n"
        "  --levels CSV   load levels (default 0.3,0.6,0.9,1.2)\n"
        "  --machines CSV machine slugs (default: Table 1 machines)\n"
        "  --think F      closed-loop think time as a multiple of the\n"
        "                 mean service time (default 5)\n"
        "  --seed N       sweep seed (default 0x5eedf00d)\n"
        "  --exemplars K  slowest requests kept per cell (default 5)\n"
        "  --min-explained PCT\n"
        "                 fail unless every cell's kernel window\n"
        "                 explains at least PCT%% of its primitive\n"
        "                 cycles (default 99.999)\n"
        "  --jobs N       worker threads (default: all cores;\n"
        "                 1 = serial; output is identical either way)\n"
        "  --no-batch     charge every kernel event one at a time\n"
        "                 (reference path; output is identical — CI\n"
        "                 cmp-gates it)\n"
        "  --no-predecode re-interpret handler programs per event\n"
        "                 (implies the per-event charging path)\n",
        argv0);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            parts.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

void
printTextSummary(const Json &doc)
{
    std::printf("aosd_traffic: %s-loop %s arrivals, %llu requests "
                "per cell\n\n",
                doc.at("config").at("mode").asString().c_str(),
                doc.at("config").at("arrival").asString().c_str(),
                static_cast<unsigned long long>(
                    doc.at("config")
                        .at("requests_per_level")
                        .asUint()));
    for (std::size_t mi = 0; mi < doc.at("machines").size(); ++mi) {
        const Json &m = doc.at("machines").at(mi);
        TextTable t;
        t.header({"load", "krps", "p50 cyc", "p90 cyc", "p99 cyc",
                  "p99.9 cyc", "max q", "explained"});
        const Json &levels = m.at("load_levels");
        for (std::size_t li = 0; li < levels.size(); ++li) {
            const Json &cell = levels.at(li);
            const Json &lat = cell.at("latency_cycles").at("all");
            t.row({TextTable::num(cell.at("load").asNumber(), 2),
                   TextTable::num(
                       cell.at("throughput_rps").asNumber() / 1e3, 1),
                   TextTable::num(lat.at("p50").asNumber(), 0),
                   TextTable::num(lat.at("p90").asNumber(), 0),
                   TextTable::num(lat.at("p99").asNumber(), 0),
                   TextTable::num(lat.at("p999").asNumber(), 0),
                   TextTable::num(
                       cell.at("max_queue_depth").asNumber(), 0),
                   TextTable::num(cell.at("kernel_window")
                                      .at("explained_pct")
                                      .asNumber(),
                                  3) +
                       "%"});
        }
        std::printf("%s\n%s\n", m.at("machine").asString().c_str(),
                    t.render().c_str());
    }
}

/** Lowest explained_pct across every cell (the honesty gate). */
double
worstExplainedPct(const Json &doc)
{
    double worst = 100.0;
    for (std::size_t mi = 0; mi < doc.at("machines").size(); ++mi) {
        const Json &levels =
            doc.at("machines").at(mi).at("load_levels");
        for (std::size_t li = 0; li < levels.size(); ++li) {
            double pct = levels.at(li)
                             .at("kernel_window")
                             .at("explained_pct")
                             .asNumber();
            worst = std::min(worst, pct);
        }
    }
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    TrafficConfig cfg;
    bool json_out = false;
    std::string json_path;
    double min_explained = 99.999;
    unsigned jobs = ParallelRunner::defaultJobs();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto takesValue = [&](std::string &dst) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return false;
            }
            dst = argv[++i];
            return true;
        };
        std::string val;
        if (arg == "--json") {
            json_out = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else if (arg == "--mode") {
            if (!takesValue(val))
                return 2;
            if (val == "open") {
                cfg.mode = TrafficMode::Open;
            } else if (val == "closed") {
                cfg.mode = TrafficMode::Closed;
            } else {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--arrival") {
            if (!takesValue(val))
                return 2;
            if (val == "uniform") {
                cfg.arrival = TrafficArrival::Uniform;
            } else if (val == "bursty") {
                cfg.arrival = TrafficArrival::Bursty;
            } else if (val == "diurnal") {
                cfg.arrival = TrafficArrival::Diurnal;
            } else {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--requests") {
            if (!takesValue(val))
                return 2;
            cfg.requestsPerLevel = std::strtoull(val.c_str(), nullptr, 0);
        } else if (arg == "--levels") {
            if (!takesValue(val))
                return 2;
            cfg.levels.clear();
            for (const std::string &p : splitCsv(val))
                cfg.levels.push_back(std::strtod(p.c_str(), nullptr));
            if (cfg.levels.empty()) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--machines") {
            if (!takesValue(val))
                return 2;
            cfg.machines.clear();
            for (const std::string &p : splitCsv(val))
                cfg.machines.push_back(machineFromSlug(p));
        } else if (arg == "--think") {
            if (!takesValue(val))
                return 2;
            cfg.thinkFactor = std::strtod(val.c_str(), nullptr);
        } else if (arg == "--seed") {
            if (!takesValue(val))
                return 2;
            cfg.seed = std::strtoull(val.c_str(), nullptr, 0);
        } else if (arg == "--exemplars") {
            if (!takesValue(val))
                return 2;
            cfg.exemplars = std::strtoull(val.c_str(), nullptr, 0);
        } else if (arg == "--min-explained") {
            if (!takesValue(val))
                return 2;
            min_explained = std::strtod(val.c_str(), nullptr);
        } else if (arg == "--jobs") {
            if (!takesValue(val))
                return 2;
            jobs = static_cast<unsigned>(std::atoi(val.c_str()));
            if (jobs == 0)
                jobs = ParallelRunner::defaultJobs();
        } else if (arg == "--no-batch") {
            setBatchEnabled(false);
        } else if (arg == "--no-predecode") {
            setPredecodeEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    ParallelRunner runner(jobs);
    Json doc = buildTrafficDoc(cfg, runner);

    double worst = worstExplainedPct(doc);
    if (worst < min_explained || worst > 200.0 - min_explained) {
        std::fprintf(stderr,
                     "kernel-window reconciliation failed: worst cell "
                     "explains %.3f%% (gate %.3f%%)\n",
                     worst, min_explained);
        return 1;
    }

    if (json_out) {
        std::string text = doc.dump(1);
        if (json_path.empty())
            std::fputs(text.c_str(), stdout);
        else if (!writeFile(json_path, text))
            return 1;
        else
            std::fprintf(stderr, "traffic -> %s\n", json_path.c_str());
    } else {
        printTextSummary(doc);
    }
    return 0;
}
