/**
 * @file
 * aosd_trend: the perf database front-end — ingest every run's
 * artifacts, query metric trends, flag regressions against the rolling
 * band, render the dashboard.
 *
 *   aosd_trend ingest --db perfdb.jsonl --commit abc123 \
 *       --time 2026-08-09T12:00:00Z --host ci --flags gcc-Rel \
 *       --report report.json --counters counters.json \
 *       --kernel-windows kernel_windows.json --profile profile.json \
 *       --timeseries timeseries.json --spans spans.json \
 *       --traffic traffic.json --bench simperf=BENCH.json
 *   aosd_trend list --db perfdb.jsonl
 *   aosd_trend metrics --db perfdb.jsonl --filter counters.SPARC
 *   aosd_trend query --db perfdb.jsonl \
 *       --metric counters.SPARC.context_switch.cycles_per_call \
 *       --last 50 [--json]
 *   aosd_trend check --db perfdb.jsonl --tol 5% [--json check.json]
 *   aosd_trend html --db perfdb.jsonl --out trend.html
 *   aosd_trend export --db perfdb.jsonl --record -1 --doc counters
 *
 * The database is append-only JSONL (sim/perfdb); ingest appends one
 * line, never rewrites history (except under --replace, which re-runs
 * a recorded commit explicitly). `check` exits 1 when any metric's
 * newest value falls outside max(tol x rolling median, 3 x MAD) of up
 * to --baseline prior runs, naming the offending record pair —
 * exactly what `aosd_bisect --db --from --to` wants. Exit 2 on usage
 * or I/O errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/trend_report.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> --db perfdb.jsonl [options]\n"
        "commands:\n"
        "  ingest   append one run's artifacts as a record\n"
        "           --commit C --time T [--host H] [--flags F]\n"
        "           [--report f] [--counters f] [--kernel-windows f]\n"
        "           [--profile f] [--timeseries f] [--spans f]\n"
        "           [--traffic f] [--bench suite=f]... [--replace]\n"
        "  list     one line per record (--json for the metadata)\n"
        "  metrics  every metric path ([--filter S] substring list)\n"
        "  query    one metric's series + rolling stats\n"
        "           --metric PATH [--last N] [--baseline N] [--json]\n"
        "  check    flag metrics outside their rolling band; exit 1\n"
        "           on any flag. [--tol 5%% | 0.05] [--baseline N]\n"
        "           [--filter S] [--skip S] [--top N] [--json path]\n"
        "  html     static dashboard [--out f] [--filter S]\n"
        "           [--skip S] [--last N] [--tol ..] [--baseline N]\n"
        "  export   print one stored document\n"
        "           --record REF --doc NAME [--out f]\n"
        "record REFs: an id, a commit (or unique prefix), 'latest',\n"
        "or -N (N runs back)\n",
        argv0);
}

bool
loadJsonFile(const std::string &path, Json &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    out = Json::parse(buf.str(), &error);
    if (out.isNull() && !error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

/** "5%" -> 0.05, "0.05" -> 0.05. */
bool
parseTolerance(const std::string &arg, double &out)
{
    char *end = nullptr;
    double v = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || v < 0)
        return false;
    if (*end == '%') {
        out = v / 100.0;
        return *(end + 1) == '\0';
    }
    out = v;
    return *end == '\0';
}

struct Args
{
    std::string command;
    std::string db;
    std::string commit;
    std::string time;
    std::string host = "unknown";
    std::string flags = "unknown";
    std::string report, counters, kernelWindows, profile, timeseries,
        spans, traffic;
    std::vector<std::pair<std::string, std::string>> bench;
    bool replace = false;
    std::string metric;
    std::string filter, skip;
    std::string record, docName;
    std::string jsonPath;
    bool json = false;
    std::string out;
    double tol = 0.05;
    std::size_t last = 0;
    std::size_t baseline = 20;
    std::size_t top = 20;
};

const char *
envOr(const char *name, const char *fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? v : fallback;
}

int
cmdIngest(const Args &a)
{
    if (a.commit.empty() || a.time.empty()) {
        std::fprintf(stderr,
                     "ingest: --commit and --time are required (they "
                     "key the record; pass the commit's own "
                     "timestamp so re-ingest is reproducible)\n");
        return 2;
    }

    Json report, counters, kw, profile, timeseries, spans, traffic;
    std::vector<Json> bench_docs(a.bench.size());
    PerfDbRecordInputs in;
    if (!a.report.empty()) {
        if (!loadJsonFile(a.report, report))
            return 2;
        in.report = &report;
    }
    if (!a.counters.empty()) {
        if (!loadJsonFile(a.counters, counters))
            return 2;
        in.counters = &counters;
    }
    if (!a.kernelWindows.empty()) {
        if (!loadJsonFile(a.kernelWindows, kw))
            return 2;
        in.kernelWindows = &kw;
    }
    if (!a.profile.empty()) {
        if (!loadJsonFile(a.profile, profile))
            return 2;
        in.profile = &profile;
    }
    if (!a.timeseries.empty()) {
        if (!loadJsonFile(a.timeseries, timeseries))
            return 2;
        in.timeseries = &timeseries;
    }
    if (!a.spans.empty()) {
        if (!loadJsonFile(a.spans, spans))
            return 2;
        in.spans = &spans;
    }
    if (!a.traffic.empty()) {
        if (!loadJsonFile(a.traffic, traffic))
            return 2;
        in.traffic = &traffic;
    }
    for (std::size_t i = 0; i < a.bench.size(); ++i) {
        if (!loadJsonFile(a.bench[i].second, bench_docs[i]))
            return 2;
        in.bench.emplace_back(a.bench[i].first, &bench_docs[i]);
    }
    if (!in.report && !in.counters && !in.kernelWindows &&
        !in.profile && !in.timeseries && !in.spans && !in.traffic &&
        in.bench.empty()) {
        std::fprintf(stderr,
                     "ingest: nothing to ingest (pass at least one "
                     "document)\n");
        return 2;
    }

    Json rec = buildPerfDbRecord(a.commit, a.time, a.host, a.flags,
                                 in);

    PerfDb db;
    std::string error;
    std::ifstream exists(a.db);
    if (exists && !db.load(a.db, &error)) {
        std::fprintf(stderr, "%s: %s\n", a.db.c_str(),
                     error.c_str());
        return 2;
    }

    std::string id = PerfDb::recordId(rec);
    if (a.replace && db.remove(id))
        std::fprintf(stderr, "replacing record %s\n", id.c_str());

    if (!db.append(rec, &error)) {
        std::fprintf(stderr, "%s: %s\n", a.db.c_str(),
                     error.c_str());
        return 2;
    }

    // Plain ingest appends the one new line; --replace rewrote
    // history, so the whole file is saved.
    bool ok;
    if (a.replace) {
        ok = db.save(a.db, &error);
    } else {
        std::ofstream out(a.db, std::ios::app);
        ok = static_cast<bool>(out << rec.dump() << '\n');
        if (!ok)
            error = "cannot append to " + a.db;
    }
    if (!ok) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    std::printf("ingested %s (%zu record(s) in %s)\n", id.c_str(),
                db.size(), a.db.c_str());
    return 0;
}

int
cmdList(const Args &a, const PerfDb &db)
{
    if (a.json) {
        std::printf("%s\n", buildTrendListDoc(db).dump(1).c_str());
        return 0;
    }
    for (const PerfDbRecord &rec : db.records()) {
        std::string docs;
        for (const std::string &name : rec.docNames()) {
            if (!docs.empty())
                docs += ",";
            docs += name;
        }
        std::printf("%s  host=%s flags=%s  [%s]\n", rec.id().c_str(),
                    rec.host().c_str(), rec.buildFlags().c_str(),
                    docs.c_str());
    }
    std::printf("%zu record(s)\n", db.size());
    return 0;
}

int
cmdMetrics(const Args &a, const PerfDb &db)
{
    std::size_t shown = 0;
    for (const std::string &metric : allMetrics(db)) {
        if (!a.filter.empty() &&
            metric.find(a.filter) == std::string::npos)
            continue;
        std::printf("%s\n", metric.c_str());
        ++shown;
    }
    std::fprintf(stderr, "%zu metric(s)\n", shown);
    return 0;
}

int
cmdQuery(const Args &a, const PerfDb &db)
{
    if (a.metric.empty()) {
        std::fprintf(stderr, "query: --metric is required\n");
        return 2;
    }
    Json doc = buildTrendQueryDoc(db, a.metric, a.last, a.baseline);
    if (doc.at("points").size() == 0) {
        std::fprintf(stderr,
                     "no record carries metric %s (try "
                     "'aosd_trend metrics')\n",
                     a.metric.c_str());
        return 1;
    }
    if (a.json) {
        std::printf("%s\n", doc.dump(1).c_str());
        return 0;
    }
    std::printf("%s\n", a.metric.c_str());
    const Json &points = doc.at("points");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Json &p = points.at(i);
        std::printf("  %-44s %12g", p.at("record").asString().c_str(),
                    p.at("value").asNumber());
        if (const Json *pct = p.find("delta_pct"))
            std::printf("  (%+.2f%%)", pct->asNumber());
        std::printf("\n");
    }
    const Json &r = doc.at("rolling");
    std::printf("rolling(%llu): median %g  mad %g  latest %g  "
                "(%+.2f%% vs median)\n",
                static_cast<unsigned long long>(
                    r.at("baseline_points").asUint()),
                r.at("median").asNumber(), r.at("mad").asNumber(),
                r.at("latest").asNumber(),
                r.at("pct_change_vs_median").asNumber());
    return 0;
}

int
cmdCheck(const Args &a, const PerfDb &db)
{
    TrendCheckResult result =
        checkTrends(db, a.tol, a.baseline, a.filter, a.skip);
    if (!a.jsonPath.empty() &&
        !writeFile(a.jsonPath, result.toJson().dump(1)))
        return 2;

    std::printf("aosd_trend check: %zu metric(s) checked, %zu "
                "skipped (no band yet), %zu flagged "
                "(band: max(%.3g%% of median, 3xMAD), baseline %zu)\n",
                result.metricsChecked, result.metricsSkipped,
                result.flags.size(), 100.0 * a.tol, a.baseline);
    std::size_t shown = 0;
    for (const TrendFlag &f : result.flags) {
        if (a.top != 0 && shown == a.top) {
            std::printf("  ... %zu more flag(s); rerun with --top 0 "
                        "for all\n",
                        result.flags.size() - shown);
            break;
        }
        ++shown;
        std::printf("  FLAG %s: %g -> %g (%+.2f%% vs rolling median, "
                    "band +-%g)\n       pair: %s -> %s\n",
                    f.metric.c_str(), f.median, f.latest, f.pctChange,
                    f.bandHalfWidth, f.fromId.c_str(),
                    f.toId.c_str());
    }
    if (!result.flags.empty())
        std::printf("hand a pair to: aosd_bisect --db %s --from "
                    "'%s' --to '%s'\n",
                    a.db.c_str(), result.flags[0].fromId.c_str(),
                    result.flags[0].toId.c_str());
    return result.ok() ? 0 : 1;
}

int
cmdHtml(const Args &a, const PerfDb &db)
{
    std::string html =
        renderTrendHtml(db, a.tol, a.baseline, a.filter, a.skip,
                        a.last == 0 ? 50 : a.last);
    if (a.out.empty()) {
        std::fputs(html.c_str(), stdout);
        return 0;
    }
    if (!writeFile(a.out, html))
        return 2;
    std::fprintf(stderr, "dashboard -> %s\n", a.out.c_str());
    return 0;
}

int
cmdExport(const Args &a, const PerfDb &db)
{
    if (a.record.empty() || a.docName.empty()) {
        std::fprintf(stderr,
                     "export: --record and --doc are required\n");
        return 2;
    }
    std::string error;
    const PerfDbRecord *rec = db.resolve(a.record, &error);
    if (!rec) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    const Json *doc = rec->doc(a.docName);
    if (!doc) {
        std::string names;
        for (const std::string &n : rec->docNames()) {
            if (!names.empty())
                names += ", ";
            names += n;
        }
        std::fprintf(stderr,
                     "record %s has no document '%s' (has: %s)\n",
                     rec->id().c_str(), a.docName.c_str(),
                     names.c_str());
        return 2;
    }
    std::string text = doc->dump(1);
    if (a.out.empty()) {
        std::printf("%s\n", text.c_str());
        return 0;
    }
    if (!writeFile(a.out, text))
        return 2;
    std::fprintf(stderr, "%s of %s -> %s\n", a.docName.c_str(),
                 rec->id().c_str(), a.out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }

    Args a;
    a.command = argv[1];
    // CI convenience: the commit is usually in the environment.
    a.commit = envOr("AOSD_COMMIT", envOr("GITHUB_SHA", ""));
    a.time = envOr("AOSD_TIME", "");

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--db") {
            a.db = value();
        } else if (arg == "--commit") {
            a.commit = value();
        } else if (arg == "--time") {
            a.time = value();
        } else if (arg == "--host") {
            a.host = value();
        } else if (arg == "--flags") {
            a.flags = value();
        } else if (arg == "--report") {
            a.report = value();
        } else if (arg == "--counters") {
            a.counters = value();
        } else if (arg == "--kernel-windows") {
            a.kernelWindows = value();
        } else if (arg == "--profile") {
            a.profile = value();
        } else if (arg == "--timeseries") {
            a.timeseries = value();
        } else if (arg == "--spans") {
            a.spans = value();
        } else if (arg == "--traffic") {
            a.traffic = value();
        } else if (arg == "--bench") {
            std::string spec = value();
            std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == spec.size()) {
                std::fprintf(stderr,
                             "--bench wants suite=path, got %s\n",
                             spec.c_str());
                return 2;
            }
            a.bench.emplace_back(spec.substr(0, eq),
                                 spec.substr(eq + 1));
        } else if (arg == "--replace") {
            a.replace = true;
        } else if (arg == "--metric") {
            a.metric = value();
        } else if (arg == "--filter") {
            a.filter = value();
        } else if (arg == "--skip") {
            a.skip = value();
        } else if (arg == "--record") {
            a.record = value();
        } else if (arg == "--doc") {
            a.docName = value();
        } else if (arg == "--out") {
            a.out = value();
        } else if (arg == "--json") {
            a.json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                a.jsonPath = argv[++i];
        } else if (arg == "--tol") {
            if (!parseTolerance(value(), a.tol)) {
                std::fprintf(stderr,
                             "--tol wants e.g. 5%% or 0.05\n");
                return 2;
            }
        } else if (arg == "--last") {
            a.last = static_cast<std::size_t>(std::atoi(value()));
        } else if (arg == "--baseline") {
            a.baseline =
                static_cast<std::size_t>(std::atoi(value()));
            if (a.baseline == 0) {
                std::fprintf(stderr, "--baseline must be >= 1\n");
                return 2;
            }
        } else if (arg == "--top") {
            a.top = static_cast<std::size_t>(std::atoi(value()));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (a.command == "--help" || a.command == "-h" ||
        a.command == "help") {
        usage(argv[0]);
        return 0;
    }
    if (a.db.empty()) {
        std::fprintf(stderr, "--db is required\n");
        return 2;
    }

    if (a.command == "ingest")
        return cmdIngest(a);

    PerfDb db;
    std::string error;
    if (!db.load(a.db, &error)) {
        std::fprintf(stderr, "%s: %s\n", a.db.c_str(),
                     error.c_str());
        return 2;
    }

    if (a.command == "list")
        return cmdList(a, db);
    if (a.command == "metrics")
        return cmdMetrics(a, db);
    if (a.command == "query")
        return cmdQuery(a, db);
    if (a.command == "check")
        return cmdCheck(a, db);
    if (a.command == "html")
        return cmdHtml(a, db);
    if (a.command == "export")
        return cmdExport(a, db);

    std::fprintf(stderr, "unknown command: %s\n", a.command.c_str());
    usage(argv[0]);
    return 2;
}
