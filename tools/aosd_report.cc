/**
 * @file
 * aosd_report: run every table/ablation computation and emit one
 * machine-readable report.
 *
 *   aosd_report                      # text summary to stdout
 *   aosd_report --json               # report.json to stdout
 *   aosd_report --json report.json   # ... to a file
 *   aosd_report --trace trace.json   # also write a chrome://tracing
 *                                    # timeline of the whole run
 *   aosd_report --stats stats.json   # also snapshot every StatGroup
 *   aosd_report --jobs 8             # fan the figure grid over 8
 *                                    # worker threads
 *   aosd_report --timeseries timeseries.json
 *                                    # also sample the long-running
 *                                    # workloads into per-interval
 *                                    # event-rate series
 *   aosd_report --spans spans.json   # also span-trace the request
 *                                    # study (latency percentiles +
 *                                    # tail attribution)
 *
 * The report covers Tables 1-7 plus the paper's headline prose
 * figures; every entry carries the simulated value, the paper's value
 * where the paper gives one, and the relative error. CI regenerates
 * the report on every commit and fails if any figure drifts from the
 * checked-in snapshot (tests/test_report_regression.cc).
 *
 * report.json is byte-identical at any --jobs value (CI diffs
 * --jobs 1 against --jobs 8); --trace forces --jobs 1 because the
 * timeline of one run interleaved across workers is not a timeline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cpu/decoded_program.hh"
#include "sim/logging.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "sim/trace.hh"
#include "study/figures.hh"
#include "study/report.hh"
#include "study/span_report.hh"
#include "study/timeseries_report.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--json [path]] [--trace path] [--stats path]\n"
        "          [--timeseries path] [--spans path] [--jobs N]\n"
        "          [--no-predecode]\n"
        "  --json [path]  write report.json (stdout when no path)\n"
        "  --trace path   write a chrome://tracing timeline\n"
        "                 (forces --jobs 1)\n"
        "  --stats path   write a StatRegistry snapshot\n"
        "  --timeseries path\n"
        "                 sample the workloads and write\n"
        "                 timeseries.json (per-interval event rates)\n"
        "  --spans path   span-trace the request study and write\n"
        "                 spans.json (latency percentiles, slowest-\n"
        "                 request exemplars, tail attribution)\n"
        "  --jobs N       worker threads (default: all cores;\n"
        "                 1 = serial; report is identical either "
        "way)\n"
        "  --no-predecode re-interpret every handler program per\n"
        "                 kernel event instead of replaying the\n"
        "                 pre-decoded superblocks (slow reference\n"
        "                 path; output is identical — CI cmp-gates "
        "it)\n",
        argv0);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

void
printTextSummary(const Json &report)
{
    std::printf("aosd_report: simulated figures vs the paper\n\n");
    for (const auto &tkv : report.at("tables").items()) {
        const Json &figs = tkv.second.at("figures");
        TextTable t;
        t.header({"figure", "unit", "sim", "paper", "rel err"});
        for (std::size_t i = 0; i < figs.size(); ++i) {
            const Json &f = figs.at(i);
            const Json *paper = f.find("paper");
            const Json *err = f.find("rel_error");
            t.row({f.at("id").asString(), f.at("unit").asString(),
                   TextTable::num(f.at("sim").asNumber(), 3),
                   paper ? TextTable::num(paper->asNumber(), 3) : "-",
                   err ? TextTable::num(100.0 * err->asNumber(), 1) +
                             "%"
                       : "-"});
        }
        std::printf("%s\n%s\n", tkv.first.c_str(),
                    t.render().c_str());
    }
    const Json &s = report.at("summary");
    std::printf("figures: %llu  with paper value: %llu\n",
                static_cast<unsigned long long>(
                    s.at("figures").asUint()),
                static_cast<unsigned long long>(
                    s.at("with_paper").asUint()));
    if (s.has("mean_abs_rel_error"))
        std::printf("mean |rel err|: %.1f%%   max |rel err|: %.1f%% "
                    "(%s)\n",
                    100.0 * s.at("mean_abs_rel_error").asNumber(),
                    100.0 * s.at("max_abs_rel_error").asNumber(),
                    s.at("worst_figure").asString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool json_out = false;
    std::string json_path;
    std::string trace_path;
    std::string stats_path;
    std::string timeseries_path;
    std::string spans_path;
    unsigned jobs = ParallelRunner::defaultJobs();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto takesValue = [&](std::string &dst) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return false;
            }
            dst = argv[++i];
            return true;
        };
        if (arg == "--json") {
            json_out = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else if (arg == "--trace") {
            if (!takesValue(trace_path))
                return 2;
        } else if (arg == "--stats") {
            if (!takesValue(stats_path))
                return 2;
        } else if (arg == "--timeseries") {
            if (!takesValue(timeseries_path))
                return 2;
        } else if (arg == "--spans") {
            if (!takesValue(spans_path))
                return 2;
        } else if (arg == "--jobs") {
            std::string jobs_arg;
            if (!takesValue(jobs_arg))
                return 2;
            jobs = static_cast<unsigned>(std::atoi(jobs_arg.c_str()));
            if (jobs == 0)
                jobs = ParallelRunner::defaultJobs();
        } else if (arg == "--no-predecode") {
            setPredecodeEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (!trace_path.empty() && jobs != 1) {
        std::fprintf(stderr,
                     "--trace forces --jobs 1 (a timeline interleaved "
                     "across workers is not a timeline)\n");
        jobs = 1;
    }

    if (!trace_path.empty())
        Tracer::instance().enable(1 << 16);
    if (!stats_path.empty())
        StatRegistry::instance().setRetainRetired(true);

    ParallelRunner runner(jobs);
    if (!stats_path.empty())
        runner.setCollectStats(true);
    Json report = buildReport(runner);

    if (!timeseries_path.empty()) {
        Json ts = buildTimeseriesDoc(runner);
        if (!writeFile(timeseries_path, ts.dump(1)))
            return 1;
        std::fprintf(stderr, "timeseries -> %s\n",
                     timeseries_path.c_str());
    }

    if (!spans_path.empty()) {
        Json spans = buildSpansDoc(runner);
        if (!writeFile(spans_path, spans.dump(1)))
            return 1;
        std::fprintf(stderr, "spans -> %s\n", spans_path.c_str());
    }

    if (!trace_path.empty()) {
        Tracer::instance().disable();
        if (!writeFile(trace_path,
                       Tracer::instance().exportChromeTracing()))
            return 1;
        std::fprintf(stderr, "trace: %zu records (%llu dropped) -> %s\n",
                     Tracer::instance().size(),
                     static_cast<unsigned long long>(
                         Tracer::instance().dropped()),
                     trace_path.c_str());
    }

    if (!stats_path.empty()) {
        if (!writeFile(stats_path,
                       StatRegistry::instance().toJson().dump(1)))
            return 1;
    }

    if (json_out) {
        std::string doc = report.dump(1);
        if (json_path.empty())
            std::fputs(doc.c_str(), stdout);
        else if (!writeFile(json_path, doc))
            return 1;
        else
            std::fprintf(stderr, "report -> %s\n", json_path.c_str());
    } else {
        printTextSummary(report);
    }
    return 0;
}
