/**
 * @file
 * aosd_spans: run the span-traced request study and report latency
 * percentiles, slowest-request exemplars and tail attribution.
 *
 *   aosd_spans                       # text summary to stdout
 *   aosd_spans --json                # spans.json to stdout
 *   aosd_spans --json spans.json     # ... to a file
 *   aosd_spans --perfetto trace.json # chrome://tracing export of the
 *                                    # exemplar span trees
 *   aosd_spans --jobs 8              # fan the cell grid over 8
 *                                    # worker threads
 *   aosd_spans --requests 200        # requests per (machine,
 *                                    # primitive) cell
 *   aosd_spans --top 5               # exemplars kept per cell
 *
 * spans.json is byte-identical at any --jobs value (CI cmp-gates
 * --jobs 1 against --jobs 8).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cpu/decoded_program.hh"
#include "sim/parallel/parallel_runner.hh"
#include "study/span_report.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--json [path]] [--perfetto path] [--jobs N]\n"
        "          [--requests N] [--top K] [--machines SLUG[,...]]\n"
        "          [--no-predecode]\n"
        "  --json [path]   write spans.json (stdout when no path)\n"
        "  --perfetto path write a chrome://tracing export of the\n"
        "                  exemplar span trees\n"
        "  --jobs N        worker threads (default: all cores;\n"
        "                  1 = serial; output is identical either "
        "way)\n"
        "  --requests N    span-traced requests per (machine,\n"
        "                  primitive) cell (default 1000)\n"
        "  --top K         slowest-request exemplars per cell\n"
        "                  (default 3)\n"
        "  --machines list comma-separated machine slugs\n"
        "                  (default: the five Table 1 machines; the\n"
        "                  same spelling as aosd_counters and\n"
        "                  aosd_traffic)\n"
        "  --no-predecode  re-interpret handler programs per kernel\n"
        "                  event (slow reference path; output is\n"
        "                  identical — CI cmp-gates it)\n",
        argv0);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json_out = false;
    std::string json_path;
    std::string perfetto_path;
    unsigned jobs = ParallelRunner::defaultJobs();
    SpanOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto takesValue = [&](std::string &dst) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return false;
            }
            dst = argv[++i];
            return true;
        };
        if (arg == "--json") {
            json_out = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else if (arg == "--perfetto") {
            if (!takesValue(perfetto_path))
                return 2;
        } else if (arg == "--jobs") {
            std::string v;
            if (!takesValue(v))
                return 2;
            jobs = static_cast<unsigned>(std::atoi(v.c_str()));
            if (jobs == 0)
                jobs = ParallelRunner::defaultJobs();
        } else if (arg == "--requests") {
            std::string v;
            if (!takesValue(v))
                return 2;
            long n = std::atol(v.c_str());
            if (n <= 0) {
                usage(argv[0]);
                return 2;
            }
            opts.requestsPerPair = static_cast<std::size_t>(n);
        } else if (arg == "--top") {
            std::string v;
            if (!takesValue(v))
                return 2;
            long k = std::atol(v.c_str());
            if (k < 0) {
                usage(argv[0]);
                return 2;
            }
            opts.topK = static_cast<std::size_t>(k);
        } else if (arg == "--machines") {
            std::string list;
            if (!takesValue(list))
                return 2;
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string slug = list.substr(pos, comma - pos);
                if (!slug.empty())
                    opts.machines.push_back(machineFromSlug(slug));
                pos = comma + 1;
            }
            if (opts.machines.empty()) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--no-predecode") {
            setPredecodeEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    ParallelRunner runner(jobs);
    Json doc = buildSpansDoc(runner, opts);

    if (!perfetto_path.empty()) {
        if (!writeFile(perfetto_path, spansPerfettoJson(doc)))
            return 1;
        std::fprintf(stderr, "perfetto -> %s\n",
                     perfetto_path.c_str());
    }

    if (json_out) {
        std::string text = doc.dump(1);
        if (json_path.empty())
            std::fputs(text.c_str(), stdout);
        else if (!writeFile(json_path, text))
            return 1;
        else
            std::fprintf(stderr, "spans -> %s\n", json_path.c_str());
    } else {
        std::fputs(spansTextSummary(doc).c_str(), stdout);
    }
    return 0;
}
