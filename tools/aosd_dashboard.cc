/**
 * @file
 * aosd_dashboard: render the unified observability site from the
 * measurement documents of one run.
 *
 *   aosd_dashboard --out site \
 *     --report report.json --counters counters.json \
 *     --kernel-windows kernel_windows.json --profile profile.json \
 *     --spans spans.json --traffic open.json --traffic closed.json \
 *     --db perfdb.jsonl
 *
 * Every input is optional: missing documents render as "not
 * provided", so a partial run still gets a complete site. The output
 * is a self-contained multi-page static site (inline SVG/CSS, no
 * scripts, no external assets) plus manifest.json, byte-identical at
 * any --jobs value — CI cmp-gates --jobs 1 against --jobs 8 and the
 * no-batch/no-predecode input paths.
 *
 * The internal-link check always runs: a site with a dangling href or
 * anchor is refused (exit 1), not written.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/parallel/parallel_runner.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/dashboard/dashboard.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --out DIR [inputs] [options]\n"
        "inputs (each optional; its sections render as absent):\n"
        "  --report path          report.json (aosd_report --json)\n"
        "  --counters path        counters.json (aosd_counters "
        "--json)\n"
        "  --kernel-windows path  kernel_windows.json\n"
        "                         (aosd_counters --kernel-windows)\n"
        "  --profile path         profile.json (aosd_profile "
        "--json)\n"
        "  --spans path           spans.json (aosd_spans --json)\n"
        "  --traffic path         traffic.json (aosd_traffic "
        "--json);\n"
        "                         repeatable, one per sweep\n"
        "  --db path              perfdb.jsonl (aosd_trend ingest)\n"
        "options:\n"
        "  --out DIR              output directory (required)\n"
        "  --jobs N               worker threads (default: all "
        "cores;\n"
        "                         1 = serial; output is identical "
        "either way)\n"
        "  --tol F                history rolling-band relative\n"
        "                         tolerance (default 0.05)\n"
        "  --baseline N           history rolling-band window\n"
        "                         (default 20)\n"
        "  --last N               sparkline points per metric\n"
        "                         (default 50)\n"
        "  --metrics-cap N        per-metric rows on the history "
        "page\n"
        "                         (default 400; 0 = unlimited)\n"
        "  --filter list          comma-separated substring filter "
        "for\n"
        "                         history metrics\n"
        "  --skip list            comma-separated substring skip "
        "list\n",
        argv0);
}

/** Parse `path` as JSON into `slot`; a truncated artifact must fail
 *  loudly, never render as a half-empty site. */
bool
loadDoc(const std::string &path, Json &slot, bool &present)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    slot = Json::parse(buf.str(), &error);
    if (slot.isNull() && !error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    present = true;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir;
    std::string report_path, counters_path, kw_path, profile_path,
        spans_path, db_path;
    std::vector<std::string> traffic_paths;
    unsigned jobs = ParallelRunner::defaultJobs();
    DashboardOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto takesValue = [&](std::string &dst) {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return false;
            }
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (arg == "--out") {
            if (!takesValue(out_dir))
                return 2;
        } else if (arg == "--report") {
            if (!takesValue(report_path))
                return 2;
        } else if (arg == "--counters") {
            if (!takesValue(counters_path))
                return 2;
        } else if (arg == "--kernel-windows") {
            if (!takesValue(kw_path))
                return 2;
        } else if (arg == "--profile") {
            if (!takesValue(profile_path))
                return 2;
        } else if (arg == "--spans") {
            if (!takesValue(spans_path))
                return 2;
        } else if (arg == "--traffic") {
            if (!takesValue(v))
                return 2;
            traffic_paths.push_back(v);
        } else if (arg == "--db") {
            if (!takesValue(db_path))
                return 2;
        } else if (arg == "--jobs") {
            if (!takesValue(v))
                return 2;
            jobs = static_cast<unsigned>(std::atoi(v.c_str()));
            if (jobs == 0)
                jobs = ParallelRunner::defaultJobs();
        } else if (arg == "--tol") {
            if (!takesValue(v))
                return 2;
            opts.relTol = std::atof(v.c_str());
        } else if (arg == "--baseline") {
            if (!takesValue(v))
                return 2;
            opts.baselineWindow =
                static_cast<std::size_t>(std::atol(v.c_str()));
        } else if (arg == "--last") {
            if (!takesValue(v))
                return 2;
            opts.historyLast =
                static_cast<std::size_t>(std::atol(v.c_str()));
        } else if (arg == "--metrics-cap") {
            if (!takesValue(v))
                return 2;
            opts.historyCap =
                static_cast<std::size_t>(std::atol(v.c_str()));
        } else if (arg == "--filter") {
            if (!takesValue(opts.historyFilter))
                return 2;
        } else if (arg == "--skip") {
            if (!takesValue(opts.historySkip))
                return 2;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (out_dir.empty()) {
        usage(argv[0]);
        return 2;
    }

    Json report, counters, kernel_windows, profile, spans;
    bool has_report = false, has_counters = false, has_kw = false,
         has_profile = false, has_spans = false;
    std::vector<Json> traffic(traffic_paths.size());
    if (!report_path.empty() &&
        !loadDoc(report_path, report, has_report))
        return 1;
    if (!counters_path.empty() &&
        !loadDoc(counters_path, counters, has_counters))
        return 1;
    if (!kw_path.empty() && !loadDoc(kw_path, kernel_windows, has_kw))
        return 1;
    if (!profile_path.empty() &&
        !loadDoc(profile_path, profile, has_profile))
        return 1;
    if (!spans_path.empty() &&
        !loadDoc(spans_path, spans, has_spans))
        return 1;
    for (std::size_t i = 0; i < traffic_paths.size(); ++i) {
        bool ok = false;
        if (!loadDoc(traffic_paths[i], traffic[i], ok))
            return 1;
    }

    PerfDb db;
    bool has_db = false;
    if (!db_path.empty()) {
        std::string error;
        if (!db.load(db_path, &error)) {
            std::fprintf(stderr, "%s: %s\n", db_path.c_str(),
                         error.c_str());
            return 1;
        }
        has_db = true;
    }

    DashboardInputs in;
    if (has_report)
        in.report = &report;
    if (has_counters)
        in.counters = &counters;
    if (has_kw)
        in.kernelWindows = &kernel_windows;
    if (has_profile)
        in.profile = &profile;
    if (has_spans)
        in.spans = &spans;
    for (const Json &t : traffic)
        in.traffic.push_back(&t);
    if (has_db)
        in.db = &db;

    ParallelRunner runner(jobs);
    DashboardSite site = buildDashboardSite(in, opts, runner);

    std::vector<std::string> problems = validateDashboardLinks(site);
    if (!problems.empty()) {
        for (const std::string &p : problems)
            std::fprintf(stderr, "link check: %s\n", p.c_str());
        std::fprintf(stderr,
                     "%zu dangling link(s); site not written\n",
                     problems.size());
        return 1;
    }

    std::string error;
    if (!writeDashboardSite(site, out_dir, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "site -> %s (%zu pages + manifest.json)\n",
                 out_dir.c_str(), site.pages.size());
    return 0;
}
