/**
 * @file
 * aosd_diff: run-to-run comparison of performance documents.
 *
 *   aosd_diff old.json new.json            # default 1% tolerance
 *   aosd_diff --tol 0.05 old.json new.json # 5% relative tolerance
 *   aosd_diff --abs 0.5 old.json new.json  # ignore tiny absolute moves
 *   aosd_diff --tol-key 'p999=0.10' old.json new.json
 *                                          # wider band for one leaf
 *                                          # key (repeatable)
 *   aosd_diff --all old.json new.json      # also list unchanged paths
 *   aosd_diff --top 20 old.json new.json   # cap printed regressions
 *
 * Works on any JSON document whose leaves are numbers — profile.json
 * from aosd_profile, report.json from aosd_report, timeseries.json
 * (array leaves get their element index in the dotted path, so one
 * moved sample names itself), BENCH_simperf.json from
 * google-benchmark. Both documents are flattened to stable dotted
 * paths; any pair differing beyond tolerance, and any path present on
 * only one side, is a regression.
 *
 * When the two documents disagree in *shape* — a key that vanished, a
 * sample array that changed length, an object that became a scalar —
 * the summary also names the first structural mismatch by dotted
 * path, so schema drift is diagnosable from one log line instead of
 * from hundreds of MISSING/ADDED leaves.
 *
 * Exit status: 0 all within tolerance, 1 regressions (each named on
 * stdout), 2 usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/json.hh"
#include "study/perfdiff.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--tol REL] [--abs ABS] [--tol-key KEY=REL]...\n"
        "          [--all] [--top N] old.json new.json\n"
        "  --tol REL  relative tolerance (default 0.01 = 1%%)\n"
        "  --abs ABS  absolute slack for near-zero values "
        "(default 1e-9)\n"
        "  --tol-key KEY=REL\n"
        "             relative tolerance for leaves whose last dotted\n"
        "             segment is KEY (e.g. 'p999=0.10'; repeatable;\n"
        "             first match wins)\n"
        "  --all      also print paths within tolerance\n"
        "  --top N    print at most N regressions (0 = all, the "
        "default)\n",
        argv0);
}

bool
loadJson(const char *path, Json &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    out = Json::parse(buf.str(), &error);
    if (out.isNull() && !error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double rel_tol = 0.01;
    double abs_tol = 1e-9;
    KeyTolerances key_tols;
    bool show_all = false;
    std::size_t top = 0;
    const char *old_path = nullptr;
    const char *new_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tol") {
            rel_tol = std::atof(value());
        } else if (arg == "--abs") {
            abs_tol = std::atof(value());
        } else if (arg == "--tol-key") {
            std::string spec = value();
            std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= spec.size()) {
                std::fprintf(stderr,
                             "--tol-key wants KEY=REL, got '%s'\n",
                             spec.c_str());
                return 2;
            }
            key_tols.emplace_back(spec.substr(0, eq),
                                  std::atof(spec.c_str() + eq + 1));
        } else if (arg == "--all") {
            show_all = true;
        } else if (arg == "--top") {
            top = static_cast<std::size_t>(std::atoi(value()));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!old_path) {
            old_path = argv[i];
        } else if (!new_path) {
            new_path = argv[i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (!old_path || !new_path) {
        usage(argv[0]);
        return 2;
    }

    Json old_doc, new_doc;
    if (!loadJson(old_path, old_doc) || !loadJson(new_path, new_doc))
        return 2;

    PerfDiff diff =
        diffPerfDocs(old_doc, new_doc, rel_tol, abs_tol, key_tols);

    std::size_t printed = 0;
    std::size_t suppressed = 0;
    for (const PerfDelta &d : diff.deltas) {
        if (top != 0 && d.kind != PerfDelta::Kind::Within &&
            printed == top) {
            ++suppressed;
            continue;
        }
        if (d.kind != PerfDelta::Kind::Within)
            ++printed;
        switch (d.kind) {
          case PerfDelta::Kind::Changed:
            std::printf("REGRESSION %s: %g -> %g (%+.2f%%)\n",
                        d.path.c_str(), d.oldValue, d.newValue,
                        100.0 * (d.newValue - d.oldValue) /
                            (d.oldValue != 0 ? std::abs(d.oldValue)
                                             : 1.0));
            break;
          case PerfDelta::Kind::Missing:
            std::printf("MISSING    %s: %g -> (absent)\n",
                        d.path.c_str(), d.oldValue);
            break;
          case PerfDelta::Kind::Added:
            std::printf("ADDED      %s: (absent) -> %g\n",
                        d.path.c_str(), d.newValue);
            break;
          case PerfDelta::Kind::Within:
            if (show_all)
                std::printf("ok         %s: %g -> %g\n",
                            d.path.c_str(), d.oldValue, d.newValue);
            break;
        }
    }

    if (suppressed)
        std::printf("... %zu more regression(s) suppressed by "
                    "--top %zu\n",
                    suppressed, top);
    StructuralMismatch shape =
        firstStructuralMismatch(old_doc, new_doc);
    if (shape.found)
        std::printf("STRUCTURE  %s: %s (first structural "
                    "mismatch)\n",
                    shape.path.empty() ? "(root)"
                                       : shape.path.c_str(),
                    shape.description.c_str());
    std::printf("%zu path(s) compared, %zu regression(s) "
                "(rel tol %g, abs tol %g)\n",
                diff.compared, diff.regressions, rel_tol, abs_tol);
    return diff.ok() ? 0 : 1;
}
