/**
 * @file
 * aosd_counters: simulated hardware performance counters and the
 * cycles-explained cross-check for the OS primitives.
 *
 *   aosd_counters                        # reconciliation tables
 *   aosd_counters --json counters.json   # machine-readable document
 *   aosd_counters --reps 32              # repetitions per primitive
 *   aosd_counters --machines R2000,SPARC # subset of Table 1
 *   aosd_counters --min-explained 95     # gate (percent)
 *   aosd_counters --jobs 8               # parallel counting grid
 *   aosd_counters --kernel-windows       # reconcile whole SimKernel
 *                                        # workload windows instead
 *
 * Every machine x primitive handler runs under the hardware-counter
 * subsystem; event counts times the machine's modeled penalties must
 * reproduce the cycles the execution model charged. The tool exits
 * non-zero naming any pair whose explained share falls outside
 * [min, 200-min] percent (the default gate is 95%: under-explaining
 * means an uncounted event source, over-explaining a double count).
 *
 * --kernel-windows runs the same cross-check over whole Table 7
 * workload windows: counted kernel events x the machine's primitive
 * costs vs. the cycles SimKernel charged to primitives across each
 * (app, OS structure) run, gated by the same --min-explained band.
 * One machine per invocation (--machines picks it; default R3000).
 *
 * The counters.json schema is documented in
 * src/study/counters_report.hh and docs/EXPERIMENTS.md.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "arch/machines.hh"
#include "cpu/decoded_program.hh"
#include "sim/parallel/parallel_runner.hh"
#include "study/counters_report.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--json path] [--reps N] [--machines SLUG[,...]]\n"
        "          [--min-explained PCT] [--jobs N] [--no-predecode]\n"
        "  --json path         write counters.json\n"
        "  --reps N            repetitions per primitive (default 16)\n"
        "  --machines list     comma-separated machine slugs\n"
        "                      (default: the five Table 1 machines)\n"
        "  --min-explained P   fail below P%% explained (default 95)\n"
        "  --jobs N            worker threads (default: all cores;\n"
        "                      1 = serial; output is identical either "
        "way)\n"
        "  --kernel-windows    reconcile Table 7 workload windows\n"
        "                      (one machine; default R3000)\n"
        "  --no-predecode      interpret handler programs per event\n"
        "                      (slow reference path; identical "
        "output)\n",
        argv0);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    unsigned reps = 16;
    unsigned jobs = ParallelRunner::defaultJobs();
    double min_explained = 95.0;
    bool kernel_windows = false;
    std::vector<MachineDesc> machines;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            json_path = value();
        } else if (arg == "--reps") {
            reps = static_cast<unsigned>(std::atoi(value()));
            if (reps == 0)
                reps = 1;
        } else if (arg == "--min-explained") {
            min_explained = std::atof(value());
        } else if (arg == "--kernel-windows") {
            kernel_windows = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value()));
            if (jobs == 0)
                jobs = ParallelRunner::defaultJobs();
        } else if (arg == "--machines") {
            std::string list = value();
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string slug = list.substr(pos, comma - pos);
                if (!slug.empty())
                    machines.push_back(
                        makeMachine(machineFromSlug(slug)));
                pos = comma + 1;
            }
        } else if (arg == "--no-predecode") {
            setPredecodeEnabled(false);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    ParallelRunner runner(jobs);

    if (kernel_windows) {
        MachineDesc machine =
            machines.empty() ? makeMachine(MachineId::R3000)
                             : machines.front();
        Json doc = buildKernelWindowsDoc(machine, runner);
        double tol = 100.0 - min_explained;
        int window_failures = 0;
        for (const auto &kv : doc.at("cells").items()) {
            const Json &rec = kv.second.at("reconciliation");
            double pct = rec.at("explained_pct").asNumber();
            double cycles = rec.at("actual_cycles").asNumber();
            bool ok = std::fabs(pct - 100.0) <= tol;
            if (!ok) {
                ++window_failures;
                std::fprintf(stderr,
                             "KERNEL WINDOW FAILED %s/%s: %.2f%% of "
                             "%.0f primitive cycles explained "
                             "(gate %.0f%%)\n",
                             machineSlug(machine.id), kv.first.c_str(),
                             pct, cycles, min_explained);
            }
            if (json_path.empty())
                std::printf("%s / %s: %.0f primitive cycles, %.2f%% "
                            "explained%s\n",
                            machineSlug(machine.id), kv.first.c_str(),
                            cycles, pct, ok ? "" : "  <-- FAILED");
        }
        if (!json_path.empty()) {
            if (!writeFile(json_path, doc.dump(1)))
                return 2;
            std::fprintf(stderr, "kernel windows -> %s\n",
                         json_path.c_str());
        }
        if (window_failures) {
            std::fprintf(stderr,
                         "%d workload window(s) outside the %.0f%% "
                         "explained band\n",
                         window_failures, min_explained);
            return 1;
        }
        return 0;
    }

    if (machines.empty())
        machines = table1Machines();

    std::vector<CountedPrimitiveRun> runs =
        countAllPrimitives(machines, reps, runner);

    bool text_out = json_path.empty();
    int failed = 0;
    for (const CountedPrimitiveRun &run : runs) {
        const Reconciliation &rec = run.reconciliation;
        double pct = rec.explainedPct();
        bool ok = rec.reconciles(100.0 - min_explained);
        if (!ok) {
            ++failed;
            std::fprintf(stderr,
                         "RECONCILIATION FAILED %s/%s: %.2f%% of %llu "
                         "cycles explained (gate %.0f%%)\n",
                         machineSlug(run.machine),
                         primitiveSlug(run.primitive), pct,
                         static_cast<unsigned long long>(
                             run.totalCycles),
                         min_explained);
        }
        if (!text_out)
            continue;
        std::printf("%s / %s: %llu cycles, %.2f%% explained%s\n",
                    machineSlug(run.machine),
                    primitiveSlug(run.primitive),
                    static_cast<unsigned long long>(run.totalCycles),
                    pct, ok ? "" : "  <-- FAILED");
        for (const ExplainedTerm &t : rec.terms) {
            if (t.count == 0)
                continue;
            std::printf("  %-24s %10llu x %7.1f = %12.0f cy\n",
                        counterName(t.counter),
                        static_cast<unsigned long long>(t.count),
                        t.penaltyCycles, t.explained());
        }
        std::printf("\n");
    }

    if (!json_path.empty()) {
        Json doc = buildCountersDoc(runs, reps);
        if (!writeFile(json_path, doc.dump(1)))
            return 2;
        std::fprintf(stderr, "counters -> %s\n", json_path.c_str());
    }

    if (failed) {
        std::fprintf(stderr,
                     "%d machine/primitive pair(s) below %.0f%% "
                     "explained\n",
                     failed, min_explained);
        return 1;
    }
    return 0;
}
