/**
 * @file
 * aosd_bisect: explain a performance regression in event terms.
 *
 *   aosd_bisect old.json new.json            # ranked explanation
 *   aosd_bisect --top 5 old.json new.json    # only the 5 biggest
 *   aosd_bisect --json out.json old.json new.json
 *
 * Both inputs must be the same kind of document:
 *   - counters.json pairs (aosd_counters --json): every
 *     (machine, primitive) cell's reconciliation terms are diffed, so
 *     each moved event class arrives pre-priced with the machine's own
 *     penalty constants — "+40 cold_misses on sparc/context_switch
 *     ~ +520.0 cycles (87.0% of the regression)".
 *   - kernel-windows pairs (aosd_counters --kernel-windows --json):
 *     same term-level story for the SimKernel workload windows.
 *   - report.json pairs (aosd_report --json): no term decomposition
 *     exists, so the ranking is per-figure.
 *
 * This is an explainer, not a gate: exit 0 whether or not anything
 * moved (2 on usage or I/O error). CI runs it automatically when the
 * counters or report diff gate fails.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/json.hh"
#include "study/bisect.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--top N] [--json path] old.json new.json\n"
        "  --top N      print at most N findings (default 10,\n"
        "               0 = all)\n"
        "  --json path  also write the full ranked explanation as "
        "JSON\n"
        "accepts counters.json, kernel-windows or report.json pairs\n",
        argv0);
}

bool
loadJson(const char *path, Json &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    out = Json::parse(buf.str(), &error);
    if (out.isNull() && !error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

const char *
docMode(const Json &doc)
{
    if (doc.find("machines"))
        return "counters";
    if (doc.find("cells"))
        return "kernel-windows";
    if (doc.find("tables"))
        return "report";
    return "unknown";
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t top = 10;
    std::string json_path;
    const char *old_path = nullptr;
    const char *new_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--top") {
            top = static_cast<std::size_t>(std::atoi(value()));
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!old_path) {
            old_path = argv[i];
        } else if (!new_path) {
            new_path = argv[i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (!old_path || !new_path) {
        usage(argv[0]);
        return 2;
    }

    Json old_doc, new_doc;
    if (!loadJson(old_path, old_doc) || !loadJson(new_path, new_doc))
        return 2;

    BisectResult r = bisectDocs(old_doc, new_doc);
    const char *mode = docMode(new_doc);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 2;
        }
        out << r.toJson().dump(1);
    }

    std::printf("aosd_bisect (%s): total move %+.1f cycles, "
                "%zu finding(s)\n",
                mode, r.totalDelta, r.findings.size());
    if (r.findings.empty())
        std::printf("  nothing moved between the two documents\n");

    std::size_t shown = 0;
    for (const BisectFinding &f : r.findings) {
        if (top != 0 && shown == top) {
            std::printf("  ... %zu more finding(s); rerun with "
                        "--top 0 for all\n",
                        r.findings.size() - shown);
            break;
        }
        ++shown;
        if (f.eventClass == "figure") {
            std::printf(" %2zu. %s moved %+g (%.1f%% of the total "
                        "move)\n",
                        shown, f.unit.c_str(), f.delta,
                        100.0 * f.share);
        } else if (f.eventClass == "(unattributed)") {
            std::printf(" %2zu. %+.1f unattributed cycles on %s "
                        "(%.1f%% of the regression)\n",
                        shown, f.delta, f.unit.c_str(),
                        100.0 * f.share);
        } else {
            std::printf(" %2zu. %+g %s on %s ~ %+.1f cycles "
                        "(%.1f%% of the regression)\n",
                        shown, f.deltaCount, f.eventClass.c_str(),
                        f.unit.c_str(), f.delta, 100.0 * f.share);
        }
    }
    for (const std::string &n : r.notes)
        std::printf("  note: %s\n", n.c_str());
    return 0;
}
