/**
 * @file
 * aosd_bisect: explain a performance regression in event terms.
 *
 *   aosd_bisect old.json new.json            # ranked explanation
 *   aosd_bisect --top 5 old.json new.json    # only the 5 biggest
 *   aosd_bisect --json out.json old.json new.json
 *   aosd_bisect --db perfdb.jsonl --from <ref> --to <ref> \
 *       [--doc counters]                     # any historical pair
 *
 * Both inputs must be the same kind of document:
 *   - counters.json pairs (aosd_counters --json): every
 *     (machine, primitive) cell's reconciliation terms are diffed, so
 *     each moved event class arrives pre-priced with the machine's own
 *     penalty constants — "+40 cold_misses on sparc/context_switch
 *     ~ +520.0 cycles (87.0% of the regression)".
 *   - kernel-windows pairs (aosd_counters --kernel-windows --json):
 *     same term-level story for the SimKernel workload windows.
 *   - report.json pairs (aosd_report --json): no term decomposition
 *     exists, so the ranking is per-figure.
 *
 * The --db mode reads the pair from the perf database instead of
 * live files: --from/--to take a record id, a commit (or unique
 * prefix), 'latest' or -N, and --doc picks the stored document
 * (default: counters when both records carry it, else
 * kernel_windows, else report) — so any two historical runs can be
 * bisected long after their CI artifacts expired.
 *
 * This is an explainer, not a gate: exit 0 whether or not anything
 * moved (2 on usage or I/O error). CI runs it automatically when the
 * counters or report diff gate fails, and on every aosd_trend check
 * flag (which prints the exact --from/--to pair to use).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/json.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/bisect.hh"

using namespace aosd;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--top N] [--json path] old.json new.json\n"
        "       %s [--top N] [--json path] --db perfdb.jsonl\n"
        "          --from REF --to REF [--doc NAME]\n"
        "  --top N      print at most N findings (default 10,\n"
        "               0 = all)\n"
        "  --json path  also write the full ranked explanation as "
        "JSON\n"
        "  --db path    read the pair from a perf database\n"
        "  --from/--to  record id, commit (or unique prefix),\n"
        "               'latest', or -N (N runs back)\n"
        "  --doc NAME   stored document to bisect (default:\n"
        "               counters, else kernel_windows, else report)\n"
        "accepts counters.json, kernel-windows or report.json pairs\n",
        argv0, argv0);
}

bool
loadJson(const char *path, Json &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    out = Json::parse(buf.str(), &error);
    if (out.isNull() && !error.empty()) {
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

const char *
docMode(const Json &doc)
{
    if (doc.find("machines"))
        return "counters";
    if (doc.find("cells"))
        return "kernel-windows";
    if (doc.find("tables"))
        return "report";
    return "unknown";
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t top = 10;
    std::string json_path;
    std::string db_path, from_ref, to_ref, doc_name;
    const char *old_path = nullptr;
    const char *new_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--top") {
            top = static_cast<std::size_t>(std::atoi(value()));
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--db") {
            db_path = value();
        } else if (arg == "--from") {
            from_ref = value();
        } else if (arg == "--to") {
            to_ref = value();
        } else if (arg == "--doc") {
            doc_name = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!old_path) {
            old_path = argv[i];
        } else if (!new_path) {
            new_path = argv[i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    bool db_mode = !db_path.empty();
    if (db_mode ? (old_path || from_ref.empty() || to_ref.empty())
                : (!old_path || !new_path)) {
        usage(argv[0]);
        return 2;
    }

    Json old_doc, new_doc;
    std::string pair_label;
    if (db_mode) {
        PerfDb db;
        std::string error;
        if (!db.load(db_path, &error)) {
            std::fprintf(stderr, "%s: %s\n", db_path.c_str(),
                         error.c_str());
            return 2;
        }
        const PerfDbRecord *from = db.resolve(from_ref, &error);
        if (!from) {
            std::fprintf(stderr, "--from %s\n", error.c_str());
            return 2;
        }
        const PerfDbRecord *to = db.resolve(to_ref, &error);
        if (!to) {
            std::fprintf(stderr, "--to %s\n", error.c_str());
            return 2;
        }
        if (doc_name.empty()) {
            // The richest shared document wins: counters cells carry
            // pre-priced terms, report figures do not.
            for (const char *candidate :
                 {"counters", "kernel_windows", "report"}) {
                if (from->doc(candidate) && to->doc(candidate)) {
                    doc_name = candidate;
                    break;
                }
            }
            if (doc_name.empty()) {
                std::fprintf(stderr,
                             "records %s and %s share no counters/"
                             "kernel_windows/report document\n",
                             from->id().c_str(), to->id().c_str());
                return 2;
            }
        }
        const Json *od = from->doc(doc_name);
        const Json *nd = to->doc(doc_name);
        if (!od || !nd) {
            std::fprintf(stderr,
                         "document '%s' is missing from %s\n",
                         doc_name.c_str(),
                         (od ? to->id() : from->id()).c_str());
            return 2;
        }
        old_doc = *od;
        new_doc = *nd;
        pair_label = doc_name + " of " + from->id() + " -> " +
                     to->id();
    } else if (!loadJson(old_path, old_doc) ||
               !loadJson(new_path, new_doc)) {
        return 2;
    }

    BisectResult r = bisectDocs(old_doc, new_doc);
    const char *mode = docMode(new_doc);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         json_path.c_str());
            return 2;
        }
        out << r.toJson().dump(1);
    }

    if (!pair_label.empty())
        std::printf("aosd_bisect: %s\n", pair_label.c_str());
    std::printf("aosd_bisect (%s): total move %+.1f cycles, "
                "%zu finding(s)\n",
                mode, r.totalDelta, r.findings.size());
    if (r.findings.empty())
        std::printf("  nothing moved between the two documents\n");

    std::size_t shown = 0;
    for (const BisectFinding &f : r.findings) {
        if (top != 0 && shown == top) {
            std::printf("  ... %zu more finding(s); rerun with "
                        "--top 0 for all\n",
                        r.findings.size() - shown);
            break;
        }
        ++shown;
        if (f.eventClass == "figure") {
            std::printf(" %2zu. %s moved %+g (%.1f%% of the total "
                        "move)\n",
                        shown, f.unit.c_str(), f.delta,
                        100.0 * f.share);
        } else if (f.eventClass == "(unattributed)") {
            std::printf(" %2zu. %+.1f unattributed cycles on %s "
                        "(%.1f%% of the regression)\n",
                        shown, f.delta, f.unit.c_str(),
                        100.0 * f.share);
        } else {
            std::printf(" %2zu. %+g %s on %s ~ %+.1f cycles "
                        "(%.1f%% of the regression)\n",
                        shown, f.deltaCount, f.eventClass.c_str(),
                        f.unit.c_str(), f.delta, 100.0 * f.share);
        }
    }
    for (const std::string &n : r.notes)
        std::printf("  note: %s\n", n.c_str());
    return 0;
}
