/**
 * @file
 * P1: google-benchmark micro-benchmarks of the simulator's own hot
 * paths (handler execution, TLB lookups, workload runs), so simulator
 * performance regressions are visible.
 */

#include <benchmark/benchmark.h>

#include "core/aosd.hh"
#include "sim/batch/batch.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/spantrace/spantrace.hh"
#include "study/dashboard/dashboard.hh"
#include "study/report.hh"
#include "workload/traffic.hh"

using namespace aosd;

namespace
{

void
BM_HandlerExecution(benchmark::State &state)
{
    MachineDesc m = makeMachine(
        static_cast<MachineId>(state.range(0)));
    HandlerProgram prog = buildHandler(m, Primitive::Trap);
    ExecModel exec(m);
    for (auto _ : state) {
        ExecResult r = exec.run(prog);
        benchmark::DoNotOptimize(r.cycles);
        exec.reset();
    }
}
BENCHMARK(BM_HandlerExecution)
    ->Arg(static_cast<int>(MachineId::CVAX))
    ->Arg(static_cast<int>(MachineId::R3000))
    ->Arg(static_cast<int>(MachineId::SPARC));

void
BM_HandlerExecutionDecoded(benchmark::State &state)
{
    // The pre-decoded superblock replay of the same handler: the
    // ratio against BM_HandlerExecution is the per-execution win of
    // compiling the op walk away (only the write-buffer steps remain
    // stateful).
    MachineDesc m = makeMachine(
        static_cast<MachineId>(state.range(0)));
    const DecodedProgram &dec =
        cachedDecodedHandler(m, Primitive::Trap);
    ExecModel exec(m);
    for (auto _ : state) {
        ExecResult r = exec.runDecoded(dec);
        benchmark::DoNotOptimize(r.cycles);
        exec.reset();
    }
}
BENCHMARK(BM_HandlerExecutionDecoded)
    ->Arg(static_cast<int>(MachineId::CVAX))
    ->Arg(static_cast<int>(MachineId::R3000))
    ->Arg(static_cast<int>(MachineId::SPARC));

void
BM_HandlerExecutionProfiled(benchmark::State &state)
{
    // Same work as BM_HandlerExecution on the R3000, but with cycle
    // attribution on: the delta between the two is the profiler's
    // enabled cost, and comparing BM_HandlerExecution across builds
    // with/without -DAOSD_DISABLE_PROFILER bounds the disabled cost.
    MachineDesc m = makeMachine(MachineId::R3000);
    HandlerProgram prog = buildHandler(m, Primitive::Trap);
    ExecModel exec(m);
    Profiler::instance().enable();
    for (auto _ : state) {
        ExecResult r = exec.run(prog);
        benchmark::DoNotOptimize(r.cycles);
        exec.reset();
    }
    Profiler::instance().disable();
    Profiler::instance().clear();
}
BENCHMARK(BM_HandlerExecutionProfiled);

void
BM_HandlerExecutionCounted(benchmark::State &state)
{
    // Same work again with the hardware counters on: the delta from
    // BM_HandlerExecution is the counters' enabled cost, and comparing
    // BM_HandlerExecution across builds with/without
    // -DAOSD_DISABLE_COUNTERS bounds the disabled cost.
    MachineDesc m = makeMachine(MachineId::R3000);
    HandlerProgram prog = buildHandler(m, Primitive::Trap);
    ExecModel exec(m);
    HwCounters::instance().enable();
    for (auto _ : state) {
        ExecResult r = exec.run(prog);
        benchmark::DoNotOptimize(r.cycles);
        exec.reset();
    }
    HwCounters::instance().disable();
    HwCounters::instance().reset();
}
BENCHMARK(BM_HandlerExecutionCounted);

void
BM_HandlerExecutionTraced(benchmark::State &state)
{
    // Same work again with the tracer on: the delta from
    // BM_HandlerExecution is the tracer's enabled cost. With it off,
    // every trace site in the exec/mem hot paths is a single
    // thread-local flag test (trcdetail::on), so BM_HandlerExecution
    // itself is the disabled cost.
    MachineDesc m = makeMachine(MachineId::R3000);
    HandlerProgram prog = buildHandler(m, Primitive::Trap);
    ExecModel exec(m);
    Tracer::instance().enable(1 << 16);
    for (auto _ : state) {
        ExecResult r = exec.run(prog);
        benchmark::DoNotOptimize(r.cycles);
        exec.reset();
    }
    Tracer::instance().disable();
    Tracer::instance().clear();
}
BENCHMARK(BM_HandlerExecutionTraced);

void
BM_PrimitiveSpanTraced(benchmark::State &state)
{
    // A full span-traced request around one kernel primitive: the
    // begin/end bookkeeping, the RAII scope inside syscall() and the
    // per-phase leaves. With spantrace off, every hook is a single
    // thread-local flag test (spdetail::on), so comparing the plain
    // kernel benchmarks across builds with/without
    // -DAOSD_DISABLE_SPANTRACE bounds the disabled cost (CI gates
    // that below 3%).
    MachineDesc m = makeMachine(MachineId::R3000);
    SimKernel kernel(m);
    AddressSpace &app = kernel.createSpace("app");
    kernel.contextSwitchTo(app);
    HwCounters::instance().enable();
    // Small capacity: steady state exercises the drop path too, so
    // memory stays bounded however long the benchmark runs.
    SpanTracer::instance().enable(64);
    std::uint64_t id = 0;
    for (auto _ : state) {
        SpanTracer::instance().beginRequest("null_syscall", id++,
                                            kernel.elapsedCycles());
        kernel.syscall();
        SpanTracer::instance().endRequest(kernel.elapsedCycles());
    }
    SpanTracer::instance().take();
    HwCounters::instance().disable();
    HwCounters::instance().reset();
}
BENCHMARK(BM_PrimitiveSpanTraced);

void
BM_TlbLookup(benchmark::State &state)
{
    TlbDesc desc;
    desc.entries = static_cast<std::uint32_t>(state.range(0));
    desc.processIdTags = true;
    Tlb tlb(desc);
    for (std::uint32_t i = 0; i < desc.entries; ++i)
        tlb.insert(i, 1, i, {});
    Vpn v = 0;
    for (auto _ : state) {
        TlbLookup r = tlb.lookup(v, 1);
        benchmark::DoNotOptimize(r.hit);
        v = (v + 1) % desc.entries;
    }
}
BENCHMARK(BM_TlbLookup)->Arg(64)->Arg(256);

void
BM_PageTableWalk(benchmark::State &state)
{
    auto table = state.range(0) == 0 ? makeLinearPageTable(1 << 20)
                 : state.range(0) == 1 ? makeMultiLevelPageTable()
                                       : makeHashedPageTable(1024);
    for (Vpn v = 0; v < 4096; ++v)
        table->map(v, Pte{v, {}, false, false, false});
    Vpn v = 0;
    for (auto _ : state) {
        WalkResult r = table->walk(v);
        benchmark::DoNotOptimize(r.pte);
        v = (v + 1) % 4096;
    }
}
BENCHMARK(BM_PageTableWalk)->Arg(0)->Arg(1)->Arg(2);

void
BM_LrpcSimulation(benchmark::State &state)
{
    const MachineDesc &m = sharedCostDb().machine(MachineId::CVAX);
    for (auto _ : state) {
        LrpcModel model(m);
        LrpcBreakdown b = model.nullCall();
        benchmark::DoNotOptimize(b.totalUs());
    }
}
BENCHMARK(BM_LrpcSimulation);

void
BM_WorkloadRun(benchmark::State &state)
{
    const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
    AppProfile app = workloadByName("spellcheck-1");
    for (auto _ : state) {
        MachSystem sys(m, OsStructure::SmallKernel);
        Table7Row row = sys.run(app);
        benchmark::DoNotOptimize(row.kernelTlbMisses);
    }
}
BENCHMARK(BM_WorkloadRun);

void
BM_WorkloadRunSampled(benchmark::State &state)
{
    // BM_WorkloadRun with the periodic counter sampler on: the delta
    // against BM_WorkloadRun is the enabled sampling cost, and
    // comparing BM_WorkloadRun itself across builds with/without
    // -DAOSD_DISABLE_SAMPLER bounds the disabled-but-compiled-in cost
    // (CI gates that below 3%).
    const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
    AppProfile app = workloadByName("spellcheck-1");
    OsModelConfig cfg;
    cfg.samplingIntervalCycles = 1'000'000;
    for (auto _ : state) {
        MachSystem sys(m, OsStructure::SmallKernel, cfg);
        Table7Row row = sys.run(app);
        benchmark::DoNotOptimize(row.timeseries.samples.size());
    }
}
BENCHMARK(BM_WorkloadRunSampled);

/** Shared body of the kernel-window charging benchmarks: a seeded
 *  randomized stream of homogeneous event runs (the traffic driver's
 *  replayEventMix) against one R3000 kernel with counters and the
 *  profiler on — the instrumentation state a report run charges
 *  under. `batched` selects the closed-form batch charger or the
 *  per-event reference loop; the two produce byte-identical state, so
 *  the events/sec ratio is the batch win (CI gates it >= 5x). */
void
kernelWindowChargingBody(benchmark::State &state, bool batched)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    SimKernel kernel(m);
    AddressSpace &space = kernel.createSpace("mix");
    space.mapRange(0x1000, 64, 0x50000, {});
    HwCounters::instance().enable();
    Profiler::instance().enable();
    const bool batch_was = batchEnabled();
    setBatchEnabled(batched);
    constexpr std::uint64_t eventsPerIter = 100'000;
    std::uint64_t seed = 1;
    std::uint64_t events = 0;
    for (auto _ : state)
        events += replayEventMix(kernel, &space, eventsPerIter, seed++);
    setBatchEnabled(batch_was);
    Profiler::instance().disable();
    Profiler::instance().clear();
    HwCounters::instance().disable();
    HwCounters::instance().reset();
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}

void
BM_KernelWindowBatched(benchmark::State &state)
{
    kernelWindowChargingBody(state, true);
}
BENCHMARK(BM_KernelWindowBatched);

void
BM_KernelWindowPerEvent(benchmark::State &state)
{
    kernelWindowChargingBody(state, false);
}
BENCHMARK(BM_KernelWindowPerEvent);

void
BM_TrafficRun(benchmark::State &state)
{
    // One serial traffic sweep — 10k requests per load level on the
    // R3000 across the default four levels — the unit of work the
    // million-request aosd_traffic sweeps scale up.
    TrafficConfig cfg;
    cfg.requestsPerLevel = 10'000;
    cfg.machines = {MachineId::R3000};
    for (auto _ : state) {
        ParallelRunner serial(1);
        Json doc = buildTrafficDoc(cfg, serial);
        benchmark::DoNotOptimize(doc.size());
    }
}
BENCHMARK(BM_TrafficRun)->Unit(benchmark::kMillisecond);

void
BM_CopyModel(benchmark::State &state)
{
    const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
    for (auto _ : state) {
        Cycles c = copyCycles(m, 4096);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CopyModel);

/** Retire the state one buildReport run leaves in the calling thread:
 *  the registry's retired stat aggregates and the profiler's tree
 *  both grow per run, so without this each iteration measures a
 *  bigger heap than the last. Called with timing paused. */
void
resetReportState()
{
    StatRegistry::instance().resetAll();
    Profiler::instance().clear();
}

void
BM_ReportFull(benchmark::State &state)
{
    // The whole figure grid, serial: the --jobs 1 wall-clock baseline
    // that CI's BENCH_report.json speedup column divides by. Also the
    // predecode perf gate's numerator/denominator: CI runs the binary
    // twice, the second time under AOSD_NO_PREDECODE=1 (google-
    // benchmark owns argv, so the reference path is selected by
    // environment rather than by --no-predecode), and fails if the
    // on/off ratio falls below 3x.
    for (auto _ : state) {
        ParallelRunner serial(1);
        Json report = buildReport(serial);
        benchmark::DoNotOptimize(report.size());
        state.PauseTiming();
        resetReportState();
        state.ResumeTiming();
    }
}
BENCHMARK(BM_ReportFull)->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_ReportParallel(benchmark::State &state)
{
    // The same grid fanned over N workers; real time, because the
    // point is wall-clock speedup (CPU time only goes up with
    // threads). The output is byte-identical to BM_ReportFull's.
    for (auto _ : state) {
        ParallelRunner runner(
            static_cast<unsigned>(state.range(0)));
        Json report = buildReport(runner);
        benchmark::DoNotOptimize(report.size());
        state.PauseTiming();
        resetReportState();
        state.ResumeTiming();
    }
}
BENCHMARK(BM_ReportParallel)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_DashboardRender(benchmark::State &state)
{
    // Render-only cost of the unified observability site: the input
    // documents are built once outside the loop, so the figure
    // tracks HTML/SVG generation, not simulation.
    static const Json report = [] {
        ParallelRunner serial(1);
        Json doc = buildReport(serial);
        resetReportState();
        return doc;
    }();
    static const Json traffic = [] {
        TrafficConfig cfg;
        cfg.requestsPerLevel = 2'000;
        cfg.machines = {MachineId::R3000};
        ParallelRunner serial(1);
        return buildTrafficDoc(cfg, serial);
    }();
    DashboardInputs in;
    in.report = &report;
    in.traffic = {&traffic};
    for (auto _ : state) {
        ParallelRunner serial(1);
        DashboardSite site =
            buildDashboardSite(in, DashboardOptions{}, serial);
        benchmark::DoNotOptimize(site.pages.back().html.size());
    }
}
BENCHMARK(BM_DashboardRender)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
