/**
 * @file
 * Ablation A1 (§2.3): write-buffer architecture vs trap performance.
 *
 * The DECstation 3100's 4-deep buffer stalls 5 cycles per successive
 * write once full — ~30% of its interrupt overhead — while the
 * DECstation 5000's 6-deep buffer retires same-page writes one per
 * cycle. This bench sweeps depth and the same-page fast-retire
 * feature on the MIPS handler programs and reports where the cycles
 * go.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

ExecResult
runWith(MachineDesc m, const WriteBufferDesc &wb, Primitive p)
{
    m.writeBuffer = wb;
    ExecModel exec(m);
    return exec.run(buildHandler(m, p));
}

} // namespace

int
main()
{
    std::printf("Ablation: write buffers and trap handling (MIPS "
                "handler programs)\n\n");

    MachineDesc base = sharedCostDb().machine(MachineId::R2000);

    std::printf("Depth sweep (drain=5 cycles, no same-page retire), "
                "null syscall + trap:\n");
    TextTable t;
    t.header({"depth", "syscall cyc", "wb stall", "trap cyc",
              "wb stall", "stall % of trap"});
    for (std::uint32_t depth : {1u, 2u, 4u, 6u, 8u, 16u}) {
        WriteBufferDesc wb{depth, 5, false, 5, true};
        ExecResult sc = runWith(base, wb, Primitive::NullSyscall);
        ExecResult tr = runWith(base, wb, Primitive::Trap);
        t.row({std::to_string(depth), std::to_string(sc.cycles),
               std::to_string(sc.breakdown.writeBufferStall),
               std::to_string(tr.cycles),
               std::to_string(tr.breakdown.writeBufferStall),
               TextTable::num(
                   100.0 *
                       static_cast<double>(
                           tr.breakdown.writeBufferStall) /
                       static_cast<double>(tr.cycles),
                   0)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("DECstation 3100 vs 5000 configurations:\n");
    TextTable c;
    c.header({"config", "syscall cyc", "trap cyc", "ctxsw cyc",
              "trap wb-stall %"});
    struct Config
    {
        const char *name;
        WriteBufferDesc wb;
    };
    const Config configs[] = {
        {"3100: 4-deep, stall 5/write, reads wait",
         {4, 5, false, 5, true}},
        {"5000: 6-deep, same-page 1/cycle", {6, 4, true, 1, false}},
        {"hybrid: 4-deep + same-page retire", {4, 5, true, 1, false}},
        {"no buffer (depth 1, drain 8)", {1, 8, false, 8, true}},
    };
    for (const Config &cfg : configs) {
        ExecResult sc = runWith(base, cfg.wb, Primitive::NullSyscall);
        ExecResult tr = runWith(base, cfg.wb, Primitive::Trap);
        ExecResult cs = runWith(base, cfg.wb, Primitive::ContextSwitch);
        c.row({cfg.name, std::to_string(sc.cycles),
               std::to_string(tr.cycles), std::to_string(cs.cycles),
               TextTable::num(
                   100.0 *
                       static_cast<double>(
                           tr.breakdown.writeBufferStall) /
                       static_cast<double>(tr.cycles),
                   0)});
    }
    std::printf("%s", c.render().c_str());
    std::printf("(paper: write-buffer stalls are ~30%% of interrupt "
                "overhead on the 3100;\nthe 5000's same-page retire "
                "removes nearly all of it)\n");
    return 0;
}
