/**
 * @file
 * Ablation A6 (§2.1): how RPC latency scales with CPU speed and
 * network bandwidth.
 *
 * The paper predicts that with 10-100x network improvements coming,
 * the floor under RPC latency will be the operating system primitives
 * (interrupts, thread management, byte copying/checksums), not the
 * wire. This bench sweeps both axes on the component model.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: RPC scaling\n\n");

    const MachineDesc cvax = sharedCostDb().machine(MachineId::CVAX);

    std::printf("(1) CPU speed sweep (74-byte null RPC, CVAX "
                "components, 10 Mbit Ethernet):\n");
    TextTable t;
    t.header({"CPU factor", "latency us", "reduction %"});
    SrcRpcModel model(cvax);
    double base = model.nullRpc().totalUs();
    for (double f : {1.0, 2.0, 3.0, 5.0, 10.0}) {
        double us = model.scaledLatencyUs(74, 74, f);
        t.row({TextTable::num(f, 0) + "x", TextTable::num(us, 0),
               TextTable::num(100.0 * (base - us) / base, 0)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(Schroeder-Burrows expected ~50%% from 3x; the "
                "non-scaling components cap it)\n\n");

    std::printf("(2) Network bandwidth sweep (1500-byte result, R3000 "
                "endpoints):\n");
    TextTable n;
    n.header({"link Mbit/s", "total us", "wire us", "wire %",
              "CPU-bound floor us"});
    for (double mbps : {10.0, 100.0, 1000.0}) {
        RpcConfig cfg;
        cfg.link.mbps = mbps;
        SrcRpcModel mm(sharedCostDb().machine(MachineId::R3000), cfg);
        RpcBreakdown b = mm.roundTrip(74, 1500);
        n.row({TextTable::num(mbps, 0), TextTable::num(b.totalUs(), 0),
               TextTable::num(b.wireUs, 0),
               TextTable::num(b.percent(b.wireUs), 0),
               TextTable::num(b.cpuUs(), 0)});
    }
    std::printf("%s", n.render().c_str());
    std::printf("(s2.1: with 10-100x faster networks, the lower bound "
                "on RPC is the cost of\nOS primitives - interrupts, "
                "thread management, copies and checksums)\n\n");

    std::printf("(3) Where the floor is, per machine (100 Mbit "
                "link, null RPC):\n");
    TextTable f;
    f.header({"machine", "total us", "kernel+interrupt us",
              "copy+checksum us", "wire us"});
    for (const MachineDesc &m : allMachines()) {
        RpcConfig cfg;
        cfg.link.mbps = 100.0;
        SrcRpcModel mm(m, cfg);
        RpcBreakdown b = mm.nullRpc();
        f.row({m.name, TextTable::num(b.totalUs(), 0),
               TextTable::num(b.kernelTransferUs + b.interruptUs +
                                  b.dispatchUs,
                              0),
               TextTable::num(b.checksumUs + b.copyUs, 0),
               TextTable::num(b.wireUs, 0)});
    }
    std::printf("%s", f.render().c_str());
    return 0;
}
