/**
 * @file
 * Ablation A8 (§2.5, §3.1, §3.2): the architecture improvements the
 * paper proposes, applied to the simulated handlers.
 *
 * For each fix: the stock primitive, the improved one, and the gain —
 * quantifying the paper's qualitative suggestions.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: the paper's proposed architecture fixes\n\n");

    TextTable t;
    t.header({"fix", "machine/primitive", "stock us", "fixed us",
              "stock instr", "fixed instr", "speedup"});

    for (ArchFix fix : allArchFixes) {
        for (const MachineDesc &m : allMachines()) {
            for (Primitive p : allPrimitives) {
                if (!archFixApplies(fix, m.id, p))
                    continue;
                ExecModel exec(m);
                ExecResult stock = exec.run(buildHandler(m, p));
                exec.reset();
                // The fixed handler goes through the same pre-decoded
                // dispatch the kernel uses (interpreter when predecode
                // is off); both paths print identical numbers.
                ExecResult fixed =
                    predecodeEnabled()
                        ? exec.runDecoded(
                              cachedDecodedVariant(m, p, fix))
                        : exec.run(buildImprovedHandler(m, p, fix));
                std::string target =
                    m.name + " " + primitiveName(p);
                t.row({archFixName(fix), target,
                       TextTable::num(m.clock.cyclesToMicros(
                                          stock.cycles),
                                      1),
                       TextTable::num(m.clock.cyclesToMicros(
                                          fixed.cycles),
                                      1),
                       std::to_string(stock.instructions),
                       std::to_string(fixed.instructions),
                       TextTable::num(
                           static_cast<double>(stock.cycles) /
                               static_cast<double>(fixed.cycles),
                           2) + "x"});
            }
        }
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("What the fixed machines would mean for LRPC (the "
                "kernel-transfer bottleneck):\n");
    // Recompute the i860 LRPC with tagged caches folded into the
    // context-switch primitive via a modified machine description.
    {
        MachineDesc i860 = sharedCostDb().machine(MachineId::I860);
        LrpcBreakdown stock = LrpcModel(i860).nullCall();

        MachineDesc tagged = i860;
        tagged.cache.flushOnContextSwitch = false;
        tagged.tlb.processIdTags = true;
        tagged.tlb.pidCount = 64;
        // Rebuild primitive costs under the modified description.
        ExecModel exec(tagged);
        Cycles cs = exec.run(buildImprovedHandler(
                                 tagged, Primitive::ContextSwitch,
                                 ArchFix::CacheContextTags))
                        .cycles;
        std::printf("  i860 context switch: %.1f -> %.1f us with "
                    "cache/TLB context tags\n",
                    sharedCostDb().micros(MachineId::I860,
                                          Primitive::ContextSwitch),
                    tagged.clock.cyclesToMicros(cs));
        std::printf("  i860 null LRPC today: %.1f us (%.0f%% TLB "
                    "refill after untagged purges)\n",
                    stock.totalUs(), stock.tlbPercent());
        LrpcBreakdown fixed = LrpcModel(tagged).nullCall();
        std::printf("  i860 null LRPC with tags: %.1f us (%.0f%% "
                    "TLB)\n",
                    fixed.totalUs(), fixed.tlbPercent());
    }
    std::printf("\n(s2.5: voluntary exceptions need not pay the "
                "involuntary-exception machinery;\ns3.1: don't hide "
                "the fault address; s3.2: tag, don't flush)\n");
    return 0;
}
