/**
 * @file
 * Ablation A10 (§2.5): avoiding the kernel — LRPC vs user-level RPC.
 *
 * Since system calls and context switches are the components that do
 * not scale (§2.2, Table 1), the paper points to mechanisms that keep
 * communication out of the kernel [Bershad et al. 90b]. URPC replaces
 * the two kernel entries and two address-space switches with shared
 * memory queues, user-level thread switches, and amortized processor
 * reallocation. The win is machine-dependent: the MIPS still traps
 * for every lock (no test&set), and the SPARC's user-level thread
 * switch is itself kernel-bound (privileged CWP).
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: avoiding the kernel (LRPC vs URPC)\n\n");

    TextTable t;
    t.header({"machine", "LRPC us", "URPC us", "URPC speedup",
              "URPC lock us", "URPC switch us"});
    for (const MachineDesc &m : allMachines()) {
        LrpcBreakdown l = LrpcModel(m).nullCall();
        UrpcBreakdown u = UrpcModel(m).nullCall();
        t.row({m.name, TextTable::num(l.totalUs(), 1),
               TextTable::num(u.totalUs(), 1),
               TextTable::num(l.totalUs() / u.totalUs(), 1) + "x",
               TextTable::num(u.lockUs, 1),
               TextTable::num(u.threadSwitchUs, 1)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Amortization sweep (R3000): kernel processor "
                "reallocation every N calls:\n");
    TextTable a;
    a.header({"calls/reallocation", "URPC us", "kernel share %"});
    for (std::uint32_t n : {1u, 5u, 20u, 50u, 200u}) {
        UrpcConfig cfg;
        cfg.callsPerReallocation = n;
        UrpcBreakdown u =
            UrpcModel(sharedCostDb().machine(MachineId::R3000), cfg)
                .nullCall();
        a.row({std::to_string(n), TextTable::num(u.totalUs(), 1),
               TextTable::num(100.0 * u.reallocationUs / u.totalUs(),
                              0)});
    }
    std::printf("%s", a.render().c_str());
    std::printf("(LRPC is pinned to the hardware kernel-crossing "
                "floor; URPC trades it for\nlock + user-thread costs "
                "— which the MIPS's missing test&set and the SPARC's\n"
                "privileged window pointer partially claw back)\n");
    return 0;
}
