/**
 * @file
 * Ablation A3 (§3.2): TLB structure.
 *
 * Three experiments: (1) process-ID tags on/off — the purge-per-switch
 * cost that eats ~25% of a null LRPC on the CVAX; (2) SPARC/Cypress
 * superpage terminal PTEs — one TLB entry mapping a 256KB region;
 * (3) TLB size under a kernelized workload — the §5 observation that
 * decomposition stresses a fixed-size TLB.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: TLB structure\n\n");

    // (1) PID tags on/off on every machine, via the LRPC TLB share.
    std::printf("(1) Process-ID tags vs the null LRPC:\n");
    TextTable t;
    t.header({"machine", "tags", "LRPC us", "TLB us", "TLB %"});
    for (const MachineDesc &base : allMachines()) {
        for (bool tags : {false, true}) {
            MachineDesc m = base;
            m.tlb.processIdTags = tags;
            m.tlb.pidCount = tags ? 64 : 0;
            LrpcModel model(m);
            LrpcBreakdown b = model.nullCall();
            t.row({m.name, tags ? "yes" : "no",
                   TextTable::num(b.totalUs(), 1),
                   TextTable::num(b.tlbMissUs, 1),
                   TextTable::num(b.tlbPercent(), 1)});
        }
        t.separator();
    }
    std::printf("%s\n", t.render().c_str());

    // (2) Superpage terminal PTEs: TLB entries needed to map a region.
    std::printf("(2) SPARC/Cypress terminal (superpage) PTEs:\n");
    {
        auto table = makeMultiLevelPageTable();
        const std::uint64_t region_pages = 256; // 1MB
        for (Vpn v = 0; v < region_pages; ++v)
            table->map(v, Pte{0x1000 + v, {}, false, false, false});
        std::uint64_t base_entries = region_pages; // one TLB entry/page

        auto super = makeMultiLevelPageTable();
        std::uint64_t super_entries = 0;
        for (Vpn v = 0; v < region_pages;
             v += PageTable::superpagePages) {
            super->mapSuperpage(v,
                                Pte{0x1000 + v, {}, false, false,
                                    false});
            ++super_entries;
        }
        WalkResult w = super->walk(100);
        std::printf("  1MB region: %llu TLB entries with 4KB pages, "
                    "%llu with 256KB terminal PTEs\n",
                    static_cast<unsigned long long>(base_entries),
                    static_cast<unsigned long long>(super_entries));
        std::printf("  superpage walk: %u levels, pfn contiguous: %s, "
                    "table overhead %llu vs %llu bytes\n\n",
                    w.levels, w.pte ? "yes" : "lookup failed",
                    static_cast<unsigned long long>(
                        super->tableOverheadBytes()),
                    static_cast<unsigned long long>(
                        base_entries ? table->tableOverheadBytes() : 0));
    }

    // (3) TLB size under the decomposed OS workload.
    std::printf("(3) TLB size vs kernel TLB misses (andrew-local on "
                "the decomposed OS):\n");
    TextTable z;
    z.header({"TLB entries", "kernel TLB misses", "% time in prims"});
    for (std::uint32_t entries : {32u, 64u, 128u, 256u}) {
        MachineDesc m = sharedCostDb().machine(MachineId::R3000);
        m.tlb.entries = entries;
        MachSystem sys(m, OsStructure::SmallKernel);
        Table7Row row = sys.run(workloadByName("andrew-local"));
        z.row({std::to_string(entries),
               TextTable::grouped(row.kernelTlbMisses),
               TextTable::num(row.percentTimeInPrimitives, 1)});
    }
    std::printf("%s", z.render().c_str());
    std::printf("(s3.2/s5: kernelized structure increases the demand "
                "for tag bits and TLB size)\n");
    return 0;
}
