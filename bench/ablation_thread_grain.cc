/**
 * @file
 * Ablation A7 (§4): parallelism granularity vs thread management cost.
 *
 * A fixed amount of work is split into ever-finer slices and run
 * through the thread package at user level and kernel level on each
 * machine. Cheap thread operations keep efficiency high at fine
 * grain; expensive ones (SPARC windows, kernel crossings) force
 * coarse-grained decomposition — §4's closing argument.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

/** Run `nthreads` threads splitting `total_work` cycles into slices
 *  of `grain` cycles; return elapsed cycles. */
Cycles
runGrain(const MachineDesc &m, ThreadLevel level, Cycles total_work,
         Cycles grain, unsigned nthreads)
{
    ThreadPackage pkg(m, level);
    Cycles per_thread = total_work / nthreads;
    for (unsigned i = 0; i < nthreads; ++i) {
        std::vector<WorkSlice> slices;
        for (Cycles done = 0; done < per_thread; done += grain)
            slices.push_back({std::min(grain, per_thread - done), -1});
        pkg.create(std::move(slices));
    }
    pkg.runToCompletion();
    return pkg.elapsedCycles();
}

} // namespace

int
main()
{
    std::printf("Ablation: thread granularity crossover\n");
    std::printf("(1M cycles of work, 8 threads; efficiency = work / "
                "elapsed)\n\n");

    const Cycles total = 1000 * 1000;
    const unsigned threads = 8;

    for (MachineId id : {MachineId::R3000, MachineId::SPARC,
                         MachineId::CVAX, MachineId::RS6000}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        std::printf("%s:\n", m.name.c_str());
        TextTable t;
        t.header({"grain (cycles)", "user-level eff %",
                  "kernel-level eff %"});
        for (Cycles grain :
             {100000u, 10000u, 2000u, 500u, 200u, 100u}) {
            Cycles u = runGrain(m, ThreadLevel::User, total, grain,
                                threads);
            Cycles k = runGrain(m, ThreadLevel::Kernel, total, grain,
                                threads);
            t.row({std::to_string(grain),
                   TextTable::num(100.0 * total / u, 1),
                   TextTable::num(100.0 * total / k, 1)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("(s4: if thread operations are inexpensive, threads "
                "can be used for\nfine-grained activities; if costly, "
                "only coarse-grained parallelism works.\nNote how the "
                "SPARC's window traffic pushes its crossover far to "
                "the left.)\n");
    return 0;
}
