/**
 * @file
 * Ablation A2 (§4.1): register windows vs thread context switches.
 *
 * Sweeps the number of windows spilled/filled per context switch (the
 * SunOS average is 3 on 8-window SPARCs), prices the Synapse runs'
 * call/switch mixes on every machine, and shows the §4.1 verdict: on
 * the SPARC, a parallel program with a 21:1..42:1 call:switch ratio
 * spends more time switching than calling.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: register windows and fine-grained "
                "threads\n\n");

    std::printf("Windows saved/restored per switch (SPARC user-level "
                "thread switch):\n");
    TextTable t;
    t.header({"windows/switch", "switch cycles", "switch us",
              "switch/call ratio"});
    for (double w : {0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
        MachineDesc m = sharedCostDb().machine(MachineId::SPARC);
        m.regWindows.avgSaveRestorePerSwitch = w;
        ThreadCosts c = computeThreadCosts(m);
        t.row({TextTable::num(w, 0),
               std::to_string(c.userThreadSwitch),
               TextTable::num(
                   m.clock.cyclesToMicros(c.userThreadSwitch), 1),
               TextTable::num(c.switchToCallRatio(), 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("(paper: 3 windows/switch average; 12.8 us per window; "
                "switch ~50x a call)\n\n");

    std::printf("Synapse call/switch mixes priced on each machine "
                "(time in ms):\n");
    TextTable s;
    s.header({"machine", "run", "ratio", "call ms", "switch ms",
              "verdict"});
    for (MachineId id : {MachineId::CVAX, MachineId::R3000,
                         MachineId::SPARC, MachineId::RS6000}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        for (const SynapseRun &run : synapseExperiments()) {
            SynapseCostResult r = priceSynapseRun(m, run);
            s.row({m.name, r.run, TextTable::num(r.ratio, 0) + ":1",
                   TextTable::num(r.callTimeUs / 1000.0, 1),
                   TextTable::num(r.switchTimeUs / 1000.0, 1),
                   r.switchesDominate() ? "switches dominate"
                                        : "calls dominate"});
        }
        s.separator();
    }
    std::printf("%s", s.render().c_str());
    std::printf("(paper s4.1: on the SPARC, Synapse would spend more "
                "time context switching\nthan making procedure calls; "
                "the [Wall 86] save-active-only optimization below)\n\n");

    std::printf("Save-only-active-registers optimization "
                "[Wall 86]:\n");
    TextTable o;
    o.header({"machine", "full-state switch", "active-only switch",
              "saving"});
    for (const MachineDesc &m : table6Machines()) {
        ThreadCosts full = computeThreadCosts(m);
        ThreadCostOptions opts;
        opts.saveActiveOnly = true;
        ThreadCosts lean = computeThreadCosts(m, opts);
        double save = 100.0 *
                      (1.0 - static_cast<double>(lean.userThreadSwitch) /
                                 static_cast<double>(
                                     full.userThreadSwitch));
        o.row({m.name, std::to_string(full.userThreadSwitch),
               std::to_string(lean.userThreadSwitch),
               TextTable::num(save, 0) + "%"});
    }
    std::printf("%s", o.render().c_str());
    std::printf("(helps flat register files; cannot help register "
                "windows, whose spill is\nall-or-nothing)\n");
    return 0;
}
