/**
 * @file
 * Ablation A5 (§4.1, §5): synchronization primitives.
 *
 * The MIPS has no interlocked instruction, so user-level critical
 * sections trap into the kernel (parthenon spends ~1/5 of its time
 * there) or fall back to Lamport's software mutex. This bench prices
 * all three paths on every machine and reruns parthenon on an R3000
 * variant *with* a test&set instruction to measure what the omission
 * costs.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: synchronization primitives\n\n");

    std::printf("(1) Uncontended acquire+release, cycles:\n");
    TextTable t;
    t.header({"machine", "atomic instr", "kernel trap",
              "Lamport software", "natural choice"});
    for (const MachineDesc &m : allMachines()) {
        Cycles atomic =
            lockPairCycles(m, LockImpl::AtomicInstruction);
        Cycles trap = lockPairCycles(m, LockImpl::KernelTrap);
        Cycles lamport =
            lockPairCycles(m, LockImpl::LamportSoftware);
        t.row({m.name,
               m.hasAtomicOp ? std::to_string(atomic) : "n/a",
               std::to_string(trap), std::to_string(lamport),
               lockImplName(naturalLockImpl(m))});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("(2) parthenon (10 threads) on the R3000, with and "
                "without test&set:\n");
    AppProfile app = workloadByName("parthenon (10 threads)");
    for (bool has_tas : {false, true}) {
        MachineDesc m = sharedCostDb().machine(MachineId::R3000);
        m.hasAtomicOp = has_tas;
        MachSystem sys(m, OsStructure::Monolithic);
        Table7Row row = sys.run(app);
        std::printf("  %-24s elapsed %.1f s, emulated instrs %s, "
                    "%%prims %.0f%%\n",
                    has_tas ? "with test&set:" : "without (real MIPS):",
                    row.elapsedSeconds,
                    TextTable::grouped(row.emulatedInstructions).c_str(),
                    row.percentTimeInPrimitives);
    }
    std::printf("(paper: parthenon spends ~1/5 of its time "
                "synchronizing through the kernel,\nand multithreading "
                "still bought 10%% on a uniprocessor)\n\n");

    std::printf("(3) Lock-heavy thread workload, per lock "
                "implementation (R3000, 100k ops):\n");
    TextTable w;
    w.header({"implementation", "cycles/pair", "total ms"});
    const MachineDesc &r3k = sharedCostDb().machine(MachineId::R3000);
    for (LockImpl impl :
         {LockImpl::KernelTrap, LockImpl::LamportSoftware}) {
        Cycles pair = lockPairCycles(r3k, impl);
        double ms =
            r3k.clock.cyclesToMicros(pair * 100000ULL) / 1000.0;
        w.row({lockImplName(impl), std::to_string(pair),
               TextTable::num(ms, 1)});
    }
    std::printf("%s", w.render().c_str());
    return 0;
}
