/**
 * @file
 * Reproduces Table 1: relative performance of primitive OS functions.
 * Times emerge from cycle-level simulation of each machine's handler
 * programs; the right half shows RISC-vs-CVAX relative speeds next to
 * the paper's, and the bottom row shows application performance.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Table 1: Relative Performance of Primitive OS "
                "Functions\n\n");

    const MachineId order[] = {MachineId::CVAX, MachineId::M88000,
                               MachineId::R2000, MachineId::R3000,
                               MachineId::SPARC};
    const PrimitiveCostDb &db = sharedCostDb();

    std::printf("Time (microseconds), simulated vs paper:\n");
    TextTable t;
    t.header({"Operation", "CVAX", "88000", "R2000", "R3000", "SPARC"});
    for (Primitive p : allPrimitives) {
        std::vector<std::string> sim{primitiveName(p)};
        std::vector<std::string> pap{"  (paper)"};
        for (MachineId m : order) {
            sim.push_back(TextTable::num(db.micros(m, p), 1));
            double v = PaperPrimitiveData::microseconds(m, p);
            pap.push_back(v < 0 ? "-" : TextTable::num(v, 1));
        }
        t.row(sim);
        t.row(pap);
        t.separator();
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Relative speed (RISC/CVAX), simulated vs paper:\n");
    TextTable r;
    r.header({"Operation", "88000", "R2000", "R3000", "SPARC"});
    for (Primitive p : allPrimitives) {
        std::vector<std::string> sim{primitiveName(p)};
        std::vector<std::string> pap{"  (paper)"};
        for (MachineId m : {MachineId::M88000, MachineId::R2000,
                            MachineId::R3000, MachineId::SPARC}) {
            sim.push_back(TextTable::num(db.relativeToCvax(m, p), 1));
            double us = PaperPrimitiveData::microseconds(m, p);
            double cvax =
                PaperPrimitiveData::microseconds(MachineId::CVAX, p);
            pap.push_back(us > 0 ? TextTable::num(cvax / us, 1) : "-");
        }
        r.row(sim);
        r.row(pap);
        r.separator();
    }
    std::vector<std::string> app{"Application performance"};
    for (MachineId m : {MachineId::M88000, MachineId::R2000,
                        MachineId::R3000, MachineId::SPARC})
        app.push_back(TextTable::num(db.machine(m).appPerfVsCvax, 1));
    r.row(app);
    std::printf("%s\n", r.render().c_str());

    std::printf("Observation (paper s1.1): application performance is "
                "3.5-6.7x the CVAX,\nbut no simulated OS primitive "
                "scales commensurately on any RISC.\n");
    return 0;
}
