/**
 * @file
 * Reproduces Table 2: instructions executed for primitive OS
 * functions. The handler programs are constructed so their dynamic
 * instruction counts match the paper exactly (asserted by the test
 * suite); this bench prints them side by side plus the op-mix detail
 * the paper's prose describes.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Table 2: Instructions Executed for Primitive OS "
                "Functions\n\n");

    const MachineId order[] = {MachineId::CVAX, MachineId::M88000,
                               MachineId::R2000, MachineId::SPARC,
                               MachineId::I860};
    const PrimitiveCostDb &db = sharedCostDb();

    TextTable t;
    t.header({"Operation", "CVAX", "88000", "R2/3000", "SPARC", "i860"});
    for (Primitive p : allPrimitives) {
        std::vector<std::string> sim{primitiveName(p)};
        std::vector<std::string> pap{"  (paper)"};
        for (MachineId m : order) {
            sim.push_back(std::to_string(db.instructions(m, p)));
            pap.push_back(std::to_string(
                PaperPrimitiveData::instructionCount(m, p)));
        }
        t.row(sim);
        t.row(pap);
        t.separator();
    }
    std::printf("%s\n", t.render().c_str());

    // The i860 PTE-change detail the paper highlights.
    HandlerProgram pte = buildHandler(
        sharedCostDb().machine(MachineId::I860), Primitive::PteChange);
    std::uint64_t flush_loop = 0;
    for (const auto &ph : pte.phases) {
        flush_loop += ph.code.countOf(OpKind::CacheFlushLine);
        // each flush-loop iteration is flush + add + branch + nop
    }
    std::printf("i860 PTE change: %llu of %llu instructions are the "
                "virtual-cache flush loop\n(paper: 536 of 559 flush "
                "the cache)\n",
                static_cast<unsigned long long>(flush_loop * 4),
                static_cast<unsigned long long>(pte.instructionCount()));
    return 0;
}
