/**
 * @file
 * Ablation A9 (§1, §3.2): operating system vs application TLB
 * behaviour, reproducing the measurement background the paper builds
 * on — Clark & Emer's finding that VMS made one fifth of the
 * references but two thirds of the TLB misses on the VAX-11/780, and
 * the §3.2 rationale for the MIPS unmapped kernel segment.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: OS vs application TLB behaviour\n\n");

    std::printf("(1) Clark & Emer reproduction (CVAX-style untagged "
                "TLB, 20%% system refs):\n");
    {
        const MachineDesc cvax = sharedCostDb().machine(MachineId::CVAX);
        RefTraceResult r = runRefTrace(cvax);
        std::printf("  system reference share: %.0f%%   (paper cites "
                    "~20%%)\n",
                    100.0 * r.systemRefShare());
        std::printf("  system TLB-miss share:  %.0f%%   (paper cites "
                    "more than two thirds)\n",
                    100.0 * r.systemMissShare());
        std::printf("  miss rates: user %.2f%%, system %.2f%%\n\n",
                    100.0 * r.userMissRate(),
                    100.0 * r.systemMissRate());
    }

    std::printf("(2) Agarwal-style system-heavy workload (>50%% "
                "system references):\n");
    {
        RefTraceConfig cfg;
        cfg.systemFraction = 0.55;
        RefTraceResult r = runRefTrace(
            sharedCostDb().machine(MachineId::CVAX), cfg);
        std::printf("  system refs %.0f%%, system misses %.0f%% — "
                    "ignoring the OS in trace studies\n  discards "
                    "most of the TLB story (s1)\n\n",
                    100.0 * r.systemRefShare(),
                    100.0 * r.systemMissShare());
    }

    std::printf("(3) The same trace across TLB architectures:\n");
    TextTable t;
    t.header({"machine", "entries", "tags", "user miss %",
              "system miss %", "system miss share %"});
    for (MachineId id : {MachineId::CVAX, MachineId::M88000,
                         MachineId::R3000, MachineId::SPARC,
                         MachineId::RS6000}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        RefTraceResult r = runRefTrace(m);
        t.row({m.name, std::to_string(m.tlb.entries),
               m.tlb.processIdTags ? "yes" : "no",
               TextTable::num(100.0 * r.userMissRate(), 2),
               TextTable::num(100.0 * r.systemMissRate(), 2),
               TextTable::num(100.0 * r.systemMissShare(), 0)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("(4) MIPS unmapped kernel segment: system references "
                "that bypass the TLB\n    entirely (kseg0) vs running "
                "them mapped:\n");
    {
        const MachineDesc &mips = sharedCostDb().machine(MachineId::R3000);
        // Mapped kernel: the full trace hits the TLB.
        RefTraceResult mapped = runRefTrace(mips);
        // Unmapped kernel: only user references consume TLB entries;
        // model by zeroing the system fraction.
        RefTraceConfig cfg;
        cfg.systemFraction = 0.0;
        RefTraceResult unmapped = runRefTrace(mips, cfg);
        std::printf("  mapped kernel:   user miss rate %.2f%%, "
                    "total misses %llu\n",
                    100.0 * mapped.userMissRate(),
                    static_cast<unsigned long long>(
                        mapped.userMisses + mapped.systemMisses));
        std::printf("  unmapped kernel: user miss rate %.2f%%, "
                    "total misses %llu\n",
                    100.0 * unmapped.userMissRate(),
                    static_cast<unsigned long long>(
                        unmapped.userMisses));
        std::printf("  (s3.2: the unmapped segment saves TLB entries "
                    "— but only monolithic\n  kernels can use it; "
                    "user-level servers cannot, which is Table 7's "
                    "story)\n");
    }
    return 0;
}
