/**
 * @file
 * Ablation A14 (§4): multiprocessor thread scaling.
 *
 * A parthenon-shaped or-parallel workload (short locked queue ops +
 * node expansion) across 1-16 processors on each machine. Speedup is
 * bounded by the serialized lock section, whose cost is the machine's
 * natural synchronization primitive — a bus-locked instruction
 * everywhere except the MIPS, where every acquire is a kernel trap.
 */

#include <cstdio>

#include "core/aosd.hh"
#include "os/threads/multiprocessor.hh"

using namespace aosd;

namespace
{

MpRunResult
runParthenon(const MachineDesc &m, std::uint32_t procs,
             bool force_atomic)
{
    MachineDesc machine = m;
    if (force_atomic)
        machine.hasAtomicOp = true;
    MpThreadRunner runner(machine, ThreadLevel::User, procs);
    runner.setLockCount(1);
    const unsigned workers = 16;
    for (unsigned w = 0; w < workers; ++w) {
        std::vector<WorkSlice> slices;
        for (int i = 0; i < 100; ++i) {
            slices.push_back({40, 0});    // pop the work queue
            slices.push_back({1200, -1}); // expand a node
        }
        runner.addThread(std::move(slices));
    }
    return runner.run();
}

} // namespace

int
main()
{
    std::printf("Ablation: multiprocessor thread scaling "
                "(parthenon-shaped workload)\n\n");

    for (MachineId id : {MachineId::R3000, MachineId::SPARC,
                         MachineId::RS6000}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        std::printf("%s (locks via %s):\n", m.name.c_str(),
                    lockImplName(naturalLockImpl(m)));
        TextTable t;
        t.header({"processors", "elapsed us", "speedup",
                  "lock retries"});
        double serial = 0;
        for (std::uint32_t p : {1u, 2u, 4u, 8u, 16u}) {
            MpRunResult r = runParthenon(m, p, false);
            if (p == 1)
                serial = r.elapsedUs;
            t.row({std::to_string(p), TextTable::num(r.elapsedUs, 0),
                   TextTable::num(r.speedupOver(serial), 2) + "x",
                   TextTable::grouped(r.lockRetries)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("What a test&set instruction would buy the R3000 at 8 "
                "processors:\n");
    {
        const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
        MpRunResult without = runParthenon(m, 8, false);
        MpRunResult with_tas = runParthenon(m, 8, true);
        std::printf("  kernel-trap locks: %.0f us;  atomic locks: "
                    "%.0f us  (%.2fx faster)\n",
                    without.elapsedUs, with_tas.elapsedUs,
                    without.elapsedUs / with_tas.elapsedUs);
    }
    std::printf("\n(s4.1: \"this omission hurts uniprocessor "
                "performance as well as multiprocessor\nperformance\" "
                "- the serialized kernel-trap lock caps speedup well "
                "below the\nprocessor count)\n");
    return 0;
}
