/**
 * @file
 * Reproduces Table 3: where a round-trip cross-machine RPC spends its
 * time (SRC RPC on CVAX Fireflies over 10 Mbit Ethernet).
 *
 * Anchors from the paper: for a small (74-byte) packet only ~17% of
 * the time is on the wire; at a 1500-byte result the wire is ~50% and
 * the checksum share roughly doubles; Schroeder & Burrows expected 3x
 * CPU to cut latency ~50%, but the non-scaling primitives make the
 * real gain smaller — and Ousterhout measured Sprite RPC gaining only
 * 2x on a machine with 5x the integer performance.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

void
printBreakdown(const char *title, const RpcBreakdown &b)
{
    std::printf("%s (total %.0f us):\n", title, b.totalUs());
    TextTable t;
    t.header({"Component", "us", "%"});
    auto row = [&](const char *name, double us) {
        t.row({name, TextTable::num(us, 1),
               TextTable::num(b.percent(us), 1)});
    };
    row("Client stub", b.clientStubUs);
    row("Server stub", b.serverStubUs);
    row("Kernel transfer (syscalls+switches)", b.kernelTransferUs);
    row("Interrupt processing", b.interruptUs);
    row("Checksum", b.checksumUs);
    row("Data copy (marshal)", b.copyUs);
    row("Thread wakeup/dispatch", b.dispatchUs);
    row("Controller/DMA", b.controllerUs);
    row("Network wire", b.wireUs);
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    SrcRpcModel model(sharedCostDb().machine(MachineId::CVAX));

    RpcBreakdown small = model.nullRpc();
    printBreakdown("Null RPC, 74-byte packets (CVAX Firefly)", small);
    std::printf("  wire share: %.1f%%   (paper: ~17%% for the small "
                "packet)\n\n",
                small.percent(small.wireUs));

    RpcBreakdown large = model.roundTrip(74, 1500);
    printBreakdown("RPC with 1500-byte result", large);
    std::printf("  wire share: %.1f%%  (paper: ~50%%)\n",
                large.percent(large.wireUs));
    std::printf("  checksum share: small %.1f%% -> large %.1f%% "
                "(paper: roughly doubles)\n\n",
                small.percent(small.checksumUs),
                large.percent(large.checksumUs));

    // Schroeder-Burrows scaling expectation vs the component model.
    double base = small.totalUs();
    double scaled = model.scaledLatencyUs(74, 74, 3.0);
    std::printf("3x CPU: latency %.0f -> %.0f us (%.0f%% reduction; "
                "naive expectation ~55%%)\n",
                base, scaled, 100.0 * (base - scaled) / base);

    // Sprite-style observation: RPC speedup across machine generations
    // vs integer speedup.
    const PrimitiveCostDb &db = sharedCostDb();
    std::printf("\nRPC speedup vs integer speedup across machines "
                "(CVAX = 1.0):\n");
    TextTable t;
    t.header({"Machine", "integer x", "null RPC us", "RPC speedup x"});
    for (MachineId m : {MachineId::SUN3, MachineId::CVAX,
                        MachineId::M88000, MachineId::R2000,
                        MachineId::R3000, MachineId::SPARC}) {
        SrcRpcModel mm(db.machine(m));
        double us = mm.nullRpc().totalUs();
        t.row({db.machine(m).name,
               TextTable::num(db.machine(m).appPerfVsCvax, 1),
               TextTable::num(us, 0),
               TextTable::num(base / us, 1)});
    }
    std::printf("%s", t.render().c_str());

    // The direct Sprite check: Sun-3/75 -> SPARCstation 1+.
    double sun3 =
        SrcRpcModel(db.machine(MachineId::SUN3)).nullRpc().totalUs();
    double sparc =
        SrcRpcModel(db.machine(MachineId::SPARC)).nullRpc().totalUs();
    double integer_gain = db.machine(MachineId::SPARC).appPerfVsCvax /
                          db.machine(MachineId::SUN3).appPerfVsCvax;
    std::printf("\nSun-3/75 -> SPARCstation 1+: integer %.1fx faster, "
                "null RPC only %.1fx faster\n(paper s2.1: Sprite's "
                "kernel-to-kernel null RPC halved on hardware with 5x "
                "the\ninteger performance)\n",
                integer_gain, sun3 / sparc);
    return 0;
}
