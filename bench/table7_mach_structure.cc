/**
 * @file
 * Reproduces Table 7: application reliance on operating system
 * primitives under a monolithic (Mach 2.5) vs a decomposed (Mach 3.0)
 * OS on the DECstation 5000/200 model.
 *
 * Every count is produced by the instrumented simulated kernel while
 * the same application profile executes against the two structure
 * models; paper values are printed alongside.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

void
printHalf(OsStructure s, const std::vector<Table7Row> &rows)
{
    std::printf("%s\n", osStructureName(s));
    TextTable t;
    t.header({"Application", "Time(s)", "AS switch", "Thr switch",
              "Syscalls", "Emul.instr", "K-TLB miss", "Other exc",
              "%OS prim"});
    for (const Table7Row &r : rows) {
        if (r.structure != s)
            continue;
        Table7Row paper = paperTable7Row(r.app, s);
        t.row({r.app, TextTable::num(r.elapsedSeconds, 1),
               TextTable::grouped(r.addressSpaceSwitches),
               TextTable::grouped(r.threadSwitches),
               TextTable::grouped(r.systemCalls),
               TextTable::grouped(r.emulatedInstructions),
               TextTable::grouped(r.kernelTlbMisses),
               TextTable::grouped(r.otherExceptions),
               s == OsStructure::SmallKernel
                   ? TextTable::num(r.percentTimeInPrimitives, 0) + "%"
                   : "-"});
        t.row({"  (paper)", TextTable::num(paper.elapsedSeconds, 1),
               TextTable::grouped(paper.addressSpaceSwitches),
               TextTable::grouped(paper.threadSwitches),
               TextTable::grouped(paper.systemCalls),
               TextTable::grouped(paper.emulatedInstructions),
               TextTable::grouped(paper.kernelTlbMisses),
               TextTable::grouped(paper.otherExceptions),
               s == OsStructure::SmallKernel && paper.elapsedSeconds > 0
                   ? TextTable::num(paper.percentTimeInPrimitives, 0) +
                         "%"
                   : "-"});
        t.separator();
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    std::printf("Table 7: Application Reliance on Operating System "
                "Primitives\n");
    std::printf("(simulated MIPS R3000 DECstation 5000/200; each row "
                "followed by the paper's)\n\n");

    auto rows = Study::machStudy(MachineId::R3000);
    printHalf(OsStructure::Monolithic, rows);
    printHalf(OsStructure::SmallKernel, rows);

    // Headline structural ratios the paper calls out.
    double sw25 = 0, sw30 = 0;
    for (const Table7Row &r : rows) {
        if (r.app != "andrew-remote")
            continue;
        if (r.structure == OsStructure::Monolithic)
            sw25 = static_cast<double>(r.addressSpaceSwitches);
        else
            sw30 = static_cast<double>(r.addressSpaceSwitches);
    }
    std::printf("andrew-remote context-switch inflation (3.0/2.5): "
                "%.0fx (paper: ~33x)\n",
                sw30 / sw25);

    // s5: "the combination of Tables 1 and 7 indicates that a SPARC
    // would spend 9.4 seconds just in the overhead for system calls
    // and context switches in executing the remote Andrew script on
    // Mach 3.0."
    for (const Table7Row &r : rows) {
        if (r.app != "andrew-remote" ||
            r.structure != OsStructure::SmallKernel)
            continue;
        const PrimitiveCostDb &db = sharedCostDb();
        double sparc_s =
            (static_cast<double>(r.systemCalls) *
                 db.micros(MachineId::SPARC, Primitive::NullSyscall) +
             static_cast<double>(r.addressSpaceSwitches) *
                 db.micros(MachineId::SPARC,
                           Primitive::ContextSwitch)) /
            1e6;
        std::printf("SPARC syscall+switch overhead for andrew-remote "
                    "on Mach 3.0: %.1f s (paper: 9.4 s)\n",
                    sparc_s);
    }
    return 0;
}
