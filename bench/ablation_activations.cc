/**
 * @file
 * Ablation A12 (§4, [Anderson et al. 90]): scheduler activations.
 *
 * An I/O-mixed multithreaded workload under three thread-management
 * regimes. Kernel threads pay the Table 1 context switch on every
 * reschedule; naive user-level threads stall the processor whenever a
 * thread blocks in the kernel; scheduler activations keep user-level
 * switch costs and overlap I/O via kernel upcalls — the paper's
 * "kernel-to-user interface design" argument, quantified per machine.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: scheduler activations\n");
    IoWorkload w;
    std::printf("(workload: %u threads x %u slices x %llu cycles, "
                "I/O every %u slices, %.0f us latency)\n\n",
                w.threads, w.slicesPerThread,
                static_cast<unsigned long long>(w.sliceCycles),
                w.ioEveryNSlices, w.ioLatencyUs);

    for (MachineId id : {MachineId::R3000, MachineId::SPARC,
                         MachineId::CVAX, MachineId::RS6000}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        std::printf("%s:\n", m.name.c_str());
        TextTable t;
        t.header({"model", "elapsed us", "idle %", "switches",
                  "upcalls"});
        for (ThreadModel model : {ThreadModel::KernelThreads,
                                  ThreadModel::UserThreadsBlocking,
                                  ThreadModel::SchedulerActivations}) {
            ActivationsResult r = runIoWorkload(m, model, w);
            t.row({threadModelName(model),
                   TextTable::num(r.elapsedUs, 0),
                   TextTable::num(100.0 * r.idleFraction, 0),
                   TextTable::grouped(r.switches),
                   TextTable::grouped(r.upcalls)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("(s4: \"through careful kernel-to-user interface "
                "design, user-level threads can\nprovide all of the "
                "function of kernel-level threads without "
                "sacrificing\nperformance\" [Anderson et al. 90] - "
                "note how activations match kernel threads'\nI/O "
                "overlap at user-level switch prices, while naive "
                "user threads idle)\n");
    return 0;
}
