/**
 * @file
 * Reproduces Table 6: processor thread state (32-bit words) — the
 * state that must move on every thread context switch — plus the
 * resulting user-level thread-switch costs (§4.1), which is the point
 * the table exists to make.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Table 6: Processor Thread State (32-bit words)\n\n");

    // Paper values for the caption row.
    struct PaperRow
    {
        MachineId id;
        unsigned regs, fp, misc;
    };
    const PaperRow paper[] = {
        {MachineId::CVAX, 16, 0, 1},  {MachineId::M88000, 32, 0, 27},
        {MachineId::R2000, 32, 32, 5}, {MachineId::SPARC, 136, 32, 6},
        {MachineId::I860, 32, 32, 9},  {MachineId::RS6000, 32, 64, 4},
    };

    TextTable t;
    t.header({"", "VAX", "88000", "R2/3000", "SPARC", "i860", "RS6000"});
    auto rows = Study::threadState();
    auto line = [&](const char *label, auto get, auto getp) {
        std::vector<std::string> sim{label};
        std::vector<std::string> pap{"  (paper)"};
        for (std::size_t i = 0; i < rows.size(); ++i) {
            sim.push_back(std::to_string(get(rows[i])));
            pap.push_back(std::to_string(getp(paper[i])));
        }
        t.row(sim);
        t.row(pap);
        t.separator();
    };
    line("Registers",
         [](const ThreadStateResult &r) { return r.registers; },
         [](const PaperRow &r) { return r.regs; });
    line("F.P. state",
         [](const ThreadStateResult &r) { return r.fpState; },
         [](const PaperRow &r) { return r.fp; });
    line("Misc. state",
         [](const ThreadStateResult &r) { return r.miscState; },
         [](const PaperRow &r) { return r.misc; });
    std::printf("%s\n", t.render().c_str());

    std::printf("What the state costs: user-level thread operations "
                "(cycles / microseconds):\n");
    TextTable c;
    c.header({"Machine", "proc call", "uthread switch", "switch us",
              "switch/call", "uthread create"});
    for (const MachineDesc &m : table6Machines()) {
        ThreadCosts tc = computeThreadCosts(m);
        c.row({m.name, std::to_string(tc.procedureCall),
               std::to_string(tc.userThreadSwitch),
               TextTable::num(
                   m.clock.cyclesToMicros(tc.userThreadSwitch), 1),
               TextTable::num(tc.switchToCallRatio(), 0),
               std::to_string(tc.userThreadCreate)});
    }
    std::printf("%s", c.render().c_str());
    std::printf("(paper s4.1: a SPARC thread switch costs ~50 "
                "procedure calls at 3 window\nsave/restores per "
                "switch; a purely user-level switch is impossible "
                "because the\ncurrent-window pointer is privileged)\n");
    return 0;
}
