#!/bin/sh
# Regenerate the committed perf-database baselines from a reference
# run of the current tree.
#
# Usage: from the repo root, with a RelWithDebInfo build in ./build:
#
#   sh bench/baselines/refresh.sh
#
# What it does:
#   1. Runs aosd_report / aosd_counters (plain and --kernel-windows)
#      and aosd_spans on the current tree. These documents are
#      deterministic — any machine produces the same bytes.
#   2. Runs the simperf benchmark suite twice (predecode on and off)
#      and folds the two into BENCH_predecode.json speedups, plus the
#      batched-vs-per-event charging ratio into BENCH_traffic.json.
#      These numbers are wall-clock and machine-dependent; they seed
#      the bench trajectory and earn themselves MAD slack in the
#      rolling band as real runs accumulate.
#   3. Rebuilds bench/baselines/perfdb.jsonl: one record per recent
#      commit (oldest first, each keyed by the commit's own hash and
#      committer date so `aosd_bisect --db --from <commit>` resolves),
#      all carrying the reference documents; the newest also carries
#      the two BENCH suites.
#
# Refresh whenever a PR intentionally moves simulated figures (the
# same PRs that regenerate tests/expected_*.json), then commit the
# result. tests/test_trend.cc checks the committed baselines agree
# with the current simulator, so a stale baseline fails tier-1.

set -e

BUILD=${BUILD:-build}
OUT=bench/baselines
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== reference documents"
"$BUILD"/tools/aosd_report --json "$TMP"/report.json
"$BUILD"/tools/aosd_counters --json "$TMP"/counters.json
"$BUILD"/tools/aosd_counters --kernel-windows \
    --json "$TMP"/kernel_windows.json
"$BUILD"/tools/aosd_spans --json "$TMP"/spans.json
"$BUILD"/tools/aosd_traffic --json "$TMP"/traffic.json \
    --min-explained 100

echo "== benchmarks (predecode on)"
"$BUILD"/bench/simperf \
    --benchmark_filter='BM_ReportFull|BM_WorkloadRun|BM_HandlerExecution|BM_TlbLookup|BM_LrpcSimulation|BM_PrimitiveSpanTraced|BM_KernelWindow|BM_TrafficRun|BM_DashboardRender' \
    --benchmark_out="$OUT"/BENCH_simperf.json \
    --benchmark_out_format=json

echo "== benchmarks (predecode off)"
AOSD_NO_PREDECODE=1 "$BUILD"/bench/simperf \
    --benchmark_filter='BM_ReportFull|BM_WorkloadRun' \
    --benchmark_out="$TMP"/BENCH_predecode_off.json \
    --benchmark_out_format=json

echo "== fold predecode speedups"
python3 - "$OUT"/BENCH_simperf.json "$TMP"/BENCH_predecode_off.json \
    "$OUT"/BENCH_predecode.json <<'EOF'
import json, sys

def times(path):
    raw = json.load(open(path))
    return {b['name']: b['real_time'] for b in raw['benchmarks']}

on = times(sys.argv[1])
off = times(sys.argv[2])
doc = {'schema_version': 1, 'generator': 'bench/baselines/refresh.sh',
       'benchmarks': {}}
for name in sorted(on):
    if name not in off:
        continue
    doc['benchmarks'][name] = {
        'predecode_real_time': on[name],
        'interpreter_real_time': off[name],
        'speedup': off[name] / on[name],
    }
json.dump(doc, open(sys.argv[3], 'w'), indent=1)
EOF

echo "== fold batch-charging speedup"
python3 - "$OUT"/BENCH_simperf.json "$OUT"/BENCH_traffic.json <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
bench = {b['name']: b for b in raw['benchmarks']}
batched = bench['BM_KernelWindowBatched']
per_event = bench['BM_KernelWindowPerEvent']
doc = {
    'schema_version': 1,
    'generator': 'bench/baselines/refresh.sh',
    'batched_events_per_sec': batched['events_per_sec'],
    'per_event_events_per_sec': per_event['events_per_sec'],
    'speedup': (batched['events_per_sec'] /
                per_event['events_per_sec']),
    'traffic_run_real_time': bench['BM_TrafficRun']['real_time'],
    'time_unit': bench['BM_TrafficRun']['time_unit'],
}
json.dump(doc, open(sys.argv[2], 'w'), indent=1)
EOF

echo "== rebuild $OUT/perfdb.jsonl"
rm -f "$OUT"/perfdb.jsonl
COMMITS=$(git log --format='%H %cI' -3 | tac | awk '{print $1 "=" $2}')
LAST=$(git log --format='%H' -1)
for entry in $COMMITS; do
    commit=${entry%%=*}
    when=${entry#*=}
    if [ "$commit" = "$LAST" ]; then
        BENCH_ARGS="--bench simperf=$OUT/BENCH_simperf.json \
                    --bench predecode=$OUT/BENCH_predecode.json \
                    --bench traffic=$OUT/BENCH_traffic.json"
    else
        BENCH_ARGS=""
    fi
    # shellcheck disable=SC2086
    "$BUILD"/tools/aosd_trend ingest --db "$OUT"/perfdb.jsonl \
        --commit "$commit" --time "$when" \
        --host reference --flags gcc-RelWithDebInfo \
        --report "$TMP"/report.json \
        --counters "$TMP"/counters.json \
        --kernel-windows "$TMP"/kernel_windows.json \
        --spans "$TMP"/spans.json \
        --traffic "$TMP"/traffic.json \
        $BENCH_ARGS
done

"$BUILD"/tools/aosd_trend list --db "$OUT"/perfdb.jsonl
echo "== done; review and commit bench/baselines/"
