/**
 * @file
 * Reproduces Table 4: LRPC processing time vs the hardware minimum.
 *
 * Anchors: a null LRPC on the CVAX Firefly takes ~157 us against a
 * ~109 us hardware-imposed minimum, and ~25% of the time is lost to
 * TLB misses because the untagged CVAX TLB is purged twice per call.
 * Machines with process-ID tags keep their entries across the two
 * switches — the s3.2 argument for tags, shown in the lower table.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    LrpcModel cvax(sharedCostDb().machine(MachineId::CVAX));
    LrpcBreakdown b = cvax.nullCall();

    std::printf("Table 4: LRPC processing time (CVAX Firefly)\n\n");
    TextTable t;
    t.header({"Component", "us", "%"});
    auto row = [&](const char *name, double us) {
        t.row({name, TextTable::num(us, 1),
               TextTable::num(100.0 * us / b.totalUs(), 1)});
    };
    row("Stubs (client+server)", b.stubUs);
    row("Kernel entry (2 traps)", b.kernelEntryUs);
    row("Binding validation/dispatch", b.validationUs);
    row("Context switches (2)", b.contextSwitchUs);
    row("TLB miss refill", b.tlbMissUs);
    row("A-stack argument copy", b.argCopyUs);
    std::printf("%s\n", t.render().c_str());

    std::printf("Null LRPC total:     %.0f us (paper: ~157 us)\n",
                b.totalUs());
    std::printf("Hardware minimum:    %.0f us (paper: ~109 us)\n",
                b.hardwareMinimumUs());
    std::printf("TLB-miss share:      %.0f%% (paper: ~25%% on the "
                "untagged CVAX TLB)\n\n",
                b.tlbPercent());

    std::printf("The same call on every machine (tagged TLBs keep "
                "their entries):\n");
    TextTable m;
    m.header({"Machine", "TLB tags", "total us", "TLB-miss us",
              "TLB share %", "misses/call"});
    for (const MachineDesc &md : allMachines()) {
        LrpcModel model(md);
        LrpcBreakdown lb = model.nullCall();
        m.row({md.name, md.tlb.processIdTags ? "yes" : "no",
               TextTable::num(lb.totalUs(), 1),
               TextTable::num(lb.tlbMissUs, 1),
               TextTable::num(lb.tlbPercent(), 1),
               std::to_string(model.steadyStateTlbMisses())});
    }
    std::printf("%s", m.render().c_str());
    std::printf("(s2.2: the kernel bottleneck is *worse* on newer "
                "architectures because syscall\nand context-switch "
                "costs have not kept pace with processor speed)\n");
    return 0;
}
