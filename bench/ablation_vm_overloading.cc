/**
 * @file
 * Ablation A11 (§3, §3.3): what overloading VM protection costs.
 *
 * Runs the three §3 run-time clients — concurrent GC read barrier,
 * incremental checkpointing, page-level transaction locking — on top
 * of the fault-reflection pipeline, per machine. Every fault pays the
 * machine's trap + two kernel crossings + PTE change, so §3.3's
 * warning emerges: on machines with expensive faults and virtual
 * caches (i860), "operating systems may need to be less aggressive"
 * with these techniques.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

struct Costs
{
    double gcUs;
    double ckptUs;
    double txUs;
    std::uint64_t txFaults;
};

Costs
measure(const MachineDesc &m)
{
    Costs c{};
    const std::uint64_t pages = 64;

    { // GC: collection over 64 pages, mutator touches every page.
        SimKernel kernel(m);
        VmManager vm(kernel);
        AddressSpace &heap = kernel.createSpace("heap");
        PageProt rw;
        rw.writable = true;
        vm.mapZeroFill(heap, 0x100, pages, rw);
        GcBarrier gc(vm, heap);
        kernel.resetAccounting();
        gc.startCollection(0x100, pages);
        for (Vpn v = 0; v < pages; ++v)
            gc.mutatorAccess(0x100 + v, false);
        c.gcUs = kernel.elapsedMicros();
    }
    { // Checkpoint: 64 pages, app rewrites half of them.
        SimKernel kernel(m);
        VmManager vm(kernel);
        AddressSpace &space = kernel.createSpace("app");
        PageProt rw;
        rw.writable = true;
        vm.mapZeroFill(space, 0x100, pages, rw);
        IncrementalCheckpoint ckpt(vm, space);
        kernel.resetAccounting();
        ckpt.begin(0x100, pages);
        for (Vpn v = 0; v < pages / 2; ++v)
            ckpt.applicationWrite(0x100 + v);
        c.ckptUs = kernel.elapsedMicros();
    }
    { // Transactions: 32 sequential tx, 4 reads + 2 writes each.
        SimKernel kernel(m);
        VmManager vm(kernel);
        AddressSpace &space = kernel.createSpace("db");
        PageProt rw;
        rw.writable = true;
        vm.mapZeroFill(space, 0x100, pages, rw);
        TransactionVm tx(vm, space, 0x100, pages);
        kernel.resetAccounting();
        for (std::uint32_t i = 0; i < 32; ++i) {
            auto id = tx.begin();
            for (Vpn v = 0; v < 4; ++v)
                tx.read(id, 0x100 + (i * 7 + v) % pages);
            for (Vpn v = 0; v < 2; ++v)
                tx.write(id, 0x100 + (i * 11 + v) % pages);
            tx.commit(id);
        }
        c.txUs = kernel.elapsedMicros();
        c.txFaults = tx.lockFaults();
    }
    return c;
}

} // namespace

int
main()
{
    std::printf("Ablation: overloading virtual memory protection "
                "(s3)\n\n");
    std::printf("64-page region; GC scans all pages on first touch, "
                "checkpoint copies the 32\npages the app rewrites, 32 "
                "transactions lock pages on fault.\n\n");

    TextTable t;
    t.header({"machine", "trap us", "PTE us", "GC barrier us",
              "checkpoint us", "32 txns us"});
    const PrimitiveCostDb &db = sharedCostDb();
    for (const MachineDesc &m : allMachines()) {
        Costs c = measure(m);
        t.row({m.name,
               TextTable::num(db.micros(m.id, Primitive::Trap), 1),
               TextTable::num(db.micros(m.id, Primitive::PteChange), 1),
               TextTable::num(c.gcUs, 0), TextTable::num(c.ckptUs, 0),
               TextTable::num(c.txUs, 0)});
    }
    std::printf("%s\n", t.render().c_str());

    // The i860-vs-R3000 contrast the paper predicts.
    Costs i860 = measure(db.machine(MachineId::I860));
    Costs r3k = measure(db.machine(MachineId::R3000));
    std::printf("i860/R3000 cost ratio: GC %.1fx, checkpoint %.1fx, "
                "transactions %.1fx\n",
                i860.gcUs / r3k.gcUs, i860.ckptUs / r3k.ckptUs,
                i860.txUs / r3k.txUs);
    std::printf("(s3.3: \"operating systems for modern architectures "
                "may need to be less\naggressive in their use of "
                "copy-on-write and similar mechanisms that rely on\n"
                "fast fault handling\" - the i860's virtual-cache "
                "sweeps on every PTE change\nmake exactly these "
                "techniques disproportionately dear)\n");
    return 0;
}
