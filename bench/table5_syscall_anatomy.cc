/**
 * @file
 * Reproduces Table 5: where the null system call spends its time —
 * kernel entry/exit, call preparation, and the C call/return — on the
 * CVAX, R2000 and SPARC.
 *
 * The paper's points: the VAX pays in hardware (CHMK/REI microcode)
 * but is cheap once inside; the RISCs enter in under a microsecond but
 * burn the savings in software call preparation — the SPARC spends
 * ~30% of the whole call managing register windows.
 */

#include <cstdio>
#include <map>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Table 5: Time in Null System Call (microseconds)\n\n");

    const MachineId order[] = {MachineId::CVAX, MachineId::R2000,
                               MachineId::SPARC};
    const PhaseKind phases[] = {PhaseKind::KernelEntryExit,
                                PhaseKind::CallPrep,
                                PhaseKind::CCallReturn};

    auto rows = Study::syscallAnatomy();
    auto find = [&](MachineId m, PhaseKind ph) {
        for (const auto &r : rows)
            if (r.machine == m && r.phase == ph)
                return r;
        return SyscallPhaseResult{};
    };

    TextTable t;
    t.header({"Function", "CVAX", "R2000", "SPARC"});
    double sim_total[3] = {0, 0, 0};
    for (PhaseKind ph : phases) {
        std::vector<std::string> sim{phaseName(ph)};
        std::vector<std::string> pap{"  (paper)"};
        int i = 0;
        for (MachineId m : order) {
            auto r = find(m, ph);
            sim_total[i++] += r.simMicros;
            sim.push_back(TextTable::num(r.simMicros, 1));
            pap.push_back(r.paperMicros < 0
                              ? "-"
                              : TextTable::num(r.paperMicros, 1));
        }
        t.row(sim);
        t.row(pap);
        t.separator();
    }
    t.row({"Total", TextTable::num(sim_total[0], 1),
           TextTable::num(sim_total[1], 1),
           TextTable::num(sim_total[2], 1)});
    t.row({"  (paper)", "15.8", "9.0", "15.2"});
    std::printf("%s\n", t.render().c_str());

    // The SPARC window-processing share called out in s2.3.
    const MachineDesc &sparc = sharedCostDb().machine(MachineId::SPARC);
    ExecModel exec(sparc);
    Cycles window = exec.runStream(sparcWindowSaveSeq(sparc)).cycles;
    Cycles total =
        sharedCostDb().cycles(MachineId::SPARC, Primitive::NullSyscall);
    std::printf("SPARC register-window processing: %.0f%% of the null "
                "system call (paper: ~30%%)\n",
                100.0 * static_cast<double>(window) /
                    static_cast<double>(total));
    return 0;
}
