/**
 * @file
 * Ablation A4 (§3.2): virtually-addressed caches.
 *
 * A PTE change must invalidate at most one TLB entry, but on a
 * virtually-addressed cache it must sweep every line of the page
 * (i860: 536 of 559 instructions); without context tags the whole
 * cache goes on every switch. This bench prices both effects with the
 * functional cache model and the handler programs.
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: virtually-addressed caches\n\n");

    std::printf("(1) PTE-change and context-switch primitives, by "
                "cache type:\n");
    TextTable t;
    t.header({"machine", "cache", "tags", "PTE change us",
              "ctx switch us"});
    const PrimitiveCostDb &db = sharedCostDb();
    for (const MachineDesc &m : allMachines()) {
        const char *kind =
            m.cache.indexing == CacheIndexing::Virtual ? "virtual"
                                                       : "physical";
        const char *tags =
            m.cache.indexing != CacheIndexing::Virtual
                ? "-"
                : (m.cache.flushOnContextSwitch ? "no" : "yes");
        t.row({m.name, kind, tags,
               TextTable::num(db.micros(m.id, Primitive::PteChange), 1),
               TextTable::num(
                   db.micros(m.id, Primitive::ContextSwitch), 1)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("(2) Functional flush costs (i860-style 8KB virtual "
                "cache, 32B lines):\n");
    {
        MachineDesc i860 = db.machine(MachineId::I860);
        Cache cache(i860.cache);
        // Warm the cache with one context's data.
        for (Addr a = 0; a < 8 * 1024; a += 32)
            cache.access(a, 1, a % 64 == 0);
        Cycles page_flush = cache.flushPage(0, 1);
        for (Addr a = 0; a < 8 * 1024; a += 32)
            cache.access(a, 1, false);
        Cycles full_flush = cache.flushAll();
        std::printf("  flush one 4KB page: %llu cycles (%.1f us)\n",
                    static_cast<unsigned long long>(page_flush),
                    i860.clock.cyclesToMicros(page_flush));
        std::printf("  flush whole cache (context switch, untagged): "
                    "%llu cycles (%.1f us)\n",
                    static_cast<unsigned long long>(full_flush),
                    i860.clock.cyclesToMicros(full_flush));
    }

    std::printf("\n(3) What context tags would save the i860:\n");
    {
        MachineDesc tagged = db.machine(MachineId::I860);
        Cache untagged_cache(tagged.cache);
        // Untagged: every switch flushes. Tagged: nothing to do.
        Cycles flush = untagged_cache.flushAll();
        std::printf("  per switch: %llu cycles untagged vs 0 tagged "
                    "(s3.2: \"Process IDs can\n  eliminate the need "
                    "for this\")\n",
                    static_cast<unsigned long long>(flush));
    }

    std::printf("\n(4) Copy bandwidth by machine (s2.4, [Ousterhout "
                "90b]):\n");
    TextTable c;
    c.header({"machine", "MHz", "integer x", "copy MB/s",
              "MB/s per integer x"});
    for (const MachineDesc &m : allMachines()) {
        double bw = copyBandwidthMBps(m);
        c.row({m.name, TextTable::num(m.clock.mhz(), 1),
               TextTable::num(m.appPerfVsCvax, 1),
               TextTable::num(bw, 1),
               TextTable::num(bw / m.appPerfVsCvax, 1)});
    }
    std::printf("%s", c.render().c_str());
    std::printf("(relative copy performance drops as integer "
                "performance rises)\n");
    return 0;
}
