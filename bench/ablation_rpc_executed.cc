/**
 * @file
 * Ablation A13: executed vs analytic RPC.
 *
 * Runs real round trips through the event-driven two-node simulation
 * (schedulers, interrupts, packets on a shared Ethernet) and compares
 * against the Table 3 analytic component model — the same
 * breakdown-vs-measurement consistency check the paper's authors
 * performed on the Firefly.
 */

#include <cstdio>

#include "core/aosd.hh"
#include "os/ipc/rpc_sim.hh"

using namespace aosd;

int
main()
{
    std::printf("Ablation: executed RPC simulation vs analytic "
                "model\n\n");

    TextTable t;
    t.header({"machine", "analytic us", "executed us", "delta %",
              "client CPU us", "server CPU us"});
    for (const MachineDesc &m : allMachines()) {
        SrcRpcModel analytic(m);
        double a = analytic.nullRpc().totalUs();
        RpcSimulation sim(m);
        RpcSimResult r = sim.run(50);
        double delta = 100.0 * (r.latencyUs - a) / a;
        t.row({m.name, TextTable::num(a, 0),
               TextTable::num(r.latencyUs, 0),
               TextTable::num(delta, 1),
               TextTable::num(r.clientCpuUs / 50.0, 0),
               TextTable::num(r.serverCpuUs / 50.0, 0)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Payload sweep on the R3000 (executed):\n");
    TextTable p;
    p.header({"result bytes", "latency us", "packets"});
    for (std::uint32_t bytes : {4u, 74u, 512u, 1500u}) {
        RpcSimulation sim(sharedCostDb().machine(MachineId::R3000));
        RpcSimResult r = sim.run(20, 74, bytes);
        p.row({std::to_string(bytes), TextTable::num(r.latencyUs, 0),
               std::to_string(r.packets)});
    }
    std::printf("%s", p.render().c_str());
    std::printf("(the executed path exercises EventQueue + Network + "
                "SimKernel end to end;\nagreement with the component "
                "model validates both)\n");
    return 0;
}
