/**
 * @file
 * Example: a fine-grained parallel program on the thread package (§4).
 *
 * Models an or-parallel search (parthenon-style): 8 worker threads
 * expand nodes (short slices) and synchronize on a shared work-queue
 * lock. Runs the identical program as user-level and kernel-level
 * threads on the R3000 and the SPARC, demonstrating the ThreadPackage
 * public API and the §4 conclusion about processor state.
 *
 * Run: ./build/examples/example_finegrain_threads
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

double
runSearch(const MachineDesc &m, ThreadLevel level)
{
    ThreadPackage pkg(m, level);
    pkg.setLockCount(1);
    const unsigned workers = 8;
    const unsigned nodes_per_worker = 200;
    for (unsigned w = 0; w < workers; ++w) {
        std::vector<WorkSlice> slices;
        for (unsigned i = 0; i < nodes_per_worker; ++i) {
            slices.push_back({60, 0});      // pop work (locked)
            slices.push_back({400, -1});    // expand the node
        }
        pkg.create(std::move(slices));
    }
    pkg.runToCompletion();
    std::printf("    %-12s %8.0f us  (%llu switches, %llu lock "
                "acquires, %llu contended)\n",
                level == ThreadLevel::User ? "user-level:"
                                           : "kernel-level:",
                pkg.elapsedMicros(),
                static_cast<unsigned long long>(
                    pkg.stats().get("switches")),
                static_cast<unsigned long long>(
                    pkg.stats().get("lock_acquires")),
                static_cast<unsigned long long>(
                    pkg.stats().get("lock_contended")));
    return pkg.elapsedMicros();
}

} // namespace

int
main()
{
    std::printf("Or-parallel search: 8 workers x 200 nodes, shared "
                "work queue\n\n");

    for (MachineId id : {MachineId::R3000, MachineId::SPARC,
                         MachineId::RS6000}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        ThreadCosts costs = computeThreadCosts(m);
        std::printf("%s (user switch %llu cycles = %.0f procedure "
                    "calls, lock via %s):\n",
                    m.name.c_str(),
                    static_cast<unsigned long long>(
                        costs.userThreadSwitch),
                    costs.switchToCallRatio(),
                    lockImplName(naturalLockImpl(m)));
        double user = runSearch(m, ThreadLevel::User);
        double kern = runSearch(m, ThreadLevel::Kernel);
        std::printf("    user-level threads are %.1fx faster here\n\n",
                    kern / user);
    }

    std::printf("(s4.1: large processor state makes fine-grained "
                "threads expensive; the MIPS\nadditionally pays a "
                "kernel trap per lock because it has no test&set)\n");
    return 0;
}
