/**
 * @file
 * Example: using the library as an architecture-design tool.
 *
 * The paper is ultimately advice to architects: which features help
 * applications but hurt the OS, and what it would cost to fix them.
 * This example designs a hypothetical "OS-friendly RISC" — 25 MHz,
 * flat registers, precise interrupts, tagged TLB and physical cache,
 * deep same-page write buffer, atomic test&set, dedicated trap
 * vectors — and evaluates it with the same machinery as the paper's
 * machines: primitive costs, LRPC, thread operations, and the Mach
 * decomposition study.
 *
 * Run: ./build/examples/example_arch_designer
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

/** Start from the RS6000 (closest in spirit) and push every knob the
 *  paper identifies in the OS-friendly direction. */
MachineDesc
designOsFriendlyRisc()
{
    MachineDesc m = makeMachine(MachineId::RS6000);
    m.name = "OSRISC";
    m.system = "hypothetical OS-friendly RISC";
    m.clock = Clock::fromMHz(25.0);

    m.vectoring = TrapVectoring::DirectVectored; // s2.3
    m.hasAtomicOp = true;                        // s4.1
    m.providesFaultAddress = true;               // s3.1
    m.pipeline.preciseInterrupts = true;         // s3.1
    m.pipeline.exposed = false;

    m.cache.indexing = CacheIndexing::Physical;  // s3.2
    m.writeBuffer = {8, 3, true, 1, false};      // s2.3

    m.tlb.processIdTags = true;                  // s3.2
    m.tlb.pidCount = 256;
    m.tlb.entries = 128;
    m.tlb.lockableEntries = 16;

    m.timing.trapEnterCycles = 3;
    m.timing.trapReturnCycles = 3;
    return m;
}

} // namespace

int
main()
{
    MachineDesc osrisc = designOsFriendlyRisc();
    const MachineDesc &sparc = sharedCostDb().machine(MachineId::SPARC);
    const MachineDesc &r3000 = sharedCostDb().machine(MachineId::R3000);

    std::printf("Designing an OS-friendly RISC (25 MHz, like the "
                "SPARC/R3000)\n\n");

    // Primitive costs: evaluate the custom machine with the same
    // execution model (RS6000 handler programs fit its feature set).
    ExecModel exec(osrisc);
    std::printf("Primitive costs at the same 25 MHz clock:\n");
    TextTable t;
    t.header({"Operation", "OSRISC us", "R3000 us", "SPARC us"});
    for (Primitive p : allPrimitives) {
        ExecResult r = exec.run(buildHandler(osrisc, p));
        exec.reset();
        t.row({primitiveName(p),
               TextTable::num(osrisc.clock.cyclesToMicros(r.cycles), 1),
               TextTable::num(sharedCostDb().micros(MachineId::R3000, p),
                              1),
               TextTable::num(sharedCostDb().micros(MachineId::SPARC, p),
                              1)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Communication and threads:\n");
    LrpcBreakdown lrpc = LrpcModel(osrisc).nullCall();
    std::printf("  null LRPC:            %6.1f us (R3000 %.1f, SPARC "
                "%.1f)\n",
                lrpc.totalUs(),
                LrpcModel(r3000).nullCall().totalUs(),
                LrpcModel(sparc).nullCall().totalUs());
    ThreadCosts tc = computeThreadCosts(osrisc);
    std::printf("  user thread switch:   %6llu cycles (SPARC %llu)\n",
                static_cast<unsigned long long>(tc.userThreadSwitch),
                static_cast<unsigned long long>(
                    computeThreadCosts(sparc).userThreadSwitch));
    std::printf("  lock pair:            %6llu cycles via %s\n\n",
                static_cast<unsigned long long>(
                    lockPairCycles(osrisc, naturalLockImpl(osrisc))),
                lockImplName(naturalLockImpl(osrisc)));

    std::printf("Decomposed-OS workload (andrew-local on Mach 3.0 "
                "structure):\n");
    for (const MachineDesc *m :
         {static_cast<const MachineDesc *>(&osrisc), &r3000}) {
        MachSystem sys(*m, OsStructure::SmallKernel);
        Table7Row row = sys.run(workloadByName("andrew-local"));
        std::printf("  %-8s elapsed %.1f s, kernel TLB misses %s, "
                    "%%prims %.0f%%\n",
                    m->name.c_str(), row.elapsedSeconds,
                    TextTable::grouped(row.kernelTlbMisses).c_str(),
                    row.percentTimeInPrimitives);
    }
    std::printf("\n(the paper's conclusion, inverted: an architecture "
                "that takes the OS\nseriously keeps a decomposed "
                "system's primitive overhead in the noise)\n");
    return 0;
}
