/**
 * @file
 * Example: choosing a communication primitive.
 *
 * A downstream user deciding how to structure a decomposed OS can use
 * the library to compare local LRPC against network RPC on their
 * target machine, and see where the time goes — demonstrating the
 * public IPC API (SrcRpcModel, LrpcModel) end to end.
 *
 * Run: ./build/examples/example_lrpc_vs_rpc [machine]
 *   machine in {CVAX, 88000, R2000, R3000, SPARC, i860, RS6000}
 */

#include <cstdio>
#include <cstring>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

MachineId
parseMachine(const char *name)
{
    for (const MachineDesc &m : allMachines())
        if (m.name == name)
            return m.id;
    fatal("unknown machine '%s'", name);
}

} // namespace

int
main(int argc, char **argv)
{
    MachineId id = argc > 1 ? parseMachine(argv[1]) : MachineId::R3000;
    const MachineDesc &m = sharedCostDb().machine(id);

    std::printf("Communication on the %s (%s, %.1f MHz)\n\n",
                m.name.c_str(), m.system.c_str(), m.clock.mhz());

    LrpcModel lrpc(m);
    LrpcBreakdown lb = lrpc.nullCall();
    std::printf("Local cross-address-space call (LRPC): %.1f us\n",
                lb.totalUs());
    std::printf("  kernel entries %.1f, switches %.1f, TLB %.1f, "
                "stubs %.1f, copy %.1f us\n",
                lb.kernelEntryUs, lb.contextSwitchUs, lb.tlbMissUs,
                lb.stubUs + lb.validationUs, lb.argCopyUs);
    std::printf("  hardware-imposed floor: %.1f us (%.0f%% of the "
                "call)\n\n",
                lb.hardwareMinimumUs(),
                100.0 - lb.overheadPercent());

    SrcRpcModel rpc(m);
    for (std::uint32_t result : {74u, 1500u}) {
        RpcBreakdown rb = rpc.roundTrip(74, result);
        std::printf("Network RPC, %u-byte result: %.0f us "
                    "(wire %.0f%%, kernel+interrupts %.0f%%, "
                    "copies+checksums %.0f%%)\n",
                    result, rb.totalUs(), rb.percent(rb.wireUs),
                    rb.percent(rb.kernelTransferUs + rb.interruptUs +
                               rb.dispatchUs),
                    rb.percent(rb.checksumUs + rb.copyUs));
    }

    RpcBreakdown rb = rpc.nullRpc();
    std::printf("\nLRPC is %.0fx cheaper than a null network RPC on "
                "this machine.\n",
                rb.totalUs() / lb.totalUs());
    std::printf("Decomposition verdict: a service split into its own "
                "address space costs\n%.1f us per call here; the same "
                "machine runs a null system call in %.1f us.\n",
                lb.totalUs(),
                sharedCostDb().micros(id, Primitive::NullSyscall));
    return 0;
}
