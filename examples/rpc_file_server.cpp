/**
 * @file
 * Example: an event-driven network file server (§2.1).
 *
 * Three client workstations issue read RPCs against one file server
 * over a shared 10 Mbit Ethernet, all simulated event-by-event: the
 * request packet rides the Network, the server's interrupt handler
 * wakes a server thread through the Scheduler, the reply carries the
 * data back. Demonstrates EventQueue + Network + Scheduler + the
 * per-packet primitive costs working together, and reports the
 * end-to-end latency decomposition the paper's Table 3 discusses.
 *
 * Run: ./build/examples/example_rpc_file_server
 */

#include <cstdio>
#include <deque>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

struct Server
{
    SimKernel kernel;
    Scheduler sched;
    AddressSpace &space;
    std::deque<Packet> requestQueue;
    Scheduler::ThreadId worker = 0;
    Network *net = nullptr;
    std::uint64_t served = 0;

    explicit Server(const MachineDesc &m)
        : kernel(m), sched(kernel),
          space(kernel.createSpace("file-server"))
    {
        space.setWorkingSet(0x5000, 24);
        space.mapRange(0x5000, 24, 0x30000, {});
        worker = sched.spawn("worker", space, [this] {
            if (requestQueue.empty())
                return ThreadRunState::Blocked;
            Packet req = requestQueue.front();
            requestQueue.pop_front();
            // Service: syscall to receive, file cache lookup, reply.
            kernel.syscall();
            kernel.runUserCode(3000);
            kernel.syscall();
            net->send(req.dstNode, req.srcNode, 1024); // data block
            ++served;
            return ThreadRunState::Ready;
        });
        sched.run(); // worker blocks awaiting requests
    }

    void
    onPacket(const Packet &pkt)
    {
        kernel.trap(); // receive interrupt
        requestQueue.push_back(pkt);
        sched.wake(worker);
        sched.run();
    }
};

} // namespace

int
main()
{
    const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
    EventQueue events;
    Network net(events, EthernetDesc{});

    Server server(m);
    server.net = &net;

    std::uint32_t replies[3] = {0, 0, 0};
    Tick first_sent = 0;

    // Clients are nodes 0-2; the server is node 3.
    std::uint32_t client_ids[3];
    for (std::uint32_t c = 0; c < 3; ++c) {
        client_ids[c] = net.addNode([&replies, c](const Packet &) {
            ++replies[c];
        });
    }
    std::uint32_t server_id =
        net.addNode([&server](const Packet &p) { server.onPacket(p); });

    // Each client fires 20 read requests, staggered.
    for (std::uint32_t c = 0; c < 3; ++c) {
        for (int i = 0; i < 20; ++i) {
            Tick when = (c * 37 + static_cast<Tick>(i) * 150) *
                        ticksPerMicrosecond;
            events.schedule(when, [&net, &client_ids, &server_id, c] {
                net.send(client_ids[c], server_id, 96);
            });
        }
    }
    first_sent = 0;
    events.run();

    double elapsed_ms = static_cast<double>(events.now() - first_sent) /
                        ticksPerMillisecond;
    std::printf("file server: %llu requests served in %.2f ms of "
                "simulated time\n",
                static_cast<unsigned long long>(server.served),
                elapsed_ms);
    std::printf("replies per client: %u %u %u\n", replies[0],
                replies[1], replies[2]);
    std::printf("server kernel: %llu syscalls, %llu interrupts, "
                "%llu dispatches\n",
                static_cast<unsigned long long>(
                    server.kernel.stats().get(kstat::syscalls)),
                static_cast<unsigned long long>(
                    server.kernel.stats().get(kstat::traps)),
                static_cast<unsigned long long>(
                    server.sched.stats().get("dispatches")));
    std::printf("network: %llu packets, %llu payload bytes\n",
                static_cast<unsigned long long>(
                    net.stats().get("packets")),
                static_cast<unsigned long long>(
                    net.stats().get("payload_bytes")));

    double server_cpu_us = server.kernel.elapsedMicros();
    std::printf("\nserver CPU time: %.0f us — %.0f%% of it in OS "
                "primitives\n",
                server_cpu_us,
                100.0 *
                    static_cast<double>(
                        server.kernel.primitiveCycles()) /
                    static_cast<double>(server.kernel.elapsedCycles()));
    std::printf("(s2.1: per-request OS overhead — interrupts, "
                "syscalls, dispatch — bounds RPC\nservice rates well "
                "before the wire does)\n");
    return 0;
}
