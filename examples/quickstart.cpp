/**
 * @file
 * Quickstart: simulate the four primitive OS operations on every
 * machine model and compare against the paper's Table 1 / Table 2.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "arch/machines.hh"
#include "cpu/primitive_costs.hh"
#include "sim/table.hh"

using namespace aosd;

int
main()
{
    PrimitiveCostDb db;

    std::printf("Primitive OS operations: simulated vs. paper\n");
    std::printf("(times in microseconds; instr counts are dynamic)\n\n");

    for (const MachineDesc &m : allMachines()) {
        std::printf("%s (%s, %.1f MHz)\n", m.name.c_str(),
                    m.system.c_str(), m.clock.mhz());
        TextTable t;
        t.header({"Operation", "sim us", "paper us", "sim cycles",
                  "sim instr", "paper instr"});
        for (Primitive p : allPrimitives) {
            double paper_us = PaperPrimitiveData::microseconds(m.id, p);
            std::uint64_t paper_n =
                PaperPrimitiveData::instructionCount(m.id, p);
            t.row({primitiveName(p),
                   TextTable::num(db.micros(m.id, p), 1),
                   paper_us < 0 ? "-" : TextTable::num(paper_us, 1),
                   std::to_string(db.cycles(m.id, p)),
                   std::to_string(db.instructions(m.id, p)),
                   paper_n == 0 ? "-" : std::to_string(paper_n)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
