/**
 * @file
 * Example: Ivy-style distributed shared virtual memory (§3).
 *
 * Four workstations share a 64-page region over a 10 Mbit Ethernet.
 * A producer writes pages, consumers read them (replication), then a
 * different node takes over writing (invalidation). The run prints
 * protocol traffic and per-operation costs, and verifies coherence.
 *
 * Run: ./build/examples/example_dsm_sharing
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
    IvyDsm dsm(m, /*nodes=*/4, /*pages=*/64);

    std::printf("Ivy DSM: 4 x %s over 10 Mbit Ethernet, 64 shared "
                "pages\n\n",
                m.name.c_str());

    // Phase 1: node 0 produces into the first 16 pages (it already
    // owns everything, so writes are local).
    double t = 0;
    for (std::uint64_t p = 0; p < 16; ++p)
        t += dsm.write(0, p);
    std::printf("producer (node 0) writes 16 pages:     %8.1f us\n", t);

    // Phase 2: nodes 1-3 read them: read faults, page transfers,
    // owner downgraded to read-only.
    t = 0;
    for (std::uint32_t n = 1; n < 4; ++n)
        for (std::uint64_t p = 0; p < 16; ++p)
            t += dsm.read(n, p);
    std::printf("3 consumers read all 16 pages:         %8.1f us "
                "(%llu page transfers)\n",
                t,
                static_cast<unsigned long long>(
                    dsm.stats().get("page_transfers")));

    // Phase 3: node 2 becomes the writer: every write invalidates the
    // other replicas.
    t = 0;
    for (std::uint64_t p = 0; p < 16; ++p)
        t += dsm.write(2, p);
    std::printf("node 2 takes write ownership:          %8.1f us "
                "(%llu invalidations)\n",
                t,
                static_cast<unsigned long long>(
                    dsm.stats().get("invalidations")));

    // Phase 4: re-read from node 0: faults again, re-replicates.
    t = 0;
    for (std::uint64_t p = 0; p < 16; ++p)
        t += dsm.read(0, p);
    std::printf("node 0 re-reads (re-replication):      %8.1f us\n\n",
                t);

    std::printf("coherence invariant (single writer): %s\n",
                dsm.coherent() ? "holds" : "VIOLATED");
    std::printf("protocol totals: %llu read faults, %llu write "
                "faults, %llu transfers, %llu invalidations\n",
                static_cast<unsigned long long>(
                    dsm.stats().get("read_faults")),
                static_cast<unsigned long long>(
                    dsm.stats().get("write_faults")),
                static_cast<unsigned long long>(
                    dsm.stats().get("page_transfers")),
                static_cast<unsigned long long>(
                    dsm.stats().get("invalidations")));

    std::printf("\n(s3: DSM hinges on fast traps and PTE changes - "
                "on this machine a trap is\n%.1f us and a PTE change "
                "%.1f us, before any network time)\n",
                sharedCostDb().micros(m.id, Primitive::Trap),
                sharedCostDb().micros(m.id, Primitive::PteChange));
    return 0;
}
