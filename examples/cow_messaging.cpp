/**
 * @file
 * Example: copy-on-write message passing (§3, Accent/Mach style).
 *
 * A client "sends" a 64-page message to a server by COW-mapping the
 * buffer into the server's space. If neither side writes, no bytes
 * ever move; writes fault and copy just the touched pages. The run
 * compares against an eager byte copy and shows the crossover that
 * motivated overloading VM protection — plus what it costs on a
 * machine where traps and PTE changes are slow.
 *
 * Run: ./build/examples/example_cow_messaging
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

namespace
{

double
sendCow(const MachineDesc &m, std::uint64_t pages,
        std::uint64_t pages_written)
{
    SimKernel kernel(m);
    VmManager vm(kernel);
    AddressSpace &client = kernel.createSpace("client");
    AddressSpace &server = kernel.createSpace("server");
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, pages, rw);

    kernel.resetAccounting();
    // Send: map COW into the server (one PTE change per page).
    vm.shareCopyOnWrite(client, 0x100, server, 0x500, pages);
    // Receiver modifies a prefix of the message.
    for (std::uint64_t p = 0; p < pages_written; ++p) {
        FaultResult r = vm.access(server, 0x500 + p, true);
        if (r != FaultResult::CopiedOnWrite)
            fatal("expected a COW break");
    }
    return kernel.elapsedMicros();
}

double
sendEager(const MachineDesc &m, std::uint64_t pages)
{
    SimKernel kernel(m);
    kernel.resetAccounting();
    kernel.syscall();
    kernel.chargeCycles(copyCycles(m, pages * pageBytes));
    return kernel.elapsedMicros();
}

} // namespace

int
main()
{
    const std::uint64_t pages = 64; // 256KB message

    std::printf("Sending a 256KB message: copy-on-write vs eager "
                "copy\n\n");
    for (MachineId id :
         {MachineId::R3000, MachineId::I860, MachineId::CVAX}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        std::printf("%s (trap %.1f us, PTE change %.1f us):\n",
                    m.name.c_str(),
                    sharedCostDb().micros(id, Primitive::Trap),
                    sharedCostDb().micros(id, Primitive::PteChange));
        double eager = sendEager(m, pages);
        std::printf("    eager copy:                 %8.0f us\n",
                    eager);
        for (std::uint64_t written : {0ull, 8ull, 32ull, 64ull}) {
            double cow = sendCow(m, pages, written);
            std::printf("    COW, receiver writes %2llu/64: %8.0f us "
                        "(%s)\n",
                        static_cast<unsigned long long>(written), cow,
                        cow < eager ? "COW wins" : "copy wins");
        }
        std::printf("\n");
    }
    std::printf("(s3.3: with expensive faults and virtually-addressed "
                "caches, operating\nsystems may need to be *less* "
                "aggressive with copy-on-write tricks - see the\ni860 "
                "numbers above)\n");
    return 0;
}
