/**
 * @file
 * Example: what does decomposing the OS cost *my* workload on *my*
 * machine? (§5)
 *
 * Demonstrates the workload API: build a custom AppProfile, run it on
 * both OS structures across several machines, and read the verdict.
 *
 * Run: ./build/examples/example_mach_decomposition
 */

#include <cstdio>

#include "core/aosd.hh"

using namespace aosd;

int
main()
{
    // A syscall-heavy developer workload: compile-edit-test loop.
    AppProfile app;
    app.name = "edit-compile-test";
    app.unixServiceCalls = 20000;
    app.blockFraction = 0.05;
    app.pageFaults = 8000;
    app.deviceInterrupts = 12000;
    app.userInstructionsK = 1500000;
    app.ioWaitSeconds = 2.0;
    app.intraSpaceSwitches = 800;
    app.workingSetPages = 30;
    app.kernelTouchesPerCall = 5;
    app.rpcFraction = 0.9;
    app.serversPerRpc = 1.3;
    app.switchesPerRpc = 1.8;
    app.emulInstrsPerCall = 20;
    app.serverInstrsPerRpc = 2000;

    std::printf("Workload: %s (%llu Unix calls)\n\n", app.name.c_str(),
                static_cast<unsigned long long>(app.unixServiceCalls));

    TextTable t;
    t.header({"machine", "OS structure", "time s", "syscalls",
              "AS switches", "K-TLB misses", "%time in prims"});
    for (MachineId id :
         {MachineId::R3000, MachineId::SPARC, MachineId::CVAX}) {
        const MachineDesc &m = sharedCostDb().machine(id);
        for (OsStructure s :
             {OsStructure::Monolithic, OsStructure::SmallKernel}) {
            MachSystem sys(m, s);
            Table7Row r = sys.run(app);
            t.row({m.name,
                   s == OsStructure::Monolithic ? "monolithic"
                                                : "small-kernel",
                   TextTable::num(r.elapsedSeconds, 1),
                   TextTable::grouped(r.systemCalls),
                   TextTable::grouped(r.addressSpaceSwitches),
                   TextTable::grouped(r.kernelTlbMisses),
                   TextTable::num(r.percentTimeInPrimitives, 1)});
        }
        t.separator();
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("(s5: the performance of OS primitives on current "
                "architectures may limit how\nfar systems like Mach "
                "can be decomposed without compromising application\n"
                "performance)\n");
    return 0;
}
