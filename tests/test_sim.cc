/**
 * @file
 * Unit tests for the simulation substrate: ticks, RNG, event queue,
 * stats and the table formatter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "sim/ticks.hh"

namespace aosd
{
namespace
{

TEST(Clock, RoundTripCycles)
{
    Clock c = Clock::fromMHz(25.0);
    EXPECT_EQ(c.period(), 40000u); // 40 ns in picosecond ticks
    EXPECT_EQ(c.cyclesToTicks(10), 400000u);
    EXPECT_DOUBLE_EQ(c.cyclesToMicros(25), 1.0);
    EXPECT_EQ(c.microsToCycles(1.0), 25u);
}

TEST(Clock, FractionalMegahertz)
{
    Clock c = Clock::fromMHz(16.67);
    // ~60 ns period.
    EXPECT_NEAR(static_cast<double>(c.period()), 60000.0, 50.0);
    EXPECT_NEAR(c.mhz(), 16.67, 0.05);
}

TEST(Clock, CvaxRate)
{
    Clock c = Clock::fromMHz(11.1);
    EXPECT_NEAR(c.cyclesToMicros(175), 15.8, 0.1);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.between(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TieBreakIsSchedulingOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(4, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ResetDropsEverything)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.reset();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

TEST(Stats, CounterAccumulates)
{
    Counter c;
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_NEAR(d.variance(), 5.0 / 3.0, 1e-9);
    EXPECT_NEAR(d.stddev(), std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(Stats, DistributionEmptyAndSingleSampleNeverNaN)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);

    d.sample(7.5); // one sample: moments defined, spread zero
    EXPECT_DOUBLE_EQ(d.mean(), 7.5);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);

    d.reset(); // reset returns to the guarded empty state
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, RegistryResetAllDropsRetiredAggregates)
{
    StatRegistry &reg = StatRegistry::instance();
    reg.setRetainRetired(true);
    {
        StatGroup g("transient");
        g.inc("events", 3);
    } // destruction folds the counters into "transient.retired"

    auto snapshotHas = [&](const std::string &name) {
        Json snap = reg.toJson();
        const Json &groups = snap.at("stat_groups");
        for (std::size_t i = 0; i < groups.size(); ++i)
            if (groups.at(i).at("name").asString() == name)
                return true;
        return false;
    };
    EXPECT_TRUE(snapshotHas("transient.retired"));

    reg.resetAll(); // a reset registry reads as a fresh run
    EXPECT_FALSE(snapshotHas("transient.retired"));
    EXPECT_TRUE(reg.retainsRetired()); // retention itself persists

    reg.setRetainRetired(false);
}

TEST(Stats, GroupCountersIndependent)
{
    StatGroup g("kernel");
    g.inc("syscalls");
    g.inc("traps", 5);
    EXPECT_EQ(g.get("syscalls"), 1u);
    EXPECT_EQ(g.get("traps"), 5u);
    EXPECT_EQ(g.get("absent"), 0u);
    g.reset();
    EXPECT_EQ(g.get("traps"), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t;
    t.header({"Op", "us"});
    t.row({"syscall", "15.8"});
    t.separator();
    t.row({"trap", "23.1"});
    std::string out = t.render();
    EXPECT_NE(out.find("syscall"), std::string::npos);
    EXPECT_NE(out.find("23.1"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::grouped(1234567), "1,234,567");
    EXPECT_EQ(TextTable::grouped(12), "12");
}

} // namespace
} // namespace aosd
