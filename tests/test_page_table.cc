/**
 * @file
 * Parameterized tests over the three page-table structures (§3.2):
 * VAX linear, SPARC/Cypress 3-level, and MIPS-style hashed. One suite
 * asserts the common contract; structure-specific suites check the
 * properties the paper contrasts (sparse-space overhead, superpages,
 * walk depth).
 */

#include <functional>
#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "mem/page_table.hh"

namespace aosd
{
namespace
{

using Factory = std::function<std::unique_ptr<PageTable>()>;

struct NamedFactory
{
    const char *name;
    Factory make;
};

const NamedFactory factories[] = {
    {"linear", [] { return makeLinearPageTable((1ULL << 20) - 1); }},
    {"multilevel", [] { return makeMultiLevelPageTable(); }},
    {"hashed", [] { return makeHashedPageTable(256); }},
};

class PageTableContract
    : public ::testing::TestWithParam<NamedFactory>
{
  protected:
    std::unique_ptr<PageTable> table = GetParam().make();
};

TEST_P(PageTableContract, UnmappedWalkFails)
{
    WalkResult r = table->walk(0x123);
    EXPECT_FALSE(r.pte.has_value());
    EXPECT_GE(r.memoryRefs, 1u);
}

TEST_P(PageTableContract, MapThenWalk)
{
    Pte pte;
    pte.pfn = 0x77;
    pte.prot.writable = true;
    table->map(0x123, pte);
    WalkResult r = table->walk(0x123);
    ASSERT_TRUE(r.pte.has_value());
    EXPECT_EQ(r.pte->pfn, 0x77u);
    EXPECT_TRUE(r.pte->prot.writable);
    EXPECT_EQ(table->mappedPages(), 1u);
}

TEST_P(PageTableContract, RemapOverwrites)
{
    table->map(5, Pte{1, {}, false, false, false});
    table->map(5, Pte{2, {}, false, false, false});
    EXPECT_EQ(table->mappedPages(), 1u);
    EXPECT_EQ(table->walk(5).pte->pfn, 2u);
}

TEST_P(PageTableContract, UnmapRemoves)
{
    table->map(9, Pte{1, {}, false, false, false});
    table->unmap(9);
    EXPECT_FALSE(table->walk(9).pte.has_value());
    EXPECT_EQ(table->mappedPages(), 0u);
    table->unmap(9); // double unmap is a no-op
    EXPECT_EQ(table->mappedPages(), 0u);
}

TEST_P(PageTableContract, ProtectChangesBits)
{
    Pte pte;
    pte.pfn = 3;
    pte.prot.writable = true;
    table->map(7, pte);
    PageProt ro;
    ro.writable = false;
    EXPECT_TRUE(table->protect(7, ro));
    EXPECT_FALSE(table->walk(7).pte->prot.writable);
    EXPECT_FALSE(table->protect(0x999, ro)); // unmapped
}

TEST_P(PageTableContract, ManyMappingsAllRetrievable)
{
    for (Vpn v = 0; v < 500; ++v)
        table->map(v * 7, Pte{v, {}, false, false, false});
    EXPECT_EQ(table->mappedPages(), 500u);
    for (Vpn v = 0; v < 500; ++v) {
        WalkResult r = table->walk(v * 7);
        ASSERT_TRUE(r.pte.has_value()) << v;
        EXPECT_EQ(r.pte->pfn, v);
    }
}

TEST_P(PageTableContract, OverheadGrowsWithMappings)
{
    std::uint64_t before = table->tableOverheadBytes();
    for (Vpn v = 0; v < 1000; ++v)
        table->map(v, Pte{v, {}, false, false, false});
    EXPECT_GE(table->tableOverheadBytes(), before);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, PageTableContract, ::testing::ValuesIn(factories),
    [](const ::testing::TestParamInfo<NamedFactory> &info) {
        return std::string(info.param.name);
    });

// ---- structure-specific behaviour -----------------------------------

TEST(LinearPageTable, SparseSpacesAreExpensive)
{
    // s3.2: "handling of sparse address spaces ... is problematic on
    // a linear page table system like the VAX".
    auto linear = makeLinearPageTable((1ULL << 20) - 1);
    auto hashed = makeHashedPageTable(256);
    Vpn sparse = (1ULL << 20) - 2; // one page near the top
    linear->map(sparse, Pte{1, {}, false, false, false});
    hashed->map(sparse, Pte{1, {}, false, false, false});
    EXPECT_GT(linear->tableOverheadBytes(),
              1000 * hashed->tableOverheadBytes());
}

TEST(LinearPageTable, RejectsVpnBeyondLimit)
{
    auto linear = makeLinearPageTable(100);
    EXPECT_DEATH(linear->map(101, Pte{}), "beyond");
}

TEST(MultiLevelPageTable, WalkDepthIsThreeForBasePages)
{
    auto t = makeMultiLevelPageTable();
    t->map(0x12345, Pte{9, {}, false, false, false});
    WalkResult r = t->walk(0x12345);
    ASSERT_TRUE(r.pte.has_value());
    EXPECT_EQ(r.levels, 3u);
    EXPECT_EQ(r.memoryRefs, 3u);
}

TEST(MultiLevelPageTable, SuperpageTerminatesAtLevelTwo)
{
    auto t = makeMultiLevelPageTable();
    Pte pte;
    pte.pfn = 0x1000;
    ASSERT_TRUE(t->mapSuperpage(64, pte)); // 256KB-aligned base
    WalkResult r = t->walk(64 + 17);
    ASSERT_TRUE(r.pte.has_value());
    EXPECT_EQ(r.levels, 2u);
    EXPECT_EQ(r.pte->pfn, 0x1000u + 17u); // contiguous region
}

TEST(MultiLevelPageTable, SuperpageCoversWholeRegion)
{
    auto t = makeMultiLevelPageTable();
    ASSERT_TRUE(t->mapSuperpage(0, Pte{0x500, {}, false, false,
                                       false}));
    for (Vpn v = 0; v < PageTable::superpagePages; ++v)
        EXPECT_TRUE(t->walk(v).pte.has_value()) << v;
    EXPECT_FALSE(t->walk(PageTable::superpagePages).pte.has_value());
}

TEST(MultiLevelPageTable, UnalignedSuperpageIsFatal)
{
    auto t = makeMultiLevelPageTable();
    EXPECT_DEATH(t->mapSuperpage(3, Pte{}), "aligned");
}

TEST(MultiLevelPageTable, UnmapDropsSuperpage)
{
    auto t = makeMultiLevelPageTable();
    t->mapSuperpage(64, Pte{1, {}, false, false, false});
    t->unmap(64); // unmapping the base drops the terminal PTE
    EXPECT_FALSE(t->walk(70).pte.has_value());
}

TEST(HashedPageTable, SuperpagesNotSupported)
{
    auto t = makeHashedPageTable(64);
    EXPECT_FALSE(t->mapSuperpage(0, Pte{}));
}

TEST(HashedPageTable, CollisionChainsStillResolve)
{
    auto t = makeHashedPageTable(1); // everything collides
    for (Vpn v = 0; v < 50; ++v)
        t->map(v, Pte{v + 1, {}, false, false, false});
    for (Vpn v = 0; v < 50; ++v) {
        WalkResult r = t->walk(v);
        ASSERT_TRUE(r.pte.has_value());
        EXPECT_EQ(r.pte->pfn, v + 1);
    }
    // Probes counted: worst-case chain walk touches many entries.
    EXPECT_GT(t->walk(49).memoryRefs, 1u);
}

TEST(PageTableFactory, NaturalStructures)
{
    EXPECT_EQ(makePageTableFor(makeMachine(MachineId::CVAX))
                  ->structureName(),
              "linear");
    EXPECT_EQ(makePageTableFor(makeMachine(MachineId::SPARC))
                  ->structureName(),
              "3-level");
    EXPECT_EQ(makePageTableFor(makeMachine(MachineId::R3000))
                  ->structureName(),
              "hashed");
    EXPECT_EQ(makePageTableFor(makeMachine(MachineId::RS6000))
                  ->structureName(),
              "hashed");
}

} // namespace
} // namespace aosd
