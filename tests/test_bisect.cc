/**
 * @file
 * Tests for counter-driven regression bisection: a synthetic
 * single-constant perturbation of a machine must come back named as
 * the top-ranked event class covering the bulk of the cycle delta, in
 * both counters.json and kernel-windows mode; report.json pairs fall
 * back to figure-level ranking.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/machines.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "study/bisect.hh"
#include "study/counters_report.hh"

using namespace aosd;

namespace
{

class BisectTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }

    Json
    countersDocFor(const MachineDesc &machine)
    {
        std::vector<CountedPrimitiveRun> runs =
            countAllPrimitives({machine}, 4);
        return buildCountersDoc(runs, 4);
    }
};

TEST_F(BisectTest, AblatedTrapCostIsTopRankedAndCoversTheDelta)
{
    MachineDesc base = makeMachine(MachineId::R3000);
    MachineDesc ablated = base;
    // The synthetic regression: every trap entry costs one more cycle.
    ablated.timing.trapEnterCycles += 1;

    Json old_doc = countersDocFor(base);
    Json new_doc = countersDocFor(ablated);
    BisectResult r = bisectCountersDocs(old_doc, new_doc);

    ASSERT_FALSE(r.findings.empty());
    EXPECT_GT(r.totalDelta, 0.0);
    // The perturbed event class is the #1 explanation...
    EXPECT_EQ(r.findings.front().eventClass, "trap_enters");
    // ... and dominant: summed over its cells it covers >= 80% of the
    // whole cycle delta (acceptance floor; here it is the only cause).
    double trap_share = 0;
    for (const BisectFinding &f : r.findings)
        if (f.eventClass == "trap_enters")
            trap_share += f.share;
    EXPECT_GE(trap_share, 0.8);
}

TEST_F(BisectTest, KernelWindowTlbRefillAblation)
{
    MachineDesc base = makeMachine(MachineId::R3000);
    MachineDesc ablated = base;
    // +1 cycle on the kernel-space TLB refill path (the ISSUE's
    // running example).
    ablated.tlb.swKernelMissCycles += 1;

    ParallelRunner runner(1);
    Json old_doc = buildKernelWindowsDoc(base, runner);
    Json new_doc = buildKernelWindowsDoc(ablated, runner);
    BisectResult r = bisectKernelWindowDocs(old_doc, new_doc);

    ASSERT_FALSE(r.findings.empty());
    EXPECT_GT(r.totalDelta, 0.0);
    EXPECT_EQ(r.findings.front().eventClass, "tlb_refill_cycles");
    double refill_share = 0;
    for (const BisectFinding &f : r.findings)
        if (f.eventClass == "tlb_refill_cycles")
            refill_share += f.share;
    EXPECT_GE(refill_share, 0.8);
}

TEST_F(BisectTest, ReportModeRanksFigureMoves)
{
    auto doc = [](double null_us, double ctx_us) {
        auto figure = [](const char *id, double sim) {
            Json f = Json::object();
            f.set("id", Json(id));
            f.set("unit", Json("us"));
            f.set("sim", Json(sim));
            return f;
        };
        Json figs = Json::array();
        figs.push(figure("null_syscall_us.R3000", null_us));
        figs.push(figure("context_switch_us.R3000", ctx_us));
        Json table = Json::object();
        table.set("figures", std::move(figs));
        Json tables = Json::object();
        tables.set("table1", std::move(table));
        Json d = Json::object();
        d.set("tables", std::move(tables));
        return d;
    };

    Json old_doc = doc(10.0, 100.0);
    Json new_doc = doc(10.5, 108.0);
    BisectResult r = bisectDocs(old_doc, new_doc);

    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_EQ(r.findings[0].unit, "table1.context_switch_us.R3000");
    EXPECT_EQ(r.findings[0].eventClass, "figure");
    EXPECT_DOUBLE_EQ(r.findings[0].delta, 8.0);
    EXPECT_NEAR(r.findings[0].share, 8.0 / 8.5, 1e-12);
    EXPECT_EQ(r.findings[1].unit, "table1.null_syscall_us.R3000");
}

TEST_F(BisectTest, IdenticalDocsProduceNoFindings)
{
    Json doc = countersDocFor(makeMachine(MachineId::CVAX));
    BisectResult r = bisectCountersDocs(doc, doc);
    EXPECT_TRUE(r.findings.empty());
    EXPECT_DOUBLE_EQ(r.totalDelta, 0.0);
    EXPECT_TRUE(r.notes.empty());
}

TEST_F(BisectTest, UnrecognizedDocumentsNoteAndReturnEmpty)
{
    Json empty = Json::object();
    BisectResult r = bisectDocs(empty, empty);
    EXPECT_TRUE(r.findings.empty());
    ASSERT_EQ(r.notes.size(), 1u);
}

TEST_F(BisectTest, ResultSerializes)
{
    MachineDesc base = makeMachine(MachineId::R2000);
    MachineDesc ablated = base;
    ablated.timing.trapEnterCycles += 2;
    BisectResult r = bisectCountersDocs(countersDocFor(base),
                                        countersDocFor(ablated));
    ASSERT_FALSE(r.findings.empty());

    Json j = r.toJson();
    EXPECT_EQ(j.at("generator").asString(), "aosd_bisect");
    EXPECT_DOUBLE_EQ(j.at("total_delta").asNumber(), r.totalDelta);
    ASSERT_EQ(j.at("findings").size(), r.findings.size());
    const Json &top = j.at("findings").at(0);
    EXPECT_EQ(top.at("event_class").asString(),
              r.findings.front().eventClass);
    EXPECT_DOUBLE_EQ(top.at("share").asNumber(),
                     r.findings.front().share);
}

} // namespace
