/**
 * @file
 * Tests for address spaces and the message/marshal helpers.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/ipc/message.hh"
#include "os/kernel/address_space.hh"

namespace aosd
{
namespace
{

TEST(AddressSpace, UsesMachineNaturalPageTable)
{
    AddressSpace vax("p", 1, makeMachine(MachineId::CVAX));
    EXPECT_EQ(vax.pageTable().structureName(), "linear");
    AddressSpace sparc("p", 1, makeMachine(MachineId::SPARC));
    EXPECT_EQ(sparc.pageTable().structureName(), "3-level");
}

TEST(AddressSpace, MapRangeMapsContiguously)
{
    AddressSpace s("p", 1, makeMachine(MachineId::R3000));
    PageProt rw;
    rw.writable = true;
    s.mapRange(0x100, 8, 0x900, rw);
    EXPECT_EQ(s.pageTable().mappedPages(), 8u);
    for (Vpn v = 0; v < 8; ++v) {
        auto pte = s.pageTable().walk(0x100 + v).pte;
        ASSERT_TRUE(pte.has_value());
        EXPECT_EQ(pte->pfn, 0x900 + v);
        EXPECT_TRUE(pte->prot.writable);
    }
}

TEST(AddressSpace, UnmapRangeRemoves)
{
    AddressSpace s("p", 1, makeMachine(MachineId::R3000));
    s.mapRange(0x100, 8, 0x900, {});
    s.unmapRange(0x102, 4);
    EXPECT_EQ(s.pageTable().mappedPages(), 4u);
    EXPECT_TRUE(s.pageTable().walk(0x100).pte.has_value());
    EXPECT_FALSE(s.pageTable().walk(0x103).pte.has_value());
}

TEST(AddressSpace, WorkingSetConvenience)
{
    AddressSpace s("p", 1, makeMachine(MachineId::R3000));
    s.setWorkingSet(0x200, 5);
    ASSERT_EQ(s.workingSet().size(), 5u);
    EXPECT_EQ(s.workingSet().front(), 0x200u);
    EXPECT_EQ(s.workingSet().back(), 0x204u);
    s.setWorkingSet({1, 5, 9});
    EXPECT_EQ(s.workingSet().size(), 3u);
}

TEST(AddressSpace, IdentityIsPreserved)
{
    AddressSpace s("my-space", 7, makeMachine(MachineId::R3000));
    EXPECT_EQ(s.name(), "my-space");
    EXPECT_EQ(s.asid(), 7u);
}

TEST(Marshal, CombinesCopyAndFixedWork)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    Cycles just_fixed = marshalCycles(m, 0, 100);
    EXPECT_EQ(just_fixed, 100u);
    Cycles with_bytes = marshalCycles(m, 1024, 100);
    EXPECT_GT(with_bytes, just_fixed + 256u); // at least 1 cyc/word
}

} // namespace
} // namespace aosd
