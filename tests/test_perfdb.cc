/**
 * @file
 * The perf-database store: record validation, JSONL round-trips,
 * duplicate/malformed rejection, reference resolution and the
 * numeric-array digest used for timeseries ingest.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/json.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/trend_report.hh"

using namespace aosd;

namespace
{

Json
parse(const std::string &text)
{
    std::string error;
    Json doc = Json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    return doc;
}

/** A minimal valid record with one tiny report document. */
Json
makeRecord(const std::string &commit, const std::string &time,
           double value = 1.0)
{
    Json fig = Json::object();
    fig.set("id", Json("metric_a.M"));
    fig.set("unit", Json("us"));
    fig.set("sim", Json(value));
    Json figs = Json::array();
    figs.push(std::move(fig));
    Json table = Json::object();
    table.set("figures", std::move(figs));
    Json tables = Json::object();
    tables.set("table1", std::move(table));
    Json report = Json::object();
    report.set("tables", std::move(tables));

    PerfDbRecordInputs in;
    in.report = &report;
    return buildPerfDbRecord(commit, time, "testhost", "test-flags",
                             in);
}

TEST(PerfDb, BuiltRecordValidatesAndCarriesItsKey)
{
    Json rec = makeRecord("abc123", "2026-08-01T00:00:00Z");
    EXPECT_EQ(PerfDb::validateRecord(rec), "");
    EXPECT_EQ(PerfDb::recordId(rec), "abc123@2026-08-01T00:00:00Z");
    EXPECT_EQ(rec.at("kind").asString(), "aosd-perfdb-record");
    EXPECT_EQ(rec.at("schema_version").asNumber(),
              perfDbSchemaVersion);
}

TEST(PerfDb, JsonlRoundTripIsByteIdentical)
{
    PerfDb db;
    ASSERT_TRUE(db.append(makeRecord("a", "t1")));
    ASSERT_TRUE(db.append(makeRecord("b", "t2", 2.0)));
    std::string text = db.toJsonl();

    PerfDb reloaded;
    std::string error;
    ASSERT_TRUE(reloaded.loadFromString(text, &error)) << error;
    ASSERT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.toJsonl(), text);
    EXPECT_EQ(reloaded.at(0).id(), "a@t1");
    EXPECT_EQ(reloaded.at(1).commit(), "b");
    EXPECT_EQ(reloaded.at(1).host(), "testhost");
}

TEST(PerfDb, DuplicateIdIsRejected)
{
    PerfDb db;
    ASSERT_TRUE(db.append(makeRecord("a", "t1")));
    std::string error;
    EXPECT_FALSE(db.append(makeRecord("a", "t1", 9.0), &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
    EXPECT_NE(error.find("a@t1"), std::string::npos) << error;
    EXPECT_EQ(db.size(), 1u);
}

TEST(PerfDb, MalformedLineFailsTheLoadWithLineNumber)
{
    PerfDb db;
    std::string error;
    std::string text = makeRecord("a", "t1").dump() + "\n" +
                       "this is not json\n";
    EXPECT_FALSE(db.loadFromString(text, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_EQ(db.size(), 0u); // no silent truncation
}

TEST(PerfDb, InvalidRecordsAreNamedByField)
{
    Json rec = makeRecord("a", "t1");
    rec.set("schema_version", Json(99));
    EXPECT_NE(PerfDb::validateRecord(rec).find("schema_version"),
              std::string::npos);

    rec = makeRecord("a", "t1");
    rec.set("commit", Json(""));
    EXPECT_NE(PerfDb::validateRecord(rec).find("commit"),
              std::string::npos);

    rec = makeRecord("a", "t1");
    rec.set("docs", Json::object());
    EXPECT_NE(PerfDb::validateRecord(rec).find("docs"),
              std::string::npos);

    rec = makeRecord("a", "t1");
    rec.set("id", Json("wrong@id"));
    EXPECT_NE(PerfDb::validateRecord(rec).find("id"),
              std::string::npos);

    // And an invalid line poisons a load, naming the line.
    PerfDb db;
    std::string error;
    EXPECT_FALSE(db.loadFromString(rec.dump() + "\n", &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(PerfDb, ResolvesIdsCommitsPrefixesAndIndices)
{
    PerfDb db;
    ASSERT_TRUE(db.append(makeRecord("deadbeef01", "t1")));
    ASSERT_TRUE(db.append(makeRecord("deadbeef01", "t2")));
    ASSERT_TRUE(db.append(makeRecord("cafe02", "t3")));

    EXPECT_EQ(db.resolve("latest")->id(), "cafe02@t3");
    EXPECT_EQ(db.resolve("-1")->id(), "cafe02@t3");
    EXPECT_EQ(db.resolve("-3")->id(), "deadbeef01@t1");
    EXPECT_EQ(db.resolve("deadbeef01@t1")->id(), "deadbeef01@t1");
    // A commit names its newest run; a prefix works too.
    EXPECT_EQ(db.resolve("deadbeef01")->id(), "deadbeef01@t2");
    EXPECT_EQ(db.resolve("dead")->id(), "deadbeef01@t2");

    std::string error;
    EXPECT_EQ(db.resolve("-4", &error), nullptr);
    EXPECT_NE(error.find("3 record(s)"), std::string::npos) << error;
    EXPECT_EQ(db.resolve("nosuch", &error), nullptr);
    EXPECT_NE(error.find("nosuch"), std::string::npos) << error;
}

TEST(PerfDb, AmbiguousCommitPrefixIsAnError)
{
    PerfDb db;
    ASSERT_TRUE(db.append(makeRecord("abc111", "t1")));
    ASSERT_TRUE(db.append(makeRecord("abc222", "t2")));
    std::string error;
    EXPECT_EQ(db.resolve("abc", &error), nullptr);
    EXPECT_NE(error.find("ambiguous"), std::string::npos) << error;
}

TEST(PerfDb, RemoveSupportsReplace)
{
    PerfDb db;
    ASSERT_TRUE(db.append(makeRecord("a", "t1", 1.0)));
    EXPECT_TRUE(db.remove("a@t1"));
    EXPECT_FALSE(db.remove("a@t1"));
    ASSERT_TRUE(db.append(makeRecord("a", "t1", 2.0)));
    EXPECT_EQ(db.size(), 1u);
}

TEST(PerfDb, DocAccessIncludesBenchSuites)
{
    Json report = parse(R"({"tables":{}})");
    Json bench = parse(R"({
        "benchmarks": [
            {"name": "BM_X", "real_time": 12.5, "cpu_time": 12.0,
             "time_unit": "us", "iterations": 100}
        ],
        "context": {"date": "noise", "load_avg": [1, 2, 3]}
    })");
    PerfDbRecordInputs in;
    in.report = &report;
    in.bench.emplace_back("simperf", &bench);
    PerfDbRecord rec(
        buildPerfDbRecord("c", "t", "h", "f", in));

    EXPECT_NE(rec.doc("report"), nullptr);
    ASSERT_NE(rec.doc("bench.simperf"), nullptr);
    EXPECT_EQ(rec.doc("bench.nosuch"), nullptr);
    // The run-local context block is dropped, the figures kept.
    const Json &marks = rec.doc("bench.simperf")->at("benchmarks");
    EXPECT_DOUBLE_EQ(marks.at("BM_X").at("real_time").asNumber(),
                     12.5);
    EXPECT_FALSE(rec.doc("bench.simperf")->has("context"));

    auto names = rec.docNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "report");
    EXPECT_EQ(names[1], "bench.simperf");
}

TEST(PerfDb, SummarizeNumericArraysDigestsSeries)
{
    Json doc = parse(R"({
        "cell": {"cycles": [10, 20, 30, 40], "label": "keep"},
        "mixed": [{"inner": [1, 2]}, "s"],
        "empty": []
    })");
    Json out = summarizeNumericArrays(doc);

    const Json &digest = out.at("cell").at("cycles");
    EXPECT_EQ(digest.at("n").asNumber(), 4);
    EXPECT_DOUBLE_EQ(digest.at("mean").asNumber(), 25.0);
    EXPECT_DOUBLE_EQ(digest.at("min").asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(digest.at("max").asNumber(), 40.0);
    EXPECT_DOUBLE_EQ(digest.at("last").asNumber(), 40.0);
    // Non-numeric arrays recurse instead of digesting...
    const Json &inner = out.at("mixed").at(0).at("inner");
    EXPECT_EQ(inner.at("n").asNumber(), 2);
    EXPECT_EQ(out.at("mixed").at(1).asString(), "s");
    // ... and an empty array stays an array.
    EXPECT_TRUE(out.at("empty").isArray());
    EXPECT_EQ(out.at("cell").at("label").asString(), "keep");
}

TEST(PerfDb, SummarizeNumericArraysSingleElementWindow)
{
    // A one-sample series (a single timeseries window) digests to a
    // degenerate but well-formed summary, never to NaN.
    Json doc = parse(R"({"cycles": [7]})");
    Json out = summarizeNumericArrays(doc);
    const Json &digest = out.at("cycles");
    EXPECT_EQ(digest.at("n").asNumber(), 1);
    EXPECT_DOUBLE_EQ(digest.at("mean").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(digest.at("min").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(digest.at("max").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(digest.at("last").asNumber(), 7.0);
}

} // namespace
