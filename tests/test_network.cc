/**
 * @file
 * Tests for the Ethernet timing model and the multi-node network.
 */

#include <gtest/gtest.h>

#include "net/network.hh"

namespace aosd
{
namespace
{

TEST(Ethernet, WireTimeMatchesBandwidth)
{
    Ethernet e(EthernetDesc{10.0, 34, 25.0, 1});
    // (74+34) bytes * 8 bits / 10 Mbit/s = 86.4 us.
    EXPECT_NEAR(e.wireTimeUs(74), 86.4, 0.01);
    // 10x the bandwidth, a tenth the time.
    Ethernet fast(EthernetDesc{100.0, 34, 25.0, 1});
    EXPECT_NEAR(fast.wireTimeUs(74), 8.64, 0.01);
}

TEST(Ethernet, FramingDominatesSmallPackets)
{
    Ethernet e(EthernetDesc{10.0, 34, 25.0, 1});
    double empty = e.wireTimeUs(0);
    double one = e.wireTimeUs(1);
    EXPECT_GT(empty, 25.0); // header time alone
    EXPECT_GT(one, empty);
}

TEST(Network, DeliversToDestination)
{
    EventQueue q;
    Network net(q, EthernetDesc{});
    std::vector<Packet> received;
    net.addNode([](const Packet &) { FAIL() << "wrong node"; });
    net.addNode([&](const Packet &p) { received.push_back(p); });
    net.send(0, 1, 100);
    q.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].payloadBytes, 100u);
    EXPECT_EQ(received[0].srcNode, 0u);
}

TEST(Network, DeliveryTimeIncludesWireAndController)
{
    EventQueue q;
    EthernetDesc link;
    link.controllerLatencyUs = 25.0;
    Network net(q, link);
    Tick delivered = 0;
    net.addNode([](const Packet &) {});
    net.addNode([&](const Packet &) { delivered = 0; });
    net.send(0, 1, 74);
    q.run();
    Ethernet e(link);
    Tick expected = 2 * e.controllerTime() + e.wireTime(74);
    EXPECT_EQ(q.now(), expected);
}

TEST(Network, SharedSegmentSerializesFrames)
{
    EventQueue q;
    Network net(q, EthernetDesc{});
    std::vector<std::uint64_t> order;
    net.addNode([](const Packet &) {});
    net.addNode([&](const Packet &p) { order.push_back(p.id); });
    net.addNode([](const Packet &) {});
    // Two sends at the same instant: the second waits for the wire.
    net.send(0, 1, 1000);
    net.send(2, 1, 10);
    Tick t0 = 0;
    q.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0u); // first queued goes first
    EXPECT_GT(q.now(), t0);
    EXPECT_EQ(net.stats().get("packets"), 2u);
}

TEST(Network, PacketsCarrySequentialIds)
{
    EventQueue q;
    Network net(q, EthernetDesc{});
    std::vector<std::uint64_t> ids;
    net.addNode([&](const Packet &p) { ids.push_back(p.id); });
    net.send(0, 0, 1);
    net.send(0, 0, 1);
    net.send(0, 0, 1);
    q.run();
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(NetworkDeathTest, UnknownNodePanics)
{
    EventQueue q;
    Network net(q, EthernetDesc{});
    net.addNode([](const Packet &) {});
    EXPECT_DEATH(net.send(0, 5, 10), "unregistered");
}

} // namespace
} // namespace aosd
