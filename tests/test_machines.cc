/**
 * @file
 * Unit tests for machine descriptions: Table 6 state sizes, the
 * architectural properties the paper's analysis depends on, and the
 * factory lists.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"

namespace aosd
{
namespace
{

TEST(Machines, Table6StateSizes)
{
    // Registers / FP state / Misc state, exactly as in Table 6.
    struct Row
    {
        MachineId id;
        std::uint32_t regs, fp, misc;
    };
    const Row rows[] = {
        {MachineId::CVAX, 16, 0, 1},   {MachineId::M88000, 32, 0, 27},
        {MachineId::R2000, 32, 32, 5}, {MachineId::R3000, 32, 32, 5},
        {MachineId::SPARC, 136, 32, 6}, {MachineId::I860, 32, 32, 9},
        {MachineId::RS6000, 32, 64, 4},
    };
    for (const Row &r : rows) {
        MachineDesc m = makeMachine(r.id);
        EXPECT_EQ(m.intRegs, r.regs) << m.name;
        EXPECT_EQ(m.fpStateWords, r.fp) << m.name;
        EXPECT_EQ(m.miscStateWords, r.misc) << m.name;
        EXPECT_EQ(m.threadStateWords(), r.regs + r.fp + r.misc);
    }
}

TEST(Machines, ClockRates)
{
    EXPECT_NEAR(makeMachine(MachineId::CVAX).clock.mhz(), 11.1, 0.1);
    EXPECT_NEAR(makeMachine(MachineId::M88000).clock.mhz(), 20.0, 0.1);
    EXPECT_NEAR(makeMachine(MachineId::R2000).clock.mhz(), 16.67, 0.1);
    EXPECT_NEAR(makeMachine(MachineId::R3000).clock.mhz(), 25.0, 0.1);
    EXPECT_NEAR(makeMachine(MachineId::SPARC).clock.mhz(), 25.0, 0.1);
}

TEST(Machines, MipsHasNoAtomicOp)
{
    // s4.1: "The MIPS R2000/R3000 has no atomic semaphore instruction."
    EXPECT_FALSE(makeMachine(MachineId::R2000).hasAtomicOp);
    EXPECT_FALSE(makeMachine(MachineId::R3000).hasAtomicOp);
    EXPECT_TRUE(makeMachine(MachineId::CVAX).hasAtomicOp);
    EXPECT_TRUE(makeMachine(MachineId::SPARC).hasAtomicOp);
    EXPECT_TRUE(makeMachine(MachineId::M88000).hasAtomicOp);
}

TEST(Machines, I860ProvidesNoFaultAddress)
{
    // s3.1: the i860 reports no faulting address.
    EXPECT_FALSE(makeMachine(MachineId::I860).providesFaultAddress);
    EXPECT_TRUE(makeMachine(MachineId::R3000).providesFaultAddress);
}

TEST(Machines, ExposedPipelines)
{
    // s3.1: 88000 and i860 expose pipeline state and freeze the FPU;
    // RS6000, SPARC and R2/3000 implement precise interrupts.
    MachineDesc m88k = makeMachine(MachineId::M88000);
    EXPECT_TRUE(m88k.pipeline.exposed);
    EXPECT_TRUE(m88k.pipeline.fpuFreezeHazard);
    EXPECT_FALSE(m88k.pipeline.preciseInterrupts);
    EXPECT_EQ(m88k.pipeline.stateRegs, 27u);

    EXPECT_TRUE(makeMachine(MachineId::I860).pipeline.exposed);
    EXPECT_TRUE(makeMachine(MachineId::RS6000).pipeline
                    .preciseInterrupts);
    EXPECT_TRUE(makeMachine(MachineId::SPARC).pipeline
                    .preciseInterrupts);
}

TEST(Machines, RegisterWindowsOnlyOnSparc)
{
    for (const MachineDesc &m : allMachines()) {
        if (m.id == MachineId::SPARC) {
            EXPECT_EQ(m.regWindows.windows, 8u);
            EXPECT_EQ(m.regWindows.regsPerWindow, 16u);
            EXPECT_DOUBLE_EQ(m.regWindows.avgSaveRestorePerSwitch, 3.0);
        } else {
            EXPECT_EQ(m.regWindows.windows, 0u) << m.name;
        }
    }
}

TEST(Machines, TlbManagementStyles)
{
    // s3.2: MIPS loads its TLB in software; the others in hardware.
    EXPECT_EQ(makeMachine(MachineId::R2000).tlb.management,
              TlbManagement::Software);
    EXPECT_EQ(makeMachine(MachineId::R3000).tlb.management,
              TlbManagement::Software);
    EXPECT_EQ(makeMachine(MachineId::CVAX).tlb.management,
              TlbManagement::Hardware);
    EXPECT_EQ(makeMachine(MachineId::SPARC).tlb.management,
              TlbManagement::Hardware);
}

TEST(Machines, TlbTags)
{
    // s3.2: "Many of the newer RISCs have process ID tags"; the CVAX
    // TLB is untagged (purged by LDPCTX).
    EXPECT_FALSE(makeMachine(MachineId::CVAX).tlb.processIdTags);
    EXPECT_TRUE(makeMachine(MachineId::R3000).tlb.processIdTags);
    EXPECT_TRUE(makeMachine(MachineId::SPARC).tlb.processIdTags);
    EXPECT_FALSE(makeMachine(MachineId::I860).tlb.processIdTags);
}

TEST(Machines, VirtualCaches)
{
    // Sun-4c and i860 are virtually addressed; i860 is untagged and
    // must flush on switch.
    MachineDesc sparc = makeMachine(MachineId::SPARC);
    EXPECT_EQ(sparc.cache.indexing, CacheIndexing::Virtual);
    EXPECT_FALSE(sparc.cache.flushOnContextSwitch);

    MachineDesc i860 = makeMachine(MachineId::I860);
    EXPECT_EQ(i860.cache.indexing, CacheIndexing::Virtual);
    EXPECT_TRUE(i860.cache.flushOnContextSwitch);

    EXPECT_EQ(makeMachine(MachineId::R3000).cache.indexing,
              CacheIndexing::Physical);
}

TEST(Machines, WriteBufferConfigs)
{
    // s2.3: DS3100 4-deep stall-5; DS5000 6-deep same-page retire.
    MachineDesc r2k = makeMachine(MachineId::R2000);
    EXPECT_EQ(r2k.writeBuffer.depth, 4u);
    EXPECT_EQ(r2k.writeBuffer.drainCycles, 5u);
    EXPECT_FALSE(r2k.writeBuffer.samePageFastRetire);
    EXPECT_TRUE(r2k.writeBuffer.readsWaitForDrain);

    MachineDesc r3k = makeMachine(MachineId::R3000);
    EXPECT_EQ(r3k.writeBuffer.depth, 6u);
    EXPECT_TRUE(r3k.writeBuffer.samePageFastRetire);
    EXPECT_FALSE(r3k.writeBuffer.readsWaitForDrain);
}

TEST(Machines, ApplicationPerformanceRow)
{
    // Bottom row of Table 1.
    EXPECT_DOUBLE_EQ(makeMachine(MachineId::M88000).appPerfVsCvax, 3.5);
    EXPECT_DOUBLE_EQ(makeMachine(MachineId::R2000).appPerfVsCvax, 4.2);
    EXPECT_DOUBLE_EQ(makeMachine(MachineId::R3000).appPerfVsCvax, 6.7);
    EXPECT_DOUBLE_EQ(makeMachine(MachineId::SPARC).appPerfVsCvax, 4.3);
    EXPECT_FALSE(makeMachine(MachineId::SPARC).appPerfExtrapolated);
    EXPECT_TRUE(makeMachine(MachineId::I860).appPerfExtrapolated);
    EXPECT_TRUE(makeMachine(MachineId::RS6000).appPerfExtrapolated);
}

TEST(Machines, FactoryLists)
{
    EXPECT_EQ(table1Machines().size(), 5u);
    EXPECT_EQ(table2Machines().size(), 5u);
    EXPECT_EQ(table6Machines().size(), 6u);
    EXPECT_EQ(allMachines().size(), 8u); // +Sun-3 (s2.1 baseline)
    // Table 2 includes the i860 but not the R3000 (shares the R2000
    // column); Table 6 adds the RS6000.
    bool has_i860 = false, has_r3000 = false;
    for (const MachineDesc &m : table2Machines()) {
        has_i860 |= m.id == MachineId::I860;
        has_r3000 |= m.id == MachineId::R3000;
    }
    EXPECT_TRUE(has_i860);
    EXPECT_FALSE(has_r3000);
}

TEST(Machines, VectoringStyles)
{
    // s2.3: MIPS and i860 vector nearly everything through one
    // handler; SPARC and 88000 are directly vectored; the VAX
    // dispatches in microcode.
    EXPECT_EQ(makeMachine(MachineId::R2000).vectoring,
              TrapVectoring::CommonHandler);
    EXPECT_EQ(makeMachine(MachineId::I860).vectoring,
              TrapVectoring::CommonHandler);
    EXPECT_EQ(makeMachine(MachineId::SPARC).vectoring,
              TrapVectoring::DirectVectored);
    EXPECT_EQ(makeMachine(MachineId::M88000).vectoring,
              TrapVectoring::DirectVectored);
    EXPECT_EQ(makeMachine(MachineId::CVAX).vectoring,
              TrapVectoring::Microcoded);
}

} // namespace
} // namespace aosd
