/**
 * @file
 * Unit tests for the functional cache model and the data-copy cost
 * model (§2.4, §3.2).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "mem/cache.hh"
#include "mem/page_table.hh"

namespace aosd
{
namespace
{

CacheDesc
smallVirtual()
{
    CacheDesc d;
    d.indexing = CacheIndexing::Virtual;
    d.policy = WritePolicy::WriteThrough;
    d.sizeBytes = 1024;
    d.lineBytes = 16;
    d.missPenaltyCycles = 10;
    d.flushLineCycles = 3;
    return d;
}

TEST(Cache, MissThenHit)
{
    Cache c(smallVirtual());
    Cycles miss = c.access(0x100, 1, false);
    EXPECT_GT(miss, 1u);
    EXPECT_EQ(c.access(0x100, 1, false), 1u);
    EXPECT_TRUE(c.present(0x100, 1));
}

TEST(Cache, VirtualCacheContextMismatchMisses)
{
    Cache c(smallVirtual());
    c.access(0x100, 1, false);
    EXPECT_FALSE(c.present(0x100, 2));
    EXPECT_GT(c.access(0x100, 2, false), 1u); // other context misses
}

TEST(Cache, PhysicalCacheIgnoresContext)
{
    CacheDesc d = smallVirtual();
    d.indexing = CacheIndexing::Physical;
    Cache c(d);
    c.access(0x100, 1, false);
    EXPECT_TRUE(c.present(0x100, 2));
}

TEST(Cache, ConflictingLinesEvict)
{
    Cache c(smallVirtual()); // 64 lines
    c.access(0x0, 1, false);
    c.access(0x0 + 1024, 1, false); // same index, different tag
    EXPECT_FALSE(c.present(0x0, 1));
}

TEST(Cache, WriteBackDirtyVictimCostsExtra)
{
    CacheDesc d = smallVirtual();
    d.policy = WritePolicy::WriteBack;
    Cache c(d);
    c.access(0x0, 1, true); // dirty
    Cycles evict = c.access(0x0 + 1024, 1, false);
    Cache c2(d);
    c2.access(0x0, 1, false); // clean
    Cycles evict_clean = c2.access(0x0 + 1024, 1, false);
    EXPECT_GT(evict, evict_clean);
}

TEST(Cache, FlushPageRemovesPageLines)
{
    Cache c(smallVirtual());
    c.access(0x10, 1, false);
    Cycles cost = c.flushPage(0x0, 1);
    EXPECT_GT(cost, 0u);
    EXPECT_FALSE(c.present(0x10, 1));
}

TEST(Cache, FlushPageSweepsWholePageFootprint)
{
    // The sweep pays per-line cost for every line of the page — the
    // i860 effect (s3.2).
    Cache c(smallVirtual());
    Cycles cost = c.flushPage(0, 1);
    Cycles lines_per_page = pageBytes / 16;
    EXPECT_GE(cost, lines_per_page * 3);
}

TEST(Cache, SwitchContextOnlyFlushesUntaggedVirtual)
{
    Cache v(smallVirtual());
    v.access(0x10, 1, false);
    EXPECT_EQ(v.switchContext(/*tagged=*/true), 0u);
    EXPECT_TRUE(v.present(0x10, 1));
    EXPECT_GT(v.switchContext(/*tagged=*/false), 0u);
    EXPECT_FALSE(v.present(0x10, 1));

    CacheDesc pd = smallVirtual();
    pd.indexing = CacheIndexing::Physical;
    Cache p(pd);
    p.access(0x10, 1, false);
    EXPECT_EQ(p.switchContext(false), 0u);
}

TEST(Cache, StatsTrackHitsAndFlushes)
{
    Cache c(smallVirtual());
    c.access(1, 1, false);
    c.access(1, 1, false);
    c.flushAll();
    EXPECT_EQ(c.stats().get("misses"), 1u);
    EXPECT_EQ(c.stats().get("hits"), 1u);
    EXPECT_EQ(c.stats().get("full_flushes"), 1u);
}

TEST(CacheDeathTest, BadGeometryIsFatal)
{
    CacheDesc d = smallVirtual();
    d.lineBytes = 0;
    EXPECT_DEATH(Cache c(d), "geometry");
}

// ---- copy model (s2.4) ----------------------------------------------

TEST(CopyModel, CostScalesWithSize)
{
    const MachineDesc m = makeMachine(MachineId::R3000);
    Cycles c1 = copyCycles(m, 1024);
    Cycles c4 = copyCycles(m, 4096);
    EXPECT_GT(c4, 3 * c1);
    EXPECT_LT(c4, 5 * c1);
}

TEST(CopyModel, ZeroBytesIsFree)
{
    EXPECT_EQ(copyCycles(makeMachine(MachineId::R3000), 0), 0u);
}

TEST(CopyModel, RelativeCopyPerformanceDropsOnFasterProcessors)
{
    // [Ousterhout 90b] via s2.4: MB/s per unit of integer performance
    // falls almost monotonically from the CVAX to the fastest RISC.
    double cvax = copyBandwidthMBps(makeMachine(MachineId::CVAX)) /
                  makeMachine(MachineId::CVAX).appPerfVsCvax;
    double r3000 = copyBandwidthMBps(makeMachine(MachineId::R3000)) /
                   makeMachine(MachineId::R3000).appPerfVsCvax;
    EXPECT_LT(r3000, cvax);
}

TEST(CopyModel, AbsoluteBandwidthStillHigherOnFasterMachines)
{
    EXPECT_GT(copyBandwidthMBps(makeMachine(MachineId::R3000)),
              copyBandwidthMBps(makeMachine(MachineId::CVAX)));
}

TEST(CopyModel, WriteBufferQualityMatters)
{
    // Same ISA, same clock family: the DS5000-style memory system
    // copies faster per cycle than the DS3100-style one.
    MachineDesc slow = makeMachine(MachineId::R2000);
    MachineDesc fast = makeMachine(MachineId::R3000);
    // Compare cycles (clock-independent).
    EXPECT_LT(copyCycles(fast, 4096), copyCycles(slow, 4096));
}

} // namespace
} // namespace aosd
