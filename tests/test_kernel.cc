/**
 * @file
 * Unit tests for the instrumented simulated kernel (SimKernel):
 * counting, charging, context-switch side effects, ASID recycling.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/kernel/kernel.hh"

namespace aosd
{
namespace
{

TEST(SimKernel, SyscallChargesAndCounts)
{
    SimKernel k(makeMachine(MachineId::R3000));
    Cycles expected = sharedCostDb().cycles(MachineId::R3000,
                                            Primitive::NullSyscall);
    k.syscall();
    k.syscall();
    EXPECT_EQ(k.stats().get(kstat::syscalls), 2u);
    EXPECT_EQ(k.elapsedCycles(), 2 * expected);
    EXPECT_EQ(k.primitiveCycles(), 2 * expected);
}

TEST(SimKernel, TrapAndExceptionCounts)
{
    SimKernel k(makeMachine(MachineId::R3000));
    k.trap();
    k.otherException();
    EXPECT_EQ(k.stats().get(kstat::traps), 1u);
    EXPECT_EQ(k.stats().get(kstat::otherExceptions), 1u);
}

TEST(SimKernel, ContextSwitchCountsBothSwitchKinds)
{
    SimKernel k(makeMachine(MachineId::R3000));
    AddressSpace &a = k.createSpace("a");
    k.contextSwitchTo(a);
    // An address-space switch implies a thread switch (Table 7 note).
    EXPECT_EQ(k.stats().get(kstat::addrSpaceSwitches), 1u);
    EXPECT_EQ(k.stats().get(kstat::threadSwitches), 1u);
    k.threadSwitch();
    EXPECT_EQ(k.stats().get(kstat::threadSwitches), 2u);
    EXPECT_EQ(k.stats().get(kstat::addrSpaceSwitches), 1u);
}

TEST(SimKernel, SwitchToCurrentSpaceIsFree)
{
    SimKernel k(makeMachine(MachineId::R3000));
    AddressSpace &a = k.createSpace("a");
    k.contextSwitchTo(a);
    Cycles before = k.elapsedCycles();
    k.contextSwitchTo(a);
    EXPECT_EQ(k.elapsedCycles(), before);
    EXPECT_EQ(k.stats().get(kstat::addrSpaceSwitches), 1u);
}

TEST(SimKernel, UntaggedTlbPurgedOnSwitch)
{
    SimKernel k(makeMachine(MachineId::CVAX)); // untagged TLB
    AddressSpace &a = k.createSpace("a");
    AddressSpace &b = k.createSpace("b");
    a.mapRange(0x100, 4, 0x900, {});
    a.setWorkingSet(0x100, 4);
    k.contextSwitchTo(a);
    EXPECT_GT(k.tlb().validEntries(), 0u);
    std::size_t after_a = k.tlb().validEntries();
    k.contextSwitchTo(b);
    // Purge happened; only b's (empty) refill remains.
    EXPECT_LT(k.tlb().validEntries(), after_a + 1);
    EXPECT_EQ(k.tlb().stats().get("full_purges"), 2u);
}

TEST(SimKernel, TaggedTlbSurvivesSwitch)
{
    SimKernel k(makeMachine(MachineId::R3000));
    AddressSpace &a = k.createSpace("a");
    AddressSpace &b = k.createSpace("b");
    a.mapRange(0x100, 4, 0x900, {});
    a.setWorkingSet(0x100, 4);
    k.contextSwitchTo(a);
    k.contextSwitchTo(b);
    // a's entries still present under its ASID.
    EXPECT_GE(k.tlb().entriesForAsid(a.asid()), 4u);
}

TEST(SimKernel, WorkingSetRefillCountsUserMisses)
{
    SimKernel k(makeMachine(MachineId::R3000));
    AddressSpace &a = k.createSpace("a");
    a.mapRange(0x100, 8, 0x900, {});
    a.setWorkingSet(0x100, 8);
    k.contextSwitchTo(a);
    EXPECT_GE(k.stats().get(kstat::userTlbMisses), 8u);
    std::uint64_t first = k.stats().get(kstat::userTlbMisses);
    k.touchWorkingSet(); // warm now
    EXPECT_EQ(k.stats().get(kstat::userTlbMisses), first);
}

TEST(SimKernel, KernelTouchesCountKernelMisses)
{
    SimKernel k(makeMachine(MachineId::R3000));
    k.touchPages({0x800, 0x801}, /*kernel_space=*/true);
    EXPECT_EQ(k.stats().get(kstat::kernelTlbMisses), 2u);
    k.touchPages({0x800}, true); // warm
    EXPECT_EQ(k.stats().get(kstat::kernelTlbMisses), 2u);
}

TEST(SimKernel, SoftwareKernelMissesAreExpensive)
{
    // MIPS: a kernel-space miss costs a few hundred cycles (s5).
    SimKernel k(makeMachine(MachineId::R3000));
    Cycles before = k.elapsedCycles();
    k.touchPages({0xC00}, true);
    Cycles cost = k.elapsedCycles() - before;
    EXPECT_GE(cost, 300u);
}

TEST(SimKernel, EmulatedInstructions)
{
    SimKernel k(makeMachine(MachineId::R3000));
    k.emulateInstructions(10);
    k.emulateTestAndSet();
    EXPECT_EQ(k.stats().get(kstat::emulatedInstrs), 11u);
    EXPECT_GT(k.primitiveCycles(), 0u);
}

TEST(SimKernel, PteChangeInvalidatesTlbEntry)
{
    SimKernel k(makeMachine(MachineId::R3000));
    AddressSpace &a = k.createSpace("a");
    a.mapRange(0x100, 1, 0x900, {});
    a.setWorkingSet(0x100, 1);
    k.contextSwitchTo(a);
    EXPECT_TRUE(k.tlb().lookup(0x100, a.asid()).hit);
    PageProt ro;
    ro.writable = false;
    k.pteChange(a, 0x100, ro);
    EXPECT_FALSE(k.tlb().lookup(0x100, a.asid()).hit);
    EXPECT_EQ(k.stats().get(kstat::pteChanges), 1u);
    // The page table itself was updated.
    EXPECT_FALSE(a.pageTable().walk(0x100).pte->prot.writable);
}

TEST(SimKernel, AsidRecyclingPurgesStaleEntries)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    m.tlb.pidCount = 4; // tiny ASID space to force recycling
    SimKernel k(m);
    std::vector<AddressSpace *> spaces;
    for (int i = 0; i < 10; ++i)
        spaces.push_back(&k.createSpace("s" + std::to_string(i)));
    // ASIDs must stay within the architectural range.
    for (AddressSpace *s : spaces)
        EXPECT_LT(s->asid(), 4u);
}

TEST(SimKernel, RunUserCodeScalesWithAppPerformance)
{
    SimKernel fast(makeMachine(MachineId::R3000));
    SimKernel slow(makeMachine(MachineId::CVAX));
    fast.runUserCode(1000000);
    slow.runUserCode(1000000);
    // Same work: the 6.7x machine finishes in much less time.
    EXPECT_LT(fast.elapsedMicros() * 4, slow.elapsedMicros());
}

TEST(SimKernel, ResetAccountingClearsEverything)
{
    SimKernel k(makeMachine(MachineId::R3000));
    k.syscall();
    k.trap();
    k.resetAccounting();
    EXPECT_EQ(k.elapsedCycles(), 0u);
    EXPECT_EQ(k.primitiveCycles(), 0u);
    EXPECT_EQ(k.stats().get(kstat::syscalls), 0u);
}

TEST(SimKernel, ElapsedMicrosMatchesClock)
{
    SimKernel k(makeMachine(MachineId::R3000)); // 25 MHz
    k.chargeCycles(25);
    EXPECT_NEAR(k.elapsedMicros(), 1.0, 1e-9);
    k.chargeMicros(9.0);
    EXPECT_NEAR(k.elapsedMicros(), 10.0, 1e-9);
}

TEST(SimKernelDeathTest, SwitchToForeignSpacePanics)
{
    SimKernel k1(makeMachine(MachineId::R3000));
    SimKernel k2(makeMachine(MachineId::R3000));
    AddressSpace &foreign = k2.createSpace("foreign");
    EXPECT_DEATH(k1.contextSwitchTo(foreign), "does not own");
}

} // namespace
} // namespace aosd
