/**
 * @file
 * Tests for the §5 workload engine: profile integrity, determinism,
 * and the structural properties Table 7 demonstrates.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "workload/app_profile.hh"
#include <map>

#include "workload/os_model.hh"

namespace aosd
{
namespace
{

TEST(Workloads, SevenProfilesInPaperOrder)
{
    auto apps = table7Workloads();
    ASSERT_EQ(apps.size(), 7u);
    EXPECT_EQ(apps[0].name, "spellcheck-1");
    EXPECT_EQ(apps[1].name, "latex-150");
    EXPECT_EQ(apps[2].name, "andrew-local");
    EXPECT_EQ(apps[3].name, "andrew-remote");
    EXPECT_EQ(apps[4].name, "link-vmunix");
    EXPECT_EQ(apps[5].name, "parthenon (1 thread)");
    EXPECT_EQ(apps[6].name, "parthenon (10 threads)");
}

TEST(Workloads, ServiceCallCountsComeFromPaper)
{
    EXPECT_EQ(workloadByName("latex-150").unixServiceCalls, 5513u);
    EXPECT_EQ(workloadByName("andrew-remote").unixServiceCalls,
              35498u);
    EXPECT_EQ(workloadByName("parthenon (1 thread)").lockOps,
              1395555u);
}

TEST(Workloads, LookupUnknownIsFatal)
{
    EXPECT_EXIT(workloadByName("no-such-app"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(MachSystem, DeterministicPerSeed)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    AppProfile app = workloadByName("spellcheck-1");
    MachSystem a(m, OsStructure::SmallKernel);
    MachSystem b(m, OsStructure::SmallKernel);
    Table7Row ra = a.run(app);
    Table7Row rb = b.run(app);
    EXPECT_EQ(ra.systemCalls, rb.systemCalls);
    EXPECT_EQ(ra.kernelTlbMisses, rb.kernelTlbMisses);
    EXPECT_DOUBLE_EQ(ra.elapsedSeconds, rb.elapsedSeconds);
}

TEST(MachSystem, SeedChangesDetailsNotShape)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    AppProfile app = workloadByName("spellcheck-1");
    OsModelConfig c1, c2;
    c2.seed = 999;
    Table7Row r1 = MachSystem(m, OsStructure::SmallKernel, c1).run(app);
    Table7Row r2 = MachSystem(m, OsStructure::SmallKernel, c2).run(app);
    EXPECT_NE(r1.kernelTlbMisses, r2.kernelTlbMisses);
    EXPECT_NEAR(static_cast<double>(r1.systemCalls),
                static_cast<double>(r2.systemCalls),
                0.1 * static_cast<double>(r1.systemCalls));
}

/** Cached runner: MachSystem runs are deterministic, so each
 *  (workload, structure) pair is simulated once per test binary. */
const Table7Row &
cachedRun(const std::string &app, OsStructure s)
{
    static std::map<std::pair<std::string, int>, Table7Row> cache;
    auto key = std::make_pair(app, static_cast<int>(s));
    auto it = cache.find(key);
    if (it == cache.end()) {
        MachSystem sys(makeMachine(MachineId::R3000), s);
        it = cache.emplace(key, sys.run(workloadByName(app))).first;
    }
    return it->second;
}

/** Structural properties, parameterized over every workload. */
class StructureTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const Table7Row &
    run(OsStructure s)
    {
        return cachedRun(GetParam(), s);
    }
};

TEST_P(StructureTest, DecompositionMultipliesSyscalls)
{
    Table7Row mono = run(OsStructure::Monolithic);
    Table7Row micro = run(OsStructure::SmallKernel);
    EXPECT_GT(micro.systemCalls, mono.systemCalls);
}

TEST_P(StructureTest, DecompositionMultipliesContextSwitches)
{
    Table7Row mono = run(OsStructure::Monolithic);
    Table7Row micro = run(OsStructure::SmallKernel);
    EXPECT_GT(micro.addressSpaceSwitches,
              3 * mono.addressSpaceSwitches);
    EXPECT_GE(micro.threadSwitches, micro.addressSpaceSwitches);
}

TEST_P(StructureTest, DecompositionInflatesKernelTlbMisses)
{
    Table7Row mono = run(OsStructure::Monolithic);
    Table7Row micro = run(OsStructure::SmallKernel);
    EXPECT_GT(micro.kernelTlbMisses, 2 * mono.kernelTlbMisses);
}

TEST_P(StructureTest, DecompositionNeverSpeedsThingsUp)
{
    Table7Row mono = run(OsStructure::Monolithic);
    Table7Row micro = run(OsStructure::SmallKernel);
    EXPECT_GE(micro.elapsedSeconds, mono.elapsedSeconds * 0.99);
}

TEST_P(StructureTest, PrimitiveShareIsSignificantWhenDecomposed)
{
    Table7Row micro = run(OsStructure::SmallKernel);
    // s5: most applications spend noticeable time in primitives.
    EXPECT_GT(micro.percentTimeInPrimitives, 0.5);
    EXPECT_LT(micro.percentTimeInPrimitives, 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, StructureTest,
    ::testing::Values("spellcheck-1", "latex-150", "andrew-local",
                      "andrew-remote", "link-vmunix",
                      "parthenon (1 thread)",
                      "parthenon (10 threads)"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

// ---- calibration against the paper's Mach 2.5 column ----------------

TEST(Table7Calibration, MonolithicCountsNearPaper)
{
    for (const AppProfile &app : table7Workloads()) {
        const Table7Row &sim =
            cachedRun(app.name, OsStructure::Monolithic);
        Table7Row paper = paperTable7Row(app.name,
                                         OsStructure::Monolithic);
        ASSERT_GT(paper.elapsedSeconds, 0.0) << app.name;
        EXPECT_NEAR(sim.elapsedSeconds, paper.elapsedSeconds,
                    0.15 * paper.elapsedSeconds)
            << app.name;
        EXPECT_EQ(sim.systemCalls, paper.systemCalls) << app.name;
        // Counts driven by stochastic spreading: within 2x.
        EXPECT_LT(sim.addressSpaceSwitches,
                  2.2 * paper.addressSpaceSwitches) << app.name;
        EXPECT_GT(static_cast<double>(sim.kernelTlbMisses),
                  0.4 * static_cast<double>(paper.kernelTlbMisses))
            << app.name;
        EXPECT_LT(static_cast<double>(sim.kernelTlbMisses),
                  2.5 * static_cast<double>(paper.kernelTlbMisses))
            << app.name;
    }
}

TEST(Table7Calibration, DecomposedRatiosNearPaper)
{
    for (const AppProfile &app : table7Workloads()) {
        const Table7Row &sim =
            cachedRun(app.name, OsStructure::SmallKernel);
        Table7Row paper = paperTable7Row(app.name,
                                         OsStructure::SmallKernel);
        // System calls are the best-understood column: within 10%.
        EXPECT_NEAR(static_cast<double>(sim.systemCalls),
                    static_cast<double>(paper.systemCalls),
                    0.10 * static_cast<double>(paper.systemCalls))
            << app.name;
        // Switch counts within 25%.
        EXPECT_NEAR(
            static_cast<double>(sim.addressSpaceSwitches),
            static_cast<double>(paper.addressSpaceSwitches),
            0.25 * static_cast<double>(paper.addressSpaceSwitches))
            << app.name;
        // Emulated instructions within 10%.
        EXPECT_NEAR(
            static_cast<double>(sim.emulatedInstructions),
            static_cast<double>(paper.emulatedInstructions),
            0.10 * static_cast<double>(paper.emulatedInstructions))
            << app.name;
    }
}

TEST(Table7Calibration, AndrewRemoteSwitchInflationNearPaper)
{
    // "a 33-fold increase in context switches for the remote Andrew
    // benchmark on Mach 3.0 over Mach 2.5" (s5).
    const Table7Row &mono =
        cachedRun("andrew-remote", OsStructure::Monolithic);
    const Table7Row &micro =
        cachedRun("andrew-remote", OsStructure::SmallKernel);
    double inflation =
        static_cast<double>(micro.addressSpaceSwitches) /
        static_cast<double>(mono.addressSpaceSwitches);
    EXPECT_GT(inflation, 20.0);
    EXPECT_LT(inflation, 45.0);
}

TEST(Table7Calibration, KernelTlbMissesInflateByOrderOfMagnitude)
{
    // s5: decomposition "increase[s] the number of second-level
    // misses by an order of magnitude".
    const Table7Row &mono =
        cachedRun("latex-150", OsStructure::Monolithic);
    const Table7Row &micro =
        cachedRun("latex-150", OsStructure::SmallKernel);
    EXPECT_GT(micro.kernelTlbMisses, 4 * mono.kernelTlbMisses);
}

TEST(Table7Calibration, ParthenonEmulationIsTestAndSetBound)
{
    AppProfile app = workloadByName("parthenon (1 thread)");
    const Table7Row &mono =
        cachedRun(app.name, OsStructure::Monolithic);
    EXPECT_EQ(mono.emulatedInstructions, app.lockOps);
}

TEST(PaperTable7, UnknownAppReturnsZeros)
{
    Table7Row r = paperTable7Row("nonexistent",
                                 OsStructure::Monolithic);
    EXPECT_EQ(r.systemCalls, 0u);
    EXPECT_DOUBLE_EQ(r.elapsedSeconds, 0.0);
}

} // namespace
} // namespace aosd
