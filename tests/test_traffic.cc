/**
 * @file
 * Tests for the synthetic traffic driver (workload/traffic):
 * traffic.json shape, byte-identity across job counts and across the
 * batch toggle, the exact-100% kernel-window reconciliation the
 * request classes guarantee, open vs closed queueing behavior, the
 * slowest-request exemplars, and the perfdb ingest digest.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/machines.hh"
#include "cpu/decoded_program.hh"
#include "sim/batch/batch.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/trend_report.hh"
#include "workload/traffic.hh"

using namespace aosd;

namespace
{

class TrafficTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setBatchEnabled(true);
        setPredecodeEnabled(true);
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }

    void
    TearDown() override
    {
        SetUp();
    }

    /** Small two-machine sweep that still exercises queueing. */
    TrafficConfig
    smallConfig()
    {
        TrafficConfig cfg;
        cfg.requestsPerLevel = 800;
        cfg.levels = {0.5, 1.1};
        cfg.machines = {MachineId::CVAX, MachineId::R3000};
        return cfg;
    }
};

TEST_F(TrafficTest, DocShapeAndConfigEcho)
{
    TrafficConfig cfg = smallConfig();
    ParallelRunner serial(1);
    Json doc = buildTrafficDoc(cfg, serial);

    EXPECT_EQ(doc.at("schema_version").asUint(), 1u);
    EXPECT_EQ(doc.at("kind").asString(), "traffic");
    EXPECT_EQ(doc.at("config").at("mode").asString(), "open");
    EXPECT_EQ(doc.at("config").at("arrival").asString(), "uniform");
    EXPECT_EQ(doc.at("total_requests").asUint(), 800u * 4u);
    ASSERT_EQ(doc.at("machines").size(), 2u);
    const Json &m0 = doc.at("machines").at(0);
    EXPECT_EQ(m0.at("machine").asString(), "CVAX");
    ASSERT_EQ(m0.at("load_levels").size(), 2u);
    const Json &cell = m0.at("load_levels").at(0);
    EXPECT_EQ(cell.at("requests").asUint(), 800u);
    EXPECT_GT(cell.at("throughput_rps").asNumber(), 0.0);
    EXPECT_GT(cell.at("latency_cycles").at("all").at("p50").asNumber(),
              0.0);
    // Every request class appears in the per-class breakdown, and
    // their counts sum to the cell's request count.
    const Json &per_class = cell.at("latency_cycles").at("per_class");
    std::uint64_t class_count = 0;
    for (const auto &[name, hist] : per_class.items()) {
        EXPECT_FALSE(name.empty());
        class_count += hist.at("count").asUint();
    }
    EXPECT_EQ(class_count, 800u);
    EXPECT_EQ(cell.at("wait_cycles").at("count").asUint(), 800u);
}

TEST_F(TrafficTest, ByteIdenticalAcrossJobsAndBatchToggle)
{
    TrafficConfig cfg = smallConfig();
    ParallelRunner serial(1);
    std::string base = buildTrafficDoc(cfg, serial).dump(1);

    ParallelRunner fanned(8);
    EXPECT_EQ(base, buildTrafficDoc(cfg, fanned).dump(1));

    setBatchEnabled(false);
    ParallelRunner fanned2(8);
    EXPECT_EQ(base, buildTrafficDoc(cfg, fanned2).dump(1));
}

TEST_F(TrafficTest, EveryCellKernelWindowExplainsExactly100Pct)
{
    // The request classes use only the closed-form primitives the
    // reconciliation prices exactly, so 100.0% — not "within
    // tolerance" — is the contract, batched or not.
    for (bool batched : {true, false}) {
        setBatchEnabled(batched);
        TrafficConfig cfg = smallConfig();
        ParallelRunner serial(1);
        Json doc = buildTrafficDoc(cfg, serial);
        for (std::size_t mi = 0; mi < doc.at("machines").size(); ++mi) {
            const Json &levels =
                doc.at("machines").at(mi).at("load_levels");
            for (std::size_t li = 0; li < levels.size(); ++li) {
                const Json &kw = levels.at(li).at("kernel_window");
                EXPECT_EQ(kw.at("explained_pct").asNumber(), 100.0)
                    << "machine " << mi << " level " << li
                    << " batched " << batched;
            }
        }
    }
}

TEST_F(TrafficTest, OverloadGrowsLatencyAndQueueDepth)
{
    TrafficConfig cfg;
    cfg.requestsPerLevel = 2000;
    cfg.levels = {0.3, 1.3};
    cfg.machines = {MachineId::R3000};
    ParallelRunner serial(1);
    Json doc = buildTrafficDoc(cfg, serial);
    const Json &levels = doc.at("machines").at(0).at("load_levels");
    const Json &light = levels.at(0);
    const Json &heavy = levels.at(1);
    // Past saturation the queue builds without bound and p99 latency
    // blows up relative to the lightly-loaded cell.
    EXPECT_GT(heavy.at("max_queue_depth").asUint(),
              4 * light.at("max_queue_depth").asUint());
    EXPECT_GT(heavy.at("latency_cycles").at("all").at("p99").asNumber(),
              10 * light.at("latency_cycles")
                       .at("all")
                       .at("p99")
                       .asNumber());
}

TEST_F(TrafficTest, ClosedLoopBoundsOutstandingRequests)
{
    TrafficConfig cfg;
    cfg.mode = TrafficMode::Closed;
    cfg.requestsPerLevel = 2000;
    cfg.levels = {4};
    cfg.machines = {MachineId::R3000};
    ParallelRunner serial(1);
    Json doc = buildTrafficDoc(cfg, serial);
    const Json &cell = doc.at("machines").at(0).at("load_levels").at(0);
    // A 4-client population can never queue more than 4 deep — the
    // self-throttling the open loop lacks.
    EXPECT_LE(cell.at("max_queue_depth").asUint(), 4u);
    EXPECT_EQ(cell.at("kernel_window").at("explained_pct").asNumber(),
              100.0);
}

TEST_F(TrafficTest, ArrivalProcessesAreDeterministicAndDistinct)
{
    for (TrafficArrival a :
         {TrafficArrival::Uniform, TrafficArrival::Bursty,
          TrafficArrival::Diurnal}) {
        TrafficConfig cfg;
        cfg.arrival = a;
        cfg.requestsPerLevel = 500;
        cfg.levels = {0.8};
        cfg.machines = {MachineId::CVAX};
        ParallelRunner serial(1);
        std::string one = buildTrafficDoc(cfg, serial).dump();
        ParallelRunner two(2);
        EXPECT_EQ(one, buildTrafficDoc(cfg, two).dump())
            << trafficArrivalName(a);
    }
    // Bursty arrivals clump: same mean rate, deeper worst-case queue
    // than the uniform process on the same seed and machine.
    TrafficConfig uni;
    uni.requestsPerLevel = 4000;
    uni.levels = {0.9};
    uni.machines = {MachineId::R3000};
    TrafficConfig burst = uni;
    burst.arrival = TrafficArrival::Bursty;
    ParallelRunner serial(1);
    Json u = buildTrafficDoc(uni, serial);
    Json b = buildTrafficDoc(burst, serial);
    EXPECT_GT(b.at("machines")
                  .at(0)
                  .at("load_levels")
                  .at(0)
                  .at("max_queue_depth")
                  .asUint(),
              u.at("machines")
                  .at(0)
                  .at("load_levels")
                  .at(0)
                  .at("max_queue_depth")
                  .asUint());
}

TEST_F(TrafficTest, SlowestRequestExemplarsAreSortedAndCapped)
{
    TrafficConfig cfg = smallConfig();
    cfg.exemplars = 3;
    ParallelRunner serial(1);
    Json doc = buildTrafficDoc(cfg, serial);
    const Json &slow = doc.at("machines")
                           .at(0)
                           .at("load_levels")
                           .at(1)
                           .at("slowest_requests");
    ASSERT_EQ(slow.size(), 3u);
    for (std::size_t i = 1; i < slow.size(); ++i)
        EXPECT_GE(slow.at(i - 1).at("latency_cycles").asUint(),
                  slow.at(i).at("latency_cycles").asUint());
    for (std::size_t i = 0; i < slow.size(); ++i) {
        const Json &e = slow.at(i);
        EXPECT_EQ(e.at("latency_cycles").asUint(),
                  e.at("wait_cycles").asUint() +
                      e.at("service_cycles").asUint());
    }
}

TEST_F(TrafficTest, PerfDbIngestDigestsOutExemplars)
{
    TrafficConfig cfg = smallConfig();
    ParallelRunner serial(1);
    Json doc = buildTrafficDoc(cfg, serial);

    PerfDbRecordInputs in;
    in.traffic = &doc;
    PerfDbRecord rec(buildPerfDbRecord("c", "t", "h", "f", in));

    const Json *stored = rec.doc("traffic");
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(stored->dump().find("slowest_requests"),
              std::string::npos);

    bool saw_p99 = false, saw_explained = false;
    for (const PerfLeaf &leaf : recordMetrics(rec)) {
        if (leaf.path == "traffic.CVAX.l0.latency_cycles.all.p99")
            saw_p99 = true;
        if (leaf.path ==
            "traffic.R3000.l1.kernel_window.explained_pct") {
            saw_explained = true;
            EXPECT_DOUBLE_EQ(leaf.value, 100.0);
        }
    }
    EXPECT_TRUE(saw_p99);
    EXPECT_TRUE(saw_explained);
}

TEST_F(TrafficTest, ReplayEventMixIsDeterministicAndCoversCounters)
{
    auto run = [](std::uint64_t seed) {
        MachineDesc m = makeMachine(MachineId::R3000);
        SimKernel kernel(m);
        AddressSpace &space = kernel.createSpace("mix");
        space.mapRange(0x1000, 64, 0x50000, {});
        HwCounters::instance().enable();
        std::uint64_t issued =
            replayEventMix(kernel, &space, 10'000, seed);
        CounterSet snap = HwCounters::instance().snapshot();
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        return std::make_pair(issued, snap);
    };
    auto [issued_a, snap_a] = run(5);
    auto [issued_b, snap_b] = run(5);
    EXPECT_GE(issued_a, 10'000u);
    EXPECT_EQ(issued_a, issued_b);
    EXPECT_EQ(snap_a, snap_b);
    // The mix exercises every batchable primitive's counter.
    for (HwCounter c :
         {HwCounter::KernelSyscalls, HwCounter::KernelTraps,
          HwCounter::ThreadSwitches, HwCounter::EmulatedInstrs,
          HwCounter::EmulatedTasOps, HwCounter::PteChanges})
        EXPECT_GT(snap_a.get(c), 0u) << counterName(c);
}

} // namespace
