/**
 * @file
 * Tests for the threads subsystem (§4): cost models, synchronization,
 * the functional thread package, and granularity properties.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "cpu/primitive_costs.hh"
#include "os/threads/sync.hh"
#include "os/threads/thread.hh"
#include "os/threads/thread_package.hh"

namespace aosd
{
namespace
{

// ---- cost model ------------------------------------------------------

TEST(ThreadCosts, StateWordsFollowTable6)
{
    MachineDesc sparc = makeMachine(MachineId::SPARC);
    EXPECT_EQ(threadStateWords(sparc, false), 136u + 6u);
    EXPECT_EQ(threadStateWords(sparc, true), 136u + 6u + 32u);
    MachineDesc vax = makeMachine(MachineId::CVAX);
    EXPECT_EQ(threadStateWords(vax, false), 17u);
}

TEST(ThreadCosts, SparcSwitchCostsTensOfCalls)
{
    // s4.1: "the cost of a thread context switch is 50 times that of
    // a procedure call" on the SPARC at 3 windows per switch.
    ThreadCosts c = computeThreadCosts(makeMachine(MachineId::SPARC));
    EXPECT_GT(c.switchToCallRatio(), 30.0);
    EXPECT_LT(c.switchToCallRatio(), 80.0);
}

TEST(ThreadCosts, SparcSwitchRequiresKernelTrap)
{
    // The CWP is privileged: the user switch embeds a syscall-priced
    // trap and so can never be cheaper than one.
    ThreadCosts c = computeThreadCosts(makeMachine(MachineId::SPARC));
    EXPECT_GE(c.userThreadSwitch,
              sharedCostDb().cycles(MachineId::SPARC,
                                    Primitive::NullSyscall));
}

TEST(ThreadCosts, FlatMachinesSwitchFasterThanSparc)
{
    Cycles sparc = computeThreadCosts(makeMachine(MachineId::SPARC))
                       .userThreadSwitch;
    for (MachineId id : {MachineId::R3000, MachineId::RS6000,
                         MachineId::CVAX}) {
        EXPECT_LT(computeThreadCosts(makeMachine(id)).userThreadSwitch,
                  sparc)
            << makeMachine(id).name;
    }
}

TEST(ThreadCosts, FpStateMakesSwitchesDearer)
{
    ThreadCostOptions fp;
    fp.fpInUse = true;
    for (MachineId id : {MachineId::R3000, MachineId::RS6000}) {
        MachineDesc m = makeMachine(id);
        EXPECT_GT(computeThreadCosts(m, fp).userThreadSwitch,
                  computeThreadCosts(m).userThreadSwitch)
            << m.name;
    }
}

TEST(ThreadCosts, SaveActiveOnlyHelpsFlatFilesNotWindows)
{
    ThreadCostOptions lean;
    lean.saveActiveOnly = true;
    MachineDesc mips = makeMachine(MachineId::R3000);
    EXPECT_LT(computeThreadCosts(mips, lean).userThreadSwitch,
              computeThreadCosts(mips).userThreadSwitch);
    MachineDesc sparc = makeMachine(MachineId::SPARC);
    EXPECT_EQ(computeThreadCosts(sparc, lean).userThreadSwitch,
              computeThreadCosts(sparc).userThreadSwitch);
}

TEST(ThreadCosts, UserCreateWithinPaperRange)
{
    // "new thread creation in 5-10 times the cost of a procedure
    // call" [Anderson et al. 89] — on flat machines.
    for (MachineId id : {MachineId::R3000, MachineId::M88000,
                         MachineId::RS6000}) {
        ThreadCosts c = computeThreadCosts(makeMachine(id));
        double ratio = static_cast<double>(c.userThreadCreate) /
                       static_cast<double>(c.procedureCall);
        EXPECT_GT(ratio, 3.0) << makeMachine(id).name;
        EXPECT_LT(ratio, 15.0) << makeMachine(id).name;
    }
}

TEST(ThreadCosts, KernelOpsCostMoreThanUserOps)
{
    for (const MachineDesc &m : allMachines()) {
        ThreadCosts c = computeThreadCosts(m);
        EXPECT_GT(c.kernelThreadCreate, c.userThreadCreate) << m.name;
    }
}

// ---- synchronization -------------------------------------------------

TEST(Sync, MipsMustTrap)
{
    EXPECT_EQ(naturalLockImpl(makeMachine(MachineId::R3000)),
              LockImpl::KernelTrap);
    EXPECT_EQ(naturalLockImpl(makeMachine(MachineId::SPARC)),
              LockImpl::AtomicInstruction);
}

TEST(Sync, CostOrdering)
{
    // atomic < Lamport < kernel trap, on machines that have all three.
    for (MachineId id : {MachineId::SPARC, MachineId::M88000,
                         MachineId::RS6000}) {
        MachineDesc m = makeMachine(id);
        Cycles atomic = lockPairCycles(m, LockImpl::AtomicInstruction);
        Cycles lamport =
            lockPairCycles(m, LockImpl::LamportSoftware);
        Cycles trap = lockPairCycles(m, LockImpl::KernelTrap);
        EXPECT_LT(atomic, lamport) << m.name;
        EXPECT_LT(lamport, trap) << m.name;
    }
}

TEST(Sync, LamportIsDozensOfCycles)
{
    Cycles c = lockPairCycles(makeMachine(MachineId::R3000),
                              LockImpl::LamportSoftware);
    EXPECT_GT(c, 20u);
    EXPECT_LT(c, 80u);
}

TEST(Sync, AtomicUnavailableOnMips)
{
    EXPECT_EQ(lockPairCycles(makeMachine(MachineId::R3000),
                             LockImpl::AtomicInstruction),
              0u);
}

TEST(Sync, FunctionalLockMutualExclusion)
{
    TestAndSetLock lock;
    EXPECT_TRUE(lock.tryAcquire(1));
    EXPECT_FALSE(lock.tryAcquire(2));
    lock.release(2); // non-holder release is ignored
    EXPECT_TRUE(lock.isHeld());
    lock.release(1);
    EXPECT_FALSE(lock.isHeld());
    EXPECT_TRUE(lock.tryAcquire(2));
    EXPECT_EQ(lock.acquireCount(), 2u);
}

// ---- thread package --------------------------------------------------

TEST(ThreadPackage, RunsAllWorkToCompletion)
{
    ThreadPackage pkg(makeMachine(MachineId::R3000), ThreadLevel::User);
    pkg.create({{100, -1}, {200, -1}});
    pkg.create({{300, -1}});
    pkg.runToCompletion();
    EXPECT_TRUE(pkg.allDone());
    EXPECT_EQ(pkg.stats().get("slices"), 3u);
    EXPECT_GE(pkg.elapsedCycles(), 600u);
}

TEST(ThreadPackage, ChargesCreatesAndSwitches)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ThreadPackage pkg(m, ThreadLevel::User);
    pkg.create({{10, -1}, {10, -1}});
    pkg.create({{10, -1}, {10, -1}});
    pkg.runToCompletion();
    // Round robin alternates threads: at least 3 switches.
    EXPECT_GE(pkg.stats().get("switches"), 3u);
    EXPECT_EQ(pkg.stats().get("creates"), 2u);
}

TEST(ThreadPackage, KernelLevelCostsMoreThanUserLevel)
{
    auto run = [](ThreadLevel level) {
        ThreadPackage pkg(makeMachine(MachineId::SPARC), level);
        for (int t = 0; t < 4; ++t) {
            std::vector<WorkSlice> slices(20, WorkSlice{50, -1});
            pkg.create(std::move(slices));
        }
        pkg.runToCompletion();
        return pkg.elapsedCycles();
    };
    EXPECT_GT(run(ThreadLevel::Kernel), 0u);
    // On the SPARC user switches embed a trap, but kernel ones carry
    // the full context-switch primitive: still dearer.
    EXPECT_GT(run(ThreadLevel::Kernel), run(ThreadLevel::User) / 2);
}

TEST(ThreadPackage, LocksAreMutuallyExclusiveAcrossYields)
{
    ThreadPackage pkg(makeMachine(MachineId::R3000), ThreadLevel::User);
    pkg.setLockCount(1);
    // Thread 0 holds the lock across a yield; thread 1 contends.
    pkg.create({{10, 0, true}, {10, -1}});
    pkg.create({{10, 0}, {10, -1}});
    pkg.runToCompletion();
    EXPECT_TRUE(pkg.allDone());
    EXPECT_GE(pkg.stats().get("lock_contended"), 1u);
    EXPECT_EQ(pkg.stats().get("lock_acquires"), 2u);
}

TEST(ThreadPackage, DeterministicAcrossRuns)
{
    auto run = [] {
        ThreadPackage pkg(makeMachine(MachineId::R3000),
                          ThreadLevel::User);
        pkg.setLockCount(2);
        pkg.create({{10, 0, true}, {20, 1}, {5, -1}});
        pkg.create({{15, 1}, {25, 0}});
        pkg.runToCompletion();
        return pkg.elapsedCycles();
    };
    EXPECT_EQ(run(), run());
}

TEST(ThreadPackageDeathTest, BadLockIdPanics)
{
    ThreadPackage pkg(makeMachine(MachineId::R3000), ThreadLevel::User);
    pkg.create({{10, 3}}); // no locks configured
    EXPECT_DEATH(pkg.runToCompletion(), "lock");
}

/** Property: finer grain never reduces elapsed time (overhead is
 *  monotone in the number of slices). */
class GrainTest
    : public ::testing::TestWithParam<std::tuple<MachineId, int>>
{
};

TEST_P(GrainTest, FinerGrainCostsMore)
{
    auto [id, level_int] = GetParam();
    auto level = static_cast<ThreadLevel>(level_int);
    MachineDesc m = makeMachine(id);
    auto elapsed = [&](Cycles grain) {
        ThreadPackage pkg(m, level);
        for (int t = 0; t < 4; ++t) {
            std::vector<WorkSlice> slices;
            for (Cycles done = 0; done < 10000; done += grain)
                slices.push_back({grain, -1});
            pkg.create(std::move(slices));
        }
        pkg.runToCompletion();
        return pkg.elapsedCycles();
    };
    Cycles coarse = elapsed(10000);
    Cycles medium = elapsed(1000);
    Cycles fine = elapsed(100);
    EXPECT_LE(coarse, medium);
    EXPECT_LE(medium, fine);
    // And the overhead is architecture-dependent: it must at least
    // include the per-switch cost times the extra switches.
    EXPECT_GT(fine, coarse);
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndLevels, GrainTest,
    ::testing::Combine(::testing::Values(MachineId::R3000,
                                         MachineId::SPARC,
                                         MachineId::CVAX,
                                         MachineId::RS6000),
                       ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<MachineId, int>>
           &info) {
        MachineDesc m = makeMachine(std::get<0>(info.param));
        std::string name = m.name;
        name += std::get<1>(info.param) == 0 ? "_user" : "_kernel";
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
} // namespace aosd
