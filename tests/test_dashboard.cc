/**
 * @file
 * The unified observability site: byte-identical pages at any job
 * count, a structure manifest matching the committed golden, the
 * internal-link/anchor check (including a negative case), bisect
 * annotations on the history page for an injected regression, and
 * graceful rendering when inputs are absent.
 *
 * Inputs come from the committed goldens (report, counters, profile,
 * spans), an in-test kernel-windows and traffic build, and the
 * committed bench/baselines perf database — so the site the suite
 * gates is assembled from the same documents CI regenerates.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machines.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/counters_report.hh"
#include "study/dashboard/dashboard.hh"
#include "study/trend_report.hh"
#include "workload/traffic.hh"

using namespace aosd;

namespace
{

std::string
sourcePath(const std::string &rel)
{
    return std::string(AOSD_SOURCE_DIR) + "/" + rel;
}

Json
loadJson(const std::string &rel)
{
    std::ifstream in(sourcePath(rel));
    EXPECT_TRUE(in) << "cannot read " << rel;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    Json doc = Json::parse(buf.str(), &error);
    EXPECT_TRUE(error.empty()) << rel << ": " << error;
    return doc;
}

/** The committed + in-test documents, built once per process: the
 *  kernel-windows and traffic builds are real simulations. */
struct SiteFixture
{
    Json report, counters, profile, spans, kernel_windows, traffic;
    PerfDb db;

    SiteFixture()
    {
        report = loadJson("tests/expected_report.json");
        counters = loadJson("tests/expected_counters.json");
        profile = loadJson("tests/expected_profile.json");
        spans = loadJson("tests/expected_spans.json");

        ParallelRunner runner(1);
        kernel_windows = buildKernelWindowsDoc(
            makeMachine(MachineId::R3000), runner);

        TrafficConfig cfg;
        cfg.requestsPerLevel = 400;
        cfg.levels = {0.5, 1.1};
        cfg.machines = {MachineId::CVAX, MachineId::R3000};
        traffic = buildTrafficDoc(cfg, runner);

        std::string error;
        EXPECT_TRUE(db.load(
            sourcePath("bench/baselines/perfdb.jsonl"), &error))
            << error;
    }

    DashboardInputs
    inputs() const
    {
        DashboardInputs in;
        in.report = &report;
        in.counters = &counters;
        in.kernelWindows = &kernel_windows;
        in.profile = &profile;
        in.spans = &spans;
        in.traffic = {&traffic};
        in.db = &db;
        return in;
    }
};

const SiteFixture &
fixture()
{
    static SiteFixture f;
    return f;
}

DashboardSite
buildSite(unsigned jobs)
{
    ParallelRunner runner(jobs);
    return buildDashboardSite(fixture().inputs(), DashboardOptions{},
                              runner);
}

class DashboardTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }
};

TEST_F(DashboardTest, SiteIsByteIdenticalAcrossJobs)
{
    DashboardSite serial = buildSite(1);
    DashboardSite fanned = buildSite(8);
    ASSERT_EQ(serial.pages.size(), fanned.pages.size());
    for (std::size_t i = 0; i < serial.pages.size(); ++i) {
        EXPECT_EQ(serial.pages[i].file, fanned.pages[i].file);
        EXPECT_EQ(serial.pages[i].html, fanned.pages[i].html)
            << serial.pages[i].file;
    }
    EXPECT_EQ(serial.manifest.dump(1), fanned.manifest.dump(1));
}

TEST_F(DashboardTest, ManifestMatchesCommittedGolden)
{
    // The golden pins the site's *structure* — page inventory,
    // anchor/link counts, input cell counts — not figure values,
    // so it survives timing retunes but trips on layout drift.
    // Refresh: run this test alone (gtest_filter on its name from
    // the build directory) and copy the printed manifest into
    // tests/expected_dashboard.json.
    DashboardSite site = buildSite(1);
    std::string want;
    {
        std::ifstream in(sourcePath("tests/expected_dashboard.json"));
        std::ostringstream buf;
        buf << in.rdbuf();
        want = buf.str();
    }
    std::string got = site.manifest.dump(1) + "\n";
    EXPECT_EQ(got, want) << "manifest drifted; if intentional, "
                            "refresh the golden:\n"
                         << got;
}

TEST_F(DashboardTest, EveryPageRendersEveryInput)
{
    DashboardSite site = buildSite(1);
    ASSERT_EQ(site.pages.size(), 5u);

    const std::string &overview = site.pages[0].html;
    // All gates green on golden inputs.
    EXPECT_EQ(overview.find("FAIL"), std::string::npos);
    EXPECT_NE(overview.find("PASS"), std::string::npos);

    const std::string &tables = site.pages[1].html;
    // Table 1 cells drill into the counters reconciliation.
    EXPECT_NE(tables.find("href=\"#ctr-R3000-null_syscall\""),
              std::string::npos);
    EXPECT_NE(tables.find("id=\"ctr-R3000-null_syscall\""),
              std::string::npos);
    // Table 7 rows drill into kernel windows (hyphenated workload
    // slugs map onto the underscore cell names).
    EXPECT_NE(tables.find("id=\"kw-spellcheck_1.mach25\""),
              std::string::npos);

    const std::string &latency = site.pages[2].html;
    // One chart per sweep machine with the queue-depth overlay.
    EXPECT_NE(latency.find("id=\"lat-open-uniform-CVAX\""),
              std::string::npos);
    EXPECT_NE(latency.find("id=\"lat-open-uniform-R3000\""),
              std::string::npos);
    EXPECT_NE(latency.find("max queue"), std::string::npos);

    const std::string &spans_page = site.pages[3].html;
    EXPECT_NE(spans_page.find("id=\"spans-R3000-null_syscall\""),
              std::string::npos);
    EXPECT_NE(spans_page.find("class=\"fn"), std::string::npos);

    const std::string &history = site.pages[4].html;
    EXPECT_NE(history.find("id=\"records\""), std::string::npos);
    // Per-metric sparkline rows render as inline SVG.
    EXPECT_NE(history.find("<svg"), std::string::npos);
}

TEST_F(DashboardTest, InternalLinksResolve)
{
    DashboardSite site = buildSite(1);
    std::vector<std::string> problems = validateDashboardLinks(site);
    EXPECT_TRUE(problems.empty())
        << problems.size() << " problem(s), first: " << problems[0];
}

TEST_F(DashboardTest, LinkCheckCatchesDanglingReferences)
{
    DashboardSite site = buildSite(1);
    site.pages[0].html +=
        "<a href=\"tables.html#no-such-anchor\">x</a>";
    site.pages[1].html += "<a href=\"missing.html\">y</a>";
    std::vector<std::string> problems = validateDashboardLinks(site);
    ASSERT_EQ(problems.size(), 2u);
    EXPECT_NE(problems[0].find("no-such-anchor"), std::string::npos);
    EXPECT_NE(problems[1].find("missing.html"), std::string::npos);
}

TEST_F(DashboardTest, HistoryAnnotatesFlagsWithBisectFindings)
{
    // A database of healthy runs plus one run with an ablated trap
    // cost: the history page must flag the moved metrics and name
    // the injected event class in the bisect annotation — the same
    // walk as aosd_trend check + aosd_bisect, rendered.
    MachineDesc base = makeMachine(MachineId::R3000);
    MachineDesc ablated = base;
    ablated.timing.trapEnterCycles += 40;

    std::vector<CountedPrimitiveRun> healthy_runs =
        countAllPrimitives({base}, 4);
    Json healthy = buildCountersDoc(healthy_runs, 4);
    std::vector<CountedPrimitiveRun> regressed_runs =
        countAllPrimitives({ablated}, 4);
    Json regressed = buildCountersDoc(regressed_runs, 4);

    PerfDb db;
    for (int i = 0; i < 3; ++i) {
        PerfDbRecordInputs in;
        in.counters = &healthy;
        ASSERT_TRUE(db.append(buildPerfDbRecord(
            "good" + std::to_string(i), "t" + std::to_string(i),
            "h", "f", in)));
    }
    PerfDbRecordInputs in;
    in.counters = &regressed;
    ASSERT_TRUE(
        db.append(buildPerfDbRecord("bad", "t3", "h", "f", in)));

    DashboardInputs dash_in;
    dash_in.db = &db;
    ParallelRunner runner(1);
    DashboardSite site =
        buildDashboardSite(dash_in, DashboardOptions{}, runner);
    EXPECT_TRUE(validateDashboardLinks(site).empty());

    const std::string &history = site.pages[4].html;
    EXPECT_NE(history.find("bad@t3"), std::string::npos);
    EXPECT_NE(history.find("bisect:"), std::string::npos);
    EXPECT_NE(history.find("trap_enters"), std::string::npos);
    EXPECT_NE(history.find("FLAGGED"), std::string::npos);
    // The overview gate table reports the flags too.
    EXPECT_NE(site.pages[0].html.find("flag(s)"),
              std::string::npos);
    EXPECT_NE(site.pages[0].html.find("FAIL"), std::string::npos);
}

TEST_F(DashboardTest, AbsentInputsStillRenderACompleteSite)
{
    DashboardInputs in; // nothing provided
    ParallelRunner runner(1);
    DashboardSite site =
        buildDashboardSite(in, DashboardOptions{}, runner);
    ASSERT_EQ(site.pages.size(), 5u);
    EXPECT_TRUE(validateDashboardLinks(site).empty());
    for (const DashboardPage &p : site.pages)
        EXPECT_FALSE(p.html.empty()) << p.file;
    // The manifest records the absences.
    EXPECT_FALSE(site.manifest.at("inputs")
                     .at("report")
                     .at("present")
                     .asBool());
    EXPECT_FALSE(site.manifest.at("inputs")
                     .at("history")
                     .at("present")
                     .asBool());
    EXPECT_EQ(site.manifest.at("inputs").at("traffic").size(), 0u);
}

TEST_F(DashboardTest, WriteSiteEmitsPagesAndManifest)
{
    DashboardInputs in;
    ParallelRunner runner(1);
    DashboardSite site =
        buildDashboardSite(in, DashboardOptions{}, runner);

    std::string dir = ::testing::TempDir() + "aosd_dashboard_test";
    std::string error;
    ASSERT_TRUE(writeDashboardSite(site, dir, &error)) << error;
    for (const char *name :
         {"index.html", "tables.html", "latency.html", "spans.html",
          "history.html", "manifest.json"})
        EXPECT_TRUE(
            std::filesystem::exists(dir + "/" + name))
            << name;
    std::filesystem::remove_all(dir);
}

} // namespace
