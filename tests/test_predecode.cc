/**
 * @file
 * Tests for the pre-decoded superblock execution layer
 * (cpu/decoded_program.hh): the decoded fast path must be
 * indistinguishable from the interpreter in every observable —
 * cycles, instructions, per-phase breakdowns, hardware-counter
 * bumps, profiler attribution, and whole-workload kernel runs —
 * across every machine, primitive, and architecture-fix variant.
 * The same suite runs (and must pass) on a compiled-out
 * (-DAOSD_DISABLE_PREDECODE=ON) build, where predecodeEnabled() is
 * constant false and every dispatch takes the interpreter.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "cpu/decoded_program.hh"
#include "cpu/exec_model.hh"
#include "cpu/handler_variants.hh"
#include "cpu/handlers.hh"
#include "os/kernel/kernel.hh"
#include "sim/counters/counters.hh"
#include "sim/profile/profile.hh"
#include "workload/app_profile.hh"
#include "workload/os_model.hh"

namespace aosd
{
namespace
{

/** Restore predecode/counter/profiler state around each test. */
class PredecodeTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        setPredecodeEnabled(true);
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        Profiler::instance().disable();
        Profiler::instance().clear();
    }
};

void
expectBreakdownEq(const CycleBreakdown &a, const CycleBreakdown &b)
{
    EXPECT_EQ(a.base, b.base);
    EXPECT_EQ(a.writeBufferStall, b.writeBufferStall);
    EXPECT_EQ(a.cacheMissStall, b.cacheMissStall);
    EXPECT_EQ(a.uncached, b.uncached);
    EXPECT_EQ(a.ctrlReg, b.ctrlReg);
    EXPECT_EQ(a.microcode, b.microcode);
    EXPECT_EQ(a.tlbOps, b.tlbOps);
    EXPECT_EQ(a.cacheMaintenance, b.cacheMaintenance);
    EXPECT_EQ(a.trapHardware, b.trapHardware);
    EXPECT_EQ(a.fpuSync, b.fpuSync);
}

void
expectResultsEq(const ExecResult &interp, const ExecResult &decoded)
{
    EXPECT_EQ(interp.cycles, decoded.cycles);
    EXPECT_EQ(interp.instructions, decoded.instructions);
    expectBreakdownEq(interp.breakdown, decoded.breakdown);
    ASSERT_EQ(interp.phases.size(), decoded.phases.size());
    for (std::size_t i = 0; i < interp.phases.size(); ++i) {
        EXPECT_EQ(interp.phases[i].kind, decoded.phases[i].kind);
        EXPECT_EQ(interp.phases[i].cycles, decoded.phases[i].cycles);
        EXPECT_EQ(interp.phases[i].instructions,
                  decoded.phases[i].instructions);
        expectBreakdownEq(interp.phases[i].breakdown,
                          decoded.phases[i].breakdown);
    }
}

// ---- interpreter equivalence --------------------------------------

TEST_F(PredecodeTest, DecodedMatchesInterpreterEveryPair)
{
    for (const MachineDesc &m : allMachines()) {
        for (Primitive p : allPrimitives) {
            SCOPED_TRACE(std::string(m.name) + "/" + primitiveName(p));
            ExecModel exec(m);
            ExecResult interp = exec.run(cachedHandler(m, p));
            exec.reset();
            ExecResult decoded =
                exec.runDecoded(cachedDecodedHandler(m, p));
            expectResultsEq(interp, decoded);
        }
    }
}

TEST_F(PredecodeTest, DecodedCounterBumpsMatchInterpreter)
{
    HwCounters &c = HwCounters::instance();
    for (const MachineDesc &m : allMachines()) {
        for (Primitive p : allPrimitives) {
            SCOPED_TRACE(std::string(m.name) + "/" + primitiveName(p));
            ExecModel exec(m);
            c.enable();
            exec.run(cachedHandler(m, p));
            CounterSet interp = c.snapshot();
            exec.reset();
            c.enable();
            exec.runDecoded(cachedDecodedHandler(m, p));
            CounterSet decoded = c.snapshot();
            c.disable();
            EXPECT_EQ(interp, decoded);
        }
    }
}

TEST_F(PredecodeTest, DecodedProfileAttributionMatchesInterpreter)
{
    MachineDesc m = makeMachine(MachineId::SPARC);
    Profiler &prof = Profiler::instance();
    ExecModel exec(m);

    prof.enable();
    exec.run(cachedHandler(m, Primitive::ContextSwitch));
    prof.disable();
    Json interp = prof.toJson();
    prof.clear();

    exec.reset();
    prof.enable();
    exec.runDecoded(
        cachedDecodedHandler(m, Primitive::ContextSwitch));
    prof.disable();
    Json decoded = prof.toJson();
    prof.clear();

    EXPECT_EQ(interp.dump(), decoded.dump());
}

TEST_F(PredecodeTest, RunPrimitiveMatchesBothModes)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ExecModel exec(m);
    ExecResult ref = exec.run(cachedHandler(m, Primitive::Trap));

    exec.reset();
    ExecResult fast = exec.runPrimitive(Primitive::Trap);
    expectResultsEq(ref, fast);

    setPredecodeEnabled(false);
    exec.reset();
    ExecResult slow = exec.runPrimitive(Primitive::Trap);
    expectResultsEq(ref, slow);
}

// ---- handler-variant equivalence ----------------------------------

TEST_F(PredecodeTest, DecodedVariantsMatchInterpreter)
{
    for (ArchFix fix : allArchFixes) {
        for (const MachineDesc &m : allMachines()) {
            for (Primitive p : allPrimitives) {
                if (!archFixApplies(fix, m.id, p))
                    continue;
                SCOPED_TRACE(std::string(archFixName(fix)) + " " +
                             m.name);
                ExecModel exec(m);
                ExecResult interp =
                    exec.run(buildImprovedHandler(m, p, fix));
                exec.reset();
                ExecResult decoded =
                    exec.runDecoded(cachedDecodedVariant(m, p, fix));
                expectResultsEq(interp, decoded);
            }
        }
    }
}

// ---- decode-cache invalidation ------------------------------------

TEST_F(PredecodeTest, CacheRecompilesForModifiedDesc)
{
    MachineDesc stock = makeMachine(MachineId::R3000);
    const DecodedProgram &before =
        cachedDecodedHandler(stock, Primitive::Trap);
    Cycles stock_trap = before.phases.front().constBreakdown.total();

    // An ablation-style modified desc under the same machine id must
    // recompile (and replace) the cached entry, not serve stale
    // constants.
    MachineDesc tweaked = stock;
    tweaked.timing.trapEnterCycles += 7;
    const DecodedProgram &modified =
        cachedDecodedHandler(tweaked, Primitive::Trap);
    Cycles tweaked_trap =
        modified.phases.front().constBreakdown.total();
    EXPECT_EQ(tweaked_trap, stock_trap + 7);

    // And asking for the stock desc again recompiles back.
    const DecodedProgram &again =
        cachedDecodedHandler(stock, Primitive::Trap);
    EXPECT_EQ(again.phases.front().constBreakdown.total(), stock_trap);
}

TEST_F(PredecodeTest, VariantCacheRecompilesForModifiedDesc)
{
    MachineDesc stock = makeMachine(MachineId::I860);
    Cycles before = cachedDecodedVariant(stock, Primitive::Trap,
                                         ArchFix::FaultAddressRegister)
                        .phases.front()
                        .constBreakdown.total();
    MachineDesc tweaked = stock;
    tweaked.timing.trapEnterCycles += 5;
    Cycles after = cachedDecodedVariant(tweaked, Primitive::Trap,
                                        ArchFix::FaultAddressRegister)
                       .phases.front()
                       .constBreakdown.total();
    EXPECT_EQ(after, before + 5);
}

// ---- the kernel's constant-folded streams -------------------------

TEST_F(PredecodeTest, TasSequenceDecodesToTheModeledConstant)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    InstrStream tas;
    tas.trapEnter(false)
        .microcoded(emulatedTasSequenceCycles)
        .trapReturn();
    DecodedPhase dp = decodeStream(m, tas);
    EXPECT_TRUE(dp.steps.empty());
    EXPECT_EQ(dp.tailCycles, m.timing.trapEnterCycles +
                                 m.timing.trapReturnCycles +
                                 emulatedTasSequenceCycles);

    // And the interpreter agrees (the stream is stateless).
    ExecModel exec(m);
    EXPECT_EQ(exec.runStream(tas).cycles, dp.tailCycles);
}

TEST_F(PredecodeTest, TlbRefillSeqTotalsEqualTheMissConstants)
{
    for (MachineId id : {MachineId::R2000, MachineId::R3000}) {
        MachineDesc m = makeMachine(id);
        ASSERT_EQ(m.tlb.management, TlbManagement::Software);
        for (bool kernel : {false, true}) {
            SCOPED_TRACE(std::string(m.name) +
                         (kernel ? " kernel" : " user"));
            Cycles want = kernel ? m.tlb.swKernelMissCycles
                                 : m.tlb.swUserMissCycles;
            InstrStream seq = tlbRefillSeq(m, kernel);
            DecodedPhase dp = decodeStream(m, seq);
            EXPECT_TRUE(dp.steps.empty());
            EXPECT_EQ(dp.tailCycles, want);
            ExecModel exec(m);
            EXPECT_EQ(exec.runStream(seq).cycles, want);
        }
    }
}

TEST(PredecodeDeathTest, TlbRefillSeqPanicsOnHardwareTlb)
{
    MachineDesc cvax = makeMachine(MachineId::CVAX);
    ASSERT_EQ(cvax.tlb.management, TlbManagement::Hardware);
    EXPECT_DEATH(tlbRefillSeq(cvax, false), "hardware-managed");
}

// ---- whole-kernel on/off equality ---------------------------------

TEST_F(PredecodeTest, WorkloadRunIdenticalWithPredecodeOff)
{
    const MachineDesc m = makeMachine(MachineId::R3000);
    AppProfile app = workloadByName("spellcheck-1");

    auto run = [&] {
        MachSystem sys(m, OsStructure::SmallKernel);
        return sys.run(app);
    };
    Table7Row fast = run();
    setPredecodeEnabled(false);
    Table7Row slow = run();

    EXPECT_EQ(fast.elapsedSeconds, slow.elapsedSeconds);
    EXPECT_EQ(fast.systemCalls, slow.systemCalls);
    EXPECT_EQ(fast.addressSpaceSwitches, slow.addressSpaceSwitches);
    EXPECT_EQ(fast.threadSwitches, slow.threadSwitches);
    EXPECT_EQ(fast.emulatedInstructions, slow.emulatedInstructions);
    EXPECT_EQ(fast.kernelTlbMisses, slow.kernelTlbMisses);
    EXPECT_EQ(fast.otherExceptions, slow.otherExceptions);
    EXPECT_EQ(fast.percentTimeInPrimitives,
              slow.percentTimeInPrimitives);
}

// ---- the switch itself --------------------------------------------

TEST_F(PredecodeTest, ToggleOnlyActsWhenCompiledIn)
{
    if (predecodeCompiledIn()) {
        EXPECT_TRUE(predecodeEnabled());
        setPredecodeEnabled(false);
        EXPECT_FALSE(predecodeEnabled());
        setPredecodeEnabled(true);
        EXPECT_TRUE(predecodeEnabled());
    } else {
        setPredecodeEnabled(true);
        EXPECT_FALSE(predecodeEnabled());
    }
}

} // namespace
} // namespace aosd
