/**
 * @file
 * Integration tests for the Study API and cross-module consistency:
 * each table's entry point produces complete, internally consistent
 * data matching the lower-level modules it is built on.
 */

#include <gtest/gtest.h>

#include "core/study.hh"
#include "cpu/primitive_costs.hh"
#include "arch/machines.hh"

namespace aosd
{
namespace
{

TEST(Study, PrimitivesCoverEveryMachineAndPrimitive)
{
    auto rows = Study::primitives();
    EXPECT_EQ(rows.size(), allMachines().size() * 4u);
    for (const auto &r : rows) {
        EXPECT_GT(r.simMicros, 0.0) << r.machineName;
        EXPECT_GT(r.simInstructions, 0u) << r.machineName;
        EXPECT_GT(r.relativeToCvax, 0.0);
    }
}

TEST(Study, PrimitivesMatchCostDb)
{
    const PrimitiveCostDb &db = sharedCostDb();
    for (const auto &r : Study::primitives()) {
        EXPECT_DOUBLE_EQ(r.simMicros, db.micros(r.machine,
                                                r.primitive));
        EXPECT_EQ(r.simInstructions,
                  db.instructions(r.machine, r.primitive));
    }
}

TEST(Study, SyscallAnatomySumsToSyscallTime)
{
    const PrimitiveCostDb &db = sharedCostDb();
    for (MachineId id :
         {MachineId::CVAX, MachineId::R2000, MachineId::SPARC}) {
        double total = 0;
        for (const auto &r : Study::syscallAnatomy())
            if (r.machine == id)
                total += r.simMicros;
        EXPECT_NEAR(total, db.micros(id, Primitive::NullSyscall), 0.01)
            << static_cast<int>(id);
    }
}

TEST(Study, ThreadStateMatchesTable6)
{
    auto rows = Study::threadState();
    ASSERT_EQ(rows.size(), 6u);
    // Spot-check the SPARC row.
    bool found = false;
    for (const auto &r : rows) {
        if (r.machine != MachineId::SPARC)
            continue;
        found = true;
        EXPECT_EQ(r.registers, 136u);
        EXPECT_EQ(r.fpState, 32u);
        EXPECT_EQ(r.miscState, 6u);
    }
    EXPECT_TRUE(found);
}

TEST(Study, SrcRpcDefaultsToCvaxSmallPacket)
{
    RpcBreakdown b = Study::srcRpc();
    EXPECT_GT(b.totalUs(), 500.0);
    EXPECT_LT(b.totalUs(), 1500.0);
}

TEST(Study, LrpcDefaultsToCvax)
{
    LrpcBreakdown b = Study::lrpc();
    EXPECT_NEAR(b.totalUs(), 157.0, 30.0);
}

TEST(Study, MachStudyProducesFourteenRows)
{
    auto rows = Study::machStudy();
    EXPECT_EQ(rows.size(), 14u);
    int mono = 0, micro = 0;
    for (const auto &r : rows) {
        if (r.structure == OsStructure::Monolithic)
            ++mono;
        else
            ++micro;
    }
    EXPECT_EQ(mono, 7);
    EXPECT_EQ(micro, 7);
}

TEST(Study, MachRowMatchesStandaloneRun)
{
    Table7Row a = Study::machRow("latex-150", OsStructure::Monolithic);
    Table7Row b = Study::machRow("latex-150", OsStructure::Monolithic);
    EXPECT_EQ(a.systemCalls, b.systemCalls);
    EXPECT_EQ(a.kernelTlbMisses, b.kernelTlbMisses);
}

TEST(SharedCostDb, IsASingleton)
{
    EXPECT_EQ(&sharedCostDb(), &sharedCostDb());
}

TEST(SharedCostDb, MachineLookupReturnsRightDesc)
{
    EXPECT_EQ(sharedCostDb().machine(MachineId::SPARC).name, "SPARC");
    EXPECT_EQ(sharedCostDb().machine(MachineId::CVAX).id,
              MachineId::CVAX);
}

} // namespace
} // namespace aosd
