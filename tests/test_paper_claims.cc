/**
 * @file
 * End-to-end tests of quantitative claims the paper makes in prose —
 * the cross-cutting checks that tie multiple subsystems together.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "core/study.hh"
#include "cpu/primitive_costs.hh"
#include "sim/logging.hh"

namespace aosd
{
namespace
{

TEST(PaperClaims, SparcOverheadForAndrewRemoteOnMach30)
{
    // s5: "a SPARC would spend 9.4 seconds just in the overhead for
    // system calls and context switches in executing the remote
    // Andrew script on Mach 3.0" (Tables 1 and 7 combined).
    Table7Row r =
        Study::machRow("andrew-remote", OsStructure::SmallKernel);
    const PrimitiveCostDb &db = sharedCostDb();
    double seconds =
        (static_cast<double>(r.systemCalls) *
             db.micros(MachineId::SPARC, Primitive::NullSyscall) +
         static_cast<double>(r.addressSpaceSwitches) *
             db.micros(MachineId::SPARC, Primitive::ContextSwitch)) /
        1e6;
    EXPECT_NEAR(seconds, 9.4, 1.5);
}

TEST(PaperClaims, R2000SyscallCyclesVsCvax)
{
    // s2.3: "The MIPS R2000 requires 15% fewer cycles than the CVAX
    // for a system call."
    const PrimitiveCostDb &db = sharedCostDb();
    double r2000 = static_cast<double>(
        db.cycles(MachineId::R2000, Primitive::NullSyscall));
    double cvax = static_cast<double>(
        db.cycles(MachineId::CVAX, Primitive::NullSyscall));
    EXPECT_NEAR(r2000 / cvax, 0.85, 0.06);
}

TEST(PaperClaims, SparcWindowTimePerContextSwitch)
{
    // s4.1: "12.8 useconds per window" at 3 save/restores per switch,
    // i.e. ~38 of the 53.9 us switch.
    const PrimitiveCostDb &db = sharedCostDb();
    double total = db.micros(MachineId::SPARC,
                             Primitive::ContextSwitch);
    // Window share asserted at 60-90% elsewhere; per-window time:
    double per_window = total * 0.75 / 3.0;
    EXPECT_NEAR(per_window, 12.8, 2.5);
}

TEST(PaperClaims, RelativeSpeedTableShape)
{
    // Table 1 right half, spot-checked against the paper's printed
    // ratios (tolerance 0.4).
    const PrimitiveCostDb &db = sharedCostDb();
    struct Row
    {
        MachineId m;
        Primitive p;
        double ratio;
    };
    const Row rows[] = {
        {MachineId::M88000, Primitive::NullSyscall, 1.3},
        {MachineId::R2000, Primitive::NullSyscall, 1.8},
        {MachineId::R3000, Primitive::NullSyscall, 3.9},
        {MachineId::SPARC, Primitive::NullSyscall, 1.0},
        {MachineId::R3000, Primitive::Trap, 4.4},
        {MachineId::SPARC, Primitive::ContextSwitch, 0.5},
        {MachineId::M88000, Primitive::PteChange, 2.3},
    };
    for (const Row &r : rows)
        EXPECT_NEAR(db.relativeToCvax(r.m, r.p), r.ratio, 0.4)
            << db.machine(r.m).name;
}

TEST(PaperClaims, ParthenonKernelSyncShare)
{
    // s4.1: parthenon "spends roughly 1/5 of its time synchronizing
    // through the kernel" on the R3000.
    Table7Row r = Study::machRow("parthenon (1 thread)",
                                 OsStructure::Monolithic);
    // Our emulated test&set charges land in primitive time.
    const MachineDesc &m = sharedCostDb().machine(MachineId::R3000);
    double tas_us = static_cast<double>(r.emulatedInstructions) *
                    m.clock.cyclesToMicros(
                        m.timing.trapEnterCycles +
                        m.timing.trapReturnCycles + 70);
    double share = tas_us / (r.elapsedSeconds * 1e6);
    EXPECT_GT(share, 0.12);
    EXPECT_LT(share, 0.28);
}

TEST(PaperClaims, KernelizedOsIncreasesTlbDemand)
{
    // s3.2: "kernelized operating systems will increase the demand
    // for tag bits and TLB size" — same workload, bigger TLB helps
    // the decomposed system much more than the monolithic one.
    MachineDesc small = makeMachine(MachineId::R3000);
    MachineDesc big = small;
    big.tlb.entries = 256;
    auto misses = [&](const MachineDesc &m, OsStructure s) {
        MachSystem sys(m, s);
        return sys.run(workloadByName("latex-150")).kernelTlbMisses;
    };
    double mono_gain =
        static_cast<double>(misses(small, OsStructure::Monolithic)) /
        static_cast<double>(
            std::max<std::uint64_t>(
                misses(big, OsStructure::Monolithic), 1));
    double micro_gain =
        static_cast<double>(misses(small, OsStructure::SmallKernel)) /
        static_cast<double>(
            std::max<std::uint64_t>(
                misses(big, OsStructure::SmallKernel), 1));
    EXPECT_GT(micro_gain, mono_gain);
}

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(csprintf("%s", ""), "");
}

} // namespace
} // namespace aosd
