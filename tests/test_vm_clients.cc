/**
 * @file
 * Tests for the §3 VM-overloading clients: GC barrier, incremental
 * checkpoint, transaction locking.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/vm/vm_clients.hh"

namespace aosd
{
namespace
{

class VmClientTest : public ::testing::Test
{
  protected:
    VmClientTest()
        : kernel(makeMachine(MachineId::R3000)), vm(kernel),
          space(kernel.createSpace("client"))
    {
        PageProt rw;
        rw.writable = true;
        vm.mapZeroFill(space, 0x100, 16, rw);
    }

    SimKernel kernel;
    VmManager vm;
    AddressSpace &space;
};

// ---- GC barrier --------------------------------------------------------

TEST_F(VmClientTest, GcScansPagesOnFirstTouch)
{
    GcBarrier gc(vm, space);
    gc.startCollection(0x100, 16);
    EXPECT_FALSE(gc.collectionDone());
    gc.mutatorAccess(0x105, false);
    EXPECT_EQ(gc.scannedPages(), 1u);
    // Second access to the same page does not fault again.
    std::uint64_t traps = kernel.stats().get(kstat::traps);
    gc.mutatorAccess(0x105, true);
    EXPECT_EQ(kernel.stats().get(kstat::traps), traps);
    EXPECT_EQ(gc.scannedPages(), 1u);
}

TEST_F(VmClientTest, GcCollectionCompletes)
{
    GcBarrier gc(vm, space);
    gc.startCollection(0x100, 16);
    for (Vpn v = 0; v < 16; ++v)
        gc.mutatorAccess(0x100 + v, v % 2 == 0);
    EXPECT_TRUE(gc.collectionDone());
    EXPECT_EQ(gc.scannedPages(), 16u);
}

TEST_F(VmClientTest, GcFaultsChargeScanWork)
{
    GcBarrier gc(vm, space);
    gc.startCollection(0x100, 16);
    kernel.resetAccounting();
    gc.mutatorAccess(0x100, false);
    // Trap + 2 crossings + PTE-ish work + the scan itself.
    EXPECT_GT(kernel.elapsedCycles(),
              GcBarrier::scanInstructionsPerPage / 4);
    EXPECT_EQ(kernel.stats().get("reflected_faults"), 1u);
}

TEST_F(VmClientTest, GcRestartResetsProgress)
{
    GcBarrier gc(vm, space);
    gc.startCollection(0x100, 16);
    gc.mutatorAccess(0x100, false);
    gc.startCollection(0x100, 16);
    EXPECT_EQ(gc.scannedPages(), 0u);
    // The page is protected again: the next touch faults.
    std::uint64_t reflected = kernel.stats().get("reflected_faults");
    gc.mutatorAccess(0x100, false);
    EXPECT_EQ(kernel.stats().get("reflected_faults"), reflected + 1);
}

// ---- incremental checkpoint ---------------------------------------------

TEST_F(VmClientTest, CheckpointCopiesOnlyWrittenPages)
{
    IncrementalCheckpoint ckpt(vm, space);
    ckpt.begin(0x100, 16);
    ckpt.applicationWrite(0x101);
    ckpt.applicationWrite(0x102);
    ckpt.applicationWrite(0x101); // already copied
    EXPECT_EQ(ckpt.copiedPages(), 2u);
    EXPECT_EQ(ckpt.cleanPages(), 14u);
}

TEST_F(VmClientTest, CheckpointWriteIsFastAfterCopy)
{
    IncrementalCheckpoint ckpt(vm, space);
    ckpt.begin(0x100, 16);
    ckpt.applicationWrite(0x101);
    Cycles after_first = kernel.elapsedCycles();
    ckpt.applicationWrite(0x101);
    // No new fault or copy.
    EXPECT_EQ(kernel.elapsedCycles(), after_first);
}

TEST_F(VmClientTest, CheckpointReadsNeverFault)
{
    IncrementalCheckpoint ckpt(vm, space);
    ckpt.begin(0x100, 16);
    kernel.resetAccounting();
    EXPECT_EQ(vm.access(space, 0x103, false), FaultResult::Resolved);
    EXPECT_EQ(kernel.stats().get(kstat::traps), 0u);
}

// ---- transactions ---------------------------------------------------------

TEST_F(VmClientTest, TransactionReadThenCommit)
{
    TransactionVm tx(vm, space, 0x100, 16);
    auto t1 = tx.begin();
    EXPECT_TRUE(tx.read(t1, 0x100));
    EXPECT_TRUE(tx.read(t1, 0x100)); // re-read: no new fault
    EXPECT_EQ(tx.lockFaults(), 1u);
    tx.commit(t1);
    EXPECT_EQ(tx.aborts(), 0u);
}

TEST_F(VmClientTest, ReadersShareWritersExclude)
{
    TransactionVm tx(vm, space, 0x100, 16);
    auto t1 = tx.begin();
    auto t2 = tx.begin();
    EXPECT_TRUE(tx.read(t1, 0x100));
    EXPECT_TRUE(tx.read(t2, 0x100)); // shared read lock
    // t2 cannot upgrade while t1 reads: t2 aborts.
    EXPECT_FALSE(tx.write(t2, 0x100));
    EXPECT_EQ(tx.aborts(), 1u);
    // t1 can now upgrade (sole reader).
    EXPECT_TRUE(tx.write(t1, 0x100));
    tx.commit(t1);
}

TEST_F(VmClientTest, WriterBlocksLaterReaders)
{
    TransactionVm tx(vm, space, 0x100, 16);
    auto t1 = tx.begin();
    auto t2 = tx.begin();
    EXPECT_TRUE(tx.write(t1, 0x104));
    EXPECT_FALSE(tx.read(t2, 0x104)); // conflicts: t2 aborts
    EXPECT_EQ(tx.aborts(), 1u);
    // Operations on a dead transaction fail.
    EXPECT_FALSE(tx.read(t2, 0x105));
}

TEST_F(VmClientTest, CommitReleasesLocksForNextTransaction)
{
    TransactionVm tx(vm, space, 0x100, 16);
    auto t1 = tx.begin();
    EXPECT_TRUE(tx.write(t1, 0x100));
    tx.commit(t1);
    auto t2 = tx.begin();
    EXPECT_TRUE(tx.write(t2, 0x100));
    tx.commit(t2);
    EXPECT_EQ(tx.aborts(), 0u);
    // Each write re-faulted (locks were released between).
    EXPECT_EQ(tx.lockFaults(), 2u);
}

TEST_F(VmClientTest, TransactionFaultsChargePrimitives)
{
    TransactionVm tx(vm, space, 0x100, 16);
    kernel.resetAccounting();
    auto t1 = tx.begin();
    tx.read(t1, 0x100);
    tx.write(t1, 0x101);
    EXPECT_EQ(kernel.stats().get(kstat::traps), 2u);
    EXPECT_GE(kernel.stats().get(kstat::pteChanges), 2u);
}

} // namespace
} // namespace aosd
