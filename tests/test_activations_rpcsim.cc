/**
 * @file
 * Tests for scheduler activations (§4 extension) and the executed
 * two-node RPC simulation (cross-validation of the Table 3 model).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/ipc/rpc_sim.hh"
#include "os/threads/activations.hh"

namespace aosd
{
namespace
{

// ---- scheduler activations ---------------------------------------------

TEST(Activations, NaiveUserThreadsIdleOnIo)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ActivationsResult naive =
        runIoWorkload(m, ThreadModel::UserThreadsBlocking);
    EXPECT_GT(naive.idleFraction, 0.15);
    ActivationsResult act =
        runIoWorkload(m, ThreadModel::SchedulerActivations);
    EXPECT_LT(act.idleFraction, 0.05);
}

TEST(Activations, ActivationsBeatNaiveUserThreads)
{
    for (MachineId id : {MachineId::R3000, MachineId::SPARC,
                         MachineId::CVAX}) {
        MachineDesc m = makeMachine(id);
        double naive =
            runIoWorkload(m, ThreadModel::UserThreadsBlocking)
                .elapsedUs;
        double act =
            runIoWorkload(m, ThreadModel::SchedulerActivations)
                .elapsedUs;
        EXPECT_LT(act, naive) << m.name;
    }
}

TEST(Activations, MatchKernelThreadsOnCheapSwitchMachines)
{
    // The paper's claim: activations give kernel-thread function at
    // user-thread cost — on machines where user switches are cheap.
    MachineDesc m = makeMachine(MachineId::R3000);
    double kernel =
        runIoWorkload(m, ThreadModel::KernelThreads).elapsedUs;
    double act =
        runIoWorkload(m, ThreadModel::SchedulerActivations).elapsedUs;
    EXPECT_LT(act, kernel * 1.05);
}

TEST(Activations, SparcUpcallsCostMore)
{
    // On the SPARC the user-level switch itself embeds a kernel trap,
    // so activations lose some of their edge (s4.1).
    MachineDesc sparc = makeMachine(MachineId::SPARC);
    double kernel =
        runIoWorkload(sparc, ThreadModel::KernelThreads).elapsedUs;
    double act =
        runIoWorkload(sparc, ThreadModel::SchedulerActivations)
            .elapsedUs;
    EXPECT_GT(act, kernel);
}

TEST(Activations, UpcallsCountTwoPerIo)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ActivationsResult r =
        runIoWorkload(m, ThreadModel::SchedulerActivations);
    EXPECT_EQ(r.upcalls, 2 * r.ioOps);
    ActivationsResult k = runIoWorkload(m, ThreadModel::KernelThreads);
    EXPECT_EQ(k.upcalls, 0u);
}

TEST(Activations, AllWorkCompletes)
{
    IoWorkload w;
    w.threads = 3;
    w.slicesPerThread = 10;
    w.ioEveryNSlices = 3;
    MachineDesc m = makeMachine(MachineId::RS6000);
    for (ThreadModel model : {ThreadModel::KernelThreads,
                              ThreadModel::UserThreadsBlocking,
                              ThreadModel::SchedulerActivations}) {
        ActivationsResult r = runIoWorkload(m, model, w);
        // 3 threads x 10 slices of 2000 cycles minimum.
        double min_us =
            m.clock.cyclesToMicros(3 * 10 * w.sliceCycles);
        EXPECT_GE(r.elapsedUs, min_us) << threadModelName(model);
        EXPECT_GT(r.ioOps, 0u);
    }
}

TEST(Activations, DeterministicRuns)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ActivationsResult a =
        runIoWorkload(m, ThreadModel::SchedulerActivations);
    ActivationsResult b =
        runIoWorkload(m, ThreadModel::SchedulerActivations);
    EXPECT_DOUBLE_EQ(a.elapsedUs, b.elapsedUs);
    EXPECT_EQ(a.switches, b.switches);
}

// ---- executed RPC ---------------------------------------------------------

TEST(RpcSim, ExecutedAgreesWithAnalyticModel)
{
    for (MachineId id : {MachineId::CVAX, MachineId::R3000,
                         MachineId::SPARC}) {
        MachineDesc m = makeMachine(id);
        double analytic = SrcRpcModel(m).nullRpc().totalUs();
        RpcSimResult r = RpcSimulation(m).run(20);
        EXPECT_NEAR(r.latencyUs, analytic, 0.15 * analytic) << m.name;
    }
}

TEST(RpcSim, CompletesRequestedCalls)
{
    RpcSimulation sim(makeMachine(MachineId::R3000));
    RpcSimResult r = sim.run(7);
    EXPECT_EQ(r.calls, 7u);
    EXPECT_EQ(r.packets, 14u); // one call + one reply per RPC
    EXPECT_GT(r.latencyUs, 0.0);
}

TEST(RpcSim, ZeroCallsIsEmptyRun)
{
    RpcSimulation sim(makeMachine(MachineId::R3000));
    RpcSimResult r = sim.run(0);
    EXPECT_EQ(r.calls, 0u);
    EXPECT_DOUBLE_EQ(r.elapsedUs, 0.0);
}

TEST(RpcSim, LargerResultsTakeLonger)
{
    RpcSimulation sim(makeMachine(MachineId::R3000));
    double small = sim.run(5, 74, 74).latencyUs;
    RpcSimulation sim2(makeMachine(MachineId::R3000));
    double large = sim2.run(5, 74, 1500).latencyUs;
    EXPECT_GT(large, small * 1.5);
}

TEST(RpcSim, CpuTimeIsFractionOfLatency)
{
    // Most of an RPC is waiting (wire, the other side): per-call CPU
    // on each node is well under the latency.
    RpcSimulation sim(makeMachine(MachineId::R3000));
    RpcSimResult r = sim.run(10);
    EXPECT_LT(r.clientCpuUs / 10.0, r.latencyUs);
    EXPECT_LT(r.serverCpuUs / 10.0, r.latencyUs);
    EXPECT_GT(r.clientCpuUs, 0.0);
}

TEST(RpcSim, CountsKernelEventsOnBothSides)
{
    // Each call: 2 syscalls/side, interrupts on both sides.
    // (Counts validated indirectly through CPU time > primitives.)
    MachineDesc m = makeMachine(MachineId::R3000);
    RpcSimulation sim(m);
    RpcSimResult r = sim.run(10);
    // Round-trip wire time alone at 10 Mbit is ~173 us for the pair.
    EXPECT_GT(r.latencyUs, 170.0);
}

} // namespace
} // namespace aosd
