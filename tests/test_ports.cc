/**
 * @file
 * Tests for Mach-style ports: rights, queues, blocking, and the §5
 * RPC cost identity.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/ipc/ports.hh"

namespace aosd
{
namespace
{

class PortsTest : public ::testing::Test
{
  protected:
    PortsTest()
        : kernel(makeMachine(MachineId::R3000)), ports(kernel, 4),
          client(kernel.createSpace("client")),
          server(kernel.createSpace("server"))
    {}

    SimKernel kernel;
    PortSpace ports;
    AddressSpace &client;
    AddressSpace &server;
};

TEST_F(PortsTest, OwnerHoldsReceiveAndSendRights)
{
    PortId p = ports.allocate(server);
    EXPECT_TRUE(ports.hasSendRight(p, server));
    EXPECT_FALSE(ports.hasSendRight(p, client));
}

TEST_F(PortsTest, SendRequiresARight)
{
    PortId p = ports.allocate(server);
    EXPECT_EQ(ports.send(client, p, 64), PortResult::NoRight);
    ports.grantSendRight(p, client);
    EXPECT_EQ(ports.send(client, p, 64), PortResult::Success);
    EXPECT_EQ(ports.stats().get("rights_violations"), 1u);
}

TEST_F(PortsTest, MessagesArriveInOrder)
{
    PortId p = ports.allocate(server);
    ports.grantSendRight(p, client);
    ports.send(client, p, 10);
    ports.send(client, p, 20);
    PortMessage m;
    ASSERT_EQ(ports.receive(server, p, m), PortResult::Success);
    EXPECT_EQ(m.bytes, 10u);
    ASSERT_EQ(ports.receive(server, p, m), PortResult::Success);
    EXPECT_EQ(m.bytes, 20u);
    EXPECT_EQ(m.sender, &client);
}

TEST_F(PortsTest, QueueBoundIsEnforced)
{
    PortId p = ports.allocate(server);
    ports.grantSendRight(p, client);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ports.send(client, p, 8), PortResult::Success);
    EXPECT_EQ(ports.send(client, p, 8), PortResult::QueueFull);
    EXPECT_EQ(ports.queued(p), 4u);
}

TEST_F(PortsTest, ReceiveOnEmptyWouldBlock)
{
    PortId p = ports.allocate(server);
    PortMessage m;
    EXPECT_EQ(ports.receive(server, p, m), PortResult::WouldBlock);
}

TEST_F(PortsTest, OnlyOwnerMayReceive)
{
    PortId p = ports.allocate(server);
    ports.grantSendRight(p, client);
    ports.send(client, p, 8);
    PortMessage m;
    EXPECT_EQ(ports.receive(client, p, m), PortResult::NoRight);
}

TEST_F(PortsTest, DestroyDropsQueuedMessages)
{
    PortId p = ports.allocate(server);
    ports.grantSendRight(p, client);
    ports.send(client, p, 8);
    EXPECT_FALSE(ports.destroy(p, client)); // non-owner cannot
    EXPECT_TRUE(ports.destroy(p, server));
    EXPECT_EQ(ports.send(client, p, 8), PortResult::NoSuchPort);
    EXPECT_EQ(ports.stats().get("dropped_messages"), 1u);
}

TEST_F(PortsTest, EverySendAndReceiveIsASyscall)
{
    PortId p = ports.allocate(server);
    ports.grantSendRight(p, client);
    kernel.resetAccounting();
    ports.send(client, p, 8);
    PortMessage m;
    ports.receive(server, p, m);
    EXPECT_EQ(kernel.stats().get(kstat::syscalls), 2u);
    EXPECT_GT(kernel.elapsedCycles(), 0u);
}

TEST_F(PortsTest, RpcCostIdentity)
{
    // s5: invoking a service by RPC takes "at least two system calls
    // and two context switches ... to do the work of one system call
    // in a monolithic system". Our explicit send/receive traps make
    // it four syscalls; a combined send-receive trap (mach_msg) would
    // be the paper's two.
    PortId svc = ports.allocate(server);
    PortId reply = ports.allocate(client);
    ports.grantSendRight(svc, client);
    ports.grantSendRight(reply, server);
    kernel.contextSwitchTo(client);
    kernel.resetAccounting();

    ASSERT_TRUE(portRpc(kernel, ports, client, server, svc, reply,
                        64, 64));
    EXPECT_EQ(kernel.stats().get(kstat::syscalls), 4u);
    EXPECT_EQ(kernel.stats().get(kstat::addrSpaceSwitches), 2u);
    EXPECT_GE(kernel.stats().get(kstat::syscalls), 2u);
}

TEST_F(PortsTest, RpcFailsWithoutReplyRight)
{
    PortId svc = ports.allocate(server);
    PortId reply = ports.allocate(client);
    ports.grantSendRight(svc, client);
    // server was never granted a right on the reply port
    kernel.contextSwitchTo(client);
    EXPECT_FALSE(portRpc(kernel, ports, client, server, svc, reply,
                         64, 64));
}

} // namespace
} // namespace aosd
