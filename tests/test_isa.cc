/**
 * @file
 * Unit tests for the micro-op ISA and InstrStream builder.
 */

#include <gtest/gtest.h>

#include "arch/isa.hh"

namespace aosd
{
namespace
{

TEST(InstrStream, CountsRepeatedOps)
{
    InstrStream s;
    s.alu(5).store(3).load(2);
    EXPECT_EQ(s.instructionCount(), 10u);
    EXPECT_EQ(s.countOf(OpKind::Alu), 5u);
    EXPECT_EQ(s.countOf(OpKind::Store), 3u);
    EXPECT_EQ(s.countOf(OpKind::Load), 2u);
}

TEST(InstrStream, ZeroCountOpsAreDropped)
{
    InstrStream s;
    s.alu(0).nop(0);
    EXPECT_TRUE(s.ops().empty());
    EXPECT_EQ(s.instructionCount(), 0u);
}

TEST(InstrStream, TrapEnterInstructionAccounting)
{
    InstrStream risc;
    risc.trapEnter(false); // hardware event on RISCs
    EXPECT_EQ(risc.instructionCount(), 0u);

    InstrStream cisc;
    cisc.trapEnter(true); // CHMK is an instruction
    EXPECT_EQ(cisc.instructionCount(), 1u);
}

TEST(InstrStream, HwDelayIsNotAnInstruction)
{
    InstrStream s;
    s.hwDelay(100);
    EXPECT_EQ(s.instructionCount(), 0u);
    ASSERT_EQ(s.ops().size(), 1u);
    EXPECT_EQ(s.ops()[0].cycles, 100u);
}

TEST(InstrStream, FpuSyncIsNotAnInstruction)
{
    InstrStream s;
    s.fpuSync(30);
    EXPECT_EQ(s.instructionCount(), 0u);
}

TEST(InstrStream, MicrocodedOpsCarryCycles)
{
    InstrStream s;
    s.microcoded(45).microcoded(8, 3);
    EXPECT_EQ(s.instructionCount(), 4u);
    EXPECT_EQ(s.ops()[0].cycles, 45u);
    EXPECT_EQ(s.ops()[1].cycles, 8u);
    EXPECT_EQ(s.ops()[1].count, 3u);
}

TEST(InstrStream, AppendConcatenates)
{
    InstrStream a, b;
    a.alu(2);
    b.store(3).load(1);
    a.append(b);
    EXPECT_EQ(a.instructionCount(), 6u);
    EXPECT_EQ(a.ops().size(), 3u);
}

TEST(InstrStream, UncachedAndColdFlags)
{
    InstrStream s;
    s.loadUncached(2);
    s.load(1, /*cold_miss=*/true);
    s.storeUncached(1);
    s.store(1, /*same_page=*/false);
    EXPECT_TRUE(s.ops()[0].uncached);
    EXPECT_TRUE(s.ops()[1].coldMiss);
    EXPECT_TRUE(s.ops()[2].uncached);
    EXPECT_FALSE(s.ops()[3].samePage);
}

TEST(HandlerProgram, SumsPhaseInstructions)
{
    InstrStream a, b;
    a.alu(10);
    b.store(5);
    HandlerProgram p{Primitive::NullSyscall,
                     {{PhaseKind::KernelEntryExit, a},
                      {PhaseKind::CallPrep, b}}};
    EXPECT_EQ(p.instructionCount(), 15u);
}

TEST(Primitives, NamesAreDistinct)
{
    EXPECT_STRNE(primitiveName(Primitive::NullSyscall),
                 primitiveName(Primitive::Trap));
    EXPECT_STRNE(primitiveName(Primitive::PteChange),
                 primitiveName(Primitive::ContextSwitch));
    EXPECT_EQ(std::size(allPrimitives), 4u);
}

TEST(Phases, NamesMatchTable5)
{
    EXPECT_STREQ(phaseName(PhaseKind::KernelEntryExit),
                 "Kernel entry/exit");
    EXPECT_STREQ(phaseName(PhaseKind::CallPrep), "Call preparation");
    EXPECT_STREQ(phaseName(PhaseKind::CCallReturn), "Call/return to C");
}

} // namespace
} // namespace aosd
