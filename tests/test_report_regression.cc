/**
 * @file
 * The CI regression gate: rebuild every figure of the report and diff
 * it against the checked-in snapshot tests/expected_report.json.
 *
 * Any change that moves a simulated figure — a handler-program edit, a
 * timing-model tweak, a TLB policy change — fails here until the
 * snapshot is regenerated on purpose:
 *
 *   build/tools/aosd_report --json tests/expected_report.json
 *
 * which makes every behavioural change to the simulation visible in
 * review as a report diff.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "study/report.hh"

using namespace aosd;

namespace
{

std::string
snapshotPath()
{
    return std::string(AOSD_SOURCE_DIR) +
           "/tests/expected_report.json";
}

Json
loadSnapshot()
{
    std::ifstream in(snapshotPath());
    EXPECT_TRUE(in.good())
        << "missing " << snapshotPath()
        << " — regenerate with: aosd_report --json "
           "tests/expected_report.json";
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    Json doc = Json::parse(ss.str(), &err);
    EXPECT_TRUE(err.empty()) << "bad snapshot JSON: " << err;
    return doc;
}

} // namespace

TEST(ReportRegression, EveryFigureMatchesSnapshot)
{
    Json expected = loadSnapshot();
    if (expected.isNull())
        GTEST_SKIP() << "snapshot unreadable (failures above)";

    Json actual = buildReport();
    std::vector<std::string> problems = diffReports(expected, actual);
    for (const std::string &p : problems)
        ADD_FAILURE() << p;
    if (!problems.empty())
        ADD_FAILURE()
            << problems.size()
            << " figure(s) drifted. If the change is intentional, "
               "regenerate the snapshot: aosd_report --json "
               "tests/expected_report.json";
}

TEST(ReportRegression, SnapshotCoversRequiredTables)
{
    Json expected = loadSnapshot();
    if (expected.isNull())
        GTEST_SKIP() << "snapshot unreadable (failures above)";
    const Json &tables = expected.at("tables");
    for (const char *t : {"table1", "table2", "table4", "table5",
                          "table6", "table7"}) {
        ASSERT_TRUE(tables.has(t)) << "snapshot lost " << t;
        EXPECT_GT(tables.at(t).at("figures").size(), 0u) << t;
    }
}

TEST(ReportRegression, DiffDetectsDrift)
{
    // The gate must actually fire: perturb one figure and expect a
    // report.
    Json report = buildReport();
    std::string doc = report.dump();
    Json same = Json::parse(doc);
    EXPECT_TRUE(diffReports(report, same).empty());

    std::vector<Figure> figs = allFigures();
    ASSERT_FALSE(figs.empty());
    figs.front().sim *= 1.01; // 1% drift, far beyond tolerance
    Json drifted = buildReport(figs);
    std::vector<std::string> problems = diffReports(report, drifted);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("drifted"), std::string::npos);
}

TEST(ReportRegression, DiffDetectsMissingAndNewFigures)
{
    std::vector<Figure> figs = allFigures();
    std::vector<Figure> fewer(figs.begin(), figs.end() - 1);
    Json full = buildReport(figs);
    Json partial = buildReport(fewer);

    std::vector<std::string> lost = diffReports(full, partial);
    ASSERT_FALSE(lost.empty());
    EXPECT_NE(lost.front().find("disappeared"), std::string::npos);

    std::vector<std::string> gained = diffReports(partial, full);
    ASSERT_FALSE(gained.empty());
    EXPECT_NE(gained.front().find("not in snapshot"),
              std::string::npos);
}
