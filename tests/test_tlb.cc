/**
 * @file
 * Unit and property tests for the TLB model (§3.2).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "mem/tlb.hh"
#include "sim/random.hh"

namespace aosd
{
namespace
{

TlbDesc
smallTagged()
{
    TlbDesc d;
    d.entries = 4;
    d.processIdTags = true;
    d.pidCount = 64;
    d.lockableEntries = 2;
    return d;
}

TEST(Tlb, MissThenHit)
{
    Tlb tlb(smallTagged());
    EXPECT_FALSE(tlb.lookup(0x10, 1).hit);
    tlb.insert(0x10, 1, 0x99, {});
    TlbLookup r = tlb.lookup(0x10, 1);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.pfn, 0x99u);
}

TEST(Tlb, TagsIsolateAddressSpaces)
{
    Tlb tlb(smallTagged());
    tlb.insert(0x10, 1, 0xA, {});
    EXPECT_TRUE(tlb.lookup(0x10, 1).hit);
    EXPECT_FALSE(tlb.lookup(0x10, 2).hit); // other ASID misses
}

TEST(Tlb, UntaggedIgnoresAsid)
{
    TlbDesc d = smallTagged();
    d.processIdTags = false;
    Tlb tlb(d);
    tlb.insert(0x10, 1, 0xA, {});
    EXPECT_TRUE(tlb.lookup(0x10, 2).hit); // no tags: shared entry
}

TEST(Tlb, LruVictimSelection)
{
    Tlb tlb(smallTagged());
    for (Vpn v = 0; v < 4; ++v)
        tlb.insert(v, 1, v, {});
    // Touch 0..2 so 3 is LRU.
    tlb.lookup(0, 1);
    tlb.lookup(1, 1);
    tlb.lookup(2, 1);
    tlb.insert(0x50, 1, 0x50, {});
    EXPECT_FALSE(tlb.lookup(3, 1).hit);   // evicted
    EXPECT_TRUE(tlb.lookup(0x50, 1).hit); // inserted
    EXPECT_TRUE(tlb.lookup(0, 1).hit);
}

TEST(Tlb, LockedEntriesSurviveReplacement)
{
    Tlb tlb(smallTagged());
    tlb.insert(0x1, 1, 1, {}, /*locked=*/true);
    for (Vpn v = 0x10; v < 0x20; ++v)
        tlb.insert(v, 1, v, {});
    EXPECT_TRUE(tlb.lookup(0x1, 1).hit); // never evicted
}

TEST(Tlb, SwitchContextPurgesOnlyUntagged)
{
    Tlb tagged(smallTagged());
    tagged.insert(0x10, 1, 1, {});
    EXPECT_EQ(tagged.switchContext(), 0u);
    EXPECT_TRUE(tagged.lookup(0x10, 1).hit);

    TlbDesc d = smallTagged();
    d.processIdTags = false;
    d.purgeAllCycles = 32;
    Tlb untagged(d);
    untagged.insert(0x10, 1, 1, {});
    EXPECT_EQ(untagged.switchContext(), 32u);
    EXPECT_FALSE(untagged.lookup(0x10, 1).hit);
}

TEST(Tlb, InvalidateAsidOnlyDropsThatSpace)
{
    Tlb tlb(smallTagged());
    tlb.insert(0x10, 1, 1, {});
    tlb.insert(0x11, 2, 2, {});
    tlb.invalidateAsid(1);
    EXPECT_FALSE(tlb.lookup(0x10, 1).hit);
    EXPECT_TRUE(tlb.lookup(0x11, 2).hit);
}

TEST(Tlb, MissCostsFollowManagementStyle)
{
    TlbDesc sw;
    sw.entries = 4;
    sw.management = TlbManagement::Software;
    sw.swUserMissCycles = 12;
    sw.swKernelMissCycles = 300;
    Tlb s(sw);
    EXPECT_EQ(s.lookup(1, 0, false).missCycles, 12u);
    EXPECT_EQ(s.lookup(1, 0, true).missCycles, 300u);

    TlbDesc hw;
    hw.entries = 4;
    hw.management = TlbManagement::Hardware;
    hw.hwMissCycles = 22;
    Tlb h(hw);
    EXPECT_EQ(h.lookup(1, 0, false).missCycles, 22u);
    EXPECT_EQ(h.lookup(1, 0, true).missCycles, 22u);
}

TEST(Tlb, StatsCountHitsAndMisses)
{
    Tlb tlb(smallTagged());
    tlb.lookup(1, 1);          // miss
    tlb.insert(1, 1, 1, {});
    tlb.lookup(1, 1);          // hit
    tlb.lookup(2, 1, true);    // kernel miss
    EXPECT_EQ(tlb.stats().get("lookups"), 3u);
    EXPECT_EQ(tlb.stats().get("hits"), 1u);
    EXPECT_EQ(tlb.stats().get("misses"), 2u);
    EXPECT_EQ(tlb.stats().get("kernel_misses"), 1u);
    EXPECT_EQ(tlb.stats().get("user_misses"), 1u);
}

TEST(Tlb, InsertUpdatesExistingEntry)
{
    Tlb tlb(smallTagged());
    tlb.insert(1, 1, 0xA, {});
    PageProt ro;
    ro.writable = false;
    tlb.insert(1, 1, 0xB, ro);
    EXPECT_EQ(tlb.validEntries(), 1u);
    TlbLookup r = tlb.lookup(1, 1);
    EXPECT_EQ(r.pfn, 0xBu);
}

TEST(Tlb, EntriesForAsidCounts)
{
    Tlb tlb(smallTagged());
    tlb.insert(1, 1, 1, {});
    tlb.insert(2, 1, 2, {});
    tlb.insert(3, 2, 3, {});
    EXPECT_EQ(tlb.entriesForAsid(1), 2u);
    EXPECT_EQ(tlb.entriesForAsid(2), 1u);
}

TEST(TlbDeathTest, AllEntriesLockedPanics)
{
    TlbDesc d;
    d.entries = 2;
    d.lockableEntries = 2;
    Tlb tlb(d);
    tlb.insert(1, 0, 1, {}, true);
    tlb.insert(2, 0, 2, {}, true);
    EXPECT_DEATH(tlb.insert(3, 0, 3, {}), "locked");
}

/** Property: a TLB of N entries never reports more than N valid. */
class TlbPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TlbPropertyTest, OccupancyNeverExceedsCapacityUnderRandomOps)
{
    Rng rng(GetParam());
    TlbDesc d;
    d.entries = 16;
    d.processIdTags = true;
    d.pidCount = 8;
    Tlb tlb(d);
    for (int i = 0; i < 5000; ++i) {
        Vpn v = rng.below(64);
        Asid a = static_cast<Asid>(rng.below(8));
        switch (rng.below(5)) {
          case 0:
            tlb.insert(v, a, v, {});
            break;
          case 1:
            tlb.invalidate(v, a);
            break;
          case 2:
            tlb.invalidateAsid(a);
            break;
          case 3:
            tlb.lookup(v, a);
            break;
          default:
            if (rng.chance(0.01))
                tlb.invalidateAll();
            break;
        }
        ASSERT_LE(tlb.validEntries(), 16u);
    }
    // Consistency: everything inserted and not invalidated is findable.
    tlb.invalidateAll();
    tlb.insert(5, 3, 55, {});
    EXPECT_TRUE(tlb.lookup(5, 3).hit);
}

TEST_P(TlbPropertyTest, HintedRefillBehavesLikeInsert)
{
    // Two mirrored TLBs driven by the same reference stream: one
    // refills with the lookup's fillCell hint (the kernel's
    // lookup-then-refill fast path), the other with plain insert().
    // Every lookup must agree — a divergence means the hinted index
    // write broke a probe-path invariant.
    Rng rng(GetParam() * 104729);
    TlbDesc d;
    d.entries = 16;
    d.processIdTags = true;
    d.pidCount = 8;
    Tlb hinted(d);
    Tlb ref(d);
    for (int i = 0; i < 20000; ++i) {
        Vpn v = rng.below(48);
        Asid a = static_cast<Asid>(rng.below(4));
        if (rng.chance(0.02)) {
            hinted.invalidate(v, a);
            ref.invalidate(v, a);
            continue;
        }
        TlbLookup h = hinted.lookup(v, a);
        TlbLookup r = ref.lookup(v, a);
        ASSERT_EQ(h.hit, r.hit) << "step " << i;
        if (!h.hit) {
            hinted.refill(v, a, v * 3, {}, h.fillCell);
            ref.insert(v, a, v * 3, {});
        } else {
            ASSERT_EQ(h.pfn, r.pfn);
        }
        ASSERT_EQ(hinted.validEntries(), ref.validEntries());
    }
}

TEST_P(TlbPropertyTest, HitAfterInsertUntilEvicted)
{
    Rng rng(GetParam() * 7919);
    TlbDesc d;
    d.entries = 8;
    d.processIdTags = true;
    d.pidCount = 4;
    Tlb tlb(d);
    for (int i = 0; i < 1000; ++i) {
        Vpn v = rng.below(32);
        Asid a = static_cast<Asid>(rng.below(4));
        tlb.insert(v, a, v * 2, {});
        TlbLookup r = tlb.lookup(v, a);
        ASSERT_TRUE(r.hit);
        ASSERT_EQ(r.pfn, v * 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1991));

} // namespace
} // namespace aosd
