/**
 * @file
 * Tests for the parallel simulation runner: thread-pool batch
 * semantics (full index coverage, index-addressed results, exception
 * propagation), the shard-merge operations every slice result flows
 * through (CounterSet, Histogram, ProfNode, StatRegistry — sum
 * semantics, identity, associativity), and the headline determinism
 * contract: report.json, counters.json and profile.json are
 * byte-identical between --jobs 1 and --jobs N.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arch/machines.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/parallel/sim_slice.hh"
#include "sim/parallel/thread_pool.hh"
#include "sim/profile/histogram.hh"
#include "sim/profile/profile.hh"
#include "sim/stats.hh"
#include "study/counters_report.hh"
#include "study/profile_report.hh"
#include "study/report.hh"

using namespace aosd;

namespace
{

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.forEachIndex(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ResultsLandInIndexAddressedSlots)
{
    ThreadPool pool(3);
    std::vector<std::size_t> out(257, 0);
    pool.forEachIndex(out.size(),
                      [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<std::size_t> total{0};
    for (int batch = 0; batch < 5; ++batch)
        pool.forEachIndex(10, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50u);
}

TEST(ThreadPoolTest, LowestFailingIndexIsRethrown)
{
    ThreadPool pool(4);
    auto job = [](std::size_t i) {
        if (i == 37 || i == 11)
            throw std::runtime_error("job " + std::to_string(i));
    };
    try {
        pool.forEachIndex(64, job);
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 11");
    }
}

TEST(ThreadPoolTest, SurvivesAFailedBatch)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.forEachIndex(
                     8,
                     [](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The batch drained and the pool still works.
    std::atomic<std::size_t> ran{0};
    pool.forEachIndex(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8u);
}

// -------------------------------------------------------------- runner

TEST(ParallelRunnerTest, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(ParallelRunner::defaultJobs(), 1u);
    ParallelRunner r(0);
    EXPECT_EQ(r.jobs(), ParallelRunner::defaultJobs());
}

TEST(ParallelRunnerTest, MapReturnsResultsInTaskOrder)
{
    ParallelRunner runner(4);
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 100; ++i)
        tasks.push_back([i] { return 3 * i + 1; });
    std::vector<int> out = runner.map<int>(tasks);
    ASSERT_EQ(out.size(), tasks.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], 3 * i + 1);
}

TEST(ParallelRunnerTest, SerialRunnerStaysOnCallingThread)
{
    ParallelRunner serial(1);
    std::thread::id self = std::this_thread::get_id();
    std::vector<std::function<std::thread::id()>> tasks(
        8, [] { return std::this_thread::get_id(); });
    for (std::thread::id id : serial.map<std::thread::id>(tasks))
        EXPECT_EQ(id, self);
}

TEST(ParallelRunnerTest, EmptyTaskListIsANoOp)
{
    ParallelRunner runner(4);
    std::vector<std::function<int()>> none;
    EXPECT_TRUE(runner.map<int>(none).empty());
    runner.run({});
}

TEST(ParallelRunnerTest, TaskExceptionPropagatesToCaller)
{
    ParallelRunner runner(3);
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back([i]() -> int {
            if (i == 5)
                throw std::runtime_error("cell 5");
            return i;
        });
    EXPECT_THROW(runner.map<int>(tasks), std::runtime_error);
}

// --------------------------------------------------------- shard merge

TEST(ShardMergeTest, CounterSetSumsEventsAndMaxesHighWater)
{
    CounterSet a, b;
    a.set(HwCounter::Loads, 3);
    b.set(HwCounter::Loads, 4);
    a.set(HwCounter::WbOccupancyHighWater, 7);
    b.set(HwCounter::WbOccupancyHighWater, 5);
    a.merge(b);
    EXPECT_EQ(a.get(HwCounter::Loads), 7u);
    EXPECT_EQ(a.get(HwCounter::WbOccupancyHighWater), 7u);
}

TEST(ShardMergeTest, CounterSetEmptyIsIdentity)
{
    CounterSet a;
    a.set(HwCounter::TlbMisses, 42);
    a.set(HwCounter::WbOccupancyHighWater, 9);
    CounterSet before = a;
    a.merge(CounterSet{});
    EXPECT_EQ(a, before);
    CounterSet zero;
    zero.merge(before);
    EXPECT_EQ(zero, before);
}

TEST(ShardMergeTest, CounterSetMergeIsAssociative)
{
    CounterSet a, b, c;
    a.set(HwCounter::Stores, 1);
    b.set(HwCounter::Stores, 10);
    c.set(HwCounter::Stores, 100);
    a.set(HwCounter::WbOccupancyHighWater, 2);
    b.set(HwCounter::WbOccupancyHighWater, 8);
    c.set(HwCounter::WbOccupancyHighWater, 4);

    CounterSet left = a;
    left.merge(b);
    left.merge(c);

    CounterSet bc = b;
    bc.merge(c);
    CounterSet right = a;
    right.merge(bc);

    EXPECT_EQ(left, right);
}

TEST(ShardMergeTest, HistogramMergeAddsSamples)
{
    Histogram a, b;
    a.sample(1);
    a.sample(100);
    b.sample(7);
    b.sample(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.total(), 1u + 100u + 7u + 100000u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 100000u);

    // Empty in both directions is the identity.
    Histogram empty;
    Histogram c = a;
    c.merge(empty);
    EXPECT_EQ(c.toJson().dump(), a.toJson().dump());
    empty.merge(a);
    EXPECT_EQ(empty.toJson().dump(), a.toJson().dump());
}

TEST(ShardMergeTest, ProfNodeMergeSumsMatchedChildren)
{
    ProfNode a;
    a.name = "total";
    a.selfCycles = 5;
    a.entries = 1;
    ProfNode *ak = a.child("kernel");
    ak->selfCycles = 10;
    ak->entries = 2;
    ak->spans.sample(10);

    ProfNode b;
    b.name = "total";
    b.selfCycles = 2;
    b.entries = 1;
    ProfNode *bk = b.child("kernel");
    bk->selfCycles = 30;
    bk->entries = 1;
    bk->spans.sample(30);
    ProfNode *bu = b.child("user");
    bu->selfCycles = 4;
    bu->entries = 1;

    a.mergeFrom(b);
    EXPECT_EQ(a.selfCycles, 7u);
    EXPECT_EQ(a.entries, 2u);
    EXPECT_EQ(a.totalCycles(), 7u + 40u + 4u);
    const ProfNode *k = a.find("kernel");
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->selfCycles, 40u);
    EXPECT_EQ(k->entries, 3u);
    EXPECT_EQ(k->spans.count(), 2u);
    const ProfNode *u = a.find("user");
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->selfCycles, 4u);

    // Merging an empty tree changes nothing.
    std::string before = a.toJson().dump();
    ProfNode empty;
    empty.name = "total";
    a.mergeFrom(empty);
    EXPECT_EQ(a.toJson().dump(), before);
}

TEST(ShardMergeTest, RegistryAbsorbSumsFlattenedShards)
{
    StatRegistry &reg = StatRegistry::instance();
    reg.resetAll();
    reg.setRetainRetired(false);

    FlatStats shard1{{"kernel", {{"traps", 3}, {"syscalls", 1}}}};
    FlatStats shard2{{"kernel", {{"traps", 2}}},
                     {"tlb", {{"misses", 9}}}};
    reg.absorbRetired(shard1);
    reg.absorbRetired(shard2);

    FlatStats flat = reg.flatten();
    EXPECT_EQ(flat["kernel"]["traps"], 5u);
    EXPECT_EQ(flat["kernel"]["syscalls"], 1u);
    EXPECT_EQ(flat["tlb"]["misses"], 9u);

    reg.resetAll();
    reg.setRetainRetired(false);
}

TEST(ShardMergeTest, ParallelStatsMatchSerialTotals)
{
    StatRegistry &reg = StatRegistry::instance();
    reg.resetAll();
    reg.setRetainRetired(false);

    auto work = [](std::uint64_t n) {
        return std::function<int()>([n]() -> int {
            StatGroup g("work");
            g.inc("items", n);
            return static_cast<int>(n);
        });
    };
    std::vector<std::function<int()>> tasks;
    std::uint64_t expected = 0;
    for (std::uint64_t n = 1; n <= 32; ++n) {
        tasks.push_back(work(n));
        expected += n;
    }

    ParallelRunner runner(4);
    runner.setCollectStats(true);
    runner.map<int>(tasks);

    FlatStats flat = reg.flatten();
    EXPECT_EQ(flat["work"]["items"], expected);

    reg.resetAll();
    reg.setRetainRetired(false);
}

// --------------------------------------------------------- determinism

TEST(DeterminismTest, CountersDocByteIdenticalAcrossJobCounts)
{
    const std::vector<MachineDesc> machines = table1Machines();
    ParallelRunner serial(1);
    ParallelRunner wide(4);
    Json serial_doc =
        buildCountersDoc(countAllPrimitives(machines, 2, serial), 2);
    Json wide_doc =
        buildCountersDoc(countAllPrimitives(machines, 2, wide), 2);
    EXPECT_EQ(serial_doc.dump(1), wide_doc.dump(1));
}

TEST(DeterminismTest, ProfileDocByteIdenticalAcrossJobCounts)
{
    const std::vector<MachineDesc> machines = table1Machines();
    ParallelRunner serial(1);
    ParallelRunner wide(4);
    Json serial_doc = buildProfileDoc(
        machines, profileAllPrimitives(machines, 2, serial), 2);
    Json wide_doc = buildProfileDoc(
        machines, profileAllPrimitives(machines, 2, wide), 2);
    EXPECT_EQ(serial_doc.dump(1), wide_doc.dump(1));
}

TEST(DeterminismTest, ReportByteIdenticalAcrossJobCounts)
{
    ParallelRunner serial(1);
    ParallelRunner wide(4);
    Json serial_doc = buildReport(serial);
    Json wide_doc = buildReport(wide);
    EXPECT_EQ(serial_doc.dump(1), wide_doc.dump(1));
}

} // namespace
