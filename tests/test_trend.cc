/**
 * @file
 * The trend layer over the perf database: stable metric paths,
 * rolling-band regression detection (a synthetic 3%-per-run drift
 * must flag against a 5% band once it leaves the rolling median),
 * ingest determinism across --jobs, agreement between aosd_trend
 * check and aosd_bisect on an injected regression, the committed
 * bench/baselines records, and the HTML dashboard.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/machines.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/bisect.hh"
#include "study/counters_report.hh"
#include "study/trend_report.hh"

using namespace aosd;

namespace
{

/** A report doc with one figure "m.M" so records carry the metric
 *  "report.t.m.M" at `value`. */
Json
reportDocWith(double value)
{
    Json fig = Json::object();
    fig.set("id", Json("m.M"));
    fig.set("unit", Json("us"));
    fig.set("sim", Json(value));
    Json figs = Json::array();
    figs.push(std::move(fig));
    Json table = Json::object();
    table.set("figures", std::move(figs));
    Json tables = Json::object();
    tables.set("t", std::move(table));
    Json doc = Json::object();
    doc.set("tables", std::move(tables));
    return doc;
}

/** A db whose single metric walks through `values`, one per run. */
PerfDb
dbWithSeries(const std::vector<double> &values)
{
    PerfDb db;
    for (std::size_t i = 0; i < values.size(); ++i) {
        Json report = reportDocWith(values[i]);
        PerfDbRecordInputs in;
        in.report = &report;
        EXPECT_TRUE(db.append(buildPerfDbRecord(
            "c" + std::to_string(i), "t" + std::to_string(i), "h",
            "f", in)));
    }
    return db;
}

class TrendTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }

    Json
    countersDocFor(const MachineDesc &machine, unsigned reps = 4)
    {
        std::vector<CountedPrimitiveRun> runs =
            countAllPrimitives({machine}, reps);
        return buildCountersDoc(runs, reps);
    }
};

TEST_F(TrendTest, RecordMetricsUseStableFigureAndMachinePaths)
{
    Json report = reportDocWith(3.5);
    Json counters = countersDocFor(makeMachine(MachineId::R3000));
    PerfDbRecordInputs in;
    in.report = &report;
    in.counters = &counters;
    PerfDbRecord rec(buildPerfDbRecord("c", "t", "h", "f", in));

    bool saw_figure = false, saw_counter = false;
    for (const PerfLeaf &leaf : recordMetrics(rec)) {
        // Figures are addressed by id, never by array index.
        EXPECT_EQ(leaf.path.find("figures"), std::string::npos)
            << leaf.path;
        if (leaf.path == "report.t.m.M") {
            saw_figure = true;
            EXPECT_DOUBLE_EQ(leaf.value, 3.5);
        }
        if (leaf.path == "counters.R3000.null_syscall.cycles_per_call")
            saw_counter = true;
        // Document metadata is not a metric.
        EXPECT_EQ(leaf.path.find("schema_version"),
                  std::string::npos)
            << leaf.path;
    }
    EXPECT_TRUE(saw_figure);
    EXPECT_TRUE(saw_counter);
}

TEST_F(TrendTest, IngestIsByteIdenticalAcrossJobs)
{
    std::vector<MachineDesc> machines = {
        makeMachine(MachineId::R3000), makeMachine(MachineId::SPARC)};

    ParallelRunner serial(1);
    std::vector<CountedPrimitiveRun> runs1 =
        countAllPrimitives(machines, 4, serial);
    Json doc1 = buildCountersDoc(runs1, 4);

    ParallelRunner fanned(8);
    std::vector<CountedPrimitiveRun> runs8 =
        countAllPrimitives(machines, 4, fanned);
    Json doc8 = buildCountersDoc(runs8, 4);

    PerfDbRecordInputs in1, in8;
    in1.counters = &doc1;
    in8.counters = &doc8;
    Json rec1 = buildPerfDbRecord("c", "t", "h", "f", in1);
    Json rec8 = buildPerfDbRecord("c", "t", "h", "f", in8);
    EXPECT_EQ(rec1.dump(), rec8.dump());
}

TEST_F(TrendTest, RollingStatsMedianMadAndPctChange)
{
    RollingStats s = rollingStats({10, 12, 11, 14, 20}, 10);
    EXPECT_EQ(s.baselinePoints, 4u);
    EXPECT_DOUBLE_EQ(s.latest, 20.0);
    EXPECT_DOUBLE_EQ(s.median, 11.5);   // of {10, 12, 11, 14}
    EXPECT_DOUBLE_EQ(s.mad, 1.0);       // |dev| = {1.5, .5, .5, 2.5}
    EXPECT_NEAR(s.pctChange, 100.0 * 8.5 / 11.5, 1e-9);

    // The window is rolling: only the newest `baselineWindow` priors.
    RollingStats windowed = rollingStats({100, 1, 1, 1, 1}, 3);
    EXPECT_EQ(windowed.baselinePoints, 3u);
    EXPECT_DOUBLE_EQ(windowed.median, 1.0);
}

TEST_F(TrendTest, RollingBandFlagsASyntheticDriftSeries)
{
    // 3% compound drift: each step is under the 5% band, but the
    // newest value leaves the *rolling median* behind — exactly what
    // a per-pair diff gate misses and the trend check exists to
    // catch.
    std::vector<double> drift;
    double v = 100;
    for (int i = 0; i < 6; ++i) {
        drift.push_back(v);
        v *= 1.03;
    }
    PerfDb db = dbWithSeries(drift);
    TrendCheckResult r = checkTrends(db, 0.05, 20);
    ASSERT_EQ(r.flags.size(), 1u);
    EXPECT_EQ(r.flags[0].metric, "report.t.m.M");
    EXPECT_GT(r.flags[0].pctChange, 5.0);
    EXPECT_EQ(r.flags[0].toId, "c5@t5");

    // A flat series never flags...
    PerfDb flat = dbWithSeries({100, 100, 100, 100});
    EXPECT_TRUE(checkTrends(flat, 0.05, 20).ok());
    // ... and a wide band swallows the drift.
    EXPECT_TRUE(checkTrends(db, 0.5, 20).ok());
}

TEST_F(TrendTest, NoisySeriesEarnMadSlack)
{
    // The same +8 move: flagged against a quiet history, tolerated
    // against one whose MAD says +-8 is normal.
    PerfDb quiet = dbWithSeries({100, 100, 100, 100, 108});
    EXPECT_EQ(checkTrends(quiet, 0.05, 20).flags.size(), 1u);

    PerfDb noisy = dbWithSeries({100, 92, 108, 90, 110, 95, 108});
    EXPECT_TRUE(checkTrends(noisy, 0.05, 20).ok());
}

TEST_F(TrendTest, FewerThanTwoBaselinePointsAreSkipped)
{
    PerfDb db = dbWithSeries({100, 200});
    TrendCheckResult r = checkTrends(db, 0.05, 20);
    EXPECT_EQ(r.metricsChecked, 0u);
    EXPECT_EQ(r.metricsSkipped, 1u);
    EXPECT_TRUE(r.ok());
}

TEST_F(TrendTest, FilterAndSkipSelectMetrics)
{
    PerfDb db = dbWithSeries({100, 100, 100, 150});
    EXPECT_EQ(checkTrends(db, 0.05, 20, "report.").flags.size(), 1u);
    EXPECT_TRUE(checkTrends(db, 0.05, 20, "counters.").ok());
    EXPECT_TRUE(checkTrends(db, 0.05, 20, "", "report.").ok());
}

TEST_F(TrendTest, CheckAndBisectNameTheSameCause)
{
    // The acceptance walk: a DB of healthy runs plus one regressed
    // run. aosd_trend check must flag the moved counter metrics and
    // hand back the offending record pair; aosd_bisect on that same
    // pair must attribute the move to the ablated event class.
    MachineDesc base = makeMachine(MachineId::R3000);
    MachineDesc ablated = base;
    ablated.timing.trapEnterCycles += 40; // >> 5% on null_syscall

    Json healthy = countersDocFor(base);
    Json regressed = countersDocFor(ablated);

    PerfDb db;
    for (int i = 0; i < 3; ++i) {
        PerfDbRecordInputs in;
        in.counters = &healthy;
        ASSERT_TRUE(db.append(buildPerfDbRecord(
            "good" + std::to_string(i), "t" + std::to_string(i), "h",
            "f", in)));
    }
    PerfDbRecordInputs in;
    in.counters = &regressed;
    ASSERT_TRUE(
        db.append(buildPerfDbRecord("bad", "t3", "h", "f", in)));

    TrendCheckResult r = checkTrends(db, 0.05, 20);
    ASSERT_FALSE(r.flags.empty());
    bool flagged_cycles = false;
    for (const TrendFlag &f : r.flags) {
        EXPECT_EQ(f.toId, "bad@t3");
        EXPECT_EQ(f.fromId, "good2@t2");
        if (f.metric.rfind("counters.R3000.", 0) == 0 &&
            f.metric.find("cycles_per_call") != std::string::npos)
            flagged_cycles = true;
    }
    EXPECT_TRUE(flagged_cycles);

    // The flagged pair, resolved through the database, bisects to
    // the same cause the ablation injected.
    const PerfDbRecord *from = db.resolve(r.flags[0].fromId);
    const PerfDbRecord *to = db.resolve(r.flags[0].toId);
    ASSERT_NE(from, nullptr);
    ASSERT_NE(to, nullptr);
    BisectResult b = bisectCountersDocs(*from->doc("counters"),
                                        *to->doc("counters"));
    ASSERT_FALSE(b.findings.empty());
    EXPECT_EQ(b.findings.front().eventClass, "trap_enters");
}

TEST_F(TrendTest, QueryDocCarriesSeriesDeltasAndRollingStats)
{
    PerfDb db = dbWithSeries({10, 11, 12});
    Json doc = buildTrendQueryDoc(db, "report.t.m.M", 0, 20);
    EXPECT_EQ(doc.at("metric").asString(), "report.t.m.M");
    ASSERT_EQ(doc.at("points").size(), 3u);
    const Json &second = doc.at("points").at(1);
    EXPECT_EQ(second.at("record").asString(), "c1@t1");
    EXPECT_DOUBLE_EQ(second.at("delta").asNumber(), 1.0);
    EXPECT_NEAR(second.at("delta_pct").asNumber(), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(
        doc.at("rolling").at("median").asNumber(), 10.5);

    // --last trims from the old end.
    Json trimmed = buildTrendQueryDoc(db, "report.t.m.M", 2, 20);
    ASSERT_EQ(trimmed.at("points").size(), 2u);
    EXPECT_EQ(trimmed.at("points").at(0).at("record").asString(),
              "c1@t1");
}

TEST_F(TrendTest, MetricSeriesSkipsRecordsWithoutTheMetric)
{
    PerfDb db = dbWithSeries({1, 2});
    Json counters = countersDocFor(makeMachine(MachineId::R3000));
    PerfDbRecordInputs in;
    in.counters = &counters;
    ASSERT_TRUE(
        db.append(buildPerfDbRecord("c2", "t2", "h", "f", in)));

    MetricSeries s = metricSeries(db, "report.t.m.M");
    ASSERT_EQ(s.points.size(), 2u);
    EXPECT_EQ(s.points[1].recordId, "c1@t1");
}

TEST_F(TrendTest, CommittedBaselinesLoadAndMatchTheSimulator)
{
    PerfDb db;
    std::string error;
    ASSERT_TRUE(db.load(std::string(AOSD_SOURCE_DIR) +
                            "/bench/baselines/perfdb.jsonl",
                        &error))
        << error;
    ASSERT_GE(db.size(), 3u); // the trend DB is non-empty on day one

    // Every committed record validates, and the bench trajectory
    // exists.
    bool has_bench = false;
    for (const PerfDbRecord &rec : db.records()) {
        EXPECT_EQ(PerfDb::validateRecord(rec.json()), "");
        if (rec.doc("bench.simperf"))
            has_bench = true;
    }
    EXPECT_TRUE(has_bench);

    // The committed counters agree with the simulator as built: the
    // baseline refresh procedure (bench/baselines/README.md) keeps
    // these in lockstep with tests/expected_counters.json.
    const Json *counters = db.at(db.size() - 1).doc("counters");
    ASSERT_NE(counters, nullptr);
    unsigned reps = static_cast<unsigned>(
        counters->at("repetitions").asNumber());
    Json current =
        countersDocFor(makeMachine(MachineId::R3000), reps);
    const Json &committed_cell =
        counters->at("machines").at("R3000").at("null_syscall");
    const Json &current_cell =
        current.at("machines").at("R3000").at("null_syscall");
    EXPECT_EQ(committed_cell.at("cycles_per_call").asNumber(),
              current_cell.at("cycles_per_call").asNumber());

    // And a freshly appended identical run raises no flags.
    PerfDbRecordInputs in;
    in.counters = &current;
    ASSERT_TRUE(
        db.append(buildPerfDbRecord("now", "t-now", "h", "f", in)));
    TrendCheckResult r =
        checkTrends(db, 0.05, 20, "counters.R3000.");
    EXPECT_TRUE(r.ok()) << (r.flags.empty()
                                ? ""
                                : r.flags[0].metric);
}

TEST_F(TrendTest, HtmlDashboardRendersSparklinesAndFlags)
{
    PerfDb db = dbWithSeries({100, 100, 100, 100, 150});
    std::string html = renderTrendHtml(db, 0.05, 20);
    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("report.t.m.M"), std::string::npos);
    EXPECT_NE(html.find("FLAGGED"), std::string::npos);
    EXPECT_NE(html.find("c4@t4"), std::string::npos);

    // Identical inputs render identical bytes (the dashboard is a CI
    // artifact; determinism keeps it diffable).
    EXPECT_EQ(html, renderTrendHtml(db, 0.05, 20));

    PerfDb flat = dbWithSeries({100, 100, 100});
    std::string ok_html = renderTrendHtml(flat, 0.05, 20);
    EXPECT_EQ(ok_html.find("FLAGGED"), std::string::npos);
    EXPECT_NE(ok_html.find(">ok<"), std::string::npos);
}

TEST_F(TrendTest, AllEqualSeriesHasZeroMadAndNeverFlags)
{
    // A perfectly deterministic metric: MAD is exactly 0, so the
    // band collapses to the relative tolerance alone. No division
    // by zero, no spurious flag.
    RollingStats s = rollingStats({250, 250, 250, 250, 250}, 20);
    EXPECT_DOUBLE_EQ(s.mad, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 250.0);
    EXPECT_DOUBLE_EQ(s.pctChange, 0.0);
    EXPECT_TRUE(
        checkTrends(dbWithSeries({250, 250, 250, 250, 250}), 0.05,
                    20)
            .ok());

    // ... and a move just past the tolerance still flags, i.e. the
    // zero MAD does not widen the band.
    EXPECT_EQ(checkTrends(dbWithSeries({250, 250, 250, 265}), 0.05,
                          20)
                  .flags.size(),
              1u);

    // A single-point series has no baseline: skipped, not flagged,
    // and the stats stay finite.
    RollingStats single = rollingStats({42}, 20);
    EXPECT_EQ(single.baselinePoints, 0u);
    EXPECT_DOUBLE_EQ(single.latest, 42.0);
    TrendCheckResult r = checkTrends(dbWithSeries({42}), 0.05, 20);
    EXPECT_EQ(r.metricsChecked, 0u);
    EXPECT_EQ(r.metricsSkipped, 1u);
    EXPECT_TRUE(r.ok());

    // An all-zero series: |median| = 0 makes the relative band
    // empty, but an unchanged latest value must still pass.
    EXPECT_TRUE(
        checkTrends(dbWithSeries({0, 0, 0, 0}), 0.05, 20).ok());
}

TEST_F(TrendTest, DigestsStripExemplarsAndKeepFigures)
{
    Json spans = Json::object();
    {
        Json cell = Json::object();
        Json cycles = Json::object();
        cycles.set("p99", Json(1900));
        cell.set("cycles", std::move(cycles));
        Json ex = Json::array();
        ex.push(Json("tree"));
        cell.set("exemplars", std::move(ex));
        Json prims = Json::object();
        prims.set("null_syscall", std::move(cell));
        Json machines = Json::object();
        machines.set("R3000", std::move(prims));
        spans.set("machines", std::move(machines));
    }
    Json sd = spansDigest(spans);
    EXPECT_EQ(sd.at("machines")
                  .at("R3000")
                  .at("null_syscall")
                  .at("cycles")
                  .at("p99")
                  .asNumber(),
              1900);
    EXPECT_EQ(sd.at("machines")
                  .at("R3000")
                  .at("null_syscall")
                  .find("exemplars"),
              nullptr);

    Json traffic = Json::object();
    {
        Json level = Json::object();
        level.set("load", Json(0.9));
        Json slow = Json::array();
        slow.push(Json("req"));
        level.set("slowest_requests", std::move(slow));
        traffic.set("cell", std::move(level));
    }
    Json td = trafficDigest(traffic);
    EXPECT_DOUBLE_EQ(td.at("cell").at("load").asNumber(), 0.9);
    EXPECT_EQ(td.at("cell").find("slowest_requests"), nullptr);

    // Documents without the stripped keys pass through unchanged —
    // including empty containers.
    Json empty = Json::object();
    empty.set("machines", Json::array());
    EXPECT_EQ(trafficDigest(empty).dump(), empty.dump());
    EXPECT_EQ(spansDigest(empty).dump(), empty.dump());
}

TEST_F(TrendTest, TrendListDocInventoriesTheDatabase)
{
    PerfDb db = dbWithSeries({1, 2});
    Json doc = buildTrendListDoc(db);
    EXPECT_EQ(doc.at("schema_version").asNumber(), 1);
    ASSERT_EQ(doc.at("records").size(), 2u);
    const Json &first = doc.at("records").at(0);
    EXPECT_EQ(first.at("id").asString(), "c0@t0");
    EXPECT_EQ(first.at("commit").asString(), "c0");
    EXPECT_EQ(first.at("host").asString(), "h");
    ASSERT_EQ(first.at("docs").size(), 1u);
    EXPECT_EQ(first.at("docs").at(0).asString(), "report");

    EXPECT_EQ(buildTrendListDoc(PerfDb{}).at("records").size(), 0u);
}

} // namespace
