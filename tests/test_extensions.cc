/**
 * @file
 * Tests for the extension experiments: architecture-fix handler
 * variants (§2.5), user-level RPC (§2.5 kernel avoidance), and the
 * synthetic reference-trace study (§1/§3.2 background).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "cpu/exec_model.hh"
#include "cpu/handler_variants.hh"
#include "cpu/handlers.hh"
#include "cpu/primitive_costs.hh"
#include "os/ipc/lrpc.hh"
#include "os/ipc/urpc.hh"
#include "workload/ref_trace.hh"

namespace aosd
{
namespace
{

// ---- architecture fixes ----------------------------------------------

TEST(ArchFixes, EachFixAppliesSomewhere)
{
    for (ArchFix fix : allArchFixes) {
        bool applies = false;
        for (const MachineDesc &m : allMachines())
            for (Primitive p : allPrimitives)
                applies |= archFixApplies(fix, m.id, p);
        EXPECT_TRUE(applies) << archFixName(fix);
    }
}

TEST(ArchFixes, NonApplicableFixReturnsStockHandler)
{
    MachineDesc cvax = makeMachine(MachineId::CVAX);
    HandlerProgram stock = buildHandler(cvax, Primitive::Trap);
    HandlerProgram same = buildImprovedHandler(
        cvax, Primitive::Trap, ArchFix::VectoredSyscalls);
    EXPECT_EQ(stock.instructionCount(), same.instructionCount());
}

class ArchFixTest : public ::testing::TestWithParam<ArchFix>
{
};

TEST_P(ArchFixTest, FixStrictlyImprovesItsTarget)
{
    ArchFix fix = GetParam();
    for (const MachineDesc &m : allMachines()) {
        for (Primitive p : allPrimitives) {
            if (!archFixApplies(fix, m.id, p))
                continue;
            ExecModel exec(m);
            Cycles stock = exec.run(buildHandler(m, p)).cycles;
            exec.reset();
            Cycles fixed =
                exec.run(buildImprovedHandler(m, p, fix)).cycles;
            EXPECT_LT(fixed, stock)
                << archFixName(fix) << " on " << m.name;
            // And the gain is meaningful but sane (1.05x..20x).
            double gain = static_cast<double>(stock) /
                          static_cast<double>(fixed);
            EXPECT_GT(gain, 1.05) << archFixName(fix);
            EXPECT_LT(gain, 20.0) << archFixName(fix);
        }
    }
}

TEST_P(ArchFixTest, FixReducesInstructionCount)
{
    ArchFix fix = GetParam();
    for (const MachineDesc &m : allMachines()) {
        for (Primitive p : allPrimitives) {
            if (!archFixApplies(fix, m.id, p))
                continue;
            EXPECT_LT(buildImprovedHandler(m, p, fix)
                          .instructionCount(),
                      buildHandler(m, p).instructionCount())
                << archFixName(fix) << " on " << m.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFixes, ArchFixTest, ::testing::ValuesIn(allArchFixes),
    [](const ::testing::TestParamInfo<ArchFix> &info) {
        switch (info.param) {
          case ArchFix::LazyPipelineCheck: return "LazyPipeline";
          case ArchFix::PreflightWindowFault: return "Preflight";
          case ArchFix::VectoredSyscalls: return "Vectored";
          case ArchFix::FaultAddressRegister: return "FaultAddr";
          case ArchFix::CacheContextTags: return "CacheTags";
        }
        return "unknown";
    });

TEST(ArchFixes, I860TrapFixRemovesInterpretationInstructions)
{
    MachineDesc i860 = makeMachine(MachineId::I860);
    std::uint64_t stock =
        buildHandler(i860, Primitive::Trap).instructionCount();
    std::uint64_t fixed =
        buildImprovedHandler(i860, Primitive::Trap,
                             ArchFix::FaultAddressRegister)
            .instructionCount();
    // s3.1: the interpretation adds 26 instructions; the fix replaces
    // them with one control-register read.
    EXPECT_EQ(stock - fixed, 25u);
}

// ---- URPC --------------------------------------------------------------

TEST(Urpc, AvoidsKernelOnCapableMachines)
{
    // On the RS6000 (atomic op, flat registers) URPC handily beats
    // LRPC.
    MachineDesc rs6k = makeMachine(MachineId::RS6000);
    double lrpc = LrpcModel(rs6k).nullCall().totalUs();
    double urpc = UrpcModel(rs6k).nullCall().totalUs();
    EXPECT_LT(urpc, lrpc / 2.0);
}

TEST(Urpc, MipsPaysKernelLocks)
{
    // No test&set: the "user-level" locks trap, eroding the win.
    UrpcBreakdown mips =
        UrpcModel(makeMachine(MachineId::R3000)).nullCall();
    UrpcBreakdown rs6k =
        UrpcModel(makeMachine(MachineId::RS6000)).nullCall();
    EXPECT_GT(mips.lockUs, 5.0 * rs6k.lockUs);
}

TEST(Urpc, SparcPaysWindowTraffic)
{
    UrpcBreakdown sparc =
        UrpcModel(makeMachine(MachineId::SPARC)).nullCall();
    UrpcBreakdown rs6k =
        UrpcModel(makeMachine(MachineId::RS6000)).nullCall();
    EXPECT_GT(sparc.threadSwitchUs, 3.0 * rs6k.threadSwitchUs);
}

TEST(Urpc, ReallocationAmortizes)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    UrpcConfig every_call;
    every_call.callsPerReallocation = 1;
    UrpcConfig amortized;
    amortized.callsPerReallocation = 100;
    double eager = UrpcModel(m, every_call).nullCall().totalUs();
    double lazy = UrpcModel(m, amortized).nullCall().totalUs();
    EXPECT_GT(eager, lazy);
    // With per-call reallocation URPC degenerates toward LRPC.
    double lrpc = LrpcModel(m).nullCall().totalUs();
    EXPECT_GT(eager, 0.25 * lrpc);
}

// ---- reference traces ---------------------------------------------------

TEST(RefTrace, ClarkEmerShapeOnUntaggedTlb)
{
    // One fifth of references, more than ~half of the misses.
    RefTraceResult r =
        runRefTrace(makeMachine(MachineId::CVAX));
    EXPECT_NEAR(r.systemRefShare(), 0.20, 0.02);
    EXPECT_GT(r.systemMissShare(), 0.50);
    EXPECT_GT(r.systemMissRate(), 3.0 * r.userMissRate());
}

TEST(RefTrace, DeterministicPerSeed)
{
    MachineDesc m = makeMachine(MachineId::CVAX);
    RefTraceResult a = runRefTrace(m);
    RefTraceResult b = runRefTrace(m);
    EXPECT_EQ(a.userMisses, b.userMisses);
    EXPECT_EQ(a.systemMisses, b.systemMisses);
}

TEST(RefTrace, RefCountsAddUp)
{
    RefTraceConfig cfg;
    cfg.references = 100000;
    RefTraceResult r =
        runRefTrace(makeMachine(MachineId::R3000), cfg);
    EXPECT_EQ(r.userRefs + r.systemRefs, cfg.references);
    EXPECT_LE(r.userMisses, r.userRefs);
    EXPECT_LE(r.systemMisses, r.systemRefs);
}

TEST(RefTrace, TagsReduceUserMisses)
{
    RefTraceConfig cfg;
    cfg.references = 500000;
    // Same geometry, tags on/off.
    MachineDesc untagged = makeMachine(MachineId::CVAX);
    MachineDesc tagged = untagged;
    tagged.tlb.processIdTags = true;
    tagged.tlb.pidCount = 64;
    tagged.tlb.entries = untagged.tlb.entries;
    RefTraceResult u = runRefTrace(untagged, cfg);
    RefTraceResult t = runRefTrace(tagged, cfg);
    EXPECT_LT(t.userMissRate(), u.userMissRate());
}

TEST(RefTrace, BiggerTlbMissesLess)
{
    MachineDesc small = makeMachine(MachineId::CVAX); // 28 entries
    MachineDesc big = small;
    big.tlb.entries = 256;
    RefTraceResult s = runRefTrace(small);
    RefTraceResult b = runRefTrace(big);
    EXPECT_LT(b.systemMissRate(), s.systemMissRate());
    EXPECT_LE(b.userMissRate(), s.userMissRate());
}

TEST(RefTrace, SystemHeavyWorkloadShiftsMissShare)
{
    RefTraceConfig light, heavy;
    light.systemFraction = 0.10;
    heavy.systemFraction = 0.55;
    MachineDesc m = makeMachine(MachineId::CVAX);
    EXPECT_GT(runRefTrace(m, heavy).systemMissShare(),
              runRefTrace(m, light).systemMissShare());
}

} // namespace
} // namespace aosd
