/**
 * @file
 * Request-scoped span tracing: hook gating (off by default, on only
 * inside an armed request, compiled out under
 * -DAOSD_DISABLE_SPANTRACE), tree building and capacity-drop
 * semantics, shard-session merge laws, spans.json determinism across
 * --jobs, exemplar ordering, the tail-attribution >= 80% acceptance
 * gate on every Table 1 machine x primitive pair, and the spans
 * document's round trip through the perf database.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/machines.hh"
#include "sim/counters/counters.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/perfdb/perfdb.hh"
#include "sim/spantrace/spantrace.hh"
#include "study/span_report.hh"
#include "study/trend_report.hh"

using namespace aosd;

namespace
{

/** Restore global tracer/counter state around each test. */
class SpantraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SpanTracer::instance().take();
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }

    void
    TearDown() override
    {
        SpanTracer::instance().take();
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }
};

TEST_F(SpantraceTest, OffByDefaultAndOutsideRequests)
{
    // Untouched tracer: hooks are dormant.
    EXPECT_FALSE(spantraceEnabled());
    spanLeaf("noise", 42);
    Cycles clock = 0;
    { SpanScope s("noise", clock); }
    SpanSession session = SpanTracer::instance().take();
    EXPECT_TRUE(session.hists.empty());
    EXPECT_TRUE(session.requests.empty());

#ifndef AOSD_SPANTRACE_DISABLED
    // Armed but no request open: still dormant (the arming alone must
    // not tax simulator code that runs outside any request).
    SpanTracer::instance().enable(4);
    EXPECT_TRUE(SpanTracer::instance().armed());
    EXPECT_FALSE(spantraceEnabled());
    spanLeaf("noise", 42);
    session = SpanTracer::instance().take();
    EXPECT_TRUE(session.requests.empty());
#endif
}

#ifndef AOSD_SPANTRACE_DISABLED

TEST_F(SpantraceTest, BuildsTheLiteralInvocationTree)
{
    SpanTracer &t = SpanTracer::instance();
    t.enable(4);
    t.beginRequest("req", 7, 100);
    EXPECT_TRUE(spantraceEnabled());
    {
        Cycles clock = 100;
        SpanScope outer("outer", clock);
        spanLeaf("leaf_a", 10);
        spanLeaf("leaf_a", 5); // same name appends, never merges
        clock = 160;
    }
    spanLeaf("leaf_b", 3);
    t.endRequest(250);
    EXPECT_FALSE(spantraceEnabled());

    SpanSession session = t.take();
    ASSERT_EQ(session.requests.size(), 1u);
    const SpanRequest &req = session.requests.front();
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.root.name, "req");
    EXPECT_EQ(req.root.cycles, 150u);
    ASSERT_EQ(req.root.children.size(), 2u);
    const SpanNode &outer = req.root.children.front();
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.cycles, 60u);
    ASSERT_EQ(outer.children.size(), 2u);
    EXPECT_EQ(outer.children[0].cycles, 10u);
    EXPECT_EQ(outer.children[1].cycles, 5u);
    EXPECT_EQ(req.root.children[1].name, "leaf_b");

    const Histogram *hist = session.find("req");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), 1u);
    EXPECT_EQ(hist->max(), 150u);
}

TEST_F(SpantraceTest, GroupSpanSumsItsChildren)
{
    SpanTracer &t = SpanTracer::instance();
    t.enable(1);
    t.beginRequest("req", 0, 0);
    {
        SpanGroup g("model");
        spanLeaf("a", 30);
        spanLeaf("b", 12);
    }
    t.endRequest(100);

    SpanSession session = t.take();
    ASSERT_EQ(session.requests.size(), 1u);
    const SpanNode &group = session.requests[0].root.children.at(0);
    EXPECT_EQ(group.name, "model");
    EXPECT_EQ(group.cycles, 42u);
}

TEST_F(SpantraceTest, CapacityKeepsHistogramsAndCountsDrops)
{
    SpanTracer &t = SpanTracer::instance();
    t.enable(2);
    for (std::uint64_t i = 0; i < 5; ++i) {
        t.beginRequest("req", i, i * 100);
        t.endRequest(i * 100 + 10 + i);
    }
    SpanSession session = t.take();
    EXPECT_EQ(session.requests.size(), 2u);
    EXPECT_EQ(session.dropped, 3u);
    const Histogram *hist = session.find("req");
    ASSERT_NE(hist, nullptr);
    // Dropped requests still feed the latency histogram.
    EXPECT_EQ(hist->count(), 5u);
    EXPECT_EQ(hist->min(), 10u);
    EXPECT_EQ(hist->max(), 14u);
}

TEST_F(SpantraceTest, CounterDeltaLandsOnTheRootSpan)
{
    HwCounters::instance().enable();
    SpanTracer &t = SpanTracer::instance();
    t.enable(1);
    countEvent(HwCounter::TlbMisses, 100); // pre-request noise
    t.beginRequest("req", 0, 0);
    countEvent(HwCounter::TlbMisses, 3);
    t.endRequest(50);

    SpanSession session = t.take();
    ASSERT_EQ(session.requests.size(), 1u);
    EXPECT_EQ(session.requests[0].root.counters.get(
                  HwCounter::TlbMisses),
              3u);
}

TEST_F(SpantraceTest, SessionMergeIsAssociativeWithIdentity)
{
    auto makeSession = [](const char *name, std::uint64_t id,
                          Cycles cycles) {
        SpanTracer &t = SpanTracer::instance();
        t.enable(8);
        t.beginRequest(name, id, 0);
        t.endRequest(cycles);
        return t.take();
    };
    SpanSession a = makeSession("x", 1, 10);
    SpanSession b = makeSession("y", 2, 20);
    SpanSession c = makeSession("x", 3, 30);

    // (a + b) + c
    SpanSession left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    SpanSession bc = b;
    bc.merge(c);
    SpanSession right = a;
    right.merge(bc);

    ASSERT_EQ(left.requests.size(), 3u);
    ASSERT_EQ(right.requests.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(left.requests[i].id, right.requests[i].id);
    ASSERT_EQ(left.hists.size(), 2u); // "x" merged, "y" appended
    EXPECT_EQ(left.hists[0].first, "x");
    EXPECT_EQ(left.find("x")->count(), 2u);
    EXPECT_EQ(left.find("x")->max(), 30u);

    // Identity on both sides.
    SpanSession empty;
    SpanSession viaEmpty = empty;
    viaEmpty.merge(a);
    EXPECT_EQ(viaEmpty.requests.size(), a.requests.size());
    SpanSession aCopy = a;
    aCopy.merge(empty);
    EXPECT_EQ(aCopy.requests.size(), a.requests.size());
}

TEST_F(SpantraceTest, PauseSuppressesNestedHooks)
{
    SpanTracer &t = SpanTracer::instance();
    t.enable(1);
    t.beginRequest("req", 0, 0);
    spanLeaf("kept", 1);
    {
        SpanPause pause;
        EXPECT_FALSE(spantraceEnabled());
        spanLeaf("suppressed", 99);
    }
    EXPECT_TRUE(spantraceEnabled());
    t.endRequest(10);

    SpanSession session = t.take();
    ASSERT_EQ(session.requests.size(), 1u);
    ASSERT_EQ(session.requests[0].root.children.size(), 1u);
    EXPECT_EQ(session.requests[0].root.children[0].name, "kept");
}

#else // AOSD_SPANTRACE_DISABLED

TEST_F(SpantraceTest, CompiledOutRequestsRecordNothing)
{
    SpanTracer &t = SpanTracer::instance();
    t.enable(8);
    t.beginRequest("req", 0, 0);
    EXPECT_FALSE(spantraceEnabled());
    spanLeaf("noise", 42);
    t.endRequest(100);
    SpanSession session = t.take();
    EXPECT_TRUE(session.requests.empty());
    EXPECT_TRUE(session.hists.empty());
}

#endif // AOSD_SPANTRACE_DISABLED

/** Small study configuration so the doc tests stay fast. */
SpanOptions
smallOptions()
{
    SpanOptions opts;
    opts.requestsPerPair = 200;
    return opts;
}

TEST_F(SpantraceTest, MachinesOptionSubsetsTheGrid)
{
    // --machines SPARC,R3000: only the named machines appear, in
    // the requested order, with the ipc section filtered the same
    // way — the same subsetting spelling as aosd_counters and
    // aosd_traffic.
    SpanOptions opts = smallOptions();
    opts.requestsPerPair = 50;
    opts.machines = {MachineId::SPARC, MachineId::R3000};
    ParallelRunner runner(2);
    Json doc = buildSpansDoc(runner, opts);
    const Json &machines = doc.at("machines");
    ASSERT_EQ(machines.size(), 2u);
    EXPECT_EQ(machines.items()[0].first, "SPARC");
    EXPECT_EQ(machines.items()[1].first, "R3000");
    EXPECT_EQ(doc.at("ipc").size(), 2u);
}

TEST_F(SpantraceTest, SpansDocIsByteIdenticalAcrossJobs)
{
    ParallelRunner serial(1);
    Json doc1 = buildSpansDoc(serial, smallOptions());
    ParallelRunner fanned(8);
    Json doc8 = buildSpansDoc(fanned, smallOptions());
    EXPECT_EQ(doc1.dump(), doc8.dump());
}

TEST_F(SpantraceTest, SpansDocSchema)
{
    ParallelRunner runner(4);
    Json doc = buildSpansDoc(runner, smallOptions());
    EXPECT_EQ(doc.at("schema_version").asUint(),
              static_cast<std::uint64_t>(spansSchemaVersion));
    const Json &machines = doc.at("machines");
    EXPECT_EQ(machines.size(), table1Machines().size());
    for (const auto &[mslug, prims] : machines.items()) {
        (void)mslug;
        for (const auto &[pslug, cell] : prims.items()) {
            (void)pslug;
            ASSERT_TRUE(cell.has("cycles"));
            ASSERT_TRUE(cell.has("exemplars"));
            const Json &hist = cell.at("cycles");
            EXPECT_TRUE(hist.has("p50"));
            EXPECT_TRUE(hist.has("p99"));
            EXPECT_TRUE(hist.has("p999"));
        }
    }
    EXPECT_EQ(doc.at("ipc").size(), table1Machines().size());
}

#ifndef AOSD_SPANTRACE_DISABLED

TEST_F(SpantraceTest, ExemplarsAreSlowestFirstWithStableTieBreak)
{
    ParallelRunner runner(4);
    Json doc = buildSpansDoc(runner, smallOptions());
    for (const auto &[mslug, prims] : doc.at("machines").items()) {
        for (const auto &[pslug, cell] : prims.items()) {
            const Json &ex = cell.at("exemplars");
            ASSERT_GT(ex.size(), 0u) << mslug << "." << pslug;
            for (std::size_t i = 1; i < ex.size(); ++i) {
                std::uint64_t prev =
                    ex.at(i - 1).at("cycles").asUint();
                std::uint64_t cur = ex.at(i).at("cycles").asUint();
                EXPECT_GE(prev, cur) << mslug << "." << pslug;
                if (prev == cur)
                    EXPECT_LT(ex.at(i - 1).at("id").asUint(),
                              ex.at(i).at("id").asUint());
            }
            // The exemplar tree carries the request's counters.
            EXPECT_TRUE(ex.at(0).at("spans").has("counters"));
        }
    }
}

TEST_F(SpantraceTest, TailAttributionExplainsTheGapEverywhere)
{
    // The acceptance gate: on every Table 1 machine x primitive pair
    // the p99 exemplar's priced counter deltas must explain >= 80% of
    // the p99-minus-median cycle gap. (Requests are all priced
    // primitive events, so the attribution is in fact exact; the
    // assert leaves the mandated 20% slack.)
    ParallelRunner runner(4);
    Json doc = buildSpansDoc(runner, smallOptions());
    std::size_t cells = 0;
    for (const auto &[mslug, prims] : doc.at("machines").items()) {
        for (const auto &[pslug, cell] : prims.items()) {
            const Json &attr = cell.at("tail_attribution");
            double gap = attr.at("gap_cycles").asNumber();
            EXPECT_GT(gap, 0.0) << mslug << "." << pslug;
            EXPECT_GE(attr.at("explained_pct").asNumber(), 80.0)
                << mslug << "." << pslug;
            ++cells;
        }
    }
    EXPECT_EQ(cells, table1Machines().size() * 4);
}

TEST_F(SpantraceTest, IpcModelsTraceTheirComponentBreakdowns)
{
    ParallelRunner runner(2);
    Json doc = buildSpansDoc(runner, smallOptions());
    for (const auto &[mslug, cell] : doc.at("ipc").items()) {
        (void)mslug;
        for (const char *model : {"rpc", "lrpc", "urpc"}) {
            ASSERT_TRUE(cell.has(model));
            const Json &entry = cell.at(model);
            ASSERT_TRUE(entry.has("spans")) << model;
            // The group span nests the model's component leaves.
            const Json &root = entry.at("spans");
            ASSERT_TRUE(root.has("spans")) << model;
            EXPECT_EQ(root.at("spans").at(0).at("name").asString(),
                      model);
            EXPECT_GT(root.at("spans").at(0).at("spans").size(), 2u)
                << model;
        }
    }
}

#endif // AOSD_SPANTRACE_DISABLED

TEST_F(SpantraceTest, SpansDocRoundTripsThroughThePerfDb)
{
    ParallelRunner runner(4);
    Json spans = buildSpansDoc(runner, smallOptions());
    PerfDbRecordInputs in;
    in.spans = &spans;
    Json recJson = buildPerfDbRecord("c1", "t1", "h", "f", in);
    PerfDbRecord rec(recJson);

    bool saw_percentile = false;
    for (const PerfLeaf &leaf : recordMetrics(rec)) {
        EXPECT_EQ(leaf.path.rfind("spans.", 0), 0u) << leaf.path;
        // The digest strips the per-request trees.
        EXPECT_EQ(leaf.path.find("exemplars"), std::string::npos)
            << leaf.path;
        EXPECT_EQ(leaf.path.find("requests_per_pair"),
                  std::string::npos)
            << leaf.path;
#ifndef AOSD_SPANTRACE_DISABLED
        if (leaf.path == "spans.machines.R3000.null_syscall."
                         "cycles.p99") {
            saw_percentile = true;
            EXPECT_GT(leaf.value, 0.0);
        }
#endif
    }
#ifndef AOSD_SPANTRACE_DISABLED
    EXPECT_TRUE(saw_percentile);
#endif

    // Identical runs band cleanly through the trend checker (three
    // records: the band needs two baseline points).
    PerfDb db;
    ASSERT_TRUE(db.append(recJson));
    ASSERT_TRUE(
        db.append(buildPerfDbRecord("c2", "t2", "h", "f", in)));
    ASSERT_TRUE(
        db.append(buildPerfDbRecord("c3", "t3", "h", "f", in)));
    TrendCheckResult check = checkTrends(db, 0.05, 20, "spans.");
    EXPECT_TRUE(check.ok());
#ifndef AOSD_SPANTRACE_DISABLED
    EXPECT_GT(check.metricsChecked, 0u);
#endif
}

} // namespace
