/**
 * @file
 * The perf-diff core behind tools/aosd_diff: flattening of numeric
 * JSON leaves to stable paths, tolerance handling, detection of
 * missing/added paths — and the golden-profile check: the checked-in
 * tests/expected_profile.json diffs clean against itself, and a
 * perturbed copy is flagged with the offending path named.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "study/perfdiff.hh"

using namespace aosd;

namespace
{

Json
parse(const std::string &text)
{
    std::string error;
    Json doc = Json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    return doc;
}

Json
loadGoldenProfile()
{
    std::string path = std::string(AOSD_SOURCE_DIR) +
                       "/tests/expected_profile.json";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

TEST(PerfDiff, FlattensNumericLeavesToDottedPaths)
{
    Json doc = parse(R"({
        "a": {"b": 1, "c": [10, 20]},
        "s": "skip me",
        "flag": true,
        "nothing": null,
        "top": 3.5
    })");
    auto leaves = flattenNumericLeaves(doc);
    ASSERT_EQ(leaves.size(), 4u);
    EXPECT_EQ(leaves[0].path, "a.b");
    EXPECT_DOUBLE_EQ(leaves[0].value, 1.0);
    EXPECT_EQ(leaves[1].path, "a.c.0");
    EXPECT_EQ(leaves[2].path, "a.c.1");
    EXPECT_DOUBLE_EQ(leaves[2].value, 20.0);
    EXPECT_EQ(leaves[3].path, "top");
}

TEST(PerfDiff, IdenticalDocumentsDiffClean)
{
    Json doc = parse(R"({"x": 100, "y": {"z": 0.25}})");
    PerfDiff diff = diffPerfDocs(doc, doc, 0.01);
    EXPECT_TRUE(diff.ok());
    EXPECT_EQ(diff.compared, 2u);
    EXPECT_EQ(diff.regressions, 0u);
}

TEST(PerfDiff, ChangeBeyondToleranceNamesThePath)
{
    Json old_doc = parse(R"({"m": {"cycles": 100, "us": 5.0}})");
    Json new_doc = parse(R"({"m": {"cycles": 150, "us": 5.0}})");
    PerfDiff diff = diffPerfDocs(old_doc, new_doc, 0.01);
    EXPECT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions, 1u);
    const PerfDelta *bad = nullptr;
    for (const PerfDelta &d : diff.deltas)
        if (d.kind == PerfDelta::Kind::Changed)
            bad = &d;
    ASSERT_NE(bad, nullptr);
    EXPECT_EQ(bad->path, "m.cycles");
    EXPECT_DOUBLE_EQ(bad->oldValue, 100.0);
    EXPECT_DOUBLE_EQ(bad->newValue, 150.0);
}

TEST(PerfDiff, ChangeWithinToleranceIsClean)
{
    Json old_doc = parse(R"({"v": 100})");
    Json new_doc = parse(R"({"v": 104})");
    EXPECT_TRUE(diffPerfDocs(old_doc, new_doc, 0.05).ok());
    EXPECT_FALSE(diffPerfDocs(old_doc, new_doc, 0.01).ok());
}

TEST(PerfDiff, AbsoluteSlackCoversNearZeroValues)
{
    // 0 -> 1e-6 is a 100% relative change; the absolute floor keeps
    // numeric dust from failing the gate.
    Json old_doc = parse(R"({"v": 0})");
    Json new_doc = parse(R"({"v": 1e-06})");
    EXPECT_TRUE(diffPerfDocs(old_doc, new_doc, 0.01, 1e-3).ok());
    EXPECT_FALSE(diffPerfDocs(old_doc, new_doc, 0.01, 1e-9).ok());
}

TEST(PerfDiff, MissingAndAddedPathsAreRegressions)
{
    Json old_doc = parse(R"({"kept": 1, "dropped": 2})");
    Json new_doc = parse(R"({"kept": 1, "grown": 3})");
    PerfDiff diff = diffPerfDocs(old_doc, new_doc, 0.01);
    EXPECT_EQ(diff.compared, 1u);
    EXPECT_EQ(diff.regressions, 2u);
    bool saw_missing = false, saw_added = false;
    for (const PerfDelta &d : diff.deltas) {
        if (d.kind == PerfDelta::Kind::Missing) {
            EXPECT_EQ(d.path, "dropped");
            saw_missing = true;
        }
        if (d.kind == PerfDelta::Kind::Added) {
            EXPECT_EQ(d.path, "grown");
            saw_added = true;
        }
    }
    EXPECT_TRUE(saw_missing);
    EXPECT_TRUE(saw_added);
}

TEST(PerfDiff, PerKeyToleranceOverridesTheGlobalBand)
{
    // p999 of a small-sample histogram earns a wider band than the
    // rest of the document; the override keys on the leaf segment.
    Json old_doc =
        parse(R"({"cell": {"p50": 100, "p999": 100}, "p999": 100})");
    Json new_doc =
        parse(R"({"cell": {"p50": 100, "p999": 108}, "p999": 108})");

    // Global 1%: both p999 leaves regress.
    EXPECT_EQ(diffPerfDocs(old_doc, new_doc, 0.01).regressions, 2u);

    // Override p999 to 10%: clean, at depth and at the root.
    KeyTolerances tols = {{"p999", 0.10}};
    PerfDiff diff = diffPerfDocs(old_doc, new_doc, 0.01, 1e-9, tols);
    EXPECT_TRUE(diff.ok());
    EXPECT_EQ(diff.compared, 3u);

    // The override is scoped to its key: p50 keeps the global band.
    Json p50_moved =
        parse(R"({"cell": {"p50": 108, "p999": 100}, "p999": 100})");
    EXPECT_FALSE(
        diffPerfDocs(old_doc, p50_moved, 0.01, 1e-9, tols).ok());

    // First matching entry wins.
    KeyTolerances stacked = {{"p999", 0.10}, {"p999", 0.0001}};
    EXPECT_TRUE(
        diffPerfDocs(old_doc, new_doc, 0.01, 1e-9, stacked).ok());
}

TEST(PerfDiff, GoldenProfileDiffsCleanAgainstItself)
{
    Json golden = loadGoldenProfile();
    PerfDiff diff = diffPerfDocs(golden, golden, 0.01);
    EXPECT_TRUE(diff.ok());
    EXPECT_GT(diff.compared, 100u); // a real tree, not a stub
}

TEST(PerfDiff, PerturbedGoldenProfileIsFlaggedByPath)
{
    Json golden = loadGoldenProfile();

    // Deep-copy and bump one figure 50%.
    Json machines = golden.at("machines");
    Json cvax = machines.at("CVAX");
    Json ns = cvax.at("null_syscall");
    double cycles = ns.at("cycles_per_call").asNumber();
    ns.set("cycles_per_call", cycles * 1.5);
    cvax.set("null_syscall", std::move(ns));
    machines.set("CVAX", std::move(cvax));
    Json perturbed = golden;
    perturbed.set("machines", std::move(machines));

    PerfDiff diff = diffPerfDocs(golden, perturbed, 0.01);
    EXPECT_FALSE(diff.ok());
    ASSERT_EQ(diff.regressions, 1u);
    for (const PerfDelta &d : diff.deltas) {
        if (d.kind == PerfDelta::Kind::Changed) {
            EXPECT_EQ(d.path,
                      "machines.CVAX.null_syscall.cycles_per_call");
        }
    }
}

TEST(PerfDiff, TimeseriesArraysDiffElementWise)
{
    // The timeseries.json shape: parallel per-sample arrays. A single
    // moved sample must be named with its element index in the path;
    // equal-length identical arrays must diff clean.
    Json old_doc = parse(R"({
        "table7": {"cells": {"spellcheck_1.mach25": {"timeseries": {
            "cycles": [100, 200, 300],
            "series": {"tlb_misses_per_kcycle": [4.0, 5.0, 6.0]}
        }}}}
    })");
    Json new_doc = parse(R"({
        "table7": {"cells": {"spellcheck_1.mach25": {"timeseries": {
            "cycles": [100, 200, 300],
            "series": {"tlb_misses_per_kcycle": [4.0, 9.0, 6.0]}
        }}}}
    })");

    PerfDiff clean = diffPerfDocs(old_doc, old_doc, 0.01);
    EXPECT_TRUE(clean.ok());
    EXPECT_EQ(clean.compared, 6u);

    PerfDiff diff = diffPerfDocs(old_doc, new_doc, 0.01);
    EXPECT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions, 1u);
    bool named = false;
    for (const PerfDelta &d : diff.deltas)
        if (d.kind == PerfDelta::Kind::Changed) {
            EXPECT_EQ(d.path,
                      "table7.cells.spellcheck_1.mach25.timeseries."
                      "series.tlb_misses_per_kcycle.1");
            EXPECT_DOUBLE_EQ(d.newValue, 9.0);
            named = true;
        }
    EXPECT_TRUE(named);
}

TEST(PerfDiff, ShorterArrayReportsMissingTailElements)
{
    Json old_doc = parse(R"({"rates": [1.0, 2.0, 3.0]})");
    Json new_doc = parse(R"({"rates": [1.0, 2.0]})");
    PerfDiff diff = diffPerfDocs(old_doc, new_doc, 0.01);
    EXPECT_FALSE(diff.ok());
    bool missing_tail = false;
    for (const PerfDelta &d : diff.deltas)
        if (d.kind == PerfDelta::Kind::Missing &&
            d.path == "rates.2")
            missing_tail = true;
    EXPECT_TRUE(missing_tail);
}

TEST(PerfDiff, StructuralMismatchNamesTheFirstDivergentPath)
{
    Json old_doc = parse(R"({
        "machines": {"CVAX": {"counters": {"loads": 1, "stores": 2}}},
        "rates": [1.0, 2.0]
    })");

    // Identical shapes (even with different values) are clean.
    Json same = parse(R"({
        "machines": {"CVAX": {"counters": {"loads": 9, "stores": 8}}},
        "rates": [5.0, 6.0]
    })");
    EXPECT_FALSE(firstStructuralMismatch(old_doc, same).found);

    // A deleted key is named by its parent's dotted path.
    Json dropped = parse(R"({
        "machines": {"CVAX": {"counters": {"stores": 2}}},
        "rates": [1.0, 2.0]
    })");
    StructuralMismatch m = firstStructuralMismatch(old_doc, dropped);
    ASSERT_TRUE(m.found);
    EXPECT_EQ(m.path, "machines.CVAX.counters");
    EXPECT_NE(m.description.find("'loads'"), std::string::npos)
        << m.description;
    EXPECT_NE(m.description.find("missing from the new document"),
              std::string::npos)
        << m.description;

    // An added key and a kind change are named too.
    Json added = parse(R"({
        "machines": {"CVAX": {"counters":
            {"loads": 1, "stores": 2, "flushes": 0}}},
        "rates": [1.0, 2.0]
    })");
    m = firstStructuralMismatch(old_doc, added);
    ASSERT_TRUE(m.found);
    EXPECT_NE(m.description.find("only in the new document"),
              std::string::npos)
        << m.description;

    Json retyped = parse(R"({
        "machines": {"CVAX": {"counters": {"loads": "1", "stores": 2}}},
        "rates": [1.0, 2.0]
    })");
    m = firstStructuralMismatch(old_doc, retyped);
    ASSERT_TRUE(m.found);
    EXPECT_EQ(m.path, "machines.CVAX.counters.loads");
    EXPECT_NE(m.description.find("number -> string"),
              std::string::npos)
        << m.description;

    // Array length changes name the array, not an element.
    Json shorter = parse(R"({
        "machines": {"CVAX": {"counters": {"loads": 1, "stores": 2}}},
        "rates": [1.0]
    })");
    m = firstStructuralMismatch(old_doc, shorter);
    ASSERT_TRUE(m.found);
    EXPECT_EQ(m.path, "rates");
    EXPECT_NE(m.description.find("array length 2 -> 1"),
              std::string::npos)
        << m.description;
}

} // namespace
