/**
 * @file
 * Tests for the simulated hardware performance counters: snapshot/
 * delta/reset semantics, disabled-mode zero-recording, the
 * cycles-explained reconciliation for every Table 1 machine x
 * primitive, the component instrumentation (write buffer, cache, TLB,
 * kernel, IPC, SPARC register windows), Perfetto counter tracks, and
 * the checked-in counters.json golden.
 *
 * Regenerate the golden after an intentional behavioural change:
 *
 *   build/tools/aosd_counters --json tests/expected_counters.json
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "arch/machines.hh"
#include "cpu/counted_primitives.hh"
#include "mem/cache.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "mem/write_buffer.hh"
#include "os/ipc/lrpc.hh"
#include "os/kernel/kernel.hh"
#include "sim/counters/counters.hh"
#include "sim/counters/reconcile.hh"
#include "sim/trace.hh"
#include "study/counters_report.hh"
#include "study/perfdiff.hh"

using namespace aosd;

namespace
{

/** Restore global counter/tracer state around each test. */
class CountersTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }

    void
    TearDown() override
    {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        Tracer::instance().disable();
        Tracer::instance().clear();
    }
};

} // namespace

// ---- core semantics -----------------------------------------------

TEST_F(CountersTest, SnapshotDeltaReset)
{
    HwCounters &c = HwCounters::instance();
    c.enable();
    countEvent(HwCounter::Loads, 5);
    CounterSet start = c.snapshot();
    countEvent(HwCounter::Loads, 3);
    countEvent(HwCounter::Stores, 2);
    CounterSet end = c.snapshot();

    CounterSet d = end.delta(start);
    EXPECT_EQ(d.get(HwCounter::Loads), 3u);
    EXPECT_EQ(d.get(HwCounter::Stores), 2u);
    EXPECT_EQ(end.get(HwCounter::Loads), 8u);

    c.reset();
    EXPECT_EQ(c.value(HwCounter::Loads), 0u);
    EXPECT_EQ(c.snapshot().totalEvents(), 0u);
}

TEST_F(CountersTest, HighWaterDeltaKeepsEndValue)
{
    HwCounters &c = HwCounters::instance();
    c.enable();
    countHighWater(HwCounter::WbOccupancyHighWater, 6);
    CounterSet start = c.snapshot();
    countHighWater(HwCounter::WbOccupancyHighWater, 4); // below: no-op
    CounterSet end = c.snapshot();
    // A maximum does not difference; the delta reports the high-water
    // mark itself.
    EXPECT_EQ(end.delta(start).get(HwCounter::WbOccupancyHighWater),
              6u);
    countHighWater(HwCounter::WbOccupancyHighWater, 9);
    EXPECT_EQ(c.value(HwCounter::WbOccupancyHighWater), 9u);
}

TEST_F(CountersTest, DisabledCountersRecordNothing)
{
    HwCounters &c = HwCounters::instance();
    EXPECT_FALSE(c.enabled());
    countEvent(HwCounter::Loads, 100);
    countHighWater(HwCounter::WbOccupancyHighWater, 7);
    EXPECT_EQ(c.value(HwCounter::Loads), 0u);
    EXPECT_EQ(c.value(HwCounter::WbOccupancyHighWater), 0u);

    // A full simulated primitive run records nothing either.
    MachineDesc m = makeMachine(MachineId::R2000);
    SimKernel kernel(m);
    kernel.syscall();
    EXPECT_EQ(c.snapshot().totalEvents(), 0u);
}

TEST_F(CountersTest, DisableFreezesButKeepsValues)
{
    HwCounters &c = HwCounters::instance();
    c.enable();
    countEvent(HwCounter::Branches, 4);
    c.disable();
    countEvent(HwCounter::Branches, 4);
    EXPECT_EQ(c.value(HwCounter::Branches), 4u);
    c.resume();
    countEvent(HwCounter::Branches, 1);
    EXPECT_EQ(c.value(HwCounter::Branches), 5u);
}

TEST_F(CountersTest, SaturationFree64BitAccumulate)
{
    HwCounters &c = HwCounters::instance();
    c.enable();
    // Counters are plain 64-bit accumulators: huge increments add
    // exactly, with no clamp at any internal width.
    std::uint64_t big = std::uint64_t{1} << 62;
    countEvent(HwCounter::IpcBytesCopied, big);
    countEvent(HwCounter::IpcBytesCopied, big);
    EXPECT_EQ(c.value(HwCounter::IpcBytesCopied), big * 2);
    countEvent(HwCounter::IpcBytesCopied, 1);
    EXPECT_EQ(c.value(HwCounter::IpcBytesCopied), big * 2 + 1);
}

TEST_F(CountersTest, EveryCounterHasAUniqueName)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < numHwCounters; ++i)
        names.insert(counterName(static_cast<HwCounter>(i)));
    EXPECT_EQ(names.size(), numHwCounters);
    EXPECT_EQ(names.count("unknown"), 0u);
}

// ---- component instrumentation ------------------------------------

TEST_F(CountersTest, WriteBufferCountsStallsAndHighWater)
{
    MachineDesc m = makeMachine(MachineId::R2000); // depth-4 buffer
    HwCounters::instance().enable();
    WriteBuffer wb(m.writeBuffer);
    Cycles now = 0;
    Cycles stalls = 0;
    for (int i = 0; i < 12; ++i)
        stalls += wb.store(now, true); // back-to-back: must stall
    HwCounters &c = HwCounters::instance();
    EXPECT_EQ(c.value(HwCounter::WbStores), 12u);
    EXPECT_GT(stalls, 0u);
    EXPECT_GT(c.value(HwCounter::WbStalls), 0u);
    EXPECT_EQ(c.value(HwCounter::WbStallCycles), stalls);
    EXPECT_EQ(c.value(HwCounter::WbOccupancyHighWater),
              m.writeBuffer.depth);
}

TEST_F(CountersTest, CacheCountsHitsMissesAndFlushes)
{
    MachineDesc m = makeMachine(MachineId::SPARC); // virtual cache
    HwCounters::instance().enable();
    Cache cache(m.cache);
    cache.access(0x1000, 1, false); // miss
    cache.access(0x1000, 1, false); // hit
    cache.access(0x1000, 1, true);  // hit (write)
    HwCounters &c = HwCounters::instance();
    EXPECT_EQ(c.value(HwCounter::CacheMisses), 1u);
    EXPECT_EQ(c.value(HwCounter::CacheHits), 2u);

    cache.flushPage(0x1000, 1);
    std::uint64_t page_lines = pageBytes / m.cache.lineBytes;
    EXPECT_EQ(c.value(HwCounter::CacheFlushLines), page_lines);
    cache.flushAll();
    EXPECT_EQ(c.value(HwCounter::CacheFlushLines),
              page_lines + m.cache.sizeBytes / m.cache.lineBytes);
}

TEST_F(CountersTest, WriteThroughStoresAreCounted)
{
    MachineDesc m = makeMachine(MachineId::R2000); // write-through
    ASSERT_EQ(m.cache.policy, WritePolicy::WriteThrough);
    HwCounters::instance().enable();
    Cache cache(m.cache);
    cache.access(0x2000, 1, true); // miss, write
    cache.access(0x2000, 1, true); // hit, write
    EXPECT_EQ(
        HwCounters::instance().value(HwCounter::CacheWriteThroughs),
        2u);
}

TEST_F(CountersTest, TlbCountsMissesRefillsAndPurges)
{
    MachineDesc m = makeMachine(MachineId::R2000); // software TLB
    HwCounters::instance().enable();
    Tlb tlb(m.tlb);
    TlbLookup miss = tlb.lookup(0x10, 1, false);
    EXPECT_FALSE(miss.hit);
    tlb.insert(0x10, 1, 0x99, {});
    TlbLookup hit = tlb.lookup(0x10, 1, false);
    EXPECT_TRUE(hit.hit);

    HwCounters &c = HwCounters::instance();
    EXPECT_EQ(c.value(HwCounter::TlbMisses), 1u);
    EXPECT_EQ(c.value(HwCounter::TlbHits), 1u);
    EXPECT_EQ(c.value(HwCounter::TlbRefillCycles), miss.missCycles);

    tlb.invalidate(0x10, 1);
    tlb.invalidateAll();
    EXPECT_EQ(c.value(HwCounter::TlbPurges), 2u);
}

TEST_F(CountersTest, KernelCountsPrimitiveInvocations)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    HwCounters::instance().enable();
    SimKernel kernel(m);
    AddressSpace &other = kernel.createSpace("other");
    kernel.syscall();
    kernel.syscall();
    kernel.trap();
    kernel.contextSwitchTo(other);
    kernel.threadSwitch();
    kernel.emulateInstructions(7);

    HwCounters &c = HwCounters::instance();
    EXPECT_EQ(c.value(HwCounter::KernelSyscalls), 2u);
    EXPECT_EQ(c.value(HwCounter::KernelTraps), 1u);
    EXPECT_EQ(c.value(HwCounter::ContextSwitches), 1u);
    // The address-space switch implies a thread switch (Table 7 note).
    EXPECT_EQ(c.value(HwCounter::ThreadSwitches), 2u);
    EXPECT_EQ(c.value(HwCounter::EmulatedInstrs), 7u);
}

TEST_F(CountersTest, AsidRolloverForcesAPurgeAndIsCounted)
{
    MachineDesc m = makeMachine(MachineId::R2000);
    ASSERT_TRUE(m.tlb.processIdTags);
    ASSERT_GT(m.tlb.pidCount, 0u);
    HwCounters::instance().enable();
    SimKernel kernel(m);
    // Space 0 is the kernel; creating pidCount more spaces wraps the
    // ASID allocator.
    for (std::uint32_t i = 0; i < m.tlb.pidCount; ++i)
        kernel.createSpace("s" + std::to_string(i));
    EXPECT_GE(HwCounters::instance().value(HwCounter::AsidRollovers),
              1u);
}

TEST_F(CountersTest, SparcContextSwitchTakesWindowTraps)
{
    MachineDesc m = makeMachine(MachineId::SPARC);
    CountedPrimitiveRun run =
        countPrimitive(m, Primitive::ContextSwitch, 1);
    int pairs = static_cast<int>(
        m.regWindows.avgSaveRestorePerSwitch + 0.5);
    ASSERT_GT(pairs, 0);
    EXPECT_EQ(run.counters.get(HwCounter::WindowOverflows),
              static_cast<std::uint64_t>(pairs));
    EXPECT_EQ(run.counters.get(HwCounter::WindowUnderflows),
              static_cast<std::uint64_t>(pairs));
    EXPECT_EQ(run.counters.get(HwCounter::WindowsSpilled),
              static_cast<std::uint64_t>(pairs));
}

TEST_F(CountersTest, NonSparcMachinesTakeNoWindowTraps)
{
    for (MachineId id : {MachineId::CVAX, MachineId::R2000,
                         MachineId::R3000, MachineId::M88000}) {
        CountedPrimitiveRun run = countPrimitive(
            makeMachine(id), Primitive::ContextSwitch, 1);
        EXPECT_EQ(run.counters.get(HwCounter::WindowOverflows), 0u)
            << machineSlug(id);
        EXPECT_EQ(run.counters.get(HwCounter::WindowUnderflows), 0u)
            << machineSlug(id);
    }
}

TEST_F(CountersTest, LrpcCountsFastPathMessages)
{
    MachineDesc m = makeMachine(MachineId::CVAX);
    HwCounters::instance().enable();
    LrpcConfig cfg;
    LrpcModel lrpc(m, cfg);
    lrpc.nullCall();
    HwCounters &c = HwCounters::instance();
    EXPECT_GE(c.value(HwCounter::IpcMessages), 2u);
    EXPECT_EQ(c.value(HwCounter::IpcFastPath), 1u);
    EXPECT_EQ(c.value(HwCounter::IpcBytesCopied),
              2ull * cfg.argBytes);
}

// ---- the cycles-explained cross-check -----------------------------

TEST_F(CountersTest, EveryTable1PairReconcilesExactly)
{
    for (const MachineDesc &m : table1Machines()) {
        for (Primitive p : allPrimitives) {
            CountedPrimitiveRun run = countPrimitive(m, p, 4);
            EXPECT_GT(run.totalCycles, 0u)
                << machineSlug(m.id) << "/" << primitiveSlug(p);
            EXPECT_NEAR(run.reconciliation.explainedPct(), 100.0,
                        0.1)
                << machineSlug(m.id) << "/" << primitiveSlug(p);
            EXPECT_TRUE(run.reconciliation.reconciles(5.0));
        }
    }
}

TEST_F(CountersTest, ReconciliationDetectsUncountedCycles)
{
    // Fabricate a hole: drop a term's events and the window must no
    // longer reconcile.
    MachineDesc m = makeMachine(MachineId::R2000);
    CountedPrimitiveRun run =
        countPrimitive(m, Primitive::NullSyscall, 1);
    CounterSet crippled = run.counters;
    crippled.set(HwCounter::IssueSlots, 0);
    Reconciliation r =
        reconcileCycles(m, crippled, run.totalCycles);
    EXPECT_LT(r.explainedPct(), 95.0);
    EXPECT_FALSE(r.reconciles(5.0));

    // Over-explaining (a double count) fails the gate too.
    CounterSet inflated = run.counters;
    inflated.set(HwCounter::TrapEnters,
                 inflated.get(HwCounter::TrapEnters) + 100);
    Reconciliation over =
        reconcileCycles(m, inflated, run.totalCycles);
    EXPECT_GT(over.explainedPct(), 105.0);
    EXPECT_FALSE(over.reconciles(5.0));
}

TEST_F(CountersTest, CountedRunIsIsolated)
{
    HwCounters &c = HwCounters::instance();
    c.enable();
    countEvent(HwCounter::Loads, 123);
    CountedPrimitiveRun run = countPrimitive(
        makeMachine(MachineId::R3000), Primitive::Trap, 1);
    // The run measured only its own window...
    EXPECT_EQ(run.counters.get(HwCounter::KernelSyscalls), 0u);
    // ...and left the global file enabled (we were counting) but
    // cleared of the run's events.
    EXPECT_TRUE(c.enabled());
    EXPECT_EQ(c.value(HwCounter::InstrRetired), 0u);
}

// ---- Perfetto export ----------------------------------------------

TEST_F(CountersTest, CounterTracksExportAsCounterPhase)
{
    MachineDesc m = makeMachine(MachineId::R2000);
    Tracer &tr = Tracer::instance();
    tr.enable(1 << 12);
    HwCounters::instance().enable();
    WriteBuffer wb(m.writeBuffer);
    for (int i = 0; i < 8; ++i)
        wb.store(0, true);
    Json doc = tr.toChromeJson();

    bool saw_counter = false;
    bool saw_process_name = false;
    bool saw_counters_lane_name = false;
    for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
        const Json &ev = doc.at("traceEvents").at(i);
        const std::string &ph = ev.at("ph").asString();
        if (ph == "C" &&
            ev.at("name").asString() == "wb_occupancy") {
            saw_counter = true;
            EXPECT_TRUE(ev.at("args").has("value"));
            EXPECT_EQ(ev.at("tid").asUint(),
                      static_cast<std::uint64_t>(
                          traceEventLane(TraceEvent::Counter)));
        }
        if (ph == "M") {
            if (ev.at("name").asString() == "process_name")
                saw_process_name = true;
            if (ev.at("name").asString() == "thread_name" &&
                ev.at("args").at("name").asString() == "counters")
                saw_counters_lane_name = true;
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_process_name);
    EXPECT_TRUE(saw_counters_lane_name);
}

TEST_F(CountersTest, MetadataNamesEveryUsedLane)
{
    Tracer &tr = Tracer::instance();
    tr.enable(64);
    tr.instant(TraceEvent::TlbMiss, "tlb_miss", 10);
    tr.instant(TraceEvent::WindowOverflow, "window_overflow");
    Json doc = tr.toChromeJson();

    std::set<std::string> lane_names;
    for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
        const Json &ev = doc.at("traceEvents").at(i);
        if (ev.at("ph").asString() == "M" &&
            ev.at("name").asString() == "thread_name")
            lane_names.insert(ev.at("args").at("name").asString());
    }
    EXPECT_EQ(lane_names.count("mem/tlb"), 1u);
    EXPECT_EQ(lane_names.count("cpu/reg_windows"), 1u);
    EXPECT_EQ(lane_names.count("os/kernel"), 0u); // unused lane
}

// ---- the checked-in golden ----------------------------------------

namespace
{

std::string
goldenPath()
{
    return std::string(AOSD_SOURCE_DIR) +
           "/tests/expected_counters.json";
}

} // namespace

TEST_F(CountersTest, GoldenCountersMatchSnapshot)
{
    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << " — regenerate with: aosd_counters --json "
           "tests/expected_counters.json";
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    Json expected = Json::parse(ss.str(), &err);
    ASSERT_TRUE(err.empty()) << "bad golden JSON: " << err;

    unsigned reps = static_cast<unsigned>(
        expected.at("repetitions").asUint());
    Json actual =
        buildCountersDoc(countAllPrimitives(table1Machines(), reps),
                         reps);

    PerfDiff diff = diffPerfDocs(expected, actual, 0.05);
    EXPECT_GT(diff.compared, 0u);
    for (const PerfDelta &d : diff.deltas) {
        if (d.kind == PerfDelta::Kind::Within)
            continue;
        ADD_FAILURE() << d.path << ": " << d.oldValue << " -> "
                      << d.newValue;
    }
    EXPECT_TRUE(diff.ok())
        << "counters drifted. If intentional, regenerate: "
           "aosd_counters --json tests/expected_counters.json";
}
