/**
 * @file
 * Tests for LRPC bindings, A-stacks, and the physical frame allocator.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "mem/phys_mem.hh"
#include "os/ipc/binding.hh"
#include "os/kernel/kernel.hh"

namespace aosd
{
namespace
{

class BindingTest : public ::testing::Test
{
  protected:
    BindingTest()
        : kernel(makeMachine(MachineId::CVAX)),
          client(kernel.createSpace("client")),
          server(kernel.createSpace("server"))
    {}

    SimKernel kernel;
    AddressSpace &client;
    AddressSpace &server;
    BindingRegistry registry;
};

TEST_F(BindingTest, BindToExportedInterface)
{
    registry.exportInterface("fs", server);
    auto id = registry.bind("fs", client);
    ASSERT_TRUE(id.has_value());
    Binding *b = registry.binding(*id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->client(), &client);
    EXPECT_EQ(b->server(), &server);
}

TEST_F(BindingTest, BindToUnknownInterfaceFails)
{
    EXPECT_FALSE(registry.bind("nope", client).has_value());
    EXPECT_EQ(registry.stats().get("bind_failures"), 1u);
}

TEST_F(BindingTest, DoubleExportIsFatal)
{
    registry.exportInterface("fs", server);
    EXPECT_EXIT(registry.exportInterface("fs", server),
                ::testing::ExitedWithCode(1), "already exported");
}

TEST_F(BindingTest, ValidationChecksCaller)
{
    registry.exportInterface("fs", server);
    auto id = registry.bind("fs", client);
    EXPECT_TRUE(registry.validate(*id, client));
    EXPECT_FALSE(registry.validate(*id, server)); // wrong domain
    EXPECT_FALSE(registry.validate(42, client));  // no such binding
}

TEST_F(BindingTest, AStacksAreExhaustible)
{
    registry.exportInterface("fs", server);
    auto id = registry.bind("fs", client, /*astacks=*/2);
    Binding *b = registry.binding(*id);
    auto s1 = b->acquireAStack();
    auto s2 = b->acquireAStack();
    ASSERT_TRUE(s1 && s2);
    EXPECT_NE(*s1, *s2);
    EXPECT_FALSE(b->acquireAStack().has_value()); // all in use
    b->releaseAStack(*s1);
    EXPECT_TRUE(b->acquireAStack().has_value());
}

TEST_F(BindingTest, AStacksMappedAtDistinctSharedAddresses)
{
    registry.exportInterface("fs", server);
    registry.exportInterface("net", server);
    // Take the Binding pointers only after both bind() calls: bind()
    // can grow the registry's vector and invalidate earlier pointers.
    std::uint32_t id1 = *registry.bind("fs", client, 4);
    std::uint32_t id2 = *registry.bind("net", client, 4);
    auto b1 = registry.binding(id1);
    auto b2 = registry.binding(id2);
    // A-stack VPNs never collide across bindings.
    for (const AStack &s1 : b1->aStacks())
        for (const AStack &s2 : b2->aStacks())
            EXPECT_NE(s1.vpn, s2.vpn);
}

TEST_F(BindingTest, FreeCountTracksUse)
{
    registry.exportInterface("fs", server);
    Binding *b = registry.binding(*registry.bind("fs", client, 3));
    EXPECT_EQ(b->freeAStacks(), 3u);
    auto s = b->acquireAStack();
    EXPECT_EQ(b->freeAStacks(), 2u);
    b->releaseAStack(*s);
    EXPECT_EQ(b->freeAStacks(), 3u);
}

// ---- physical memory -------------------------------------------------

TEST(PhysMem, AllocatesDistinctFrames)
{
    PhysMem mem(8);
    Pfn a = mem.alloc();
    Pfn b = mem.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(mem.allocatedFrames(), 2u);
    EXPECT_EQ(mem.freeFrames(), 6u);
}

TEST(PhysMem, FreeRecyclesFrames)
{
    PhysMem mem(2);
    Pfn a = mem.alloc();
    Pfn b = mem.alloc();
    mem.free(a);
    Pfn c = mem.alloc();
    EXPECT_EQ(c, a); // LIFO recycling, deterministic
    EXPECT_NE(c, b);
}

TEST(PhysMem, PeakTracksHighWater)
{
    PhysMem mem(4);
    Pfn a = mem.alloc();
    mem.alloc();
    mem.free(a);
    mem.alloc();
    EXPECT_EQ(mem.peakAllocated(), 2u);
}

TEST(PhysMem, ExhaustionIsFatal)
{
    PhysMem mem(1);
    mem.alloc();
    EXPECT_EXIT(mem.alloc(), ::testing::ExitedWithCode(1),
                "out of physical memory");
}

TEST(PhysMem, DoubleFreePanics)
{
    PhysMem mem(2);
    Pfn a = mem.alloc();
    mem.free(a);
    EXPECT_DEATH(mem.free(a), "unallocated");
}

} // namespace
} // namespace aosd
