/**
 * @file
 * Unit tests for the write buffer timing model (§2.3).
 */

#include <gtest/gtest.h>

#include "mem/write_buffer.hh"

namespace aosd
{
namespace
{

TEST(WriteBuffer, NoStallWhileNotFull)
{
    WriteBuffer wb({4, 5, false, 5, false});
    EXPECT_EQ(wb.store(1, true), 0u);
    EXPECT_EQ(wb.store(2, true), 0u);
    EXPECT_EQ(wb.store(3, true), 0u);
    EXPECT_EQ(wb.store(4, true), 0u);
    EXPECT_EQ(wb.occupancy(4), 4u);
}

TEST(WriteBuffer, StallsWhenFull)
{
    WriteBuffer wb({4, 5, false, 5, false});
    for (Cycles c = 1; c <= 4; ++c)
        wb.store(c, true);
    // Oldest write completes at 1+5=6; a store at cycle 5 must wait.
    Cycles stall = wb.store(5, true);
    EXPECT_EQ(stall, 1u);
}

TEST(WriteBuffer, SteadyStateBurstCostsDrainRate)
{
    // A long burst of back-to-back stores approaches one store per
    // drain period (the DS3100's "stall 5 cycles on every successive
    // write once the buffer is full").
    WriteBuffer wb({4, 5, false, 5, false});
    Cycles now = 0;
    Cycles total_stall = 0;
    for (int i = 0; i < 100; ++i) {
        now += 1;
        Cycles stall = wb.store(now, true);
        total_stall += stall;
        now += stall;
    }
    // 100 stores in ~500 cycles: ~4 stall cycles per store.
    EXPECT_NEAR(static_cast<double>(total_stall) / 100.0, 4.0, 0.5);
}

TEST(WriteBuffer, DrainsDuringIdleCycles)
{
    WriteBuffer wb({4, 5, false, 5, false});
    Cycles now = 0;
    for (int i = 0; i < 4; ++i)
        wb.store(++now, true);
    // 30 idle cycles: buffer fully drains; next store is free.
    now += 30;
    EXPECT_EQ(wb.occupancy(now), 0u);
    EXPECT_EQ(wb.store(now, true), 0u);
}

TEST(WriteBuffer, SamePageFastRetire)
{
    // DS5000: same-page writes retire one per cycle; a long burst
    // never fills the 6-deep buffer.
    WriteBuffer wb({6, 4, true, 1, false});
    Cycles now = 0;
    Cycles total_stall = 0;
    for (int i = 0; i < 50; ++i) {
        now += 1;
        total_stall += wb.store(now, true);
    }
    EXPECT_EQ(total_stall, 0u);
}

TEST(WriteBuffer, DifferentPageWritesStillStallFastBuffer)
{
    WriteBuffer wb({6, 4, true, 1, false});
    Cycles now = 0;
    Cycles total_stall = 0;
    for (int i = 0; i < 50; ++i) {
        now += 1;
        Cycles stall = wb.store(now, /*same_page=*/false);
        total_stall += stall;
        now += stall;
    }
    EXPECT_GT(total_stall, 50u);
}

TEST(WriteBuffer, DrainTimeReflectsBacklog)
{
    WriteBuffer wb({4, 5, false, 5, false});
    EXPECT_EQ(wb.drainTime(0), 0u);
    wb.store(1, true);
    wb.store(2, true);
    // Second write retires after the first: at 1+5+5 = 11.
    EXPECT_EQ(wb.drainTime(2), 9u);
    EXPECT_EQ(wb.drainTime(11), 0u);
}

TEST(WriteBuffer, ResetEmptiesBuffer)
{
    WriteBuffer wb({2, 5, false, 5, false});
    wb.store(1, true);
    wb.store(2, true);
    wb.reset();
    EXPECT_EQ(wb.occupancy(2), 0u);
    EXPECT_EQ(wb.store(3, true), 0u);
}

TEST(WriteBuffer, DepthZeroBehavesAsDepthOne)
{
    WriteBuffer wb({0, 6, false, 6, false});
    Cycles now = 1;
    EXPECT_EQ(wb.store(now, true), 0u);
    Cycles stall = wb.store(now + 1, true);
    EXPECT_GT(stall, 0u);
}

TEST(WriteBuffer, DeeperBufferAbsorbsBiggerBursts)
{
    auto burst_stall = [](std::uint32_t depth) {
        WriteBuffer wb({depth, 5, false, 5, false});
        Cycles now = 0, total = 0;
        for (int i = 0; i < 12; ++i) {
            now += 1;
            Cycles s = wb.store(now, true);
            total += s;
            now += s;
        }
        return total;
    };
    EXPECT_GT(burst_stall(2), burst_stall(4));
    EXPECT_GT(burst_stall(4), burst_stall(8));
    EXPECT_EQ(burst_stall(16), 0u); // burst fits entirely
}

} // namespace
} // namespace aosd
