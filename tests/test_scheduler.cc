/**
 * @file
 * Tests for the kernel thread scheduler.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/kernel/scheduler.hh"

namespace aosd
{
namespace
{

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest()
        : kernel(makeMachine(MachineId::R3000)), sched(kernel),
          a(kernel.createSpace("a")), b(kernel.createSpace("b"))
    {}

    SimKernel kernel;
    Scheduler sched;
    AddressSpace &a;
    AddressSpace &b;
};

TEST_F(SchedulerTest, RunsThreadToCompletion)
{
    int runs = 0;
    sched.spawn("t", a, [&] {
        return ++runs < 3 ? ThreadRunState::Ready
                          : ThreadRunState::Finished;
    });
    sched.run();
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(sched.finishedCount(), 1u);
    EXPECT_EQ(sched.stats().get("dispatches"), 3u);
}

TEST_F(SchedulerTest, RoundRobinAlternates)
{
    std::string order;
    sched.spawn("x", a, [&] {
        order += 'x';
        return order.size() < 6 ? ThreadRunState::Ready
                                : ThreadRunState::Finished;
    });
    sched.spawn("y", a, [&] {
        order += 'y';
        return order.size() < 6 ? ThreadRunState::Ready
                                : ThreadRunState::Finished;
    });
    sched.run(10);
    EXPECT_EQ(order.substr(0, 4), "xyxy");
}

TEST_F(SchedulerTest, PriorityPreempts)
{
    std::string order;
    sched.spawn("low", a, [&] {
        order += 'l';
        return ThreadRunState::Finished;
    }, /*priority=*/0);
    sched.spawn("high", a, [&] {
        order += 'h';
        return ThreadRunState::Finished;
    }, /*priority=*/5);
    sched.run();
    EXPECT_EQ(order, "hl");
}

TEST_F(SchedulerTest, BlockedThreadNeedsWake)
{
    int runs = 0;
    Scheduler::ThreadId id = sched.spawn("t", a, [&] {
        ++runs;
        return runs == 1 ? ThreadRunState::Blocked
                         : ThreadRunState::Finished;
    });
    sched.run();
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(sched.state(id), ThreadRunState::Blocked);
    sched.wake(id);
    sched.run();
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(sched.state(id), ThreadRunState::Finished);
}

TEST_F(SchedulerTest, WakeOfReadyThreadIsNoop)
{
    Scheduler::ThreadId id = sched.spawn(
        "t", a, [] { return ThreadRunState::Finished; });
    sched.wake(id); // Ready, not Blocked
    sched.run();
    EXPECT_EQ(sched.stats().get("wakeups"), 0u);
}

TEST_F(SchedulerTest, CrossSpaceDispatchPaysContextSwitch)
{
    kernel.contextSwitchTo(a);
    kernel.resetAccounting();
    sched.spawn("in-b", b, [] { return ThreadRunState::Finished; });
    sched.run();
    EXPECT_EQ(kernel.stats().get(kstat::addrSpaceSwitches), 1u);
}

TEST_F(SchedulerTest, SameSpaceDispatchIsThreadSwitchOnly)
{
    kernel.contextSwitchTo(a);
    kernel.resetAccounting();
    sched.spawn("t1", a, [] { return ThreadRunState::Finished; });
    sched.spawn("t2", a, [] { return ThreadRunState::Finished; });
    sched.run();
    EXPECT_EQ(kernel.stats().get(kstat::addrSpaceSwitches), 0u);
    EXPECT_EQ(kernel.stats().get(kstat::threadSwitches), 1u);
}

TEST_F(SchedulerTest, RunHonoursDispatchLimit)
{
    sched.spawn("spin", a, [] { return ThreadRunState::Ready; });
    EXPECT_EQ(sched.run(7), 7u);
    EXPECT_EQ(sched.readyCount(), 1u);
}

TEST_F(SchedulerTest, ClientServerPingPong)
{
    // A miniature RPC shape: client blocks, server wakes it.
    int phase = 0;
    Scheduler::ThreadId client = 0, server = 0;
    client = sched.spawn("client", a, [&] {
        if (phase == 0) {
            phase = 1;
            sched.wake(server);
            return ThreadRunState::Blocked;
        }
        return ThreadRunState::Finished;
    });
    server = sched.spawn("server", b, [&] {
        if (phase == 0)
            return ThreadRunState::Blocked;
        phase = 2;
        sched.wake(client);
        return ThreadRunState::Finished;
    });
    sched.run();
    EXPECT_EQ(phase, 2);
    EXPECT_EQ(sched.finishedCount(), 2u);
    // Two cross-space hops happened (a->b, b->a).
    EXPECT_GE(kernel.stats().get(kstat::addrSpaceSwitches), 2u);
}

TEST_F(SchedulerTest, StateQueryOfUnknownThreadPanics)
{
    EXPECT_DEATH(sched.state(99), "unknown thread");
}

} // namespace
} // namespace aosd
