/**
 * @file
 * Randomized property suites over the execution model, and a
 * full-system integration story exercising every subsystem together.
 */

#include <gtest/gtest.h>

#include "core/aosd.hh"

namespace aosd
{
namespace
{

// ---- exec model fuzz ---------------------------------------------------

InstrStream
randomStream(Rng &rng, std::uint32_t ops)
{
    InstrStream s;
    for (std::uint32_t i = 0; i < ops; ++i) {
        switch (rng.below(10)) {
          case 0: s.alu(static_cast<std::uint32_t>(
                      rng.between(1, 8))); break;
          case 1: s.nop(1); break;
          case 2: s.branch(1); break;
          case 3: s.load(1, rng.chance(0.3)); break;
          case 4: s.store(1, rng.chance(0.7)); break;
          case 5: s.ctrlRead(1); break;
          case 6: s.ctrlWrite(1); break;
          case 7: s.tlbPurgeEntry(1); break;
          case 8: s.microcoded(static_cast<std::uint32_t>(
                      rng.between(1, 50))); break;
          default: s.loadUncached(1); break;
        }
    }
    return s;
}

class ExecFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ExecFuzzTest, InvariantsHoldOnRandomStreams)
{
    Rng rng(GetParam());
    for (const MachineDesc &m : allMachines()) {
        ExecModel exec(m);
        for (int round = 0; round < 20; ++round) {
            InstrStream s = randomStream(
                rng, static_cast<std::uint32_t>(rng.between(1, 60)));
            PhaseResult r = exec.runStream(s);
            // Cycles can never undercut the instruction count.
            ASSERT_GE(r.cycles, r.instructions) << m.name;
            // The breakdown always accounts for every cycle.
            ASSERT_EQ(r.breakdown.total(), r.cycles) << m.name;
            // Instruction accounting matches the stream.
            ASSERT_EQ(r.instructions, s.instructionCount());
            exec.reset();
        }
    }
}

TEST_P(ExecFuzzTest, ConcatenationIsConsistent)
{
    // Running A then B from a reset buffer costs no less than A and
    // B measured with the same warm-up (monotonicity sanity).
    Rng rng(GetParam() * 31);
    MachineDesc m = makeMachine(MachineId::R2000);
    InstrStream a = randomStream(rng, 20);
    InstrStream b = randomStream(rng, 20);
    InstrStream ab = a;
    ab.append(b);

    ExecModel exec(m);
    Cycles joint = exec.runStream(ab).cycles;
    exec.reset();
    Cycles a_only = exec.runStream(a).cycles;
    exec.reset();
    Cycles b_only = exec.runStream(b).cycles;
    // Write-buffer state can make the concatenation dearer than the
    // sum of independent runs, never more than one full drain cheaper.
    EXPECT_GE(joint + 60, a_only + b_only);
    EXPECT_EQ(ab.instructionCount(),
              a.instructionCount() + b.instructionCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

// ---- full-system story ---------------------------------------------------

TEST(Integration, FullSystemStory)
{
    // One machine, one kernel: spaces, COW messaging, ports, LRPC-ish
    // crossings, threads — all charging the same primitive costs.
    MachineDesc m = makeMachine(MachineId::R3000);
    SimKernel kernel(m);
    PhysMem mem(4096);
    VmManager vm(kernel, &mem);
    PortSpace ports(kernel);

    AddressSpace &app = kernel.createSpace("app");
    AddressSpace &fs = kernel.createSpace("fs-server");
    app.setWorkingSet(0x1000, 8);
    app.mapRange(0x1000, 8, 0x100, {});
    fs.setWorkingSet(0x5000, 8);
    fs.mapRange(0x5000, 8, 0x200, {});

    // 1. The app builds a 16-page message and COW-sends it to fs.
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(app, 0x2000, 16, rw);
    std::uint64_t frames_before = mem.allocatedFrames();
    vm.shareCopyOnWrite(app, 0x2000, fs, 0x6000, 16);
    EXPECT_EQ(mem.allocatedFrames(), frames_before); // no copies yet

    // 2. fs writes 3 pages: exactly 3 frames get copied.
    for (Vpn v = 0; v < 3; ++v)
        EXPECT_EQ(vm.access(fs, 0x6000 + v, true),
                  FaultResult::CopiedOnWrite);
    EXPECT_EQ(mem.allocatedFrames(), frames_before + 3);

    // 3. The app RPCs the server over ports.
    PortId svc = ports.allocate(fs);
    PortId reply = ports.allocate(app);
    ports.grantSendRight(svc, app);
    ports.grantSendRight(reply, fs);
    kernel.contextSwitchTo(app);
    std::uint64_t sc_before = kernel.stats().get(kstat::syscalls);
    ASSERT_TRUE(portRpc(kernel, ports, app, fs, svc, reply, 128, 64));
    EXPECT_EQ(kernel.stats().get(kstat::syscalls) - sc_before, 4u);

    // 4. Fine-grained threads chew on the result.
    ThreadPackage pkg(m, ThreadLevel::User);
    pkg.setLockCount(1);
    for (int t = 0; t < 4; ++t)
        pkg.create({{500, 0}, {500, -1}, {500, 0}});
    pkg.runToCompletion();
    EXPECT_TRUE(pkg.allDone());

    // 5. Global sanity: time moved, primitives were counted, and the
    // primitive share of this IPC/VM-heavy sequence is substantial.
    EXPECT_GT(kernel.elapsedMicros(), 0.0);
    EXPECT_GT(kernel.stats().get(kstat::addrSpaceSwitches), 2u);
    EXPECT_GT(kernel.stats().get(kstat::traps), 2u);
    // (The page copies themselves are user-side byte moving, so the
    // primitive share sits near 10% even in this IPC-heavy sequence.)
    double prim_share =
        static_cast<double>(kernel.primitiveCycles()) /
        static_cast<double>(kernel.elapsedCycles());
    EXPECT_GT(prim_share, 0.05);
}

TEST(Integration, CrossModuleCostConsistency)
{
    // The same primitive cost must be observed identically through
    // every entry point that claims to use it.
    const PrimitiveCostDb &db = sharedCostDb();
    for (const MachineDesc &m : allMachines()) {
        SimKernel k(m);
        k.syscall();
        EXPECT_EQ(k.elapsedCycles(),
                  db.cycles(m.id, Primitive::NullSyscall)) << m.name;

        ExecModel exec(m);
        ExecResult direct =
            exec.run(buildHandler(m, Primitive::NullSyscall));
        EXPECT_EQ(direct.cycles,
                  db.cycles(m.id, Primitive::NullSyscall)) << m.name;
    }
}

TEST(Integration, DeterministicEndToEnd)
{
    // Two complete Table 7 studies must agree bit for bit.
    auto run = [] {
        MachSystem sys(makeMachine(MachineId::R3000),
                       OsStructure::SmallKernel);
        Table7Row r = sys.run(workloadByName("spellcheck-1"));
        return std::make_tuple(r.elapsedSeconds, r.kernelTlbMisses,
                               r.systemCalls, r.threadSwitches);
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace aosd
