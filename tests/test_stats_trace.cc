/**
 * @file
 * Tests for the observability layer: JSON round-trips of the
 * StatRegistry, trace ring-buffer overflow behaviour, and event
 * ordering under a simulated context switch.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/kernel/kernel.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace aosd;

namespace
{

/** Restore global tracer/registry state around each test. */
class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        Tracer::instance().disable();
        Tracer::instance().clear();
        StatRegistry::instance().setRetainRetired(false);
    }
};

using StatsJsonTest = ObservabilityTest;
using TraceRingTest = ObservabilityTest;
using TraceOrderTest = ObservabilityTest;

} // namespace

// ---- JSON primitive behaviour -------------------------------------

TEST(JsonTest, DumpParseRoundTrip)
{
    Json doc = Json::object();
    doc.set("int", Json(42));
    doc.set("neg", Json(-17.25));
    doc.set("big", Json(std::uint64_t{123456789012345ull}));
    doc.set("str", Json("line\nbreak \"quoted\" \\slash"));
    doc.set("flag", Json(true));
    doc.set("none", Json(nullptr));
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json("two"));
    arr.push(Json(3.5));
    doc.set("arr", std::move(arr));

    for (int indent : {-1, 0, 2}) {
        std::string err;
        Json back = Json::parse(doc.dump(indent), &err);
        EXPECT_TRUE(err.empty()) << err;
        EXPECT_TRUE(back == doc) << doc.dump(2);
    }
}

TEST(JsonTest, ParseRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
          "{\"a\":1}garbage", "[1 2]"}) {
        std::string err;
        Json v = Json::parse(bad, &err);
        EXPECT_TRUE(v.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(JsonTest, ObjectPreservesInsertionOrder)
{
    Json doc = Json::object();
    doc.set("zebra", Json(1));
    doc.set("alpha", Json(2));
    doc.set("mid", Json(3));
    EXPECT_EQ(doc.items()[0].first, "zebra");
    EXPECT_EQ(doc.items()[1].first, "alpha");
    EXPECT_EQ(doc.items()[2].first, "mid");
}

// ---- StatRegistry -------------------------------------------------

TEST_F(StatsJsonTest, RegistryJsonRoundTrip)
{
    StatGroup a("alpha");
    a.inc("x", 3);
    a.inc("y", 7);
    StatGroup b("beta");
    b.inc("z", 11);

    Json snap = StatRegistry::instance().toJson();
    std::string err;
    Json back = Json::parse(snap.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;

    std::vector<StatGroup> parsed =
        StatRegistry::parseSnapshot(back);
    // The snapshot includes every live group in the process (other
    // tests' fixtures may be alive); ours must round-trip exactly.
    bool found_a = false, found_b = false;
    for (const StatGroup &g : parsed) {
        if (g.groupName() == "alpha" && g == a)
            found_a = true;
        if (g.groupName() == "beta" && g == b)
            found_b = true;
    }
    EXPECT_TRUE(found_a);
    EXPECT_TRUE(found_b);
}

TEST_F(StatsJsonTest, GroupsRegisterForTheirLifetime)
{
    const StatRegistry &reg = StatRegistry::instance();
    std::size_t before = reg.groups().size();
    {
        StatGroup g("ephemeral");
        g.inc("n");
        EXPECT_EQ(reg.groups().size(), before + 1);
        EXPECT_NE(reg.findGroup("ephemeral"), nullptr);
    }
    EXPECT_EQ(reg.groups().size(), before);
    EXPECT_EQ(reg.findGroup("ephemeral"), nullptr);
}

TEST_F(StatsJsonTest, RetiredCountersAccumulateWhenRetained)
{
    StatRegistry &reg = StatRegistry::instance();
    reg.setRetainRetired(true);
    for (int i = 0; i < 3; ++i) {
        StatGroup g("transient");
        g.inc("events", 5);
    }
    Json snap = reg.toJson();
    bool found = false;
    const Json &groups = snap.at("stat_groups");
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const Json &g = groups.at(i);
        if (g.at("name").asString() == "transient.retired") {
            EXPECT_EQ(g.at("counters").at("events").asUint(), 15u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    reg.setRetainRetired(false);
    // Disabling retention clears the aggregate.
    EXPECT_EQ(reg.toJson().dump().find("transient.retired"),
              std::string::npos);
}

// ---- trace ring buffer --------------------------------------------

TEST_F(TraceRingTest, RingOverflowKeepsNewestRecords)
{
    Tracer &tr = Tracer::instance();
    tr.enable(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        tr.setCycle(100 + i);
        tr.instant(TraceEvent::Mark, "m", i);
    }
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    // Oldest surviving record is the 7th emitted (arg 6).
    for (std::size_t i = 0; i < tr.size(); ++i) {
        EXPECT_EQ(tr.at(i).arg, 6 + i);
        EXPECT_EQ(tr.at(i).cycle, 106 + i);
    }
    // Export reports the loss. The event array leads with metadata
    // (one process_name + one thread_name for the single lane in use)
    // before the 4 surviving records.
    Json doc = tr.toChromeJson();
    EXPECT_EQ(doc.at("otherData").at("dropped_records").asUint(), 6u);
    std::size_t records = 0;
    std::size_t metadata = 0;
    for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
        const Json &ev = doc.at("traceEvents").at(i);
        if (ev.at("ph").asString() == "M")
            ++metadata;
        else
            ++records;
    }
    EXPECT_EQ(records, 4u);
    EXPECT_EQ(metadata, 2u);
}

TEST_F(TraceRingTest, DisabledTracerRecordsNothing)
{
    Tracer &tr = Tracer::instance();
    tr.enable(8);
    tr.disable();
    tr.instant(TraceEvent::Mark, "ignored");
    EXPECT_EQ(tr.size(), 0u);
}

TEST_F(TraceRingTest, ClockNeverMovesBackwards)
{
    Tracer &tr = Tracer::instance();
    tr.enable(8);
    tr.setCycle(50);
    tr.setCycle(20);
    EXPECT_EQ(tr.cycle(), 50u);
    tr.complete(60, 5, TraceEvent::Mark, "m");
    EXPECT_EQ(tr.cycle(), 65u);
}

// ---- event ordering under a simulated context switch ---------------

TEST_F(TraceOrderTest, ContextSwitchEmitsOrderedEvents)
{
    Tracer &tr = Tracer::instance();
    tr.enable(1 << 12);

    SimKernel kernel(makeMachine(MachineId::CVAX));
    AddressSpace &a = kernel.createSpace("a");
    AddressSpace &b = kernel.createSpace("b");
    a.setWorkingSet(0x1000, 8);
    b.setWorkingSet(0x2000, 8);
    a.mapRange(0x1000, 8, 0x9000, {});
    b.mapRange(0x2000, 8, 0xa000, {});

    kernel.contextSwitchTo(a);
    std::size_t start = tr.size();
    kernel.contextSwitchTo(b);

    auto records = tr.snapshot();
    ASSERT_GT(records.size(), start);

    // The switch must open with Begin and close with End, and the
    // purge/refill activity must land between them in cycle order.
    const TraceRecord &first = records[start];
    const TraceRecord &last = records.back();
    EXPECT_EQ(first.event, TraceEvent::ContextSwitch);
    EXPECT_EQ(first.phase, TracePhase::Begin);
    EXPECT_EQ(last.event, TraceEvent::ContextSwitch);
    EXPECT_EQ(last.phase, TracePhase::End);
    EXPECT_GE(last.cycle, first.cycle);

    bool saw_purge = false, saw_miss = false, saw_fill = false;
    Cycles prev = first.cycle;
    for (std::size_t i = start; i < records.size(); ++i) {
        const TraceRecord &r = records[i];
        EXPECT_GE(r.cycle, prev)
            << "event " << i << " (" << r.name
            << ") timestamped before its predecessor";
        prev = r.cycle;
        saw_purge |= r.event == TraceEvent::TlbPurge;
        saw_miss |= r.event == TraceEvent::TlbMiss;
        saw_fill |= r.event == TraceEvent::TlbFill;
    }
    // The CVAX TLB is untagged: the switch purges, then the target's
    // working set refills.
    EXPECT_TRUE(saw_purge);
    EXPECT_TRUE(saw_miss);
    EXPECT_TRUE(saw_fill);
}

TEST_F(TraceOrderTest, SyscallEmitsCompleteEventWithCost)
{
    Tracer &tr = Tracer::instance();
    tr.enable(64);

    SimKernel kernel(makeMachine(MachineId::R3000));
    Cycles before = kernel.elapsedCycles();
    kernel.syscall();
    Cycles cost = kernel.elapsedCycles() - before;

    auto records = tr.snapshot();
    ASSERT_FALSE(records.empty());
    const TraceRecord &r = records.back();
    EXPECT_EQ(r.event, TraceEvent::Syscall);
    EXPECT_EQ(r.phase, TracePhase::Complete);
    EXPECT_EQ(r.duration, cost);
}
