/**
 * @file
 * Unit tests for the cycle-level execution model.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "cpu/exec_model.hh"

namespace aosd
{
namespace
{

TEST(ExecModel, AluAndNopAreOneCycle)
{
    ExecModel exec(makeMachine(MachineId::R3000));
    InstrStream s;
    s.alu(10).nop(5);
    PhaseResult r = exec.runStream(s);
    EXPECT_EQ(r.cycles, 15u);
    EXPECT_EQ(r.instructions, 15u);
    EXPECT_EQ(r.breakdown.base, 15u);
}

TEST(ExecModel, ColdLoadPaysMissPenalty)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ExecModel exec(m);
    InstrStream s;
    s.load(1, /*cold_miss=*/true);
    PhaseResult r = exec.runStream(s);
    EXPECT_EQ(r.cycles, 1u + m.cache.missPenaltyCycles);
    EXPECT_EQ(r.breakdown.cacheMissStall, m.cache.missPenaltyCycles);
}

TEST(ExecModel, UncachedAccessCost)
{
    MachineDesc m = makeMachine(MachineId::M88000);
    ExecModel exec(m);
    InstrStream s;
    s.loadUncached(2).storeUncached(1);
    PhaseResult r = exec.runStream(s);
    EXPECT_EQ(r.cycles, 3u * m.cache.uncachedCycles);
    EXPECT_EQ(r.breakdown.uncached, 3u * m.cache.uncachedCycles);
}

TEST(ExecModel, TrapCostsComeFromTiming)
{
    MachineDesc m = makeMachine(MachineId::SPARC);
    ExecModel exec(m);
    InstrStream s;
    s.trapEnter(false).trapReturn();
    PhaseResult r = exec.runStream(s);
    EXPECT_EQ(r.cycles, static_cast<Cycles>(
                            m.timing.trapEnterCycles +
                            m.timing.trapReturnCycles));
    EXPECT_EQ(r.instructions, 1u); // only the return is an instruction
}

TEST(ExecModel, MicrocodeCycles)
{
    ExecModel exec(makeMachine(MachineId::CVAX));
    InstrStream s;
    s.microcoded(45).microcoded(8, 2);
    PhaseResult r = exec.runStream(s);
    EXPECT_EQ(r.cycles, 45u + 16u);
    EXPECT_EQ(r.instructions, 3u);
    EXPECT_EQ(r.breakdown.microcode, 61u);
}

TEST(ExecModel, CacheFlushAllVisitsEveryLine)
{
    MachineDesc m = makeMachine(MachineId::I860);
    ExecModel exec(m);
    InstrStream s;
    s.cacheFlushAll();
    PhaseResult r = exec.runStream(s);
    Cycles lines = m.cache.sizeBytes / m.cache.lineBytes;
    EXPECT_EQ(r.cycles, lines * m.cache.flushLineCycles);
}

TEST(ExecModel, TlbOpsUseTlbDescCosts)
{
    MachineDesc m = makeMachine(MachineId::CVAX);
    ExecModel exec(m);
    InstrStream s;
    s.tlbPurgeEntry(1).tlbPurgeAll().tlbWrite(1);
    PhaseResult r = exec.runStream(s);
    EXPECT_EQ(r.cycles, static_cast<Cycles>(m.tlb.purgeEntryCycles +
                                            m.tlb.purgeAllCycles +
                                            m.tlb.writeEntryCycles));
}

TEST(ExecModel, WriteBufferStateCarriesAcrossOps)
{
    // A store burst then immediate loads: on the DS3100 the loads
    // wait for the drain; on the DS5000 they do not.
    InstrStream s;
    s.store(8);
    s.load(4);

    ExecModel ds3100(makeMachine(MachineId::R2000));
    ExecModel ds5000(makeMachine(MachineId::R3000));
    Cycles c3100 = ds3100.runStream(s).cycles;
    Cycles c5000 = ds5000.runStream(s).cycles;
    EXPECT_GT(c3100, c5000);
}

TEST(ExecModel, RunResetsBufferBetweenPrograms)
{
    MachineDesc m = makeMachine(MachineId::R2000);
    ExecModel exec(m);
    InstrStream body;
    body.store(10);
    HandlerProgram p{Primitive::Trap, {{PhaseKind::Body, body}}};
    ExecResult first = exec.run(p);
    ExecResult second = exec.run(p);
    EXPECT_EQ(first.cycles, second.cycles); // steady-state repeatable
}

TEST(ExecModel, BreakdownSumsToTotal)
{
    for (const MachineDesc &m : allMachines()) {
        ExecModel exec(m);
        InstrStream s;
        s.alu(5).store(6).load(3, true).branch(2).ctrlRead(2);
        s.tlbPurgeEntry(1).microcoded(10).trapEnter(false);
        PhaseResult r = exec.runStream(s);
        EXPECT_EQ(r.breakdown.total(), r.cycles) << m.name;
    }
}

TEST(ExecModel, PhasesAccumulateInOrder)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    ExecModel exec(m);
    InstrStream a, b;
    a.alu(10);
    b.alu(20);
    HandlerProgram p{Primitive::NullSyscall,
                     {{PhaseKind::KernelEntryExit, a},
                      {PhaseKind::CallPrep, b}}};
    ExecResult r = exec.run(p);
    EXPECT_EQ(r.cycles, 30u);
    EXPECT_EQ(r.phaseCycles(PhaseKind::KernelEntryExit), 10u);
    EXPECT_EQ(r.phaseCycles(PhaseKind::CallPrep), 20u);
    EXPECT_EQ(r.phaseCycles(PhaseKind::CCallReturn), 0u);
    EXPECT_EQ(r.instructions, 30u);
}

TEST(ExecModel, MicrosConversion)
{
    MachineDesc m = makeMachine(MachineId::R3000); // 25 MHz
    ExecModel exec(m);
    InstrStream s;
    s.alu(25);
    HandlerProgram p{Primitive::NullSyscall, {{PhaseKind::Body, s}}};
    ExecResult r = exec.run(p);
    EXPECT_NEAR(r.micros(m.clock), 1.0, 1e-9);
}

} // namespace
} // namespace aosd
