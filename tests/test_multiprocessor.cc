/**
 * @file
 * Tests for the multiprocessor thread runner (§4).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/threads/multiprocessor.hh"

namespace aosd
{
namespace
{

std::vector<WorkSlice>
plainWork(int slices, Cycles each)
{
    return std::vector<WorkSlice>(static_cast<std::size_t>(slices),
                                  WorkSlice{each, -1});
}

TEST(Multiprocessor, OneProcessorMatchesSerialWork)
{
    MpThreadRunner r(makeMachine(MachineId::R3000), ThreadLevel::User,
                     1);
    r.addThread(plainWork(10, 1000));
    MpRunResult res = r.run();
    // 10,000 cycles of work at 25 MHz = 400 us, plus nothing else
    // (single thread, no switches).
    EXPECT_NEAR(res.elapsedUs, 400.0, 1.0);
    EXPECT_EQ(res.switches, 0u);
}

TEST(Multiprocessor, IndependentWorkScalesNearlyLinearly)
{
    auto elapsed = [](std::uint32_t procs) {
        MpThreadRunner r(makeMachine(MachineId::R3000),
                         ThreadLevel::User, procs);
        for (int t = 0; t < 8; ++t)
            r.addThread(plainWork(20, 2000));
        return r.run().elapsedUs;
    };
    double p1 = elapsed(1);
    double p4 = elapsed(4);
    double p8 = elapsed(8);
    EXPECT_GT(p1 / p4, 3.0);
    EXPECT_GT(p1 / p8, 5.5);
}

TEST(Multiprocessor, MoreProcessorsThanThreadsIsHarmless)
{
    MpThreadRunner r(makeMachine(MachineId::R3000), ThreadLevel::User,
                     16);
    r.addThread(plainWork(5, 100));
    r.addThread(plainWork(5, 100));
    MpRunResult res = r.run();
    EXPECT_GT(res.elapsedUs, 0.0);
    EXPECT_LE(res.totalCpuUs, 2.1 * res.elapsedUs);
}

TEST(Multiprocessor, LockSerializationCapsSpeedup)
{
    // All work inside one lock: adding processors cannot help.
    auto elapsed = [](std::uint32_t procs) {
        MpThreadRunner r(makeMachine(MachineId::RS6000),
                         ThreadLevel::User, procs);
        r.setLockCount(1);
        for (int t = 0; t < 4; ++t) {
            std::vector<WorkSlice> s(
                20, WorkSlice{500, 0, /*holdAcrossYield=*/true});
            r.addThread(std::move(s));
        }
        return r.run();
    };
    MpRunResult p1 = elapsed(1);
    MpRunResult p8 = elapsed(8);
    // Wall time cannot shrink below the serialized locked work.
    EXPECT_GT(p8.elapsedUs, 0.5 * p1.elapsedUs);
    EXPECT_GT(p8.lockRetries, 0u);
}

TEST(Multiprocessor, KernelTrapLocksHurtScaling)
{
    // Same workload, MIPS (trap locks) vs a hypothetical MIPS with
    // test&set: the atomic version scales better.
    auto run = [](bool atomic) {
        MachineDesc m = makeMachine(MachineId::R3000);
        m.hasAtomicOp = atomic;
        MpThreadRunner r(m, ThreadLevel::User, 8);
        r.setLockCount(1);
        for (int t = 0; t < 8; ++t) {
            std::vector<WorkSlice> s;
            for (int i = 0; i < 30; ++i) {
                s.push_back({40, 0});
                s.push_back({800, -1});
            }
            r.addThread(std::move(s));
        }
        return r.run().elapsedUs;
    };
    EXPECT_GT(run(false), 1.2 * run(true));
}

TEST(Multiprocessor, CountsAcquiresExactly)
{
    MpThreadRunner r(makeMachine(MachineId::RS6000), ThreadLevel::User,
                     4);
    r.setLockCount(2);
    r.addThread({{10, 0}, {10, 1}, {10, -1}});
    r.addThread({{10, 1}, {10, 0}});
    MpRunResult res = r.run();
    EXPECT_EQ(res.lockAcquires, 4u);
}

TEST(Multiprocessor, Deterministic)
{
    auto run = [] {
        MpThreadRunner r(makeMachine(MachineId::SPARC),
                         ThreadLevel::Kernel, 3);
        r.setLockCount(1);
        for (int t = 0; t < 5; ++t)
            r.addThread({{100, 0, true}, {200, -1}, {50, 0}});
        return r.run();
    };
    MpRunResult a = run();
    MpRunResult b = run();
    EXPECT_DOUBLE_EQ(a.elapsedUs, b.elapsedUs);
    EXPECT_EQ(a.lockRetries, b.lockRetries);
}

TEST(MultiprocessorDeathTest, BadLockIdPanics)
{
    MpThreadRunner r(makeMachine(MachineId::R3000), ThreadLevel::User,
                     2);
    r.addThread({{10, 5}});
    EXPECT_DEATH(r.run(), "lock");
}

} // namespace
} // namespace aosd
