/**
 * @file
 * Unit tests for the VM manager: fault pipeline, copy-on-write
 * semantics, user-level fault reflection (§3).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/vm/vm_manager.hh"

namespace aosd
{
namespace
{

class VmTest : public ::testing::Test
{
  protected:
    VmTest()
        : kernel(makeMachine(MachineId::R3000)), vm(kernel),
          client(kernel.createSpace("client")),
          server(kernel.createSpace("server"))
    {}

    SimKernel kernel;
    VmManager vm;
    AddressSpace &client;
    AddressSpace &server;
};

TEST_F(VmTest, ZeroFillMapsWritablePages)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 4, rw);
    EXPECT_EQ(client.pageTable().mappedPages(), 4u);
    EXPECT_EQ(vm.access(client, 0x102, true), FaultResult::Resolved);
}

TEST_F(VmTest, UnmappedAccessFaults)
{
    EXPECT_EQ(vm.access(client, 0x500, false), FaultResult::NotMapped);
    EXPECT_EQ(kernel.stats().get(kstat::traps), 1u);
}

TEST_F(VmTest, CowShareMakesBothSidesReadOnly)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 4, rw);
    vm.shareCopyOnWrite(client, 0x100, server, 0x200, 4);

    EXPECT_EQ(vm.access(client, 0x100, false), FaultResult::Resolved);
    EXPECT_EQ(vm.access(server, 0x200, false), FaultResult::Resolved);
    // Frames are shared, not copied.
    EXPECT_EQ(client.pageTable().walk(0x100).pte->pfn,
              server.pageTable().walk(0x200).pte->pfn);
    EXPECT_EQ(vm.cowSharedFrames(), 4u);
}

TEST_F(VmTest, CowWriteBreaksTheShare)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 2, rw);
    vm.shareCopyOnWrite(client, 0x100, server, 0x200, 2);

    Pfn shared = server.pageTable().walk(0x200).pte->pfn;
    EXPECT_EQ(vm.access(server, 0x200, true),
              FaultResult::CopiedOnWrite);
    Pfn copied = server.pageTable().walk(0x200).pte->pfn;
    EXPECT_NE(copied, shared);
    EXPECT_TRUE(server.pageTable().walk(0x200).pte->prot.writable);
    // Client still maps the original, untouched.
    EXPECT_EQ(client.pageTable().walk(0x100).pte->pfn, shared);
    // Second page still shared.
    EXPECT_EQ(vm.cowSharedFrames(), 1u);
}

TEST_F(VmTest, CowWriteRetryAfterBreakSucceeds)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 1, rw);
    vm.shareCopyOnWrite(client, 0x100, server, 0x200, 1);
    EXPECT_EQ(vm.access(server, 0x200, true),
              FaultResult::CopiedOnWrite);
    EXPECT_EQ(vm.access(server, 0x200, true), FaultResult::Resolved);
}

TEST_F(VmTest, CowBreakChargesTrapAndPteChange)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 1, rw);
    vm.shareCopyOnWrite(client, 0x100, server, 0x200, 1);
    kernel.resetAccounting();
    vm.access(server, 0x200, true);
    EXPECT_EQ(kernel.stats().get(kstat::traps), 1u);
    EXPECT_EQ(kernel.stats().get(kstat::pteChanges), 1u);
    EXPECT_EQ(kernel.stats().get("cow_breaks"), 1u);
    EXPECT_GT(kernel.elapsedCycles(), 0u);
}

TEST_F(VmTest, BothSidesWritingGetPrivateCopies)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 1, rw);
    vm.shareCopyOnWrite(client, 0x100, server, 0x200, 1);
    vm.access(server, 0x200, true);
    vm.access(client, 0x100, true);
    EXPECT_NE(client.pageTable().walk(0x100).pte->pfn,
              server.pageTable().walk(0x200).pte->pfn);
    EXPECT_EQ(vm.cowSharedFrames(), 0u);
    EXPECT_TRUE(client.pageTable().walk(0x100).pte->prot.writable);
}

TEST_F(VmTest, ProtectionFaultWithoutHandler)
{
    PageProt ro;
    ro.writable = false;
    vm.mapZeroFill(client, 0x100, 1, ro);
    EXPECT_EQ(vm.access(client, 0x100, true),
              FaultResult::ProtectionError);
}

TEST_F(VmTest, UserHandlerReceivesReflectedFault)
{
    PageProt ro;
    ro.writable = false;
    vm.mapZeroFill(client, 0x100, 1, ro);

    int handled = 0;
    vm.setUserHandler(client, [&](AddressSpace &space, Vpn vpn,
                                  bool write) {
        ++handled;
        EXPECT_EQ(vpn, 0x100u);
        EXPECT_TRUE(write);
        // GC-barrier style: upgrade the page and continue.
        PageProt rw;
        rw.writable = true;
        space.pageTable().protect(vpn, rw);
        return true;
    });

    EXPECT_EQ(vm.access(client, 0x100, true),
              FaultResult::ReflectedToUser);
    EXPECT_EQ(handled, 1);
    EXPECT_EQ(vm.access(client, 0x100, true), FaultResult::Resolved);
}

TEST_F(VmTest, ReflectionCostsTwoBoundaryCrossings)
{
    // s3: reflecting a fault to user level requires efficient trap
    // dispatch *and* kernel/user crossings.
    PageProt ro;
    vm.mapZeroFill(client, 0x100, 1, ro);
    vm.setUserHandler(client,
                      [](AddressSpace &, Vpn, bool) { return true; });
    kernel.resetAccounting();
    vm.access(client, 0x100, true);
    EXPECT_EQ(kernel.stats().get(kstat::traps), 1u);
    EXPECT_EQ(kernel.stats().get(kstat::syscalls), 2u);
    EXPECT_EQ(kernel.stats().get("reflected_faults"), 1u);
}

TEST_F(VmTest, HandlerFailureReportsProtectionError)
{
    PageProt ro;
    vm.mapZeroFill(client, 0x100, 1, ro);
    vm.setUserHandler(client,
                      [](AddressSpace &, Vpn, bool) { return false; });
    EXPECT_EQ(vm.access(client, 0x100, true),
              FaultResult::ProtectionError);
}

TEST_F(VmTest, ProtectSweepChargesPerPage)
{
    PageProt rw;
    rw.writable = true;
    vm.mapZeroFill(client, 0x100, 8, rw);
    kernel.resetAccounting();
    PageProt ro;
    vm.protect(client, 0x100, 8, ro);
    EXPECT_EQ(kernel.stats().get(kstat::pteChanges), 8u);
}

} // namespace
} // namespace aosd
