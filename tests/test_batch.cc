/**
 * @file
 * Tests for the kernel-window batch charger (sim/batch + the
 * SimKernel *Batch entry points): toggle semantics, the central
 * equivalence property — a batched run leaves *exactly* the state of
 * the per-event loop (cycles, every hardware counter, kernel stats,
 * the profiler tree, the sampler series) on every Table 1 machine,
 * under randomized event mixes, and under --no-predecode — and the
 * CounterSampler::tickRun multi-interval regression (a batch spanning
 * several sample intervals emits one sample per boundary crossed,
 * never one fat sample).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/machines.hh"
#include "cpu/decoded_program.hh"
#include "os/kernel/kernel.hh"
#include "sim/batch/batch.hh"
#include "sim/counters/counters.hh"
#include "sim/profile/profile.hh"
#include "sim/sampling/sampler.hh"
#include "workload/traffic.hh"

using namespace aosd;

namespace
{

/** Restore every global toggle the batch layer consults. */
class BatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setBatchEnabled(true);
        setPredecodeEnabled(true);
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        Profiler::instance().disable();
        Profiler::instance().clear();
    }

    void
    TearDown() override
    {
        CounterSampler::instance().finish(0);
        SetUp();
    }
};

/** Everything a kernel event mutates, captured for comparison. */
struct RunState
{
    Cycles elapsed = 0;
    Cycles primitive = 0;
    CounterSet counters;
    std::string stats;
    std::string profile;

    bool
    operator==(const RunState &o) const
    {
        return elapsed == o.elapsed && primitive == o.primitive &&
               counters == o.counters && stats == o.stats &&
               profile == o.profile;
    }
};

/** Replay `total_events` of the randomized mix on `mid` and capture
 *  the complete observable state. `sample_each` adds per-event
 *  sampler boundaries under a 10k-cycle session. */
RunState
runMix(MachineId mid, std::uint64_t total_events, std::uint64_t seed,
       bool sample_each = false)
{
    MachineDesc m = makeMachine(mid);
    SimKernel kernel(m);
    AddressSpace &space = kernel.createSpace("mix");
    space.mapRange(0x1000, 64, 0x50000, {});
    HwCounters::instance().enable();
    Profiler::instance().enable();
    if (sample_each)
        CounterSampler::instance().begin({10'000, 4096});

    replayEventMix(kernel, &space, total_events, seed, sample_each);

    RunState out;
    out.elapsed = kernel.elapsedCycles();
    out.primitive = kernel.primitiveCycles();
    out.counters = HwCounters::instance().snapshot();
    out.stats = kernel.stats().toJson().dump();
    out.profile = Profiler::instance().toJson().dump();
    if (sample_each) {
        CounterSampler::instance().finish(
            kernel.elapsedCycles(),
            static_cast<double>(kernel.primitiveCycles()));
        out.stats += CounterSampler::instance().series().toJson().dump();
    }
    Profiler::instance().disable();
    Profiler::instance().clear();
    HwCounters::instance().disable();
    HwCounters::instance().reset();
    return out;
}

TEST_F(BatchTest, ToggleDefaultsOnAndRuntimeSetterWorks)
{
    EXPECT_TRUE(batchCompiledIn);
    EXPECT_TRUE(batchEnabled());
    setBatchEnabled(false);
    EXPECT_FALSE(batchEnabled());
    setBatchEnabled(true);
    EXPECT_TRUE(batchEnabled());
}

TEST_F(BatchTest, BatchActiveRequiresPredecodeFastPath)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    SimKernel kernel(m);
    EXPECT_TRUE(kernel.batchActive());
    setPredecodeEnabled(false);
    EXPECT_FALSE(kernel.batchActive());
    setPredecodeEnabled(true);
    setBatchEnabled(false);
    EXPECT_FALSE(kernel.batchActive());
}

// The central property: over randomized homogeneous-run mixes of
// every batchable primitive, the closed-form charges leave exactly
// the per-event loop's state on every Table 1 machine — total cycles,
// primitive cycles, all hardware counters, the kernel's stat file and
// the full profiler tree (entries, self cycles, span histograms).
TEST_F(BatchTest, BatchedStateEqualsPerEventOnEveryTable1Machine)
{
    for (const MachineDesc &m : table1Machines()) {
        for (std::uint64_t seed : {1ull, 42ull, 0xfeedull}) {
            setBatchEnabled(true);
            RunState batched = runMix(m.id, 20'000, seed);
            setBatchEnabled(false);
            RunState per_event = runMix(m.id, 20'000, seed);
            EXPECT_EQ(batched, per_event)
                << machineSlug(m.id) << " seed " << seed;
        }
    }
}

// Same property with per-event sampler boundaries: a batch spanning
// several 10k-cycle intervals must emit the same intermediate samples
// (cycle, aux, reconstructed counter snapshots) the per-event ticks
// would have taken.
TEST_F(BatchTest, BatchedSamplerSeriesEqualsPerEvent)
{
    setBatchEnabled(true);
    RunState batched = runMix(MachineId::R3000, 30'000, 7, true);
    setBatchEnabled(false);
    RunState per_event = runMix(MachineId::R3000, 30'000, 7, true);
    EXPECT_EQ(batched, per_event);
}

// The reference-interpreter mode disables batching via batchActive();
// the *Batch entry points must still equal the per-event loop (both
// fall back, and the fallback must not double-charge).
TEST_F(BatchTest, EquivalenceHoldsUnderNoPredecode)
{
    setPredecodeEnabled(false);
    setBatchEnabled(true);
    RunState batched = runMix(MachineId::CVAX, 5'000, 3);
    setBatchEnabled(false);
    RunState per_event = runMix(MachineId::CVAX, 5'000, 3);
    EXPECT_EQ(batched, per_event);
}

TEST_F(BatchTest, ZeroCountBatchesAreNoOps)
{
    MachineDesc m = makeMachine(MachineId::R3000);
    SimKernel kernel(m);
    AddressSpace &space = kernel.createSpace("app");
    HwCounters::instance().enable();
    kernel.syscallBatch(0);
    kernel.trapBatch(0);
    kernel.otherExceptionBatch(0);
    kernel.threadSwitchBatch(0);
    kernel.emulateTestAndSetBatch(0);
    kernel.emulateSingleInstructionsBatch(0);
    kernel.pteChangeBatch(space, {}, {});
    EXPECT_EQ(kernel.elapsedCycles(), 0u);
    EXPECT_EQ(HwCounters::instance().snapshot().totalEvents(), 0u);
}

// ---- CounterSampler::tickRun ------------------------------------

/** Per-event reference for tickRun: bump + tick once per event. */
CounterTimeSeries
perEventSeries(Cycles interval, Cycles per_event, std::uint64_t n,
               std::uint64_t aux_per_event)
{
    HwCounters::instance().enable();
    CounterSampler &s = CounterSampler::instance();
    s.begin({interval, 4096});
    for (std::uint64_t i = 1; i <= n; ++i) {
        countEvent(HwCounter::KernelTraps);
        s.tick(per_event * i,
               static_cast<double>(aux_per_event * i));
    }
    s.finish(per_event * n,
             static_cast<double>(aux_per_event * n));
    CounterTimeSeries out = s.series();
    HwCounters::instance().disable();
    HwCounters::instance().reset();
    return out;
}

/** Batched equivalent: all counter bumps land first, then one
 *  tickRun reconstructs the intermediate snapshots. */
CounterTimeSeries
tickRunSeries(Cycles interval, Cycles per_event, std::uint64_t n,
              std::uint64_t aux_per_event)
{
    HwCounters::instance().enable();
    CounterSampler &s = CounterSampler::instance();
    s.begin({interval, 4096});
    countEvent(HwCounter::KernelTraps, n);
    CounterSet per;
    per.set(HwCounter::KernelTraps, 1);
    s.tickRun(0, per_event, n, per, 0, aux_per_event);
    s.finish(per_event * n,
             static_cast<double>(aux_per_event * n));
    CounterTimeSeries out = s.series();
    HwCounters::instance().disable();
    HwCounters::instance().reset();
    return out;
}

TEST_F(BatchTest, TickRunEmitsOneSamplePerCrossedBoundary)
{
    // 10 events x 37 cycles crossing the 100-cycle boundary three
    // times: per-event ticks sample at 111, 222 and 333 (the first
    // tick at or past each boundary), then the close at 370.
    CounterTimeSeries ts = tickRunSeries(100, 37, 10, 37);
    ASSERT_EQ(ts.samples.size(), 4u);
    EXPECT_EQ(ts.samples[0].cycle, 111u);
    EXPECT_EQ(ts.samples[1].cycle, 222u);
    EXPECT_EQ(ts.samples[2].cycle, 333u);
    EXPECT_EQ(ts.samples[3].cycle, 370u);
    // Intermediate snapshots roll the counter file back: 3 events by
    // cycle 111, 6 by 222, 9 by 333, all 10 at the close.
    EXPECT_EQ(ts.samples[0].counters.get(HwCounter::KernelTraps), 3u);
    EXPECT_EQ(ts.samples[1].counters.get(HwCounter::KernelTraps), 6u);
    EXPECT_EQ(ts.samples[2].counters.get(HwCounter::KernelTraps), 9u);
    EXPECT_EQ(ts.samples[3].counters.get(HwCounter::KernelTraps), 10u);
    EXPECT_EQ(ts.samples[1].aux, 222.0);
}

TEST_F(BatchTest, TickRunMatchesPerEventLoopExactly)
{
    struct Case
    {
        Cycles interval, per_event;
        std::uint64_t n, aux;
    };
    // Spans many intervals; lands exactly on boundaries; run shorter
    // than one interval; single event; zero-cost events.
    const Case cases[] = {
        {100, 37, 10, 37},   {100, 50, 8, 13}, {1000, 37, 10, 37},
        {100, 100, 5, 100},  {100, 250, 4, 1}, {7, 3, 100, 3},
        {100, 37, 1, 37},    {100, 0, 5, 9},
    };
    for (const Case &c : cases) {
        CounterTimeSeries a =
            perEventSeries(c.interval, c.per_event, c.n, c.aux);
        CounterTimeSeries b =
            tickRunSeries(c.interval, c.per_event, c.n, c.aux);
        EXPECT_EQ(a.toJson().dump(), b.toJson().dump())
            << "interval " << c.interval << " per_event "
            << c.per_event << " n " << c.n;
    }
}

TEST_F(BatchTest, TickRunWithoutSessionIsANoOp)
{
    CounterSampler &s = CounterSampler::instance();
    CounterSet per;
    per.set(HwCounter::KernelTraps, 1);
    s.tickRun(0, 100, 50, per, 0, 100);
    EXPECT_TRUE(s.series().empty());
}

} // namespace
