/**
 * @file
 * The cycle-attribution profiler: histogram bucket math and known
 * percentiles, ProfScope nesting/reentrancy/exception safety, and the
 * central invariant — every cycle a primitive charges is attributed to
 * exactly one leaf of the tree (sum-of-leaves == total), asserted for
 * every Table 1 machine × primitive and end-to-end through SimKernel.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "arch/machines.hh"
#include "cpu/profiled_primitives.hh"
#include "os/kernel/kernel.hh"
#include "sim/profile/histogram.hh"
#include "sim/profile/profile.hh"

using namespace aosd;

namespace
{

/** Every test runs against a freshly cleared, disabled profiler. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::instance().disable();
        Profiler::instance().clear();
    }

    void
    TearDown() override
    {
        Profiler::instance().disable();
        Profiler::instance().clear();
    }
};

TEST(ProfHistogram, BucketBoundaries)
{
    // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64u);

    EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketLowerBound(3), 4u);
    EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);
    EXPECT_EQ(Histogram::bucketUpperBound(64), ~std::uint64_t{0});

    // Buckets tile the value space with no gaps or overlaps.
    for (std::size_t i = 1; i < Histogram::bucketCount; ++i)
        EXPECT_EQ(Histogram::bucketLowerBound(i),
                  Histogram::bucketUpperBound(i - 1) + 1);
    for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull, 4096ull}) {
        std::size_t i = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLowerBound(i));
        EXPECT_LE(v, Histogram::bucketUpperBound(i));
    }
}

TEST(ProfHistogram, ExactMomentsAndPercentilesOnKnownInput)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 8; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.total(), 36u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 8u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.5);
    // Rank 4 (p50) opens bucket [4,7]; ranks 8 (p90, p99) land on the
    // max.
    EXPECT_DOUBLE_EQ(h.p50(), 4.0);
    EXPECT_DOUBLE_EQ(h.p90(), 8.0);
    EXPECT_DOUBLE_EQ(h.p99(), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 8.0);
}

TEST(ProfHistogram, ConstantSamplesReportExactValue)
{
    // Bucket bounds clamp to observed min/max, so a constant stream
    // reports the constant, not a bucket boundary.
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.sample(42);
    EXPECT_DOUBLE_EQ(h.p50(), 42.0);
    EXPECT_DOUBLE_EQ(h.p90(), 42.0);
    EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(ProfHistogram, MergedShardsReportSingleShardPercentiles)
{
    // Percentile stability under sharding: values straddling
    // power-of-two bucket boundaries (2^k - 1, 2^k, 2^k + 1), dealt
    // round-robin across N shards, must report exactly the
    // single-histogram percentiles after the shards merge — merge()
    // adds bucket counts and combines min/max exactly, so the
    // percentile math sees identical state.
    std::vector<std::uint64_t> values;
    for (unsigned k = 1; k <= 20; ++k) {
        std::uint64_t p = std::uint64_t{1} << k;
        values.push_back(p - 1);
        values.push_back(p);
        values.push_back(p + 1);
    }

    for (std::size_t shards : {2u, 3u, 7u}) {
        Histogram whole;
        std::vector<Histogram> parts(shards);
        for (std::size_t i = 0; i < values.size(); ++i) {
            whole.sample(values[i]);
            parts[i % shards].sample(values[i]);
        }
        Histogram merged;
        for (const Histogram &part : parts)
            merged.merge(part);

        EXPECT_EQ(merged.count(), whole.count()) << shards;
        EXPECT_EQ(merged.min(), whole.min()) << shards;
        EXPECT_EQ(merged.max(), whole.max()) << shards;
        for (double p : {50.0, 90.0, 99.0, 99.9})
            EXPECT_DOUBLE_EQ(merged.percentile(p),
                             whole.percentile(p))
                << shards << " shards at p" << p;
    }
}

TEST(ProfHistogram, EmptyAndReset)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);

    h.sample(7);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST_F(ProfilerTest, NestedScopesBuildTree)
{
    Profiler &p = Profiler::instance();
    p.enable();
    {
        ProfScope outer("syscall");
        p.addCycles(5);
        {
            ProfScope inner("body");
            p.addLeafCycles("base", 7);
        }
    }
    p.disable();

    const ProfNode *syscall = p.root().find("syscall");
    ASSERT_NE(syscall, nullptr);
    EXPECT_EQ(syscall->selfCycles, 5u);
    EXPECT_EQ(syscall->totalCycles(), 12u);
    const ProfNode *body = syscall->find("body");
    ASSERT_NE(body, nullptr);
    const ProfNode *base = body->find("base");
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(base->selfCycles, 7u);
    EXPECT_EQ(base->entries, 1u);

    EXPECT_EQ(p.attributedCycles(), 12u);
    EXPECT_EQ(p.sumOfLeaves(), 12u);
    // Completed spans sampled their inclusive cycles.
    EXPECT_EQ(syscall->spans.count(), 1u);
    EXPECT_EQ(syscall->spans.total(), 12u);
    EXPECT_EQ(body->spans.count(), 1u);
    EXPECT_EQ(body->spans.total(), 7u);
}

TEST_F(ProfilerTest, ReentrantScopeNests)
{
    Profiler &p = Profiler::instance();
    p.enable();
    {
        ProfScope a("lock");
        p.addCycles(1);
        ProfScope b("lock"); // same name: a child, not a merge
        p.addCycles(2);
    }
    p.disable();

    const ProfNode *outer = p.root().find("lock");
    ASSERT_NE(outer, nullptr);
    const ProfNode *inner = outer->find("lock");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->selfCycles, 1u);
    EXPECT_EQ(inner->selfCycles, 2u);
    EXPECT_EQ(p.attributedCycles(), 3u);
}

TEST_F(ProfilerTest, ExceptionUnwindsScopes)
{
    Profiler &p = Profiler::instance();
    p.enable();
    try {
        ProfScope a("outer");
        ProfScope b("inner");
        p.addCycles(3);
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    // Both scopes popped during unwind: attribution lands at the root
    // again, not inside a dangling node.
    p.addCycles(4);
    p.disable();
    EXPECT_EQ(p.root().selfCycles, 4u);
    EXPECT_EQ(p.attributedCycles(), 7u);
    EXPECT_EQ(p.sumOfLeaves(), 7u);
}

TEST_F(ProfilerTest, ClearWithLiveScopeIsSafe)
{
    Profiler &p = Profiler::instance();
    p.enable();
    {
        ProfScope a("stale");
        p.addCycles(1);
        p.enable(); // clears the tree under the live scope
        p.addCycles(2);
    } // destructor must not touch the freed node
    p.disable();
    EXPECT_EQ(p.root().find("stale"), nullptr);
    EXPECT_EQ(p.attributedCycles(), 2u);
}

TEST_F(ProfilerTest, PauseStopsAttribution)
{
    Profiler &p = Profiler::instance();
    p.enable();
    p.addCycles(5);
    {
        ProfPause pause;
        p.addCycles(100); // helper-simulation noise
        EXPECT_FALSE(p.enabled());
    }
    p.addCycles(6);
    p.disable();
    EXPECT_EQ(p.attributedCycles(), 11u);
}

TEST_F(ProfilerTest, DisabledProfilerAttributesNothing)
{
    Profiler &p = Profiler::instance();
    {
        ProfScope a("ignored");
        p.addCycles(99);
        p.addLeafCycles("leaf", 99);
    }
    EXPECT_EQ(p.attributedCycles(), 0u);
    EXPECT_TRUE(p.root().children.empty());
}

TEST_F(ProfilerTest, CollapsedStacksEmitSelfCycles)
{
    Profiler &p = Profiler::instance();
    p.enable();
    {
        ProfScope a("syscall");
        p.addLeafCycles("base", 10);
    }
    p.disable();
    std::string folded = p.collapsedStacks("R2000");
    EXPECT_NE(folded.find("R2000;syscall;base 10"), std::string::npos);
}

// ---- the acceptance invariant ------------------------------------

TEST_F(ProfilerTest, NullSyscallFullyAttributedOnDs3100)
{
    // DECstation 3100 (MIPS R2000): every cycle of the null system
    // call has a home in the attribution tree.
    ProfiledPrimitiveRun run = profilePrimitive(
        makeMachine(MachineId::R2000), Primitive::NullSyscall, 4);
    EXPECT_GT(run.totalCycles, 0u);
    EXPECT_EQ(run.totalCycles, run.attributedCycles);
    EXPECT_TRUE(run.complete());
    // And the per-phase totals re-sum to the whole.
    Cycles phases = run.phaseCycles(PhaseKind::KernelEntryExit) +
                    run.phaseCycles(PhaseKind::CallPrep) +
                    run.phaseCycles(PhaseKind::CCallReturn) +
                    run.phaseCycles(PhaseKind::Body);
    EXPECT_EQ(phases, run.totalCycles);
}

TEST_F(ProfilerTest, NullSyscallFullyAttributedOnSparcstation)
{
    // SPARCstation 1+: register-window traffic included.
    ProfiledPrimitiveRun run = profilePrimitive(
        makeMachine(MachineId::SPARC), Primitive::NullSyscall, 4);
    EXPECT_GT(run.totalCycles, 0u);
    EXPECT_TRUE(run.complete());
}

TEST_F(ProfilerTest, EveryTable1MachineAttributesEveryPrimitive)
{
    for (const MachineDesc &m : table1Machines()) {
        for (Primitive prim : allPrimitives) {
            ProfiledPrimitiveRun run = profilePrimitive(m, prim, 2);
            EXPECT_GT(run.totalCycles, 0u)
                << machineSlug(m.id) << "/" << primitiveSlug(prim);
            EXPECT_EQ(run.totalCycles, run.attributedCycles)
                << machineSlug(m.id) << "/" << primitiveSlug(prim)
                << " leaked "
                << (run.totalCycles - run.attributedCycles)
                << " cycles";
        }
    }
}

TEST_F(ProfilerTest, KernelChargesAreFullyAttributed)
{
    // End to end through SimKernel: primitives, TLB refills, purges
    // and user code all land in the tree; nothing escapes.
    Profiler &p = Profiler::instance();
    p.enable();

    SimKernel kernel(makeMachine(MachineId::R2000));
    AddressSpace &client = kernel.createSpace("client");
    AddressSpace &server = kernel.createSpace("server");
    client.setWorkingSet(0x1000, 8);
    server.setWorkingSet(0x2000, 8);
    client.mapRange(0x1000, 8, 0x9000, {});
    server.mapRange(0x2000, 8, 0xa000, {});

    kernel.contextSwitchTo(client);
    kernel.syscall();
    kernel.trap();
    kernel.contextSwitchTo(server);
    kernel.runUserCode(500);
    kernel.emulateInstructions(3);
    kernel.threadSwitch();
    kernel.contextSwitchTo(client);

    p.disable();
    EXPECT_GT(kernel.elapsedCycles(), 0u);
    EXPECT_EQ(p.attributedCycles(), kernel.elapsedCycles());
    EXPECT_EQ(p.sumOfLeaves(), kernel.elapsedCycles());
}

} // namespace
