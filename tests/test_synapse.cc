/**
 * @file
 * Tests for the Synapse call/switch experiment (§4.1).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "workload/synapse.hh"

namespace aosd
{
namespace
{

TEST(Synapse, RatiosSpanPaperRange)
{
    auto runs = synapseExperiments();
    ASSERT_GE(runs.size(), 2u);
    double lo = 1e9, hi = 0;
    for (const auto &r : runs) {
        lo = std::min(lo, r.callSwitchRatio());
        hi = std::max(hi, r.callSwitchRatio());
    }
    // "the ratio of procedure calls to context switches varied from
    // 21:1 to 42:1".
    EXPECT_NEAR(lo, 21.0, 0.5);
    EXPECT_NEAR(hi, 42.0, 0.5);
}

TEST(Synapse, SwitchesDominateOnSparc)
{
    // s4.1: "on a SPARC Synapse would spend more of its time doing
    // context switches than procedure calls".
    MachineDesc sparc = makeMachine(MachineId::SPARC);
    for (const auto &run : synapseExperiments()) {
        SynapseCostResult r = priceSynapseRun(sparc, run);
        EXPECT_TRUE(r.switchesDominate()) << run.name;
    }
}

TEST(Synapse, CallsDominateOnLowStateMachines)
{
    // The RS6000 (modest state, precise interrupts) and the CVAX
    // (tiny state) don't flip the balance at these ratios.
    for (MachineId id : {MachineId::RS6000, MachineId::CVAX}) {
        MachineDesc m = makeMachine(id);
        SynapseRun coarse = synapseExperiments().back(); // 42:1
        SynapseCostResult r = priceSynapseRun(m, coarse);
        EXPECT_FALSE(r.switchesDominate()) << m.name;
    }
}

TEST(Synapse, ZeroSwitchesGivesZeroRatio)
{
    SynapseRun degenerate{"degenerate", 100, 0};
    EXPECT_DOUBLE_EQ(degenerate.callSwitchRatio(), 0.0);
}

TEST(Synapse, CostsScaleWithCounts)
{
    MachineDesc m = makeMachine(MachineId::SPARC);
    SynapseRun run{"r", 1000, 100};
    SynapseRun doubled{"r2", 2000, 200};
    SynapseCostResult a = priceSynapseRun(m, run);
    SynapseCostResult b = priceSynapseRun(m, doubled);
    EXPECT_NEAR(b.callTimeUs, 2 * a.callTimeUs, 1e-6);
    EXPECT_NEAR(b.switchTimeUs, 2 * a.switchTimeUs, 1e-6);
}

} // namespace
} // namespace aosd
