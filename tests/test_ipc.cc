/**
 * @file
 * Tests for the IPC cost models: SRC RPC (Table 3), LRPC (Table 4),
 * checksum/marshal helpers.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/ipc/lrpc.hh"
#include "os/ipc/message.hh"
#include "os/ipc/rpc.hh"

namespace aosd
{
namespace
{

TEST(Checksum, ScalesWithBytes)
{
    MachineDesc m = makeMachine(MachineId::CVAX);
    EXPECT_GT(checksumCycles(m, 1500), 10 * checksumCycles(m, 74));
    EXPECT_EQ(checksumCycles(m, 0), 0u);
}

TEST(Checksum, UncachedIoBuffersCostMore)
{
    // s2.1: "a load (which on some RISCs will likely fetch from a
    // non-cached I/O buffer)".
    MachineDesc mips = makeMachine(MachineId::R3000);
    MachineDesc vax = makeMachine(MachineId::CVAX);
    EXPECT_TRUE(usesUncachedIoBuffers(mips));
    EXPECT_FALSE(usesUncachedIoBuffers(vax));
    // Per-word cost is higher through uncached space, even though the
    // MIPS is a much faster machine.
    EXPECT_GT(static_cast<double>(checksumCycles(mips, 1024)),
              1.2 * static_cast<double>(checksumCycles(vax, 1024)));
}

TEST(Rpc, ComponentsArePositiveAndSumToTotal)
{
    SrcRpcModel model(makeMachine(MachineId::CVAX));
    RpcBreakdown b = model.nullRpc();
    EXPECT_GT(b.clientStubUs, 0);
    EXPECT_GT(b.serverStubUs, 0);
    EXPECT_GT(b.kernelTransferUs, 0);
    EXPECT_GT(b.interruptUs, 0);
    EXPECT_GT(b.checksumUs, 0);
    EXPECT_GT(b.copyUs, 0);
    EXPECT_GT(b.wireUs, 0);
    double sum = b.clientStubUs + b.serverStubUs + b.kernelTransferUs +
                 b.interruptUs + b.checksumUs + b.copyUs +
                 b.dispatchUs + b.controllerUs + b.wireUs;
    EXPECT_NEAR(sum, b.totalUs(), 1e-9);
    EXPECT_NEAR(b.percent(b.wireUs) + b.percent(b.totalUs() - b.wireUs),
                100.0, 1e-6);
}

TEST(Rpc, SmallPacketWireShareNearPaper)
{
    // Paper: ~17% of a small-packet SRC RPC is on the wire.
    SrcRpcModel model(makeMachine(MachineId::CVAX));
    RpcBreakdown b = model.nullRpc();
    double wire = b.percent(b.wireUs);
    EXPECT_GT(wire, 12.0);
    EXPECT_LT(wire, 25.0);
}

TEST(Rpc, LargePacketWireShareNearHalf)
{
    SrcRpcModel model(makeMachine(MachineId::CVAX));
    RpcBreakdown b = model.roundTrip(74, 1500);
    double wire = b.percent(b.wireUs);
    EXPECT_GT(wire, 35.0);
    EXPECT_LT(wire, 60.0);
}

TEST(Rpc, ChecksumShareGrowsWithPacketSize)
{
    SrcRpcModel model(makeMachine(MachineId::CVAX));
    RpcBreakdown small = model.nullRpc();
    RpcBreakdown large = model.roundTrip(74, 1500);
    EXPECT_GT(large.percent(large.checksumUs),
              1.5 * small.percent(small.checksumUs));
}

TEST(Rpc, CpuScalingFallsShortOfNaiveExpectation)
{
    // Tripling the CPU cannot cut latency by the CPU-share fraction
    // because copy/checksum are memory-paced (s2.1).
    SrcRpcModel model(makeMachine(MachineId::CVAX));
    double base = model.nullRpc().totalUs();
    double scaled = model.scaledLatencyUs(74, 74, 3.0);
    double reduction = (base - scaled) / base;
    EXPECT_GT(reduction, 0.15);
    EXPECT_LT(reduction, 0.55); // below the naive ~55%
    // Monotone in the factor.
    EXPECT_LT(model.scaledLatencyUs(74, 74, 10.0), scaled);
    // Never below the wire+memory floor.
    RpcBreakdown b = model.nullRpc();
    EXPECT_GE(model.scaledLatencyUs(74, 74, 1000.0),
              b.wireUs + b.controllerUs);
}

TEST(Rpc, SpriteObservationSun3ToSparc)
{
    // s2.1: Sprite's null RPC only halved from the Sun-3/75 to a
    // SPARCstation-1 despite ~5x the integer performance.
    MachineDesc sun3 = makeMachine(MachineId::SUN3);
    MachineDesc sparc = makeMachine(MachineId::SPARC);
    double integer_gain = sparc.appPerfVsCvax / sun3.appPerfVsCvax;
    EXPECT_NEAR(integer_gain, 5.0, 2.0);
    double rpc_gain = SrcRpcModel(sun3).nullRpc().totalUs() /
                      SrcRpcModel(sparc).nullRpc().totalUs();
    EXPECT_GT(rpc_gain, 1.2);
    EXPECT_LT(rpc_gain, 3.2);
    EXPECT_LT(rpc_gain, 0.65 * integer_gain);
}

TEST(Rpc, RpcSpeedupLagsIntegerSpeedup)
{
    // The Sprite observation (s2.1): RPC gains a fraction of the
    // integer gain.
    SrcRpcModel cvax(makeMachine(MachineId::CVAX));
    double base = cvax.nullRpc().totalUs();
    for (MachineId id : {MachineId::R2000, MachineId::R3000,
                         MachineId::SPARC}) {
        MachineDesc m = makeMachine(id);
        SrcRpcModel model(m);
        double speedup = base / model.nullRpc().totalUs();
        EXPECT_LT(speedup, 0.6 * m.appPerfVsCvax) << m.name;
        EXPECT_GE(speedup, 0.9) << m.name;
    }
}

TEST(Rpc, FasterNetworkShrinksWireOnly)
{
    RpcConfig slow, fast;
    slow.link.mbps = 10;
    fast.link.mbps = 100;
    MachineDesc m = makeMachine(MachineId::R3000);
    RpcBreakdown bs = SrcRpcModel(m, slow).roundTrip(74, 1500);
    RpcBreakdown bf = SrcRpcModel(m, fast).roundTrip(74, 1500);
    EXPECT_NEAR(bf.wireUs, bs.wireUs / 10.0, 1.0);
    EXPECT_NEAR(bf.cpuUs(), bs.cpuUs(), 1e-6);
}

// ---- LRPC ------------------------------------------------------------

TEST(Lrpc, CvaxNullCallNearPaper)
{
    LrpcModel model(makeMachine(MachineId::CVAX));
    LrpcBreakdown b = model.nullCall();
    // Paper: ~157 us total, ~109 us hardware minimum, ~25% TLB.
    EXPECT_NEAR(b.totalUs(), 157.0, 25.0);
    EXPECT_NEAR(b.tlbPercent(), 25.0, 7.0);
    EXPECT_LT(b.hardwareMinimumUs(), b.totalUs());
    EXPECT_GT(b.hardwareMinimumUs(), 0.6 * b.totalUs());
}

TEST(Lrpc, TaggedTlbMachinesLoseNothingToTlbMisses)
{
    for (MachineId id : {MachineId::R2000, MachineId::R3000,
                         MachineId::SPARC, MachineId::RS6000}) {
        LrpcModel model(makeMachine(id));
        EXPECT_EQ(model.steadyStateTlbMisses(), 0u)
            << makeMachine(id).name;
        EXPECT_DOUBLE_EQ(model.nullCall().tlbMissUs, 0.0);
    }
}

TEST(Lrpc, UntaggedTlbMachinesRefillEveryTrip)
{
    for (MachineId id :
         {MachineId::CVAX, MachineId::M88000, MachineId::I860}) {
        LrpcModel model(makeMachine(id));
        EXPECT_GT(model.steadyStateTlbMisses(), 10u)
            << makeMachine(id).name;
    }
}

TEST(Lrpc, MissesScaleWithWorkingSets)
{
    LrpcConfig small_cfg;
    small_cfg.clientWorkingSetPages = 4;
    small_cfg.serverWorkingSetPages = 4;
    LrpcConfig big_cfg;
    big_cfg.clientWorkingSetPages = 12;
    big_cfg.serverWorkingSetPages = 12;
    MachineDesc cvax = makeMachine(MachineId::CVAX);
    EXPECT_GT(LrpcModel(cvax, big_cfg).steadyStateTlbMisses(),
              LrpcModel(cvax, small_cfg).steadyStateTlbMisses());
}

TEST(Lrpc, KernelPathDominatesOnAllMachines)
{
    // Table 4's structural claim: the kernel-mediated part (entries +
    // switches + TLB) dwarfs the stubs.
    for (const MachineDesc &m : allMachines()) {
        LrpcBreakdown b = LrpcModel(m).nullCall();
        EXPECT_GT(b.hardwareMinimumUs(), b.stubUs + b.argCopyUs)
            << m.name;
    }
}

TEST(Lrpc, SparcIsSlowestRiscForLrpc)
{
    // The context-switch-heavy LRPC path hits the SPARC's weakness.
    double sparc =
        LrpcModel(makeMachine(MachineId::SPARC)).nullCall().totalUs();
    for (MachineId id : {MachineId::R2000, MachineId::R3000,
                         MachineId::RS6000}) {
        EXPECT_GT(sparc,
                  LrpcModel(makeMachine(id)).nullCall().totalUs());
    }
}

} // namespace
} // namespace aosd
