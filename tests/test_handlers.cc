/**
 * @file
 * The headline reproduction tests: handler programs must match the
 * paper's Table 2 instruction counts *exactly*, land Table 1 times
 * within tolerance, decompose per Table 5, and exhibit the share
 * effects the prose describes (write-buffer stalls, window traffic,
 * cache-flush loops). Parameterized over (machine x primitive).
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "cpu/exec_model.hh"
#include "cpu/handlers.hh"
#include "cpu/primitive_costs.hh"

namespace aosd
{
namespace
{

struct Case
{
    MachineId machine;
    Primitive primitive;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const MachineDesc &m : allMachines())
        for (Primitive p : allPrimitives)
            cases.push_back({m.id, p});
    return cases;
}

class HandlerTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(HandlerTest, InstructionCountMatchesTable2Exactly)
{
    const Case c = GetParam();
    std::uint64_t paper =
        PaperPrimitiveData::instructionCount(c.machine, c.primitive);
    if (paper == 0)
        GTEST_SKIP() << "paper gives no instruction count";
    MachineDesc m = makeMachine(c.machine);
    HandlerProgram prog = buildHandler(m, c.primitive);
    EXPECT_EQ(prog.instructionCount(), paper)
        << m.name << " / " << primitiveName(c.primitive);
}

TEST_P(HandlerTest, SimulatedTimeWithinTenPercentOfTable1)
{
    const Case c = GetParam();
    double paper =
        PaperPrimitiveData::microseconds(c.machine, c.primitive);
    if (paper < 0)
        GTEST_SKIP() << "paper gives no time";
    double sim = sharedCostDb().micros(c.machine, c.primitive);
    EXPECT_NEAR(sim, paper, paper * 0.10)
        << makeMachine(c.machine).name << " / "
        << primitiveName(c.primitive);
}

TEST_P(HandlerTest, CyclesAtLeastInstructions)
{
    const Case c = GetParam();
    const PrimitiveCost &cost = sharedCostDb().cost(c.machine,
                                                    c.primitive);
    EXPECT_GE(cost.cycles, cost.instructions);
}

TEST_P(HandlerTest, DeterministicAcrossRuns)
{
    const Case c = GetParam();
    MachineDesc m = makeMachine(c.machine);
    ExecModel a(m), b(m);
    HandlerProgram prog = buildHandler(m, c.primitive);
    EXPECT_EQ(a.run(prog).cycles, b.run(prog).cycles);
}

TEST_P(HandlerTest, BreakdownSumsToTotal)
{
    const Case c = GetParam();
    const ExecResult &d =
        sharedCostDb().cost(c.machine, c.primitive).detail;
    EXPECT_EQ(d.breakdown.total(), d.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachinesAllPrimitives, HandlerTest,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        MachineDesc m = makeMachine(info.param.machine);
        std::string p;
        switch (info.param.primitive) {
          case Primitive::NullSyscall: p = "Syscall"; break;
          case Primitive::Trap: p = "Trap"; break;
          case Primitive::PteChange: p = "PteChange"; break;
          case Primitive::ContextSwitch: p = "CtxSwitch"; break;
        }
        std::string name = m.name + "_" + p;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

// ---- Table 5 -------------------------------------------------------

TEST(Table5, PhaseDecompositionWithinTolerance)
{
    const PrimitiveCostDb &db = sharedCostDb();
    for (MachineId id :
         {MachineId::CVAX, MachineId::R2000, MachineId::SPARC}) {
        const MachineDesc &m = db.machine(id);
        const ExecResult &d =
            db.cost(id, Primitive::NullSyscall).detail;
        for (PhaseKind ph : {PhaseKind::KernelEntryExit,
                             PhaseKind::CallPrep,
                             PhaseKind::CCallReturn}) {
            double paper = PaperPrimitiveData::table5Micros(id, ph);
            ASSERT_GE(paper, 0.0);
            double sim = m.clock.cyclesToMicros(d.phaseCycles(ph));
            // Phases are small; allow 25% or 0.7us, whichever is
            // larger.
            double tol = std::max(paper * 0.25, 0.7);
            EXPECT_NEAR(sim, paper, tol)
                << m.name << " / " << phaseName(ph);
        }
    }
}

TEST(Table5, RiscEntryIsCheapButPrepIsDear)
{
    // The paper's structural claim: the VAX pays on entry/exit, the
    // RISCs pay in call preparation.
    const PrimitiveCostDb &db = sharedCostDb();
    auto phase_us = [&](MachineId id, PhaseKind ph) {
        return db.machine(id).clock.cyclesToMicros(
            db.cost(id, Primitive::NullSyscall)
                .detail.phaseCycles(ph));
    };
    EXPECT_GT(phase_us(MachineId::CVAX, PhaseKind::KernelEntryExit),
              5 * phase_us(MachineId::R2000,
                           PhaseKind::KernelEntryExit));
    EXPECT_GT(phase_us(MachineId::R2000, PhaseKind::CallPrep),
              phase_us(MachineId::CVAX, PhaseKind::CallPrep));
    EXPECT_GT(phase_us(MachineId::SPARC, PhaseKind::CallPrep),
              phase_us(MachineId::R2000, PhaseKind::CallPrep));
}

// ---- Prose-level share effects --------------------------------------

TEST(HandlerShares, WriteBufferStallShareOnDs3100)
{
    // ~30% of interrupt overhead on the DECstation 3100 (s2.3). Our
    // writeBufferStall bucket also charges the reads that wait for
    // the buffer to drain, so the share reads slightly higher.
    const ExecResult &d =
        sharedCostDb().cost(MachineId::R2000, Primitive::Trap).detail;
    double share = static_cast<double>(d.breakdown.writeBufferStall) /
                   static_cast<double>(d.cycles);
    EXPECT_GT(share, 0.20);
    EXPECT_LT(share, 0.55);
}

TEST(HandlerShares, Ds5000HasAlmostNoWriteStall)
{
    const ExecResult &d =
        sharedCostDb().cost(MachineId::R3000, Primitive::Trap).detail;
    double share = static_cast<double>(d.breakdown.writeBufferStall) /
                   static_cast<double>(d.cycles);
    EXPECT_LT(share, 0.05);
}

TEST(HandlerShares, SparcWindowShareOfSyscall)
{
    // ~30% of the SPARC null syscall is window processing (s2.3).
    const MachineDesc &sparc = sharedCostDb().machine(MachineId::SPARC);
    ExecModel exec(sparc);
    Cycles window = exec.runStream(sparcWindowSaveSeq(sparc)).cycles;
    Cycles total =
        sharedCostDb().cycles(MachineId::SPARC, Primitive::NullSyscall);
    double share =
        static_cast<double>(window) / static_cast<double>(total);
    EXPECT_GT(share, 0.20);
    EXPECT_LT(share, 0.40);
}

TEST(HandlerShares, SparcContextSwitchDominatedByWindows)
{
    // ~70% of the SPARC context switch is window save/restore (s4.1).
    const MachineDesc &sparc = sharedCostDb().machine(MachineId::SPARC);
    ExecModel exec(sparc);
    InstrStream windows;
    for (int i = 0; i < 3; ++i)
        windows.append(sparcWindowSaveSeq(sparc));
    for (int i = 0; i < 3; ++i)
        windows.append(sparcWindowRestoreSeq(sparc));
    Cycles w = exec.runStream(windows).cycles;
    Cycles total = sharedCostDb().cycles(MachineId::SPARC,
                                         Primitive::ContextSwitch);
    double share = static_cast<double>(w) / static_cast<double>(total);
    EXPECT_GT(share, 0.60);
    EXPECT_LT(share, 0.90);
}

TEST(HandlerShares, I860PteChangeIsMostlyCacheFlush)
{
    // 536 of 559 instructions flush the virtual cache (s3.2).
    MachineDesc m = makeMachine(MachineId::I860);
    HandlerProgram p = buildHandler(m, Primitive::PteChange);
    std::uint64_t flush_lines = 0;
    for (const auto &ph : p.phases)
        flush_lines += ph.code.countOf(OpKind::CacheFlushLine);
    EXPECT_EQ(flush_lines * 4, 536u); // 4-instruction loop body
}

TEST(HandlerShares, CvaxIsMicrocodeDominated)
{
    const ExecResult &d =
        sharedCostDb().cost(MachineId::CVAX, Primitive::ContextSwitch)
            .detail;
    double share = static_cast<double>(d.breakdown.microcode) /
                   static_cast<double>(d.cycles);
    EXPECT_GT(share, 0.80);
}

// ---- Table 1 shape claims -------------------------------------------

TEST(Table1Shape, NoPrimitiveScalesWithIntegerPerformance)
{
    // The central claim: relative speed of every primitive on every
    // RISC is well below its application-performance ratio.
    const PrimitiveCostDb &db = sharedCostDb();
    for (MachineId id : {MachineId::M88000, MachineId::R2000,
                         MachineId::R3000, MachineId::SPARC}) {
        double app = db.machine(id).appPerfVsCvax;
        for (Primitive p : allPrimitives) {
            EXPECT_LT(db.relativeToCvax(id, p), app)
                << db.machine(id).name << " / " << primitiveName(p);
        }
    }
}

TEST(Table1Shape, SparcContextSwitchSlowerThanCvax)
{
    // The SPARC's relative speed for context switch is ~0.5: slower
    // than the CISC it replaced.
    EXPECT_LT(sharedCostDb().relativeToCvax(MachineId::SPARC,
                                            Primitive::ContextSwitch),
              1.0);
}

TEST(Table1Shape, Ds5000IsBestRisc)
{
    const PrimitiveCostDb &db = sharedCostDb();
    for (Primitive p : allPrimitives) {
        for (MachineId other : {MachineId::M88000, MachineId::R2000,
                                MachineId::SPARC}) {
            EXPECT_GT(db.relativeToCvax(MachineId::R3000, p),
                      db.relativeToCvax(other, p))
                << primitiveName(p);
        }
    }
}

TEST(Table1Shape, R2000SyscallBeatsCvaxOnlyMarginally)
{
    // s2.3: "the MIPS R2000 requires 15% fewer cycles than the CVAX
    // for a system call" — marginal, not commensurate with 4.2x.
    double rel = sharedCostDb().relativeToCvax(
        MachineId::R2000, Primitive::NullSyscall);
    EXPECT_GT(rel, 1.2);
    EXPECT_LT(rel, 2.5);
}

} // namespace
} // namespace aosd
