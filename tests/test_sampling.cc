/**
 * @file
 * Tests for the periodic counter-sampling engine and its workload
 * wiring: off-by-default no-op behavior, ring-buffer drop semantics,
 * per-cell sample counts across the Table 7 grid, series JSON shape,
 * Perfetto counter tracks, byte-identical timeseries documents at any
 * job count, and the kernel-window cycles-explained cross-check.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/machines.hh"
#include "sim/counters/counters.hh"
#include "sim/counters/reconcile.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/sampling/sampler.hh"
#include "sim/trace.hh"
#include "study/timeseries_report.hh"
#include "workload/app_profile.hh"
#include "workload/os_model.hh"
#include "workload/ref_trace.hh"
#include "workload/synapse.hh"

using namespace aosd;

namespace
{

/** Restore global sampler/counter/tracer state around each test. */
class SamplingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        HwCounters::instance().disable();
        HwCounters::instance().reset();
    }

    void
    TearDown() override
    {
        CounterSampler::instance().finish(0);
        HwCounters::instance().disable();
        HwCounters::instance().reset();
        Tracer::instance().disable();
        Tracer::instance().clear();
    }
};

/** A run's identity fields, for sampled-vs-unsampled comparisons. */
void
expectSameRow(const Table7Row &a, const Table7Row &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_DOUBLE_EQ(a.elapsedSeconds, b.elapsedSeconds);
    EXPECT_EQ(a.addressSpaceSwitches, b.addressSpaceSwitches);
    EXPECT_EQ(a.threadSwitches, b.threadSwitches);
    EXPECT_EQ(a.systemCalls, b.systemCalls);
    EXPECT_EQ(a.emulatedInstructions, b.emulatedInstructions);
    EXPECT_EQ(a.kernelTlbMisses, b.kernelTlbMisses);
    EXPECT_EQ(a.otherExceptions, b.otherExceptions);
    EXPECT_DOUBLE_EQ(a.percentTimeInPrimitives,
                     b.percentTimeInPrimitives);
}

TEST_F(SamplingTest, OffByDefaultAndTickIsANoOp)
{
    EXPECT_FALSE(samplingEnabled());
    CounterSampler &s = CounterSampler::instance();
    // A tick with no session open must not record anything.
    s.tick(1'000'000);
    EXPECT_FALSE(s.active());

    // A default config (interval 0) opens no session either.
    s.begin({});
    EXPECT_FALSE(s.active());
    s.tick(1'000'000);
    s.finish(2'000'000);
    EXPECT_TRUE(s.series().empty());
}

TEST_F(SamplingTest, SamplesAtIntervalBoundaries)
{
    HwCounters::instance().enable();
    CounterSampler &s = CounterSampler::instance();
    s.begin({100, 16});
    EXPECT_TRUE(s.active());
    for (Cycles now = 50; now <= 450; now += 50) {
        countEvent(HwCounter::TlbMisses);
        s.tick(now);
    }
    s.finish(460);
    EXPECT_FALSE(s.active());

    const CounterTimeSeries &ts = s.series();
    // Due at 100, 200, 300, 400, plus the closing sample at 460.
    ASSERT_EQ(ts.samples.size(), 5u);
    EXPECT_EQ(ts.samples.front().cycle, 100u);
    EXPECT_EQ(ts.samples.back().cycle, 460u);
    EXPECT_EQ(ts.dropped, 0u);
    for (std::size_t i = 1; i < ts.samples.size(); ++i)
        EXPECT_LT(ts.samples[i - 1].cycle, ts.samples[i].cycle);
    // Cumulative counters: the last sample saw every event.
    EXPECT_EQ(ts.samples.back().counters.get(HwCounter::TlbMisses),
              9u);
}

TEST_F(SamplingTest, RingDropsOldestWhenFull)
{
    HwCounters::instance().enable();
    CounterSampler &s = CounterSampler::instance();
    s.begin({10, 4});
    for (Cycles now = 10; now <= 100; now += 10)
        s.tick(now);
    s.finish(100);

    const CounterTimeSeries &ts = s.series();
    ASSERT_EQ(ts.samples.size(), 4u);
    EXPECT_EQ(ts.dropped, 6u);
    // The survivors are the newest samples, still oldest-first.
    EXPECT_EQ(ts.samples.front().cycle, 70u);
    EXPECT_EQ(ts.samples.back().cycle, 100u);
}

TEST_F(SamplingTest, OverflowSurfacesDroppedSamplesInJson)
{
    HwCounters::instance().enable();
    CounterSampler &s = CounterSampler::instance();
    // Capacity 4 with 10 due samples: the ring must overflow.
    s.begin({10, 4});
    for (Cycles now = 10; now <= 100; now += 10)
        s.tick(now);
    s.finish(100);

    Json j = s.series().toJson();
    ASSERT_TRUE(j.has("dropped_samples"));
    EXPECT_EQ(j.at("dropped_samples").asUint(), 6u);
    EXPECT_EQ(j.at("samples").asUint(), 4u);
}

TEST_F(SamplingTest, SeriesJsonShape)
{
    HwCounters::instance().enable();
    CounterSampler &s = CounterSampler::instance();
    s.begin({100, 16});
    for (Cycles now = 100; now <= 300; now += 100) {
        countEvent(HwCounter::TlbMisses, 5);
        countEvent(HwCounter::TlbRefillCycles, 60);
        s.tick(now, static_cast<double>(now) / 2);
    }
    s.finish(300);

    Json j = s.series().toJson();
    EXPECT_EQ(j.at("interval_cycles").asUint(), 100u);
    EXPECT_EQ(j.at("samples").asUint(), 3u);
    std::size_t n = j.at("cycles").size();
    EXPECT_EQ(n, 3u);
    const Json &series = j.at("series");
    ASSERT_TRUE(series.has("tlb_misses_per_kcycle"));
    ASSERT_TRUE(series.has("kernel_window_occupancy_pct"));
    for (const auto &kv : series.items())
        EXPECT_EQ(kv.second.size(), n) << kv.first;
    // 5 misses per 100 cycles = 50/kcycle; aux advances at 50%.
    EXPECT_DOUBLE_EQ(
        series.at("tlb_misses_per_kcycle").at(0).asNumber(), 50.0);
    EXPECT_DOUBLE_EQ(
        series.at("kernel_window_occupancy_pct").at(0).asNumber(),
        50.0);
}

TEST_F(SamplingTest, SamplingLeavesTable7RowUnchanged)
{
    MachineDesc machine = makeMachine(MachineId::R3000);
    AppProfile app = table7Workloads().front();

    MachSystem plain(machine, OsStructure::Monolithic);
    Table7Row base = plain.run(app);
    EXPECT_TRUE(base.timeseries.empty());

    OsModelConfig cfg;
    cfg.samplingIntervalCycles = 1'000'000;
    MachSystem sampled(machine, OsStructure::Monolithic, cfg);
    Table7Row row = sampled.run(app);

    expectSameRow(base, row);
    EXPECT_GE(row.timeseries.samples.size(), 10u);
}

TEST_F(SamplingTest, EveryTable7CellEmitsAtLeastTenSamples)
{
    OsModelConfig cfg;
    cfg.samplingIntervalCycles = 1'000'000;
    ParallelRunner runner(1);
    std::vector<Table7Row> rows =
        runMachGrid(makeMachine(MachineId::R3000), runner, cfg);
    ASSERT_FALSE(rows.empty());
    for (const Table7Row &r : rows) {
        EXPECT_GE(r.timeseries.samples.size(), 10u) << r.app;
        for (std::size_t i = 1; i < r.timeseries.samples.size(); ++i)
            EXPECT_LT(r.timeseries.samples[i - 1].cycle,
                      r.timeseries.samples[i].cycle)
                << r.app;
    }
}

TEST_F(SamplingTest, KernelWindowReconcilesAcrossTheGrid)
{
    OsModelConfig cfg;
    cfg.measureKernelWindow = true;
    ParallelRunner runner(1);
    for (MachineId m :
         {MachineId::R3000, MachineId::CVAX, MachineId::SPARC}) {
        std::vector<Table7Row> rows =
            runMachGrid(makeMachine(m), runner, cfg);
        for (const Table7Row &r : rows) {
            ASSERT_TRUE(r.hasKernelWindow) << r.app;
            EXPECT_GT(r.kernelWindow.actualCycles, 0u) << r.app;
            EXPECT_TRUE(r.kernelWindow.reconciles(5.0))
                << machineSlug(m) << "/" << r.app << ": "
                << r.kernelWindow.explainedPct() << "%";
        }
    }
}

TEST_F(SamplingTest, RefTraceSamples)
{
    RefTraceConfig cfg;
    cfg.references = 100'000;
    cfg.samplingIntervalCycles = 25'000;
    RefTraceResult r =
        runRefTrace(makeMachine(MachineId::R3000), cfg);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GE(r.timeseries.samples.size(), 10u);

    // Same replay without sampling: identical reference mix.
    RefTraceConfig plain;
    plain.references = 100'000;
    RefTraceResult b = runRefTrace(makeMachine(MachineId::R3000), plain);
    EXPECT_TRUE(b.timeseries.empty());
    EXPECT_EQ(b.cycles, r.cycles);
    EXPECT_DOUBLE_EQ(b.systemRefShare(), r.systemRefShare());
}

TEST_F(SamplingTest, SynapseRunSamples)
{
    MachineDesc machine = makeMachine(MachineId::SPARC);
    for (const SynapseRun &run : synapseExperiments()) {
        SynapseSimResult r = simulateSynapseRun(machine, run, 64);
        EXPECT_EQ(r.totalCycles, r.callCycles + r.switchCycles)
            << run.name;
        EXPECT_GE(r.timeseries.samples.size(), 10u) << run.name;
        EXPECT_LE(r.timeseries.samples.size(), 66u) << run.name;
    }
}

TEST_F(SamplingTest, PerfettoCounterTracks)
{
    Tracer::instance().enable(1 << 14);
    MachineDesc machine = makeMachine(MachineId::SPARC);
    SynapseSimResult r =
        simulateSynapseRun(machine, synapseExperiments().front(), 32);
    EXPECT_GE(r.timeseries.samples.size(), 10u);
    Tracer::instance().disable();

    Json doc =
        Json::parse(Tracer::instance().exportChromeTracing(), nullptr);
    const Json &events = doc.at("traceEvents");
    bool saw_counter_track = false;
    bool saw_occupancy = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &ev = events.at(i);
        if (!ev.has("ph") || ev.at("ph").asString() != "C")
            continue;
        const std::string &name = ev.at("name").asString();
        if (name.rfind("ts/", 0) == 0)
            saw_counter_track = true;
        if (name == "ts/kernel_occupancy_pct")
            saw_occupancy = true;
    }
    EXPECT_TRUE(saw_counter_track);
    EXPECT_TRUE(saw_occupancy);
}

TEST_F(SamplingTest, TimeseriesDocIdenticalAcrossJobCounts)
{
    TimeseriesOptions opts;
    opts.refTraceReferences = 50'000;

    ParallelRunner serial(1);
    std::string one = buildTimeseriesDoc(serial, opts).dump(1);
    ParallelRunner wide(4);
    std::string four = buildTimeseriesDoc(wide, opts).dump(1);
    EXPECT_EQ(one, four);

    Json doc = Json::parse(one, nullptr);
    EXPECT_EQ(doc.at("schema_version").asUint(),
              static_cast<std::uint64_t>(timeseriesSchemaVersion));
    EXPECT_EQ(doc.at("table7").at("cells").size(), 14u);
}

} // namespace
