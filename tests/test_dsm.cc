/**
 * @file
 * Tests for the Ivy-style distributed shared virtual memory (§3):
 * protocol transitions, coherence invariants, cost behaviour, and a
 * randomized property suite.
 */

#include <gtest/gtest.h>

#include "arch/machines.hh"
#include "os/vm/dsm.hh"
#include "sim/random.hh"

namespace aosd
{
namespace
{

IvyDsm
makeDsm(std::uint32_t nodes = 3, std::uint64_t pages = 8)
{
    return IvyDsm(makeMachine(MachineId::R3000), nodes, pages);
}

TEST(Dsm, InitialOwnerHoldsWriteAccess)
{
    IvyDsm dsm = makeDsm();
    EXPECT_EQ(dsm.owner(0), 0u);
    EXPECT_EQ(dsm.access(0, 0), DsmAccess::Write);
    EXPECT_EQ(dsm.access(1, 0), DsmAccess::None);
    EXPECT_TRUE(dsm.coherent());
}

TEST(Dsm, LocalWriteIsCheap)
{
    IvyDsm dsm = makeDsm();
    double us = dsm.write(0, 0);
    EXPECT_LT(us, 1.0);
    EXPECT_EQ(dsm.stats().get("write_faults"), 0u);
}

TEST(Dsm, RemoteReadReplicatesAndDowngradesWriter)
{
    IvyDsm dsm = makeDsm();
    double us = dsm.read(1, 0);
    EXPECT_GT(us, 100.0); // page transfer over Ethernet
    EXPECT_EQ(dsm.access(1, 0), DsmAccess::Read);
    // s3: "the writer's copy [is] changed back to read-only".
    EXPECT_EQ(dsm.access(0, 0), DsmAccess::Read);
    EXPECT_EQ(dsm.copyHolders(0), 2u);
    EXPECT_TRUE(dsm.coherent());
}

TEST(Dsm, SecondReadIsLocalHit)
{
    IvyDsm dsm = makeDsm();
    dsm.read(1, 0);
    std::uint64_t faults = dsm.stats().get("read_faults");
    double us = dsm.read(1, 0);
    EXPECT_LT(us, 1.0);
    EXPECT_EQ(dsm.stats().get("read_faults"), faults);
}

TEST(Dsm, WriteInvalidatesAllReplicas)
{
    IvyDsm dsm = makeDsm(4);
    dsm.read(1, 0);
    dsm.read(2, 0);
    dsm.read(3, 0);
    EXPECT_EQ(dsm.copyHolders(0), 4u);

    dsm.write(2, 0);
    EXPECT_EQ(dsm.owner(0), 2u);
    EXPECT_EQ(dsm.access(2, 0), DsmAccess::Write);
    EXPECT_EQ(dsm.copyHolders(0), 1u);
    EXPECT_EQ(dsm.access(0, 0), DsmAccess::None);
    EXPECT_EQ(dsm.access(1, 0), DsmAccess::None);
    EXPECT_EQ(dsm.stats().get("invalidations"), 3u);
    EXPECT_TRUE(dsm.coherent());
}

TEST(Dsm, WriterWithoutCopyFetchesThePage)
{
    IvyDsm dsm = makeDsm();
    std::uint64_t before = dsm.stats().get("page_transfers");
    dsm.write(1, 3); // node 1 never read page 3
    EXPECT_EQ(dsm.stats().get("page_transfers"), before + 1);
    EXPECT_EQ(dsm.owner(3), 1u);
}

TEST(Dsm, ReaderFaultChargesTrapOnFaultingNode)
{
    IvyDsm dsm = makeDsm();
    dsm.read(1, 0);
    EXPECT_EQ(dsm.nodeKernel(1).stats().get(kstat::traps), 1u);
    EXPECT_EQ(dsm.nodeKernel(2).stats().get(kstat::traps), 0u);
}

TEST(Dsm, PagesAreIndependent)
{
    IvyDsm dsm = makeDsm();
    dsm.write(1, 0);
    EXPECT_EQ(dsm.owner(0), 1u);
    EXPECT_EQ(dsm.owner(1), 0u);
    EXPECT_EQ(dsm.access(1, 1), DsmAccess::None);
}

TEST(Dsm, PingPongWritesAreExpensive)
{
    IvyDsm dsm = makeDsm(2, 1);
    double total = 0;
    for (int i = 0; i < 10; ++i) {
        total += dsm.write(i % 2, 0);
    }
    // Every write after the first faults: false sharing is costly.
    EXPECT_EQ(dsm.stats().get("write_faults"), 9u);
    EXPECT_GT(total, 9 * 100.0);
}

TEST(Dsm, InvalidationDropsRemoteTlbEntry)
{
    IvyDsm dsm = makeDsm();
    dsm.read(1, 0);
    SimKernel &n1 = dsm.nodeKernel(1);
    n1.tlb().insert(0, n1.currentSpace().asid(), 0x5000, {});
    dsm.write(2, 0);
    EXPECT_FALSE(
        n1.tlb().lookup(0, n1.currentSpace().asid()).hit);
}

/** Property suite: random op sequences preserve coherence. */
class DsmPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DsmPropertyTest, CoherenceHoldsUnderRandomTraffic)
{
    Rng rng(GetParam());
    IvyDsm dsm(makeMachine(MachineId::R3000), 4, 6);
    for (int i = 0; i < 400; ++i) {
        auto node = static_cast<std::uint32_t>(rng.below(4));
        std::uint64_t page = rng.below(6);
        if (rng.chance(0.5))
            dsm.read(node, page);
        else
            dsm.write(node, page);
        ASSERT_TRUE(dsm.coherent()) << "op " << i;
        // After a read the node can read; after a write, write.
    }
    // Writers are unique per page.
    for (std::uint64_t p = 0; p < 6; ++p) {
        std::uint32_t writers = 0;
        for (std::uint32_t n = 0; n < 4; ++n)
            writers += dsm.access(n, p) == DsmAccess::Write;
        EXPECT_LE(writers, 1u);
    }
}

TEST_P(DsmPropertyTest, AccessRightsFollowProtocol)
{
    Rng rng(GetParam() ^ 0xABCDEF);
    IvyDsm dsm(makeMachine(MachineId::R3000), 3, 4);
    for (int i = 0; i < 200; ++i) {
        auto node = static_cast<std::uint32_t>(rng.below(3));
        std::uint64_t page = rng.below(4);
        if (rng.chance(0.5)) {
            dsm.read(node, page);
            ASSERT_NE(dsm.access(node, page), DsmAccess::None);
        } else {
            dsm.write(node, page);
            ASSERT_EQ(dsm.access(node, page), DsmAccess::Write);
            ASSERT_EQ(dsm.owner(page), node);
            ASSERT_EQ(dsm.copyHolders(page), 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsmPropertyTest,
                         ::testing::Values(11, 23, 37, 91, 1991));

} // namespace
} // namespace aosd
