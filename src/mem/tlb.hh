/**
 * @file
 * Functional + timing TLB model.
 *
 * Section 3.2 of the paper turns on TLB structure: tagged vs untagged
 * entries (purge-on-switch), software vs hardware refill (MIPS's fast
 * user vector vs slow kernel path), lockable entries (SPARC/Cypress),
 * and the pressure a kernelized OS puts on a fixed-size TLB. This model
 * supports all of those and is used by the LRPC simulator (Table 4) and
 * the Mach workload engine (Table 7).
 */

#ifndef AOSD_MEM_TLB_HH
#define AOSD_MEM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/machine_desc.hh"
#include "sim/counters/counters.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** Virtual page number. */
using Vpn = std::uint64_t;
/** Physical frame number. */
using Pfn = std::uint64_t;
/** Address space identifier (TLB tag). */
using Asid = std::uint32_t;

/** Page protection bits. */
struct PageProt
{
    bool readable = true;
    bool writable = false;
    bool userAccessible = true;

    bool
    operator==(const PageProt &) const = default;
};

/** Result of a TLB lookup. */
struct TlbLookup
{
    bool hit = false;
    Pfn pfn = 0;
    PageProt prot;
    /** Cycles the lookup cost (0 on a hit; refill cost on a miss —
     *  charged by the caller once the refill source is known). */
    Cycles missCycles = 0;
    /** Index cell the failed probe ended on: pass to refill() to skip
     *  its insert probe. Meaningful only on a miss, and only until
     *  the next TLB mutation. */
    std::uint32_t fillCell = ~0u;
};

/**
 * Set of translations with LRU replacement over unlocked entries.
 * When the machine has no process-ID tags every entry belongs to the
 * single implicit context and switchContext() purges.
 *
 * Every operation is O(1) in the entry count (the workload engine
 * performs millions of lookups per Table 7 cell): a hash index maps
 * (vpn, asid) to its slot, an intrusive recency list replaces the
 * lastUse scan, and a free-slot bitmap finds the lowest invalid slot.
 * Replacement decisions are identical to the reference linear scan:
 * the victim is the first invalid entry in slot order, else the least
 * recently used unlocked entry (lastUse values are unique, so LRU
 * order is total).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbDesc &d);

    /** Copies/moves re-intern the hot stat handles, which point into
     *  the copied StatGroup. */
    Tlb(const Tlb &o);
    Tlb(Tlb &&o);
    Tlb &operator=(const Tlb &o);
    Tlb &operator=(Tlb &&o);

    /** Probe for (vpn, asid); updates recency on hit.
     *  @param kernel_space  the reference is to mapped kernel space
     *  (selects the software-refill cost on sw-managed TLBs). */
    TlbLookup lookup(Vpn vpn, Asid asid, bool kernel_space = false);

    /** Insert or replace a translation. */
    void insert(Vpn vpn, Asid asid, Pfn pfn, PageProt prot,
                bool locked = false);

    /** insert() for a translation the caller just observed missing
     *  (the refill after a failed lookup): skips the present-already
     *  probe. Identical observable behaviour to insert() with
     *  locked=false for a non-present key; calling it for a key that
     *  IS present corrupts the index.
     *
     *  `fill_cell`, when not ~0u, must be the missing lookup's
     *  TlbLookup::fillCell with no TLB mutation in between: the empty
     *  index cell the failed probe ended on. The key is placed there
     *  directly — cell occupancy only grows until the victim's key is
     *  erased afterwards, so every existing key stays reachable —
     *  skipping the insert probe's hash and cluster walk. */
    void refill(Vpn vpn, Asid asid, Pfn pfn, PageProt prot,
                std::uint32_t fill_cell = ~0u);

    /** Invalidate a single translation if present. */
    void invalidate(Vpn vpn, Asid asid);

    /** Invalidate everything (untagged context switch, TBIA). */
    void invalidateAll();

    /** Invalidate all entries of one address space. */
    void invalidateAsid(Asid asid);

    /** Model a context switch: purges if untagged. Returns the purge
     *  cost in cycles (0 for tagged TLBs). */
    Cycles switchContext();

    /** Number of currently valid entries. */
    std::size_t validEntries() const;

    /** Number of valid entries tagged with `asid`. */
    std::size_t entriesForAsid(Asid asid) const;

    const TlbDesc &config() const { return desc; }
    const StatGroup &stats() const { return statGroup; }
    void resetStats() { statGroup.reset(); }

  private:
    struct Entry
    {
        bool valid = false;
        bool locked = false;
        Vpn vpn = 0;
        Asid asid = 0;
        Pfn pfn = 0;
        PageProt prot;
        std::uint64_t lastUse = 0;
    };

    static constexpr std::uint32_t npos = ~0u;

    /** Hash-index key. Untagged TLBs store asid 0 and match any
     *  caller asid, so their key is the vpn alone. */
    struct SlotKey
    {
        Vpn vpn;
        Asid asid;
        bool operator==(const SlotKey &) const = default;
    };

    static std::uint32_t
    hashKey(SlotKey k)
    {
        std::uint64_t h = k.vpn * 0x9E3779B97F4A7C15ull + k.asid;
        h ^= h >> 29;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 32;
        return static_cast<std::uint32_t>(h);
    }

    SlotKey
    keyFor(Vpn vpn, Asid asid) const
    {
        return {vpn, desc.processIdTags ? asid : 0};
    }

    /** One cell of the open-addressed (linear-probe) index. Load
     *  factor stays at or below 25% — the table has at least four
     *  cells per TLB entry and at most one live key per valid entry —
     *  so probes are short and no rehash is ever needed. */
    struct IndexCell
    {
        Vpn vpn = 0;
        Asid asid = 0;
        std::uint32_t slot = npos; ///< npos marks an empty cell
    };

    std::uint32_t probeFind(SlotKey k) const;
    void probeInsert(SlotKey k, std::uint32_t slot);
    void probeErase(SlotKey k);

    /** Out-of-line miss bookkeeping (stats, counters, tracer, cost
     *  selection); the inline lookup() keeps only the hit path hot.
     *  `empty_cell` is the index cell the failed probe ended on,
     *  passed through as TlbLookup::fillCell. */
    TlbLookup lookupMiss(std::uint32_t empty_cell, bool kernel_space);

    std::uint32_t findSlot(Vpn vpn, Asid asid);
    std::uint32_t victimSlot();

    // Intrusive recency list over valid slots, most recent at head.
    void lruPushHead(std::uint32_t slot);
    void lruUnlink(std::uint32_t slot);
    void lruTouch(std::uint32_t slot);

    void markFree(std::uint32_t slot);
    void markUsed(std::uint32_t slot);
    std::uint32_t lowestFreeSlot() const;

    void dropEntry(std::uint32_t slot);

    void internStats();

    TlbDesc desc;
    std::vector<Entry> entries;
    std::uint64_t useClock = 0;
    std::vector<IndexCell> table;
    std::uint32_t tableMask = 0;
    std::vector<std::uint32_t> lruPrev;
    std::vector<std::uint32_t> lruNext;
    std::uint32_t lruHead = npos;
    std::uint32_t lruTail = npos;
    /** Bitmap of invalid (free) slots; lowest set bit = the reference
     *  scan's "first invalid entry in slot order". */
    std::vector<std::uint64_t> freeWords;
    std::uint32_t freeCount = 0;
    StatGroup statGroup{"tlb"};
    /** Interned hot stat handles (see internStats). */
    std::uint64_t *statLookups = nullptr;
    std::uint64_t *statHits = nullptr;
    std::uint64_t *statMisses = nullptr;
    std::uint64_t *statKernelMisses = nullptr;
    std::uint64_t *statUserMisses = nullptr;
    std::uint64_t *statInserts = nullptr;
};

// The lookup hit path is the single hottest loop in the workload
// engine (tens of millions of calls per Table 7 cell), so it and the
// helpers it touches live in the header where callers can inline
// them; everything rarer (miss bookkeeping, insert, invalidation)
// stays out of line in tlb.cc.

inline std::uint32_t
Tlb::probeFind(SlotKey k) const
{
    std::uint32_t i = hashKey(k) & tableMask;
    while (table[i].slot != npos) {
        if (table[i].vpn == k.vpn && table[i].asid == k.asid)
            return i;
        i = (i + 1) & tableMask;
    }
    return npos;
}

inline void
Tlb::lruPushHead(std::uint32_t slot)
{
    lruPrev[slot] = npos;
    lruNext[slot] = lruHead;
    if (lruHead != npos)
        lruPrev[lruHead] = slot;
    lruHead = slot;
    if (lruTail == npos)
        lruTail = slot;
}

inline void
Tlb::lruUnlink(std::uint32_t slot)
{
    std::uint32_t p = lruPrev[slot];
    std::uint32_t n = lruNext[slot];
    if (p != npos)
        lruNext[p] = n;
    else
        lruHead = n;
    if (n != npos)
        lruPrev[n] = p;
    else
        lruTail = p;
    lruPrev[slot] = lruNext[slot] = npos;
}

inline void
Tlb::lruTouch(std::uint32_t slot)
{
    if (lruHead != slot) {
        lruUnlink(slot);
        lruPushHead(slot);
    }
}

inline TlbLookup
Tlb::lookup(Vpn vpn, Asid asid, bool kernel_space)
{
    ++*statLookups;
    SlotKey k = keyFor(vpn, asid);
    std::uint32_t i = hashKey(k) & tableMask;
    while (table[i].slot != npos) {
        if (table[i].vpn == k.vpn && table[i].asid == k.asid)
            [[likely]] {
            std::uint32_t slot = table[i].slot;
            Entry &e = entries[slot];
            e.lastUse = ++useClock;
            lruTouch(slot);
            ++*statHits;
            countEvent(HwCounter::TlbHits);
            return {true, e.pfn, e.prot, 0};
        }
        i = (i + 1) & tableMask;
    }
    // i is the empty cell the probe ended on: a subsequent refill()
    // may place the key there (TlbLookup::fillCell).
    return lookupMiss(i, kernel_space);
}

} // namespace aosd

#endif // AOSD_MEM_TLB_HH
