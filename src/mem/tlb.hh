/**
 * @file
 * Functional + timing TLB model.
 *
 * Section 3.2 of the paper turns on TLB structure: tagged vs untagged
 * entries (purge-on-switch), software vs hardware refill (MIPS's fast
 * user vector vs slow kernel path), lockable entries (SPARC/Cypress),
 * and the pressure a kernelized OS puts on a fixed-size TLB. This model
 * supports all of those and is used by the LRPC simulator (Table 4) and
 * the Mach workload engine (Table 7).
 */

#ifndef AOSD_MEM_TLB_HH
#define AOSD_MEM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/machine_desc.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** Virtual page number. */
using Vpn = std::uint64_t;
/** Physical frame number. */
using Pfn = std::uint64_t;
/** Address space identifier (TLB tag). */
using Asid = std::uint32_t;

/** Page protection bits. */
struct PageProt
{
    bool readable = true;
    bool writable = false;
    bool userAccessible = true;

    bool
    operator==(const PageProt &) const = default;
};

/** Result of a TLB lookup. */
struct TlbLookup
{
    bool hit = false;
    Pfn pfn = 0;
    PageProt prot;
    /** Cycles the lookup cost (0 on a hit; refill cost on a miss —
     *  charged by the caller once the refill source is known). */
    Cycles missCycles = 0;
};

/**
 * Set of translations with LRU replacement over unlocked entries.
 * When the machine has no process-ID tags every entry belongs to the
 * single implicit context and switchContext() purges.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbDesc &d);

    /** Probe for (vpn, asid); updates recency on hit.
     *  @param kernel_space  the reference is to mapped kernel space
     *  (selects the software-refill cost on sw-managed TLBs). */
    TlbLookup lookup(Vpn vpn, Asid asid, bool kernel_space = false);

    /** Insert or replace a translation. */
    void insert(Vpn vpn, Asid asid, Pfn pfn, PageProt prot,
                bool locked = false);

    /** Invalidate a single translation if present. */
    void invalidate(Vpn vpn, Asid asid);

    /** Invalidate everything (untagged context switch, TBIA). */
    void invalidateAll();

    /** Invalidate all entries of one address space. */
    void invalidateAsid(Asid asid);

    /** Model a context switch: purges if untagged. Returns the purge
     *  cost in cycles (0 for tagged TLBs). */
    Cycles switchContext();

    /** Number of currently valid entries. */
    std::size_t validEntries() const;

    /** Number of valid entries tagged with `asid`. */
    std::size_t entriesForAsid(Asid asid) const;

    const TlbDesc &config() const { return desc; }
    const StatGroup &stats() const { return statGroup; }
    void resetStats() { statGroup.reset(); }

  private:
    struct Entry
    {
        bool valid = false;
        bool locked = false;
        Vpn vpn = 0;
        Asid asid = 0;
        Pfn pfn = 0;
        PageProt prot;
        std::uint64_t lastUse = 0;
    };

    Entry *find(Vpn vpn, Asid asid);
    Entry &victim();

    TlbDesc desc;
    std::vector<Entry> entries;
    std::uint64_t useClock = 0;
    StatGroup statGroup{"tlb"};
};

} // namespace aosd

#endif // AOSD_MEM_TLB_HH
