#include "mem/phys_mem.hh"

#include "sim/logging.hh"

namespace aosd
{

PhysMem::PhysMem(std::uint64_t frames) : total(frames)
{
    if (frames == 0)
        fatal("physical memory must have at least one frame");
    allocated.assign(frames, false);
    freeList.reserve(frames);
    // Hand frames out in ascending order for reproducibility.
    for (Pfn p = frames; p > 0; --p)
        freeList.push_back(p - 1);
}

Pfn
PhysMem::alloc()
{
    if (freeList.empty())
        fatal("out of physical memory (%llu frames)",
              static_cast<unsigned long long>(total));
    Pfn pfn = freeList.back();
    freeList.pop_back();
    allocated[pfn] = true;
    ++live;
    peak = std::max(peak, live);
    counters.inc("allocs");
    return pfn;
}

void
PhysMem::free(Pfn pfn)
{
    if (pfn >= total || !allocated[pfn])
        panic("free of unallocated frame %llu",
              static_cast<unsigned long long>(pfn));
    allocated[pfn] = false;
    freeList.push_back(pfn);
    --live;
    counters.inc("frees");
}

std::uint64_t
PhysMem::freeFrames() const
{
    return freeList.size();
}

std::uint64_t
PhysMem::allocatedFrames() const
{
    return live;
}

} // namespace aosd
