/**
 * @file
 * Write buffer timing model.
 *
 * Section 2.3 of the paper traces a large share of trap/syscall overhead
 * to write buffer behaviour: the DECstation 3100's 4-deep write-through
 * buffer stalls 5 cycles on every successive write once full (~30% of
 * interrupt overhead), while the DECstation 5000's 6-deep buffer retires
 * one write per cycle when successive writes hit the same DRAM page, as
 * they do in register-save sequences. This model reproduces both.
 */

#ifndef AOSD_MEM_WRITE_BUFFER_HH
#define AOSD_MEM_WRITE_BUFFER_HH

#include <deque>

#include "arch/machine_desc.hh"
#include "sim/ticks.hh"

namespace aosd
{

/**
 * FIFO of pending writes, each with a completion cycle. Stores stall the
 * processor only when the buffer is full; entries retire in order at the
 * memory system's drain rate.
 */
class WriteBuffer
{
  public:
    explicit WriteBuffer(const WriteBufferDesc &d) : desc(d) {}

    /**
     * Issue a store at processor cycle `now` (the cycle the store would
     * complete absent stalls).
     *
     * @param now       current accumulated cycle count
     * @param same_page store falls on the same DRAM page as the previous
     * @return stall cycles the processor must wait before the store can
     *         enter the buffer
     */
    Cycles store(Cycles now, bool same_page);

    /** Cycles until the buffer is empty, measured from `now`. */
    Cycles drainTime(Cycles now) const;

    /** Entries still pending at cycle `now`. */
    std::size_t occupancy(Cycles now) const;

    /** Forget all pending writes (new measurement run). */
    void reset() { pending.clear(); }

    const WriteBufferDesc &config() const { return desc; }

  private:
    /** Drop entries whose writes have completed by `now`. */
    void drain(Cycles now);

    WriteBufferDesc desc;
    /** Completion cycles of pending writes, oldest first. */
    std::deque<Cycles> pending;
};

} // namespace aosd

#endif // AOSD_MEM_WRITE_BUFFER_HH
