#include "mem/write_buffer.hh"

#include <algorithm>

#include "sim/counters/counters.hh"
#include "sim/trace.hh"

namespace aosd
{

void
WriteBuffer::drain(Cycles now)
{
    while (!pending.empty() && pending.front() <= now)
        pending.pop_front();
}

Cycles
WriteBuffer::store(Cycles now, bool same_page)
{
    drain(now);

    std::uint32_t depth = std::max<std::uint32_t>(desc.depth, 1);

    Cycles stall = 0;
    if (pending.size() >= depth) {
        // Buffer full: wait for the oldest write to retire.
        stall = pending.front() - now;
        now = pending.front();
        pending.pop_front();
        if (stall > 0) {
            if (tracerEnabled())
                Tracer::instance().instant(TraceEvent::WriteBufferStall,
                                           "wb_stall", stall);
            countEvent(HwCounter::WbStalls);
            countEvent(HwCounter::WbStallCycles, stall);
        }
    }

    // The new write starts retiring once it reaches the head; memory is
    // busy until the entry queued before it finishes.
    Cycles start = pending.empty() ? now : std::max(now, pending.back());
    Cycles cost = (desc.samePageFastRetire && same_page)
                      ? desc.samePageDrainCycles
                      : desc.drainCycles;
    pending.push_back(start + cost);
    countEvent(HwCounter::WbStores);
    countHighWater(HwCounter::WbOccupancyHighWater, pending.size());
    if (tracerEnabled())
        Tracer::instance().counter("wb_occupancy", pending.size());
    return stall;
}

Cycles
WriteBuffer::drainTime(Cycles now) const
{
    if (pending.empty() || pending.back() <= now)
        return 0;
    return pending.back() - now;
}

std::size_t
WriteBuffer::occupancy(Cycles now) const
{
    std::size_t n = 0;
    for (Cycles c : pending)
        if (c > now)
            ++n;
    return n;
}

} // namespace aosd
