#include "mem/cache.hh"

#include "mem/page_table.hh"
#include "mem/write_buffer.hh"
#include "sim/counters/counters.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace aosd
{

Cache::Cache(const CacheDesc &d) : desc(d)
{
    if (d.lineBytes == 0 || d.sizeBytes % d.lineBytes != 0)
        fatal("bad cache geometry");
    lines.resize(d.sizeBytes / d.lineBytes);
}

std::size_t
Cache::index(Addr addr) const
{
    return (addr / desc.lineBytes) % lines.size();
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / desc.lineBytes / lines.size();
}

Cycles
Cache::access(Addr addr, Asid asid, bool write)
{
    Line &line = lines[index(addr)];
    bool context_match =
        desc.indexing == CacheIndexing::Physical || line.asid == asid;
    if (line.valid && line.tag == tagOf(addr) && context_match) {
        statGroup.inc("hits");
        countEvent(HwCounter::CacheHits);
        if (write) {
            line.dirty = (desc.policy == WritePolicy::WriteBack);
            if (desc.policy == WritePolicy::WriteThrough)
                countEvent(HwCounter::CacheWriteThroughs);
        }
        return 1;
    }
    statGroup.inc("misses");
    countEvent(HwCounter::CacheMisses);
    if (write && desc.policy == WritePolicy::WriteThrough)
        countEvent(HwCounter::CacheWriteThroughs);
    Cycles cost = 1 + desc.missPenaltyCycles;
    if (line.valid && line.dirty)
        cost += desc.missPenaltyCycles; // writeback of the victim
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::CacheMiss, "cache_miss",
                                   cost);
    line.valid = true;
    line.dirty = write && desc.policy == WritePolicy::WriteBack;
    line.tag = tagOf(addr);
    line.asid = asid;
    return cost;
}

bool
Cache::present(Addr addr, Asid asid) const
{
    const Line &line = lines[index(addr)];
    bool context_match =
        desc.indexing == CacheIndexing::Physical || line.asid == asid;
    return line.valid && line.tag == tagOf(addr) && context_match;
}

Cycles
Cache::flushPage(Addr page_base, Asid asid)
{
    statGroup.inc("page_flushes");
    Addr base = page_base & ~(pageBytes - 1);
    Cycles cost = 0;
    std::uint64_t swept = 0;
    for (Addr a = base; a < base + pageBytes; a += desc.lineBytes) {
        Line &line = lines[index(a)];
        if (line.valid && line.tag == tagOf(a) &&
            (desc.indexing == CacheIndexing::Physical ||
             line.asid == asid)) {
            if (line.dirty)
                cost += desc.missPenaltyCycles; // write back
            line.valid = false;
        }
        cost += desc.flushLineCycles;
        ++swept;
    }
    countEvent(HwCounter::CacheFlushLines, swept);
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::CacheFlush,
                                   "cache_flush_page", swept);
    return cost;
}

Cycles
Cache::flushAll()
{
    statGroup.inc("full_flushes");
    Cycles cost = 0;
    for (auto &line : lines) {
        if (line.valid && line.dirty)
            cost += desc.missPenaltyCycles;
        line.valid = false;
        cost += desc.flushLineCycles;
    }
    countEvent(HwCounter::CacheFlushLines, lines.size());
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::CacheFlush,
                                   "cache_flush_all", lines.size());
    return cost;
}

Cycles
Cache::switchContext(bool tagged)
{
    if (desc.indexing == CacheIndexing::Physical || tagged)
        return 0;
    return flushAll();
}

Cycles
copyCycles(const MachineDesc &machine, std::uint64_t bytes)
{
    // Word-at-a-time copy loop: load, store, index update, branch per
    // 4 bytes; stores are paced by the write buffer.
    WriteBuffer wb(machine.writeBuffer);
    Cycles now = 0;
    std::uint64_t words = (bytes + 3) / 4;
    std::uint32_t line_words = machine.cache.lineBytes / 4;
    if (line_words == 0)
        line_words = 1;
    for (std::uint64_t w = 0; w < words; ++w) {
        // Source misses once per line (streaming data is not resident).
        now += 1;
        if (w % line_words == 0)
            now += machine.cache.missPenaltyCycles;
        // Store through the buffer; copies stream within a DRAM page.
        now += 1 + wb.store(now, true);
        // Loop overhead, partially hidden by delay slots.
        now += 2;
    }
    return now;
}

double
copyBandwidthMBps(const MachineDesc &machine)
{
    constexpr std::uint64_t bytes = 64 * 1024;
    Cycles c = copyCycles(machine, bytes);
    double seconds = static_cast<double>(
                         machine.clock.cyclesToTicks(c)) /
                     static_cast<double>(ticksPerSecond);
    return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

} // namespace aosd
