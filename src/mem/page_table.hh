/**
 * @file
 * Page table interface.
 *
 * Section 3.2 contrasts three structures: the VAX's linear tables
 * (problematic for sparse address spaces), the SPARC/Cypress 3-level
 * tree with terminal superpage PTEs at any level, and the MIPS
 * software-managed scheme where the OS picks any structure it likes
 * (we provide a hashed table). All three implement this interface so
 * the VM subsystem and the benches can swap them.
 */

#ifndef AOSD_MEM_PAGE_TABLE_HH
#define AOSD_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "mem/tlb.hh"

namespace aosd
{

/** Size of a base page in bytes (4KB everywhere in the paper's era). */
constexpr std::uint64_t pageBytes = 4096;
constexpr std::uint64_t pageShift = 12;

/** A translation record. */
struct Pte
{
    Pfn pfn = 0;
    PageProt prot;
    bool referenced = false;
    bool dirty = false;
    /** Copy-on-write marker used by the VM layer. */
    bool copyOnWrite = false;
};

/** Result of a table walk. */
struct WalkResult
{
    std::optional<Pte> pte;
    /** Memory references the hardware/software walker performed. */
    std::uint32_t memoryRefs = 0;
    /** Levels traversed (1 for linear/hashed hit). */
    std::uint32_t levels = 0;
};

/** Abstract page table for one address space. */
class PageTable
{
  public:
    virtual ~PageTable() = default;

    /** Map vpn -> pte (creates intermediate structures as needed). */
    virtual void map(Vpn vpn, const Pte &pte) = 0;

    /** Remove a mapping; no-op if absent. */
    virtual void unmap(Vpn vpn) = 0;

    /** Walk the table. */
    virtual WalkResult walk(Vpn vpn) const = 0;

    /** Change protection on an existing mapping.
     *  @return false if the page is not mapped. */
    virtual bool protect(Vpn vpn, PageProt prot);

    /** Update a full PTE in place. @return false if unmapped. */
    virtual bool update(Vpn vpn, const Pte &pte);

    /**
     * Map a 256KB-aligned region with a single terminal superpage PTE
     * (one TLB entry for the whole region, §3.2). Only the multi-level
     * table supports this.
     * @return false when the structure has no superpage support.
     */
    virtual bool mapSuperpage(Vpn base_vpn, const Pte &pte);

    /** Pages covered by one superpage mapping (64 x 4KB = 256KB). */
    static constexpr std::uint64_t superpagePages = 64;

    /** Number of mappings installed. */
    virtual std::uint64_t mappedPages() const = 0;

    /** Bytes of memory consumed by table structures themselves —
     *  the sparse-address-space overhead §3.2 calls "problematic on a
     *  linear page table system like the VAX". */
    virtual std::uint64_t tableOverheadBytes() const = 0;

    virtual std::string structureName() const = 0;
};

/** VAX-style linear table: contiguous PTE array per region. */
std::unique_ptr<PageTable> makeLinearPageTable(Vpn max_vpn);

/** SPARC/Cypress 3-level tree; supports terminal superpage PTEs. */
std::unique_ptr<PageTable> makeMultiLevelPageTable();

/** Software-chosen hashed (inverted-style) table for MIPS/RS6000. */
std::unique_ptr<PageTable> makeHashedPageTable(std::uint64_t buckets);

/** Build the natural page table for a machine. */
std::unique_ptr<PageTable> makePageTableFor(const MachineDesc &machine);

} // namespace aosd

#endif // AOSD_MEM_PAGE_TABLE_HH
