#include "mem/tlb.hh"

#include "sim/counters/counters.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace aosd
{

Tlb::Tlb(const TlbDesc &d)
    : desc(d), entries(d.entries), lruPrev(d.entries, npos),
      lruNext(d.entries, npos), freeWords((d.entries + 63) / 64, 0),
      freeCount(d.entries)
{
    if (d.entries == 0)
        fatal("TLB must have at least one entry");
    for (std::uint32_t i = 0; i < d.entries; ++i)
        freeWords[i / 64] |= 1ull << (i % 64);
    std::uint32_t cap = 16;
    while (cap < 4 * d.entries)
        cap *= 2;
    table.assign(cap, IndexCell{});
    tableMask = cap - 1;
    internStats();
}

void
Tlb::internStats()
{
    statLookups = &statGroup.handle("lookups");
    statHits = &statGroup.handle("hits");
    statMisses = &statGroup.handle("misses");
    statKernelMisses = &statGroup.handle("kernel_misses");
    statUserMisses = &statGroup.handle("user_misses");
    statInserts = &statGroup.handle("inserts");
}

Tlb::Tlb(const Tlb &o)
    : desc(o.desc), entries(o.entries), useClock(o.useClock),
      table(o.table), tableMask(o.tableMask), lruPrev(o.lruPrev),
      lruNext(o.lruNext), lruHead(o.lruHead), lruTail(o.lruTail),
      freeWords(o.freeWords), freeCount(o.freeCount),
      statGroup(o.statGroup)
{
    internStats();
}

Tlb::Tlb(Tlb &&o)
    : desc(std::move(o.desc)), entries(std::move(o.entries)),
      useClock(o.useClock), table(std::move(o.table)),
      tableMask(o.tableMask), lruPrev(std::move(o.lruPrev)),
      lruNext(std::move(o.lruNext)), lruHead(o.lruHead),
      lruTail(o.lruTail), freeWords(std::move(o.freeWords)),
      freeCount(o.freeCount), statGroup(std::move(o.statGroup))
{
    internStats();
}

Tlb &
Tlb::operator=(const Tlb &o)
{
    if (this == &o)
        return *this;
    desc = o.desc;
    entries = o.entries;
    useClock = o.useClock;
    table = o.table;
    tableMask = o.tableMask;
    lruPrev = o.lruPrev;
    lruNext = o.lruNext;
    lruHead = o.lruHead;
    lruTail = o.lruTail;
    freeWords = o.freeWords;
    freeCount = o.freeCount;
    statGroup = o.statGroup;
    internStats();
    return *this;
}

Tlb &
Tlb::operator=(Tlb &&o)
{
    if (this == &o)
        return *this;
    desc = std::move(o.desc);
    entries = std::move(o.entries);
    useClock = o.useClock;
    table = std::move(o.table);
    tableMask = o.tableMask;
    lruPrev = std::move(o.lruPrev);
    lruNext = std::move(o.lruNext);
    lruHead = o.lruHead;
    lruTail = o.lruTail;
    freeWords = std::move(o.freeWords);
    freeCount = o.freeCount;
    statGroup = std::move(o.statGroup);
    internStats();
    return *this;
}

void
Tlb::probeInsert(SlotKey k, std::uint32_t slot)
{
    std::uint32_t i = hashKey(k) & tableMask;
    while (table[i].slot != npos)
        i = (i + 1) & tableMask;
    table[i] = {k.vpn, k.asid, slot};
}

void
Tlb::probeErase(SlotKey k)
{
    std::uint32_t i = probeFind(k);
    // Backward-shift deletion: walk the cluster after the hole and
    // pull down any cell whose home position precedes the hole on its
    // probe path, so later finds never cross a false empty.
    std::uint32_t j = i;
    for (std::uint32_t s = (j + 1) & tableMask;
         table[s].slot != npos; s = (s + 1) & tableMask) {
        std::uint32_t home =
            hashKey({table[s].vpn, table[s].asid}) & tableMask;
        if (((j - home) & tableMask) < ((s - home) & tableMask)) {
            table[j] = table[s];
            j = s;
        }
    }
    table[j].slot = npos;
}

void
Tlb::markFree(std::uint32_t slot)
{
    std::uint64_t bit = 1ull << (slot % 64);
    if (!(freeWords[slot / 64] & bit)) {
        freeWords[slot / 64] |= bit;
        ++freeCount;
    }
}

void
Tlb::markUsed(std::uint32_t slot)
{
    std::uint64_t bit = 1ull << (slot % 64);
    if (freeWords[slot / 64] & bit) {
        freeWords[slot / 64] &= ~bit;
        --freeCount;
    }
}

std::uint32_t
Tlb::lowestFreeSlot() const
{
    for (std::size_t w = 0; w < freeWords.size(); ++w)
        if (freeWords[w])
            return static_cast<std::uint32_t>(
                w * 64 +
                static_cast<std::uint32_t>(
                    __builtin_ctzll(freeWords[w])));
    return npos;
}

std::uint32_t
Tlb::findSlot(Vpn vpn, Asid asid)
{
    std::uint32_t i = probeFind(keyFor(vpn, asid));
    return i == npos ? npos : table[i].slot;
}

std::uint32_t
Tlb::victimSlot()
{
    // Prefer an invalid entry (the reference scan returns the first
    // one in slot order); otherwise LRU among unlocked entries.
    if (freeCount) {
        std::uint32_t slot = lowestFreeSlot();
        if (slot != npos)
            return slot;
    }
    for (std::uint32_t s = lruTail; s != npos; s = lruPrev[s])
        if (!entries[s].locked)
            return s;
    panic("all TLB entries locked");
}

/** Drop a valid entry: de-index, unlink, free its slot. */
void
Tlb::dropEntry(std::uint32_t slot)
{
    Entry &e = entries[slot];
    probeErase(SlotKey{e.vpn, e.asid});
    lruUnlink(slot);
    markFree(slot);
    e.valid = false;
    e.locked = false;
}

TlbLookup
Tlb::lookupMiss(std::uint32_t empty_cell, bool kernel_space)
{
    ++*statMisses;
    ++*(kernel_space ? statKernelMisses : statUserMisses);
    Cycles cost;
    if (desc.management == TlbManagement::Hardware) {
        cost = desc.hwMissCycles;
    } else {
        cost = kernel_space ? desc.swKernelMissCycles
                            : desc.swUserMissCycles;
    }
    countEvent(HwCounter::TlbMisses);
    countEvent(HwCounter::TlbRefillCycles, cost);
    if (tracerEnabled()) {
        Tracer::instance().instant(TraceEvent::TlbMiss,
                                   kernel_space ? "tlb_miss_kernel"
                                                : "tlb_miss_user",
                                   cost);
        Tracer::instance().counter(
            "tlb_misses",
            HwCounters::instance().value(HwCounter::TlbMisses));
    }
    return {false, 0, {}, cost, empty_cell};
}

void
Tlb::insert(Vpn vpn, Asid asid, Pfn pfn, PageProt prot, bool locked)
{
    if (locked && desc.lockableEntries == 0)
        fatal("TLB does not support locked entries");
    std::uint32_t slot = findSlot(vpn, asid);
    if (slot == npos) {
        slot = victimSlot();
        if (entries[slot].valid)
            dropEntry(slot);
        markUsed(slot);
        probeInsert(keyFor(vpn, asid), slot);
        lruPushHead(slot);
    } else {
        lruTouch(slot);
    }
    Entry &e = entries[slot];
    e.valid = true;
    e.locked = locked;
    e.vpn = vpn;
    e.asid = desc.processIdTags ? asid : 0;
    e.pfn = pfn;
    e.prot = prot;
    e.lastUse = ++useClock;
    ++*statInserts;
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::TlbFill, "tlb_fill", vpn);
}

void
Tlb::refill(Vpn vpn, Asid asid, Pfn pfn, PageProt prot,
            std::uint32_t fill_cell)
{
    std::uint32_t slot = victimSlot();
    SlotKey k = keyFor(vpn, asid);
    if (fill_cell != npos) {
        // The caller's failed probe already walked the key's cluster;
        // place the key at the empty cell it ended on. Writing before
        // erasing only grows occupancy, so no existing key's probe
        // path crosses a false empty, and the backward-shift erase of
        // the victim's key below re-packs the cluster correctly (it
        // may relocate the cell just written — that is fine).
        table[fill_cell] = {k.vpn, k.asid, slot};
        if (entries[slot].valid) {
            Entry &v = entries[slot];
            probeErase(SlotKey{v.vpn, v.asid});
            lruUnlink(slot);
            // The slot stays in use: no free-bitmap churn.
        } else {
            markUsed(slot);
        }
    } else {
        if (entries[slot].valid)
            dropEntry(slot);
        markUsed(slot);
        probeInsert(k, slot);
    }
    lruPushHead(slot);
    Entry &e = entries[slot];
    e.valid = true;
    e.locked = false;
    e.vpn = vpn;
    e.asid = desc.processIdTags ? asid : 0;
    e.pfn = pfn;
    e.prot = prot;
    e.lastUse = ++useClock;
    ++*statInserts;
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::TlbFill, "tlb_fill", vpn);
}

void
Tlb::invalidate(Vpn vpn, Asid asid)
{
    std::uint32_t slot = findSlot(vpn, asid);
    if (slot != npos) {
        dropEntry(slot);
        statGroup.inc("entry_purges");
        countEvent(HwCounter::TlbPurges);
    }
}

void
Tlb::invalidateAll()
{
    std::uint64_t dropped = validEntries();
    for (std::uint32_t s = 0; s < entries.size(); ++s) {
        entries[s].valid = false;
        entries[s].locked = false;
        lruPrev[s] = lruNext[s] = npos;
        markFree(s);
    }
    for (IndexCell &c : table)
        c.slot = npos;
    lruHead = lruTail = npos;
    statGroup.inc("full_purges");
    countEvent(HwCounter::TlbPurges);
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::TlbPurge, "tlb_purge_all",
                                   dropped);
}

void
Tlb::invalidateAsid(Asid asid)
{
    for (std::uint32_t s = 0; s < entries.size(); ++s)
        if (entries[s].valid && entries[s].asid == asid)
            dropEntry(s);
    statGroup.inc("asid_purges");
    countEvent(HwCounter::TlbPurges);
}

Cycles
Tlb::switchContext()
{
    if (desc.processIdTags)
        return 0;
    invalidateAll();
    return desc.purgeAllCycles;
}

std::size_t
Tlb::validEntries() const
{
    return entries.size() - freeCount;
}

std::size_t
Tlb::entriesForAsid(Asid asid) const
{
    std::size_t n = 0;
    for (const auto &e : entries)
        n += e.valid && e.asid == asid;
    return n;
}

} // namespace aosd
