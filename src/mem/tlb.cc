#include "mem/tlb.hh"

#include "sim/counters/counters.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace aosd
{

Tlb::Tlb(const TlbDesc &d) : desc(d), entries(d.entries)
{
    if (d.entries == 0)
        fatal("TLB must have at least one entry");
}

Tlb::Entry *
Tlb::find(Vpn vpn, Asid asid)
{
    for (auto &e : entries) {
        if (!e.valid || e.vpn != vpn)
            continue;
        if (desc.processIdTags && e.asid != asid)
            continue;
        return &e;
    }
    return nullptr;
}

Tlb::Entry &
Tlb::victim()
{
    // Prefer an invalid entry; otherwise LRU among unlocked entries.
    Entry *best = nullptr;
    for (auto &e : entries) {
        if (e.locked)
            continue;
        if (!e.valid)
            return e;
        if (!best || e.lastUse < best->lastUse)
            best = &e;
    }
    if (!best)
        panic("all TLB entries locked");
    return *best;
}

TlbLookup
Tlb::lookup(Vpn vpn, Asid asid, bool kernel_space)
{
    statGroup.inc("lookups");
    if (Entry *e = find(vpn, asid)) {
        e->lastUse = ++useClock;
        statGroup.inc("hits");
        countEvent(HwCounter::TlbHits);
        return {true, e->pfn, e->prot, 0};
    }
    statGroup.inc("misses");
    statGroup.inc(kernel_space ? "kernel_misses" : "user_misses");
    Cycles cost;
    if (desc.management == TlbManagement::Hardware) {
        cost = desc.hwMissCycles;
    } else {
        cost = kernel_space ? desc.swKernelMissCycles
                            : desc.swUserMissCycles;
    }
    countEvent(HwCounter::TlbMisses);
    countEvent(HwCounter::TlbRefillCycles, cost);
    if (tracerEnabled()) {
        Tracer::instance().instant(TraceEvent::TlbMiss,
                                   kernel_space ? "tlb_miss_kernel"
                                                : "tlb_miss_user",
                                   cost);
        Tracer::instance().counter(
            "tlb_misses",
            HwCounters::instance().value(HwCounter::TlbMisses));
    }
    return {false, 0, {}, cost};
}

void
Tlb::insert(Vpn vpn, Asid asid, Pfn pfn, PageProt prot, bool locked)
{
    Entry *e = find(vpn, asid);
    if (!e)
        e = &victim();
    if (locked && desc.lockableEntries == 0)
        fatal("TLB does not support locked entries");
    e->valid = true;
    e->locked = locked;
    e->vpn = vpn;
    e->asid = desc.processIdTags ? asid : 0;
    e->pfn = pfn;
    e->prot = prot;
    e->lastUse = ++useClock;
    statGroup.inc("inserts");
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::TlbFill, "tlb_fill", vpn);
}

void
Tlb::invalidate(Vpn vpn, Asid asid)
{
    if (Entry *e = find(vpn, asid)) {
        e->valid = false;
        e->locked = false;
        statGroup.inc("entry_purges");
        countEvent(HwCounter::TlbPurges);
    }
}

void
Tlb::invalidateAll()
{
    std::uint64_t dropped = validEntries();
    for (auto &e : entries) {
        e.valid = false;
        e.locked = false;
    }
    statGroup.inc("full_purges");
    countEvent(HwCounter::TlbPurges);
    if (tracerEnabled())
        Tracer::instance().instant(TraceEvent::TlbPurge, "tlb_purge_all",
                                   dropped);
}

void
Tlb::invalidateAsid(Asid asid)
{
    for (auto &e : entries)
        if (e.valid && e.asid == asid) {
            e.valid = false;
            e.locked = false;
        }
    statGroup.inc("asid_purges");
    countEvent(HwCounter::TlbPurges);
}

Cycles
Tlb::switchContext()
{
    if (desc.processIdTags)
        return 0;
    invalidateAll();
    return desc.purgeAllCycles;
}

std::size_t
Tlb::validEntries() const
{
    std::size_t n = 0;
    for (const auto &e : entries)
        n += e.valid;
    return n;
}

std::size_t
Tlb::entriesForAsid(Asid asid) const
{
    std::size_t n = 0;
    for (const auto &e : entries)
        n += e.valid && e.asid == asid;
    return n;
}

} // namespace aosd
