/**
 * @file
 * Physical memory: frame allocation and accounting.
 *
 * A simple free-list frame allocator with allocation statistics. The
 * VM manager draws COW copies and zero-fill frames from here, so tests
 * can assert that sharing actually saves memory — the other half of
 * the §3 copy-on-write argument ("Copy-on-write saves memory and
 * avoids copying").
 */

#ifndef AOSD_MEM_PHYS_MEM_HH
#define AOSD_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "mem/tlb.hh"
#include "sim/stats.hh"

namespace aosd
{

/** Frame allocator over a fixed-size physical memory. */
class PhysMem
{
  public:
    /** @param frames total page frames (e.g. 6144 for the paper's
     *  24MB DECstation at 4KB pages). */
    explicit PhysMem(std::uint64_t frames);

    /** Allocate one frame; fatal when memory is exhausted. */
    Pfn alloc();

    /** Release a frame back to the free list. */
    void free(Pfn pfn);

    std::uint64_t totalFrames() const { return total; }
    std::uint64_t freeFrames() const;
    std::uint64_t allocatedFrames() const;

    /** High-water mark of simultaneous allocation. */
    std::uint64_t peakAllocated() const { return peak; }

    const StatGroup &stats() const { return counters; }

  private:
    std::uint64_t total;
    std::vector<bool> allocated;
    std::vector<Pfn> freeList;
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    StatGroup counters{"physmem"};
};

} // namespace aosd

#endif // AOSD_MEM_PHYS_MEM_HH
