#include "mem/page_table.hh"

#include <map>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace aosd
{

bool
PageTable::protect(Vpn vpn, PageProt prot)
{
    WalkResult r = walk(vpn);
    if (!r.pte)
        return false;
    Pte pte = *r.pte;
    pte.prot = prot;
    return update(vpn, pte);
}

bool
PageTable::update(Vpn vpn, const Pte &pte)
{
    WalkResult r = walk(vpn);
    if (!r.pte)
        return false;
    map(vpn, pte);
    return true;
}

bool
PageTable::mapSuperpage(Vpn, const Pte &)
{
    return false;
}

namespace
{

/**
 * VAX-style linear page table: one contiguous array of PTEs indexed by
 * VPN. Simple and fast, but the array must span from page 0 to the
 * highest mapped page, so sparse address spaces waste table memory.
 */
class LinearPageTable : public PageTable
{
  public:
    explicit LinearPageTable(Vpn max_vpn) : maxVpn(max_vpn) {}

    void
    map(Vpn vpn, const Pte &pte) override
    {
        if (vpn > maxVpn)
            fatal("vpn %llu beyond linear table limit",
                  static_cast<unsigned long long>(vpn));
        if (vpn >= table.size())
            table.resize(vpn + 1);
        if (!table[vpn].valid)
            ++mapped;
        table[vpn] = Slot{true, pte};
    }

    void
    unmap(Vpn vpn) override
    {
        if (vpn < table.size() && table[vpn].valid) {
            table[vpn].valid = false;
            --mapped;
        }
    }

    WalkResult
    walk(Vpn vpn) const override
    {
        WalkResult r;
        r.memoryRefs = 1;
        r.levels = 1;
        if (vpn < table.size() && table[vpn].valid)
            r.pte = table[vpn].pte;
        return r;
    }

    std::uint64_t mappedPages() const override { return mapped; }

    std::uint64_t
    tableOverheadBytes() const override
    {
        // 4 bytes per PTE slot over the whole span, the VAX cost of
        // sparseness.
        return table.size() * 4;
    }

    std::string structureName() const override { return "linear"; }

  private:
    struct Slot
    {
        bool valid = false;
        Pte pte;
    };

    Vpn maxVpn;
    std::vector<Slot> table;
    std::uint64_t mapped = 0;
};

/**
 * SPARC/Cypress 3-level tree. Level 1 maps 4GB in 16MB regions, level
 * 2 maps 16MB in 256KB regions, level 3 maps 256KB in 4KB pages. A
 * terminal PTE may appear at level 1 or 2, mapping the whole region
 * with one entry (and hence one TLB entry, §3.2).
 */
class MultiLevelPageTable : public PageTable
{
  public:
    // 4KB pages: 20-bit VPN. L3 index: low 6 bits (64 pages = 256KB);
    // L2 index: next 6 bits (64 * 256KB = 16MB); L1: top 8 bits.
    static constexpr unsigned l3Bits = 6;
    static constexpr unsigned l2Bits = 6;

    void
    map(Vpn vpn, const Pte &pte) override
    {
        auto [i1, i2, i3] = split(vpn);
        Level2 &l2 = level1[i1];
        Level3 &l3 = l2.children[i2];
        auto [it, inserted] = l3.ptes.emplace(i3, pte);
        if (!inserted)
            it->second = pte;
        else
            ++mapped;
    }

    /** Map an aligned 256KB region with a single level-2 terminal PTE. */
    bool
    mapSuperpage(Vpn base_vpn, const Pte &pte) override
    {
        if (base_vpn & ((1 << l3Bits) - 1))
            fatal("superpage base not 256KB aligned");
        auto [i1, i2, i3] = split(base_vpn);
        (void)i3;
        level1[i1].terminals[i2] = pte;
        return true;
    }

    void
    unmap(Vpn vpn) override
    {
        auto [i1, i2, i3] = split(vpn);
        auto it1 = level1.find(i1);
        if (it1 == level1.end())
            return;
        it1->second.terminals.erase(i2);
        auto it2 = it1->second.children.find(i2);
        if (it2 == it1->second.children.end())
            return;
        if (it2->second.ptes.erase(i3))
            --mapped;
    }

    WalkResult
    walk(Vpn vpn) const override
    {
        WalkResult r;
        auto [i1, i2, i3] = split(vpn);
        r.memoryRefs = 1;
        r.levels = 1;
        auto it1 = level1.find(i1);
        if (it1 == level1.end())
            return r;
        // Terminal superpage at level 2?
        auto itT = it1->second.terminals.find(i2);
        ++r.memoryRefs;
        r.levels = 2;
        if (itT != it1->second.terminals.end()) {
            Pte pte = itT->second;
            pte.pfn += i3; // region is physically contiguous
            r.pte = pte;
            return r;
        }
        auto it2 = it1->second.children.find(i2);
        if (it2 == it1->second.children.end())
            return r;
        ++r.memoryRefs;
        r.levels = 3;
        auto it3 = it2->second.ptes.find(i3);
        if (it3 != it2->second.ptes.end())
            r.pte = it3->second;
        return r;
    }

    std::uint64_t mappedPages() const override { return mapped; }

    std::uint64_t
    tableOverheadBytes() const override
    {
        // 4-byte entries; 256-entry L1, 64-entry L2/L3 tables.
        std::uint64_t bytes = 256 * 4;
        for (const auto &kv1 : level1) {
            bytes += 64 * 4;
            bytes += kv1.second.children.size() * 64 * 4;
        }
        return bytes;
    }

    std::string structureName() const override { return "3-level"; }

  private:
    struct Level3
    {
        std::map<unsigned, Pte> ptes;
    };
    struct Level2
    {
        std::map<unsigned, Pte> terminals; ///< 256KB superpage PTEs
        std::map<unsigned, Level3> children;
    };

    static std::tuple<unsigned, unsigned, unsigned>
    split(Vpn vpn)
    {
        unsigned i3 = vpn & ((1 << l3Bits) - 1);
        unsigned i2 = (vpn >> l3Bits) & ((1 << l2Bits) - 1);
        unsigned i1 = vpn >> (l3Bits + l2Bits);
        return {i1, i2, i3};
    }

    std::map<unsigned, Level2> level1;
    std::uint64_t mapped = 0;
};

/**
 * Hashed table: what a MIPS OS is free to build for itself (§3.2:
 * "the operating system is free to choose whatever page table
 * structure it likes"). Chained buckets; walk cost counts probes.
 */
class HashedPageTable : public PageTable
{
  public:
    explicit HashedPageTable(std::uint64_t bucket_count)
        : buckets(bucket_count)
    {
        if (bucket_count == 0)
            fatal("hashed page table needs at least one bucket");
    }

    void
    map(Vpn vpn, const Pte &pte) override
    {
        auto &chain = buckets[hash(vpn)];
        for (auto &node : chain) {
            if (node.first == vpn) {
                node.second = pte;
                return;
            }
        }
        chain.emplace_back(vpn, pte);
        ++mapped;
    }

    void
    unmap(Vpn vpn) override
    {
        auto &chain = buckets[hash(vpn)];
        for (auto it = chain.begin(); it != chain.end(); ++it) {
            if (it->first == vpn) {
                chain.erase(it);
                --mapped;
                return;
            }
        }
    }

    WalkResult
    walk(Vpn vpn) const override
    {
        WalkResult r;
        r.levels = 1;
        const auto &chain = buckets[hash(vpn)];
        for (const auto &node : chain) {
            ++r.memoryRefs;
            if (node.first == vpn) {
                r.pte = node.second;
                return r;
            }
        }
        r.memoryRefs = std::max<std::uint32_t>(r.memoryRefs, 1);
        return r;
    }

    std::uint64_t mappedPages() const override { return mapped; }

    std::uint64_t
    tableOverheadBytes() const override
    {
        // 8 bytes per hash slot + 16 per chained PTE node.
        return buckets.size() * 8 + mapped * 16;
    }

    std::string structureName() const override { return "hashed"; }

  private:
    std::size_t
    hash(Vpn vpn) const
    {
        return (vpn * 0x9e3779b97f4a7c15ULL >> 33) % buckets.size();
    }

    std::vector<std::vector<std::pair<Vpn, Pte>>> buckets;
    std::uint64_t mapped = 0;
};

} // namespace

std::unique_ptr<PageTable>
makeLinearPageTable(Vpn max_vpn)
{
    return std::make_unique<LinearPageTable>(max_vpn);
}

std::unique_ptr<PageTable>
makeMultiLevelPageTable()
{
    return std::make_unique<MultiLevelPageTable>();
}

std::unique_ptr<PageTable>
makeHashedPageTable(std::uint64_t buckets)
{
    return std::make_unique<HashedPageTable>(buckets);
}

std::unique_ptr<PageTable>
makePageTableFor(const MachineDesc &machine)
{
    switch (machine.id) {
      case MachineId::CVAX:
        return makeLinearPageTable((1ULL << 20) - 1); // 4GB / 4KB
      case MachineId::SPARC:
        return makeMultiLevelPageTable();
      case MachineId::R2000:
      case MachineId::R3000:
      case MachineId::I860:
        return makeHashedPageTable(1024);
      case MachineId::RS6000:
        return makeHashedPageTable(4096); // inverted-table flavour
      case MachineId::M88000:
        return makeMultiLevelPageTable(); // 88200 segment/page tables
      case MachineId::SUN3:
        // Sun-3 segment/page maps: two fixed levels, modelled as the
        // multi-level structure.
        return makeMultiLevelPageTable();
    }
    panic("unhandled machine");
}

} // namespace aosd
