/**
 * @file
 * Functional first-level cache model.
 *
 * Used by the virtual-memory and IPC layers for the §3.2 effects:
 * virtually-addressed caches must be swept when a page's protection
 * changes (at most one TLB entry vs. a whole cache search), and — when
 * untagged — flushed on every context switch (cf. the i860's context
 * switch instruction count). Physically-addressed caches need neither.
 */

#ifndef AOSD_MEM_CACHE_HH
#define AOSD_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "arch/machine_desc.hh"
#include "mem/tlb.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** Byte address in some (virtual or physical) space. */
using Addr = std::uint64_t;

/** Direct-mapped cache with per-line valid/dirty/context state. */
class Cache
{
  public:
    explicit Cache(const CacheDesc &d);

    /** Access one address. Returns cycles charged (hit: 1). */
    Cycles access(Addr addr, Asid asid, bool write);

    /** Is the line holding addr (for asid) present? */
    bool present(Addr addr, Asid asid) const;

    /**
     * Invalidate every line falling on the page containing addr, as a
     * PTE change must on a virtually-addressed cache. Returns the cost:
     * the sweep visits every line of the page's footprint.
     */
    Cycles flushPage(Addr page_base, Asid asid);

    /**
     * Flush the whole cache (untagged virtual cache on context switch).
     * Returns the cost of visiting every line.
     */
    Cycles flushAll();

    /**
     * Model a context switch. Costs a full flush only for virtual
     * caches without context tags. `tagged` says whether lines carry
     * context IDs (Sun-4c does; i860 does not).
     */
    Cycles switchContext(bool tagged);

    std::uint64_t lineCount() const { return lines.size(); }
    const CacheDesc &config() const { return desc; }
    const StatGroup &stats() const { return statGroup; }
    void resetStats() { statGroup.reset(); }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        Asid asid = 0;
    };

    std::size_t index(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheDesc desc;
    std::vector<Line> lines;
    StatGroup statGroup{"cache"};
};

/**
 * Cost of copying `bytes` through the memory system of `machine`, in
 * cycles — the §2.4 data-copying analysis. Each word is a load plus a
 * store; the store side is limited by the write buffer drain rate, so
 * "the relative performance of memory copying drops almost
 * monotonically with faster processors" [Ousterhout 90b] emerges from
 * the fixed DRAM time shrinking more slowly than the cycle.
 */
Cycles copyCycles(const MachineDesc &machine, std::uint64_t bytes);

/** Copy throughput in MB/s for `machine` (derived from copyCycles). */
double copyBandwidthMBps(const MachineDesc &machine);

} // namespace aosd

#endif // AOSD_MEM_CACHE_HH
