#include "cpu/profiled_primitives.hh"

#include "arch/machines.hh"
#include "cpu/exec_model.hh"
#include "cpu/handlers.hh"
#include "sim/profile/profile.hh"

namespace aosd
{

Cycles
ProfiledPrimitiveRun::phaseCycles(PhaseKind kind) const
{
    auto it = phaseTotals.find(phaseSlug(kind));
    return it == phaseTotals.end() ? 0 : it->second;
}

ProfiledPrimitiveRun
profilePrimitive(const MachineDesc &machine, Primitive prim,
                 unsigned reps)
{
    ProfiledPrimitiveRun run;
    run.machine = machine.id;
    run.primitive = prim;
    run.repetitions = reps;

    // Warm the handler cache outside the profile window; runPrimitive
    // then attributes through the pre-decoded phase summaries or the
    // interpreter, identically (tests/test_predecode.cc).
    cachedHandler(machine, prim);
    ExecModel exec(machine);

    Profiler &prof = Profiler::instance();
    prof.enable();
    for (unsigned i = 0; i < reps; ++i)
        run.totalCycles += exec.runPrimitive(prim).cycles;
    prof.disable();

    run.attributedCycles = prof.attributedCycles();
    run.tree = prof.toJson();
    run.folded = prof.collapsedStacks(
        std::string(machineSlug(machine.id)) + ";" +
        primitiveSlug(prim));
    for (const auto &child : prof.root().children)
        run.phaseTotals[child->name] = child->totalCycles();
    prof.clear();
    return run;
}

} // namespace aosd
