#include "cpu/profiled_primitives.hh"

#include "arch/machines.hh"
#include "cpu/exec_model.hh"
#include "cpu/handlers.hh"
#include "sim/profile/profile.hh"

namespace aosd
{

Cycles
ProfiledPrimitiveRun::phaseCycles(PhaseKind kind) const
{
    auto it = phaseTotals.find(phaseSlug(kind));
    return it == phaseTotals.end() ? 0 : it->second;
}

ProfiledPrimitiveRun
profilePrimitive(const MachineDesc &machine, Primitive prim,
                 unsigned reps)
{
    ProfiledPrimitiveRun run;
    run.machine = machine.id;
    run.primitive = prim;
    run.repetitions = reps;

    const HandlerProgram &program = cachedHandler(machine, prim);
    ExecModel exec(machine);

    Profiler &prof = Profiler::instance();
    prof.enable();
    for (unsigned i = 0; i < reps; ++i)
        run.totalCycles += exec.run(program).cycles;
    prof.disable();

    run.attributedCycles = prof.attributedCycles();
    run.tree = prof.toJson();
    run.folded = prof.collapsedStacks(
        std::string(machineSlug(machine.id)) + ";" +
        primitiveSlug(prim));
    for (const auto &child : prof.root().children)
        run.phaseTotals[child->name] = child->totalCycles();
    prof.clear();
    return run;
}

} // namespace aosd
