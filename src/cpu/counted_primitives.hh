/**
 * @file
 * One-shot counted runs of the primitive handler programs.
 *
 * countPrimitive() executes a primitive's handler under an isolated
 * hardware-counter session and returns the event counts plus the
 * cycles-explained reconciliation against the cycles the execution
 * model charged. tools/aosd_counters builds counters.json from these
 * runs; the CI gate fails if any Table 1 machine x primitive explains
 * less than 95% of its cycles through counted events.
 */

#ifndef AOSD_CPU_COUNTED_PRIMITIVES_HH
#define AOSD_CPU_COUNTED_PRIMITIVES_HH

#include "arch/isa.hh"
#include "arch/machine_desc.hh"
#include "sim/counters/counters.hh"
#include "sim/counters/reconcile.hh"
#include "sim/json.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** Everything one counted machine x primitive run produces. */
struct CountedPrimitiveRun
{
    MachineId machine = MachineId::CVAX;
    Primitive primitive = Primitive::NullSyscall;
    unsigned repetitions = 0;

    /** Cycles the execution model charged across all repetitions. */
    Cycles totalCycles = 0;

    /** Events recorded during the window (delta over the run). */
    CounterSet counters;

    /** counts x penalties vs. totalCycles. */
    Reconciliation reconciliation;

    /** {"machine":..,"primitive":..,"repetitions":..,"cycles":..,
     *   "counters":{...},"reconciliation":{...}} */
    Json toJson() const;
};

/**
 * Run `prim`'s handler on `machine` `reps` times under a fresh counter
 * session and reconcile. The global counter file is reset on entry and
 * left disabled on exit: callers own the isolation.
 */
CountedPrimitiveRun countPrimitive(const MachineDesc &machine,
                                   Primitive prim, unsigned reps = 1);

} // namespace aosd

#endif // AOSD_CPU_COUNTED_PRIMITIVES_HH
