/**
 * @file
 * Pre-decoded superblock execution of handler programs.
 *
 * A handler program is static per (machine, primitive): the op list,
 * every per-op cost constant, and every counter bump except the write
 * buffer's are functions of the MachineDesc alone. The interpreter in
 * ExecModel::run() nevertheless re-walks the op list — switch, count
 * loop, counter bump — on every execution, and the workload engine
 * executes handlers hundreds of thousands of times per Table 7 cell.
 *
 * decodeProgram() walks the op list once, symbolically, and compiles
 * each phase into a superblock: precomputed base/microcode/ctrl-reg/
 * trap cycle totals, the instruction count, and the batched constant
 * counter bumps, plus a short list of *steps* for the only stateful
 * component left — the write buffer (a cached store always interacts
 * with it; a cached load does too when the machine's reads wait for
 * the buffer to drain). ExecModel::runDecoded() replays the steps
 * against the live buffer and adds the constants, producing an
 * ExecResult identical field-for-field — cycles, instructions, phase
 * breakdowns, counter deltas, profiler attribution — to the
 * interpreter's (tests/test_predecode.cc proves it per machine x
 * primitive; CI cmp-gates whole report documents byte-for-byte).
 *
 * The layer is switchable three ways, all output-preserving:
 *  - setPredecodeEnabled(false) / the tools' --no-predecode flag picks
 *    the interpreter reference path at run time;
 *  - AOSD_NO_PREDECODE=1 in the environment does the same for
 *    harnesses that cannot pass flags (google-benchmark);
 *  - -DAOSD_DISABLE_PREDECODE=ON compiles the dispatch out entirely
 *    (predecodeEnabled() becomes constant false).
 */

#ifndef AOSD_CPU_DECODED_PROGRAM_HH
#define AOSD_CPU_DECODED_PROGRAM_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "arch/isa.hh"
#include "arch/machine_desc.hh"
#include "cpu/exec_model.hh"
#include "sim/counters/counters.hh"

namespace aosd
{

/** Is the pre-decoded fast path selected? Defaults to on; off via
 *  setPredecodeEnabled(false), AOSD_NO_PREDECODE=1 in the environment,
 *  or constant-false under -DAOSD_DISABLE_PREDECODE=ON. */
bool predecodeEnabled();

/** Select/deselect the fast path process-wide (worker threads see the
 *  change; call it during option parsing, before simulating). No
 *  effect on a compiled-out (AOSD_DISABLE_PREDECODE) build. */
void setPredecodeEnabled(bool on);

/** Was the predecode dispatch compiled in? */
constexpr bool
predecodeCompiledIn()
{
#ifndef AOSD_PREDECODE_DISABLED
    return true;
#else
    return false;
#endif
}

/**
 * One stateful interaction with the write buffer. Everything between
 * two steps is constant and collapsed into `gapBefore`.
 */
struct DecodedStep
{
    /** Constant cycles elapsing since the previous step (or the phase
     *  start), including the previous step's own issue slot. */
    Cycles gapBefore = 0;
    /** A cached store entering the buffer; otherwise a cached load
     *  held until the buffer drains (readsWaitForDrain machines). */
    bool isStore = false;
    bool samePage = false;

    bool operator==(const DecodedStep &) const = default;
};

/** One phase compiled to constants + write-buffer steps. */
struct DecodedPhase
{
    PhaseKind kind = PhaseKind::Body;
    /** Every cause except writeBufferStall, which is stepped. */
    CycleBreakdown constBreakdown;
    std::uint64_t instructions = 0;
    /** Constant cycles after the last step (the whole phase when there
     *  are no steps). */
    Cycles tailCycles = 0;
    std::vector<DecodedStep> steps;
    /** Batched constant counter bumps, sparse, in declaration order.
     *  Excludes the write buffer's own counters (bumped by the steps)
     *  and the load drain-wait counters (bumped when a step waits). */
    std::vector<std::pair<HwCounter, std::uint64_t>> constCounters;
};

/** A handler program compiled for one MachineDesc. */
struct DecodedProgram
{
    Primitive primitive = Primitive::NullSyscall;
    std::vector<DecodedPhase> phases;
};

/** Compile `program` for `machine` (pure; no caching). */
DecodedProgram decodeProgram(const MachineDesc &machine,
                             const HandlerProgram &program);

/** Compile a bare stream (one Body-kind phase's worth). */
DecodedPhase decodeStream(const MachineDesc &machine,
                          const InstrStream &stream);

/**
 * Thread-local decoded-handler cache, keyed like cachedHandler() and
 * validated the same way: an ablation-modified desc under a cached
 * machine id recompiles and replaces the entry.
 */
const DecodedProgram &cachedDecodedHandler(const MachineDesc &machine,
                                           Primitive prim);

} // namespace aosd

#endif // AOSD_CPU_DECODED_PROGRAM_HH
