#include "cpu/primitive_costs.hh"

#include "arch/machines.hh"
#include "sim/logging.hh"
#include "sim/profile/profile.hh"

namespace aosd
{

PrimitiveCostDb::PrimitiveCostDb()
{
    // The cache may be built lazily while a profile is being taken;
    // these warm-up simulations are not the profiled workload's
    // cycles, so keep them out of the attribution tree.
    ProfPause pause;
    for (const MachineDesc &m : allMachines()) {
        machines.emplace(m.id, m);
        ExecModel exec(m);
        for (Primitive p : allPrimitives) {
            PrimitiveCost c;
            c.machine = m.id;
            c.primitive = p;
            // Decoded fast path when enabled, interpreter otherwise;
            // the cached detail is identical either way.
            c.detail = exec.runPrimitive(p);
            c.cycles = c.detail.cycles;
            c.instructions = c.detail.instructions;
            c.micros = m.clock.cyclesToMicros(c.cycles);
            costs.emplace(std::make_pair(m.id, p), std::move(c));
            exec.reset();
        }
    }
}

const PrimitiveCost &
PrimitiveCostDb::cost(MachineId m, Primitive p) const
{
    auto it = costs.find({m, p});
    if (it == costs.end())
        panic("no primitive cost cached");
    return it->second;
}

double
PrimitiveCostDb::micros(MachineId m, Primitive p) const
{
    return cost(m, p).micros;
}

Cycles
PrimitiveCostDb::cycles(MachineId m, Primitive p) const
{
    return cost(m, p).cycles;
}

std::uint64_t
PrimitiveCostDb::instructions(MachineId m, Primitive p) const
{
    return cost(m, p).instructions;
}

double
PrimitiveCostDb::relativeToCvax(MachineId m, Primitive p) const
{
    return micros(MachineId::CVAX, p) / micros(m, p);
}

const PrimitiveCostDb &
sharedCostDb()
{
    static PrimitiveCostDb db;
    return db;
}

const MachineDesc &
PrimitiveCostDb::machine(MachineId m) const
{
    auto it = machines.find(m);
    if (it == machines.end())
        panic("unknown machine");
    return it->second;
}

// ----------------------------------------------------------- paper data

double
PaperPrimitiveData::microseconds(MachineId m, Primitive p)
{
    // Table 1 of Anderson et al. 1991.
    switch (m) {
      case MachineId::CVAX:
        switch (p) {
          case Primitive::NullSyscall: return 15.8;
          case Primitive::Trap: return 23.1;
          case Primitive::PteChange: return 8.8;
          case Primitive::ContextSwitch: return 28.3;
        }
        break;
      case MachineId::M88000:
        switch (p) {
          case Primitive::NullSyscall: return 11.8;
          case Primitive::Trap: return 14.4;
          case Primitive::PteChange: return 3.9;
          case Primitive::ContextSwitch: return 22.8;
        }
        break;
      case MachineId::R2000:
        switch (p) {
          case Primitive::NullSyscall: return 9.0;
          case Primitive::Trap: return 15.4;
          case Primitive::PteChange: return 3.1;
          case Primitive::ContextSwitch: return 14.8;
        }
        break;
      case MachineId::R3000:
        switch (p) {
          case Primitive::NullSyscall: return 4.1;
          case Primitive::Trap: return 5.2;
          case Primitive::PteChange: return 2.0;
          case Primitive::ContextSwitch: return 7.4;
        }
        break;
      case MachineId::SPARC:
        switch (p) {
          case Primitive::NullSyscall: return 15.2;
          case Primitive::Trap: return 17.1;
          case Primitive::PteChange: return 2.7;
          case Primitive::ContextSwitch: return 53.9;
        }
        break;
      default:
        break;
    }
    return -1.0;
}

std::uint64_t
PaperPrimitiveData::instructionCount(MachineId m, Primitive p)
{
    // Table 2 of Anderson et al. 1991 (R2000 and R3000 share a column).
    switch (m) {
      case MachineId::CVAX:
        switch (p) {
          case Primitive::NullSyscall: return 12;
          case Primitive::Trap: return 14;
          case Primitive::PteChange: return 11;
          case Primitive::ContextSwitch: return 9;
        }
        break;
      case MachineId::M88000:
        switch (p) {
          case Primitive::NullSyscall: return 122;
          case Primitive::Trap: return 156;
          case Primitive::PteChange: return 24;
          case Primitive::ContextSwitch: return 98;
        }
        break;
      case MachineId::R2000:
      case MachineId::R3000:
        switch (p) {
          case Primitive::NullSyscall: return 84;
          case Primitive::Trap: return 103;
          case Primitive::PteChange: return 36;
          case Primitive::ContextSwitch: return 135;
        }
        break;
      case MachineId::SPARC:
        switch (p) {
          case Primitive::NullSyscall: return 128;
          case Primitive::Trap: return 145;
          case Primitive::PteChange: return 15;
          case Primitive::ContextSwitch: return 326;
        }
        break;
      case MachineId::I860:
        switch (p) {
          case Primitive::NullSyscall: return 86;
          case Primitive::Trap: return 155;
          case Primitive::PteChange: return 559;
          case Primitive::ContextSwitch: return 618;
        }
        break;
      default:
        break;
    }
    return 0;
}

double
PaperPrimitiveData::table5Micros(MachineId m, PhaseKind phase)
{
    // Table 5: time in the null system call.
    switch (m) {
      case MachineId::CVAX:
        switch (phase) {
          case PhaseKind::KernelEntryExit: return 4.5;
          case PhaseKind::CallPrep: return 3.1;
          case PhaseKind::CCallReturn: return 8.2;
          default: break;
        }
        break;
      case MachineId::R2000:
        switch (phase) {
          case PhaseKind::KernelEntryExit: return 0.6;
          case PhaseKind::CallPrep: return 6.3;
          case PhaseKind::CCallReturn: return 2.1;
          default: break;
        }
        break;
      case MachineId::SPARC:
        switch (phase) {
          case PhaseKind::KernelEntryExit: return 0.6;
          case PhaseKind::CallPrep: return 13.1;
          case PhaseKind::CCallReturn: return 1.4;
          default: break;
        }
        break;
      default:
        break;
    }
    return -1.0;
}

} // namespace aosd
