#include "cpu/exec_model.hh"

#include "cpu/decoded_program.hh"
#include "cpu/handlers.hh"
#include "sim/counters/counters.hh"
#include "sim/logging.hh"
#include "sim/profile/profile.hh"
#include "sim/spantrace/spantrace.hh"
#include "sim/trace.hh"

namespace aosd
{

void
profileBreakdown(const CycleBreakdown &bd)
{
    if (!profilerEnabled())
        return;
    Profiler &p = Profiler::instance();
    auto add = [&](const char *cause, Cycles c) {
        if (c)
            p.addLeafCycles(cause, c);
    };
    add("base", bd.base);
    add("write_buffer_stall", bd.writeBufferStall);
    add("cache_miss_stall", bd.cacheMissStall);
    add("uncached", bd.uncached);
    add("ctrl_reg", bd.ctrlReg);
    add("microcode", bd.microcode);
    add("tlb_ops", bd.tlbOps);
    add("cache_maintenance", bd.cacheMaintenance);
    add("trap_hardware", bd.trapHardware);
    add("fpu_sync", bd.fpuSync);
}

void
profileBreakdownRepeated(const CycleBreakdown &bd, std::uint64_t k)
{
    if (!profilerEnabled() || k == 0)
        return;
    Profiler &p = Profiler::instance();
    auto add = [&](const char *cause, Cycles c) {
        if (c)
            p.addLeafCyclesRepeated(cause, c, k);
    };
    add("base", bd.base);
    add("write_buffer_stall", bd.writeBufferStall);
    add("cache_miss_stall", bd.cacheMissStall);
    add("uncached", bd.uncached);
    add("ctrl_reg", bd.ctrlReg);
    add("microcode", bd.microcode);
    add("tlb_ops", bd.tlbOps);
    add("cache_maintenance", bd.cacheMaintenance);
    add("trap_hardware", bd.trapHardware);
    add("fpu_sync", bd.fpuSync);
}

CycleBreakdown &
CycleBreakdown::operator+=(const CycleBreakdown &o)
{
    base += o.base;
    writeBufferStall += o.writeBufferStall;
    cacheMissStall += o.cacheMissStall;
    uncached += o.uncached;
    ctrlReg += o.ctrlReg;
    microcode += o.microcode;
    tlbOps += o.tlbOps;
    cacheMaintenance += o.cacheMaintenance;
    trapHardware += o.trapHardware;
    fpuSync += o.fpuSync;
    return *this;
}

Cycles
ExecResult::phaseCycles(PhaseKind kind) const
{
    for (const auto &p : phases)
        if (p.kind == kind)
            return p.cycles;
    return 0;
}

ExecModel::ExecModel(const MachineDesc &machine)
    : desc(machine), writeBuffer(machine.writeBuffer)
{}

Cycles
ExecModel::chargeOp(const Op &op, Cycles now, CycleBreakdown &bd)
{
    switch (op.kind) {
      case OpKind::Alu:
      case OpKind::Nop:
        bd.base += 1;
        countEvent(HwCounter::IssueSlots);
        if (op.kind == OpKind::Nop)
            countEvent(HwCounter::Nops);
        return 1;

      case OpKind::Branch: {
        Cycles c = 1 + desc.timing.branchPenaltyCycles;
        bd.base += 1;
        bd.trapHardware += desc.timing.branchPenaltyCycles;
        countEvent(HwCounter::IssueSlots);
        countEvent(HwCounter::Branches);
        countEvent(HwCounter::InterlockCycles,
                   desc.timing.branchPenaltyCycles);
        return c;
      }

      case OpKind::Load: {
        if (op.uncached) {
            bd.uncached += desc.cache.uncachedCycles;
            countEvent(HwCounter::UncachedAccesses);
            return desc.cache.uncachedCycles;
        }
        Cycles c = 1;
        bd.base += 1;
        countEvent(HwCounter::IssueSlots);
        countEvent(HwCounter::Loads);
        if (desc.writeBuffer.readsWaitForDrain) {
            Cycles wait = writeBuffer.drainTime(now);
            c += wait;
            bd.writeBufferStall += wait;
            if (wait) {
                countEvent(HwCounter::WbReadWaits);
                countEvent(HwCounter::WbStallCycles, wait);
            }
        }
        if (op.coldMiss) {
            c += desc.cache.missPenaltyCycles;
            bd.cacheMissStall += desc.cache.missPenaltyCycles;
            countEvent(HwCounter::ColdMisses);
        }
        return c;
      }

      case OpKind::Store: {
        if (op.uncached) {
            bd.uncached += desc.cache.uncachedCycles;
            countEvent(HwCounter::UncachedAccesses);
            return desc.cache.uncachedCycles;
        }
        // The store itself issues in one cycle; it may stall waiting
        // for a write buffer slot.
        Cycles stall = writeBuffer.store(now + 1, op.samePage);
        bd.base += 1;
        bd.writeBufferStall += stall;
        countEvent(HwCounter::IssueSlots);
        countEvent(HwCounter::Stores);
        return 1 + stall;
      }

      case OpKind::TrapEnter:
        bd.trapHardware += desc.timing.trapEnterCycles;
        countEvent(HwCounter::TrapEnters);
        return desc.timing.trapEnterCycles;

      case OpKind::TrapReturn:
        bd.trapHardware += desc.timing.trapReturnCycles;
        countEvent(HwCounter::TrapReturns);
        return desc.timing.trapReturnCycles;

      case OpKind::CtrlRegRead:
      case OpKind::CtrlRegWrite:
        bd.ctrlReg += desc.timing.ctrlRegCycles;
        countEvent(HwCounter::CtrlRegAccesses);
        return desc.timing.ctrlRegCycles;

      case OpKind::TlbWrite:
        bd.tlbOps += desc.tlb.writeEntryCycles;
        countEvent(HwCounter::TlbWriteOps);
        return desc.tlb.writeEntryCycles;

      case OpKind::TlbProbe:
        bd.tlbOps += 3;
        countEvent(HwCounter::TlbProbeOps);
        return 3;

      case OpKind::TlbPurgeEntry:
        bd.tlbOps += desc.tlb.purgeEntryCycles;
        countEvent(HwCounter::TlbPurgeEntryOps);
        return desc.tlb.purgeEntryCycles;

      case OpKind::TlbPurgeAll:
        bd.tlbOps += desc.tlb.purgeAllCycles;
        countEvent(HwCounter::TlbPurgeAllOps);
        return desc.tlb.purgeAllCycles;

      case OpKind::CacheFlushLine:
        bd.cacheMaintenance += desc.cache.flushLineCycles;
        countEvent(HwCounter::CacheFlushLines);
        if (tracerEnabled())
            Tracer::instance().instant(TraceEvent::CacheFlush,
                                       "cache_flush_line", 1);
        return desc.cache.flushLineCycles;

      case OpKind::CacheFlushAll: {
        Cycles lines = desc.cache.sizeBytes / desc.cache.lineBytes;
        Cycles c = lines * desc.cache.flushLineCycles;
        bd.cacheMaintenance += c;
        countEvent(HwCounter::CacheFlushLines, lines);
        if (tracerEnabled())
            Tracer::instance().instant(TraceEvent::CacheFlush,
                                       "cache_flush_all", lines);
        return c;
      }

      case OpKind::Microcoded:
        bd.microcode += op.cycles;
        countEvent(HwCounter::MicrocodeOps);
        countEvent(HwCounter::MicrocodeCycles, op.cycles);
        return op.cycles;

      case OpKind::AtomicOp:
        // Interlocked ops bypass the cache and lock the bus.
        bd.uncached += desc.cache.uncachedCycles;
        countEvent(HwCounter::AtomicOps);
        return desc.cache.uncachedCycles;

      case OpKind::FpuSync:
        bd.fpuSync += op.cycles;
        countEvent(HwCounter::FpuSyncCycles, op.cycles);
        return op.cycles;

      case OpKind::WindowOverflowTrap:
        // Hardware-wise a trap entry; counted and traced as the
        // paper's SPARC cost driver it is.
        bd.trapHardware += desc.timing.trapEnterCycles;
        countEvent(HwCounter::WindowOverflows);
        countEvent(HwCounter::WindowsSpilled);
        if (tracerEnabled())
            Tracer::instance().instant(TraceEvent::WindowOverflow,
                                       "window_overflow");
        return desc.timing.trapEnterCycles;

      case OpKind::WindowUnderflowTrap:
        bd.trapHardware += desc.timing.trapEnterCycles;
        countEvent(HwCounter::WindowUnderflows);
        if (tracerEnabled())
            Tracer::instance().instant(TraceEvent::WindowUnderflow,
                                       "window_underflow");
        return desc.timing.trapEnterCycles;
    }
    panic("unknown op kind");
}

PhaseResult
ExecModel::runStream(const InstrStream &stream, Cycles start_cycle)
{
    PhaseResult result;
    Cycles now = start_cycle;
    for (const auto &op : stream.ops()) {
        for (std::uint32_t i = 0; i < op.count; ++i)
            now += chargeOp(op, now, result.breakdown);
        if (op.countsAsInstr) {
            result.instructions += op.count;
            countEvent(HwCounter::InstrRetired, op.count);
        }
    }
    result.cycles = now - start_cycle;
    profileBreakdown(result.breakdown);
    return result;
}

ExecResult
ExecModel::run(const HandlerProgram &program)
{
    writeBuffer.reset();
    ExecResult result;
    Cycles now = 0;
    for (const auto &phase : program.phases) {
        ProfScope prof(phaseSlug(phase.kind));
        PhaseResult pr = runStream(phase.code, now);
        pr.kind = phase.kind;
        now += pr.cycles;
        spanLeaf(phaseSlug(pr.kind), pr.cycles);
        if (tracerEnabled())
            Tracer::instance().completeHere(pr.cycles,
                                            TraceEvent::ExecPhase,
                                            phaseName(pr.kind),
                                            pr.instructions);
        result.instructions += pr.instructions;
        result.breakdown += pr.breakdown;
        result.phases.push_back(std::move(pr));
    }
    result.cycles = now;
    return result;
}

ExecResult
ExecModel::runDecoded(const DecodedProgram &dec)
{
    writeBuffer.reset();
    ExecResult result;
    Cycles now = 0;
    for (const DecodedPhase &dp : dec.phases) {
        ProfScope prof(phaseSlug(dp.kind));
        PhaseResult pr;
        pr.kind = dp.kind;
        pr.instructions = dp.instructions;
        pr.breakdown = dp.constBreakdown;
        Cycles start = now;
        for (const DecodedStep &st : dp.steps) {
            now += st.gapBefore;
            if (st.isStore) {
                Cycles stall = writeBuffer.store(now + 1, st.samePage);
                pr.breakdown.writeBufferStall += stall;
                now += stall;
            } else {
                Cycles wait = writeBuffer.drainTime(now);
                pr.breakdown.writeBufferStall += wait;
                if (wait) {
                    countEvent(HwCounter::WbReadWaits);
                    countEvent(HwCounter::WbStallCycles, wait);
                }
                now += wait;
            }
        }
        now += dp.tailCycles;
        pr.cycles = now - start;
        spanLeaf(phaseSlug(dp.kind), pr.cycles);
        if (countersEnabled())
            for (const auto &[c, n] : dp.constCounters)
                countEvent(c, n);
        profileBreakdown(pr.breakdown);
        result.instructions += pr.instructions;
        result.breakdown += pr.breakdown;
        result.phases.push_back(std::move(pr));
    }
    result.cycles = now;
    return result;
}

ExecResult
ExecModel::runPrimitive(Primitive prim)
{
    if (predecodeEnabled() && !tracerEnabled())
        return runDecoded(cachedDecodedHandler(desc, prim));
    return run(cachedHandler(desc, prim));
}

} // namespace aosd
