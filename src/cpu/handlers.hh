/**
 * @file
 * Per-architecture handler programs for the four primitive OS operations
 * of Tables 1, 2 and 5.
 *
 * Each builder reconstructs the authors' hand-optimized assembler driver
 * for one machine as an InstrStream of micro-ops. The dynamic instruction
 * counts match Table 2 exactly (asserted by tests); cycle behaviour then
 * emerges from the execution model's memory-system state. Free parameters
 * (register save counts, op mixes) were chosen from the paper's prose:
 * see the comments on each builder.
 */

#ifndef AOSD_CPU_HANDLERS_HH
#define AOSD_CPU_HANDLERS_HH

#include "arch/isa.hh"
#include "arch/machine_desc.hh"

namespace aosd
{

/** Build the handler program for `prim` on `machine`. */
HandlerProgram buildHandler(const MachineDesc &machine, Primitive prim);

/**
 * buildHandler, memoized per thread: the figure/counter/profile grids
 * run the same (machine, primitive) program thousands of times, and
 * the instruction stream depends only on the MachineDesc, so rebuild-
 * ing it every rep is pure waste. The cache is keyed by (machine.id,
 * prim) and validated against a stored copy of the full desc, so
 * ablation studies that pass a *modified* desc under a stock id get a
 * fresh build (and replace the cached entry), never a stale program.
 * The cache is thread_local — each simulation slice memoizes
 * independently, no locks on the hot path.
 */
const HandlerProgram &cachedHandler(const MachineDesc &machine,
                                    Primitive prim);

/**
 * SPARC register-window spill sequence: pointer arithmetic plus 16
 * stores plus WIM bookkeeping (used inside syscall prep and context
 * switch; also reused by the user-level threads analysis in §4.1).
 */
InstrStream sparcWindowSaveSeq(const MachineDesc &machine);

/** SPARC register-window fill sequence (loads are cache-cold: the
 *  window memory was last touched by write-no-allocate stores). */
InstrStream sparcWindowRestoreSeq(const MachineDesc &machine);

/**
 * Software TLB-refill handler for a software-managed TLB (s3.2/s5:
 * the MIPS utlbmiss fast vector vs the few-hundred-cycle common
 * kernel path). The stream is built from stateless ops (trap
 * bracket, control-register reads, the TLB entry write, ALU address
 * arithmetic, microcoded residue) so its cycle total is a constant
 * equal to the machine's swUserMissCycles / swKernelMissCycles —
 * the predecode-off kernel re-interprets it per miss, the fast path
 * charges the constant. Panics on a hardware-managed TLB.
 */
InstrStream tlbRefillSeq(const MachineDesc &machine, bool kernel_space);

} // namespace aosd

#endif // AOSD_CPU_HANDLERS_HH
