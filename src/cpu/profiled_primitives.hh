/**
 * @file
 * One-shot profiled runs of the primitive handler programs.
 *
 * profilePrimitive() executes a primitive's handler under an isolated
 * profiler session and returns the attribution tree plus the totals the
 * self-check compares: the cycles the execution model charged and the
 * cycles the profiler attributed must be equal, or the tree has a hole.
 * tools/aosd_profile builds profile.json from these runs, and the
 * Table 5 anatomy (Study::syscallAnatomy) reads its phase totals off
 * the same tree instead of re-deriving them by hand.
 */

#ifndef AOSD_CPU_PROFILED_PRIMITIVES_HH
#define AOSD_CPU_PROFILED_PRIMITIVES_HH

#include <map>
#include <string>

#include "arch/isa.hh"
#include "arch/machine_desc.hh"
#include "sim/json.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** Everything one profiled machine × primitive run produces. */
struct ProfiledPrimitiveRun
{
    MachineId machine = MachineId::CVAX;
    Primitive primitive = Primitive::NullSyscall;
    unsigned repetitions = 0;

    /** Cycles the execution model charged across all repetitions. */
    Cycles totalCycles = 0;

    /** Cycles the profiler attributed (must equal totalCycles). */
    Cycles attributedCycles = 0;

    /** Attribution tree (Profiler::toJson() of the session). */
    Json tree;

    /** Collapsed-stack lines, prefixed "machine;primitive;...". */
    std::string folded;

    /** Inclusive cycles per top-level tree node (phase slug ->
     *  totalCycles), read off the attribution tree. */
    std::map<std::string, Cycles> phaseTotals;

    /** Inclusive cycles of one phase across all repetitions (0 if the
     *  handler has no such phase). */
    Cycles phaseCycles(PhaseKind kind) const;

    /** The self-check: every charged cycle has a home in the tree. */
    bool complete() const { return totalCycles == attributedCycles; }
};

/**
 * Run `prim`'s handler on `machine` `reps` times under a fresh
 * profiler session and collect the attribution. The global profiler is
 * cleared on entry and left disabled (and cleared) on exit: callers
 * own the isolation, not the caller's in-progress profile.
 */
ProfiledPrimitiveRun profilePrimitive(const MachineDesc &machine,
                                      Primitive prim,
                                      unsigned reps = 1);

} // namespace aosd

#endif // AOSD_CPU_PROFILED_PRIMITIVES_HH
