#include "cpu/handlers.hh"

#include <map>
#include <utility>

#include "sim/logging.hh"

/*
 * Calibration notes
 * -----------------
 * Instruction budgets are Table 2 of the paper and are matched exactly:
 *
 *                      CVAX  88000  R2/3000  SPARC  i860
 *   Null system call     12    122       84    128    86
 *   Trap                 14    156      103    145   155
 *   PTE change           11     24       36     15   559
 *   Context switch        9     98      135    326   618
 *
 * Cycle targets are Table 1 times multiplied by each machine's clock.
 * The mechanisms that close the gap between instruction count and cycle
 * count are the ones the paper names:
 *   - CVAX: CHMK/REI/CALLS/RET/SVPCTX/LDPCTX microcode.
 *   - R2000 (DS3100): 4-deep write buffer stalling 5 cycles per
 *     successive write when full (~30% of interrupt overhead), unfilled
 *     delay slots (~13% of the null syscall), reads waiting on drains.
 *   - R3000 (DS5000): 6-deep buffer retiring same-page writes 1/cycle.
 *   - SPARC (SS1+): register-window save/restore traffic (~30% of the
 *     null syscall; 12.8 us per window on context switch, ~70% of the
 *     switch), extra parameter copies around the interposed trap frame,
 *     shallow write pipeline, write-no-allocate cache making restores
 *     miss.
 *   - 88000: ~27 exposed pipeline/scoreboard registers read and
 *     restored around every exception; FPU freeze/drain on faults;
 *     CMMU (off-chip) access for MMU state.
 *   - i860: single common vector, no faulting address (handler decodes
 *     the faulting instruction: +26 instructions), pipeline
 *     save/restore (60+ instructions), and virtual cache sweeps: 536
 *     of the 559 PTE-change instructions flush the cache.
 */

namespace aosd
{

namespace
{

// ---------------------------------------------------------------- CVAX

HandlerProgram
cvaxSyscall()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    // CHMK microcode in, REI microcode out: 4.5 us of Table 5.
    InstrStream entry;
    entry.trapEnter(true);  // CHMK
    entry.trapReturn();     // REI

    // Dispatch from the SCB vector to the syscall code: a handful of
    // VAX instructions, each several microcycles.
    InstrStream prep;
    prep.microcoded(8, 2).microcoded(10).microcoded(6);

    // CALLS/RET do the C linkage in (expensive) microcode: 8.2 us.
    InstrStream ccall;
    ccall.microcoded(45); // CALLS
    ccall.microcoded(40); // RET
    ccall.microcoded(2, 4);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
cvaxTrap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);       // memory-management fault microcode
    body.microcoded(18, 2);      // read fault address / status IPRs
    body.microcoded(8, 3);       // save volatile registers
    body.microcoded(45);         // CALLS to the C handler
    body.microcoded(40);         // RET
    body.microcoded(8, 3);       // restore volatile registers
    body.microcoded(15, 2);      // MTPRs re-arming translation state
    body.microcoded(6);          // MOVL bookkeeping
    body.trapReturn();           // REI
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
cvaxPteChange()
{
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.microcoded(6, 3);  // compute PTE address in the linear table
    body.microcoded(6);     // fetch PTE
    body.microcoded(4, 2);  // update protection bits
    body.microcoded(6);     // store PTE
    body.tlbPurgeEntry();   // TBIS
    body.microcoded(10, 2); // MTPR / consistency checks
    body.microcoded(12);    // RSB
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
cvaxContextSwitch()
{
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.microcoded(100);  // SVPCTX: save process context
    body.microcoded(8);    // fetch new PCB address
    body.microcoded(12);   // MTPR PCBB
    body.microcoded(150);  // LDPCTX: load context + purge process TB half
    body.microcoded(6, 4); // queue/bookkeeping MOVLs
    body.trapReturn();     // REI into the new context
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

// ------------------------------------------------------- MIPS R2/3000

HandlerProgram
mipsSyscall()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    // Exception entry is cheap hardware; rfe/jr pair leaves.
    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(1).nop(1);
    entry.trapReturn(); // jr k0; rfe (counted as one return op)

    // Common-vector decode, k-reg setup, register save, then (after the
    // C call) restore and exit path. ~50% of delay slots unfilled.
    InstrStream prep;
    prep.ctrlRead(3);       // mfc0 cause/epc/status
    prep.branch(4);         // vector through the common handler
    prep.alu(9);
    prep.load(1);           // per-process kernel data
    prep.store(16);         // save caller-saved + k registers
    prep.nop(10);           // unfilled delay slots
    prep.ctrlWrite(2);      // mtc0 status twiddling
    prep.load(16);          // restore registers (waits on buffer drain
                            // on the DS3100 memory interface)
    prep.alu(0);

    InstrStream ccall;
    ccall.branch(1).nop(1); // jal + slot
    ccall.store(3);         // prologue: ra/fp spill
    ccall.alu(4);
    ccall.alu(2);           // null body
    ccall.load(3);          // epilogue
    ccall.branch(1).nop(1); // jr ra + slot
    ccall.alu(4);           // caller-side cleanup

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
mipsTrap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.ctrlRead(5);   // cause, epc, badvaddr, status, context
    body.branch(8);     // cause decode ladder
    body.alu(14);
    body.store(22);            // save every non-preserved register
    body.store(8, false);      // user-state frame: different DRAM page
    body.nop(12);              // unfilled delay slots
    body.load(22);             // restore (drain-gated on the DS3100)
    body.load(7);
    body.load(1, true);        // fault bookkeeping structure, cold
    body.ctrlWrite(3);
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
mipsPteChange()
{
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.alu(8);          // hash/index the OS page table
    body.load(1);         // fetch PTE
    body.alu(4);          // update protection bits
    body.store(1);
    body.tlbProbe(1);     // tlbp
    body.tlbPurgeEntry(1); // tlbwi of an invalid entry
    body.ctrlWrite(4);    // entryhi/entrylo/index
    body.branch(4);
    body.nop(6);
    body.alu(5);
    body.branch(1);       // jr ra
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
mipsContextSwitch()
{
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.ctrlRead(3);
    body.alu(30);          // pcb bookkeeping, fp-owner check, priority
    body.store(24);        // save s-regs, sp, ra, status, epc
    body.ctrlWrite(2);     // switch ASID in EntryHi (tagged TLB: no purge)
    body.alu(22);
    body.load(20);         // restore context
    body.load(4, true);    // new thread's stack/pcb lines are cold
    body.branch(8);
    body.nop(10);
    body.ctrlWrite(1);
    body.alu(10);
    body.branch(1);        // jr into the new thread
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

// -------------------------------------------------------------- SPARC

InstrStream
sparcSaveSeqImpl()
{
    InstrStream s;
    s.alu(3);      // window pointer arithmetic
    s.store(16);   // spill one window
    s.alu(3);      // WIM update
    return s;
}

InstrStream
sparcRestoreSeqImpl()
{
    InstrStream s;
    s.alu(3);
    s.load(16, true); // write-no-allocate cache: fills miss
    s.alu(3);
    return s;
}

HandlerProgram
sparcSyscall()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    InstrStream entry;
    entry.trapEnter(false); // hardware window rotate + PSR save
    entry.alu(2).branch(1);
    entry.trapReturn();     // jmpl + rett

    // Window management dominates call preparation (~30% of the call,
    // s2.3), and parameters must be copied an extra time around the
    // interposed trap-handler frame.
    InstrStream prep;
    prep.ctrlRead(2);            // rd %psr, rd %wim
    prep.alu(6);
    prep.branch(3);
    prep.append(sparcSaveSeqImpl()); // ensure a frame for the callee
    prep.load(6).store(6);       // extra parameter copy
    prep.store(4);               // machine state save
    prep.nop(6);
    prep.alu(35);                // window pointer/state manipulation
    prep.load(8, true);          // restore state (write-no-allocate)
    prep.ctrlWrite(2);           // wr %psr / %wim
    prep.alu(8);
    prep.branch(2);

    InstrStream ccall;
    ccall.branch(2).nop(2);
    ccall.alu(6);  // save/restore + linkage
    ccall.store(2);
    ccall.load(2);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
sparcTrap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.alu(4);
    body.ctrlRead(3);
    body.loadUncached(2);   // MMU synchronous fault status/address
    body.branch(4);
    body.append(sparcSaveSeqImpl());
    body.store(8);          // trap frame
    body.alu(30);
    body.load(8, true);     // fault bookkeeping, cold
    body.load(10);
    body.ctrlWrite(3);
    body.nop(8);
    body.branch(4);
    body.store(6);
    body.load(6);
    body.alu(26);
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
sparcPteChange()
{
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.alu(6);
    body.load(1);          // PTE from the 3-level table
    body.store(1);
    body.tlbPurgeEntry(1); // flush the TLB entry
    body.ctrlWrite(2);
    body.branch(2);
    body.nop(2);
    body.hwDelay(42);      // hardware page-granular cache flush assist
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
sparcContextSwitch(const MachineDesc &m)
{
    // Three windows spilled and three filled per switch on average
    // [Kleiman & Williams 88]; each spill/fill pair costs ~12.8 us
    // (70% of the total switch time).
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    int pairs = static_cast<int>(
        m.regWindows.avgSaveRestorePerSwitch + 0.5);
    for (int i = 0; i < pairs; ++i) {
        body.windowOverflowTrap();
        body.append(sparcSaveSeqImpl());
    }
    body.ctrlRead(4);
    body.store(12);  // globals + state
    body.alu(60);
    body.ctrlWrite(4); // context register: tagged TLB, no purge
    body.alu(60);
    body.load(12);
    body.branch(12);
    body.nop(30);
    for (int i = 0; i < pairs; ++i) {
        body.windowUnderflowTrap();
        body.append(sparcRestoreSeqImpl());
    }
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

// -------------------------------------------------------------- 88000

HandlerProgram
m88kSyscall()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(2).nop(1);
    entry.trapReturn();

    // Even a voluntary trap saves/restores a large subset of the
    // exposed pipeline registers before C code may run.
    InstrStream prep;
    prep.ctrlRead(18); // ldcr of pipeline/scoreboard state
    prep.store(18);    // spill it
    prep.alu(16);
    prep.branch(6);
    prep.load(18);
    prep.ctrlWrite(18); // stcr restore
    prep.nop(8);

    InstrStream ccall;
    ccall.branch(2).nop(2);
    ccall.store(6);
    ccall.alu(2);
    ccall.load(4);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
m88kTrap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.fpuSync(10);     // restart the frozen FP unit, wait for drain
    // Full exposed-pipeline state: each control register is read and
    // immediately spilled (read/store pairs give the drain a head
    // start, unlike a straight 27-store burst).
    for (int i = 0; i < 27; ++i) {
        body.ctrlRead(1);
        body.store(1);
    }
    body.loadUncached(2); // fault address/status from the CMMU
    body.alu(17);
    body.branch(8);
    body.load(27);
    body.ctrlWrite(27);
    body.nop(12);
    body.alu(8);
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
m88kPteChange()
{
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.alu(9);
    body.load(1);
    body.store(1);
    body.storeUncached(4); // CMMU probe/flush commands
    body.loadUncached(2);  // CMMU status readback
    body.branch(4);
    body.nop(3);
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
m88kContextSwitch()
{
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.ctrlRead(8);
    body.store(32);        // full general register file
    body.alu(9);
    body.ctrlWrite(8);
    body.load(12);
    body.load(20, true);   // new context cold in the 16KB cache
    body.storeUncached(2); // CMMU area pointer switch
    body.tlbPurgeAll();    // untagged ATC
    body.branch(4);
    body.nop(2);
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

// --------------------------------------------------------------- i860

HandlerProgram
i860Syscall()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(2).nop(1);
    entry.trapReturn();

    InstrStream prep;
    prep.ctrlRead(4);
    prep.branch(6);   // single common vector: software decode
    prep.alu(12);
    prep.store(14);
    prep.load(14);
    prep.ctrlWrite(4);
    prep.nop(12);

    InstrStream ccall;
    ccall.branch(2).nop(2);
    ccall.store(4);
    ccall.alu(4);
    ccall.load(4);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
i860Trap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.fpuSync(16);   // save/restart the FP pipelines
    body.store(30);     // pipeline state out (60+ instructions total
    body.load(30);      //   with the reload, s3.1)
    body.load(2);       // fetch the faulting instruction: the i860
    body.alu(21);       //   reports no fault address, so the handler
    body.branch(3);     //   interprets the instruction (+26 instrs)
    body.ctrlRead(6);
    body.ctrlWrite(6);
    body.store(12);
    body.load(12);
    body.alu(20);
    body.nop(12);
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
i860PteChange()
{
    // 536 of the 559 instructions sweep the virtually-addressed cache
    // (s3.2): a 134-iteration flush loop of 4 instructions each.
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.alu(10);
    body.load(1);
    body.store(1);
    body.tlbPurgeEntry(1);
    body.ctrlWrite(4);
    body.branch(3);
    body.nop(3);
    for (int i = 0; i < 134; ++i) {
        body.cacheFlushLine(1);
        body.alu(1);
        body.branch(1);
        body.nop(1);
    }
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
i860ContextSwitch()
{
    // No process tags anywhere: the whole virtually-addressed cache is
    // swept on every switch (cf. the high i860 count in Table 2).
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.ctrlRead(16);
    body.ctrlWrite(16);
    body.store(32);
    body.load(32);
    body.alu(10);
    body.branch(8);
    body.nop(7);
    body.tlbPurgeAll(); // dirbase reload
    for (int i = 0; i < 124; ++i) {
        body.cacheFlushLine(1);
        body.alu(1);
        body.branch(1);
        body.nop(1);
    }
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

// ------------------------------------------------------------- RS6000
//
// The paper gives only thread-state sizes for the RS/6000 (Table 6).
// These handlers are our extrapolation for the extension experiments:
// direct vectoring, precise interrupts, no exposed pipeline, hardware
// TLB with tags -- i.e. the "architectures can do better" case.

HandlerProgram
rs6kSyscall()
{
    HandlerProgram p{Primitive::NullSyscall, {}};
    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(2);
    entry.trapReturn();
    InstrStream prep;
    prep.ctrlRead(3);
    prep.store(12);
    prep.alu(10);
    prep.load(12);
    prep.ctrlWrite(2);
    prep.branch(4);
    InstrStream ccall;
    ccall.branch(2);
    ccall.store(3);
    ccall.alu(4);
    ccall.load(3);
    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
rs6kTrap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.ctrlRead(4);
    body.store(18);
    body.alu(20);
    body.branch(6);
    body.load(18);
    body.ctrlWrite(3);
    body.alu(8);
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
rs6kPteChange()
{
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.alu(8);       // hash into the inverted page table
    body.load(2);
    body.store(1);
    body.tlbPurgeEntry(1); // tlbie
    body.ctrlWrite(1);
    body.branch(3);
    body.alu(4);
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
rs6kContextSwitch()
{
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.ctrlRead(4);
    body.store(32);
    body.alu(20);
    body.ctrlWrite(4); // segment registers: tagged, no purge
    body.load(26);
    body.load(6, true);
    body.branch(8);
    body.alu(10);
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

// --------------------------------------------------------------- Sun-3
//
// MC68020 SunOS handlers (not in the paper's tables; the s2.1 Sprite
// baseline). Microcoded exception frames, MOVEM register save/restore,
// MMU maps written through control space.

HandlerProgram
sun3Syscall()
{
    // SunOS getpid-class syscall on a Sun-3/75 is ~50 us: heavyweight
    // exception frames and u-area bookkeeping at 16.67 MHz.
    HandlerProgram p{Primitive::NullSyscall, {}};
    InstrStream entry;
    entry.trapEnter(true); // TRAP #n, format-0 frame microcode
    entry.trapReturn();    // RTE
    InstrStream prep;
    prep.microcoded(30, 16); // dispatch, u-area and sigmask juggling
    InstrStream ccall;
    ccall.microcoded(20);     // JSR
    ccall.microcoded(18);     // RTS
    ccall.microcoded(6, 16);  // MOVEM save/restore of scratch
    ccall.microcoded(10, 12); // stack adjust, status rebuild
    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

HandlerProgram
sun3Trap()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.hwDelay(200);       // 68020 bus-error frame (dozens of words)
    body.microcoded(15, 20); // frame parse, fault address extraction
    body.microcoded(20);     // JSR to the C handler
    body.microcoded(18);     // RTS
    body.microcoded(15, 20); // frame rebuild for the retry
    body.microcoded(10, 30); // u-area/signal bookkeeping
    body.trapReturn();       // RTE
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
sun3PteChange()
{
    HandlerProgram p{Primitive::PteChange, {}};
    InstrStream body;
    body.microcoded(12, 16); // locate the segment/page map slot
    body.storeUncached(4);   // MMU map writes through control space
    body.tlbPurgeEntry(1);
    body.microcoded(12, 12);
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

HandlerProgram
sun3ContextSwitch()
{
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.microcoded(6, 16);  // MOVEM save
    body.microcoded(15, 40); // pcb/u-area bookkeeping out
    body.storeUncached(1);   // context register (tagged maps: no purge)
    body.microcoded(15, 40); // pcb/u-area bookkeeping in
    body.microcoded(6, 16);  // MOVEM restore
    body.microcoded(12, 30); // stack/usp/status juggling
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

} // namespace

InstrStream
sparcWindowSaveSeq(const MachineDesc &machine)
{
    if (machine.regWindows.windows == 0)
        panic("%s has no register windows", machine.name.c_str());
    return sparcSaveSeqImpl();
}

InstrStream
sparcWindowRestoreSeq(const MachineDesc &machine)
{
    if (machine.regWindows.windows == 0)
        panic("%s has no register windows", machine.name.c_str());
    return sparcRestoreSeqImpl();
}

InstrStream
tlbRefillSeq(const MachineDesc &machine, bool kernel_space)
{
    if (machine.tlb.management != TlbManagement::Software)
        panic("%s has a hardware-managed TLB",
              machine.name.c_str());
    const Cycles target = kernel_space
                              ? machine.tlb.swKernelMissCycles
                              : machine.tlb.swUserMissCycles;
    const Cycles bracket = machine.timing.trapEnterCycles +
                           machine.timing.trapReturnCycles;
    const Cycles tlbw = machine.tlb.writeEntryCycles;
    const Cycles ctrl = machine.timing.ctrlRegCycles;

    InstrStream s;
    if (target < bracket + tlbw) {
        // Too small to decompose (a near-hardware mini-vector):
        // model the whole refill as one sequenced operation.
        if (target > 0)
            s.microcoded(static_cast<std::uint32_t>(target));
        return s;
    }

    // Trap in; read the fault state (BadVAddr/Context-style
    // registers); compute the PTE address; for the long common
    // vector, the page-table walk and bookkeeping beyond the
    // stylized ALU run is sequenced as one microcoded residue;
    // write the entry; trap out. Cycle total == `target` exactly.
    Cycles budget = target - bracket - tlbw;
    std::uint32_t ctrl_reads =
        ctrl > 0 ? std::min<std::uint32_t>(
                       2, static_cast<std::uint32_t>(budget / ctrl))
                 : 0;
    budget -= ctrl_reads * ctrl;
    std::uint32_t alu_ops = std::min<Cycles>(
        budget, kernel_space ? 64 : 8);
    budget -= alu_ops;

    s.trapEnter(/*counts_as_instr=*/false);
    if (ctrl_reads)
        s.ctrlRead(ctrl_reads);
    if (alu_ops)
        s.alu(alu_ops);
    if (budget > 0)
        s.microcoded(static_cast<std::uint32_t>(budget));
    s.tlbWrite();
    s.trapReturn();
    return s;
}

HandlerProgram
buildHandler(const MachineDesc &machine, Primitive prim)
{
    switch (machine.id) {
      case MachineId::CVAX:
        switch (prim) {
          case Primitive::NullSyscall: return cvaxSyscall();
          case Primitive::Trap: return cvaxTrap();
          case Primitive::PteChange: return cvaxPteChange();
          case Primitive::ContextSwitch: return cvaxContextSwitch();
        }
        break;
      case MachineId::R2000:
      case MachineId::R3000:
        switch (prim) {
          case Primitive::NullSyscall: return mipsSyscall();
          case Primitive::Trap: return mipsTrap();
          case Primitive::PteChange: return mipsPteChange();
          case Primitive::ContextSwitch: return mipsContextSwitch();
        }
        break;
      case MachineId::SPARC:
        switch (prim) {
          case Primitive::NullSyscall: return sparcSyscall();
          case Primitive::Trap: return sparcTrap();
          case Primitive::PteChange: return sparcPteChange();
          case Primitive::ContextSwitch: return sparcContextSwitch(machine);
        }
        break;
      case MachineId::M88000:
        switch (prim) {
          case Primitive::NullSyscall: return m88kSyscall();
          case Primitive::Trap: return m88kTrap();
          case Primitive::PteChange: return m88kPteChange();
          case Primitive::ContextSwitch: return m88kContextSwitch();
        }
        break;
      case MachineId::I860:
        switch (prim) {
          case Primitive::NullSyscall: return i860Syscall();
          case Primitive::Trap: return i860Trap();
          case Primitive::PteChange: return i860PteChange();
          case Primitive::ContextSwitch: return i860ContextSwitch();
        }
        break;
      case MachineId::RS6000:
        switch (prim) {
          case Primitive::NullSyscall: return rs6kSyscall();
          case Primitive::Trap: return rs6kTrap();
          case Primitive::PteChange: return rs6kPteChange();
          case Primitive::ContextSwitch: return rs6kContextSwitch();
        }
        break;
      case MachineId::SUN3:
        switch (prim) {
          case Primitive::NullSyscall: return sun3Syscall();
          case Primitive::Trap: return sun3Trap();
          case Primitive::PteChange: return sun3PteChange();
          case Primitive::ContextSwitch: return sun3ContextSwitch();
        }
        break;
    }
    panic("no handler for machine/primitive");
}

const HandlerProgram &
cachedHandler(const MachineDesc &machine, Primitive prim)
{
    struct CacheEntry
    {
        MachineDesc desc;
        HandlerProgram program;
    };
    // Node-based map: entries are address-stable, so returned
    // references survive later insertions.
    thread_local std::map<std::pair<int, int>, CacheEntry> cache;

    std::pair<int, int> key{static_cast<int>(machine.id),
                            static_cast<int>(prim)};
    auto it = cache.find(key);
    if (it == cache.end() || !(it->second.desc == machine)) {
        // Miss, or an ablation-modified desc under a cached id:
        // (re)build and replace the entry.
        it = cache
                 .insert_or_assign(
                     key,
                     CacheEntry{machine, buildHandler(machine, prim)})
                 .first;
    }
    return it->second.program;
}

} // namespace aosd
