#include "cpu/decoded_program.hh"

#include <array>
#include <atomic>
#include <cstdlib>
#include <map>

#include "cpu/handlers.hh"
#include "sim/logging.hh"

namespace aosd
{

namespace
{

bool
initialPredecode()
{
    // AOSD_NO_PREDECODE=1 selects the interpreter reference path for
    // harnesses that cannot pass a flag (google-benchmark's main);
    // unset, empty, or "0" keep the fast path.
    const char *env = std::getenv("AOSD_NO_PREDECODE");
    if (!env || !env[0])
        return true;
    return env[0] == '0' && env[1] == '\0';
}

std::atomic<bool> predecodeOn{initialPredecode()};

} // namespace

bool
predecodeEnabled()
{
#ifndef AOSD_PREDECODE_DISABLED
    return predecodeOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void
setPredecodeEnabled(bool on)
{
    predecodeOn.store(on, std::memory_order_relaxed);
}

DecodedPhase
decodeStream(const MachineDesc &desc, const InstrStream &stream)
{
    DecodedPhase dp;
    std::array<std::uint64_t, numHwCounters> counts{};
    auto bump = [&](HwCounter c, std::uint64_t n = 1) {
        counts[static_cast<std::size_t>(c)] += n;
    };
    // Constant cycles accumulated since the last write-buffer step;
    // becomes the next step's gapBefore, or the phase tail.
    Cycles gap = 0;
    auto step = [&](bool is_store, bool same_page) {
        dp.steps.push_back({gap, is_store, same_page});
        gap = 0;
    };

    for (const Op &op : stream.ops()) {
        if (op.countsAsInstr) {
            dp.instructions += op.count;
            bump(HwCounter::InstrRetired, op.count);
        }
        CycleBreakdown &bd = dp.constBreakdown;
        const std::uint64_t n = op.count;
        switch (op.kind) {
          case OpKind::Alu:
          case OpKind::Nop:
            bd.base += n;
            bump(HwCounter::IssueSlots, n);
            if (op.kind == OpKind::Nop)
                bump(HwCounter::Nops, n);
            gap += n;
            break;

          case OpKind::Branch: {
            Cycles bp = desc.timing.branchPenaltyCycles;
            bd.base += n;
            bd.trapHardware += n * bp;
            bump(HwCounter::IssueSlots, n);
            bump(HwCounter::Branches, n);
            bump(HwCounter::InterlockCycles, n * bp);
            gap += n * (1 + bp);
            break;
          }

          case OpKind::Load: {
            if (op.uncached) {
                bd.uncached += n * desc.cache.uncachedCycles;
                bump(HwCounter::UncachedAccesses, n);
                gap += n * desc.cache.uncachedCycles;
                break;
            }
            Cycles miss =
                op.coldMiss ? desc.cache.missPenaltyCycles : 0;
            bd.base += n;
            bump(HwCounter::IssueSlots, n);
            bump(HwCounter::Loads, n);
            if (op.coldMiss) {
                bd.cacheMissStall += n * miss;
                bump(HwCounter::ColdMisses, n);
            }
            if (desc.writeBuffer.readsWaitForDrain) {
                // The drain wait depends on buffer state: one step per
                // repetition, sampled at the load's start cycle. The
                // load's own issue slot and miss penalty follow it.
                for (std::uint64_t i = 0; i < n; ++i) {
                    step(/*is_store=*/false, false);
                    gap = 1 + miss;
                }
            } else {
                gap += n * (1 + miss);
            }
            break;
          }

          case OpKind::Store: {
            if (op.uncached) {
                bd.uncached += n * desc.cache.uncachedCycles;
                bump(HwCounter::UncachedAccesses, n);
                gap += n * desc.cache.uncachedCycles;
                break;
            }
            bd.base += n;
            bump(HwCounter::IssueSlots, n);
            bump(HwCounter::Stores, n);
            for (std::uint64_t i = 0; i < n; ++i) {
                // The buffer is offered the store at its completion
                // cycle (start + 1); the issue slot lands in the next
                // gap, matching the interpreter's now bookkeeping.
                step(/*is_store=*/true, op.samePage);
                gap = 1;
            }
            break;
          }

          case OpKind::TrapEnter:
            bd.trapHardware += n * desc.timing.trapEnterCycles;
            bump(HwCounter::TrapEnters, n);
            gap += n * desc.timing.trapEnterCycles;
            break;

          case OpKind::TrapReturn:
            bd.trapHardware += n * desc.timing.trapReturnCycles;
            bump(HwCounter::TrapReturns, n);
            gap += n * desc.timing.trapReturnCycles;
            break;

          case OpKind::CtrlRegRead:
          case OpKind::CtrlRegWrite:
            bd.ctrlReg += n * desc.timing.ctrlRegCycles;
            bump(HwCounter::CtrlRegAccesses, n);
            gap += n * desc.timing.ctrlRegCycles;
            break;

          case OpKind::TlbWrite:
            bd.tlbOps += n * desc.tlb.writeEntryCycles;
            bump(HwCounter::TlbWriteOps, n);
            gap += n * desc.tlb.writeEntryCycles;
            break;

          case OpKind::TlbProbe:
            bd.tlbOps += n * 3;
            bump(HwCounter::TlbProbeOps, n);
            gap += n * 3;
            break;

          case OpKind::TlbPurgeEntry:
            bd.tlbOps += n * desc.tlb.purgeEntryCycles;
            bump(HwCounter::TlbPurgeEntryOps, n);
            gap += n * desc.tlb.purgeEntryCycles;
            break;

          case OpKind::TlbPurgeAll:
            bd.tlbOps += n * desc.tlb.purgeAllCycles;
            bump(HwCounter::TlbPurgeAllOps, n);
            gap += n * desc.tlb.purgeAllCycles;
            break;

          case OpKind::CacheFlushLine:
            bd.cacheMaintenance += n * desc.cache.flushLineCycles;
            bump(HwCounter::CacheFlushLines, n);
            gap += n * desc.cache.flushLineCycles;
            break;

          case OpKind::CacheFlushAll: {
            Cycles lines = desc.cache.sizeBytes / desc.cache.lineBytes;
            Cycles c = lines * desc.cache.flushLineCycles;
            bd.cacheMaintenance += n * c;
            bump(HwCounter::CacheFlushLines, n * lines);
            gap += n * c;
            break;
          }

          case OpKind::Microcoded:
            bd.microcode += n * op.cycles;
            bump(HwCounter::MicrocodeOps, n);
            bump(HwCounter::MicrocodeCycles, n * op.cycles);
            gap += n * op.cycles;
            break;

          case OpKind::AtomicOp:
            bd.uncached += n * desc.cache.uncachedCycles;
            bump(HwCounter::AtomicOps, n);
            gap += n * desc.cache.uncachedCycles;
            break;

          case OpKind::FpuSync:
            bd.fpuSync += n * op.cycles;
            bump(HwCounter::FpuSyncCycles, n * op.cycles);
            gap += n * op.cycles;
            break;

          case OpKind::WindowOverflowTrap:
            bd.trapHardware += n * desc.timing.trapEnterCycles;
            bump(HwCounter::WindowOverflows, n);
            bump(HwCounter::WindowsSpilled, n);
            gap += n * desc.timing.trapEnterCycles;
            break;

          case OpKind::WindowUnderflowTrap:
            bd.trapHardware += n * desc.timing.trapEnterCycles;
            bump(HwCounter::WindowUnderflows, n);
            gap += n * desc.timing.trapEnterCycles;
            break;
        }
    }
    dp.tailCycles = gap;
    for (std::size_t i = 0; i < numHwCounters; ++i)
        if (counts[i])
            dp.constCounters.emplace_back(static_cast<HwCounter>(i),
                                          counts[i]);
    return dp;
}

DecodedProgram
decodeProgram(const MachineDesc &machine, const HandlerProgram &program)
{
    DecodedProgram dec;
    dec.primitive = program.primitive;
    dec.phases.reserve(program.phases.size());
    for (const Phase &phase : program.phases) {
        DecodedPhase dp = decodeStream(machine, phase.code);
        dp.kind = phase.kind;
        dec.phases.push_back(std::move(dp));
    }
    return dec;
}

const DecodedProgram &
cachedDecodedHandler(const MachineDesc &machine, Primitive prim)
{
    struct CacheEntry
    {
        MachineDesc desc;
        DecodedProgram program;
    };
    // Node-based map: entries are address-stable, so returned
    // references survive later insertions.
    thread_local std::map<std::pair<int, int>, CacheEntry> cache;

    std::pair<int, int> key{static_cast<int>(machine.id),
                            static_cast<int>(prim)};
    auto it = cache.find(key);
    if (it == cache.end() || !(it->second.desc == machine)) {
        // Miss, or an ablation-modified desc under a cached id:
        // (re)compile and replace the entry.
        it = cache
                 .insert_or_assign(
                     key,
                     CacheEntry{machine,
                                decodeProgram(
                                    machine,
                                    cachedHandler(machine, prim))})
                 .first;
    }
    return it->second.program;
}

} // namespace aosd
