#include "cpu/handler_variants.hh"

#include <map>
#include <tuple>

#include "cpu/decoded_program.hh"
#include "cpu/handlers.hh"
#include "sim/logging.hh"

namespace aosd
{

namespace
{

/** 88000 syscall without the pipeline-state save/restore: a voluntary
 *  trap has no outstanding faults to find (s2.5). */
HandlerProgram
m88kSyscallLazy()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(2).nop(1);
    entry.trapReturn();

    // Only the PSR and shadow registers are touched; the 18
    // pipeline-state read/spill pairs disappear.
    InstrStream prep;
    prep.ctrlRead(3);
    prep.store(6);
    prep.alu(16);
    prep.branch(6);
    prep.load(6);
    prep.ctrlWrite(3);
    prep.nop(8);

    InstrStream ccall;
    ccall.branch(2).nop(2);
    ccall.store(6);
    ccall.alu(2);
    ccall.load(4);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

/** SPARC syscall where hardware takes a window fault ahead of the
 *  call when (and only when) a frame is missing: the handler neither
 *  emulates the check nor copies parameters around an interposed
 *  frame (s2.5). The residual window cost is the amortized real
 *  fault: one spill roughly every third call. */
HandlerProgram
sparcSyscallPreflight(const MachineDesc &m)
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(2).branch(1);
    entry.trapReturn();

    InstrStream prep;
    prep.ctrlRead(2);
    prep.alu(6);
    prep.branch(3);
    // Amortized hardware window fault (~1 in 3 calls spills):
    // charge a third of the spill sequence as pure latency.
    InstrStream spill = sparcWindowSaveSeq(m);
    prep.hwDelay(40); // ~(spill cost)/3
    (void)spill;
    prep.store(4);  // machine state save only
    prep.nop(6);
    prep.alu(20);   // window pointer bookkeeping, much reduced
    prep.load(4, true);
    prep.ctrlWrite(2);
    prep.alu(8);
    prep.branch(2);

    InstrStream ccall;
    ccall.branch(2).nop(2);
    ccall.alu(6);
    ccall.store(2);
    ccall.load(2);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

/** R2000 syscall through a dedicated vector: no cause-decode ladder,
 *  fewer control-register reads (the utlbmiss treatment, s2.3). */
HandlerProgram
mipsSyscallVectored()
{
    HandlerProgram p{Primitive::NullSyscall, {}};

    InstrStream entry;
    entry.trapEnter(false);
    entry.alu(1).nop(1);
    entry.trapReturn();

    InstrStream prep;
    prep.ctrlRead(1); // epc only; the vector implies the cause
    prep.branch(1);
    prep.alu(9);
    prep.load(1);
    prep.store(16);
    prep.nop(6);
    prep.ctrlWrite(2);
    prep.load(16);

    InstrStream ccall;
    ccall.branch(1).nop(1);
    ccall.store(3);
    ccall.alu(4);
    ccall.alu(2);
    ccall.load(3);
    ccall.branch(1).nop(1);
    ccall.alu(2);

    p.phases = {{PhaseKind::KernelEntryExit, entry},
                {PhaseKind::CallPrep, prep},
                {PhaseKind::CCallReturn, ccall}};
    return p;
}

/** i860 trap when hardware reports the faulting address: the
 *  26-instruction instruction-interpretation sequence disappears
 *  (s3.1), replaced by one control-register read. */
HandlerProgram
i860TrapWithFaultReg()
{
    HandlerProgram p{Primitive::Trap, {}};
    InstrStream body;
    body.trapEnter(false);
    body.fpuSync(16);
    body.store(30);
    body.load(30);
    body.ctrlRead(1); // the fault-address register
    body.ctrlRead(6);
    body.ctrlWrite(6);
    body.store(12);
    body.load(12);
    body.alu(20);
    body.nop(12);
    body.trapReturn();
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

/** i860 context switch with a context-tagged virtual cache: no flush
 *  loop (s3.2). */
HandlerProgram
i860ContextSwitchTagged()
{
    HandlerProgram p{Primitive::ContextSwitch, {}};
    InstrStream body;
    body.ctrlRead(16);
    body.ctrlWrite(17); // +1: write the context register
    body.store(32);
    body.load(32);
    body.alu(10);
    body.branch(8);
    body.nop(7);
    // Tagged TLB assumed alongside: no dirbase purge either.
    p.phases = {{PhaseKind::Body, body}};
    return p;
}

} // namespace

bool
archFixApplies(ArchFix fix, MachineId machine, Primitive prim)
{
    switch (fix) {
      case ArchFix::LazyPipelineCheck:
        return machine == MachineId::M88000 &&
               prim == Primitive::NullSyscall;
      case ArchFix::PreflightWindowFault:
        return machine == MachineId::SPARC &&
               prim == Primitive::NullSyscall;
      case ArchFix::VectoredSyscalls:
        return (machine == MachineId::R2000 ||
                machine == MachineId::R3000) &&
               prim == Primitive::NullSyscall;
      case ArchFix::FaultAddressRegister:
        return machine == MachineId::I860 && prim == Primitive::Trap;
      case ArchFix::CacheContextTags:
        return machine == MachineId::I860 &&
               prim == Primitive::ContextSwitch;
    }
    return false;
}

HandlerProgram
buildImprovedHandler(const MachineDesc &machine, Primitive prim,
                     ArchFix fix)
{
    if (!archFixApplies(fix, machine.id, prim))
        return cachedHandler(machine, prim);
    switch (fix) {
      case ArchFix::LazyPipelineCheck:
        return m88kSyscallLazy();
      case ArchFix::PreflightWindowFault:
        return sparcSyscallPreflight(machine);
      case ArchFix::VectoredSyscalls:
        return mipsSyscallVectored();
      case ArchFix::FaultAddressRegister:
        return i860TrapWithFaultReg();
      case ArchFix::CacheContextTags:
        return i860ContextSwitchTagged();
    }
    panic("unhandled fix");
}

const DecodedProgram &
cachedDecodedVariant(const MachineDesc &machine, Primitive prim,
                     ArchFix fix)
{
    struct CacheEntry
    {
        MachineDesc desc;
        DecodedProgram program;
    };
    // Node-based map: entries are address-stable, so returned
    // references survive later insertions.
    thread_local std::map<std::tuple<int, int, int>, CacheEntry> cache;

    std::tuple<int, int, int> key{static_cast<int>(machine.id),
                                  static_cast<int>(prim),
                                  static_cast<int>(fix)};
    auto it = cache.find(key);
    if (it == cache.end() || !(it->second.desc == machine)) {
        it = cache
                 .insert_or_assign(
                     key,
                     CacheEntry{machine,
                                decodeProgram(machine,
                                              buildImprovedHandler(
                                                  machine, prim, fix))})
                 .first;
    }
    return it->second.program;
}

} // namespace aosd
