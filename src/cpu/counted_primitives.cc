#include "cpu/counted_primitives.hh"

#include "arch/machines.hh"
#include "cpu/exec_model.hh"
#include "cpu/handlers.hh"

namespace aosd
{

Json
CountedPrimitiveRun::toJson() const
{
    Json j = Json::object();
    j.set("machine", Json(machineSlug(machine)));
    j.set("primitive", Json(primitiveSlug(primitive)));
    j.set("repetitions",
          Json(static_cast<std::uint64_t>(repetitions)));
    j.set("cycles", Json(totalCycles));
    j.set("counters", counters.toJson());
    j.set("reconciliation", reconciliation.toJson());
    return j;
}

CountedPrimitiveRun
countPrimitive(const MachineDesc &machine, Primitive prim,
               unsigned reps)
{
    CountedPrimitiveRun run;
    run.machine = machine.id;
    run.primitive = prim;
    run.repetitions = reps;

    // Warm the handler (and, on the fast path, decoded) caches before
    // opening the counter window; runPrimitive dispatches to the
    // pre-decoded superblock or the interpreter, with identical
    // counter bumps either way (tests/test_predecode.cc).
    cachedHandler(machine, prim);
    ExecModel exec(machine);

    HwCounters &ctrs = HwCounters::instance();
    bool was_on = ctrs.enabled();
    ctrs.enable(); // resets
    CounterSet start = ctrs.snapshot();
    for (unsigned i = 0; i < reps; ++i)
        run.totalCycles += exec.runPrimitive(prim).cycles;
    run.counters = ctrs.snapshot().delta(start);
    ctrs.disable();
    ctrs.reset();
    if (was_on)
        ctrs.resume();

    run.reconciliation =
        reconcileCycles(machine, run.counters, run.totalCycles);
    return run;
}

} // namespace aosd
