/**
 * @file
 * PrimitiveCostDb: the Table 1/2/5 engine.
 *
 * Runs every machine's handler programs through the execution model and
 * caches the results. The OS substrate (kernel, IPC, threads, workload
 * runner) charges primitive costs from here, so every higher-level
 * number in the reproduction traces back to the simulated handlers.
 */

#ifndef AOSD_CPU_PRIMITIVE_COSTS_HH
#define AOSD_CPU_PRIMITIVE_COSTS_HH

#include <map>
#include <vector>

#include "arch/isa.hh"
#include "arch/machine_desc.hh"
#include "cpu/exec_model.hh"

namespace aosd
{

/** Cost of one primitive on one machine. */
struct PrimitiveCost
{
    MachineId machine;
    Primitive primitive;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    double micros = 0.0;
    ExecResult detail;
};

/**
 * Caches simulated costs of the four primitives on every machine.
 * Construction simulates everything eagerly (it is cheap).
 */
class PrimitiveCostDb
{
  public:
    PrimitiveCostDb();

    /** Full result for one machine/primitive pair. */
    const PrimitiveCost &cost(MachineId m, Primitive p) const;

    /** Simulated time in microseconds. */
    double micros(MachineId m, Primitive p) const;

    /** Simulated time in cycles on that machine. */
    Cycles cycles(MachineId m, Primitive p) const;

    /** Dynamic instruction count (Table 2). */
    std::uint64_t instructions(MachineId m, Primitive p) const;

    /** Relative speed vs the CVAX (Table 1 right half):
     *  cvax_time / machine_time. */
    double relativeToCvax(MachineId m, Primitive p) const;

    /** Machine description used for the simulation. */
    const MachineDesc &machine(MachineId m) const;

  private:
    std::map<MachineId, MachineDesc> machines;
    std::map<std::pair<MachineId, Primitive>, PrimitiveCost> costs;
};

/** Shared, lazily-constructed cost database (simulation is
 *  deterministic, so sharing one instance is safe). */
const PrimitiveCostDb &sharedCostDb();

/** Paper values (Tables 1 and 2) for comparison in tests and benches. */
struct PaperPrimitiveData
{
    /** Time in microseconds from Table 1; <0 when the paper gives none. */
    static double microseconds(MachineId m, Primitive p);
    /** Instruction count from Table 2; 0 when the paper gives none. */
    static std::uint64_t instructionCount(MachineId m, Primitive p);
    /** Table 5 phase times (us) for the null syscall; <0 if absent. */
    static double table5Micros(MachineId m, PhaseKind phase);
};

} // namespace aosd

#endif // AOSD_CPU_PRIMITIVE_COSTS_HH
