/**
 * @file
 * Cycle-level execution of handler programs.
 *
 * ExecModel charges each micro-op its base cost plus the stateful
 * memory-system effects the paper analyses: write-buffer stalls, cache
 * misses, uncached accesses, control-register latency, microcode, TLB
 * and cache-maintenance operations. The cycle totals, divided by the
 * machine clock, regenerate the microsecond columns of Tables 1 and 5;
 * the instruction totals regenerate Table 2.
 */

#ifndef AOSD_CPU_EXEC_MODEL_HH
#define AOSD_CPU_EXEC_MODEL_HH

#include <cstdint>
#include <vector>

#include "arch/isa.hh"
#include "arch/machine_desc.hh"
#include "mem/write_buffer.hh"

namespace aosd
{

struct DecodedProgram;

/** Where the cycles of a stream went (for the paper's share analyses). */
struct CycleBreakdown
{
    Cycles base = 0;          ///< 1-cycle issue slots (incl. nops)
    Cycles writeBufferStall = 0;
    Cycles cacheMissStall = 0;
    Cycles uncached = 0;
    Cycles ctrlReg = 0;
    Cycles microcode = 0;     ///< CISC microcode + hwDelay latency
    Cycles tlbOps = 0;
    Cycles cacheMaintenance = 0;
    Cycles trapHardware = 0;  ///< trap entry/return hardware cycles
    Cycles fpuSync = 0;

    Cycles
    total() const
    {
        return base + writeBufferStall + cacheMissStall + uncached +
               ctrlReg + microcode + tlbOps + cacheMaintenance +
               trapHardware + fpuSync;
    }

    CycleBreakdown &operator+=(const CycleBreakdown &o);
};

/**
 * Attribute a breakdown's cycles to cause-named leaf children of the
 * profiler's current scope ("base", "write_buffer_stall",
 * "cache_miss_stall", ...). No-op when profiling is disabled. The
 * execution model calls this once per stream; the kernel reuses it to
 * attribute cached primitive costs phase by phase.
 */
void profileBreakdown(const CycleBreakdown &bd);

/**
 * Batched profileBreakdown: attribute `k` repetitions of a breakdown
 * in one closed-form update per cause — byte-identical to calling
 * profileBreakdown(bd) k times (same leaf creation order, entry
 * counts and histogram contents). The kernel's batch charger uses
 * this to replay a cached phase's attribution for a whole run of
 * homogeneous events.
 */
void profileBreakdownRepeated(const CycleBreakdown &bd,
                              std::uint64_t k);

/** Result of executing one phase. */
struct PhaseResult
{
    PhaseKind kind = PhaseKind::Body;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    CycleBreakdown breakdown;
};

/** Result of executing a whole handler program. */
struct ExecResult
{
    std::vector<PhaseResult> phases;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    CycleBreakdown breakdown;

    /** Time at a given clock, in microseconds. */
    double
    micros(const Clock &clock) const
    {
        return clock.cyclesToMicros(cycles);
    }

    /** Cycles attributed to a named phase (0 if absent). */
    Cycles phaseCycles(PhaseKind kind) const;
};

/**
 * Executes instruction streams for one machine. Stateful: the write
 * buffer persists across ops within a run() call and is reset between
 * calls (the paper's measurements are steady-state repeated calls with
 * a quiescent buffer at entry).
 */
class ExecModel
{
  public:
    explicit ExecModel(const MachineDesc &machine);

    /** Execute a complete handler program. */
    ExecResult run(const HandlerProgram &program);

    /**
     * Execute a pre-decoded program (cpu/decoded_program.hh): add the
     * precomputed constants, replay only the write-buffer steps.
     * Produces an ExecResult identical to run() on the source program
     * — cycles, instructions, breakdowns, counter bumps, profiler
     * attribution. The caller guarantees the tracer is off (the
     * decoded path has no per-op sites to trace; use run() then).
     */
    ExecResult runDecoded(const DecodedProgram &dec);

    /**
     * Execute this machine's handler for `prim` through the cached
     * decoded fast path when predecodeEnabled() and the tracer is off,
     * falling back to interpreting the cached handler program
     * otherwise. The two paths return identical results.
     */
    ExecResult runPrimitive(Primitive prim);

    /** Execute a bare stream (used by share analyses and the IPC layer).
     *  Continues from `start_cycle` against the current buffer state. */
    PhaseResult runStream(const InstrStream &stream,
                          Cycles start_cycle = 0);

    /** Reset memory-system state between measurements. */
    void reset() { writeBuffer.reset(); }

    const MachineDesc &machine() const { return desc; }

  private:
    /** Charge one repetition of an op at `now`; returns cycles consumed
     *  and attributes them in `bd`. */
    Cycles chargeOp(const Op &op, Cycles now, CycleBreakdown &bd);

    MachineDesc desc;
    WriteBuffer writeBuffer;
};

} // namespace aosd

#endif // AOSD_CPU_EXEC_MODEL_HH
