/**
 * @file
 * The paper's suggested architecture improvements (§2.5, §3.3, §3.2),
 * implemented as handler-program variants:
 *
 *  - LazyPipelineCheck: a system call is a *voluntary* exception; the
 *    88000 could defer pipeline-fault examination instead of reading
 *    ~18 pipeline registers on every call.
 *  - PreflightWindowFault: the SPARC could take a real window-overflow
 *    fault before the call when needed, instead of the handler
 *    emulating the check and spilling inline (and copying parameters
 *    an extra time around the interposed frame).
 *  - VectoredSyscalls: the R2000 vectors user TLB misses separately
 *    but funnels system calls through the common handler; a dedicated
 *    vector removes the cause-decode ladder (§2.3's DeMoney critique).
 *  - FaultAddressRegister: the i860 could latch the faulting address
 *    it already has, saving the 26-instruction instruction
 *    interpretation in every trap (§3.1).
 *  - CacheContextTags: context tags on the i860's virtual cache remove
 *    the full-cache flush from its context switch (§3.2: "Process IDs
 *    can eliminate the need for this").
 *
 * Each builder returns the modified program for machines it applies
 * to; buildImprovedHandler falls back to the stock handler otherwise.
 */

#ifndef AOSD_CPU_HANDLER_VARIANTS_HH
#define AOSD_CPU_HANDLER_VARIANTS_HH

#include <string>
#include <vector>

#include "arch/isa.hh"
#include "arch/machine_desc.hh"

namespace aosd
{

/** The architecture fixes §2.5/§3 propose. */
enum class ArchFix
{
    LazyPipelineCheck,
    PreflightWindowFault,
    VectoredSyscalls,
    FaultAddressRegister,
    CacheContextTags,
};

constexpr const char *
archFixName(ArchFix f)
{
    switch (f) {
      case ArchFix::LazyPipelineCheck:
        return "88000: defer pipeline check on voluntary traps";
      case ArchFix::PreflightWindowFault:
        return "SPARC: window fault before call, no inline emulation";
      case ArchFix::VectoredSyscalls:
        return "R2000: dedicated syscall vector (like utlbmiss)";
      case ArchFix::FaultAddressRegister:
        return "i860: report the faulting address";
      case ArchFix::CacheContextTags:
        return "i860: context tags on the virtual cache";
    }
    return "?";
}

/** Does this fix change anything on this machine/primitive? */
bool archFixApplies(ArchFix fix, MachineId machine, Primitive prim);

/**
 * Handler with the fix applied (identical to buildHandler() when the
 * fix does not apply to the machine/primitive).
 */
HandlerProgram buildImprovedHandler(const MachineDesc &machine,
                                    Primitive prim, ArchFix fix);

struct DecodedProgram;

/**
 * buildImprovedHandler, pre-decoded and memoized per thread like
 * cachedDecodedHandler(): keyed by (machine.id, primitive, fix) and
 * validated against a stored copy of the desc, so an ablation-modified
 * desc under a stock id recompiles. The ablation sweeps execute each
 * variant thousands of times; with predecode on they replay the
 * superblock instead of re-interpreting the op list.
 */
const DecodedProgram &cachedDecodedVariant(const MachineDesc &machine,
                                           Primitive prim, ArchFix fix);

/** All fixes, for sweeps. */
inline const ArchFix allArchFixes[] = {
    ArchFix::LazyPipelineCheck,   ArchFix::PreflightWindowFault,
    ArchFix::VectoredSyscalls,    ArchFix::FaultAddressRegister,
    ArchFix::CacheContextTags,
};

} // namespace aosd

#endif // AOSD_CPU_HANDLER_VARIANTS_HH
