#include "sim/parallel/thread_pool.hh"

#include "sim/logging.hh"

namespace aosd
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        fatal("thread pool needs at least one worker");
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lk(mtx);
            // Join only a batch that is still live (job != nullptr):
            // a worker that slept through an entire batch must not
            // wake into its dismantled state.
            wake.wait(lk, [&] {
                return stopping || (job && batchSeq != seen);
            });
            if (stopping)
                return;
            seen = batchSeq;
            fn = job;
            count = jobCount;
            ++busy;
        }
        runIndices(*fn, count);
        {
            std::lock_guard<std::mutex> lk(mtx);
            if (--busy == 0)
                done.notify_all();
        }
    }
}

void
ThreadPool::runIndices(const std::function<void(std::size_t)> &fn,
                       std::size_t count)
{
    for (;;) {
        std::size_t i =
            nextIndex.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return;
        try {
            fn(i);
        } catch (...) {
            // Slot `i` is this worker's alone; no lock needed.
            errors[i] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(mtx);
            if (--remaining == 0)
                done.notify_all();
        }
    }
}

void
ThreadPool::forEachIndex(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    std::unique_lock<std::mutex> lk(mtx);
    if (job)
        fatal("thread pool batches cannot nest");
    job = &fn;
    jobCount = n;
    remaining = n;
    errors.assign(n, nullptr);
    nextIndex.store(0, std::memory_order_relaxed);
    ++batchSeq;
    wake.notify_all();
    // Wait for every index to finish AND every joined worker to leave
    // runIndices — a straggler looping once more to discover the
    // indices are gone must not overlap the next batch's setup.
    done.wait(lk, [&] { return remaining == 0 && busy == 0; });
    job = nullptr;

    std::vector<std::exception_ptr> errs = std::move(errors);
    errors.clear();
    lk.unlock();

    // First failure by task index — exactly what the serial loop
    // would have surfaced.
    for (std::exception_ptr &e : errs)
        if (e)
            std::rethrow_exception(e);
}

} // namespace aosd
