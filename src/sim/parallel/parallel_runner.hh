/**
 * @file
 * ParallelRunner — deterministic fan-out for the simulation grids.
 *
 * The report run is an embarrassingly parallel grid of independent
 * simulations: (machine × primitive) counter sessions, (table ×
 * ablation) cells, (app × OS structure) Table 7 replays. Each cell
 * builds its own models, enables its own instrumentation session, and
 * returns a value — nothing couples two cells except the singletons,
 * and those are now thread-local (one SimSlice per worker). The
 * runner fans a vector of such cells across a fixed-size ThreadPool
 * and hands back the results **in task-index order**: workers decide
 * when a task runs, never where its result goes, so the output is
 * bit-for-bit identical to the serial loop no matter how the OS
 * schedules the workers.
 *
 * Determinism contract (what makes --jobs 8 byte-identical to
 * --jobs 1):
 *   - each task writes only its own index-addressed result slot;
 *   - results and captured stats shards are merged by ascending task
 *     index, never completion order;
 *   - tasks open their own instrumentation sessions (enable() resets)
 *     and seed their own Rngs, so a cell's value cannot depend on
 *     which worker ran it or what ran before it;
 *   - jobs == 1 runs every task inline on the calling thread with no
 *     pool, no wrapping and no merge — today's exact code path.
 *
 * Exception semantics match the serial loop as well: the failure with
 * the lowest task index is rethrown on the submitting thread.
 */

#ifndef AOSD_SIM_PARALLEL_PARALLEL_RUNNER_HH
#define AOSD_SIM_PARALLEL_PARALLEL_RUNNER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/parallel/sim_slice.hh"
#include "sim/parallel/thread_pool.hh"

namespace aosd
{

/** Fans index-addressed simulation tasks across a worker pool. */
class ParallelRunner
{
  public:
    /** `jobs` == 0 picks defaultJobs(). `jobs` == 1 is the serial
     *  escape hatch: tasks run inline on the calling thread. */
    explicit ParallelRunner(unsigned jobs = 0);

    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobCount; }

    /**
     * With stat collection on, each worker task runs bracketed by
     * SimSlice::beginStatCapture()/captureStats() and the captured
     * shards are folded into the calling thread's StatRegistry (as
     * retired aggregates) in task-index order after the batch. Off by
     * default; serial (jobs == 1) execution never wraps, so the
     * calling thread's registry accumulates naturally as today.
     */
    void setCollectStats(bool collect) { collectStats = collect; }

    /** Run every task, return results by task index. */
    template <typename R>
    std::vector<R>
    map(const std::vector<std::function<R()>> &tasks)
    {
        std::vector<R> results(tasks.size());
        runIndexed(tasks.size(), [&](std::size_t i) {
            results[i] = tasks[i]();
        });
        return results;
    }

    /** Run every task (no results to collect). */
    void
    run(const std::vector<std::function<void()>> &tasks)
    {
        runIndexed(tasks.size(),
                   [&](std::size_t i) { tasks[i](); });
    }

  private:
    /** Dispatch fn(0..n-1) serially (jobs == 1) or across the pool,
     *  handling the stat capture/merge bracketing. */
    void runIndexed(std::size_t n,
                    const std::function<void(std::size_t)> &fn);

    ThreadPool &pool();

    unsigned jobCount;
    bool collectStats = false;
    std::unique_ptr<ThreadPool> workers; ///< lazy; never for jobs==1
};

} // namespace aosd

#endif // AOSD_SIM_PARALLEL_PARALLEL_RUNNER_HH
