/**
 * @file
 * SimSlice — one thread's shard of the mutable simulation state.
 *
 * Every piece of cross-cutting instrumentation state in the simulator
 * is thread-local: the trace ring (sim/trace.hh), the cycle-
 * attribution tree (sim/profile/profile.hh), the hardware counter file
 * (sim/counters/counters.hh) and the stat registry (sim/stats.hh) all
 * hand out the *calling thread's* instance, guarded by the
 * trcdetail::on / profdetail::on / ctrdetail::on thread-local
 * fast-path flags. SimSlice names that shard: it is the façade a
 * worker thread uses to reset its arenas before a task and to capture
 * what the task accumulated, in a value form the coordinating thread
 * can merge deterministically (task-index order, never completion
 * order — see parallel_runner.hh).
 *
 * A SimSlice is never constructed; current() is a view of the calling
 * thread's thread_local state.
 */

#ifndef AOSD_SIM_PARALLEL_SIM_SLICE_HH
#define AOSD_SIM_PARALLEL_SIM_SLICE_HH

#include "sim/counters/counters.hh"
#include "sim/profile/profile.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace aosd
{

/** The calling thread's shard of tracer/profiler/counters/stats. */
class SimSlice
{
  public:
    /** View of the calling thread's slice. */
    static SimSlice &current();

    Tracer &tracer() { return Tracer::instance(); }
    Profiler &profiler() { return Profiler::instance(); }
    HwCounters &counters() { return HwCounters::instance(); }
    StatRegistry &stats() { return StatRegistry::instance(); }

    /** Arm the slice for a stats-collecting task: retain retired
     *  groups and zero everything already accumulated, so the capture
     *  after the task holds exactly that task's events. */
    void beginStatCapture();

    /** Flatten everything the slice's registry accumulated and zero
     *  it for the next task. Returns a value type the coordinating
     *  thread can absorb in task-index order. */
    FlatStats captureStats();

    /** Disable and clear every instrumentation arena on this thread —
     *  the worker-thread equivalent of a fresh process. */
    void resetInstrumentation();

  private:
    SimSlice() = default;
};

} // namespace aosd

#endif // AOSD_SIM_PARALLEL_SIM_SLICE_HH
