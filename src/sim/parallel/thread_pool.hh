/**
 * @file
 * Fixed-size worker pool for the parallel simulation runner.
 *
 * The pool owns N persistent worker threads and runs one batch of
 * index-addressed jobs at a time: forEachIndex(n, fn) calls fn(0..n-1)
 * across the workers and blocks until every index has finished.
 * Indices are claimed with a single atomic fetch_add — dynamic
 * scheduling, so an expensive cell (a Table 7 replay) does not leave
 * the other workers idle behind a static partition.
 *
 * Determinism is the caller's job and is easy under this contract:
 * workers only decide *when* an index runs, never *where its result
 * goes* — each job writes to its own index-addressed slot and the
 * caller merges slots in index order (see parallel_runner.hh).
 *
 * A job that throws has its exception captured per index; after the
 * batch, the exception of the lowest-indexed failing job is rethrown
 * on the submitting thread (the same first-failure the serial loop
 * would have produced).
 */

#ifndef AOSD_SIM_PARALLEL_THREAD_POOL_HH
#define AOSD_SIM_PARALLEL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aosd
{

/** N persistent workers executing one index batch at a time. */
class ThreadPool
{
  public:
    /** Spin up `threads` workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Joins the workers; must not be called mid-batch. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Run fn(0), fn(1), ..., fn(n-1) across the workers; blocks until
     * all have completed. One batch at a time (not reentrant). If jobs
     * threw, the exception of the lowest failing index is rethrown
     * here after the batch has fully drained.
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void runIndices(const std::function<void(std::size_t)> &fn,
                    std::size_t count);

    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake; ///< workers: a batch is ready
    std::condition_variable done; ///< submitter: batch finished

    // Batch state (guarded by mtx except where noted). Workers join a
    // batch by snapshotting job/jobCount under mtx; the submitter
    // waits until every joined worker has left runIndices (busy == 0)
    // before tearing the batch down, so no worker ever reads state
    // from one batch while the next is being set up.
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobCount = 0;
    std::atomic<std::size_t> nextIndex{0}; ///< claimed lock-free
    std::size_t remaining = 0; ///< indices not yet finished
    std::size_t busy = 0; ///< workers currently inside runIndices
    std::uint64_t batchSeq = 0; ///< bumped per batch; wakes workers
    bool stopping = false;
    std::vector<std::exception_ptr> errors; ///< per index, batch-sized
};

} // namespace aosd

#endif // AOSD_SIM_PARALLEL_THREAD_POOL_HH
