#include "sim/parallel/sim_slice.hh"

namespace aosd
{

SimSlice &
SimSlice::current()
{
    thread_local SimSlice slice;
    return slice;
}

void
SimSlice::beginStatCapture()
{
    StatRegistry &reg = stats();
    reg.setRetainRetired(true);
    reg.resetAll();
}

FlatStats
SimSlice::captureStats()
{
    StatRegistry &reg = stats();
    FlatStats flat = reg.flatten();
    reg.resetAll();
    return flat;
}

void
SimSlice::resetInstrumentation()
{
    tracer().disable();
    tracer().clear();
    profiler().disable();
    profiler().clear();
    counters().disable();
    counters().reset();
    stats().resetAll();
}

} // namespace aosd
