#include "sim/parallel/parallel_runner.hh"

#include <thread>

namespace aosd
{

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobCount(jobs == 0 ? defaultJobs() : jobs)
{
}

ParallelRunner::~ParallelRunner() = default;

unsigned
ParallelRunner::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool &
ParallelRunner::pool()
{
    if (!workers)
        workers = std::make_unique<ThreadPool>(jobCount);
    return *workers;
}

void
ParallelRunner::runIndexed(std::size_t n,
                           const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    if (jobCount == 1) {
        // The serial escape hatch: inline on the calling thread, no
        // capture bracketing — today's exact code path.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::vector<FlatStats> shards(collectStats ? n : 0);
    const bool capture = collectStats;
    auto task = [&](std::size_t i) {
        if (capture)
            SimSlice::current().beginStatCapture();
        fn(i);
        if (capture)
            shards[i] = SimSlice::current().captureStats();
    };
    pool().forEachIndex(n, task);

    // Merge worker shards by ascending task index — the same order a
    // serial run would have retired them in.
    if (capture) {
        StatRegistry &reg = StatRegistry::instance();
        for (const FlatStats &shard : shards)
            reg.absorbRetired(shard);
    }
}

} // namespace aosd
