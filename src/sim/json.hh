/**
 * @file
 * Minimal JSON value type with serializer and parser.
 *
 * The observability layer (StatRegistry snapshots, the cycle tracer's
 * chrome://tracing export, and tools/aosd_report's report.json) needs
 * machine-readable output, and the regression gate needs to read it
 * back. This is a deliberately small, dependency-free implementation:
 * objects preserve insertion order so emitted reports diff cleanly.
 */

#ifndef AOSD_SIM_JSON_HH
#define AOSD_SIM_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace aosd
{

/** A JSON document node: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::Bool), boolValue(b) {}
    Json(double d) : kind_(Kind::Number), numValue(d) {}
    Json(int v) : kind_(Kind::Number), numValue(v) {}
    Json(std::int64_t v)
        : kind_(Kind::Number), numValue(static_cast<double>(v))
    {}
    Json(std::uint64_t v)
        : kind_(Kind::Number), numValue(static_cast<double>(v))
    {}
    Json(const char *s) : kind_(Kind::String), strValue(s) {}
    Json(std::string s) : kind_(Kind::String), strValue(std::move(s)) {}

    /** Make an empty array / object (distinct from null). */
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array access. */
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    /** Object access. `set` replaces an existing key in place. */
    void set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    /** Fatal if the key is absent. */
    const Json &at(const std::string &key) const;
    /** Null reference if the key is absent. */
    const Json *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &items() const;

    /** Serialize. `indent` < 0 means compact single-line output. */
    std::string dump(int indent = -1) const;

    /**
     * Parse a complete JSON document. On malformed input returns null
     * and, when `error` is given, stores a description with the byte
     * offset.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

    bool operator==(const Json &o) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool boolValue = false;
    double numValue = 0.0;
    std::string strValue;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
};

/** Escape a string for embedding in JSON (adds surrounding quotes). */
std::string jsonQuote(const std::string &s);

} // namespace aosd

#endif // AOSD_SIM_JSON_HH
