#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace aosd
{

void
EventQueue::schedule(Tick when, std::function<void()> action)
{
    if (when < currentTick)
        panic("event scheduled in the past: %llu < %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(currentTick));
    heap.push(Event{when, nextSeq++, std::move(action)});
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (!heap.empty() && executed < max_events) {
        Event ev = heap.top();
        heap.pop();
        currentTick = ev.when;
        ev.action();
        ++executed;
    }
    return executed;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t executed = 0;
    while (!heap.empty() && heap.top().when <= until) {
        Event ev = heap.top();
        heap.pop();
        currentTick = ev.when;
        ev.action();
        ++executed;
    }
    if (currentTick < until)
        currentTick = until;
    return executed;
}

void
EventQueue::reset()
{
    heap = {};
    currentTick = 0;
    nextSeq = 0;
}

} // namespace aosd
