#include "sim/spantrace/spantrace.hh"

namespace aosd
{

namespace spdetail
{
thread_local bool on = false;
} // namespace spdetail

Json
SpanNode::toJson() const
{
    Json out = Json::object();
    out.set("name", Json(name));
    out.set("cycles", Json(cycles));
    Json ctrs = Json::object();
    for (std::size_t i = 0; i < numHwCounters; ++i) {
        HwCounter c = static_cast<HwCounter>(i);
        if (counters.get(c))
            ctrs.set(counterName(c), Json(counters.get(c)));
    }
    if (!ctrs.items().empty())
        out.set("counters", ctrs);
    if (!children.empty()) {
        Json kids = Json::array();
        for (const SpanNode &child : children)
            kids.push(child.toJson());
        out.set("spans", kids);
    }
    return out;
}

const Histogram *
SpanSession::find(const std::string &name) const
{
    for (const auto &[hist_name, hist] : hists)
        if (hist_name == name)
            return &hist;
    return nullptr;
}

void
SpanSession::merge(const SpanSession &other)
{
    for (const auto &[name, hist] : other.hists) {
        Histogram *mine = nullptr;
        for (auto &[my_name, my_hist] : hists)
            if (my_name == name)
                mine = &my_hist;
        if (mine)
            mine->merge(hist);
        else
            hists.emplace_back(name, hist);
    }
    requests.insert(requests.end(), other.requests.begin(),
                    other.requests.end());
    dropped += other.dropped;
}

SpanTracer &
SpanTracer::instance()
{
    static thread_local SpanTracer tracer;
    return tracer;
}

void
SpanTracer::enable(std::size_t capacity)
{
    session_ = SpanSession{};
    stack_.clear();
    requestRoot_ = SpanNode{};
    capacity_ = capacity;
    armed_ = true;
    ++gen_;
    spdetail::on = false;
}

void
SpanTracer::disable()
{
    armed_ = false;
    stack_.clear();
    ++gen_;
    spdetail::on = false;
}

void
SpanTracer::beginRequest(const char *name, std::uint64_t id,
                         Cycles now)
{
#ifndef AOSD_SPANTRACE_DISABLED
    if (!armed_)
        return;
    if (spdetail::on)
        endRequest(now);
    requestRoot_ = SpanNode{};
    requestRoot_.name = name;
    requestId_ = id;
    stack_.clear();
    stack_.push_back(
        {&requestRoot_, now, HwCounters::instance().snapshot(), false});
    ++gen_;
    spdetail::on = true;
#else
    (void)name;
    (void)id;
    (void)now;
#endif
}

void
SpanTracer::endRequest(Cycles now)
{
#ifndef AOSD_SPANTRACE_DISABLED
    if (!spdetail::on)
        return;
    if (stack_.empty()) {
        spdetail::on = false;
        return;
    }
    while (!stack_.empty())
        closeTop(now);
    spdetail::on = false;
    ++gen_;

    Histogram *hist = nullptr;
    for (auto &[name, h] : session_.hists)
        if (name == requestRoot_.name)
            hist = &h;
    if (!hist) {
        session_.hists.emplace_back(requestRoot_.name, Histogram{});
        hist = &session_.hists.back().second;
    }
    hist->sample(requestRoot_.cycles);

    if (session_.requests.size() < capacity_)
        session_.requests.push_back(
            {requestId_, std::move(requestRoot_)});
    else
        ++session_.dropped;
    requestRoot_ = SpanNode{};
#else
    (void)now;
#endif
}

void
SpanTracer::closeTop(Cycles now)
{
    Open &open = stack_.back();
    if (open.group) {
        Cycles total = 0;
        for (const SpanNode &child : open.node->children)
            total += child.cycles;
        open.node->cycles = total;
    } else {
        open.node->cycles = now >= open.start ? now - open.start : 0;
    }
    open.node->counters =
        HwCounters::instance().snapshot().delta(open.counters);
    stack_.pop_back();
}

SpanNode *
SpanTracer::push(const char *name, Cycles now)
{
    if (!spdetail::on)
        return nullptr;
    SpanNode *parent = stack_.back().node;
    parent->children.emplace_back();
    SpanNode *node = &parent->children.back();
    node->name = name;
    stack_.push_back(
        {node, now, HwCounters::instance().snapshot(), false});
    return node;
}

void
SpanTracer::pop(SpanNode *node, Cycles now, std::uint64_t gen)
{
    if (gen != gen_ || !spdetail::on)
        return;
    while (stack_.size() > 1) {
        SpanNode *top = stack_.back().node;
        closeTop(now);
        if (top == node)
            return;
    }
}

SpanNode *
SpanTracer::pushGroup(const char *name)
{
    if (!spdetail::on)
        return nullptr;
    SpanNode *parent = stack_.back().node;
    parent->children.emplace_back();
    SpanNode *node = &parent->children.back();
    node->name = name;
    stack_.push_back(
        {node, 0, HwCounters::instance().snapshot(), true});
    return node;
}

void
SpanTracer::popGroup(SpanNode *node, std::uint64_t gen)
{
    if (gen != gen_ || !spdetail::on)
        return;
    while (stack_.size() > 1) {
        SpanNode *top = stack_.back().node;
        closeTop(0);
        if (top == node)
            return;
    }
}

void
SpanTracer::leaf(const char *name, Cycles cycles)
{
    if (!spdetail::on)
        return;
    SpanNode *parent = stack_.back().node;
    parent->children.emplace_back();
    SpanNode &node = parent->children.back();
    node.name = name;
    node.cycles = cycles;
}

SpanSession
SpanTracer::take()
{
    disable();
    SpanSession out = std::move(session_);
    session_ = SpanSession{};
    return out;
}

} // namespace aosd
