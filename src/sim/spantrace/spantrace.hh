/**
 * @file
 * Request-scoped span tracing.
 *
 * The profiler (sim/profile) aggregates cycles by *place* — every
 * syscall's kernel_entry cycles land in one tree node — which answers
 * "where does the mean go" but not "why was this particular request
 * slow". This layer keeps the per-invocation view: each primitive
 * invocation opens a span carrying a request id, nests child spans for
 * its phases (dispatch, kernel entry, handler execution, write-buffer
 * drain, TLB refill), and records per-span simulated-cycle duration
 * plus the CounterSet delta across the span. study/span_report turns a
 * session's requests into latency percentiles, top-K slowest-request
 * exemplars (full tree + counter deltas) and a tail-vs-median
 * attribution priced with the reconcile layer's constants.
 *
 * Tracing is off by default; a disabled hook costs one non-atomic
 * thread-local load and a branch (the profdetail::on pattern —
 * spdetail::on is true only while a request is open inside an armed
 * session, so idle hooks never take the slow path). Configure with
 * -DAOSD_DISABLE_SPANTRACE=ON to compile the hooks out entirely (used
 * to bound the disabled-but-compiled-in overhead; see EXPERIMENTS.md).
 *
 * Tracer state is per thread: each simulation slice (see
 * sim/parallel/parallel_runner.hh) traces into its own session, and
 * shard sessions combine with SpanSession::merge() in task-index
 * order, so `--jobs N` output is byte-identical.
 */

#ifndef AOSD_SIM_SPANTRACE_SPANTRACE_HH
#define AOSD_SIM_SPANTRACE_SPANTRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/counters/counters.hh"
#include "sim/json.hh"
#include "sim/profile/histogram.hh"
#include "sim/ticks.hh"

namespace aosd
{

namespace spdetail
{
/** The tracer's in-request flag. Namespace-scope and thread-local for
 *  the same reason as profdetail::on: the disabled fast path in the
 *  simulator's hot loops is one non-atomic load and a branch. True
 *  only between beginRequest() and endRequest() of an armed session,
 *  so hooks outside any request cost the same as a disabled build. */
extern thread_local bool on;
} // namespace spdetail

/** Cheapest possible "is a traced request open?" check for hot
 *  paths. */
inline bool
spantraceEnabled()
{
#ifndef AOSD_SPANTRACE_DISABLED
    return spdetail::on;
#else
    return false;
#endif
}

/** One span of a request's tree. Unlike ProfNode, children are not
 *  merged by name: every push appends a new node, so the tree is the
 *  literal invocation sequence of one request. */
struct SpanNode
{
    std::string name;
    /** Inclusive simulated-cycle duration of the span. */
    Cycles cycles = 0;
    /** Counter events observed during the span (zero for leaves,
     *  which carry a duration only). */
    CounterSet counters;
    std::vector<SpanNode> children;

    /** {"name":..,"cycles":..[,"counters":{only-nonzero}]
     *   [,"spans":[children]]} — counters and children omitted when
     *  empty so exemplar trees stay compact. */
    Json toJson() const;
};

/** One completed request: its id and full span tree. The root span's
 *  name is the primitive, its cycles the request latency. */
struct SpanRequest
{
    std::uint64_t id = 0;
    SpanNode root;
};

/**
 * Everything one tracer collected: per-request-name latency
 * histograms (first-seen order), the retained request trees, and how
 * many completed requests were dropped once `capacity` trees were
 * retained (their latencies still land in the histograms).
 */
struct SpanSession
{
    std::vector<std::pair<std::string, Histogram>> hists;
    std::vector<SpanRequest> requests;
    std::uint64_t dropped = 0;

    const Histogram *find(const std::string &name) const;

    /** Fold another shard's session into this one: histograms merge
     *  by name (unmatched names append in the other's order),
     *  requests append after ours, dropped counts sum. Associative
     *  with the empty session as identity, so merging parallel slices
     *  in task-index order is well defined. */
    void merge(const SpanSession &other);
};

/**
 * The calling thread's span tracer (per-thread, one per simulation
 * slice). enable(capacity) arms it; beginRequest()/endRequest()
 * bracket one primitive invocation; SpanScope/SpanGroup/spanLeaf()
 * nest phases inside the open request.
 */
class SpanTracer
{
  public:
    static SpanTracer &instance();

    /** Drop any previous session and arm the tracer. Up to `capacity`
     *  request trees are retained; later requests only feed the
     *  histograms and bump dropped. */
    void enable(std::size_t capacity);

    /** Disarm (an open request is abandoned unrecorded). The session
     *  remains readable via take(). */
    void disable();

    bool armed() const { return armed_; }

    /** Open a request span. No-op unless armed; must not be called
     *  with a request already open (the open request is closed at
     *  `now` first, keeping the session well formed). */
    void beginRequest(const char *name, std::uint64_t id, Cycles now);

    /** Close the request (and any spans left open inside it) at
     *  `now`, sample its latency histogram and retain its tree if
     *  under capacity. */
    void endRequest(Cycles now);

    /** Open a child span at `now`. Returns the node (null when no
     *  request is open). */
    SpanNode *push(const char *name, Cycles now);

    /** Close span `node` at `now` (closing any of its still-open
     *  children first). Ignored when `gen` is stale — the request
     *  that owned the node has already ended. */
    void pop(SpanNode *node, Cycles now, std::uint64_t gen);

    /** Open a child span whose duration will be the sum of its
     *  children (for analytic models that add component costs rather
     *  than advance a clock). */
    SpanNode *pushGroup(const char *name);

    /** Close the innermost group span. */
    void popGroup(SpanNode *node, std::uint64_t gen);

    /** Append a closed leaf span of `cycles` under the current
     *  span. */
    void leaf(const char *name, Cycles cycles);

    std::uint64_t generation() const { return gen_; }

    /** Move the session out (tracer left disarmed and empty). */
    SpanSession take();

  private:
    SpanTracer() = default;

    struct Open
    {
        SpanNode *node;
        Cycles start;
        CounterSet counters;
        bool group;
    };

    void closeTop(Cycles now);

    bool armed_ = false;
    std::uint64_t gen_ = 0; ///< bumped by enable/begin/endRequest
    std::size_t capacity_ = 0;
    std::uint64_t requestId_ = 0;
    SpanNode requestRoot_;
    std::vector<Open> stack_; ///< open spans, outermost first
    SpanSession session_;
};

/**
 * RAII phase span: opens a named child span for its lifetime, reading
 * the referenced simulated-cycle clock at entry and exit. `name` must
 * outlive the scope (string literals in practice); `clock` is the
 * owning component's cycle counter (e.g. SimKernel's).
 */
class SpanScope
{
  public:
    SpanScope(const char *name, const Cycles &clock)
    {
#ifndef AOSD_SPANTRACE_DISABLED
        if (!spdetail::on)
            return;
        SpanTracer &t = SpanTracer::instance();
        clock_ = &clock;
        gen_ = t.generation();
        node_ = t.push(name, clock);
#else
        (void)name;
        (void)clock;
#endif
    }

    ~SpanScope()
    {
#ifndef AOSD_SPANTRACE_DISABLED
        if (node_)
            SpanTracer::instance().pop(node_, *clock_, gen_);
#endif
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    SpanNode *node_ = nullptr;
    const Cycles *clock_ = nullptr;
    std::uint64_t gen_ = 0;
};

/**
 * RAII group span: duration is the sum of the child spans recorded
 * inside it. Used by the analytic IPC models (rpc/lrpc/urpc), which
 * sum component costs instead of advancing a kernel clock.
 */
class SpanGroup
{
  public:
    explicit SpanGroup(const char *name)
    {
#ifndef AOSD_SPANTRACE_DISABLED
        if (!spdetail::on)
            return;
        SpanTracer &t = SpanTracer::instance();
        gen_ = t.generation();
        node_ = t.pushGroup(name);
#else
        (void)name;
#endif
    }

    ~SpanGroup()
    {
#ifndef AOSD_SPANTRACE_DISABLED
        if (node_)
            SpanTracer::instance().popGroup(node_, gen_);
#endif
    }

    SpanGroup(const SpanGroup &) = delete;
    SpanGroup &operator=(const SpanGroup &) = delete;

  private:
    SpanNode *node_ = nullptr;
    std::uint64_t gen_ = 0;
};

/**
 * RAII tracing pause: helper simulations inside analytic models (the
 * LRPC steady-state TLB warm-up) run under one of these so their
 * kernel hooks don't nest phantom spans into the caller's open
 * request (the ProfPause analog).
 */
class SpanPause
{
  public:
    SpanPause() : was_(spdetail::on) { spdetail::on = false; }
    ~SpanPause() { spdetail::on = was_; }
    SpanPause(const SpanPause &) = delete;
    SpanPause &operator=(const SpanPause &) = delete;

  private:
    bool was_;
};

/** Record a closed leaf span of `cycles` under the current span. */
inline void
spanLeaf(const char *name, Cycles cycles)
{
#ifndef AOSD_SPANTRACE_DISABLED
    if (spdetail::on)
        SpanTracer::instance().leaf(name, cycles);
#else
    (void)name;
    (void)cycles;
#endif
}

} // namespace aosd

#endif // AOSD_SIM_SPANTRACE_SPANTRACE_HH
