/**
 * @file
 * Plain-text table formatter used by the bench binaries to print
 * paper-style tables (Tables 1-7 of Anderson et al. 1991).
 */

#ifndef AOSD_SIM_TABLE_HH
#define AOSD_SIM_TABLE_HH

#include <string>
#include <vector>

namespace aosd
{

/**
 * Builds a monospaced table: a header row, data rows, optional separator
 * rows, and per-column right/left alignment. Numeric cells are formatted
 * by the caller so each bench controls its own precision.
 */
class TextTable
{
  public:
    /** Set the column headers (fixes the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the column count. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator at this position. */
    void separator();

    /** Left-align a column (default is right-aligned except column 0). */
    void leftAlign(std::size_t col);

    /** Render the table to a string. */
    std::string render() const;

    /** Helper: format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 1);

    /** Helper: format an integer with thousands grouping. */
    static std::string grouped(std::uint64_t v);

  private:
    struct Row
    {
        bool isSeparator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headerCells;
    std::vector<Row> rows;
    std::vector<bool> leftAligned;
};

} // namespace aosd

#endif // AOSD_SIM_TABLE_HH
