/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload interleavings,
 * synthetic reference streams) draws from explicitly seeded instances of
 * this generator so that every run is reproducible. The generator is
 * splitmix64-seeded xoshiro256**.
 */

#ifndef AOSD_SIM_RANDOM_HH
#define AOSD_SIM_RANDOM_HH

#include <cstdint>

namespace aosd
{

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the seed into the state vector.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free multiply-shift is fine here; bias is
        // negligible for simulation bounds (<< 2^32).
        return (static_cast<unsigned __int128>(next()) * bound) >> 64;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state[4];
};

} // namespace aosd

#endif // AOSD_SIM_RANDOM_HH
