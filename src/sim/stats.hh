/**
 * @file
 * Lightweight statistics: named counters and scalar histograms.
 *
 * The simulated kernel instruments itself with these the way the authors
 * instrumented Mach (Table 7): every trap, syscall, context switch and TLB
 * miss bumps a counter in a StatGroup owned by the component.
 *
 * Every live StatGroup is also tracked by its thread's StatRegistry,
 * which can snapshot the entire simulation's counters to JSON in one
 * call — the machinery tools/aosd_report and the regression gate use to
 * make runs diffable. The registry is per thread (one per simulation
 * slice, see sim/parallel/parallel_runner.hh); worker-slice stats are
 * flattened with flatten() and folded into the coordinating thread's
 * registry with absorbRetired() in task-index order.
 */

#ifndef AOSD_SIM_STATS_HH
#define AOSD_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace aosd
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { total += n; }
    void reset() { total = 0; }
    std::uint64_t value() const { return total; }

  private:
    std::uint64_t total = 0;
};

/**
 * Accumulates scalar samples; reports count/min/max/mean.
 *
 * Empty-sample semantics: every accessor is total — min/max/mean/
 * variance/stddev of zero samples are 0.0, never NaN or a division by
 * zero, so a distribution that saw no events serializes and diffs
 * cleanly. reset() returns to exactly this empty state.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (n == 0) {
            lo = hi = v;
        } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        sum += v;
        sumSq += v * v;
        ++n;
    }

    void
    reset()
    {
        n = 0;
        sum = sumSq = lo = hi = 0.0;
    }

    std::uint64_t count() const { return n; }
    double min() const { return lo; }
    double max() const { return hi; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    /** Unbiased sample variance; 0.0 with fewer than two samples. */
    double variance() const;
    /** sqrt(variance()); 0.0 with fewer than two samples. */
    double stddev() const;
    double total() const { return sum; }

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * A named bag of counters, addressed by string. Components own one and
 * expose it read-only; the workload runner snapshots it between phases.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name);

    /** Groups register with the StatRegistry for their lifetime, so
     *  copies and moves must maintain their own registrations. */
    StatGroup(const StatGroup &o);
    StatGroup(StatGroup &&o);
    StatGroup &operator=(const StatGroup &o);
    StatGroup &operator=(StatGroup &&o);
    ~StatGroup();

    /** Bump a named counter, creating it on first use. */
    void
    inc(const std::string &counter, std::uint64_t n = 1)
    {
        counters[counter] += n;
    }

    /** Read a counter (0 if never bumped). */
    std::uint64_t
    get(const std::string &counter) const
    {
        auto it = counters.find(counter);
        return it == counters.end() ? 0 : it->second;
    }

    /**
     * Intern a counter and return a stable reference to its value, so
     * hot paths bump without a per-event string lookup. std::map nodes
     * never move, so the reference stays valid for the group's
     * lifetime (but not across copies/moves of the group — re-intern
     * in the new object; see Tlb's copy operations).
     */
    std::uint64_t &
    handle(const std::string &counter)
    {
        return counters[counter];
    }

    /** Zero every counter. */
    void
    reset()
    {
        for (auto &kv : counters)
            kv.second = 0;
    }

    const std::string &groupName() const { return name; }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

    /** Render "group.counter = value" lines. */
    std::string dump() const;

    /** Serialize as {"name": ..., "counters": {...}}. */
    Json toJson() const;

    /** Rebuild a group from toJson() output (fatal on bad shape). */
    static StatGroup fromJson(const Json &j);

    bool
    operator==(const StatGroup &o) const
    {
        return name == o.name && counters == o.counters;
    }

  private:
    std::string name;
    std::map<std::string, std::uint64_t> counters;
};

/** Flattened stats: group name -> counter name -> value. The order-
 *  independent value form worker slices hand back for merging. */
using FlatStats =
    std::map<std::string, std::map<std::string, std::uint64_t>>;

/**
 * Per-thread registry of every live StatGroup (one registry per
 * simulation slice; groups are confined to the thread that made them,
 * so no locking). Groups register on construction and deregister on
 * destruction. Snapshots serialize every group — including short-lived
 * ones inside models, as long as they are alive at snapshot time —
 * giving one JSON document per simulation state.
 */
class StatRegistry
{
  public:
    /** The calling thread's registry. */
    static StatRegistry &instance();

    /** Live groups, in registration order. */
    const std::vector<StatGroup *> &groups() const { return live; }

    /** First live group with this name (nullptr if none). */
    const StatGroup *findGroup(const std::string &name) const;

    /** Zero every counter in every live group and drop any retired
     *  aggregates, so a reset registry reads as a fresh run whether or
     *  not retention is on (retention itself stays enabled). */
    void resetAll();

    /**
     * When retention is on, a destroyed group's counters are folded
     * into a per-name "retired" aggregate instead of vanishing, so a
     * whole run's activity survives its transient kernels/models.
     * Turning retention off clears the aggregate.
     */
    void setRetainRetired(bool retain);
    bool retainsRetired() const { return retainRetired; }

    /** Snapshot every live group (plus, with retention, one
     *  "<name>.retired" aggregate per group name):
     *  {"stat_groups": [{"name":..., "counters":{...}}, ...]}. */
    Json toJson() const;

    /** Everything this registry knows, folded flat: live groups and
     *  retired aggregates summed per (group, counter). The value form
     *  a worker slice captures for the deterministic merge — sums are
     *  order-independent, so merging shards in task-index order equals
     *  running the tasks serially. */
    FlatStats flatten() const;

    /** Fold a worker slice's flattened stats into this registry's
     *  retired aggregates (retention is switched on as a side effect,
     *  since absorbed counters have no live group to live in). */
    void absorbRetired(const FlatStats &flat);

    /** Parse a toJson() snapshot back into value-type groups (the
     *  round-trip direction the regression tooling uses). */
    static std::vector<StatGroup> parseSnapshot(const Json &j);

  private:
    friend class StatGroup;
    void add(StatGroup *g) { live.push_back(g); }
    void remove(StatGroup *g);

    std::vector<StatGroup *> live;
    bool retainRetired = false;
    /** name -> accumulated counters of destroyed groups. */
    FlatStats retired;
};

} // namespace aosd

#endif // AOSD_SIM_STATS_HH
