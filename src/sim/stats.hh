/**
 * @file
 * Lightweight statistics: named counters and scalar histograms.
 *
 * The simulated kernel instruments itself with these the way the authors
 * instrumented Mach (Table 7): every trap, syscall, context switch and TLB
 * miss bumps a counter in a StatGroup owned by the component.
 */

#ifndef AOSD_SIM_STATS_HH
#define AOSD_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aosd
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { total += n; }
    void reset() { total = 0; }
    std::uint64_t value() const { return total; }

  private:
    std::uint64_t total = 0;
};

/** Accumulates scalar samples; reports count/min/max/mean. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (n == 0) {
            lo = hi = v;
        } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        sum += v;
        sumSq += v * v;
        ++n;
    }

    void
    reset()
    {
        n = 0;
        sum = sumSq = lo = hi = 0.0;
    }

    std::uint64_t count() const { return n; }
    double min() const { return lo; }
    double max() const { return hi; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double variance() const;
    double total() const { return sum; }

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * A named bag of counters, addressed by string. Components own one and
 * expose it read-only; the workload runner snapshots it between phases.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name) : name(std::move(group_name))
    {}

    /** Bump a named counter, creating it on first use. */
    void
    inc(const std::string &counter, std::uint64_t n = 1)
    {
        counters[counter] += n;
    }

    /** Read a counter (0 if never bumped). */
    std::uint64_t
    get(const std::string &counter) const
    {
        auto it = counters.find(counter);
        return it == counters.end() ? 0 : it->second;
    }

    /** Zero every counter. */
    void
    reset()
    {
        for (auto &kv : counters)
            kv.second = 0;
    }

    const std::string &groupName() const { return name; }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

    /** Render "group.counter = value" lines. */
    std::string dump() const;

  private:
    std::string name;
    std::map<std::string, std::uint64_t> counters;
};

} // namespace aosd

#endif // AOSD_SIM_STATS_HH
