#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace aosd
{

namespace
{

bool informEnabled = true;

std::string
vformat(const char *fmt, va_list ap)
{
    if (!fmt)
        return {};
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

} // namespace aosd
