#include "sim/table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace aosd
{

void
TextTable::header(std::vector<std::string> cells)
{
    headerCells = std::move(cells);
    leftAligned.assign(headerCells.size(), false);
    if (!leftAligned.empty())
        leftAligned[0] = true;
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (cells.size() != headerCells.size())
        panic("table row has %zu cells, expected %zu", cells.size(),
              headerCells.size());
    rows.push_back(Row{false, std::move(cells)});
}

void
TextTable::separator()
{
    rows.push_back(Row{true, {}});
}

void
TextTable::leftAlign(std::size_t col)
{
    if (col < leftAligned.size())
        leftAligned[col] = true;
}

std::string
TextTable::render() const
{
    const std::size_t ncols = headerCells.size();
    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < ncols; ++c)
        width[c] = headerCells[c].size();
    for (const auto &r : rows) {
        if (r.isSeparator)
            continue;
        for (std::size_t c = 0; c < ncols; ++c)
            width[c] = std::max(width[c], r.cells[c].size());
    }

    auto pad = [&](const std::string &s, std::size_t c) {
        std::string out;
        std::size_t fill = width[c] - s.size();
        if (leftAligned[c])
            out = s + std::string(fill, ' ');
        else
            out = std::string(fill, ' ') + s;
        return out;
    };

    std::ostringstream os;
    auto emit_sep = [&]() {
        for (std::size_t c = 0; c < ncols; ++c) {
            os << std::string(width[c] + 2, '-');
            if (c + 1 < ncols)
                os << '+';
        }
        os << '\n';
    };

    for (std::size_t c = 0; c < ncols; ++c) {
        os << ' ' << pad(headerCells[c], c) << ' ';
        if (c + 1 < ncols)
            os << '|';
    }
    os << '\n';
    emit_sep();

    for (const auto &r : rows) {
        if (r.isSeparator) {
            emit_sep();
            continue;
        }
        for (std::size_t c = 0; c < ncols; ++c) {
            os << ' ' << pad(r.cells[c], c) << ' ';
            if (c + 1 < ncols)
                os << '|';
        }
        os << '\n';
    }
    return os.str();
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::grouped(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace aosd
