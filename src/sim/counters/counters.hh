/**
 * @file
 * Simulated hardware performance counters.
 *
 * The paper explains every primitive's cost through microarchitectural
 * events — write-buffer stalls, cache flushes, TLB misses and refills,
 * SPARC register-window overflows — and the PR 2 profiler records
 * *where* cycles go but not *which events caused them*. This subsystem
 * closes that gap: a fixed set of named monotonic 64-bit counters,
 * bumped by the stateful components (write buffer, caches, TLB,
 * execution model, register windows, kernel, IPC), with snapshot/
 * delta/reset semantics.
 *
 * The headline consumer is the cycles-explained cross-check
 * (sim/counters/reconcile.hh): event counts times their modeled
 * penalties must reproduce the cycles the execution model charged —
 * the paper's own arithmetic for Tables 1/2/5.
 *
 * Counting is off by default; a disabled bump is one non-atomic load
 * and a predictable branch (the profdetail::on pattern). Configure
 * with -DAOSD_DISABLE_COUNTERS=ON to compile the hooks out entirely
 * (used to bound the disabled-but-compiled-in overhead).
 *
 * Counter state is per thread: each simulation slice (see
 * sim/parallel/parallel_runner.hh) counts into its own file, so
 * parallel jobs never race on a bump, and shards combine with
 * CounterSet::merge() in task-index order.
 */

#ifndef AOSD_SIM_COUNTERS_COUNTERS_HH
#define AOSD_SIM_COUNTERS_COUNTERS_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/json.hh"

namespace aosd
{

/**
 * Every hardware event the simulation counts. One enumerator per
 * counter; the set is fixed at compile time so the hot-path bump is an
 * array index, not a string lookup.
 */
enum class HwCounter : std::uint16_t
{
    // ---- execution model (per micro-op) ---------------------------
    InstrRetired,     ///< architectural instructions retired
    IssueSlots,       ///< 1-cycle issue slots (alu/nop/branch/ld/st)
    Nops,             ///< explicit no-ops / unfilled delay slots
    Branches,         ///< branches and jumps
    InterlockCycles,  ///< pipeline bubbles (branch-taken penalty)
    Loads,            ///< cached loads issued
    Stores,           ///< cached stores issued
    UncachedAccesses, ///< uncached loads+stores (I/O, CMMU regs)
    AtomicOps,        ///< interlocked ops (test&set, xmem, ldstub)
    ColdMisses,       ///< guaranteed-miss loads (cold context)
    CtrlRegAccesses,  ///< privileged control-register reads/writes
    MicrocodeOps,     ///< microcoded instructions + hw latencies
    MicrocodeCycles,  ///< cycles spent in microcode / hw latency
    FpuSyncCycles,    ///< cycles draining a frozen FP pipeline
    TrapEnters,       ///< hardware trap/exception entries
    TrapReturns,      ///< return-from-exception events

    // ---- SPARC register windows -----------------------------------
    WindowOverflows,  ///< window overflow traps taken
    WindowUnderflows, ///< window underflow traps taken
    WindowsSpilled,   ///< windows written out to memory

    // ---- TLB/cache maintenance ops (exec model) -------------------
    TlbWriteOps,      ///< TLB entry writes (tlbwr / MTPR)
    TlbProbeOps,      ///< TLB probes (tlbp)
    TlbPurgeEntryOps, ///< single-entry invalidates (TBIS)
    TlbPurgeAllOps,   ///< whole-TLB invalidates (TBIA)
    CacheFlushLines,  ///< cache lines flushed/invalidated

    // ---- write buffer ---------------------------------------------
    WbStores,             ///< stores entering the write buffer
    WbStalls,             ///< stores stalled on a full buffer
    WbReadWaits,          ///< loads held for the buffer to drain
    WbStallCycles,        ///< total cycles lost to both stalls
    WbOccupancyHighWater, ///< max entries pending (high-water)

    // ---- functional cache (VM/IPC/workload layers) ----------------
    CacheHits,
    CacheMisses,
    CacheWriteThroughs, ///< write-through stores to memory

    // ---- functional TLB -------------------------------------------
    TlbHits,
    TlbMisses,
    TlbRefillCycles, ///< cycles charged for TLB refills
    TlbPurges,       ///< full/entry/asid purges
    AsidRollovers,   ///< ASID wraps forcing a stale-entry purge

    // ---- kernel / scheduler ---------------------------------------
    KernelTraps,
    KernelSyscalls,
    ContextSwitches, ///< address-space switches
    ThreadSwitches,  ///< same-space thread switches
    EmulatedInstrs,  ///< instructions emulated by the kernel

    // ---- IPC -------------------------------------------------------
    IpcMessages,
    IpcBytesCopied,
    IpcFastPath, ///< LRPC/URPC fast-path takes
    IpcSlowPath, ///< network-RPC / kernel-mediated slow path

    // ---- workload / kernel-window accounting ----------------------
    ProcedureCalls,   ///< user-level procedure calls (Synapse, §4.1)
    PteChanges,       ///< pte_change primitive invocations
    EmulatedTasOps,   ///< fast-trap emulated test&set ops (a subset
                      ///< of EmulatedInstrs priced differently)
    TlbPurgeCycles,   ///< cycles purging an untagged TLB on switch
    CacheFlushCycles, ///< cycles flushing a virtual cache on switch

    NumCounters, ///< sentinel — keep last
};

inline constexpr std::size_t numHwCounters =
    static_cast<std::size_t>(HwCounter::NumCounters);

/** Stable snake_case name ("wb_stall_cycles") for JSON and tools. */
const char *counterName(HwCounter c);

/** Counters that track a maximum, not a sum (delta keeps the end
 *  value instead of subtracting). */
constexpr bool
counterIsHighWater(HwCounter c)
{
    return c == HwCounter::WbOccupancyHighWater;
}

namespace ctrdetail
{
/** The counter subsystem's on/off flag and value array. Namespace-
 *  scope (not behind an instance() call) so the disabled fast path in
 *  the execution model's per-op loop is one non-atomic load and a
 *  branch, and thread-local so every simulation slice counts into its
 *  own file without atomics. */
extern thread_local bool on;
extern thread_local std::array<std::uint64_t, numHwCounters> vals;
} // namespace ctrdetail

/** Cheapest possible "are counters on?" check for hot paths. */
inline bool
countersEnabled()
{
#ifndef AOSD_COUNTERS_DISABLED
    return ctrdetail::on;
#else
    return false;
#endif
}

/** Bump an event counter (saturation-free 64-bit accumulate). */
inline void
countEvent(HwCounter c, std::uint64_t n = 1)
{
#ifndef AOSD_COUNTERS_DISABLED
    if (ctrdetail::on)
        ctrdetail::vals[static_cast<std::size_t>(c)] += n;
#else
    (void)c;
    (void)n;
#endif
}

/** Raise a high-water counter to `v` if `v` exceeds it. */
inline void
countHighWater(HwCounter c, std::uint64_t v)
{
#ifndef AOSD_COUNTERS_DISABLED
    if (ctrdetail::on) {
        std::uint64_t &s = ctrdetail::vals[static_cast<std::size_t>(c)];
        if (v > s)
            s = v;
    }
#else
    (void)c;
    (void)v;
#endif
}

/**
 * RAII: suspend counting across a scope, restoring the previous
 * enablement on exit. Used by reference re-executions (the predecode-
 * off kernel path) whose microarchitectural events are already folded
 * into the cached cost constants and must not leak into an enclosing
 * measurement window.
 */
class CounterPause
{
  public:
    CounterPause() : was(ctrdetail::on) { ctrdetail::on = false; }
    ~CounterPause() { ctrdetail::on = was; }
    CounterPause(const CounterPause &) = delete;
    CounterPause &operator=(const CounterPause &) = delete;

  private:
    bool was;
};

/**
 * A value snapshot of every counter. Plain data: copyable, comparable,
 * serializable. Produced by HwCounters::snapshot(); windows of
 * activity are measured as end.delta(start).
 */
class CounterSet
{
  public:
    std::uint64_t
    get(HwCounter c) const
    {
        return v[static_cast<std::size_t>(c)];
    }

    void
    set(HwCounter c, std::uint64_t val)
    {
        v[static_cast<std::size_t>(c)] = val;
    }

    /** Events between `start` and this snapshot: subtracts counter by
     *  counter, except high-water counters, which keep this snapshot's
     *  value (a maximum does not difference). */
    CounterSet delta(const CounterSet &start) const;

    /** Sum of all event counters (high-water excluded); a quick
     *  "did anything happen" probe for tests. */
    std::uint64_t totalEvents() const;

    /** Fold another shard's events into this one: counters sum,
     *  high-water counters keep the larger value. Commutative and
     *  associative with the zero CounterSet as identity, so merging
     *  parallel slices in task-index order is well defined. */
    void merge(const CounterSet &other);

    /** {"<counter_name>": value, ...} — every counter, declaration
     *  order, zeros included (goldens diff cleanly). */
    Json toJson() const;

    bool operator==(const CounterSet &) const = default;

  private:
    std::array<std::uint64_t, numHwCounters> v{};
};

/**
 * The calling thread's counter file (per-thread, like the tracer and
 * profiler, so each simulation slice counts independently). enable()
 * resets and starts counting; components bump via countEvent()/
 * countHighWater().
 */
class HwCounters
{
  public:
    static HwCounters &instance();

    /** Zero every counter and start counting. */
    void
    enable()
    {
        reset();
        ctrdetail::on = true;
    }

    /** Stop counting; values remain readable. */
    void disable() { ctrdetail::on = false; }

    /** Continue counting without resetting. */
    void resume() { ctrdetail::on = true; }

    bool enabled() const { return countersEnabled(); }

    /** Zero every counter (enablement unchanged). */
    void reset() { ctrdetail::vals.fill(0); }

    /** Copy out the current values. */
    CounterSet snapshot() const;

    std::uint64_t
    value(HwCounter c) const
    {
        return ctrdetail::vals[static_cast<std::size_t>(c)];
    }

    /** snapshot().toJson(). */
    Json toJson() const { return snapshot().toJson(); }

  private:
    HwCounters() = default;
};

} // namespace aosd

#endif // AOSD_SIM_COUNTERS_COUNTERS_HH
