#include "sim/counters/counters.hh"

#include <algorithm>

namespace aosd
{

namespace ctrdetail
{
thread_local bool on = false;
thread_local std::array<std::uint64_t, numHwCounters> vals{};
} // namespace ctrdetail

const char *
counterName(HwCounter c)
{
    switch (c) {
      case HwCounter::InstrRetired:
        return "instr_retired";
      case HwCounter::IssueSlots:
        return "issue_slots";
      case HwCounter::Nops:
        return "nops";
      case HwCounter::Branches:
        return "branches";
      case HwCounter::InterlockCycles:
        return "interlock_cycles";
      case HwCounter::Loads:
        return "loads";
      case HwCounter::Stores:
        return "stores";
      case HwCounter::UncachedAccesses:
        return "uncached_accesses";
      case HwCounter::AtomicOps:
        return "atomic_ops";
      case HwCounter::ColdMisses:
        return "cold_misses";
      case HwCounter::CtrlRegAccesses:
        return "ctrl_reg_accesses";
      case HwCounter::MicrocodeOps:
        return "microcode_ops";
      case HwCounter::MicrocodeCycles:
        return "microcode_cycles";
      case HwCounter::FpuSyncCycles:
        return "fpu_sync_cycles";
      case HwCounter::TrapEnters:
        return "trap_enters";
      case HwCounter::TrapReturns:
        return "trap_returns";
      case HwCounter::WindowOverflows:
        return "window_overflows";
      case HwCounter::WindowUnderflows:
        return "window_underflows";
      case HwCounter::WindowsSpilled:
        return "windows_spilled";
      case HwCounter::TlbWriteOps:
        return "tlb_write_ops";
      case HwCounter::TlbProbeOps:
        return "tlb_probe_ops";
      case HwCounter::TlbPurgeEntryOps:
        return "tlb_purge_entry_ops";
      case HwCounter::TlbPurgeAllOps:
        return "tlb_purge_all_ops";
      case HwCounter::CacheFlushLines:
        return "cache_flush_lines";
      case HwCounter::WbStores:
        return "wb_stores";
      case HwCounter::WbStalls:
        return "wb_stalls";
      case HwCounter::WbReadWaits:
        return "wb_read_waits";
      case HwCounter::WbStallCycles:
        return "wb_stall_cycles";
      case HwCounter::WbOccupancyHighWater:
        return "wb_occupancy_high_water";
      case HwCounter::CacheHits:
        return "cache_hits";
      case HwCounter::CacheMisses:
        return "cache_misses";
      case HwCounter::CacheWriteThroughs:
        return "cache_write_throughs";
      case HwCounter::TlbHits:
        return "tlb_hits";
      case HwCounter::TlbMisses:
        return "tlb_misses";
      case HwCounter::TlbRefillCycles:
        return "tlb_refill_cycles";
      case HwCounter::TlbPurges:
        return "tlb_purges";
      case HwCounter::AsidRollovers:
        return "asid_rollovers";
      case HwCounter::KernelTraps:
        return "kernel_traps";
      case HwCounter::KernelSyscalls:
        return "kernel_syscalls";
      case HwCounter::ContextSwitches:
        return "context_switches";
      case HwCounter::ThreadSwitches:
        return "thread_switches";
      case HwCounter::EmulatedInstrs:
        return "emulated_instrs";
      case HwCounter::IpcMessages:
        return "ipc_messages";
      case HwCounter::IpcBytesCopied:
        return "ipc_bytes_copied";
      case HwCounter::IpcFastPath:
        return "ipc_fast_path";
      case HwCounter::IpcSlowPath:
        return "ipc_slow_path";
      case HwCounter::ProcedureCalls:
        return "procedure_calls";
      case HwCounter::PteChanges:
        return "pte_changes";
      case HwCounter::EmulatedTasOps:
        return "emulated_tas_ops";
      case HwCounter::TlbPurgeCycles:
        return "tlb_purge_cycles";
      case HwCounter::CacheFlushCycles:
        return "cache_flush_cycles";
      case HwCounter::NumCounters:
        break;
    }
    return "unknown";
}

CounterSet
CounterSet::delta(const CounterSet &start) const
{
    CounterSet out;
    for (std::size_t i = 0; i < numHwCounters; ++i) {
        auto c = static_cast<HwCounter>(i);
        out.v[i] = counterIsHighWater(c) ? v[i] : v[i] - start.v[i];
    }
    return out;
}

std::uint64_t
CounterSet::totalEvents() const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < numHwCounters; ++i)
        if (!counterIsHighWater(static_cast<HwCounter>(i)))
            n += v[i];
    return n;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (std::size_t i = 0; i < numHwCounters; ++i) {
        auto c = static_cast<HwCounter>(i);
        if (counterIsHighWater(c))
            v[i] = std::max(v[i], other.v[i]);
        else
            v[i] += other.v[i];
    }
}

Json
CounterSet::toJson() const
{
    Json out = Json::object();
    for (std::size_t i = 0; i < numHwCounters; ++i)
        out.set(counterName(static_cast<HwCounter>(i)), Json(v[i]));
    return out;
}

HwCounters &
HwCounters::instance()
{
    static HwCounters counters;
    return counters;
}

CounterSet
HwCounters::snapshot() const
{
    CounterSet out;
    for (std::size_t i = 0; i < numHwCounters; ++i)
        out.set(static_cast<HwCounter>(i), ctrdetail::vals[i]);
    return out;
}

} // namespace aosd
