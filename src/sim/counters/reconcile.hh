/**
 * @file
 * The cycles-explained cross-check.
 *
 * The paper's arithmetic for Tables 1/2/5 is "event counts times
 * per-event penalty equals time": §2.3 prices a DS3100 write-buffer
 * stall at 5 cycles per stalled store, §3.2 prices a TLB refill, the
 * SPARC analysis prices a window overflow trap. reconcileCycles()
 * performs the same multiplication over a CounterSet delta using the
 * machine's own penalty constants and compares the sum against the
 * cycles the execution model actually charged (equivalently, the
 * cycles the profiler attributed — the two are equal by the PR 2
 * invariant). If the counters and the penalty model are both honest,
 * 100% of the cycles are explained; a hole means an event source went
 * uncounted or a penalty drifted from the timing model.
 */

#ifndef AOSD_SIM_COUNTERS_RECONCILE_HH
#define AOSD_SIM_COUNTERS_RECONCILE_HH

#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "sim/counters/counters.hh"
#include "sim/json.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** One row of the reconciliation table: count x penalty = cycles. */
struct ExplainedTerm
{
    HwCounter counter = HwCounter::NumCounters;
    std::uint64_t count = 0;
    /** Modeled per-event penalty in cycles (1 for counters that
     *  accumulate cycles directly, e.g. wb_stall_cycles). */
    double penaltyCycles = 0.0;

    double explained() const
    {
        return static_cast<double>(count) * penaltyCycles;
    }
};

/** Result of reconciling one measurement window. */
struct Reconciliation
{
    Cycles actualCycles = 0;     ///< charged by the execution model
    double explainedCycles = 0;  ///< sum over terms
    std::vector<ExplainedTerm> terms;

    /** 100 * explained / actual (100 when both are zero). */
    double explainedPct() const;

    /** Does the product match within `tol_pct` percentage points in
     *  either direction? (Overexplaining is as much a bug as
     *  underexplaining: it means an event was double-counted.) */
    bool
    reconciles(double tol_pct = 5.0) const
    {
        double pct = explainedPct();
        return pct >= 100.0 - tol_pct && pct <= 100.0 + tol_pct;
    }

    /** {"actual_cycles":..,"explained_cycles":..,"explained_pct":..,
     *   "terms":{"<counter>":{"count":..,"penalty_cycles":..,
     *            "cycles":..}}} — terms in declaration order. */
    Json toJson() const;
};

/**
 * Multiply the event counts in `events` (a delta over one measurement
 * window on `machine`) by the machine's modeled penalties and compare
 * with `actual_cycles`. Every term is emitted, including zero-count
 * ones, so run-to-run diffs address rows by stable paths.
 */
Reconciliation reconcileCycles(const MachineDesc &machine,
                               const CounterSet &events,
                               Cycles actual_cycles);

/**
 * Per-event prices of the SimKernel's primitive operations, for
 * reconciling a *workload window* rather than a single handler run.
 * Built by kernelWindowCosts() (os/kernel/kernel.hh) from the shared
 * primitive-cost database, so the check prices events with the very
 * constants the kernel charges.
 */
struct KernelWindowCosts
{
    Cycles syscallCycles = 0;   ///< Primitive::NullSyscall
    Cycles trapCycles = 0;      ///< Primitive::Trap (traps + exceptions)
    Cycles switchCycles = 0;    ///< Primitive::ContextSwitch
    Cycles pteChangeCycles = 0; ///< Primitive::PteChange
    Cycles emulInstrCycles = 0; ///< per emulated instruction (decode+interp)
    Cycles emulTasCycles = 0;   ///< fast-trap emulated test&set
};

/**
 * The cycles-explained cross-check over a SimKernel workload window:
 * every kernel primitive the window counted, times its modeled cost,
 * plus the cycle-valued counters (TLB refills, TLB purges, cache
 * flushes), must reproduce the kernel's primitiveCycles() — the §5
 * "time in OS primitives" numerator — to within the same 95-105% gate
 * as the handler-program check.
 */
Reconciliation reconcileKernelWindow(const KernelWindowCosts &costs,
                                     const CounterSet &events,
                                     Cycles primitive_cycles);

} // namespace aosd

#endif // AOSD_SIM_COUNTERS_RECONCILE_HH
