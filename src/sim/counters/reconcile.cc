#include "sim/counters/reconcile.hh"

namespace aosd
{

double
Reconciliation::explainedPct() const
{
    if (actualCycles == 0)
        return 100.0;
    return 100.0 * explainedCycles /
           static_cast<double>(actualCycles);
}

Json
Reconciliation::toJson() const
{
    Json out = Json::object();
    out.set("actual_cycles", Json(actualCycles));
    out.set("explained_cycles", Json(explainedCycles));
    out.set("explained_pct", Json(explainedPct()));
    Json terms_json = Json::object();
    for (const ExplainedTerm &t : terms) {
        Json row = Json::object();
        row.set("count", Json(t.count));
        row.set("penalty_cycles", Json(t.penaltyCycles));
        row.set("cycles", Json(t.explained()));
        terms_json.set(counterName(t.counter), std::move(row));
    }
    out.set("terms", std::move(terms_json));
    return out;
}

Reconciliation
reconcileCycles(const MachineDesc &m, const CounterSet &events,
                Cycles actual_cycles)
{
    Reconciliation r;
    r.actualCycles = actual_cycles;

    auto term = [&](HwCounter c, double penalty) {
        r.terms.push_back({c, events.get(c), penalty});
        r.explainedCycles += r.terms.back().explained();
    };

    // The terms mirror ExecModel::chargeOp case by case: each event
    // class appears exactly once, priced with the same constant the
    // timing model charges, so an honest run explains 100%.
    term(HwCounter::IssueSlots, 1.0);
    term(HwCounter::Branches, m.timing.branchPenaltyCycles);
    term(HwCounter::ColdMisses, m.cache.missPenaltyCycles);
    term(HwCounter::WbStallCycles, 1.0);
    term(HwCounter::UncachedAccesses, m.cache.uncachedCycles);
    term(HwCounter::AtomicOps, m.cache.uncachedCycles);
    term(HwCounter::CtrlRegAccesses, m.timing.ctrlRegCycles);
    term(HwCounter::MicrocodeCycles, 1.0);
    term(HwCounter::TlbWriteOps, m.tlb.writeEntryCycles);
    term(HwCounter::TlbProbeOps, 3.0);
    term(HwCounter::TlbPurgeEntryOps, m.tlb.purgeEntryCycles);
    term(HwCounter::TlbPurgeAllOps, m.tlb.purgeAllCycles);
    term(HwCounter::CacheFlushLines, m.cache.flushLineCycles);
    term(HwCounter::TrapEnters, m.timing.trapEnterCycles);
    term(HwCounter::TrapReturns, m.timing.trapReturnCycles);
    term(HwCounter::WindowOverflows, m.timing.trapEnterCycles);
    term(HwCounter::WindowUnderflows, m.timing.trapEnterCycles);
    term(HwCounter::FpuSyncCycles, 1.0);

    return r;
}

} // namespace aosd
