#include "sim/counters/reconcile.hh"

namespace aosd
{

double
Reconciliation::explainedPct() const
{
    if (actualCycles == 0)
        return 100.0;
    return 100.0 * explainedCycles /
           static_cast<double>(actualCycles);
}

Json
Reconciliation::toJson() const
{
    Json out = Json::object();
    out.set("actual_cycles", Json(actualCycles));
    out.set("explained_cycles", Json(explainedCycles));
    out.set("explained_pct", Json(explainedPct()));
    Json terms_json = Json::object();
    for (const ExplainedTerm &t : terms) {
        Json row = Json::object();
        row.set("count", Json(t.count));
        row.set("penalty_cycles", Json(t.penaltyCycles));
        row.set("cycles", Json(t.explained()));
        terms_json.set(counterName(t.counter), std::move(row));
    }
    out.set("terms", std::move(terms_json));
    return out;
}

Reconciliation
reconcileCycles(const MachineDesc &m, const CounterSet &events,
                Cycles actual_cycles)
{
    Reconciliation r;
    r.actualCycles = actual_cycles;

    auto term = [&](HwCounter c, double penalty) {
        r.terms.push_back({c, events.get(c), penalty});
        r.explainedCycles += r.terms.back().explained();
    };

    // The terms mirror ExecModel::chargeOp case by case: each event
    // class appears exactly once, priced with the same constant the
    // timing model charges, so an honest run explains 100%.
    term(HwCounter::IssueSlots, 1.0);
    term(HwCounter::Branches, m.timing.branchPenaltyCycles);
    term(HwCounter::ColdMisses, m.cache.missPenaltyCycles);
    term(HwCounter::WbStallCycles, 1.0);
    term(HwCounter::UncachedAccesses, m.cache.uncachedCycles);
    term(HwCounter::AtomicOps, m.cache.uncachedCycles);
    term(HwCounter::CtrlRegAccesses, m.timing.ctrlRegCycles);
    term(HwCounter::MicrocodeCycles, 1.0);
    term(HwCounter::TlbWriteOps, m.tlb.writeEntryCycles);
    term(HwCounter::TlbProbeOps, 3.0);
    term(HwCounter::TlbPurgeEntryOps, m.tlb.purgeEntryCycles);
    term(HwCounter::TlbPurgeAllOps, m.tlb.purgeAllCycles);
    term(HwCounter::CacheFlushLines, m.cache.flushLineCycles);
    term(HwCounter::TrapEnters, m.timing.trapEnterCycles);
    term(HwCounter::TrapReturns, m.timing.trapReturnCycles);
    term(HwCounter::WindowOverflows, m.timing.trapEnterCycles);
    term(HwCounter::WindowUnderflows, m.timing.trapEnterCycles);
    term(HwCounter::FpuSyncCycles, 1.0);

    return r;
}

Reconciliation
reconcileKernelWindow(const KernelWindowCosts &costs,
                      const CounterSet &events,
                      Cycles primitive_cycles)
{
    Reconciliation r;
    r.actualCycles = primitive_cycles;

    auto term = [&](HwCounter c, std::uint64_t count, double penalty) {
        r.terms.push_back({c, count, penalty});
        r.explainedCycles += r.terms.back().explained();
    };

    // The terms mirror SimKernel's primCycles bookkeeping case by
    // case. Both switch kinds charge Primitive::ContextSwitch and both
    // bump ThreadSwitches (an address-space switch implies a thread
    // switch), so ThreadSwitches alone prices the switches; the extra
    // hardware costs of the mapping change (TLB purge, cache flush,
    // working-set refill) arrive through the cycle-valued counters.
    term(HwCounter::KernelSyscalls,
         events.get(HwCounter::KernelSyscalls),
         static_cast<double>(costs.syscallCycles));
    term(HwCounter::KernelTraps, events.get(HwCounter::KernelTraps),
         static_cast<double>(costs.trapCycles));
    term(HwCounter::ThreadSwitches,
         events.get(HwCounter::ThreadSwitches),
         static_cast<double>(costs.switchCycles));
    term(HwCounter::PteChanges, events.get(HwCounter::PteChanges),
         static_cast<double>(costs.pteChangeCycles));
    // EmulatedInstrs mixes two prices: the general decode-and-
    // interpret path and the dedicated test&set fast trap. The
    // EmulatedTasOps counter disambiguates.
    std::uint64_t emul = events.get(HwCounter::EmulatedInstrs);
    std::uint64_t tas = events.get(HwCounter::EmulatedTasOps);
    term(HwCounter::EmulatedInstrs, emul >= tas ? emul - tas : 0,
         static_cast<double>(costs.emulInstrCycles));
    term(HwCounter::EmulatedTasOps, tas,
         static_cast<double>(costs.emulTasCycles));
    term(HwCounter::TlbRefillCycles,
         events.get(HwCounter::TlbRefillCycles), 1.0);
    term(HwCounter::TlbPurgeCycles,
         events.get(HwCounter::TlbPurgeCycles), 1.0);
    term(HwCounter::CacheFlushCycles,
         events.get(HwCounter::CacheFlushCycles), 1.0);

    return r;
}

} // namespace aosd
