/**
 * @file
 * Error reporting and status helpers, following the gem5 split between
 * panic() (simulator bug: abort) and fatal() (user error: clean exit),
 * plus warn()/inform() status streams.
 */

#ifndef AOSD_SIM_LOGGING_HH
#define AOSD_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace aosd
{

/** Print a message and abort(): something that should never happen did. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a message and exit(1): the user asked for something impossible. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** printf-style into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace aosd

#endif // AOSD_SIM_LOGGING_HH
