#include "sim/sampling/sampler.hh"

#include "sim/trace.hh"

namespace aosd
{

namespace smpdetail
{
thread_local bool on = false;
} // namespace smpdetail

CounterSampler &
CounterSampler::instance()
{
    static thread_local CounterSampler sampler;
    return sampler;
}

void
CounterSampler::begin(const SamplerConfig &cfg, Cycles start_cycle,
                      double aux)
{
    series_ = CounterTimeSeries{};
    series_.intervalCycles = cfg.intervalCycles;
    series_.startCycle = start_cycle;
    series_.endCycle = start_cycle;
    series_.base = {start_cycle, aux,
                    HwCounters::instance().snapshot()};
    series_.samples.clear();
    series_.samples.reserve(cfg.capacity);
    cap = cfg.capacity ? cfg.capacity : 1;
    nextDue = start_cycle + cfg.intervalCycles;
    lastSample = start_cycle;
#ifndef AOSD_SAMPLER_DISABLED
    smpdetail::on = cfg.intervalCycles > 0;
#endif
}

void
CounterSampler::take(Cycles now, double aux)
{
    record(now, aux, HwCounters::instance().snapshot());
}

void
CounterSampler::record(Cycles now, double aux, CounterSet &&snap)
{
    if (series_.samples.size() == cap) {
        // Ring semantics: overwrite the oldest sample.
        series_.samples.erase(series_.samples.begin());
        ++series_.dropped;
    }
    series_.samples.push_back({now, aux, std::move(snap)});
    series_.endCycle = now;
    lastSample = now;
    nextDue = now + series_.intervalCycles;

    if (tracerEnabled()) {
        // Cumulative-within-the-window counter tracks; Perfetto draws
        // the series, the rates live in timeseries.json.
        Tracer &t = Tracer::instance();
        const CounterSample &s = series_.samples.back();
        auto track = [&](const char *name, HwCounter c) {
            t.recordAt(now, TraceEvent::Counter, TracePhase::Counter,
                       name,
                       s.counters.get(c) - series_.base.counters.get(c));
        };
        track("ts/tlb_misses", HwCounter::TlbMisses);
        track("ts/kernel_syscalls", HwCounter::KernelSyscalls);
        track("ts/thread_switches", HwCounter::ThreadSwitches);
        track("ts/emulated_instrs", HwCounter::EmulatedInstrs);
        track("ts/wb_stall_cycles", HwCounter::WbStallCycles);
        Cycles span = now > series_.startCycle
                          ? now - series_.startCycle
                          : 1;
        double occ = 100.0 * (s.aux - series_.base.aux) /
                     static_cast<double>(span);
        t.recordAt(now, TraceEvent::Counter, TracePhase::Counter,
                   "ts/kernel_occupancy_pct",
                   occ > 0 ? static_cast<std::uint64_t>(occ + 0.5)
                           : 0);
    }
}

void
CounterSampler::tickRun(Cycles start, Cycles per_event,
                        std::uint64_t n,
                        const CounterSet &per_event_counters,
                        std::uint64_t aux_start,
                        std::uint64_t aux_per_event)
{
#ifndef AOSD_SAMPLER_DISABLED
    if (!smpdetail::on || n == 0)
        return;
    if (per_event == 0) {
        // Zero-cost events never advance the clock, so the per-event
        // loop samples at most once: at the first event, iff the
        // boundary was already due (after which nextDue moves past
        // the stationary clock).
        if (start >= nextDue)
            take(start,
                 static_cast<double>(aux_start + aux_per_event));
        return;
    }
    const CounterSet now_counters = HwCounters::instance().snapshot();
    for (;;) {
        // First event of the run whose completion reaches the due
        // boundary — the event the per-event loop would sample at.
        // nextDue <= start can only hold before the run's first
        // sample; afterwards record() pushed it past the clock.
        std::uint64_t i = 1;
        if (nextDue > start)
            i = (nextDue - start + per_event - 1) / per_event;
        if (i > n)
            return;
        CounterSet snap = now_counters;
        for (std::size_t c = 0; c < numHwCounters; ++c) {
            auto hc = static_cast<HwCounter>(c);
            std::uint64_t per = per_event_counters.get(hc);
            if (per && !counterIsHighWater(hc))
                snap.set(hc, snap.get(hc) - per * (n - i));
        }
        record(start + per_event * i,
               static_cast<double>(aux_start + aux_per_event * i),
               std::move(snap));
    }
#else
    (void)start;
    (void)per_event;
    (void)n;
    (void)per_event_counters;
    (void)aux_start;
    (void)aux_per_event;
#endif
}

void
CounterSampler::finish(Cycles end_cycle, double aux)
{
    if (!samplingEnabled())
        return;
    if (end_cycle > lastSample)
        take(end_cycle, aux);
    series_.endCycle = end_cycle;
#ifndef AOSD_SAMPLER_DISABLED
    smpdetail::on = false;
#endif
}

Json
CounterTimeSeries::toJson() const
{
    Json out = Json::object();
    out.set("interval_cycles", Json(intervalCycles));
    out.set("start_cycle", Json(startCycle));
    out.set("end_cycle", Json(endCycle));
    out.set("samples",
            Json(static_cast<std::uint64_t>(samples.size())));
    out.set("dropped_samples", Json(dropped));

    Json cycles_arr = Json::array();
    for (const CounterSample &s : samples)
        cycles_arr.push(Json(s.cycle));
    out.set("cycles", std::move(cycles_arr));

    // Per-interval rates: sample i differenced against sample i-1
    // (the first against the window baseline).
    auto rate = [&](auto &&value_of) {
        Json arr = Json::array();
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const CounterSample &prev = i ? samples[i - 1] : base;
            const CounterSample &cur = samples[i];
            Cycles dc = cur.cycle > prev.cycle
                            ? cur.cycle - prev.cycle
                            : 0;
            arr.push(Json(value_of(prev, cur, dc)));
        }
        return arr;
    };
    auto per_kcycle = [&](HwCounter c) {
        return rate([c](const CounterSample &p, const CounterSample &s,
                        Cycles dc) {
            if (!dc)
                return 0.0;
            auto de = static_cast<double>(s.counters.get(c) -
                                          p.counters.get(c));
            return 1000.0 * de / static_cast<double>(dc);
        });
    };
    auto miss_rate_pct = [&](HwCounter hits, HwCounter misses) {
        return rate([hits, misses](const CounterSample &p,
                                   const CounterSample &s, Cycles) {
            auto dh = static_cast<double>(s.counters.get(hits) -
                                          p.counters.get(hits));
            auto dm = static_cast<double>(s.counters.get(misses) -
                                          p.counters.get(misses));
            return dh + dm > 0 ? 100.0 * dm / (dh + dm) : 0.0;
        });
    };

    Json series = Json::object();
    series.set("tlb_misses_per_kcycle",
               per_kcycle(HwCounter::TlbMisses));
    series.set("tlb_refill_cycles_per_kcycle",
               per_kcycle(HwCounter::TlbRefillCycles));
    series.set("wb_stall_cycles_per_kcycle",
               per_kcycle(HwCounter::WbStallCycles));
    series.set("syscalls_per_kcycle",
               per_kcycle(HwCounter::KernelSyscalls));
    series.set("context_switches_per_kcycle",
               per_kcycle(HwCounter::ContextSwitches));
    series.set("thread_switches_per_kcycle",
               per_kcycle(HwCounter::ThreadSwitches));
    series.set("emulated_instrs_per_kcycle",
               per_kcycle(HwCounter::EmulatedInstrs));
    series.set("procedure_calls_per_kcycle",
               per_kcycle(HwCounter::ProcedureCalls));
    series.set("tlb_miss_rate_pct",
               miss_rate_pct(HwCounter::TlbHits,
                             HwCounter::TlbMisses));
    series.set("cache_miss_rate_pct",
               miss_rate_pct(HwCounter::CacheHits,
                             HwCounter::CacheMisses));
    series.set("kernel_window_occupancy_pct",
               rate([](const CounterSample &p, const CounterSample &s,
                       Cycles dc) {
                   return dc ? 100.0 * (s.aux - p.aux) /
                                   static_cast<double>(dc)
                             : 0.0;
               }));
    out.set("series", std::move(series));
    return out;
}

} // namespace aosd
