/**
 * @file
 * Periodic counter sampling driven by simulated cycles.
 *
 * The Table 7 workloads and the reference-trace replays run for
 * simulated minutes, and until now reported only end-to-end totals —
 * the §5 comparison collapses an entire Andrew benchmark into one row.
 * This subsystem snapshots the hardware-counter file (and a
 * driver-supplied auxiliary value, e.g. the kernel's primitive-cycle
 * count) every `intervalCycles` of simulated time, into a fixed-size
 * ring that overwrites the oldest sample when full. Consecutive
 * snapshots difference into per-interval event *rates* — TLB misses
 * per kilocycle, syscall rate, kernel-window occupancy — the
 * phase-resolved view that connects OS behavior back to architectural
 * mechanisms.
 *
 * Sampling is off by default; a disabled tick is one thread-local load
 * and a predictable branch (the ctrdetail::on / profdetail::on /
 * trcdetail::on pattern). Configure with -DAOSD_DISABLE_SAMPLER=ON to
 * compile the hooks out entirely (used to bound the disabled-but-
 * compiled-in overhead).
 *
 * Sampler state is per thread: each simulation slice (see
 * sim/parallel/parallel_runner.hh) samples its own cell, drivers open
 * and close a session per cell, and the extracted series rides in the
 * cell's result — so fanning cells across workers produces the same
 * bytes as the serial loop.
 */

#ifndef AOSD_SIM_SAMPLING_SAMPLER_HH
#define AOSD_SIM_SAMPLING_SAMPLER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/counters/counters.hh"
#include "sim/json.hh"
#include "sim/ticks.hh"

namespace aosd
{

namespace smpdetail
{
/** The sampler's on/off flag. Namespace-scope and thread-local so the
 *  disabled fast path in the workload drivers' per-iteration loops is
 *  one load and a branch, and each simulation slice samples
 *  independently. */
extern thread_local bool on;
} // namespace smpdetail

/** Cheapest possible "is sampling on?" check for hot paths. */
inline bool
samplingEnabled()
{
#ifndef AOSD_SAMPLER_DISABLED
    return smpdetail::on;
#else
    return false;
#endif
}

/** How a sampling session runs. */
struct SamplerConfig
{
    /** Simulated cycles between samples. 0 disables sampling. */
    Cycles intervalCycles = 0;
    /** Ring capacity in samples; the oldest samples are overwritten
     *  (and counted as dropped) when a run outlives the ring. */
    std::size_t capacity = 4096;
};

/** One snapshot: the cumulative counter file at a simulated cycle,
 *  plus one driver-defined auxiliary value (SimKernel primitive
 *  cycles, cumulative TLB refill cycles, ...). */
struct CounterSample
{
    Cycles cycle = 0;
    double aux = 0;
    CounterSet counters;
};

/**
 * A completed session's samples, ready for export. Samples hold
 * *cumulative* values; toJson() emits per-interval rates (each sample
 * differenced against its predecessor, the first against `base`).
 */
struct CounterTimeSeries
{
    Cycles intervalCycles = 0;
    Cycles startCycle = 0;
    Cycles endCycle = 0;
    std::uint64_t dropped = 0;
    CounterSample base;                 ///< state when the window opened
    std::vector<CounterSample> samples; ///< oldest first

    bool empty() const { return samples.empty(); }

    /** {"interval_cycles":..,"start_cycle":..,"end_cycle":..,
     *   "samples":N,"dropped_samples":..,"cycles":[...],
     *   "series":{"<rate>":[...],...}} — every series array has one
     *  element per sample, fixed series set, declaration order. */
    Json toJson() const;
};

/**
 * The calling thread's sampling engine. A driver that owns a cycle
 * domain opens a session with begin(), calls tick(now, aux) at natural
 * points of its main loop (a due sample is taken when `now` crosses
 * the next interval boundary), and closes with finish(), after which
 * series() hands back the collected time series.
 *
 * When the tracer is enabled, every sample also emits Perfetto
 * "C"-phase counter records ("ts/..." series), so a traced workload
 * run renders its event-rate tracks on the same timeline as its
 * events.
 */
class CounterSampler
{
  public:
    static CounterSampler &instance();

    /** Open a session: reset the ring, record the baseline snapshot at
     *  `start_cycle`, start answering tick(). Requires counters to be
     *  enabled by the caller (the sampler snapshots, never enables). */
    void begin(const SamplerConfig &cfg, Cycles start_cycle = 0,
               double aux = 0);

    /** Take a closing sample at `end_cycle` (if the window advanced
     *  past the last sample) and stop sampling. The collected series
     *  remains readable until the next begin(). */
    void finish(Cycles end_cycle, double aux = 0);

    /** Hot path: sample if `now` reached the next due boundary. */
    void
    tick(Cycles now, double aux = 0)
    {
#ifndef AOSD_SAMPLER_DISABLED
        if (!smpdetail::on)
            return;
        if (now < nextDue)
            return;
        take(now, aux);
#else
        (void)now;
        (void)aux;
#endif
    }

    /**
     * Batch-charge path: the caller just advanced its clock from
     * `start` by `n` homogeneous events of `per_event` cycles each in
     * one closed-form charge, with the thread's counter file already
     * holding the post-batch values. Emits exactly the samples the
     * per-event loop
     *
     *   for i in 1..n:
     *     tick(start + i*per_event, double(aux_start + i*aux_per_event))
     *
     * would have taken — one per interval boundary the run crosses,
     * never one fat sample — reconstructing each intermediate counter
     * snapshot by rolling the current counters back by the (n - i)
     * events that had not yet happened. `per_event_counters` is one
     * event's counter bumps; high-water counters must be untouched by
     * the batched events (they cannot be rolled back).
     */
    void tickRun(Cycles start, Cycles per_event, std::uint64_t n,
                 const CounterSet &per_event_counters,
                 std::uint64_t aux_start, std::uint64_t aux_per_event);

    bool active() const { return samplingEnabled(); }

    std::size_t size() const { return series_.samples.size(); }
    std::uint64_t dropped() const { return series_.dropped; }

    /** The session's series (valid after finish()). */
    const CounterTimeSeries &series() const { return series_; }

  private:
    CounterSampler() = default;
    void take(Cycles now, double aux);
    /** Append one sample (ring semantics, Perfetto tracks, nextDue). */
    void record(Cycles now, double aux, CounterSet &&snap);

    Cycles nextDue = 0;
    Cycles lastSample = 0;
    std::size_t cap = 0;
    CounterTimeSeries series_;
};

} // namespace aosd

#endif // AOSD_SIM_SAMPLING_SAMPLER_HH
