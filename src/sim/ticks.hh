/**
 * @file
 * Fundamental time types for the simulator.
 *
 * Simulated time is kept in integer picoseconds ("ticks") so that all
 * machine clock rates used in the paper (11.1 MHz CVAX up to 40 MHz i860)
 * divide into it without rounding drift, and so that runs are bit-for-bit
 * deterministic.
 */

#ifndef AOSD_SIM_TICKS_HH
#define AOSD_SIM_TICKS_HH

#include <cstdint>

namespace aosd
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A cycle count on some clocked component. */
using Cycles = std::uint64_t;

constexpr Tick ticksPerPicosecond = 1;
constexpr Tick ticksPerNanosecond = 1000;
constexpr Tick ticksPerMicrosecond = 1000 * 1000;
constexpr Tick ticksPerMillisecond = 1000ULL * 1000 * 1000;
constexpr Tick ticksPerSecond = 1000ULL * 1000 * 1000 * 1000;

/**
 * A fixed clock rate. Converts between cycles and ticks.
 */
class Clock
{
  public:
    /** Construct from a frequency in megahertz (may be fractional). */
    static constexpr Clock
    fromMHz(double mhz)
    {
        // period in ps = 1e6 / MHz
        return Clock(static_cast<Tick>(1.0e6 / mhz + 0.5));
    }

    explicit constexpr Clock(Tick period_ps) : periodPs(period_ps) {}

    constexpr Tick period() const { return periodPs; }

    constexpr double
    mhz() const
    {
        return 1.0e6 / static_cast<double>(periodPs);
    }

    constexpr Tick
    cyclesToTicks(Cycles c) const
    {
        return c * periodPs;
    }

    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        return (t + periodPs - 1) / periodPs;
    }

    /** Convert a cycle count to microseconds (for paper-style tables). */
    constexpr double
    cyclesToMicros(Cycles c) const
    {
        return static_cast<double>(c * periodPs) / 1.0e6;
    }

    /** Convert microseconds to (rounded) cycles. */
    constexpr Cycles
    microsToCycles(double us) const
    {
        return static_cast<Cycles>(us * 1.0e6 / periodPs + 0.5);
    }

    constexpr bool operator==(const Clock &) const = default;

  private:
    Tick periodPs;
};

} // namespace aosd

#endif // AOSD_SIM_TICKS_HH
