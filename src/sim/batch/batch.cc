#include "sim/batch/batch.hh"

#include <atomic>
#include <cstdlib>

namespace aosd
{

namespace
{

bool
initialBatch()
{
    // AOSD_NO_BATCH=1 selects the per-event reference path for
    // harnesses that cannot pass a flag (google-benchmark's main);
    // unset, empty, or "0" keep the batched fast path.
    const char *env = std::getenv("AOSD_NO_BATCH");
    if (!env || !env[0])
        return true;
    return env[0] == '0' && env[1] == '\0';
}

std::atomic<bool> batchOn{initialBatch()};

} // namespace

bool
batchEnabled()
{
#ifndef AOSD_BATCH_DISABLED
    return batchOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void
setBatchEnabled(bool on)
{
    batchOn.store(on, std::memory_order_relaxed);
}

} // namespace aosd
