/**
 * @file
 * Kernel-window batch charging toggle.
 *
 * The Table 7 replays and the synthetic traffic driver push millions
 * of homogeneous kernel events — clock interrupts, page faults,
 * emulated test&sets, thread switches — through SimKernel, and the
 * per-event path pays full bookkeeping (scope push/pop, stat bump,
 * counter bump, histogram sample, sampler tick) for every one. When
 * the fast pre-decoded path is active, a run of n identical events is
 * fully determined by per-event decoded constants, so the whole run
 * can be charged in closed form: cycles and counters as constant × n,
 * profiler entries/self-cycles/histograms via the sampleN batch
 * updates (sim/profile), and sampler boundaries via
 * CounterSampler::tickRun (sim/sampling). Stateful operations
 * (context switches that purge TLB/cache state, software TLB refills,
 * PTE state edits) are still stepped, so every JSON document stays
 * byte-identical to the per-event path.
 *
 * The toggle mirrors the predecode trio (cpu/decoded_program.hh):
 * runtime setBatchEnabled(false) / tools' --no-batch flag, the
 * AOSD_NO_BATCH environment variable for harnesses that cannot pass a
 * flag (google-benchmark's main), and -DAOSD_DISABLE_BATCH=ON to
 * compile the fast path out entirely.
 */

#ifndef AOSD_SIM_BATCH_BATCH_HH
#define AOSD_SIM_BATCH_BATCH_HH

#include "sim/spantrace/spantrace.hh"
#include "sim/trace.hh"

namespace aosd
{

/** Is batched charging on? (default yes; AOSD_NO_BATCH=1 or
 *  setBatchEnabled(false) select the per-event reference path;
 *  constant false under -DAOSD_DISABLE_BATCH). */
bool batchEnabled();

/** Flip batched charging at runtime (tools' --no-batch). No effect
 *  in an AOSD_DISABLE_BATCH build. */
void setBatchEnabled(bool on);

/** Whether this build compiled the batch fast path in at all. */
inline constexpr bool batchCompiledIn =
#ifndef AOSD_BATCH_DISABLED
    true;
#else
    false;
#endif

/** True when no per-event observer is watching: the event tracer
 *  emits one record per event and an open span-traced request nests
 *  one node per invocation, so a run can only be coalesced while both
 *  are idle. Callers with a reference-interpreter mode (predecode
 *  off) must check that separately. */
inline bool
batchObserversIdle()
{
    return !tracerEnabled() && !spantraceEnabled();
}

} // namespace aosd

#endif // AOSD_SIM_BATCH_BATCH_HH
