#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace aosd
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is not a bool");
    return boolValue;
}

double
Json::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is not a number");
    return numValue;
}

std::uint64_t
Json::asUint() const
{
    double d = asNumber();
    if (d < 0)
        fatal("JSON number is negative, expected unsigned");
    return static_cast<std::uint64_t>(d + 0.5);
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is not a string");
    return strValue;
}

void
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        fatal("push on a non-array JSON value");
    arr.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return arr.size();
    if (kind_ == Kind::Object)
        return obj.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    if (kind_ != Kind::Array || i >= arr.size())
        fatal("JSON array index out of range");
    return arr[i];
}

void
Json::set(const std::string &key, Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        fatal("set on a non-object JSON value");
    for (auto &kv : obj) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    if (const Json *v = find(key))
        return *v;
    fatal("JSON object has no key '%s'", key.c_str());
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    if (kind_ != Kind::Object)
        fatal("items() on a non-object JSON value");
    return obj;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace
{

/** Shortest-roundtrip-ish number formatting: integers stay integral. */
std::string
formatNumber(double d)
{
    if (std::isnan(d) || std::isinf(d))
        return "null"; // JSON has no NaN/Inf
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
        if (std::strtod(probe, nullptr) == d)
            return probe;
    }
    return buf;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolValue ? "true" : "false";
        break;
      case Kind::Number:
        out += formatNumber(numValue);
        break;
      case Kind::String:
        out += jsonQuote(strValue);
        break;
      case Kind::Array:
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += jsonQuote(obj[i].first);
            out += indent < 0 ? ":" : ": ";
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent >= 0)
        out += '\n';
    return out;
}

bool
Json::operator==(const Json &o) const
{
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return boolValue == o.boolValue;
      case Kind::Number:
        return numValue == o.numValue;
      case Kind::String:
        return strValue == o.strValue;
      case Kind::Array:
        return arr == o.arr;
      case Kind::Object:
        return obj == o.obj;
    }
    return false;
}

namespace
{

/** Recursive-descent parser over a string view + cursor. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : src(text), err(error)
    {}

    Json
    document()
    {
        Json v = value();
        if (failed)
            return Json();
        skipWs();
        if (pos != src.size()) {
            fail("trailing characters after document");
            return Json();
        }
        return v;
    }

    bool ok() const { return !failed; }

  private:
    void
    fail(const std::string &what)
    {
        if (!failed && err)
            *err = what + " at offset " + std::to_string(pos);
        failed = true;
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (src.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        if (pos >= src.size()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = src[pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json(nullptr);
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        fail("unexpected character");
        return Json();
    }

    Json
    object()
    {
        Json out = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        while (!failed) {
            skipWs();
            if (pos >= src.size() || src[pos] != '"') {
                fail("expected object key");
                break;
            }
            std::string key = string();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after key");
                break;
            }
            out.set(key, value());
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            fail("expected ',' or '}' in object");
        }
        return out;
    }

    Json
    array()
    {
        Json out = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        while (!failed) {
            out.push(value());
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            fail("expected ',' or ']' in array");
        }
        return out;
    }

    std::string
    string()
    {
        consume('"');
        std::string out;
        while (pos < src.size()) {
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= src.size())
                break;
            char esc = src[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos + 4 > src.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + h - 'a';
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + h - 'A';
                    else {
                        fail("bad \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode (basic plane only; enough for stats
                // and trace names, which are ASCII in practice).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    number()
    {
        std::size_t start = pos;
        if (consume('-')) {}
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == 'e' || src[pos] == 'E' ||
                src[pos] == '+' || src[pos] == '-'))
            ++pos;
        std::string tok = src.substr(start, pos - start);
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0') {
            fail("malformed number");
            return Json();
        }
        return Json(d);
    }

    const std::string &src;
    std::string *err;
    std::size_t pos = 0;
    bool failed = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p(text, error);
    Json v = p.document();
    return p.ok() ? v : Json();
}

} // namespace aosd
