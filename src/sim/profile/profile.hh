/**
 * @file
 * Hierarchical cycle-attribution profiler.
 *
 * The paper's core move is attribution: Table 5 explains a null system
 * call by decomposing it into kernel entry/exit, call preparation and
 * the C call, and §2.3/§3.2 charge the remainder to register-window
 * flushes, write-buffer stalls and TLB refills. This layer gives the
 * simulator the same power programmatically: RAII ProfScope spans name
 * a tree of causes (e.g. syscall/kernel_entry_exit/trap_hardware), and
 * every simulated cycle charged while profiling is attributed to
 * exactly one node of that tree.
 *
 * Invariant: attributedCycles() == sumOfLeaves() == the cycles the
 * instrumented components charged while the profiler was enabled.
 * tools/aosd_profile asserts this per machine × primitive, so "where
 * did the cycles go" always sums to "how long did it take".
 *
 * Profiling is off by default; a disabled ProfScope costs one branch.
 * Configure with -DAOSD_DISABLE_PROFILER=ON to compile the hooks out
 * entirely (used to bound the disabled-but-compiled-in overhead; see
 * EXPERIMENTS.md).
 *
 * Profiler state is per thread: each simulation slice (see
 * sim/parallel/parallel_runner.hh) attributes into its own tree, and
 * shard trees combine with ProfNode::mergeFrom() in task-index order.
 */

#ifndef AOSD_SIM_PROFILE_PROFILE_HH
#define AOSD_SIM_PROFILE_PROFILE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/profile/histogram.hh"
#include "sim/ticks.hh"

namespace aosd
{

namespace profdetail
{
/** The profiler's on/off flag. A namespace-scope bool (not a member
 *  behind Profiler::instance()) so the disabled fast path in the
 *  simulator's hot loops is one non-atomic load and a branch — no
 *  function-local-static guard — and thread-local so each simulation
 *  slice profiles independently. */
extern thread_local bool on;
} // namespace profdetail

/** Cheapest possible "is profiling on?" check for hot paths. */
inline bool
profilerEnabled()
{
#ifndef AOSD_PROFILER_DISABLED
    return profdetail::on;
#else
    return false;
#endif
}

/** One node of the attribution tree. */
struct ProfNode
{
    std::string name;
    ProfNode *parent = nullptr;
    std::vector<std::unique_ptr<ProfNode>> children;
    /** Cycles attributed directly to this node (not to children). */
    Cycles selfCycles = 0;
    /** Scope entries / attribution events at this node. */
    std::uint64_t entries = 0;
    /** Inclusive cycles per completed span (drives p50/p90/p99). */
    Histogram spans;

    /** Find-or-create a child (linear scan; fan-out is small). */
    ProfNode *child(const char *child_name);

    /** Existing child by name, nullptr if absent. */
    const ProfNode *find(const std::string &child_name) const;

    /** selfCycles plus every descendant's. */
    Cycles totalCycles() const;

    /** Fold another shard's subtree into this one: cycles, entry
     *  counts and span histograms sum node by node (matched by name;
     *  unmatched children are deep-copied in the other tree's child
     *  order). Associative with the empty tree as identity, so merging
     *  parallel slices in task-index order is well defined. */
    void mergeFrom(const ProfNode &other);

    /** {"self_cycles":..,"total_cycles":..,"count":..,
     *   "p50_cycles":..,"p90_cycles":..,"p99_cycles":..,
     *   "children":{name: {...}}} — children keyed by name, in
     *  first-entry order, so diffing tools address figures by path. */
    Json toJson() const;
};

/**
 * The calling thread's profiler (per-thread, one per simulation
 * slice). Scopes (ProfScope) maintain the current position in the
 * tree; instrumented components attribute cycles at that position via
 * addCycles() or to a named leaf below it via addLeafCycles().
 */
class Profiler
{
  public:
    /** The calling thread's profiler. */
    static Profiler &instance();

    /** Clear the tree and start attributing. Must not be called with
     *  ProfScopes alive (live scopes detach harmlessly but their spans
     *  are lost). */
    void enable();

    /** Stop attributing; the tree remains readable. */
    void disable() { profdetail::on = false; }

    /** Continue attributing into the existing tree (after disable()). */
    void resume() { profdetail::on = true; }

    bool enabled() const { return profilerEnabled(); }

    /** Drop the tree (enablement unchanged). */
    void clear();

    /** Attribute cycles to the innermost open scope (the tree root
     *  when no scope is open). */
    void
    addCycles(Cycles c)
    {
#ifndef AOSD_PROFILER_DISABLED
        if (!profdetail::on)
            return;
        cur->selfCycles += c;
        attributed += c;
#else
        (void)c;
#endif
    }

    /** Attribute cycles to a named leaf child of the current scope,
     *  creating it on first use. Counts one attribution event and
     *  samples the leaf's histogram with `c`. */
    void addLeafCycles(const char *leaf, Cycles c);

    /** Batched addLeafCycles: `k` attribution events of `each` cycles
     *  to a named leaf child of the current scope, in one closed-form
     *  update — byte-identical to k addLeafCycles(leaf, each) calls. */
    void addLeafCyclesRepeated(const char *leaf, Cycles each,
                               std::uint64_t k);

    /** Batched scope entry: descend into `name` as if `k` identical
     *  scopes opened back to back (entries += k). Pair with
     *  popRepeated(). Returns nullptr when profiling is off. */
    ProfNode *pushRepeated(const char *name, std::uint64_t k);

    /** Batched scope exit for pushRepeated(): sample `k` spans of
     *  `each` inclusive cycles and return to the parent. No-op when
     *  `node` is nullptr. */
    void popRepeated(ProfNode *node, Cycles each, std::uint64_t k);

    /** Every cycle attributed since enable(). */
    Cycles attributedCycles() const { return attributed; }

    /** Root of the attribution tree. */
    const ProfNode &root() const { return rootNode; }

    /** Node at `path` below the root, nullptr if absent. */
    const ProfNode *node(const std::vector<std::string> &path) const;

    /** Recomputed sum of selfCycles over the whole tree; equals
     *  attributedCycles() (the self-check tools and tests assert). */
    Cycles sumOfLeaves() const;

    /** The root's toJson(). */
    Json toJson() const;

    /**
     * Collapsed-stack ("folded") export: one line per node with
     * self-attributed cycles, frames joined by ';', consumable by
     * standard flamegraph tooling (flamegraph.pl, speedscope, inferno).
     * `prefix` frames are prepended to every stack.
     */
    std::string collapsedStacks(const std::string &prefix = "") const;

  private:
    friend class ProfScope;

    Profiler() { rootNode.name = "root"; }

    ProfNode *push(const char *name);
    void pop(ProfNode *node, Cycles entry_attributed,
             std::uint64_t entry_generation);

    std::uint64_t generation = 0; ///< bumped by enable()/clear()
    Cycles attributed = 0;
    ProfNode rootNode;
    ProfNode *cur = &rootNode;
};

/**
 * RAII span: descends into a named child of the current node for its
 * lifetime. Exception-safe (the destructor pops); reentrant (a scope
 * with the name of its parent simply nests). `name` must outlive the
 * scope (string literals in practice).
 */
class ProfScope
{
  public:
    explicit ProfScope(const char *name)
    {
#ifndef AOSD_PROFILER_DISABLED
        if (!profdetail::on)
            return;
        Profiler &p = Profiler::instance();
        entryAttributed = p.attributedCycles();
        entryGeneration = p.generation;
        node = p.push(name);
#else
        (void)name;
#endif
    }

    ~ProfScope()
    {
#ifndef AOSD_PROFILER_DISABLED
        if (node)
            Profiler::instance().pop(node, entryAttributed,
                                     entryGeneration);
#endif
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfNode *node = nullptr;
    Cycles entryAttributed = 0;
    std::uint64_t entryGeneration = 0;
};

/**
 * RAII attribution pause: helper simulations inside analytic models
 * (e.g. the LRPC steady-state TLB warm-up) run under one of these so
 * their charges don't pollute the caller's attribution tree.
 */
class ProfPause
{
  public:
    ProfPause() : wasOn(Profiler::instance().enabled())
    {
        Profiler::instance().disable();
    }

    ~ProfPause()
    {
        if (wasOn)
            Profiler::instance().resume();
    }

    ProfPause(const ProfPause &) = delete;
    ProfPause &operator=(const ProfPause &) = delete;

  private:
    bool wasOn;
};

} // namespace aosd

#endif // AOSD_SIM_PROFILE_PROFILE_HH
