#include "sim/profile/profile.hh"

namespace aosd
{

namespace profdetail
{
thread_local bool on = false;
} // namespace profdetail

ProfNode *
ProfNode::child(const char *child_name)
{
    for (auto &c : children)
        if (c->name == child_name)
            return c.get();
    auto node = std::make_unique<ProfNode>();
    node->name = child_name;
    node->parent = this;
    children.push_back(std::move(node));
    return children.back().get();
}

const ProfNode *
ProfNode::find(const std::string &child_name) const
{
    for (const auto &c : children)
        if (c->name == child_name)
            return c.get();
    return nullptr;
}

Cycles
ProfNode::totalCycles() const
{
    Cycles total = selfCycles;
    for (const auto &c : children)
        total += c->totalCycles();
    return total;
}

void
ProfNode::mergeFrom(const ProfNode &other)
{
    selfCycles += other.selfCycles;
    entries += other.entries;
    spans.merge(other.spans);
    for (const auto &oc : other.children)
        child(oc->name.c_str())->mergeFrom(*oc);
}

Json
ProfNode::toJson() const
{
    Json out = Json::object();
    out.set("self_cycles", Json(selfCycles));
    out.set("total_cycles", Json(totalCycles()));
    out.set("count", Json(entries));
    if (spans.count() > 0) {
        out.set("p50_cycles", Json(spans.p50()));
        out.set("p90_cycles", Json(spans.p90()));
        out.set("p99_cycles", Json(spans.p99()));
    }
    if (!children.empty()) {
        Json kids = Json::object();
        for (const auto &c : children)
            kids.set(c->name, c->toJson());
        out.set("children", std::move(kids));
    }
    return out;
}

Profiler &
Profiler::instance()
{
    thread_local Profiler profiler;
    return profiler;
}

void
Profiler::enable()
{
    clear();
    profdetail::on = true;
}

void
Profiler::clear()
{
    rootNode.children.clear();
    rootNode.selfCycles = 0;
    rootNode.entries = 0;
    rootNode.spans.reset();
    cur = &rootNode;
    attributed = 0;
    ++generation;
}

void
Profiler::addLeafCycles(const char *leaf, Cycles c)
{
#ifndef AOSD_PROFILER_DISABLED
    if (!profdetail::on)
        return;
    ProfNode *node = cur->child(leaf);
    node->selfCycles += c;
    node->entries += 1;
    node->spans.sample(c);
    attributed += c;
#else
    (void)leaf;
    (void)c;
#endif
}

void
Profiler::addLeafCyclesRepeated(const char *leaf, Cycles each,
                                std::uint64_t k)
{
#ifndef AOSD_PROFILER_DISABLED
    if (!profdetail::on || k == 0)
        return;
    ProfNode *node = cur->child(leaf);
    node->selfCycles += each * k;
    node->entries += k;
    node->spans.sampleN(each, k);
    attributed += each * k;
#else
    (void)leaf;
    (void)each;
    (void)k;
#endif
}

ProfNode *
Profiler::pushRepeated(const char *name, std::uint64_t k)
{
#ifndef AOSD_PROFILER_DISABLED
    if (!profdetail::on)
        return nullptr;
    cur = cur->child(name);
    cur->entries += k;
    return cur;
#else
    (void)name;
    (void)k;
    return nullptr;
#endif
}

void
Profiler::popRepeated(ProfNode *node, Cycles each, std::uint64_t k)
{
    if (!node)
        return;
    node->spans.sampleN(each, k);
    cur = node->parent ? node->parent : &rootNode;
}

const ProfNode *
Profiler::node(const std::vector<std::string> &path) const
{
    const ProfNode *n = &rootNode;
    for (const std::string &name : path) {
        n = n->find(name);
        if (!n)
            return nullptr;
    }
    return n;
}

namespace
{

Cycles
sumSelf(const ProfNode &n)
{
    Cycles total = n.selfCycles;
    for (const auto &c : n.children)
        total += sumSelf(*c);
    return total;
}

void
collapse(const ProfNode &n, const std::string &stack, std::string &out)
{
    if (n.selfCycles > 0) {
        out += stack.empty() ? "(unattributed)" : stack;
        out += ' ';
        out += std::to_string(n.selfCycles);
        out += '\n';
    }
    for (const auto &c : n.children) {
        std::string frame =
            stack.empty() ? c->name : stack + ';' + c->name;
        collapse(*c, frame, out);
    }
}

} // namespace

Cycles
Profiler::sumOfLeaves() const
{
    return sumSelf(rootNode);
}

Json
Profiler::toJson() const
{
    return rootNode.toJson();
}

std::string
Profiler::collapsedStacks(const std::string &prefix) const
{
    std::string out;
    collapse(rootNode, prefix, out);
    return out;
}

ProfNode *
Profiler::push(const char *name)
{
    cur = cur->child(name);
    cur->entries += 1;
    return cur;
}

void
Profiler::pop(ProfNode *node, Cycles entry_attributed,
              std::uint64_t entry_generation)
{
    // The tree was cleared while this scope was alive: its node is
    // gone; detach without touching freed memory.
    if (entry_generation != generation)
        return;
    node->spans.sample(attributed - entry_attributed);
    cur = node->parent ? node->parent : &rootNode;
}

} // namespace aosd
