/**
 * @file
 * Fixed-bucket log2 histogram for cycle counts.
 *
 * The profiler needs per-leaf latency distributions (p50/p90/p99 of a
 * span's cycles) without allocating per sample. Values land in one of
 * 65 power-of-two buckets: bucket 0 holds exactly the value 0, bucket
 * i >= 1 holds [2^(i-1), 2^i). Exact count/sum/min/max ride along so
 * the mean is precise and percentile interpolation can be clamped to
 * the observed range (a histogram whose samples are all one value
 * reports that value exactly).
 */

#ifndef AOSD_SIM_PROFILE_HISTOGRAM_HH
#define AOSD_SIM_PROFILE_HISTOGRAM_HH

#include <array>
#include <cstdint>

#include "sim/json.hh"

namespace aosd
{

/** Log2-bucketed distribution of unsigned 64-bit samples. */
class Histogram
{
  public:
    /** Bucket 0 plus one bucket per bit position. */
    static constexpr std::size_t bucketCount = 65;

    /** Bucket a value falls into: 0 for 0, else 1 + floor(log2(v)). */
    static std::size_t bucketIndex(std::uint64_t v);

    /** Smallest value belonging to bucket `i`. */
    static std::uint64_t bucketLowerBound(std::size_t i);

    /** Largest value belonging to bucket `i`. */
    static std::uint64_t bucketUpperBound(std::size_t i);

    void sample(std::uint64_t v);

    /** Fold `k` identical samples of `v` in one update — exactly
     *  equivalent to calling sample(v) k times (the batch charger's
     *  closed-form histogram path). k == 0 is a no-op. */
    void sampleN(std::uint64_t v, std::uint64_t k);

    void reset();

    /** Fold another histogram's samples into this one (bucket counts,
     *  count and sum add; min/max combine). Associative with the empty
     *  histogram as identity — the shard-merge requirement. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return n; }
    std::uint64_t total() const { return sum; }
    /** 0 when empty (documented, never NaN). */
    double mean() const;
    std::uint64_t min() const { return n ? lo : 0; }
    std::uint64_t max() const { return n ? hi : 0; }
    std::uint64_t bucket(std::size_t i) const { return counts[i]; }

    /**
     * Value at percentile `p` (0..100). The sample of rank
     * ceil(p/100 * n) is located in its bucket; the bucket's bounds are
     * clamped to the observed min/max and the result interpolated
     * linearly across the bucket's samples. Empty histogram: 0.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }

    /** {"count":..,"sum":..,"min":..,"max":..,"p50":..,...}. */
    Json toJson() const;

  private:
    std::array<std::uint64_t, bucketCount> counts{};
    std::uint64_t n = 0;
    std::uint64_t sum = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
};

} // namespace aosd

#endif // AOSD_SIM_PROFILE_HISTOGRAM_HH
