#include "sim/profile/histogram.hh"

#include <algorithm>

namespace aosd
{

std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v == 0)
        return 0;
    std::size_t bits = 0;
    while (v) {
        v >>= 1;
        ++bits;
    }
    return bits; // 1 + floor(log2(v))
}

std::uint64_t
Histogram::bucketLowerBound(std::size_t i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

void
Histogram::sample(std::uint64_t v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++counts[bucketIndex(v)];
    ++n;
    sum += v;
}

void
Histogram::sampleN(std::uint64_t v, std::uint64_t k)
{
    if (k == 0)
        return;
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    counts[bucketIndex(v)] += k;
    n += k;
    sum += v * k;
}

void
Histogram::reset()
{
    counts.fill(0);
    n = sum = lo = hi = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    for (std::size_t i = 0; i < bucketCount; ++i)
        counts[i] += other.counts[i];
    n += other.n;
    sum += other.sum;
}

double
Histogram::mean() const
{
    return n ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (n == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the percentile sample, 1-based, at least 1.
    auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(n) + 0.9999999999);
    rank = std::clamp<std::uint64_t>(rank, 1, n);

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bucketCount; ++i) {
        if (counts[i] == 0)
            continue;
        if (cum + counts[i] < rank) {
            cum += counts[i];
            continue;
        }
        // The rank-th sample lies in bucket i.
        std::uint64_t blo = std::max(bucketLowerBound(i), lo);
        std::uint64_t bhi = std::min(bucketUpperBound(i), hi);
        if (bhi < blo)
            bhi = blo;
        std::uint64_t pos = rank - cum; // 1..counts[i]
        if (counts[i] <= 1 || bhi == blo)
            return static_cast<double>(blo);
        return static_cast<double>(blo) +
               static_cast<double>(bhi - blo) *
                   static_cast<double>(pos - 1) /
                   static_cast<double>(counts[i] - 1);
    }
    return static_cast<double>(hi);
}

Json
Histogram::toJson() const
{
    Json out = Json::object();
    out.set("count", Json(n));
    out.set("sum", Json(sum));
    out.set("min", Json(min()));
    out.set("max", Json(max()));
    out.set("mean", Json(mean()));
    out.set("p50", Json(p50()));
    out.set("p90", Json(p90()));
    out.set("p99", Json(p99()));
    out.set("p999", Json(p999()));
    return out;
}

} // namespace aosd
