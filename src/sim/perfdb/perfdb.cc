#include "sim/perfdb/perfdb.hh"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

namespace aosd
{

namespace
{

std::string
stringField(const Json &rec, const char *key)
{
    const Json *v = rec.find(key);
    return v && v->isString() ? v->asString() : std::string();
}

} // namespace

PerfDbRecord::PerfDbRecord(Json rec)
    : rec_(std::move(rec)), id_(PerfDb::recordId(rec_))
{}

std::string
PerfDbRecord::commit() const
{
    return stringField(rec_, "commit");
}

std::string
PerfDbRecord::timestamp() const
{
    return stringField(rec_, "timestamp");
}

std::string
PerfDbRecord::host() const
{
    return stringField(rec_, "host");
}

std::string
PerfDbRecord::buildFlags() const
{
    return stringField(rec_, "build_flags");
}

const Json *
PerfDbRecord::doc(const std::string &name) const
{
    const Json *docs = rec_.find("docs");
    if (!docs || !docs->isObject())
        return nullptr;
    // "bench.<suite>" addresses one suite inside the bench group.
    if (name.rfind("bench.", 0) == 0) {
        const Json *bench = docs->find("bench");
        if (!bench || !bench->isObject())
            return nullptr;
        return bench->find(name.substr(6));
    }
    return docs->find(name);
}

std::vector<std::string>
PerfDbRecord::docNames() const
{
    std::vector<std::string> names;
    const Json *docs = rec_.find("docs");
    if (!docs || !docs->isObject())
        return names;
    for (const auto &[key, value] : docs->items()) {
        if (key == "bench" && value.isObject()) {
            for (const auto &[suite, doc] : value.items()) {
                (void)doc;
                names.push_back("bench." + suite);
            }
        } else {
            names.push_back(key);
        }
    }
    return names;
}

std::string
PerfDb::recordId(const Json &rec)
{
    return stringField(rec, "commit") + "@" +
           stringField(rec, "timestamp");
}

std::string
PerfDb::validateRecord(const Json &rec)
{
    if (!rec.isObject())
        return "record is not a JSON object";
    const Json *ver = rec.find("schema_version");
    if (!ver || !ver->isNumber())
        return "schema_version: missing or not a number";
    if (ver->asNumber() != perfDbSchemaVersion)
        return "schema_version: expected " +
               std::to_string(perfDbSchemaVersion) + ", got " +
               std::to_string(static_cast<long>(ver->asNumber()));
    const Json *kind = rec.find("kind");
    if (!kind || !kind->isString() ||
        kind->asString() != "aosd-perfdb-record")
        return "kind: expected \"aosd-perfdb-record\"";
    for (const char *key : {"commit", "timestamp", "host",
                            "build_flags"}) {
        const Json *v = rec.find(key);
        if (!v || !v->isString() || v->asString().empty())
            return std::string(key) + ": missing or empty";
    }
    const Json *id = rec.find("id");
    if (!id || !id->isString() || id->asString() != recordId(rec))
        return "id: must be \"<commit>@<timestamp>\"";
    const Json *docs = rec.find("docs");
    if (!docs || !docs->isObject())
        return "docs: missing or not an object";
    if (docs->items().empty())
        return "docs: a record must carry at least one document";
    for (const auto &[name, doc] : docs->items())
        if (!doc.isObject())
            return "docs." + name + ": not an object";
    return "";
}

bool
PerfDb::loadFromString(const std::string &text, std::string *error)
{
    records_.clear();
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string parse_error;
        Json rec = Json::parse(line, &parse_error);
        if (rec.isNull()) {
            if (error)
                *error = "line " + std::to_string(lineno) + ": " +
                         (parse_error.empty() ? "null record"
                                              : parse_error);
            records_.clear();
            return false;
        }
        std::string why;
        if (!append(std::move(rec), &why)) {
            if (error)
                *error =
                    "line " + std::to_string(lineno) + ": " + why;
            records_.clear();
            return false;
        }
    }
    return true;
}

bool
PerfDb::load(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot read " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return loadFromString(buf.str(), error);
}

bool
PerfDb::append(Json rec, std::string *error)
{
    std::string why = validateRecord(rec);
    if (!why.empty()) {
        if (error)
            *error = "invalid record: " + why;
        return false;
    }
    std::string id = recordId(rec);
    for (const PerfDbRecord &existing : records_) {
        if (existing.id() == id) {
            if (error)
                *error = "duplicate record id " + id +
                         " (use --replace to re-record this run)";
            return false;
        }
    }
    records_.emplace_back(std::move(rec));
    return true;
}

bool
PerfDb::remove(const std::string &id)
{
    for (auto it = records_.begin(); it != records_.end(); ++it) {
        if (it->id() == id) {
            records_.erase(it);
            return true;
        }
    }
    return false;
}

std::string
PerfDb::toJsonl() const
{
    std::string out;
    for (const PerfDbRecord &rec : records_) {
        out += rec.json().dump();
        out += '\n';
    }
    return out;
}

bool
PerfDb::save(const std::string &path, std::string *error) const
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    out << toJsonl();
    return true;
}

const PerfDbRecord *
PerfDb::resolve(const std::string &ref, std::string *error) const
{
    if (records_.empty()) {
        if (error)
            *error = "database is empty";
        return nullptr;
    }
    if (ref == "latest" || ref == "-1")
        return &records_.back();
    if (ref.size() > 1 && ref[0] == '-') {
        // "-N": N records back from the end.
        std::size_t n = 0;
        bool numeric = true;
        for (std::size_t i = 1; i < ref.size(); ++i) {
            if (ref[i] < '0' || ref[i] > '9') {
                numeric = false;
                break;
            }
            n = n * 10 + static_cast<std::size_t>(ref[i] - '0');
        }
        if (numeric) {
            if (n == 0 || n > records_.size()) {
                if (error)
                    *error = ref + ": only " +
                             std::to_string(records_.size()) +
                             " record(s) in the database";
                return nullptr;
            }
            return &records_[records_.size() - n];
        }
    }
    for (const PerfDbRecord &rec : records_)
        if (rec.id() == ref)
            return &rec;
    // A commit or commit prefix: the newest matching run wins, and a
    // prefix matching several *different* commits is ambiguous.
    const PerfDbRecord *match = nullptr;
    std::set<std::string> commits;
    for (const PerfDbRecord &rec : records_) {
        if (rec.commit().rfind(ref, 0) == 0) {
            match = &rec;
            commits.insert(rec.commit());
        }
    }
    if (commits.size() > 1) {
        if (error) {
            *error = ref + ": ambiguous, matches " +
                     std::to_string(commits.size()) + " commits (";
            bool first = true;
            for (const std::string &c : commits) {
                if (!first)
                    *error += ", ";
                *error += c;
                first = false;
            }
            *error += ")";
        }
        return nullptr;
    }
    if (!match && error)
        *error = ref + ": no record with this id, commit or index";
    return match;
}

Json
summarizeNumericArrays(const Json &doc)
{
    switch (doc.kind()) {
      case Json::Kind::Object: {
          Json out = Json::object();
          for (const auto &[key, value] : doc.items())
              out.set(key, summarizeNumericArrays(value));
          return out;
      }
      case Json::Kind::Array: {
          bool all_numbers = doc.size() > 0;
          for (std::size_t i = 0; i < doc.size(); ++i)
              if (!doc.at(i).isNumber())
                  all_numbers = false;
          if (!all_numbers) {
              Json out = Json::array();
              for (std::size_t i = 0; i < doc.size(); ++i)
                  out.push(summarizeNumericArrays(doc.at(i)));
              return out;
          }
          double sum = 0, lo = doc.at(0).asNumber(),
                 hi = doc.at(0).asNumber();
          for (std::size_t i = 0; i < doc.size(); ++i) {
              double v = doc.at(i).asNumber();
              sum += v;
              lo = std::min(lo, v);
              hi = std::max(hi, v);
          }
          Json digest = Json::object();
          digest.set("n", Json(static_cast<std::uint64_t>(doc.size())));
          digest.set("mean", Json(sum / static_cast<double>(doc.size())));
          digest.set("min", Json(lo));
          digest.set("max", Json(hi));
          digest.set("last", Json(doc.at(doc.size() - 1).asNumber()));
          return digest;
      }
      default:
        return doc;
    }
}

} // namespace aosd
