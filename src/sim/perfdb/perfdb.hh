/**
 * @file
 * Append-only performance database: one JSONL record per run.
 *
 * Every CI run (and any local run worth keeping) produces one-shot
 * evidence — report.json, counters.json, timeseries.json,
 * profile.json, BENCH_*.json — that used to vanish when the run ended.
 * This store accumulates them: each line of the database is one
 * schema-versioned record keyed by (commit, timestamp), carrying the
 * run's metadata and its ingested documents. The format is JSONL so
 * appending a run never rewrites history and `git diff` on a committed
 * database shows exactly the runs that were added.
 *
 * Record schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "kind": "aosd-perfdb-record",
 *     "id": "<commit>@<timestamp>",
 *     "commit": "<sha or label>",
 *     "timestamp": "<ISO 8601>",
 *     "host": "<machine label>",
 *     "build_flags": "<compiler/config label>",
 *     "docs": {
 *       "report": {...}, "counters": {...}, "kernel_windows": {...},
 *       "profile": {...}, "timeseries_summary": {...},
 *       "bench": {"<suite>": {...}, ...}
 *     }
 *   }
 *
 * The schema is append-only: new doc names may appear, existing ones
 * keep their meaning. Records are immutable once written; a re-run of
 * the same commit replaces its record explicitly (tools pass
 * `--replace`), never silently.
 *
 * This layer is pure storage — metric extraction, rolling statistics
 * and the regression band live in study/trend_report.
 */

#ifndef AOSD_SIM_PERFDB_HH
#define AOSD_SIM_PERFDB_HH

#include <string>
#include <vector>

#include "sim/json.hh"

namespace aosd
{

/** Current perfdb record schema version. */
inline constexpr int perfDbSchemaVersion = 1;

/** One run's evidence: metadata plus the ingested documents. */
class PerfDbRecord
{
  public:
    explicit PerfDbRecord(Json rec);

    const Json &json() const { return rec_; }
    /** "<commit>@<timestamp>", unique within a database. */
    const std::string &id() const { return id_; }
    std::string commit() const;
    std::string timestamp() const;
    std::string host() const;
    std::string buildFlags() const;

    /** Stored document by name ("report", "counters",
     *  "kernel_windows", "profile", "timeseries_summary",
     *  "bench.<suite>"); nullptr when the run did not ingest it. */
    const Json *doc(const std::string &name) const;
    /** Names of every stored document, in record order
     *  (bench suites as "bench.<suite>"). */
    std::vector<std::string> docNames() const;

  private:
    Json rec_;
    std::string id_;
};

/** The database: an ordered list of records, oldest first. */
class PerfDb
{
  public:
    /** "" when `rec` is a valid v1 record, else the reason, prefixed
     *  with the dotted path of the offending field. */
    static std::string validateRecord(const Json &rec);

    /** The id a valid record object carries: "<commit>@<timestamp>". */
    static std::string recordId(const Json &rec);

    /** Parse a JSONL database file. A malformed line, invalid record
     *  or duplicate id fails the whole load with a line-numbered
     *  reason: a corrupt history must not be silently truncated. */
    bool load(const std::string &path, std::string *error = nullptr);
    bool loadFromString(const std::string &text,
                        std::string *error = nullptr);

    /** Append in memory. Invalid records and duplicate ids are
     *  rejected with a reason. */
    bool append(Json rec, std::string *error = nullptr);

    /** Drop the record with `id` (used by --replace). */
    bool remove(const std::string &id);

    /** One compact line per record, each newline-terminated. */
    std::string toJsonl() const;
    /** Rewrite the whole database (only --replace needs this; plain
     *  ingest appends the one new line itself). */
    bool save(const std::string &path,
              std::string *error = nullptr) const;

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const PerfDbRecord &at(std::size_t i) const { return records_[i]; }
    const std::vector<PerfDbRecord> &records() const { return records_; }

    /**
     * Resolve a record reference: an exact id, "latest", a negative
     * index ("-1" = latest, "-2" = one before), or a commit / unique
     * commit prefix (the newest matching record wins, so "deadbeef"
     * names that commit's most recent run). nullptr with a reason when
     * nothing (or something ambiguous across commits) matches.
     */
    const PerfDbRecord *resolve(const std::string &ref,
                                std::string *error = nullptr) const;

  private:
    std::vector<PerfDbRecord> records_;
};

/**
 * Deep-copy `doc` with every all-numeric array replaced by a
 * {"n","mean","min","max","last"} digest. Ingest applies this to
 * timeseries.json (3+ MB of per-interval samples) so a record stays a
 * few tens of KB while the per-series trends remain queryable.
 */
Json summarizeNumericArrays(const Json &doc);

} // namespace aosd

#endif // AOSD_SIM_PERFDB_HH
