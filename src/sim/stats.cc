#include "sim/stats.hh"

#include <cmath>
#include <sstream>

namespace aosd
{

double
Distribution::variance() const
{
    if (n < 2)
        return 0.0;
    double mu = mean();
    double var = (sumSq - static_cast<double>(n) * mu * mu) /
                 static_cast<double>(n - 1);
    // Catastrophic cancellation in sumSq can go slightly negative (or
    // NaN for extreme inputs); clamp so stddev() stays finite.
    return std::isfinite(var) && var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

StatGroup::StatGroup(std::string group_name)
    : name(std::move(group_name))
{
    StatRegistry::instance().add(this);
}

StatGroup::StatGroup(const StatGroup &o)
    : name(o.name), counters(o.counters)
{
    StatRegistry::instance().add(this);
}

StatGroup::StatGroup(StatGroup &&o)
    : name(std::move(o.name)), counters(std::move(o.counters))
{
    StatRegistry::instance().add(this);
}

StatGroup &
StatGroup::operator=(const StatGroup &o)
{
    // Registration follows the object's address, not its contents.
    name = o.name;
    counters = o.counters;
    return *this;
}

StatGroup &
StatGroup::operator=(StatGroup &&o)
{
    name = std::move(o.name);
    counters = std::move(o.counters);
    return *this;
}

StatGroup::~StatGroup()
{
    StatRegistry::instance().remove(this);
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters)
        os << name << '.' << kv.first << " = " << kv.second << '\n';
    return os.str();
}

Json
StatGroup::toJson() const
{
    Json c = Json::object();
    for (const auto &kv : counters)
        c.set(kv.first, Json(kv.second));
    Json out = Json::object();
    out.set("name", Json(name));
    out.set("counters", std::move(c));
    return out;
}

StatGroup
StatGroup::fromJson(const Json &j)
{
    StatGroup g(j.at("name").asString());
    for (const auto &kv : j.at("counters").items())
        g.inc(kv.first, kv.second.asUint());
    return g;
}

StatRegistry &
StatRegistry::instance()
{
    thread_local StatRegistry registry;
    return registry;
}

const StatGroup *
StatRegistry::findGroup(const std::string &name) const
{
    for (StatGroup *g : live)
        if (g->groupName() == name)
            return g;
    return nullptr;
}

void
StatRegistry::resetAll()
{
    for (StatGroup *g : live)
        g->reset();
    retired.clear();
}

void
StatRegistry::setRetainRetired(bool retain)
{
    retainRetired = retain;
    if (!retain)
        retired.clear();
}

Json
StatRegistry::toJson() const
{
    Json groups = Json::array();
    for (const StatGroup *g : live)
        groups.push(g->toJson());
    for (const auto &rkv : retired) {
        Json c = Json::object();
        for (const auto &kv : rkv.second)
            c.set(kv.first, Json(kv.second));
        Json g = Json::object();
        g.set("name", Json(rkv.first + ".retired"));
        g.set("counters", std::move(c));
        groups.push(std::move(g));
    }
    Json out = Json::object();
    out.set("stat_groups", std::move(groups));
    return out;
}

FlatStats
StatRegistry::flatten() const
{
    FlatStats flat = retired;
    for (const StatGroup *g : live)
        for (const auto &kv : g->all())
            flat[g->groupName()][kv.first] += kv.second;
    return flat;
}

void
StatRegistry::absorbRetired(const FlatStats &flat)
{
    retainRetired = true;
    for (const auto &gkv : flat)
        for (const auto &kv : gkv.second)
            retired[gkv.first][kv.first] += kv.second;
}

std::vector<StatGroup>
StatRegistry::parseSnapshot(const Json &j)
{
    std::vector<StatGroup> out;
    const Json &groups = j.at("stat_groups");
    for (std::size_t i = 0; i < groups.size(); ++i)
        out.push_back(StatGroup::fromJson(groups.at(i)));
    return out;
}

void
StatRegistry::remove(StatGroup *g)
{
    if (retainRetired)
        for (const auto &kv : g->all())
            retired[g->groupName()][kv.first] += kv.second;
    for (auto it = live.begin(); it != live.end(); ++it) {
        if (*it == g) {
            live.erase(it);
            return;
        }
    }
}

} // namespace aosd
