#include "sim/stats.hh"

#include <cmath>
#include <sstream>

namespace aosd
{

double
Distribution::variance() const
{
    if (n < 2)
        return 0.0;
    double mu = mean();
    double var = (sumSq - static_cast<double>(n) * mu * mu) /
                 static_cast<double>(n - 1);
    return var < 0.0 ? 0.0 : var;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters)
        os << name << '.' << kv.first << " = " << kv.second << '\n';
    return os.str();
}

} // namespace aosd
