/**
 * @file
 * Low-overhead cycle-stamped event tracer.
 *
 * The paper's method is instrumentation: the authors counted every
 * trap, system call, context switch and TLB miss inside Mach to build
 * Table 7. The tracer extends that from counts to timelines — each OS
 * and memory-system event is recorded with the cycle it happened at,
 * into a fixed-size ring buffer that overwrites the oldest records
 * when full (tracing never allocates on the hot path and never stops
 * the simulation).
 *
 * Tracing is off by default; when disabled every record call is a
 * single predictable branch (trcdetail::on, the ctrdetail::on /
 * profdetail::on pattern). The buffer exports to the chrome://tracing
 * / Perfetto JSON format, with cycles as the time unit.
 *
 * Tracer state is per thread: every simulation slice (see
 * sim/parallel/parallel_runner.hh) owns its own ring and clock, so
 * parallel jobs never interleave records. Tracer::instance() is the
 * calling thread's tracer.
 */

#ifndef AOSD_SIM_TRACE_HH
#define AOSD_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/ticks.hh"

namespace aosd
{

/** What happened. One enumerator per instrumented event source. */
enum class TraceEvent : std::uint8_t
{
    TrapEnter,        ///< hardware trap/exception entry
    TrapExit,         ///< return from trap
    Syscall,          ///< system call (trap + prep + C call)
    ContextSwitch,    ///< address-space switch
    ThreadSwitch,     ///< same-space thread switch
    TlbMiss,          ///< translation missed; arg = refill cycles
    TlbFill,          ///< entry inserted; arg = vpn
    TlbPurge,         ///< full/asid purge; arg = entries dropped
    WriteBufferStall, ///< store stalled; arg = stall cycles
    CacheMiss,        ///< cache line miss; arg = miss cycles
    CacheFlush,       ///< cache flush sweep; arg = lines flushed
    WindowOverflow,   ///< SPARC register-window overflow trap
    WindowUnderflow,  ///< SPARC register-window underflow trap
    ExecPhase,        ///< handler-program phase (Table 5 phases)
    RpcPhase,         ///< RPC/LRPC component phase (Tables 3/4)
    EmulatedInstr,    ///< kernel instruction emulation; arg = count
    Counter,          ///< counter-track sample; arg = series value
    Mark,             ///< free-form user marker
};

const char *traceEventName(TraceEvent e);

/** Which timeline lane (chrome tid) an event renders in. Events from
 *  one component share a lane so chrome://tracing / Perfetto shows
 *  per-component tracks instead of one interleaved row. */
int traceEventLane(TraceEvent e);

/** Human-readable lane name ("mem/tlb"), emitted as thread_name
 *  metadata so the UI labels the track. */
const char *traceLaneName(int lane);

namespace trcdetail
{
/** The tracer's on/off flag. Namespace-scope and thread-local (not a
 *  member behind Tracer::instance()) so the disabled fast path in the
 *  execution model's per-op loop is one predictable branch with no
 *  function-local-static guard, and so each simulation slice traces
 *  independently. */
extern thread_local bool on;
} // namespace trcdetail

/** Cheapest possible "is tracing on?" check for hot paths. Guards the
 *  Tracer::instance() call itself, so a disabled tracer costs one
 *  thread-local load and a branch. */
inline bool
tracerEnabled()
{
    return trcdetail::on;
}

/** Chrome trace phase: B(egin), E(nd), X (complete), i (instant),
 *  C (counter sample), M (metadata — generated at export only). */
enum class TracePhase : char
{
    Begin = 'B',
    End = 'E',
    Complete = 'X',
    Instant = 'i',
    Counter = 'C',
    Metadata = 'M',
};

/** One ring-buffer slot. `name` must point at storage that outlives
 *  the tracer (string literals in practice). */
struct TraceRecord
{
    Cycles cycle = 0;
    Cycles duration = 0;      ///< Complete events only
    std::uint64_t arg = 0;
    const char *name = nullptr;
    TraceEvent event = TraceEvent::Mark;
    TracePhase phase = TracePhase::Instant;
};

/**
 * Per-thread tracer (one per simulation slice). Enable with a
 * capacity, drive the clock from whichever component owns time at the
 * moment (SimKernel, ExecModel, the IPC models), and export.
 */
class Tracer
{
  public:
    /** The calling thread's tracer. */
    static Tracer &instance();

    /** Start tracing into a fresh ring of `capacity` records. */
    void enable(std::size_t capacity = 1 << 16);

    /** Stop tracing; the buffer remains readable until enable(). */
    void disable() { trcdetail::on = false; }

    bool enabled() const { return trcdetail::on; }

    /** Advance the trace clock; records without an explicit cycle are
     *  stamped with the latest value. Never moves backwards. */
    void
    setCycle(Cycles c)
    {
        if (c > now)
            now = c;
    }

    Cycles cycle() const { return now; }

    /** Record at the current trace clock. */
    void
    record(TraceEvent e, TracePhase ph, const char *name,
           std::uint64_t arg = 0, Cycles duration = 0)
    {
        if (!trcdetail::on)
            return;
        push({now, duration, arg, name, e, ph});
    }

    /** Record at an explicit cycle. Emitters track their own local
     *  cycle domains, so the stamp is clamped to the monotonic trace
     *  clock: an explicit cycle can advance the timeline but never
     *  produce a record that is out of order with what came before. */
    void
    recordAt(Cycles cycle, TraceEvent e, TracePhase ph,
             const char *name, std::uint64_t arg = 0,
             Cycles duration = 0)
    {
        if (!trcdetail::on)
            return;
        setCycle(cycle);
        push({now, duration, arg, name, e, ph});
    }

    /** Convenience wrappers. */
    void
    instant(TraceEvent e, const char *name, std::uint64_t arg = 0)
    {
        record(e, TracePhase::Instant, name, arg);
    }

    /** Sample a counter track at the current clock: renders as a
     *  time-series lane ("C" phase) named `series` with value
     *  `value` (write-buffer occupancy, cumulative miss counts...). */
    void
    counter(const char *series, std::uint64_t value)
    {
        record(TraceEvent::Counter, TracePhase::Counter, series,
               value);
    }

    void
    complete(Cycles start, Cycles duration, TraceEvent e,
             const char *name, std::uint64_t arg = 0)
    {
        if (!trcdetail::on)
            return;
        recordAt(start, e, TracePhase::Complete, name, arg, duration);
        setCycle(now + duration);
    }

    /** Complete event starting at the current clock; advances it. */
    void
    completeHere(Cycles duration, TraceEvent e, const char *name,
                 std::uint64_t arg = 0)
    {
        complete(now, duration, e, name, arg);
    }

    // ---- inspection -----------------------------------------------
    /** Records currently held (<= capacity). */
    std::size_t size() const { return count; }

    std::size_t capacity() const { return ring.size(); }

    /** Records lost to ring overwrite since enable(). */
    std::uint64_t dropped() const { return droppedCount; }

    /** i-th surviving record, oldest first. */
    const TraceRecord &at(std::size_t i) const;

    /** Copy out the surviving records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /** Drop all records (capacity and enablement unchanged). */
    void clear();

    // ---- export ---------------------------------------------------
    /** chrome://tracing JSON document ("traceEvents" array; "ts" and
     *  "dur" are cycles). */
    Json toChromeJson() const;

    /** toChromeJson() pretty-printed, ready to write to a file. */
    std::string exportChromeTracing() const;

  private:
    void
    push(TraceRecord r)
    {
        if (count == ring.size()) {
            // Overwrite the oldest record.
            head = (head + 1) % ring.size();
            ++droppedCount;
            --count;
        }
        ring[(head + count) % ring.size()] = r;
        ++count;
    }

    Cycles now = 0;
    std::size_t head = 0;   ///< index of the oldest record
    std::size_t count = 0;  ///< live records
    std::uint64_t droppedCount = 0;
    std::vector<TraceRecord> ring;
};

/** RAII scope that emits Begin on entry and End on exit at the
 *  tracer's current clock. */
class TraceScope
{
  public:
    TraceScope(TraceEvent e, const char *scope_name)
        : event(e), name(scope_name)
    {
        if (tracerEnabled())
            Tracer::instance().record(event, TracePhase::Begin, name);
    }

    ~TraceScope()
    {
        if (tracerEnabled())
            Tracer::instance().record(event, TracePhase::End, name);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceEvent event;
    const char *name;
};

} // namespace aosd

#endif // AOSD_SIM_TRACE_HH
