#include "sim/trace.hh"

#include "sim/logging.hh"

namespace aosd
{

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::TrapEnter:
        return "trap_enter";
      case TraceEvent::TrapExit:
        return "trap_exit";
      case TraceEvent::Syscall:
        return "syscall";
      case TraceEvent::ContextSwitch:
        return "context_switch";
      case TraceEvent::ThreadSwitch:
        return "thread_switch";
      case TraceEvent::TlbMiss:
        return "tlb_miss";
      case TraceEvent::TlbFill:
        return "tlb_fill";
      case TraceEvent::TlbPurge:
        return "tlb_purge";
      case TraceEvent::WriteBufferStall:
        return "write_buffer_stall";
      case TraceEvent::CacheMiss:
        return "cache_miss";
      case TraceEvent::ExecPhase:
        return "exec_phase";
      case TraceEvent::RpcPhase:
        return "rpc_phase";
      case TraceEvent::EmulatedInstr:
        return "emulated_instr";
      case TraceEvent::Mark:
        return "mark";
    }
    return "unknown";
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(std::size_t cap)
{
    if (cap == 0)
        fatal("trace ring needs at least one slot");
    ring.assign(cap, TraceRecord{});
    head = 0;
    count = 0;
    droppedCount = 0;
    now = 0;
    on = true;
}

const TraceRecord &
Tracer::at(std::size_t i) const
{
    if (i >= count)
        fatal("trace record index out of range");
    return ring[(head + i) % ring.size()];
}

std::vector<TraceRecord>
Tracer::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(at(i));
    return out;
}

void
Tracer::clear()
{
    head = 0;
    count = 0;
    droppedCount = 0;
    now = 0;
}

Json
Tracer::toChromeJson() const
{
    Json events = Json::array();
    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord &r = at(i);
        Json ev = Json::object();
        ev.set("name", Json(r.name ? r.name : traceEventName(r.event)));
        ev.set("cat", Json(traceEventName(r.event)));
        ev.set("ph", Json(std::string(1, static_cast<char>(r.phase))));
        ev.set("ts", Json(r.cycle));
        if (r.phase == TracePhase::Complete)
            ev.set("dur", Json(r.duration));
        if (r.phase == TracePhase::Instant)
            ev.set("s", Json("g")); // global-scope instant
        ev.set("pid", Json(1));
        ev.set("tid", Json(1));
        Json args = Json::object();
        args.set("arg", Json(r.arg));
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ns")); // 1 "ns" == 1 cycle here
    Json meta = Json::object();
    meta.set("time_unit", Json("cycles"));
    meta.set("dropped_records", Json(droppedCount));
    doc.set("otherData", std::move(meta));
    return doc;
}

std::string
Tracer::exportChromeTracing() const
{
    return toChromeJson().dump(1);
}

} // namespace aosd
