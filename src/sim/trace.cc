#include "sim/trace.hh"

#include "sim/logging.hh"

namespace aosd
{

namespace trcdetail
{
thread_local bool on = false;
} // namespace trcdetail

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::TrapEnter:
        return "trap_enter";
      case TraceEvent::TrapExit:
        return "trap_exit";
      case TraceEvent::Syscall:
        return "syscall";
      case TraceEvent::ContextSwitch:
        return "context_switch";
      case TraceEvent::ThreadSwitch:
        return "thread_switch";
      case TraceEvent::TlbMiss:
        return "tlb_miss";
      case TraceEvent::TlbFill:
        return "tlb_fill";
      case TraceEvent::TlbPurge:
        return "tlb_purge";
      case TraceEvent::WriteBufferStall:
        return "write_buffer_stall";
      case TraceEvent::CacheMiss:
        return "cache_miss";
      case TraceEvent::CacheFlush:
        return "cache_flush";
      case TraceEvent::WindowOverflow:
        return "window_overflow";
      case TraceEvent::WindowUnderflow:
        return "window_underflow";
      case TraceEvent::ExecPhase:
        return "exec_phase";
      case TraceEvent::RpcPhase:
        return "rpc_phase";
      case TraceEvent::EmulatedInstr:
        return "emulated_instr";
      case TraceEvent::Counter:
        return "counter";
      case TraceEvent::Mark:
        return "mark";
    }
    return "unknown";
}

int
traceEventLane(TraceEvent e)
{
    switch (e) {
      case TraceEvent::ExecPhase:
        return 1;
      case TraceEvent::WindowOverflow:
      case TraceEvent::WindowUnderflow:
        return 2;
      case TraceEvent::TrapEnter:
      case TraceEvent::TrapExit:
      case TraceEvent::Syscall:
      case TraceEvent::ContextSwitch:
      case TraceEvent::ThreadSwitch:
      case TraceEvent::EmulatedInstr:
        return 3;
      case TraceEvent::RpcPhase:
        return 4;
      case TraceEvent::TlbMiss:
      case TraceEvent::TlbFill:
      case TraceEvent::TlbPurge:
        return 5;
      case TraceEvent::CacheMiss:
      case TraceEvent::CacheFlush:
        return 6;
      case TraceEvent::WriteBufferStall:
        return 7;
      case TraceEvent::Counter:
        return 8;
      case TraceEvent::Mark:
        return 9;
    }
    return 9;
}

const char *
traceLaneName(int lane)
{
    switch (lane) {
      case 1:
        return "cpu/exec";
      case 2:
        return "cpu/reg_windows";
      case 3:
        return "os/kernel";
      case 4:
        return "os/ipc";
      case 5:
        return "mem/tlb";
      case 6:
        return "mem/cache";
      case 7:
        return "mem/write_buffer";
      case 8:
        return "counters";
      case 9:
        return "marks";
    }
    return "marks";
}

Tracer &
Tracer::instance()
{
    thread_local Tracer tracer;
    return tracer;
}

void
Tracer::enable(std::size_t cap)
{
    if (cap == 0)
        fatal("trace ring needs at least one slot");
    ring.assign(cap, TraceRecord{});
    head = 0;
    count = 0;
    droppedCount = 0;
    now = 0;
    trcdetail::on = true;
}

const TraceRecord &
Tracer::at(std::size_t i) const
{
    if (i >= count)
        fatal("trace record index out of range");
    return ring[(head + i) % ring.size()];
}

std::vector<TraceRecord>
Tracer::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(at(i));
    return out;
}

void
Tracer::clear()
{
    head = 0;
    count = 0;
    droppedCount = 0;
    now = 0;
}

Json
Tracer::toChromeJson() const
{
    Json events = Json::array();

    // Name the process and every lane in use, so the UI shows
    // component names ("mem/tlb") instead of bare tids. Metadata
    // events carry no timestamp and must precede the records.
    bool laneUsed[16] = {};
    for (std::size_t i = 0; i < count; ++i) {
        int lane = traceEventLane(at(i).event);
        laneUsed[lane % 16] = true;
    }
    {
        Json meta = Json::object();
        meta.set("name", Json("process_name"));
        meta.set("ph", Json("M"));
        meta.set("pid", Json(1));
        meta.set("tid", Json(0));
        Json args = Json::object();
        args.set("name", Json("aosd-sim"));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    for (int lane = 0; lane < 16; ++lane) {
        if (!laneUsed[lane])
            continue;
        Json meta = Json::object();
        meta.set("name", Json("thread_name"));
        meta.set("ph", Json("M"));
        meta.set("pid", Json(1));
        meta.set("tid", Json(lane));
        Json args = Json::object();
        args.set("name", Json(traceLaneName(lane)));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }

    for (std::size_t i = 0; i < count; ++i) {
        const TraceRecord &r = at(i);
        Json ev = Json::object();
        ev.set("name", Json(r.name ? r.name : traceEventName(r.event)));
        ev.set("cat", Json(traceEventName(r.event)));
        ev.set("ph", Json(std::string(1, static_cast<char>(r.phase))));
        ev.set("ts", Json(r.cycle));
        if (r.phase == TracePhase::Complete)
            ev.set("dur", Json(r.duration));
        if (r.phase == TracePhase::Instant)
            ev.set("s", Json("g")); // global-scope instant
        ev.set("pid", Json(1));
        ev.set("tid", Json(traceEventLane(r.event)));
        Json args = Json::object();
        if (r.phase == TracePhase::Counter)
            args.set("value", Json(r.arg)); // the series sample
        else
            args.set("arg", Json(r.arg));
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ns")); // 1 "ns" == 1 cycle here
    Json meta = Json::object();
    meta.set("time_unit", Json("cycles"));
    meta.set("dropped_records", Json(droppedCount));
    doc.set("otherData", std::move(meta));
    return doc;
}

std::string
Tracer::exportChromeTracing() const
{
    return toChromeJson().dump(1);
}

} // namespace aosd
