/**
 * @file
 * Discrete event queue.
 *
 * The network, DSM coherence protocol and multi-node RPC experiments run
 * on a classic discrete-event core: events are (tick, sequence, callback)
 * triples executed in time order, with the sequence number breaking ties
 * deterministically in scheduling order.
 */

#ifndef AOSD_SIM_EVENT_QUEUE_HH
#define AOSD_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.hh"

namespace aosd
{

/** A single scheduled event. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0;
    std::function<void()> action;
};

/**
 * Time-ordered event queue. Ties are broken by scheduling order so that
 * simulation results never depend on container iteration order.
 */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return heap.size(); }

    /** Schedule an action at an absolute tick (must be >= now()). */
    void schedule(Tick when, std::function<void()> action);

    /** Schedule an action delta ticks after now(). */
    void
    scheduleAfter(Tick delta, std::function<void()> action)
    {
        schedule(currentTick + delta, std::move(action));
    }

    /**
     * Run events until the queue is empty or the event limit is hit.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run events with time <= until.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap;
};

} // namespace aosd

#endif // AOSD_SIM_EVENT_QUEUE_HH
