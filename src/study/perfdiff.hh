/**
 * @file
 * Numeric diffing of two JSON performance documents.
 *
 * aosd_profile and aosd_report both emit trees of numeric figures
 * (cycles, microseconds, counts) keyed by stable object paths. A
 * run-to-run comparison is therefore one generic operation: flatten
 * both documents to path -> number, align the paths, and flag any
 * relative change beyond tolerance. tools/aosd_diff wraps this; the
 * CI regression gate runs it against checked-in expectations.
 */

#ifndef AOSD_STUDY_PERFDIFF_HH
#define AOSD_STUDY_PERFDIFF_HH

#include <string>
#include <vector>

#include "sim/json.hh"

namespace aosd
{

/** One numeric leaf: "machines.R2000.null_syscall.cycles_per_call". */
struct PerfLeaf
{
    std::string path;
    double value = 0;
};

/** One compared path (or a path present on only one side). */
struct PerfDelta
{
    enum class Kind
    {
        Changed, ///< both sides present, beyond tolerance
        Within,  ///< both sides present, within tolerance
        Missing, ///< in the old document only
        Added,   ///< in the new document only
    };

    Kind kind = Kind::Within;
    std::string path;
    double oldValue = 0;
    double newValue = 0;
    /** |new - old| / max(|old|, |new|); 0 when either side is absent. */
    double relDelta = 0;
};

/** Result of diffing two documents. */
struct PerfDiff
{
    std::vector<PerfDelta> deltas; ///< document order (old, then added)
    std::size_t compared = 0;      ///< paths present on both sides
    std::size_t regressions = 0;   ///< Changed + Missing + Added

    bool ok() const { return regressions == 0; }
};

/**
 * Depth-first flatten of every numeric leaf under `doc`. Object keys
 * join with '.', array elements with their index; non-numeric leaves
 * (strings, bools, nulls) are skipped. NaN leaves are skipped too:
 * report.json uses NaN-serialized-as-null for "paper has no value".
 */
std::vector<PerfLeaf> flattenNumericLeaves(const Json &doc);

/** A per-key relative-tolerance override: applies to every path whose
 *  last dotted segment equals `key` ("p999" matches
 *  "machines.R3000.trap.cycles.p999"). */
using KeyTolerances = std::vector<std::pair<std::string, double>>;

/**
 * Compare two documents leaf by leaf. A pair of values differs when
 * |new - old| > abs_tol and the relative delta exceeds rel_tol; paths
 * present on one side only always count as regressions. `key_tols`
 * overrides rel_tol per leaf key — the first matching entry wins —
 * so one noisy figure class (p999 of a 1000-sample histogram, say)
 * can run with a wider band than the rest of the document.
 */
PerfDiff diffPerfDocs(const Json &old_doc, const Json &new_doc,
                      double rel_tol, double abs_tol = 1e-9,
                      const KeyTolerances &key_tols = {});

/** The first place two documents disagree in *shape*. */
struct StructuralMismatch
{
    bool found = false;
    /** Dotted path of the mismatch ("" for the document roots). */
    std::string path;
    /** "missing key", "array length 10 -> 12", "object -> number". */
    std::string description;
};

/**
 * Depth-first parallel walk naming the first structural difference:
 * a key present on one side only, an array-length change, or a node
 * changing JSON kind. Schema drift between two supposedly-same-shape
 * documents (trend ingest, CI goldens) is then diagnosable from one
 * line instead of from hundreds of MISSING/ADDED leaves.
 */
StructuralMismatch firstStructuralMismatch(const Json &old_doc,
                                           const Json &new_doc);

} // namespace aosd

#endif // AOSD_STUDY_PERFDIFF_HH
