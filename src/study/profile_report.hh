/**
 * @file
 * The profile.json document: hierarchical cycle attribution for every
 * machine x primitive, plus the Table 5 anatomy derived from the
 * NullSyscall tree.
 *
 * tools/aosd_profile serializes this document;
 * tests/test_profile.cc diffs it against tests/expected_profile.json.
 * The document builder lives here (not in the tool) so the parallel
 * and serial paths share one implementation and the golden stays
 * byte-for-byte stable at any job count.
 */

#ifndef AOSD_STUDY_PROFILE_REPORT_HH
#define AOSD_STUDY_PROFILE_REPORT_HH

#include <string>
#include <vector>

#include "arch/machine_desc.hh"
#include "cpu/profiled_primitives.hh"
#include "sim/json.hh"

namespace aosd
{

class ParallelRunner;

/** All profiled runs for `machines` (every primitive, `reps` each),
 *  machine-major in `machines` order. */
std::vector<ProfiledPrimitiveRun>
profileAllPrimitives(const std::vector<MachineDesc> &machines,
                     unsigned reps);

/** The same grid with one (machine, primitive) session per runner
 *  job; runs come back machine-major as always (task-index merge). */
std::vector<ProfiledPrimitiveRun>
profileAllPrimitives(const std::vector<MachineDesc> &machines,
                     unsigned reps, ParallelRunner &runner);

/**
 * profile.json (schema version 1). `runs` must be the machine-major
 * grid profileAllPrimitives() returns for the same `machines`.
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "aosd_profile",
 *     "repetitions": R,
 *     "machines": {
 *       "<machine>": {
 *         "<primitive>": {
 *           "cycles_per_call": c, "us_per_call": us,
 *           "total_cycles": n, "attributed_cycles": n,
 *           "attribution_complete": true,
 *           "tree": { "self_cycles": ..., "total_cycles": ...,
 *                     "count": ..., "p50_cycles": ...,
 *                     "p90_cycles": ..., "p99_cycles": ...,
 *                     "children": { "<name>": { ... } } }
 *         }, ...
 *       }, ...
 *     },
 *     "table5_anatomy": {
 *       "<machine>": { "kernel_entry_exit_us": ..., "call_prep_us":
 *                      ..., "c_call_return_us": ..., "total_us": ... }
 *     }
 *   }
 */
Json buildProfileDoc(const std::vector<MachineDesc> &machines,
                     const std::vector<ProfiledPrimitiveRun> &runs,
                     unsigned reps);

/** Concatenated collapsed-stack lines of every run, in run order
 *  (flamegraph.pl / speedscope input). */
std::string foldedStacks(const std::vector<ProfiledPrimitiveRun> &runs);

} // namespace aosd

#endif // AOSD_STUDY_PROFILE_REPORT_HH
