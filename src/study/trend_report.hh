/**
 * @file
 * The trend layer over the perf database: record building, metric
 * extraction, rolling statistics, the regression band and the static
 * HTML dashboard.
 *
 * sim/perfdb stores runs; this module makes them comparable. Every
 * stored document is flattened to stable dotted metric paths (the same
 * machinery as study/perfdiff, with friendlier names where the raw
 * layout is index-based):
 *
 *   report.table1.context_switch_us.SPARC     (figure id, not index)
 *   report.summary.mean_abs_rel_error
 *   counters.SPARC.context_switch.cycles_per_call
 *   kernel_windows.spellcheck_1.mach25.reconciliation.actual_cycles
 *   profile.machines.R3000.null_syscall.cycles_per_call
 *   timeseries.table7.cells.spellcheck_1.mach25.timeseries.cycles.mean
 *   spans.machines.R3000.null_syscall.cycles.p99
 *   bench.simperf.BM_ReportFull/real_time.real_time
 *
 * A metric's series is its value in every record that carries it,
 * oldest first. The regression band compares the newest value against
 * the rolling median of up to N prior values: flagged when
 *
 *   |latest - median| > max(rel_tol * |median|, 3 * MAD)
 *
 * i.e. a relative tolerance widened by the series' own observed noise
 * (median absolute deviation), so deterministic sim figures get the
 * tight band and wall-clock bench figures earn themselves slack.
 * Every flag names the offending record pair so aosd_bisect
 * --db/--from/--to can attribute the move to priced event classes.
 */

#ifndef AOSD_STUDY_TREND_REPORT_HH
#define AOSD_STUDY_TREND_REPORT_HH

#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/perfdb/perfdb.hh"
#include "study/perfdiff.hh"

namespace aosd
{

/** Sources for one perfdb record; every pointer may be null. */
struct PerfDbRecordInputs
{
    const Json *report = nullptr;
    const Json *counters = nullptr;
    const Json *kernelWindows = nullptr;
    const Json *profile = nullptr;
    /** Raw timeseries.json; stored as a per-series digest. */
    const Json *timeseries = nullptr;
    /** Raw spans.json; stored with the exemplar span trees stripped
     *  so the record keeps the percentile and attribution figures. */
    const Json *spans = nullptr;
    /** Raw traffic.json; stored with the per-cell slowest-request
     *  exemplar arrays stripped, keeping the latency percentiles,
     *  throughput and reconciliation figures. */
    const Json *traffic = nullptr;
    /** (suite name, google-benchmark document) pairs. */
    std::vector<std::pair<std::string, const Json *>> bench;
};

/**
 * Build one schema-v1 record. Bench documents are normalized to
 * {benchmarks: {<name>: {real_time, cpu_time, time_unit}}} — the
 * run-local context block (date, load average) would make otherwise
 * identical runs differ byte-wise.
 */
Json buildPerfDbRecord(const std::string &commit,
                       const std::string &timestamp,
                       const std::string &host,
                       const std::string &buildFlags,
                       const PerfDbRecordInputs &in);

/** Every metric of one record as stable dotted paths (record order
 *  within each document, documents in stored order). */
std::vector<PerfLeaf> recordMetrics(const PerfDbRecord &rec);

/**
 * spans.json minus the per-request span trees: exemplars (and the
 * `spans` trees inside the ipc section) are shapes to look at, not
 * figures to band, and they would bloat every record. Percentiles,
 * drop counts and the tail-attribution numbers stay. Applied at
 * perfdb ingest.
 */
Json spansDigest(const Json &doc);

/**
 * traffic.json minus the per-cell slowest-request exemplar arrays:
 * like span exemplars, individual requests are shapes to look at, not
 * figures to band, and a record per commit must stay small. Applied
 * at perfdb ingest.
 */
Json trafficDigest(const Json &doc);

/** Machine-readable database inventory (aosd_trend list --json):
 *  {"records":[{"id","commit","timestamp","host","build_flags",
 *  "docs":[...]}, ...]} — what scripts and the dashboard's history
 *  page enumerate before exporting documents. */
Json buildTrendListDoc(const PerfDb &db);

/** One record's value of one metric. */
struct MetricPoint
{
    std::size_t recordIndex = 0; ///< position in the database
    std::string recordId;
    std::string commit;
    double value = 0;
};

/** A metric across the database, oldest record first. */
struct MetricSeries
{
    std::string metric;
    std::vector<MetricPoint> points;
};

/** The series of `metric`; `last` > 0 keeps only the newest N
 *  points. Metrics absent from a record simply skip that record. */
MetricSeries metricSeries(const PerfDb &db, const std::string &metric,
                          std::size_t last = 0);

/** Every metric path present anywhere in the database, sorted. */
std::vector<std::string> allMetrics(const PerfDb &db);

/** Rolling statistics of a series' values (oldest first): the newest
 *  value vs the median/MAD of up to `baselineWindow` prior values. */
struct RollingStats
{
    std::size_t baselinePoints = 0; ///< prior values actually used
    double latest = 0;
    double median = 0; ///< of the baseline window
    double mad = 0;    ///< median absolute deviation of the window
    double pctChange = 0; ///< 100 * (latest - median) / |median|
};

RollingStats rollingStats(const std::vector<double> &values,
                          std::size_t baselineWindow);

/** Series + rolling stats + per-point deltas as one JSON document
 *  (aosd_trend query --json). */
Json buildTrendQueryDoc(const PerfDb &db, const std::string &metric,
                        std::size_t last, std::size_t baselineWindow);

/** One metric outside its rolling band. */
struct TrendFlag
{
    std::string metric;
    double latest = 0;
    double median = 0;
    double mad = 0;
    double bandHalfWidth = 0; ///< max(rel_tol*|median|, 3*MAD)
    double pctChange = 0;
    /** The offending pair: newest in-band baseline record -> the
     *  flagged record. Feed straight to aosd_bisect --from/--to. */
    std::string fromId;
    std::string toId;
};

/** Result of checking every (filtered) metric. */
struct TrendCheckResult
{
    std::size_t metricsChecked = 0;
    /** Metrics with fewer than 2 baseline points (no band yet). */
    std::size_t metricsSkipped = 0;
    std::vector<TrendFlag> flags; ///< largest |pctChange| first

    bool ok() const { return flags.empty(); }
    Json toJson() const;
};

/**
 * Check the newest value of every metric against its rolling band.
 * `filter`/`skip` are comma-separated substring lists: a metric is
 * checked when it matches any `filter` entry (empty = all) and no
 * `skip` entry. Metrics missing from the newest record that carries
 * them are judged at their own newest point — a metric that stopped
 * being recorded is not an error, just stale.
 */
TrendCheckResult checkTrends(const PerfDb &db, double relTol,
                             std::size_t baselineWindow,
                             const std::string &filter = "",
                             const std::string &skip = "");

/** Render the static dashboard: one sparkline trend row per metric,
 *  flagged rows highlighted. Same filter semantics as checkTrends. */
std::string renderTrendHtml(const PerfDb &db, double relTol,
                            std::size_t baselineWindow,
                            const std::string &filter = "",
                            const std::string &skip = "",
                            std::size_t last = 50);

} // namespace aosd

#endif // AOSD_STUDY_TREND_REPORT_HH
