#include "study/perfdiff.hh"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace aosd
{

namespace
{

void
flattenInto(const Json &node, const std::string &prefix,
            std::vector<PerfLeaf> &out)
{
    switch (node.kind()) {
      case Json::Kind::Number:
        if (!std::isnan(node.asNumber()))
            out.push_back({prefix, node.asNumber()});
        return;

      case Json::Kind::Object:
        for (const auto &[key, value] : node.items())
            flattenInto(value,
                        prefix.empty() ? key : prefix + "." + key,
                        out);
        return;

      case Json::Kind::Array:
        for (std::size_t i = 0; i < node.size(); ++i)
            flattenInto(node.at(i),
                        (prefix.empty() ? "" : prefix + ".") +
                            std::to_string(i),
                        out);
        return;

      default: // strings, bools, nulls carry no figures
        return;
    }
}

const char *
kindName(Json::Kind kind)
{
    switch (kind) {
      case Json::Kind::Null:
        return "null";
      case Json::Kind::Bool:
        return "bool";
      case Json::Kind::Number:
        return "number";
      case Json::Kind::String:
        return "string";
      case Json::Kind::Array:
        return "array";
      case Json::Kind::Object:
        return "object";
    }
    return "?";
}

bool
findMismatch(const Json &oldNode, const Json &newNode,
             const std::string &path, StructuralMismatch &out)
{
    auto report = [&](std::string description) {
        out.found = true;
        out.path = path;
        out.description = std::move(description);
        return true;
    };

    if (oldNode.kind() != newNode.kind())
        return report(std::string(kindName(oldNode.kind())) + " -> " +
                      kindName(newNode.kind()));

    if (oldNode.isObject()) {
        for (const auto &[key, value] : oldNode.items()) {
            (void)value;
            if (!newNode.has(key))
                return report("key '" + key +
                              "' missing from the new document");
        }
        for (const auto &[key, value] : newNode.items()) {
            (void)value;
            if (!oldNode.has(key))
                return report("key '" + key +
                              "' only in the new document");
        }
        for (const auto &[key, value] : oldNode.items())
            if (findMismatch(value, newNode.at(key),
                             path.empty() ? key : path + "." + key,
                             out))
                return true;
        return false;
    }

    if (oldNode.isArray()) {
        if (oldNode.size() != newNode.size())
            return report("array length " +
                          std::to_string(oldNode.size()) + " -> " +
                          std::to_string(newNode.size()));
        for (std::size_t i = 0; i < oldNode.size(); ++i)
            if (findMismatch(oldNode.at(i), newNode.at(i),
                             (path.empty() ? "" : path + ".") +
                                 std::to_string(i),
                             out))
                return true;
        return false;
    }

    return false; // same-kind scalars differ in value, not shape
}

/** The leaf key of a dotted path ("a.b.p99" -> "p99"). */
std::string
lastSegment(const std::string &path)
{
    std::size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(dot + 1);
}

double
tolForPath(const std::string &path, double rel_tol,
           const KeyTolerances &key_tols)
{
    if (key_tols.empty())
        return rel_tol;
    std::string key = lastSegment(path);
    for (const auto &[k, tol] : key_tols)
        if (k == key)
            return tol;
    return rel_tol;
}

} // namespace

std::vector<PerfLeaf>
flattenNumericLeaves(const Json &doc)
{
    std::vector<PerfLeaf> out;
    flattenInto(doc, "", out);
    return out;
}

PerfDiff
diffPerfDocs(const Json &old_doc, const Json &new_doc, double rel_tol,
             double abs_tol, const KeyTolerances &key_tols)
{
    std::vector<PerfLeaf> old_leaves = flattenNumericLeaves(old_doc);
    std::vector<PerfLeaf> new_leaves = flattenNumericLeaves(new_doc);

    std::unordered_map<std::string, double> new_by_path;
    for (const PerfLeaf &leaf : new_leaves)
        new_by_path.emplace(leaf.path, leaf.value);

    PerfDiff diff;
    std::unordered_set<std::string> seen;
    for (const PerfLeaf &leaf : old_leaves) {
        seen.insert(leaf.path);
        auto it = new_by_path.find(leaf.path);
        PerfDelta d;
        d.path = leaf.path;
        d.oldValue = leaf.value;
        if (it == new_by_path.end()) {
            d.kind = PerfDelta::Kind::Missing;
            ++diff.regressions;
            diff.deltas.push_back(d);
            continue;
        }
        d.newValue = it->second;
        ++diff.compared;
        double denom =
            std::max(std::fabs(d.oldValue), std::fabs(d.newValue));
        double abs_delta = std::fabs(d.newValue - d.oldValue);
        d.relDelta = denom > 0 ? abs_delta / denom : 0;
        bool within =
            abs_delta <= abs_tol ||
            d.relDelta <= tolForPath(leaf.path, rel_tol, key_tols);
        d.kind = within ? PerfDelta::Kind::Within
                        : PerfDelta::Kind::Changed;
        if (!within)
            ++diff.regressions;
        diff.deltas.push_back(d);
    }
    for (const PerfLeaf &leaf : new_leaves) {
        if (seen.count(leaf.path))
            continue;
        PerfDelta d;
        d.kind = PerfDelta::Kind::Added;
        d.path = leaf.path;
        d.newValue = leaf.value;
        ++diff.regressions;
        diff.deltas.push_back(d);
    }
    return diff;
}

StructuralMismatch
firstStructuralMismatch(const Json &old_doc, const Json &new_doc)
{
    StructuralMismatch out;
    findMismatch(old_doc, new_doc, "", out);
    return out;
}

} // namespace aosd
