#include "study/perfdiff.hh"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace aosd
{

namespace
{

void
flattenInto(const Json &node, const std::string &prefix,
            std::vector<PerfLeaf> &out)
{
    switch (node.kind()) {
      case Json::Kind::Number:
        if (!std::isnan(node.asNumber()))
            out.push_back({prefix, node.asNumber()});
        return;

      case Json::Kind::Object:
        for (const auto &[key, value] : node.items())
            flattenInto(value,
                        prefix.empty() ? key : prefix + "." + key,
                        out);
        return;

      case Json::Kind::Array:
        for (std::size_t i = 0; i < node.size(); ++i)
            flattenInto(node.at(i),
                        (prefix.empty() ? "" : prefix + ".") +
                            std::to_string(i),
                        out);
        return;

      default: // strings, bools, nulls carry no figures
        return;
    }
}

} // namespace

std::vector<PerfLeaf>
flattenNumericLeaves(const Json &doc)
{
    std::vector<PerfLeaf> out;
    flattenInto(doc, "", out);
    return out;
}

PerfDiff
diffPerfDocs(const Json &old_doc, const Json &new_doc, double rel_tol,
             double abs_tol)
{
    std::vector<PerfLeaf> old_leaves = flattenNumericLeaves(old_doc);
    std::vector<PerfLeaf> new_leaves = flattenNumericLeaves(new_doc);

    std::unordered_map<std::string, double> new_by_path;
    for (const PerfLeaf &leaf : new_leaves)
        new_by_path.emplace(leaf.path, leaf.value);

    PerfDiff diff;
    std::unordered_set<std::string> seen;
    for (const PerfLeaf &leaf : old_leaves) {
        seen.insert(leaf.path);
        auto it = new_by_path.find(leaf.path);
        PerfDelta d;
        d.path = leaf.path;
        d.oldValue = leaf.value;
        if (it == new_by_path.end()) {
            d.kind = PerfDelta::Kind::Missing;
            ++diff.regressions;
            diff.deltas.push_back(d);
            continue;
        }
        d.newValue = it->second;
        ++diff.compared;
        double denom =
            std::max(std::fabs(d.oldValue), std::fabs(d.newValue));
        double abs_delta = std::fabs(d.newValue - d.oldValue);
        d.relDelta = denom > 0 ? abs_delta / denom : 0;
        bool within =
            abs_delta <= abs_tol || d.relDelta <= rel_tol;
        d.kind = within ? PerfDelta::Kind::Within
                        : PerfDelta::Kind::Changed;
        if (!within)
            ++diff.regressions;
        diff.deltas.push_back(d);
    }
    for (const PerfLeaf &leaf : new_leaves) {
        if (seen.count(leaf.path))
            continue;
        PerfDelta d;
        d.kind = PerfDelta::Kind::Added;
        d.path = leaf.path;
        d.newValue = leaf.value;
        ++diff.regressions;
        diff.deltas.push_back(d);
    }
    return diff;
}

} // namespace aosd
