/**
 * @file
 * The unified observability site: one deterministic static HTML site
 * fusing every measurement document the repo produces.
 *
 * The measurement substrate emits seven JSON documents (report,
 * counters, kernel windows, profile, timeseries, spans, traffic) plus
 * a rolling perf database, each with its own CLI front-end. This
 * module is the human-facing layer over all of them: a multi-page
 * static site — inline SVG and CSS only, no scripts, no external
 * assets — that a CI artifact store or GitHub Pages can serve as-is.
 *
 * Pages:
 *
 *   index.html    Overview: input inventory, headline figures vs the
 *                 paper, and the status of every reconciliation gate.
 *   tables.html   Tables 1/5/7 with per-cell drill-down into the
 *                 counters reconciliation terms and the profiler's
 *                 cycle-attribution anatomy.
 *   latency.html  Latency-vs-load curves per machine × arrival
 *                 pattern from traffic.json: p50/p90/p99/p999 on a
 *                 sqrt scale, queue-depth overlay, per-request-class
 *                 small multiples.
 *   spans.html    Tail attribution: per-cell percentiles, the
 *                 median-vs-p99 priced gap, and the slowest-request
 *                 exemplar span trees as flame-style nested bars.
 *   history.html  The perfdb trajectory: record inventory, rolling-
 *                 band flags with bisect annotations (the flagged
 *                 pair's ranked event-class explanation), and
 *                 per-metric sparklines.
 *
 * Determinism contract: the site is a pure function of its inputs.
 * Identical documents render byte-identical pages at any --jobs
 * value (pages are built as independent tasks and merged in task
 * order), and since every input document is itself byte-identical
 * across batch/no-batch/no-predecode, so is the site. CI cmp-gates
 * both properties. All floating-point rendering uses printf and
 * IEEE-exact sqrt only — no libm transcendentals — so the bytes are
 * also machine-independent.
 */

#ifndef AOSD_STUDY_DASHBOARD_DASHBOARD_HH
#define AOSD_STUDY_DASHBOARD_DASHBOARD_HH

#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/perfdb/perfdb.hh"

namespace aosd
{

inline constexpr int dashboardSchemaVersion = 1;

/** Input documents; every pointer may be null (its sections render
 *  as "not provided" so the page inventory is always complete). */
struct DashboardInputs
{
    const Json *report = nullptr;
    const Json *counters = nullptr;
    const Json *kernelWindows = nullptr;
    const Json *profile = nullptr;
    const Json *spans = nullptr;
    /** One traffic.json per sweep — typically one per arrival
     *  pattern; each is labelled from its own config block. */
    std::vector<const Json *> traffic;
    /** The rolling perf database (history page); may be null. */
    const PerfDb *db = nullptr;
};

struct DashboardOptions
{
    /** Rolling-band parameters for the history page (the same
     *  semantics as aosd_trend check). */
    double relTol = 0.05;
    std::size_t baselineWindow = 20;
    /** Sparkline points kept per metric, newest last. */
    std::size_t historyLast = 50;
    /** Flags annotated with a bisect explanation, largest first. */
    std::size_t topFlags = 20;
    /** Per-metric sparkline rows on the history page; the full list
     *  is aosd_trend html's job. 0 = unlimited. */
    std::size_t historyCap = 400;
    /** Substring filter/skip lists for history metrics (comma-
     *  separated, same semantics as aosd_trend). */
    std::string historyFilter;
    std::string historySkip;
};

/** One generated page. */
struct DashboardPage
{
    std::string file;  ///< "index.html"
    std::string title; ///< "Overview"
    std::string html;
};

/** The generated site: pages plus the machine-readable manifest that
 *  tests golden-gate (structure counts, not figure values). */
struct DashboardSite
{
    std::vector<DashboardPage> pages;
    Json manifest;
};

/** Build every page. Byte-identical output at any runner job count:
 *  pages are independent tasks merged in task-index order. */
DashboardSite buildDashboardSite(const DashboardInputs &in,
                                 const DashboardOptions &opts,
                                 ParallelRunner &runner);

/**
 * Internal-link/anchor check: every href that names a site page (or
 * a `#fragment` within one) must resolve to a generated file and an
 * existing `id`. Returns one message per dangling reference; empty
 * means the site is self-consistent. aosd_dashboard refuses to write
 * a site that fails this.
 */
std::vector<std::string>
validateDashboardLinks(const DashboardSite &site);

/** Write pages + manifest.json under `dir` (created if needed). */
bool writeDashboardSite(const DashboardSite &site,
                        const std::string &dir,
                        std::string *error = nullptr);

} // namespace aosd

#endif // AOSD_STUDY_DASHBOARD_DASHBOARD_HH
