/**
 * @file
 * Shared HTML/SVG rendering helpers for the static dashboards.
 *
 * Both the trend dashboard (study/trend_report) and the unified
 * observability site (study/dashboard) emit self-contained HTML with
 * inline SVG — no scripts, no external assets — so the artifacts can
 * be archived, diffed and served from a dumb static host. Everything
 * here is a pure function of its arguments: identical inputs render
 * identical bytes, which is what lets CI `cmp` two independently
 * generated sites.
 */

#ifndef AOSD_STUDY_DASHBOARD_HTML_HH
#define AOSD_STUDY_DASHBOARD_HTML_HH

#include <string>
#include <vector>

namespace aosd
{

/** Escape &, < and > for embedding in HTML text or attributes. */
std::string htmlEscape(const std::string &s);

/** Compact numeric formatting ("%.6g") shared by every table. */
std::string fmtNum(double v);

/** Inline SVG sparkline of `values`, oldest left; flagged series
 *  render red. */
std::string sparklineSvg(const std::vector<double> &values,
                         bool flagged);

/** One named series of a latency-vs-load chart. */
struct ChartSeries
{
    std::string name;  ///< legend label ("p99")
    std::string color; ///< CSS color
    std::vector<double> values;
};

/**
 * Inline SVG line chart: `labels` along the x axis (evenly spaced),
 * every series on a square-root y scale (sqrt is correctly rounded
 * per IEEE 754, so the bytes are machine-independent; a log scale
 * would not be). The sqrt scale keeps both a quiet p50 and a
 * collapsed p999 readable on one plot. `overlay` (may be empty) is
 * drawn dashed against its own right-hand scale — the queue-depth
 * overlay of the traffic charts.
 */
std::string lineChartSvg(const std::vector<std::string> &labels,
                         const std::vector<ChartSeries> &series,
                         const ChartSeries &overlay, int width,
                         int height, const std::string &yUnit,
                         const std::string &overlayUnit);

} // namespace aosd

#endif // AOSD_STUDY_DASHBOARD_HTML_HH
