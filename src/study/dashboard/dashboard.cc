#include "study/dashboard/dashboard.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <set>
#include <unordered_map>

#include "study/bisect.hh"
#include "study/dashboard/html.hh"
#include "study/trend_report.hh"

namespace aosd
{

namespace
{

struct PageRef
{
    const char *file;
    const char *title;
};

constexpr PageRef kPages[] = {
    {"index.html", "Overview"},
    {"tables.html", "Tables 1/5/7"},
    {"latency.html", "Latency vs load"},
    {"spans.html", "Tail attribution"},
    {"history.html", "History"},
};

const char *kCss =
    "body{font:14px/1.4 system-ui,sans-serif;margin:2em;color:#222;"
    "max-width:1100px}\n"
    "nav{margin:0 0 1.5em;padding-bottom:.6em;"
    "border-bottom:2px solid #888}\n"
    "nav a{margin-right:1.2em;color:#2c7fb8;text-decoration:none}\n"
    "nav a.here{color:#222;font-weight:600}\n"
    "nav .brand{margin-right:1.6em;font-weight:600}\n"
    "table{border-collapse:collapse}\n"
    "th,td{padding:3px 10px;text-align:left;"
    "border-bottom:1px solid #eee;"
    "font-variant-numeric:tabular-nums}\n"
    "th{border-bottom:2px solid #888}\n"
    "td.num,th.num{text-align:right}\n"
    "tr.flag td{background:#fdecea}\n"
    ".ok{color:#1e8449}.bad{color:#c0392b;font-weight:600}\n"
    ".muted{color:#777}\n"
    "h2{margin-top:2em}h3{margin-top:1.4em}\n"
    "code{background:#f4f4f4;padding:0 3px}\n"
    "details{margin:.5em 0}\n"
    "summary{cursor:pointer;font-weight:600}\n"
    ".chart .grid{stroke:#eee;stroke-width:1}\n"
    ".chart .tick{font:10px system-ui,sans-serif;fill:#777}\n"
    ".row{display:flex;flex-wrap:wrap;gap:1em;align-items:flex-end}\n"
    ".cell{margin:.2em 0}\n"
    ".fr{display:flex}\n"
    ".fn{box-sizing:border-box;min-width:2px;overflow:hidden;"
    "white-space:nowrap;border:1px solid #fff;border-radius:2px;"
    "padding:0 2px;font-size:11px}\n"
    ".fn>span{display:block;overflow:hidden;text-overflow:ellipsis}\n"
    ".d0{background:#dbe9f6}.d1{background:#c6dbef}"
    ".d2{background:#9ecae1}.d3{background:#74b2d4}\n"
    ".flame{margin:.3em 0 .6em;max-width:900px}\n"
    ".stack{display:flex;max-width:700px;margin:.2em 0}\n"
    ".stack div{box-sizing:border-box;overflow:hidden;"
    "white-space:nowrap;font-size:11px;padding:1px 3px;"
    "border:1px solid #fff}\n"
    ".s0{background:#dbe9f6}.s1{background:#9ecae1}"
    ".s2{background:#fdd9a0}\n";

std::string
pageOpen(std::size_t active)
{
    std::string html =
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
        "<title>aosd · ";
    html += kPages[active].title;
    html += "</title>\n<style>\n";
    html += kCss;
    html += "</style></head><body>\n<nav><span class=\"brand\">aosd "
            "observability</span>";
    for (std::size_t i = 0; i < std::size(kPages); ++i) {
        html += "<a href=\"";
        html += kPages[i].file;
        html += i == active ? "\" class=\"here\">" : "\">";
        html += kPages[i].title;
        html += "</a>";
    }
    html += "</nav>\n<h1>";
    html += kPages[active].title;
    html += "</h1>\n";
    return html;
}

std::string
pageClose()
{
    return "</body></html>\n";
}

// ---- defensive JSON access -------------------------------------

const Json *
jfind(const Json *j, const std::string &key)
{
    return j && j->isObject() ? j->find(key) : nullptr;
}

double
jnum(const Json *j, double fallback = 0)
{
    return j && j->isNumber() ? j->asNumber() : fallback;
}

std::string
jstr(const Json *j, const std::string &fallback = "")
{
    return j && j->isString() ? j->asString() : fallback;
}

/** "a.b.c" -> {"a","b","c"}. */
std::vector<std::string>
splitDots(const std::string &s)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t dot = s.find('.', start);
        if (dot == std::string::npos)
            dot = s.size();
        parts.push_back(s.substr(start, dot - start));
        start = dot + 1;
    }
    return parts;
}

// ---- gate health ------------------------------------------------

/** Worst reconciliation.explained_pct across a two-level
 *  {outer:{inner:{reconciliation:{explained_pct}}}} document. */
double
worstExplained(const Json *groups)
{
    double worst = std::numeric_limits<double>::infinity();
    if (!groups || !groups->isObject())
        return worst;
    for (const auto &[outer, cells] : groups->items()) {
        (void)outer;
        if (!cells.isObject())
            continue;
        for (const auto &[inner, cell] : cells.items()) {
            (void)inner;
            const Json *pct =
                jfind(jfind(&cell, "reconciliation"),
                      "explained_pct");
            if (pct)
                worst = std::min(worst, pct->asNumber());
        }
    }
    return worst;
}

double
worstSpanExplained(const Json *spans)
{
    double worst = std::numeric_limits<double>::infinity();
    const Json *machines = jfind(spans, "machines");
    if (!machines)
        return worst;
    for (const auto &[m, prims] : machines->items()) {
        (void)m;
        if (!prims.isObject())
            continue;
        for (const auto &[p, cell] : prims.items()) {
            (void)p;
            const Json *pct =
                jfind(jfind(&cell, "tail_attribution"),
                      "explained_pct");
            if (pct)
                worst = std::min(worst, pct->asNumber());
        }
    }
    return worst;
}

double
worstTrafficExplained(const Json *traffic)
{
    double worst = std::numeric_limits<double>::infinity();
    const Json *machines = jfind(traffic, "machines");
    if (!machines || !machines->isArray())
        return worst;
    for (std::size_t i = 0; i < machines->size(); ++i) {
        const Json *levels =
            jfind(&machines->at(i), "load_levels");
        if (!levels || !levels->isArray())
            continue;
        for (std::size_t li = 0; li < levels->size(); ++li) {
            const Json *pct =
                jfind(jfind(&levels->at(li), "kernel_window"),
                      "explained_pct");
            if (pct)
                worst = std::min(worst, pct->asNumber());
        }
    }
    return worst;
}

/** Count the (outer × inner) cells of a two-level object doc. */
std::size_t
cellCount(const Json *groups)
{
    std::size_t n = 0;
    if (!groups || !groups->isObject())
        return 0;
    for (const auto &[outer, cells] : groups->items()) {
        (void)outer;
        if (cells.isObject())
            n += cells.items().size();
    }
    return n;
}

std::string
trafficLabel(const Json *traffic)
{
    const Json *cfg = jfind(traffic, "config");
    return jstr(jfind(cfg, "mode"), "?") + " · " +
           jstr(jfind(cfg, "arrival"), "?");
}

// ---- precomputed history analysis ------------------------------

struct HistoryData
{
    bool present = false;
    TrendCheckResult check;
};

// ---- flame rendering -------------------------------------------

/** Span-tree node {name,cycles,spans:[...]} as flame-style nested
 *  bars; each child's width is its share of the parent's cycles. */
void
spanFlame(const Json &node, double parentCycles, int depth,
          std::string &out)
{
    double cyc = jnum(jfind(&node, "cycles"));
    double pct =
        parentCycles > 0 ? 100.0 * cyc / parentCycles : 100.0;
    std::string name = jstr(jfind(&node, "name"), "?");
    out += "<div class=\"fn d" + std::to_string(depth % 4) +
           "\" style=\"width:" + fmtNum(pct) + "%\" title=\"" +
           htmlEscape(name) + ": " + fmtNum(cyc) +
           " cycles\"><span>" + htmlEscape(name) + " · " +
           fmtNum(cyc) + "</span>";
    const Json *kids = jfind(&node, "spans");
    if (kids && kids->isArray() && kids->size() > 0) {
        out += "<div class=\"fr\">";
        for (std::size_t i = 0; i < kids->size(); ++i)
            spanFlame(kids->at(i), cyc, depth + 1, out);
        out += "</div>";
    }
    out += "</div>";
}

/** Profiler node {total_cycles,children:{name:node}} as the same
 *  flame layout (children keyed by name instead of listed). */
void
profileFlame(const std::string &name, const Json &node,
             double parentCycles, int depth, std::string &out)
{
    double cyc = jnum(jfind(&node, "total_cycles"));
    double pct =
        parentCycles > 0 ? 100.0 * cyc / parentCycles : 100.0;
    out += "<div class=\"fn d" + std::to_string(depth % 4) +
           "\" style=\"width:" + fmtNum(pct) + "%\" title=\"" +
           htmlEscape(name) + ": " + fmtNum(cyc) +
           " cycles\"><span>" + htmlEscape(name) + " · " +
           fmtNum(cyc) + "</span>";
    const Json *kids = jfind(&node, "children");
    if (kids && kids->isObject() && !kids->items().empty()) {
        out += "<div class=\"fr\">";
        for (const auto &[child, sub] : kids->items())
            profileFlame(child, sub, cyc, depth + 1, out);
        out += "</div>";
    }
    out += "</div>";
}

// ---- reconciliation term tables --------------------------------

/**
 * The terms block of a reconciliation (or tail attribution): one row
 * per event class with any movement, priced cycles descending (name
 * ascending on ties, so output is deterministic).
 */
std::string
termsTable(const Json *terms, const char *countHeader,
           double denomCycles)
{
    if (!terms || !terms->isObject())
        return "";
    struct Row
    {
        std::string name;
        double count, penalty, cycles;
    };
    std::vector<Row> rows;
    for (const auto &[name, term] : terms->items()) {
        Row r;
        r.name = name;
        const Json *count = jfind(&term, "count");
        if (!count)
            count = jfind(&term, "delta_count");
        r.count = jnum(count);
        r.penalty = jnum(jfind(&term, "penalty_cycles"));
        r.cycles = jnum(jfind(&term, "cycles"));
        if (r.count != 0 || r.cycles != 0)
            rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  double ca = std::fabs(a.cycles);
                  double cb = std::fabs(b.cycles);
                  if (ca != cb)
                      return ca > cb;
                  return a.name < b.name;
              });
    std::string html = "<table><tr><th>event class</th>"
                       "<th class=\"num\">";
    html += countHeader;
    html += "</th><th class=\"num\">penalty</th>"
            "<th class=\"num\">cycles</th>"
            "<th class=\"num\">share</th></tr>\n";
    for (const Row &r : rows) {
        double share =
            denomCycles != 0 ? 100.0 * r.cycles / denomCycles : 0;
        html += "<tr><td><code>" + htmlEscape(r.name) +
                "</code></td><td class=\"num\">" + fmtNum(r.count) +
                "</td><td class=\"num\">" + fmtNum(r.penalty) +
                "</td><td class=\"num\">" + fmtNum(r.cycles) +
                "</td><td class=\"num\">" + fmtNum(share) +
                "%</td></tr>\n";
    }
    html += "</table>\n";
    return html;
}

// ---- overview page ---------------------------------------------

std::string
gateRow(const std::string &page, const std::string &doc,
        bool present, const std::string &health, bool pass,
        const std::string &gate)
{
    std::string html = "<tr><td><a href=\"" + page + "\">" +
                       htmlEscape(doc) + "</a></td><td>";
    html += present ? "yes" : "<span class=\"muted\">—</span>";
    html += "</td><td>" + health + "</td><td>";
    if (!present)
        html += "<span class=\"muted\">n/a</span>";
    else
        html += pass ? "<span class=\"ok\">PASS</span>"
                     : "<span class=\"bad\">FAIL</span>";
    html += "</td><td class=\"muted\">" + htmlEscape(gate) +
            "</td></tr>\n";
    return html;
}

std::string
overviewHtml(const DashboardInputs &in, const DashboardOptions &opts,
             const HistoryData &hist)
{
    std::string html = pageOpen(0);

    html += "<p>Every measurement document this tree produces, fused "
            "into one static site. Each gate below is the same "
            "reconciliation discipline CI enforces: cycles must be "
            "explained, not estimated.</p>\n";

    // -- inputs and gate status --
    html += "<h2 id=\"gates\">Inputs and gates</h2>\n"
            "<table>\n<tr><th>document</th><th>present</th>"
            "<th>health</th><th>status</th><th>gate</th></tr>\n";

    if (in.report) {
        const Json *summary = jfind(in.report, "summary");
        double mean = jnum(jfind(summary, "mean_abs_rel_error"), -1);
        std::string health =
            fmtNum(jnum(jfind(summary, "figures"))) + " figures, " +
            fmtNum(jnum(jfind(summary, "with_paper"))) +
            " vs paper, mean |rel err| " + fmtNum(100.0 * mean) +
            "%";
        html += gateRow("tables.html", "report", true, health,
                        mean >= 0 && mean <= 0.15,
                        "mean |rel err| <= 15%");
    } else {
        html += gateRow("tables.html", "report", false, "", false,
                        "mean |rel err| <= 15%");
    }

    double ctr_worst = worstExplained(jfind(in.counters, "machines"));
    html += gateRow(
        "tables.html", "counters", in.counters != nullptr,
        in.counters
            ? fmtNum(static_cast<double>(
                  cellCount(jfind(in.counters, "machines")))) +
                  " cells, worst explained " + fmtNum(ctr_worst) + "%"
            : "",
        ctr_worst >= 95.0 && ctr_worst <= 105.0,
        "95% <= explained <= 105%");

    double kw_worst = 100.0;
    if (in.kernelWindows) {
        kw_worst = std::numeric_limits<double>::infinity();
        const Json *cells = jfind(in.kernelWindows, "cells");
        if (cells && cells->isObject())
            for (const auto &[name, cell] : cells->items()) {
                (void)name;
                kw_worst = std::min(
                    kw_worst,
                    jnum(jfind(jfind(&cell, "reconciliation"),
                               "explained_pct"),
                         std::numeric_limits<double>::infinity()));
            }
        const Json *cells2 = jfind(in.kernelWindows, "cells");
        html += gateRow(
            "tables.html", "kernel_windows", true,
            fmtNum(static_cast<double>(
                cells2 && cells2->isObject()
                    ? cells2->items().size()
                    : 0)) +
                " cells, worst explained " + fmtNum(kw_worst) + "%",
            kw_worst >= 95.0 && kw_worst <= 105.0,
            "95% <= explained <= 105%");
    } else {
        html += gateRow("tables.html", "kernel_windows", false, "",
                        false, "95% <= explained <= 105%");
    }

    if (in.profile) {
        bool complete = true;
        std::size_t cells = 0;
        const Json *machines = jfind(in.profile, "machines");
        if (machines && machines->isObject())
            for (const auto &[m, prims] : machines->items()) {
                (void)m;
                if (!prims.isObject())
                    continue;
                for (const auto &[p, cell] : prims.items()) {
                    (void)p;
                    ++cells;
                    const Json *c =
                        jfind(&cell, "attribution_complete");
                    if (!c || !c->isBool() || !c->asBool())
                        complete = false;
                }
            }
        html += gateRow("tables.html", "profile", true,
                        fmtNum(static_cast<double>(cells)) +
                            " cells, attribution " +
                            (complete ? "complete" : "incomplete"),
                        complete, "sum of leaves == total");
    } else {
        html += gateRow("tables.html", "profile", false, "", false,
                        "sum of leaves == total");
    }

    double span_worst = worstSpanExplained(in.spans);
    html += gateRow(
        "spans.html", "spans", in.spans != nullptr,
        in.spans ? fmtNum(static_cast<double>(
                       cellCount(jfind(in.spans, "machines")))) +
                       " cells, worst tail explained " +
                       fmtNum(span_worst) + "%"
                 : "",
        span_worst >= 80.0, "tail gap >= 80% explained");

    if (in.traffic.empty()) {
        html += gateRow("latency.html", "traffic", false, "", false,
                        "window >= 99.999% explained");
    } else {
        for (const Json *t : in.traffic) {
            double worst = worstTrafficExplained(t);
            const Json *cfg = jfind(t, "config");
            html += gateRow(
                "latency.html", "traffic (" + trafficLabel(t) + ")",
                true,
                fmtNum(jnum(jfind(t, "total_requests"))) +
                    " requests, " +
                    fmtNum(jnum(jfind(cfg, "requests_per_level"))) +
                    " per cell, worst window explained " +
                    fmtNum(worst) + "%",
                worst >= 99.999, "window >= 99.999% explained");
        }
    }

    if (hist.present) {
        html += gateRow(
            "history.html", "perfdb history", true,
            fmtNum(static_cast<double>(in.db->size())) +
                " records, " +
                fmtNum(static_cast<double>(hist.check.flags.size())) +
                " rolling-band flag(s)",
            hist.check.flags.empty(),
            "no metric outside max(" +
                fmtNum(100.0 * opts.relTol) + "% of median, 3xMAD)");
    } else {
        html += gateRow("history.html", "perfdb history", false, "",
                        false, "no metric outside the rolling band");
    }
    html += "</table>\n";

    // -- headlines vs paper --
    const Json *headlines =
        jfind(jfind(jfind(in.report, "tables"), "headlines"),
              "figures");
    if (headlines && headlines->isArray()) {
        html += "<h2 id=\"headlines\">Headlines vs paper</h2>\n"
                "<p>The paper's quoted end-to-end numbers, "
                "regenerated by the simulator.</p>\n"
                "<table>\n<tr><th>figure</th><th class=\"num\">sim"
                "</th><th class=\"num\">paper</th>"
                "<th class=\"num\">rel err</th></tr>\n";
        for (std::size_t i = 0; i < headlines->size(); ++i) {
            const Json &f = headlines->at(i);
            double rel = jnum(jfind(&f, "rel_error"));
            bool close = std::fabs(rel) <= 0.10;
            html += "<tr><td><code>" +
                    htmlEscape(jstr(jfind(&f, "id"))) + "</code> (" +
                    htmlEscape(jstr(jfind(&f, "unit"))) +
                    ")</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(&f, "sim"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(&f, "paper"))) +
                    "</td><td class=\"num " +
                    (close ? "ok" : "bad") + "\">" +
                    fmtNum(100.0 * rel) + "%</td></tr>\n";
        }
        html += "</table>\n";
    }

    html += "<p class=\"muted\">Site manifest: "
            "<a href=\"manifest.json\">manifest.json</a>. Regenerate "
            "with <code>aosd_dashboard</code>; the bytes are "
            "identical at any <code>--jobs</code> value and across "
            "batch/no-batch/no-predecode.</p>\n";
    html += pageClose();
    return html;
}

// ---- tables page -----------------------------------------------

/** Figures of one report table keyed "<metric>.<rest>"; metric and
 *  rest keep first-seen order. */
struct FigureGrid
{
    std::vector<std::string> metrics; ///< row keys, first-seen
    std::vector<std::string> columns; ///< column keys, first-seen
    /** metric -> column -> figure json pointer. */
    std::unordered_map<std::string,
                       std::unordered_map<std::string, const Json *>>
        cells;
};

FigureGrid
gridFromFigures(const Json *figures, bool columnIsTail)
{
    FigureGrid grid;
    if (!figures || !figures->isArray())
        return grid;
    for (std::size_t i = 0; i < figures->size(); ++i) {
        const Json &f = figures->at(i);
        std::string id = jstr(jfind(&f, "id"));
        std::size_t dot = id.find('.');
        if (dot == std::string::npos)
            continue;
        std::string metric = id.substr(0, dot);
        std::string column = id.substr(dot + 1);
        if (!columnIsTail) {
            // "<metric>.<workload>.<structure>": row = workload ×
            // structure, column = metric.
            std::swap(metric, column);
        }
        if (!grid.cells.count(metric))
            grid.metrics.push_back(metric);
        if (!grid.cells[metric].count(column) &&
            std::find(grid.columns.begin(), grid.columns.end(),
                      column) == grid.columns.end())
            grid.columns.push_back(column);
        grid.cells[metric][column] = &f;
    }
    return grid;
}

std::string
simVsPaperCell(const Json *fig, const std::string &href)
{
    if (!fig)
        return "<td class=\"num muted\">—</td>";
    std::string sim = fmtNum(jnum(jfind(fig, "sim")));
    const Json *paper = jfind(fig, "paper");
    std::string body = href.empty()
                           ? sim
                           : "<a href=\"" + href + "\">" + sim +
                                 "</a>";
    if (paper && paper->isNumber() &&
        !std::isnan(paper->asNumber()))
        body += " <span class=\"muted\">(" +
                fmtNum(paper->asNumber()) + ")</span>";
    return "<td class=\"num\">" + body + "</td>";
}

std::string
tablesHtml(const DashboardInputs &in)
{
    std::string html = pageOpen(1);
    const Json *tables = jfind(in.report, "tables");
    if (!tables) {
        html += "<p class=\"muted\">report.json not provided.</p>\n";
        html += pageClose();
        return html;
    }

    // -- Table 1 --
    FigureGrid t1 = gridFromFigures(
        jfind(jfind(tables, "table1"), "figures"), true);
    if (!t1.metrics.empty()) {
        html += "<h2 id=\"table1\">Table 1 — OS primitive "
                "latencies</h2>\n<p>sim <span class=\"muted\">"
                "(paper)</span>, microseconds. Each cell links to "
                "its counter reconciliation and profiler anatomy "
                "below.</p>\n<table>\n<tr><th>primitive</th>";
        for (const std::string &m : t1.columns)
            html += "<th class=\"num\">" + htmlEscape(m) + "</th>";
        html += "</tr>\n";
        for (const std::string &metric : t1.metrics) {
            html += "<tr><td><code>" + htmlEscape(metric) +
                    "</code></td>";
            // "null_syscall_us" -> counters cell "null_syscall".
            std::string prim = metric.size() > 3 &&
                                       metric.rfind("_us") ==
                                           metric.size() - 3
                                   ? metric.substr(0, metric.size() -
                                                          3)
                                   : metric;
            for (const std::string &m : t1.columns) {
                const Json *cell =
                    jfind(jfind(jfind(in.counters, "machines"), m),
                          prim);
                std::string href =
                    cell ? "#ctr-" + m + "-" + prim : "";
                html += simVsPaperCell(t1.cells[metric][m], href);
            }
            html += "</tr>\n";
        }
        html += "</table>\n";
    }

    // -- Table 5 --
    const Json *t5_anatomy =
        jfind(in.profile, "table5_anatomy");
    FigureGrid t5 = gridFromFigures(
        jfind(jfind(tables, "table5"), "figures"), true);
    if (!t5.metrics.empty() || t5_anatomy) {
        html += "<h2 id=\"table5\">Table 5 — anatomy of a system "
                "call</h2>\n";
        if (t5_anatomy && t5_anatomy->isObject()) {
            html += "<p>Profiler-derived decomposition, "
                    "microseconds; bar widths share one scale.</p>\n";
            double max_total = 0;
            for (const auto &[m, parts] : t5_anatomy->items()) {
                (void)m;
                max_total = std::max(
                    max_total, jnum(jfind(&parts, "total_us")));
            }
            static const char *kParts[] = {"kernel_entry_exit_us",
                                           "call_prep_us",
                                           "c_call_return_us"};
            for (const auto &[m, parts] : t5_anatomy->items()) {
                html += "<div class=\"cell\"><code>" +
                        htmlEscape(m) + "</code> — " +
                        fmtNum(jnum(jfind(&parts, "total_us"))) +
                        " us<div class=\"stack\">";
                for (std::size_t pi = 0; pi < std::size(kParts);
                     ++pi) {
                    double us = jnum(jfind(&parts, kParts[pi]));
                    double pct = max_total > 0
                                     ? 100.0 * us / max_total
                                     : 0;
                    html += "<div class=\"s" + std::to_string(pi) +
                            "\" style=\"width:" + fmtNum(pct) +
                            "%\" title=\"" + kParts[pi] + ": " +
                            fmtNum(us) + " us\">" +
                            htmlEscape(std::string(kParts[pi])
                                           .substr(0, 6)) +
                            " " + fmtNum(us) + "</div>";
                }
                html += "</div></div>\n";
            }
        }
        if (!t5.metrics.empty()) {
            html += "<table>\n<tr><th>component</th>";
            for (const std::string &m : t5.columns)
                html +=
                    "<th class=\"num\">" + htmlEscape(m) + "</th>";
            html += "</tr>\n";
            for (const std::string &metric : t5.metrics) {
                html += "<tr><td><code>" + htmlEscape(metric) +
                        "</code></td>";
                for (const std::string &m : t5.columns)
                    html +=
                        simVsPaperCell(t5.cells[metric][m], "");
                html += "</tr>\n";
            }
            html += "</table>\n";
        }
    }

    // -- Table 7 --
    FigureGrid t7 = gridFromFigures(
        jfind(jfind(tables, "table7"), "figures"), false);
    if (!t7.metrics.empty()) {
        html += "<h2 id=\"table7\">Table 7 — Mach structure "
                "costs</h2>\n<p>sim <span class=\"muted\">(paper)"
                "</span>. Rows are workload × OS structure; each "
                "links to its kernel-window reconciliation.</p>\n"
                "<table>\n<tr><th>workload</th>";
        for (const std::string &c : t7.columns)
            html += "<th class=\"num\">" + htmlEscape(c) + "</th>";
        html += "</tr>\n";
        for (const std::string &row : t7.metrics) {
            // "spellcheck-1.mach25" -> kernel-window cell
            // "spellcheck_1.mach25".
            std::string kw_cell = row;
            std::replace(kw_cell.begin(), kw_cell.end(), '-', '_');
            std::size_t last_dot = kw_cell.rfind('_');
            // Only the workload part uses underscores; the
            // ".machNN" suffix keeps its dot.
            last_dot = kw_cell.rfind("_mach");
            if (last_dot != std::string::npos)
                kw_cell[last_dot] = '.';
            bool has_kw =
                jfind(jfind(in.kernelWindows, "cells"), kw_cell) !=
                nullptr;
            html += "<tr><td>";
            if (has_kw)
                html += "<a href=\"#kw-" + kw_cell + "\"><code>" +
                        htmlEscape(row) + "</code></a>";
            else
                html += "<code>" + htmlEscape(row) + "</code>";
            html += "</td>";
            for (const std::string &c : t7.columns)
                html += simVsPaperCell(t7.cells[row][c], "");
            html += "</tr>\n";
        }
        html += "</table>\n";
    }

    // -- counters drill-down --
    const Json *ctr_machines = jfind(in.counters, "machines");
    if (ctr_machines && ctr_machines->isObject()) {
        html += "<h2 id=\"reconciliation\">Per-cell counter "
                "reconciliation and anatomy</h2>\n"
                "<p>Every Table 1 cell's cycles reconstructed from "
                "priced counter deltas, next to the profiler's "
                "literal attribution tree.</p>\n";
        for (const auto &[m, prims] : ctr_machines->items()) {
            if (!prims.isObject())
                continue;
            for (const auto &[p, cell] : prims.items()) {
                const Json *rec = jfind(&cell, "reconciliation");
                html += "<details open id=\"ctr-" + m + "-" + p +
                        "\"><summary>" + htmlEscape(m) + " · " +
                        htmlEscape(p) + " — " +
                        fmtNum(jnum(jfind(&cell,
                                          "cycles_per_call"))) +
                        " cycles/call, " +
                        fmtNum(jnum(jfind(rec, "explained_pct"))) +
                        "% explained</summary>\n";
                html += termsTable(jfind(rec, "terms"), "count",
                                   jnum(jfind(rec,
                                              "actual_cycles")));
                const Json *prof_cell =
                    jfind(jfind(jfind(in.profile, "machines"), m),
                          p);
                const Json *tree = jfind(prof_cell, "tree");
                if (tree) {
                    html += "<div class=\"flame\">";
                    profileFlame(
                        p + " (" +
                            fmtNum(jnum(jfind(tree,
                                              "total_cycles"))) +
                            " cycles)",
                        *tree, jnum(jfind(tree, "total_cycles")), 0,
                        html);
                    html += "</div>\n";
                }
                html += "</details>\n";
            }
        }
    }

    // -- kernel-window drill-down --
    const Json *kw_cells = jfind(in.kernelWindows, "cells");
    if (kw_cells && kw_cells->isObject()) {
        html += "<h2 id=\"kernel-windows\">Kernel-window "
                "reconciliation (" +
                htmlEscape(jstr(jfind(in.kernelWindows, "machine"),
                                "?")) +
                ")</h2>\n<p>Whole Table 7 cells explained from "
                "batched event charges.</p>\n";
        for (const auto &[name, cell] : kw_cells->items()) {
            const Json *rec = jfind(&cell, "reconciliation");
            html += "<details id=\"kw-" + name + "\"><summary>" +
                    htmlEscape(name) + " — " +
                    fmtNum(jnum(jfind(rec, "actual_cycles"))) +
                    " cycles, " +
                    fmtNum(jnum(jfind(rec, "explained_pct"))) +
                    "% explained</summary>\n";
            html += termsTable(jfind(rec, "terms"), "count",
                               jnum(jfind(rec, "actual_cycles")));
            html += "</details>\n";
        }
    }

    html += pageClose();
    return html;
}

// ---- latency page ----------------------------------------------

std::string
latencyHtml(const DashboardInputs &in)
{
    std::string html = pageOpen(2);
    if (in.traffic.empty()) {
        html +=
            "<p class=\"muted\">No traffic.json provided. Generate "
            "sweeps with <code>aosd_traffic --json</code> (one per "
            "arrival pattern) and pass each via "
            "<code>--traffic</code>.</p>\n";
        html += pageClose();
        return html;
    }

    html += "<p>Latency percentiles vs offered load per machine and "
            "arrival pattern — where does p99 collapse? The y axis "
            "is square-root scaled so a quiet p50 and a collapsed "
            "p999 share one plot; the dashed overlay is the maximum "
            "queue depth on its own right-hand scale.</p>\n";

    for (const Json *t : in.traffic) {
        const Json *cfg = jfind(t, "config");
        std::string label = trafficLabel(t);
        bool closed = jstr(jfind(cfg, "mode")) == "closed";
        html += "<h2 id=\"sweep-" +
                jstr(jfind(cfg, "mode"), "?") + "-" +
                jstr(jfind(cfg, "arrival"), "?") + "\">" +
                htmlEscape(label) + " — " +
                fmtNum(jnum(jfind(cfg, "requests_per_level"))) +
                " requests per cell</h2>\n";

        const Json *machines = jfind(t, "machines");
        if (!machines || !machines->isArray())
            continue;
        for (std::size_t mi = 0; mi < machines->size(); ++mi) {
            const Json &m = machines->at(mi);
            std::string slug = jstr(jfind(&m, "machine"), "?");
            const Json *levels = jfind(&m, "load_levels");
            if (!levels || !levels->isArray() ||
                levels->size() == 0)
                continue;

            html += "<h3 id=\"lat-" +
                    jstr(jfind(cfg, "mode"), "?") + "-" +
                    jstr(jfind(cfg, "arrival"), "?") + "-" + slug +
                    "\">" + htmlEscape(slug) + "</h3>\n";

            std::vector<std::string> labels;
            ChartSeries p50{"p50", "#1b9e77", {}};
            ChartSeries p90{"p90", "#2c7fb8", {}};
            ChartSeries p99{"p99", "#e6821e", {}};
            ChartSeries p999{"p99.9", "#c0392b", {}};
            ChartSeries queue{"max queue", "#666", {}};
            for (std::size_t li = 0; li < levels->size(); ++li) {
                const Json &cell = levels->at(li);
                labels.push_back(
                    fmtNum(jnum(jfind(&cell, "load"))) +
                    (closed ? " cl" : ""));
                const Json *all = jfind(
                    jfind(&cell, "latency_cycles"), "all");
                p50.values.push_back(jnum(jfind(all, "p50")));
                p90.values.push_back(jnum(jfind(all, "p90")));
                p99.values.push_back(jnum(jfind(all, "p99")));
                p999.values.push_back(jnum(jfind(all, "p999")));
                queue.values.push_back(
                    jnum(jfind(&cell, "max_queue_depth")));
            }
            html += lineChartSvg(labels, {p50, p90, p99, p999},
                                 queue, 560, 280, "cycles",
                                 "queue");

            // Numeric table.
            html += "<table>\n<tr><th class=\"num\">" +
                    std::string(closed ? "clients" : "load") +
                    "</th><th class=\"num\">krps</th>"
                    "<th class=\"num\">p50</th>"
                    "<th class=\"num\">p90</th>"
                    "<th class=\"num\">p99</th>"
                    "<th class=\"num\">p99.9</th>"
                    "<th class=\"num\">max q</th>"
                    "<th class=\"num\">explained</th></tr>\n";
            for (std::size_t li = 0; li < levels->size(); ++li) {
                const Json &cell = levels->at(li);
                const Json *all = jfind(
                    jfind(&cell, "latency_cycles"), "all");
                html +=
                    "<tr><td class=\"num\">" +
                    fmtNum(jnum(jfind(&cell, "load"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(&cell, "throughput_rps")) /
                           1e3) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(all, "p50"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(all, "p90"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(all, "p99"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(all, "p999"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(&cell, "max_queue_depth"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(jfind(&cell, "kernel_window"),
                                      "explained_pct"))) +
                    "%</td></tr>\n";
            }
            html += "</table>\n";

            // Per-request-class small multiples (p50/p99 per
            // class); class list from the first level's per_class
            // block, which every level shares.
            const Json *per_class =
                jfind(jfind(&levels->at(0), "latency_cycles"),
                      "per_class");
            if (per_class && per_class->isObject() &&
                !per_class->items().empty()) {
                html += "<div class=\"row\">\n";
                for (const auto &[cls, first_cell] :
                     per_class->items()) {
                    (void)first_cell;
                    ChartSeries c50{"p50", "#1b9e77", {}};
                    ChartSeries c99{"p99", "#c0392b", {}};
                    for (std::size_t li = 0; li < levels->size();
                         ++li) {
                        const Json *cc = jfind(
                            jfind(jfind(&levels->at(li),
                                        "latency_cycles"),
                                  "per_class"),
                            cls);
                        c50.values.push_back(
                            jnum(jfind(cc, "p50")));
                        c99.values.push_back(
                            jnum(jfind(cc, "p99")));
                    }
                    html += "<div><div class=\"muted\">" +
                            htmlEscape(cls) + "</div>" +
                            lineChartSvg(labels, {c50, c99},
                                         ChartSeries{}, 200, 130,
                                         "", "") +
                            "</div>\n";
                }
                html += "</div>\n";
            }
        }
    }

    html += pageClose();
    return html;
}

// ---- spans page ------------------------------------------------

std::string
spansHtml(const DashboardInputs &in)
{
    std::string html = pageOpen(3);
    const Json *machines = jfind(in.spans, "machines");
    if (!machines || !machines->isObject()) {
        html += "<p class=\"muted\">spans.json not provided. "
                "Generate with <code>aosd_spans --json</code>.</p>\n";
        html += pageClose();
        return html;
    }

    html += "<p>Why is p99 slow? Per (machine × primitive) cell: "
            "exact latency percentiles, the slowest requests' "
            "literal span trees as flame bars, and the median-vs-p99 "
            "gap priced by event class.</p>\n";

    for (const auto &[m, prims] : machines->items()) {
        if (!prims.isObject())
            continue;
        html += "<h2 id=\"spans-" + m + "\">" + htmlEscape(m) +
                "</h2>\n";
        for (const auto &[p, cell] : prims.items()) {
            const Json *cyc = jfind(&cell, "cycles");
            const Json *tail = jfind(&cell, "tail_attribution");
            html += "<details id=\"spans-" + m + "-" + p +
                    "\"><summary>" + htmlEscape(p) + " — p50 " +
                    fmtNum(jnum(jfind(cyc, "p50"))) + ", p99 " +
                    fmtNum(jnum(jfind(cyc, "p99"))) +
                    " cycles</summary>\n";
            html += "<table>\n<tr><th class=\"num\">requests</th>"
                    "<th class=\"num\">mean</th>"
                    "<th class=\"num\">min</th>"
                    "<th class=\"num\">p50</th>"
                    "<th class=\"num\">p90</th>"
                    "<th class=\"num\">p99</th>"
                    "<th class=\"num\">p99.9</th>"
                    "<th class=\"num\">max</th></tr>\n"
                    "<tr><td class=\"num\">" +
                    fmtNum(jnum(jfind(&cell, "requests"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "mean"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "min"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "p50"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "p90"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "p99"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "p999"))) +
                    "</td><td class=\"num\">" +
                    fmtNum(jnum(jfind(cyc, "max"))) +
                    "</td></tr>\n</table>\n";

            if (tail) {
                html += "<p>Tail vs median: request #" +
                        fmtNum(jnum(jfind(tail, "median_request"))) +
                        " (" +
                        fmtNum(jnum(jfind(tail, "median_cycles"))) +
                        " cycles) vs #" +
                        fmtNum(jnum(jfind(tail, "p99_request"))) +
                        " (" +
                        fmtNum(jnum(jfind(tail, "p99_cycles"))) +
                        " cycles): gap " +
                        fmtNum(jnum(jfind(tail, "gap_cycles"))) +
                        " cycles, <span class=\"ok\">" +
                        fmtNum(jnum(jfind(tail, "explained_pct"))) +
                        "% explained</span> by priced event "
                        "deltas:</p>\n";
                html += termsTable(jfind(tail, "terms"), "Δ count",
                                   jnum(jfind(tail, "gap_cycles")));
            }

            const Json *exemplars = jfind(&cell, "exemplars");
            if (exemplars && exemplars->isArray()) {
                for (std::size_t ei = 0; ei < exemplars->size();
                     ++ei) {
                    const Json &ex = exemplars->at(ei);
                    html += "<div class=\"cell\">slowest #" +
                            fmtNum(ei + 1) + ": request " +
                            fmtNum(jnum(jfind(&ex, "id"))) + " — " +
                            fmtNum(jnum(jfind(&ex, "cycles"))) +
                            " cycles<div class=\"flame\">";
                    const Json *tree = jfind(&ex, "spans");
                    if (tree)
                        spanFlame(*tree,
                                  jnum(jfind(tree, "cycles")), 0,
                                  html);
                    html += "</div></div>\n";
                }
            }
            html += "</details>\n";
        }
    }

    // -- IPC models --
    const Json *ipc = jfind(in.spans, "ipc");
    if (ipc && ipc->isObject()) {
        html += "<h2 id=\"ipc\">IPC model breakdowns</h2>\n"
                "<p>One traced null call per analytic model.</p>\n";
        for (const auto &[m, models] : ipc->items()) {
            if (!models.isObject())
                continue;
            html += "<h3 id=\"ipc-" + m + "\">" + htmlEscape(m) +
                    "</h3>\n";
            for (const auto &[model, entry] : models.items()) {
                const Json *tree = jfind(&entry, "spans");
                html += "<div class=\"cell\"><code>" +
                        htmlEscape(model) + "</code> — " +
                        fmtNum(jnum(jfind(&entry, "cycles"))) +
                        " cycles<div class=\"flame\">";
                if (tree)
                    spanFlame(*tree, jnum(jfind(tree, "cycles")),
                              0, html);
                html += "</div></div>\n";
            }
        }
    }

    html += pageClose();
    return html;
}

// ---- history page ----------------------------------------------

/** "+40 trap_enters on R3000/null_syscall ≈ +480 cycles (100% of
 *  the regression)" — the bisect finding as one annotation line. */
std::string
findingLine(const BisectFinding &f)
{
    if (f.eventClass == "figure")
        return "<code>" + htmlEscape(f.unit) + "</code> moved " +
               fmtNum(f.delta) + " (" + fmtNum(100.0 * f.share) +
               "% of the regression)";
    return fmtNum(f.deltaCount) + " <code>" +
           htmlEscape(f.eventClass) + "</code> on <code>" +
           htmlEscape(f.unit) + "</code> ≈ " + fmtNum(f.delta) +
           " cycles (" + fmtNum(100.0 * f.share) +
           "% of the regression)";
}

std::string
historyHtml(const DashboardInputs &in, const DashboardOptions &opts,
            const HistoryData &hist)
{
    std::string html = pageOpen(4);
    if (!hist.present) {
        html += "<p class=\"muted\">No perf database provided. Pass "
                "<code>--db perfdb.jsonl</code> (see <code>"
                "aosd_trend</code> for ingest).</p>\n";
        html += pageClose();
        return html;
    }
    const PerfDb &db = *in.db;

    // -- record inventory --
    html += "<h2 id=\"records\">Records</h2>\n<table>\n"
            "<tr><th>id</th><th>host</th><th>build</th>"
            "<th>documents</th></tr>\n";
    for (const PerfDbRecord &rec : db.records()) {
        std::string docs;
        for (const std::string &name : rec.docNames()) {
            if (!docs.empty())
                docs += ", ";
            docs += name;
        }
        html += "<tr><td><code>" + htmlEscape(rec.id()) +
                "</code></td><td>" + htmlEscape(rec.host()) +
                "</td><td>" + htmlEscape(rec.buildFlags()) +
                "</td><td class=\"muted\">" + htmlEscape(docs) +
                "</td></tr>\n";
    }
    html += "</table>\n";

    // -- rolling-band flags with bisect annotations --
    html += "<h2 id=\"flags\">Rolling-band flags</h2>\n";
    html += "<p>" +
            fmtNum(static_cast<double>(hist.check.metricsChecked)) +
            " metric(s) checked against max(" +
            fmtNum(100.0 * opts.relTol) +
            "% of rolling median, 3×MAD) over up to " +
            fmtNum(static_cast<double>(opts.baselineWindow)) +
            " prior runs; " +
            fmtNum(static_cast<double>(hist.check.flags.size())) +
            " flagged.</p>\n";

    auto table = [&] {
        std::vector<std::unordered_map<std::string, double>> rows;
        rows.reserve(db.size());
        for (const PerfDbRecord &rec : db.records()) {
            std::unordered_map<std::string, double> row;
            for (const PerfLeaf &leaf : recordMetrics(rec))
                row.emplace(leaf.path, leaf.value);
            rows.push_back(std::move(row));
        }
        return rows;
    }();

    auto seriesOf = [&](const std::string &metric) {
        std::vector<double> values;
        for (const auto &row : table) {
            auto it = row.find(metric);
            if (it != row.end())
                values.push_back(it->second);
        }
        if (opts.historyLast > 0 &&
            values.size() > opts.historyLast)
            values.erase(values.begin(),
                         values.end() -
                             static_cast<std::ptrdiff_t>(
                                 opts.historyLast));
        return values;
    };

    std::size_t annotated = 0;
    for (std::size_t fi = 0; fi < hist.check.flags.size(); ++fi) {
        const TrendFlag &f = hist.check.flags[fi];
        if (opts.topFlags != 0 && annotated == opts.topFlags) {
            html += "<p class=\"muted\">… " +
                    fmtNum(static_cast<double>(
                        hist.check.flags.size() - annotated)) +
                    " more flag(s); run <code>aosd_trend check"
                    "</code> for the full list.</p>\n";
            break;
        }
        ++annotated;
        html += "<details open id=\"flag-" + fmtNum(fi) +
                "\"><summary><code>" + htmlEscape(f.metric) +
                "</code> — " + fmtNum(f.median) + " → <span "
                "class=\"bad\">" +
                fmtNum(f.latest) + "</span> (" +
                fmtNum(f.pctChange) + "%)</summary>\n";
        html += "<div class=\"cell\">" +
                sparklineSvg(seriesOf(f.metric), true) +
                " band ±" + fmtNum(f.bandHalfWidth) +
                ", pair <code>" + htmlEscape(f.fromId) +
                "</code> → <code>" + htmlEscape(f.toId) +
                "</code></div>\n";

        // Bisect the offending pair on the richest shared
        // document — the same preference order as aosd_bisect
        // --db.
        const PerfDbRecord *from = db.resolve(f.fromId);
        const PerfDbRecord *to = db.resolve(f.toId);
        const Json *old_doc = nullptr, *new_doc = nullptr;
        if (from && to)
            for (const char *doc :
                 {"counters", "kernel_windows", "report"}) {
                old_doc = from->doc(doc);
                new_doc = to->doc(doc);
                if (old_doc && new_doc)
                    break;
                old_doc = new_doc = nullptr;
            }
        if (old_doc && new_doc) {
            BisectResult b = bisectDocs(*old_doc, *new_doc);
            if (!b.findings.empty()) {
                html += "<p>bisect:</p>\n<ul>\n";
                for (std::size_t bi = 0;
                     bi < std::min<std::size_t>(3,
                                                b.findings.size());
                     ++bi)
                    html += "<li>" + findingLine(b.findings[bi]) +
                            "</li>\n";
                html += "</ul>\n";
            }
        } else {
            html += "<p class=\"muted\">no shared counters/"
                    "kernel_windows/report document to bisect."
                    "</p>\n";
        }
        html += "</details>\n";
    }
    if (hist.check.flags.empty())
        html += "<p class=\"ok\">No metric outside its rolling "
                "band.</p>\n";

    // -- per-metric sparkline rows, grouped by document --
    html += "<h2 id=\"metrics\">Metric trends</h2>\n";
    std::set<std::string> flagged;
    for (const TrendFlag &f : hist.check.flags)
        flagged.insert(f.metric);

    std::vector<std::string> metrics;
    for (const std::string &metric : allMetrics(db))
        metrics.push_back(metric);
    std::size_t shown = 0, suppressed = 0;
    std::string group;
    bool table_open = false;
    for (const std::string &metric : metrics) {
        std::vector<double> values = seriesOf(metric);
        if (values.empty())
            continue;
        bool bad = flagged.count(metric) > 0;
        if (!bad && opts.historyCap != 0 &&
            shown >= opts.historyCap) {
            ++suppressed;
            continue;
        }
        ++shown;
        std::string g = metric.substr(0, metric.find('.'));
        if (g != group) {
            if (table_open)
                html += "</table>\n";
            group = g;
            html += "<h3>" + htmlEscape(group) +
                    "</h3>\n<table>\n<tr><th>metric</th>"
                    "<th>trend</th><th class=\"num\">n</th>"
                    "<th class=\"num\">median</th>"
                    "<th class=\"num\">latest</th>"
                    "<th class=\"num\">Δ%</th>"
                    "<th>status</th></tr>\n";
            table_open = true;
        }
        RollingStats s = rollingStats(values, opts.baselineWindow);
        html += std::string("<tr") + (bad ? " class=\"flag\"" : "") +
                "><td><code>" + htmlEscape(metric) +
                "</code></td><td>" + sparklineSvg(values, bad) +
                "</td><td class=\"num\">" +
                fmtNum(static_cast<double>(values.size())) +
                "</td><td class=\"num\">" + fmtNum(s.median) +
                "</td><td class=\"num\">" + fmtNum(s.latest) +
                "</td><td class=\"num\">" + fmtNum(s.pctChange) +
                "%</td><td class=\"" + (bad ? "bad" : "ok") + "\">" +
                (bad ? "FLAGGED" : "ok") + "</td></tr>\n";
    }
    if (table_open)
        html += "</table>\n";
    if (suppressed > 0)
        html += "<p class=\"muted\">" +
                fmtNum(static_cast<double>(suppressed)) +
                " more metric(s) not shown (cap " +
                fmtNum(static_cast<double>(opts.historyCap)) +
                "); <code>aosd_trend html</code> renders the full "
                "list.</p>\n";

    html += pageClose();
    return html;
}

// ---- manifest + validation -------------------------------------

std::size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    std::size_t n = 0, pos = 0;
    while ((pos = haystack.find(needle, pos)) !=
           std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

/** Every value of `attr="..."` in `html`. */
std::vector<std::string>
attrValues(const std::string &html, const std::string &attr)
{
    std::vector<std::string> values;
    const std::string needle = attr + "=\"";
    std::size_t pos = 0;
    while ((pos = html.find(needle, pos)) != std::string::npos) {
        std::size_t start = pos + needle.size();
        std::size_t end = html.find('"', start);
        if (end == std::string::npos)
            break;
        values.push_back(html.substr(start, end - start));
        pos = end + 1;
    }
    return values;
}

Json
buildManifest(const DashboardSite &site, const DashboardInputs &in,
              const DashboardOptions &opts, const HistoryData &hist)
{
    Json manifest = Json::object();
    manifest.set("schema_version", Json(dashboardSchemaVersion));
    manifest.set("kind", Json("aosd-dashboard-manifest"));
    manifest.set("generator", Json("aosd_dashboard"));

    Json pages = Json::array();
    for (const DashboardPage &p : site.pages) {
        Json j = Json::object();
        j.set("file", Json(p.file));
        j.set("title", Json(p.title));
        j.set("anchors",
              Json(static_cast<std::uint64_t>(
                  countOccurrences(p.html, " id=\""))));
        j.set("internal_links",
              Json(static_cast<std::uint64_t>(
                  attrValues(p.html, "href").size())));
        pages.push(std::move(j));
    }
    manifest.set("pages", std::move(pages));

    Json inputs = Json::object();
    auto presence = [](bool present) {
        Json j = Json::object();
        j.set("present", Json(present));
        return j;
    };
    {
        Json j = presence(in.report != nullptr);
        if (in.report) {
            const Json *tables = jfind(in.report, "tables");
            j.set("tables",
                  Json(static_cast<std::uint64_t>(
                      tables && tables->isObject()
                          ? tables->items().size()
                          : 0)));
            j.set("figures",
                  Json(jnum(jfind(jfind(in.report, "summary"),
                                  "figures"))));
        }
        inputs.set("report", std::move(j));
    }
    {
        Json j = presence(in.counters != nullptr);
        if (in.counters)
            j.set("cells",
                  Json(static_cast<std::uint64_t>(
                      cellCount(jfind(in.counters, "machines")))));
        inputs.set("counters", std::move(j));
    }
    {
        Json j = presence(in.kernelWindows != nullptr);
        if (in.kernelWindows) {
            const Json *cells = jfind(in.kernelWindows, "cells");
            j.set("cells",
                  Json(static_cast<std::uint64_t>(
                      cells && cells->isObject()
                          ? cells->items().size()
                          : 0)));
        }
        inputs.set("kernel_windows", std::move(j));
    }
    {
        Json j = presence(in.profile != nullptr);
        if (in.profile)
            j.set("cells",
                  Json(static_cast<std::uint64_t>(
                      cellCount(jfind(in.profile, "machines")))));
        inputs.set("profile", std::move(j));
    }
    {
        Json j = presence(in.spans != nullptr);
        if (in.spans)
            j.set("cells",
                  Json(static_cast<std::uint64_t>(
                      cellCount(jfind(in.spans, "machines")))));
        inputs.set("spans", std::move(j));
    }
    {
        Json arr = Json::array();
        for (const Json *t : in.traffic) {
            Json j = Json::object();
            const Json *cfg = jfind(t, "config");
            j.set("mode", Json(jstr(jfind(cfg, "mode"), "?")));
            j.set("arrival",
                  Json(jstr(jfind(cfg, "arrival"), "?")));
            const Json *machines = jfind(t, "machines");
            j.set("machines",
                  Json(static_cast<std::uint64_t>(
                      machines && machines->isArray()
                          ? machines->size()
                          : 0)));
            std::uint64_t levels = 0;
            if (machines && machines->isArray() &&
                machines->size() > 0) {
                const Json *l =
                    jfind(&machines->at(0), "load_levels");
                if (l && l->isArray())
                    levels = l->size();
            }
            j.set("levels", Json(levels));
            arr.push(std::move(j));
        }
        inputs.set("traffic", std::move(arr));
    }
    {
        Json j = presence(hist.present);
        if (hist.present) {
            j.set("records", Json(static_cast<std::uint64_t>(
                                 in.db->size())));
            j.set("flags", Json(static_cast<std::uint64_t>(
                               hist.check.flags.size())));
        }
        inputs.set("history", std::move(j));
    }
    manifest.set("inputs", std::move(inputs));

    Json options = Json::object();
    options.set("rel_tol", Json(opts.relTol));
    options.set("baseline_window",
                Json(static_cast<std::uint64_t>(
                    opts.baselineWindow)));
    manifest.set("options", std::move(options));
    return manifest;
}

} // namespace

DashboardSite
buildDashboardSite(const DashboardInputs &in,
                   const DashboardOptions &opts,
                   ParallelRunner &runner)
{
    // The history analysis feeds both the overview gate table and
    // the history page; compute it once, before the fan-out, so the
    // pages stay independent tasks.
    HistoryData hist;
    if (in.db && !in.db->empty()) {
        hist.present = true;
        hist.check =
            checkTrends(*in.db, opts.relTol, opts.baselineWindow,
                        opts.historyFilter, opts.historySkip);
    }

    std::vector<std::function<std::string()>> tasks = {
        [&] { return overviewHtml(in, opts, hist); },
        [&] { return tablesHtml(in); },
        [&] { return latencyHtml(in); },
        [&] { return spansHtml(in); },
        [&] { return historyHtml(in, opts, hist); },
    };
    std::vector<std::string> html = runner.map<std::string>(tasks);

    DashboardSite site;
    for (std::size_t i = 0; i < std::size(kPages); ++i)
        site.pages.push_back(
            {kPages[i].file, kPages[i].title, std::move(html[i])});
    site.manifest = buildManifest(site, in, opts, hist);
    return site;
}

std::vector<std::string>
validateDashboardLinks(const DashboardSite &site)
{
    std::vector<std::string> problems;

    std::unordered_map<std::string, std::set<std::string>> ids;
    for (const DashboardPage &p : site.pages) {
        std::set<std::string> page_ids;
        for (const std::string &id : attrValues(p.html, " id"))
            page_ids.insert(id);
        ids[p.file] = std::move(page_ids);
    }
    ids["manifest.json"] = {};

    for (const DashboardPage &p : site.pages) {
        for (const std::string &href : attrValues(p.html, "href")) {
            if (href.rfind("http:", 0) == 0 ||
                href.rfind("https:", 0) == 0 ||
                href.rfind("mailto:", 0) == 0)
                continue;
            std::string file = href, anchor;
            std::size_t hash = href.find('#');
            if (hash != std::string::npos) {
                file = href.substr(0, hash);
                anchor = href.substr(hash + 1);
            }
            if (file.empty())
                file = p.file;
            auto it = ids.find(file);
            if (it == ids.end()) {
                problems.push_back(p.file + ": dangling href \"" +
                                   href + "\" (no page " + file +
                                   ")");
                continue;
            }
            if (!anchor.empty() && !it->second.count(anchor))
                problems.push_back(p.file + ": dangling href \"" +
                                   href + "\" (no id \"" + anchor +
                                   "\" in " + file + ")");
        }
    }
    return problems;
}

bool
writeDashboardSite(const DashboardSite &site, const std::string &dir,
                   std::string *error)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (error)
            *error = "cannot create " + dir + ": " + ec.message();
        return false;
    }
    for (const DashboardPage &p : site.pages) {
        std::ofstream out(dir + "/" + p.file);
        if (!(out << p.html)) {
            if (error)
                *error = "cannot write " + dir + "/" + p.file;
            return false;
        }
    }
    std::ofstream out(dir + "/manifest.json");
    if (!(out << site.manifest.dump(1) << '\n')) {
        if (error)
            *error = "cannot write " + dir + "/manifest.json";
        return false;
    }
    return true;
}

} // namespace aosd
