#include "study/dashboard/html.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace aosd
{

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
fmtNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
sparklineSvg(const std::vector<double> &values, bool flagged)
{
    const double w = 120, h = 24, pad = 2;
    std::string svg = "<svg width=\"120\" height=\"24\" "
                      "viewBox=\"0 0 120 24\">";
    if (values.size() >= 2) {
        double lo = values[0], hi = values[0];
        for (double v : values) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        double span = hi - lo;
        std::string pts;
        for (std::size_t i = 0; i < values.size(); ++i) {
            double x = pad + (w - 2 * pad) *
                                 static_cast<double>(i) /
                                 static_cast<double>(values.size() - 1);
            double y =
                span > 0
                    ? h - pad - (h - 2 * pad) * (values[i] - lo) / span
                    : h / 2;
            if (!pts.empty())
                pts += ' ';
            pts += fmtNum(x) + "," + fmtNum(y);
        }
        svg += "<polyline fill=\"none\" stroke=\"";
        svg += flagged ? "#c0392b" : "#2c7fb8";
        svg += "\" stroke-width=\"1.5\" points=\"" + pts + "\"/>";
        // Mark the newest point.
        std::size_t last_space = pts.rfind(' ');
        std::string last_pt = last_space == std::string::npos
                                  ? pts
                                  : pts.substr(last_space + 1);
        std::size_t comma = last_pt.find(',');
        svg += "<circle cx=\"" + last_pt.substr(0, comma) +
               "\" cy=\"" + last_pt.substr(comma + 1) +
               "\" r=\"2\" fill=\"";
        svg += flagged ? "#c0392b" : "#2c7fb8";
        svg += "\"/>";
    }
    svg += "</svg>";
    return svg;
}

namespace
{

/** Map a value into y pixels on a sqrt scale topping out at `hi`. */
double
sqrtY(double v, double hi, double top, double bottom)
{
    if (hi <= 0)
        return bottom;
    double f = std::sqrt(std::max(v, 0.0)) / std::sqrt(hi);
    return bottom - (bottom - top) * f;
}

} // namespace

std::string
lineChartSvg(const std::vector<std::string> &labels,
             const std::vector<ChartSeries> &series,
             const ChartSeries &overlay, int width, int height,
             const std::string &yUnit, const std::string &overlayUnit)
{
    const double w = width, h = height;
    const double left = 64, right = overlay.values.empty() ? 16 : 56;
    const double top = 14, bottom = h - 26;
    const std::size_t n = labels.size();

    double hi = 0;
    for (const ChartSeries &s : series)
        for (double v : s.values)
            hi = std::max(hi, v);
    double ohi = 0;
    for (double v : overlay.values)
        ohi = std::max(ohi, v);

    auto xAt = [&](std::size_t i) {
        return n <= 1 ? (left + w - right) / 2
                      : left + (w - right - left) *
                                   static_cast<double>(i) /
                                   static_cast<double>(n - 1);
    };

    std::string svg = "<svg width=\"" + std::to_string(width) +
                      "\" height=\"" + std::to_string(height) +
                      "\" viewBox=\"0 0 " + std::to_string(width) +
                      " " + std::to_string(height) +
                      "\" class=\"chart\">";

    // Horizontal grid + left axis labels at quarters of the sqrt
    // scale (v = hi * (k/4)^2 lands the gridlines evenly).
    for (int k = 0; k <= 4; ++k) {
        double frac = static_cast<double>(k) / 4.0;
        double v = hi * frac * frac;
        double y = bottom - (bottom - top) * frac;
        svg += "<line x1=\"" + fmtNum(left) + "\" y1=\"" + fmtNum(y) +
               "\" x2=\"" + fmtNum(w - right) + "\" y2=\"" +
               fmtNum(y) + "\" class=\"grid\"/>";
        svg += "<text x=\"" + fmtNum(left - 4) + "\" y=\"" +
               fmtNum(y + 3) + "\" class=\"tick\" "
               "text-anchor=\"end\">" +
               htmlEscape(fmtNum(v)) + "</text>";
    }
    if (!yUnit.empty())
        svg += "<text x=\"2\" y=\"" + fmtNum(top - 4) +
               "\" class=\"tick\">" + htmlEscape(yUnit) + "</text>";

    // X labels.
    for (std::size_t i = 0; i < n; ++i)
        svg += "<text x=\"" + fmtNum(xAt(i)) + "\" y=\"" +
               fmtNum(h - 10) + "\" class=\"tick\" "
               "text-anchor=\"middle\">" +
               htmlEscape(labels[i]) + "</text>";

    // Series polylines + point markers.
    for (const ChartSeries &s : series) {
        std::string pts;
        for (std::size_t i = 0;
             i < std::min(n, s.values.size()); ++i) {
            if (!pts.empty())
                pts += ' ';
            pts += fmtNum(xAt(i)) + "," +
                   fmtNum(sqrtY(s.values[i], hi, top, bottom));
        }
        svg += "<polyline fill=\"none\" stroke=\"" + s.color +
               "\" stroke-width=\"1.5\" points=\"" + pts + "\"/>";
        for (std::size_t i = 0;
             i < std::min(n, s.values.size()); ++i)
            svg += "<circle cx=\"" + fmtNum(xAt(i)) + "\" cy=\"" +
                   fmtNum(sqrtY(s.values[i], hi, top, bottom)) +
                   "\" r=\"2\" fill=\"" + s.color + "\"/>";
    }

    // Overlay against its own right-hand sqrt scale.
    if (!overlay.values.empty()) {
        std::string pts;
        for (std::size_t i = 0;
             i < std::min(n, overlay.values.size()); ++i) {
            if (!pts.empty())
                pts += ' ';
            pts += fmtNum(xAt(i)) + "," +
                   fmtNum(sqrtY(overlay.values[i], ohi, top, bottom));
        }
        svg += "<polyline fill=\"none\" stroke=\"" + overlay.color +
               "\" stroke-width=\"1.2\" stroke-dasharray=\"4 3\" "
               "points=\"" +
               pts + "\"/>";
        svg += "<text x=\"" + fmtNum(w - right + 4) + "\" y=\"" +
               fmtNum(top + 3) + "\" class=\"tick\">" +
               htmlEscape(fmtNum(ohi)) + "</text>";
        svg += "<text x=\"" + fmtNum(w - right + 4) + "\" y=\"" +
               fmtNum(bottom + 3) + "\" class=\"tick\">0</text>";
        if (!overlayUnit.empty())
            svg += "<text x=\"" + fmtNum(w - right + 4) + "\" y=\"" +
                   fmtNum((top + bottom) / 2) +
                   "\" class=\"tick\">" + htmlEscape(overlayUnit) +
                   "</text>";
    }

    // Legend along the top edge.
    double lx = left;
    auto legendEntry = [&](const std::string &name,
                           const std::string &color, bool dashed) {
        svg += "<line x1=\"" + fmtNum(lx) + "\" y1=\"8\" x2=\"" +
               fmtNum(lx + 14) + "\" y2=\"8\" stroke=\"" + color +
               "\" stroke-width=\"2\"" +
               (dashed ? " stroke-dasharray=\"4 3\"" : "") + "/>";
        lx += 18;
        svg += "<text x=\"" + fmtNum(lx) +
               "\" y=\"11\" class=\"tick\">" + htmlEscape(name) +
               "</text>";
        lx += 7.0 * static_cast<double>(name.size()) + 10;
    };
    for (const ChartSeries &s : series)
        legendEntry(s.name, s.color, false);
    if (!overlay.values.empty())
        legendEntry(overlay.name, overlay.color, true);

    svg += "</svg>";
    return svg;
}

} // namespace aosd
