/**
 * @file
 * timeseries.json: per-interval event-rate series for every
 * long-running workload — the phase-resolved companion to report.json.
 *
 * Three sections, one per workload driver:
 *   - table7:    every (OS structure, app) cell of the §5 grid on one
 *                machine, sampled on a fixed simulated-cycle interval,
 *                each cell carrying its kernel-window reconciliation
 *   - ref_trace: the §1/§3.2 synthetic reference replay per Table 1
 *                machine
 *   - synapse:   the §4.1 call/switch replays, sampled ~64 times each
 *
 * Every series value is a per-interval rate (events per kilocycle,
 * percentages); the schema is documented in EXPERIMENTS.md. The
 * document is byte-identical at any --jobs value: each cell samples
 * in its own simulation slice and the runner merges by task index.
 */

#ifndef AOSD_STUDY_TIMESERIES_REPORT_HH
#define AOSD_STUDY_TIMESERIES_REPORT_HH

#include "arch/machine_desc.hh"
#include "sim/json.hh"
#include "sim/ticks.hh"

#include <cstdint>

namespace aosd
{

class ParallelRunner;

/** Knobs of the timeseries document build. */
struct TimeseriesOptions
{
    /** Machine the Table 7 grid samples on. */
    MachineId table7Machine = MachineId::R3000;
    Cycles table7IntervalCycles = 1'000'000;
    /** Reference-trace replay length and sampling interval. */
    std::uint64_t refTraceReferences = 500'000;
    Cycles refTraceIntervalCycles = 25'000;
    /** Machine the Synapse replays sample on (§4.1's SPARC). */
    MachineId synapseMachine = MachineId::SPARC;
    unsigned synapseSamples = 64;
};

/** Build the full timeseries.json document, fanning the independent
 *  cells across `runner`'s workers. */
Json buildTimeseriesDoc(ParallelRunner &runner,
                        const TimeseriesOptions &opts = {});

inline constexpr int timeseriesSchemaVersion = 1;

} // namespace aosd

#endif // AOSD_STUDY_TIMESERIES_REPORT_HH
