#include "study/report.hh"

#include <cmath>
#include <map>

#include "arch/machines.hh"
#include "sim/parallel/parallel_runner.hh"
#include "sim/logging.hh"

namespace aosd
{

Json
figureToJson(const Figure &f)
{
    Json out = Json::object();
    out.set("id", Json(f.id));
    out.set("unit", Json(f.unit));
    out.set("sim", Json(f.sim));
    if (f.hasPaper()) {
        out.set("paper", Json(f.paper));
        double err = f.relativeError();
        if (!std::isnan(err))
            out.set("rel_error", Json(err));
    }
    return out;
}

Json
buildReport(const std::vector<Figure> &figures)
{
    // Group by table, preserving first-seen order.
    std::vector<std::string> order;
    std::map<std::string, Json> grouped;
    for (const Figure &f : figures) {
        auto it = grouped.find(f.table);
        if (it == grouped.end()) {
            order.push_back(f.table);
            it = grouped.emplace(f.table, Json::array()).first;
        }
        it->second.push(figureToJson(f));
    }
    Json tables = Json::object();
    for (const std::string &name : order) {
        Json t = Json::object();
        t.set("figures", std::move(grouped[name]));
        tables.set(name, std::move(t));
    }

    double sum_abs = 0, max_abs = -1;
    std::size_t with_paper = 0;
    std::string worst;
    for (const Figure &f : figures) {
        double err = f.relativeError();
        if (std::isnan(err))
            continue;
        ++with_paper;
        sum_abs += std::fabs(err);
        if (std::fabs(err) > max_abs) {
            max_abs = std::fabs(err);
            worst = f.table + "." + f.id;
        }
    }

    Json summary = Json::object();
    summary.set("figures", Json(figures.size()));
    summary.set("with_paper", Json(with_paper));
    if (with_paper) {
        summary.set("mean_abs_rel_error",
                    Json(sum_abs / static_cast<double>(with_paper)));
        summary.set("max_abs_rel_error", Json(max_abs));
        summary.set("worst_figure", Json(worst));
    }

    Json doc = Json::object();
    doc.set("schema_version", Json(reportSchemaVersion));
    doc.set("generator", Json("aosd_report"));
    doc.set("paper",
            Json("Anderson, Levy, Bershad & Lazowska: The Interaction "
                 "of Architecture and Operating System Design "
                 "(ASPLOS 1991)"));
    doc.set("machine_count", Json(allMachines().size()));
    doc.set("tables", std::move(tables));
    doc.set("summary", std::move(summary));
    return doc;
}

Json
buildReport()
{
    return buildReport(allFigures());
}

Json
buildReport(ParallelRunner &runner)
{
    return buildReport(allFigures(runner));
}

namespace
{

/** Flatten a report's tables into id -> sim value. */
std::map<std::string, double>
simValues(const Json &report, std::vector<std::string> &problems,
          const char *which)
{
    std::map<std::string, double> out;
    const Json *tables = report.find("tables");
    if (!tables || !tables->isObject()) {
        problems.push_back(std::string(which) +
                           " report has no tables object");
        return out;
    }
    for (const auto &tkv : tables->items()) {
        const Json *figs = tkv.second.find("figures");
        if (!figs || !figs->isArray())
            continue;
        for (std::size_t i = 0; i < figs->size(); ++i) {
            const Json &f = figs->at(i);
            out[tkv.first + "." + f.at("id").asString()] =
                f.at("sim").asNumber();
        }
    }
    return out;
}

} // namespace

std::vector<std::string>
diffReports(const Json &expected, const Json &actual,
            double rel_tolerance, double abs_tolerance)
{
    std::vector<std::string> problems;

    const Json *ever = expected.find("schema_version");
    const Json *aver = actual.find("schema_version");
    if (!ever || !aver || !(*ever == *aver))
        problems.push_back("schema_version mismatch");

    auto exp = simValues(expected, problems, "expected");
    auto act = simValues(actual, problems, "actual");

    for (const auto &kv : exp) {
        auto it = act.find(kv.first);
        if (it == act.end()) {
            problems.push_back("figure disappeared: " + kv.first);
            continue;
        }
        double e = kv.second, a = it->second;
        double scale = std::max(std::fabs(e), std::fabs(a));
        double diff = std::fabs(a - e);
        if (diff > abs_tolerance && diff > rel_tolerance * scale)
            problems.push_back(csprintf(
                "figure drifted: %s expected %.9g got %.9g "
                "(rel %.3g)",
                kv.first.c_str(), e, a,
                scale > 0 ? diff / scale : 0.0));
    }
    for (const auto &kv : act)
        if (!exp.count(kv.first))
            problems.push_back("new figure not in snapshot: " +
                               kv.first +
                               " (regenerate expected_report.json)");
    return problems;
}

} // namespace aosd
