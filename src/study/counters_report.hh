/**
 * @file
 * The counters.json document: hardware-event counts and the
 * cycles-explained reconciliation for every machine x primitive.
 *
 * tools/aosd_counters serializes this document;
 * tests/test_counters.cc diffs it against tests/expected_counters.json
 * through the same numeric-leaf diff (study/perfdiff.hh) that gates
 * profile.json, so both the tool and the golden test see byte-for-byte
 * the same figures.
 */

#ifndef AOSD_STUDY_COUNTERS_REPORT_HH
#define AOSD_STUDY_COUNTERS_REPORT_HH

#include <vector>

#include "arch/machine_desc.hh"
#include "cpu/counted_primitives.hh"
#include "sim/json.hh"

namespace aosd
{

class ParallelRunner;

/** All counted runs for `machines` (every primitive, `reps` each). */
std::vector<CountedPrimitiveRun>
countAllPrimitives(const std::vector<MachineDesc> &machines,
                   unsigned reps);

/** The same grid with one (machine, primitive) session per runner
 *  job; runs come back machine-major as always (task-index merge). */
std::vector<CountedPrimitiveRun>
countAllPrimitives(const std::vector<MachineDesc> &machines,
                   unsigned reps, ParallelRunner &runner);

/**
 * counters.json (schema version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "aosd_counters",
 *     "repetitions": R,
 *     "machines": {
 *       "<machine>": {
 *         "<primitive>": {
 *           "cycles": n, "cycles_per_call": c,
 *           "counters": { "<counter>": n, ... },
 *           "reconciliation": {
 *             "actual_cycles": n, "explained_cycles": x,
 *             "explained_pct": p,
 *             "terms": { "<counter>": { "count": n,
 *                        "penalty_cycles": x, "cycles": x } } }
 *         }, ...
 *       }, ...
 *     }
 *   }
 */
Json buildCountersDoc(const std::vector<CountedPrimitiveRun> &runs,
                      unsigned reps);

/**
 * Kernel-window reconciliation document
 * (aosd_counters --kernel-windows --json, schema version 1): every
 * Table 7 (app, OS structure) cell of `machine`'s grid, with counted
 * kernel events x the machine's primitive costs reconciled against
 * the cycles SimKernel charged to primitives over the whole run.
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "aosd_counters --kernel-windows",
 *     "machine": "<machine>",
 *     "cells": {
 *       "<app>.<mach25|mach30>": {
 *         "elapsed_seconds": s,
 *         "reconciliation": { ... same shape as counters.json ... }
 *       }, ...
 *     }
 *   }
 */
Json buildKernelWindowsDoc(const MachineDesc &machine,
                           ParallelRunner &runner);

} // namespace aosd

#endif // AOSD_STUDY_COUNTERS_REPORT_HH
