#include "study/trend_report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "study/dashboard/html.hh"

namespace aosd
{

namespace
{

/** Top-level keys that are run metadata, not figures. */
bool
isMetadataKey(const std::string &key)
{
    return key == "schema_version" || key == "generator" ||
           key == "paper" || key == "machine" ||
           key == "machine_count" || key == "repetitions" ||
           key == "references" || key == "target_samples" ||
           key == "requests_per_pair" || key == "top_k";
}

/** Flatten `doc` under `prefix`, skipping top-level metadata keys. */
void
flattenDoc(const Json &doc, const std::string &prefix,
           std::vector<PerfLeaf> &out)
{
    if (!doc.isObject())
        return;
    for (const auto &[key, value] : doc.items()) {
        if (isMetadataKey(key))
            continue;
        for (PerfLeaf leaf : flattenNumericLeaves(value)) {
            leaf.path = leaf.path.empty()
                            ? prefix + key
                            : prefix + key + "." + leaf.path;
            out.push_back(std::move(leaf));
        }
    }
}

/**
 * report.json figures are arrays, so a plain flatten would address
 * them by index — unstable the moment a figure is inserted. Name them
 * by table and figure id instead, and keep only the simulated value
 * (the paper's value never changes and rel_error follows from the
 * two).
 */
void
flattenReportDoc(const Json &doc, std::vector<PerfLeaf> &out)
{
    const Json *tables = doc.find("tables");
    if (tables && tables->isObject()) {
        for (const auto &[tname, table] : tables->items()) {
            const Json *figs = table.find("figures");
            if (!figs || !figs->isArray())
                continue;
            for (std::size_t i = 0; i < figs->size(); ++i) {
                const Json &f = figs->at(i);
                const Json *id = f.find("id");
                const Json *sim = f.find("sim");
                if (!id || !id->isString() || !sim ||
                    !sim->isNumber() || std::isnan(sim->asNumber()))
                    continue;
                out.push_back({"report." + tname + "." +
                                   id->asString(),
                               sim->asNumber()});
            }
        }
    }
    const Json *summary = doc.find("summary");
    if (summary)
        for (PerfLeaf leaf : flattenNumericLeaves(*summary)) {
            leaf.path = "report.summary." + leaf.path;
            out.push_back(std::move(leaf));
        }
}

} // namespace

Json
spansDigest(const Json &doc)
{
    if (doc.isObject()) {
        Json out = Json::object();
        for (const auto &[key, value] : doc.items()) {
            if (key == "exemplars" || key == "spans")
                continue;
            out.set(key, spansDigest(value));
        }
        return out;
    }
    if (doc.isArray()) {
        Json out = Json::array();
        for (std::size_t i = 0; i < doc.size(); ++i)
            out.push(spansDigest(doc.at(i)));
        return out;
    }
    return doc;
}

Json
trafficDigest(const Json &doc)
{
    if (doc.isObject()) {
        Json out = Json::object();
        for (const auto &[key, value] : doc.items()) {
            if (key == "slowest_requests")
                continue;
            out.set(key, trafficDigest(value));
        }
        return out;
    }
    if (doc.isArray()) {
        Json out = Json::array();
        for (std::size_t i = 0; i < doc.size(); ++i)
            out.push(trafficDigest(doc.at(i)));
        return out;
    }
    return doc;
}

namespace
{

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    if (n == 0)
        return 0;
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/** Comma-separated substring list match; empty list matches all. */
bool
matchesAny(const std::string &metric, const std::string &list,
           bool empty_matches)
{
    if (list.empty())
        return empty_matches;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string needle =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!needle.empty() &&
            metric.find(needle) != std::string::npos)
            return true;
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return false;
}

bool
metricSelected(const std::string &metric, const std::string &filter,
               const std::string &skip)
{
    return matchesAny(metric, filter, true) &&
           !matchesAny(metric, skip, false);
}

/** metric -> value maps, one per record, built once per operation. */
std::vector<std::unordered_map<std::string, double>>
buildMetricTable(const PerfDb &db)
{
    std::vector<std::unordered_map<std::string, double>> table;
    table.reserve(db.size());
    for (const PerfDbRecord &rec : db.records()) {
        std::unordered_map<std::string, double> row;
        for (const PerfLeaf &leaf : recordMetrics(rec))
            row.emplace(leaf.path, leaf.value);
        table.push_back(std::move(row));
    }
    return table;
}

} // namespace

Json
buildPerfDbRecord(const std::string &commit,
                  const std::string &timestamp,
                  const std::string &host,
                  const std::string &buildFlags,
                  const PerfDbRecordInputs &in)
{
    Json rec = Json::object();
    rec.set("schema_version", Json(perfDbSchemaVersion));
    rec.set("kind", Json("aosd-perfdb-record"));
    rec.set("id", Json(commit + "@" + timestamp));
    rec.set("commit", Json(commit));
    rec.set("timestamp", Json(timestamp));
    rec.set("host", Json(host));
    rec.set("build_flags", Json(buildFlags));

    Json docs = Json::object();
    if (in.report)
        docs.set("report", *in.report);
    if (in.counters)
        docs.set("counters", *in.counters);
    if (in.kernelWindows)
        docs.set("kernel_windows", *in.kernelWindows);
    if (in.profile)
        docs.set("profile", *in.profile);
    if (in.timeseries)
        docs.set("timeseries_summary",
                 summarizeNumericArrays(*in.timeseries));
    if (in.spans)
        docs.set("spans", spansDigest(*in.spans));
    if (in.traffic)
        docs.set("traffic", trafficDigest(*in.traffic));
    if (!in.bench.empty()) {
        Json bench = Json::object();
        for (const auto &[suite, doc] : in.bench) {
            Json norm = Json::object();
            Json marks = Json::object();
            const Json *list = doc ? doc->find("benchmarks") : nullptr;
            if (list && list->isArray()) {
                // Raw google-benchmark output: keep the stable
                // per-benchmark figures, drop the run-local context.
                for (std::size_t i = 0; i < list->size(); ++i) {
                    const Json &b = list->at(i);
                    const Json *name = b.find("name");
                    if (!name || !name->isString())
                        continue;
                    Json entry = Json::object();
                    for (const char *key :
                         {"real_time", "cpu_time", "items_per_second",
                          "bytes_per_second"}) {
                        const Json *v = b.find(key);
                        if (v && v->isNumber())
                            entry.set(key, *v);
                    }
                    const Json *unit = b.find("time_unit");
                    if (unit && unit->isString())
                        entry.set("time_unit", *unit);
                    marks.set(name->asString(), std::move(entry));
                }
            } else if (list && list->isObject()) {
                // Already-digested documents (BENCH_predecode.json).
                marks = *list;
            } else if (doc) {
                // Arbitrary digest: store numeric content as-is.
                marks = *doc;
            }
            norm.set("benchmarks", std::move(marks));
            bench.set(suite, std::move(norm));
        }
        docs.set("bench", std::move(bench));
    }
    rec.set("docs", std::move(docs));
    return rec;
}

std::vector<PerfLeaf>
recordMetrics(const PerfDbRecord &rec)
{
    std::vector<PerfLeaf> out;
    if (const Json *report = rec.doc("report"))
        flattenReportDoc(*report, out);
    if (const Json *counters = rec.doc("counters")) {
        const Json *machines = counters->find("machines");
        if (machines)
            flattenDoc(*machines, "counters.", out);
    }
    if (const Json *kw = rec.doc("kernel_windows")) {
        const Json *cells = kw->find("cells");
        if (cells)
            flattenDoc(*cells, "kernel_windows.", out);
    }
    if (const Json *profile = rec.doc("profile"))
        flattenDoc(*profile, "profile.", out);
    if (const Json *ts = rec.doc("timeseries_summary"))
        flattenDoc(*ts, "timeseries.", out);
    if (const Json *spans = rec.doc("spans"))
        flattenDoc(*spans, "spans.", out);
    if (const Json *traffic = rec.doc("traffic")) {
        // traffic.<machine>.l<level index>.<cell figure> — machine
        // slug and level position instead of the raw array indices.
        const Json *machines = traffic->find("machines");
        if (machines && machines->isArray()) {
            for (std::size_t i = 0; i < machines->size(); ++i) {
                const Json &m = machines->at(i);
                const Json *slug = m.find("machine");
                const Json *levels = m.find("load_levels");
                if (!slug || !slug->isString() || !levels ||
                    !levels->isArray())
                    continue;
                for (std::size_t li = 0; li < levels->size(); ++li)
                    flattenDoc(levels->at(li),
                               "traffic." + slug->asString() + ".l" +
                                   std::to_string(li) + ".",
                               out);
            }
        }
    }
    for (const std::string &name : rec.docNames()) {
        if (name.rfind("bench.", 0) != 0)
            continue;
        const Json *suite = rec.doc(name);
        const Json *marks = suite ? suite->find("benchmarks")
                                  : nullptr;
        if (marks)
            flattenDoc(*marks, name + ".", out);
    }
    return out;
}

MetricSeries
metricSeries(const PerfDb &db, const std::string &metric,
             std::size_t last)
{
    MetricSeries series;
    series.metric = metric;
    for (std::size_t i = 0; i < db.size(); ++i) {
        const PerfDbRecord &rec = db.at(i);
        for (const PerfLeaf &leaf : recordMetrics(rec)) {
            if (leaf.path != metric)
                continue;
            series.points.push_back(
                {i, rec.id(), rec.commit(), leaf.value});
            break;
        }
    }
    if (last > 0 && series.points.size() > last)
        series.points.erase(series.points.begin(),
                            series.points.end() -
                                static_cast<std::ptrdiff_t>(last));
    return series;
}

std::vector<std::string>
allMetrics(const PerfDb &db)
{
    std::set<std::string> paths;
    for (const PerfDbRecord &rec : db.records())
        for (const PerfLeaf &leaf : recordMetrics(rec))
            paths.insert(leaf.path);
    return {paths.begin(), paths.end()};
}

RollingStats
rollingStats(const std::vector<double> &values,
             std::size_t baselineWindow)
{
    RollingStats s;
    if (values.empty())
        return s;
    s.latest = values.back();
    std::size_t prior = values.size() - 1;
    std::size_t used = std::min(prior, baselineWindow);
    s.baselinePoints = used;
    if (used == 0) {
        s.median = s.latest;
        return s;
    }
    std::vector<double> window(values.end() - 1 -
                                   static_cast<std::ptrdiff_t>(used),
                               values.end() - 1);
    s.median = medianOf(window);
    std::vector<double> dev;
    dev.reserve(window.size());
    for (double v : window)
        dev.push_back(std::fabs(v - s.median));
    s.mad = medianOf(dev);
    s.pctChange = s.median != 0
                      ? 100.0 * (s.latest - s.median) /
                            std::fabs(s.median)
                      : 0.0;
    return s;
}

Json
buildTrendQueryDoc(const PerfDb &db, const std::string &metric,
                   std::size_t last, std::size_t baselineWindow)
{
    MetricSeries series = metricSeries(db, metric, last);
    Json doc = Json::object();
    doc.set("schema_version", Json(1));
    doc.set("generator", Json("aosd_trend query"));
    doc.set("metric", Json(metric));

    Json points = Json::array();
    std::vector<double> values;
    for (const MetricPoint &p : series.points) {
        Json pt = Json::object();
        pt.set("record", Json(p.recordId));
        pt.set("commit", Json(p.commit));
        pt.set("value", Json(p.value));
        if (!values.empty()) {
            double prev = values.back();
            pt.set("delta", Json(p.value - prev));
            if (prev != 0)
                pt.set("delta_pct",
                       Json(100.0 * (p.value - prev) /
                            std::fabs(prev)));
        }
        values.push_back(p.value);
        points.push(std::move(pt));
    }
    doc.set("points", std::move(points));

    RollingStats stats = rollingStats(values, baselineWindow);
    Json rolling = Json::object();
    rolling.set("baseline_points",
                Json(static_cast<std::uint64_t>(
                    stats.baselinePoints)));
    rolling.set("median", Json(stats.median));
    rolling.set("mad", Json(stats.mad));
    rolling.set("latest", Json(stats.latest));
    rolling.set("pct_change_vs_median", Json(stats.pctChange));
    doc.set("rolling", std::move(rolling));
    return doc;
}

Json
buildTrendListDoc(const PerfDb &db)
{
    Json doc = Json::object();
    doc.set("schema_version", Json(1));
    doc.set("generator", Json("aosd_trend list"));
    Json arr = Json::array();
    for (const PerfDbRecord &rec : db.records()) {
        Json j = Json::object();
        j.set("id", Json(rec.id()));
        j.set("commit", Json(rec.commit()));
        j.set("timestamp", Json(rec.timestamp()));
        j.set("host", Json(rec.host()));
        j.set("build_flags", Json(rec.buildFlags()));
        Json docs = Json::array();
        for (const std::string &name : rec.docNames())
            docs.push(Json(name));
        j.set("docs", std::move(docs));
        arr.push(std::move(j));
    }
    doc.set("records", std::move(arr));
    return doc;
}

Json
TrendCheckResult::toJson() const
{
    Json doc = Json::object();
    doc.set("schema_version", Json(1));
    doc.set("generator", Json("aosd_trend check"));
    doc.set("metrics_checked",
            Json(static_cast<std::uint64_t>(metricsChecked)));
    doc.set("metrics_skipped",
            Json(static_cast<std::uint64_t>(metricsSkipped)));
    Json arr = Json::array();
    for (const TrendFlag &f : flags) {
        Json j = Json::object();
        j.set("metric", Json(f.metric));
        j.set("latest", Json(f.latest));
        j.set("median", Json(f.median));
        j.set("mad", Json(f.mad));
        j.set("band_half_width", Json(f.bandHalfWidth));
        j.set("pct_change", Json(f.pctChange));
        j.set("from", Json(f.fromId));
        j.set("to", Json(f.toId));
        arr.push(std::move(j));
    }
    doc.set("flags", std::move(arr));
    return doc;
}

TrendCheckResult
checkTrends(const PerfDb &db, double relTol,
            std::size_t baselineWindow, const std::string &filter,
            const std::string &skip)
{
    TrendCheckResult result;
    auto table = buildMetricTable(db);

    for (const std::string &metric : allMetrics(db)) {
        if (!metricSelected(metric, filter, skip))
            continue;
        std::vector<double> values;
        std::vector<std::size_t> rec_index;
        for (std::size_t i = 0; i < table.size(); ++i) {
            auto it = table[i].find(metric);
            if (it == table[i].end())
                continue;
            values.push_back(it->second);
            rec_index.push_back(i);
        }
        RollingStats s = rollingStats(values, baselineWindow);
        if (s.baselinePoints < 2) {
            ++result.metricsSkipped;
            continue;
        }
        ++result.metricsChecked;
        double band = std::max(relTol * std::fabs(s.median),
                               3.0 * s.mad);
        if (std::fabs(s.latest - s.median) <= band)
            continue;

        TrendFlag f;
        f.metric = metric;
        f.latest = s.latest;
        f.median = s.median;
        f.mad = s.mad;
        f.bandHalfWidth = band;
        f.pctChange = s.pctChange;
        f.toId = db.at(rec_index.back()).id();
        // The newest prior point still inside the band is the "from"
        // of the offending pair; when even the immediate predecessor
        // is out of band, use it anyway — the regression is older,
        // but the pair is still the freshest comparable evidence.
        std::size_t from = rec_index[rec_index.size() - 2];
        for (std::size_t k = rec_index.size() - 1; k-- > 0;) {
            if (std::fabs(values[k] - s.median) <= band) {
                from = rec_index[k];
                break;
            }
        }
        f.fromId = db.at(from).id();
        result.flags.push_back(std::move(f));
    }

    std::sort(result.flags.begin(), result.flags.end(),
              [](const TrendFlag &a, const TrendFlag &b) {
                  double pa = std::fabs(a.pctChange);
                  double pb = std::fabs(b.pctChange);
                  if (pa != pb)
                      return pa > pb;
                  double da = std::fabs(a.latest - a.median);
                  double db_ = std::fabs(b.latest - b.median);
                  if (da != db_)
                      return da > db_;
                  return a.metric < b.metric;
              });
    return result;
}

std::string
renderTrendHtml(const PerfDb &db, double relTol,
                std::size_t baselineWindow, const std::string &filter,
                const std::string &skip, std::size_t last)
{
    auto table = buildMetricTable(db);
    TrendCheckResult check =
        checkTrends(db, relTol, baselineWindow, filter, skip);
    std::set<std::string> flagged;
    for (const TrendFlag &f : check.flags)
        flagged.insert(f.metric);

    std::string html =
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
        "<title>aosd perf trends</title>\n<style>\n"
        "body{font:14px/1.4 system-ui,sans-serif;margin:2em;"
        "color:#222}\n"
        "table{border-collapse:collapse;width:100%}\n"
        "th,td{padding:3px 10px;text-align:left;"
        "border-bottom:1px solid #eee;font-variant-numeric:"
        "tabular-nums}\n"
        "th{border-bottom:2px solid #888}\n"
        "tr.flag td{background:#fdecea}\n"
        "td.num{text-align:right}\n"
        ".ok{color:#1e8449}.bad{color:#c0392b;font-weight:600}\n"
        "h2{margin-top:2em}\ncode{background:#f4f4f4;"
        "padding:0 3px}\n</style></head><body>\n";
    html += "<h1>aosd perf trends</h1>\n";
    html += "<p>" + std::to_string(db.size()) + " record(s)";
    if (!db.empty())
        html += ", newest <code>" +
                htmlEscape(db.at(db.size() - 1).id()) + "</code>";
    html += "; band: max(" + fmtNum(100.0 * relTol) +
            "% of rolling median, 3&times;MAD) over up to " +
            std::to_string(baselineWindow) + " prior runs; " +
            std::to_string(check.flags.size()) +
            " metric(s) flagged.</p>\n";

    // Flagged metrics first, as their own table.
    if (!check.flags.empty()) {
        html += "<h2>Flagged</h2>\n<table>\n<tr><th>metric</th>"
                "<th>trend</th><th>median</th><th>latest</th>"
                "<th>&Delta;%</th><th>pair</th></tr>\n";
        for (const TrendFlag &f : check.flags) {
            MetricSeries s = metricSeries(db, f.metric, last);
            std::vector<double> values;
            for (const MetricPoint &p : s.points)
                values.push_back(p.value);
            html += "<tr class=\"flag\"><td><code>" +
                    htmlEscape(f.metric) + "</code></td><td>" +
                    sparklineSvg(values, true) +
                    "</td><td class=\"num\">" + fmtNum(f.median) +
                    "</td><td class=\"num bad\">" + fmtNum(f.latest) +
                    "</td><td class=\"num bad\">" +
                    fmtNum(f.pctChange) + "%</td><td><code>" +
                    htmlEscape(f.fromId) + "</code> &rarr; <code>" +
                    htmlEscape(f.toId) + "</code></td></tr>\n";
        }
        html += "</table>\n";
    }

    // Every selected metric, grouped by top-level document.
    std::string group;
    bool table_open = false;
    for (const std::string &metric : allMetrics(db)) {
        if (!metricSelected(metric, filter, skip))
            continue;
        std::vector<double> values;
        for (auto &row : table) {
            auto it = row.find(metric);
            if (it != row.end())
                values.push_back(it->second);
        }
        if (values.empty())
            continue;
        if (last > 0 && values.size() > last)
            values.erase(values.begin(),
                         values.end() -
                             static_cast<std::ptrdiff_t>(last));
        std::string g = metric.substr(0, metric.find('.'));
        if (g != group) {
            if (table_open)
                html += "</table>\n";
            group = g;
            html += "<h2>" + htmlEscape(group) +
                    "</h2>\n<table>\n<tr><th>metric</th>"
                    "<th>trend</th><th>n</th><th>median</th>"
                    "<th>latest</th><th>&Delta;%</th>"
                    "<th>status</th></tr>\n";
            table_open = true;
        }
        RollingStats s = rollingStats(values, baselineWindow);
        bool bad = flagged.count(metric) > 0;
        html += std::string("<tr") + (bad ? " class=\"flag\"" : "") +
                "><td><code>" + htmlEscape(metric) +
                "</code></td><td>" + sparklineSvg(values, bad) +
                "</td><td class=\"num\">" +
                std::to_string(values.size()) +
                "</td><td class=\"num\">" + fmtNum(s.median) +
                "</td><td class=\"num\">" + fmtNum(s.latest) +
                "</td><td class=\"num\">" + fmtNum(s.pctChange) +
                "%</td><td class=\"" + (bad ? "bad" : "ok") + "\">" +
                (bad ? "FLAGGED" : "ok") + "</td></tr>\n";
    }
    if (table_open)
        html += "</table>\n";
    html += "</body></html>\n";
    return html;
}

} // namespace aosd
