/**
 * @file
 * Counter-driven regression bisection.
 *
 * When the counters or report gate trips, the diff tool names *which
 * figure* moved; this module names *why*. Given two counters.json
 * documents (the failing run's actual vs. the checked-in golden), it
 * diffs every (machine, primitive) cell's reconciliation terms — each
 * term is an event class already priced with the machine's own penalty
 * constants by sim/counters/reconcile — ranks the moved cycles, and
 * reports findings of the form "+40 cold_misses on SPARC
 * context_switch ~ +520 cycles, 87% of the regression". The same
 * machinery falls back to figure-level ranking for report.json pairs
 * (where no term decomposition exists).
 */

#ifndef AOSD_STUDY_BISECT_HH
#define AOSD_STUDY_BISECT_HH

#include <string>
#include <vector>

#include "sim/json.hh"

namespace aosd
{

/** One ranked explanation of moved cycles (or figure value). */
struct BisectFinding
{
    /** Where: "R3000/context_switch" (counters mode) or
     *  "table1.null_syscall_us.CVAX" (report mode). */
    std::string unit;
    /** What moved: a counter name ("cold_misses"), "(unattributed)"
     *  for a cell's residual, or "figure" in report mode. */
    std::string eventClass;
    double deltaCount = 0;   ///< event-count move (counters mode)
    double penaltyCycles = 0; ///< new document's per-event price
    double delta = 0;        ///< moved cycles (or figure value)
    /** delta / total regression; 0 when the total is zero. */
    double share = 0;
};

/** The ranked explanation of one document pair. */
struct BisectResult
{
    /** Sum of per-unit actual_cycles moves (counters mode) or of
     *  figure moves (report mode). */
    double totalDelta = 0;
    /** Findings with any movement, largest |delta| first (ties break
     *  on unit/event name, so output is deterministic). */
    std::vector<BisectFinding> findings;
    /** Units present on only one side, schema mismatches, ... */
    std::vector<std::string> notes;

    /** {"schema_version":1,"total_delta":..,
     *   "findings":[{"unit":..,"event_class":..,...}],"notes":[..]} */
    Json toJson() const;
};

/** Bisect two counters.json documents (aosd_counters --json). */
BisectResult bisectCountersDocs(const Json &old_doc,
                                const Json &new_doc);

/** Bisect two kernel-windows documents
 *  (aosd_counters --kernel-windows --json): same cell/term layout
 *  under "cells" instead of "machines". */
BisectResult bisectKernelWindowDocs(const Json &old_doc,
                                    const Json &new_doc);

/** Rank figure moves between two report.json documents. */
BisectResult bisectReportDocs(const Json &old_doc,
                              const Json &new_doc);

/** Dispatch on document shape: "machines" -> counters, "cells" ->
 *  kernel windows, "tables" -> report. Adds a note and returns an
 *  empty result for unrecognized documents. */
BisectResult bisectDocs(const Json &old_doc, const Json &new_doc);

} // namespace aosd

#endif // AOSD_STUDY_BISECT_HH
