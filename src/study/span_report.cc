#include "study/span_report.hh"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/machines.hh"
#include "os/ipc/lrpc.hh"
#include "os/ipc/rpc.hh"
#include "os/ipc/urpc.hh"
#include "os/kernel/kernel.hh"
#include "sim/counters/counters.hh"
#include "sim/counters/reconcile.hh"
#include "sim/random.hh"
#include "sim/spantrace/spantrace.hh"
#include "sim/table.hh"

namespace aosd
{

namespace
{

/** FNV-1a over a string: deterministic per-cell seed derivation. */
std::uint64_t
fnv1a(const char *s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (; *s; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 1099511628211ull;
    }
    return h;
}

/** Indices of `requests` sorted by (cycles, id) ascending — the
 *  deterministic percentile/tie-break order. */
std::vector<std::size_t>
sortedByLatency(const std::vector<SpanRequest> &requests)
{
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (requests[a].root.cycles != requests[b].root.cycles)
                      return requests[a].root.cycles <
                             requests[b].root.cycles;
                  return requests[a].id < requests[b].id;
              });
    return order;
}

/** Index (into a sorted-ascending order) of the percentile sample,
 *  using the Histogram's rank convention. */
std::size_t
percentileIndex(double p, std::size_t n)
{
    auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(n) + 0.9999999999);
    rank = std::clamp<std::uint64_t>(rank, 1, n);
    return static_cast<std::size_t>(rank - 1);
}

Json
exemplarJson(const SpanRequest &req)
{
    Json out = Json::object();
    out.set("id", Json(req.id));
    out.set("cycles", Json(req.root.cycles));
    out.set("spans", req.root.toJson());
    return out;
}

/**
 * Price the counter-delta difference between the p99 exemplar and the
 * median request with the same constants reconcileKernelWindow uses,
 * term for term — so "why is p99 slow" bottoms out in the same priced
 * event classes as the kernel-window cross-check and aosd_bisect.
 */
Json
tailAttribution(const KernelWindowCosts &costs,
                const SpanRequest &median, const SpanRequest &p99)
{
    auto cnt = [](const SpanRequest &r, HwCounter c) {
        return static_cast<std::int64_t>(r.root.counters.get(c));
    };

    double explained = 0.0;
    Json terms = Json::object();
    auto term = [&](HwCounter c, std::int64_t delta, double penalty) {
        double cycles = static_cast<double>(delta) * penalty;
        explained += cycles;
        Json row = Json::object();
        row.set("delta_count", Json(delta));
        row.set("penalty_cycles", Json(penalty));
        row.set("cycles", Json(cycles));
        terms.set(counterName(c), std::move(row));
    };
    auto diff = [&](HwCounter c) { return cnt(p99, c) - cnt(median, c); };

    term(HwCounter::KernelSyscalls, diff(HwCounter::KernelSyscalls),
         static_cast<double>(costs.syscallCycles));
    term(HwCounter::KernelTraps, diff(HwCounter::KernelTraps),
         static_cast<double>(costs.trapCycles));
    term(HwCounter::ThreadSwitches, diff(HwCounter::ThreadSwitches),
         static_cast<double>(costs.switchCycles));
    term(HwCounter::PteChanges, diff(HwCounter::PteChanges),
         static_cast<double>(costs.pteChangeCycles));
    // EmulatedInstrs mixes two prices; EmulatedTasOps disambiguates
    // (reconcileKernelWindow does the identical split per window).
    std::int64_t emul =
        (cnt(p99, HwCounter::EmulatedInstrs) -
         cnt(p99, HwCounter::EmulatedTasOps)) -
        (cnt(median, HwCounter::EmulatedInstrs) -
         cnt(median, HwCounter::EmulatedTasOps));
    term(HwCounter::EmulatedInstrs, emul,
         static_cast<double>(costs.emulInstrCycles));
    term(HwCounter::EmulatedTasOps, diff(HwCounter::EmulatedTasOps),
         static_cast<double>(costs.emulTasCycles));
    term(HwCounter::TlbRefillCycles, diff(HwCounter::TlbRefillCycles),
         1.0);
    term(HwCounter::TlbPurgeCycles, diff(HwCounter::TlbPurgeCycles),
         1.0);
    term(HwCounter::CacheFlushCycles,
         diff(HwCounter::CacheFlushCycles), 1.0);

    std::int64_t gap =
        static_cast<std::int64_t>(p99.root.cycles) -
        static_cast<std::int64_t>(median.root.cycles);

    Json out = Json::object();
    out.set("median_request", Json(median.id));
    out.set("p99_request", Json(p99.id));
    out.set("median_cycles", Json(median.root.cycles));
    out.set("p99_cycles", Json(p99.root.cycles));
    out.set("gap_cycles", Json(gap));
    out.set("explained_cycles", Json(explained));
    out.set("explained_pct",
            Json(gap == 0
                     ? 100.0
                     : 100.0 * explained / static_cast<double>(gap)));
    out.set("terms", std::move(terms));
    return out;
}

/** One (machine, primitive) cell: trace the requests and analyze. */
Json
runSpanCell(const MachineDesc &machine, Primitive prim,
            const SpanOptions &opts)
{
    SimKernel kernel(machine);
    AddressSpace &app = kernel.createSpace("app");
    AddressSpace &peer = kernel.createSpace("peer");
    app.setWorkingSet(0x1000, 24);
    app.mapRange(0x1000, 24, 0x9000, {});
    peer.setWorkingSet(0x2000, 24);
    peer.mapRange(0x2000, 24, 0xa000, {});
    // The kernel pool the random touches draw from (mapped kernel
    // data, refilled through the slow kernel-miss path).
    kernel.kernelSpace().mapRange(0xc00, opts.poolPages, 0x800, {});
    kernel.contextSwitchTo(app);

    Rng rng(opts.seed ^ fnv1a(machineSlug(machine.id)) ^
            fnv1a(primitiveSlug(prim)));
    HwCounters::instance().enable();
    SpanTracer &tracer = SpanTracer::instance();
    tracer.enable(opts.requestsPerPair);

    std::vector<Vpn> scratch;
    scratch.reserve(opts.touchesMax);
    for (std::size_t i = 0; i < opts.requestsPerPair; ++i) {
        tracer.beginRequest(primitiveSlug(prim), i,
                            kernel.elapsedCycles());
        switch (prim) {
          case Primitive::NullSyscall:
            kernel.syscall();
            break;
          case Primitive::Trap:
            kernel.trap();
            break;
          case Primitive::PteChange:
            kernel.pteChange(kernel.currentSpace(),
                             0x1000 + rng.below(24), {});
            break;
          case Primitive::ContextSwitch:
            kernel.contextSwitchTo(i % 2 == 0 ? peer : app);
            break;
        }
        // Dispatch-adjacent kernel work: a random number of kernel-
        // pool touches. Requests that cold-miss more pages land in
        // the tail; the span's counter delta says exactly why.
        std::uint32_t touches = rng.below(opts.touchesMax + 1);
        if (touches) {
            scratch.clear();
            for (std::uint32_t t = 0; t < touches; ++t)
                scratch.push_back(0xc00 + rng.below(opts.poolPages));
            kernel.touchPages(scratch, true);
        }
        tracer.endRequest(kernel.elapsedCycles());
    }
    SpanSession session = tracer.take();
    HwCounters::instance().disable();

    Json cell = Json::object();
    cell.set("requests", Json(static_cast<std::uint64_t>(
                             opts.requestsPerPair)));
    cell.set("dropped", Json(session.dropped));
    const Histogram *hist = session.find(primitiveSlug(prim));
    cell.set("cycles", hist ? hist->toJson() : Histogram{}.toJson());

    Json exemplars = Json::array();
    if (!session.requests.empty()) {
        std::vector<std::size_t> order =
            sortedByLatency(session.requests);
        std::size_t n = order.size();
        // Top-K slowest: cycles descending, ties on ascending id (a
        // different order than `order` reversed, which would flip the
        // ids within a tie).
        std::vector<std::size_t> slowest(n);
        for (std::size_t i = 0; i < n; ++i)
            slowest[i] = i;
        std::sort(slowest.begin(), slowest.end(),
                  [&](std::size_t a, std::size_t b) {
                      const SpanRequest &ra = session.requests[a];
                      const SpanRequest &rb = session.requests[b];
                      if (ra.root.cycles != rb.root.cycles)
                          return ra.root.cycles > rb.root.cycles;
                      return ra.id < rb.id;
                  });
        for (std::size_t k = 0; k < std::min(opts.topK, n); ++k)
            exemplars.push(exemplarJson(session.requests[slowest[k]]));
        cell.set("exemplars", std::move(exemplars));

        const SpanRequest &median =
            session.requests[order[percentileIndex(50.0, n)]];
        const SpanRequest &p99 =
            session.requests[order[percentileIndex(99.0, n)]];
        cell.set("tail_attribution",
                 tailAttribution(kernelWindowCosts(machine), median,
                                 p99));
    } else {
        cell.set("exemplars", std::move(exemplars));
    }
    return cell;
}

/** Trace one null call of each analytic IPC model on `machine`. */
Json
runIpcCell(const MachineDesc &machine)
{
    SpanTracer &tracer = SpanTracer::instance();
    auto traced = [&](const char *name,
                      const std::function<double()> &call) {
        tracer.enable(1);
        tracer.beginRequest(name, 0, 0);
        double total_us = call();
        tracer.endRequest(machine.clock.microsToCycles(total_us));
        SpanSession session = tracer.take();
        Json out = Json::object();
        if (!session.requests.empty()) {
            const SpanRequest &req = session.requests.front();
            out.set("cycles", Json(req.root.cycles));
            out.set("spans", req.root.toJson());
        }
        return out;
    };

    Json cell = Json::object();
    cell.set("rpc", traced("rpc", [&] {
        return SrcRpcModel(machine).roundTrip(0, 0).totalUs();
    }));
    cell.set("lrpc", traced("lrpc", [&] {
        return LrpcModel(machine).nullCall().totalUs();
    }));
    cell.set("urpc", traced("urpc", [&] {
        return UrpcModel(machine).nullCall().totalUs();
    }));
    return cell;
}

/** Chrome-tracing "X" slices of one span tree, children laid end to
 *  end from the parent's start. */
void
emitSlices(const Json &span, double ts, int pid, int tid, Json &events)
{
    const Json *name = span.find("name");
    const Json *cycles = span.find("cycles");
    if (!name || !cycles)
        return;
    Json ev = Json::object();
    ev.set("name", *name);
    ev.set("ph", Json("X"));
    ev.set("ts", Json(ts));
    ev.set("dur", Json(cycles->asNumber()));
    ev.set("pid", Json(pid));
    ev.set("tid", Json(tid));
    events.push(std::move(ev));
    if (const Json *children = span.find("spans")) {
        double child_ts = ts;
        for (std::size_t i = 0; i < children->size(); ++i) {
            const Json &child = children->at(i);
            emitSlices(child, child_ts, pid, tid, events);
            if (const Json *c = child.find("cycles"))
                child_ts += c->asNumber();
        }
    }
}

void
emitMeta(const char *kind, const std::string &name_value, int pid,
         int tid, Json &events)
{
    Json ev = Json::object();
    ev.set("name", Json(kind));
    ev.set("ph", Json("M"));
    ev.set("pid", Json(pid));
    ev.set("tid", Json(tid));
    Json args = Json::object();
    args.set("name", Json(name_value));
    ev.set("args", std::move(args));
    events.push(std::move(ev));
}

} // namespace

Json
buildSpansDoc(ParallelRunner &runner, const SpanOptions &opts)
{
    std::vector<MachineDesc> machines;
    if (opts.machines.empty()) {
        machines = table1Machines();
    } else {
        machines.reserve(opts.machines.size());
        for (MachineId id : opts.machines)
            machines.push_back(makeMachine(id));
    }

    std::vector<std::function<Json()>> tasks;
    tasks.reserve(machines.size() * std::size(allPrimitives) +
                  machines.size());
    for (const MachineDesc &m : machines)
        for (Primitive p : allPrimitives)
            tasks.push_back(
                [&m, p, &opts] { return runSpanCell(m, p, opts); });
    for (const MachineDesc &m : machines)
        tasks.push_back([&m] { return runIpcCell(m); });
    std::vector<Json> cells = runner.map<Json>(tasks);

    Json machines_json = Json::object();
    std::size_t idx = 0;
    for (const MachineDesc &m : machines) {
        Json prims = Json::object();
        for (Primitive p : allPrimitives)
            prims.set(primitiveSlug(p), std::move(cells[idx++]));
        machines_json.set(machineSlug(m.id), std::move(prims));
    }
    Json ipc_json = Json::object();
    for (const MachineDesc &m : machines)
        ipc_json.set(machineSlug(m.id), std::move(cells[idx++]));

    Json doc = Json::object();
    doc.set("schema_version", Json(spansSchemaVersion));
    doc.set("generator", Json("aosd_spans"));
    doc.set("requests_per_pair", Json(static_cast<std::uint64_t>(
                                     opts.requestsPerPair)));
    doc.set("top_k",
            Json(static_cast<std::uint64_t>(opts.topK)));
    doc.set("machines", std::move(machines_json));
    doc.set("ipc", std::move(ipc_json));
    return doc;
}

std::string
spansPerfettoJson(const Json &spansDoc)
{
    Json events = Json::array();
    const Json *machines = spansDoc.find("machines");
    int pid = 0;
    if (machines && machines->isObject()) {
        for (const auto &[mslug, prims] : machines->items()) {
            ++pid;
            emitMeta("process_name", mslug, pid, 0, events);
            int tid = 0;
            for (const auto &[pslug, cell] : prims.items()) {
                ++tid;
                emitMeta("thread_name", pslug, pid, tid, events);
                const Json *exemplars = cell.find("exemplars");
                if (!exemplars)
                    continue;
                double ts = 0;
                for (std::size_t i = 0; i < exemplars->size(); ++i) {
                    const Json &ex = exemplars->at(i);
                    const Json *spans = ex.find("spans");
                    if (!spans)
                        continue;
                    emitSlices(*spans, ts, pid, tid, events);
                    // Counter tracks: the exemplar's nonzero counter
                    // deltas, sampled at its start.
                    if (const Json *ctrs = spans->find("counters")) {
                        Json cev = Json::object();
                        cev.set("name", Json(mslug + "." + pslug +
                                             ".counters"));
                        cev.set("ph", Json("C"));
                        cev.set("ts", Json(ts));
                        cev.set("pid", Json(pid));
                        cev.set("args", *ctrs);
                        events.push(std::move(cev));
                    }
                    if (const Json *c = spans->find("cycles"))
                        ts += c->asNumber() * 1.25; // visual gap
                }
            }
        }
    }
    const Json *ipc = spansDoc.find("ipc");
    if (ipc && ipc->isObject()) {
        for (const auto &[mslug, cell] : ipc->items()) {
            ++pid;
            emitMeta("process_name", "ipc." + mslug, pid, 0, events);
            int tid = 0;
            for (const auto &[model, entry] : cell.items()) {
                ++tid;
                emitMeta("thread_name", model, pid, tid, events);
                if (const Json *spans = entry.find("spans"))
                    emitSlices(*spans, 0, pid, tid, events);
            }
        }
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", Json("ns"));
    return doc.dump(1);
}

std::string
spansTextSummary(const Json &spansDoc)
{
    TextTable t;
    t.header({"machine", "primitive", "p50", "p99", "p999", "gap",
              "explained"});
    const Json *machines = spansDoc.find("machines");
    if (machines && machines->isObject()) {
        for (const auto &[mslug, prims] : machines->items()) {
            for (const auto &[pslug, cell] : prims.items()) {
                const Json *hist = cell.find("cycles");
                const Json *attr = cell.find("tail_attribution");
                if (!hist)
                    continue;
                t.row({mslug, pslug,
                       TextTable::num(hist->at("p50").asNumber(), 0),
                       TextTable::num(hist->at("p99").asNumber(), 0),
                       TextTable::num(hist->at("p999").asNumber(), 0),
                       attr ? TextTable::num(
                                  attr->at("gap_cycles").asNumber(), 0)
                            : "-",
                       attr ? TextTable::num(
                                  attr->at("explained_pct").asNumber(),
                                  1) +
                                  "%"
                            : "-"});
            }
        }
    }
    std::string out = "spans: request-latency percentiles "
                      "(simulated cycles) and p99-vs-median "
                      "attribution\n\n";
    out += t.render();
    const Json *ipc = spansDoc.find("ipc");
    if (ipc && ipc->isObject()) {
        TextTable it;
        it.header({"machine", "model", "cycles"});
        for (const auto &[mslug, cell] : ipc->items())
            for (const auto &[model, entry] : cell.items()) {
                const Json *cycles = entry.find("cycles");
                it.row({mslug, model,
                        cycles ? TextTable::num(cycles->asNumber(), 0)
                               : "-"});
            }
        out += "\nipc null-call span totals\n";
        out += it.render();
    }
    return out;
}

} // namespace aosd
