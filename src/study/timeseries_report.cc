#include "study/timeseries_report.hh"

#include <functional>
#include <vector>

#include "arch/machines.hh"
#include "sim/parallel/parallel_runner.hh"
#include "workload/os_model.hh"
#include "workload/ref_trace.hh"
#include "workload/synapse.hh"

namespace aosd
{

namespace
{

Json
table7Section(ParallelRunner &runner, const TimeseriesOptions &opts)
{
    OsModelConfig config;
    config.samplingIntervalCycles = opts.table7IntervalCycles;
    config.measureKernelWindow = true;

    MachineDesc machine = makeMachine(opts.table7Machine);
    std::vector<Table7Row> rows =
        runMachGrid(machine, runner, config);

    Json cells = Json::object();
    for (const Table7Row &row : rows) {
        const char *os = row.structure == OsStructure::Monolithic
                             ? "mach25"
                             : "mach30";
        Json cell = Json::object();
        cell.set("elapsed_seconds", Json(row.elapsedSeconds));
        cell.set("os_primitive_share_pct",
                 Json(row.percentTimeInPrimitives));
        if (row.hasKernelWindow)
            cell.set("kernel_window", row.kernelWindow.toJson());
        cell.set("timeseries", row.timeseries.toJson());
        cells.set(appSlug(row.app) + "." + os, std::move(cell));
    }

    Json section = Json::object();
    section.set("machine", Json(machineSlug(opts.table7Machine)));
    section.set("interval_cycles", Json(opts.table7IntervalCycles));
    section.set("cells", std::move(cells));
    return section;
}

Json
refTraceSection(ParallelRunner &runner, const TimeseriesOptions &opts)
{
    const std::vector<MachineDesc> &machines = table1Machines();

    RefTraceConfig config;
    config.references = opts.refTraceReferences;
    config.samplingIntervalCycles = opts.refTraceIntervalCycles;

    std::vector<std::function<Json()>> tasks;
    tasks.reserve(machines.size());
    for (const MachineDesc &m : machines)
        tasks.push_back([&m, config] {
            RefTraceResult r = runRefTrace(m, config);
            Json cell = Json::object();
            cell.set("cycles", Json(r.cycles));
            cell.set("system_ref_share", Json(r.systemRefShare()));
            cell.set("system_miss_share",
                     Json(r.systemMissShare()));
            cell.set("timeseries", r.timeseries.toJson());
            return cell;
        });
    std::vector<Json> cells = runner.map<Json>(tasks);

    Json machines_json = Json::object();
    for (std::size_t i = 0; i < machines.size(); ++i)
        machines_json.set(machineSlug(machines[i].id),
                          std::move(cells[i]));

    Json section = Json::object();
    section.set("references", Json(opts.refTraceReferences));
    section.set("interval_cycles", Json(opts.refTraceIntervalCycles));
    section.set("machines", std::move(machines_json));
    return section;
}

Json
synapseSection(ParallelRunner &runner, const TimeseriesOptions &opts)
{
    MachineDesc machine = makeMachine(opts.synapseMachine);
    std::vector<SynapseRun> runs = synapseExperiments();

    std::vector<std::function<Json()>> tasks;
    tasks.reserve(runs.size());
    for (const SynapseRun &run : runs)
        tasks.push_back([&machine, run, &opts] {
            SynapseSimResult r = simulateSynapseRun(
                machine, run, opts.synapseSamples);
            Json cell = Json::object();
            cell.set("ratio", Json(r.priced.ratio));
            cell.set("call_cycles", Json(r.callCycles));
            cell.set("switch_cycles", Json(r.switchCycles));
            cell.set("total_cycles", Json(r.totalCycles));
            cell.set("switches_dominate",
                     Json(r.priced.switchesDominate()));
            cell.set("timeseries", r.timeseries.toJson());
            return cell;
        });
    std::vector<Json> cells = runner.map<Json>(tasks);

    Json runs_json = Json::object();
    for (std::size_t i = 0; i < runs.size(); ++i)
        runs_json.set(appSlug(runs[i].name), std::move(cells[i]));

    Json section = Json::object();
    section.set("machine", Json(machineSlug(opts.synapseMachine)));
    section.set("target_samples",
                Json(static_cast<std::uint64_t>(opts.synapseSamples)));
    section.set("runs", std::move(runs_json));
    return section;
}

} // namespace

Json
buildTimeseriesDoc(ParallelRunner &runner,
                   const TimeseriesOptions &opts)
{
    Json doc = Json::object();
    doc.set("schema_version", Json(timeseriesSchemaVersion));
    doc.set("generator", Json("aosd_report --timeseries"));
    doc.set("table7", table7Section(runner, opts));
    doc.set("ref_trace", refTraceSection(runner, opts));
    doc.set("synapse", synapseSection(runner, opts));
    return doc;
}

} // namespace aosd
